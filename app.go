package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"tca/internal/fabric"
)

// This file is the application layer of the taxonomy: a model-agnostic way
// to define a transactional cloud application once and deploy it under any
// programming model of Figure 1.
//
// An App registers named Ops. Each Op declares the key set it touches
// (derived from its arguments) and a Body over the uniform Txn read/write
// surface. A Cell is one deployment of an App under one taxonomy cell; the
// five adapters (cell_*.go) map the same Op onto a saga over microservices,
// an Orleans-style actor transaction, a FaaS entity critical section, a
// stateful-dataflow message choreography, or a deterministic log-ordered
// transaction — each with the honest guarantees of that cell.

// Txn is the uniform state surface an Op body executes over. Every cell
// adapter provides an implementation backed by its own state management:
// the deterministic core's MVCC view, actor transactional state under 2PL,
// locked FaaS entities, per-service databases behind RPC, or dataflow
// function state reached by messages.
type Txn interface {
	// Get returns the value of key as visible to this operation. Cells
	// without isolation (sagas, dataflow) may return stale or dirty values
	// — that is their honest semantics, not a bug.
	Get(key string) ([]byte, bool, error)
	// Put replaces the value of key. Writes are all-or-nothing per op
	// where the cell supports it: synchronous cells buffer or stage writes
	// until the body returns nil.
	Put(key string, value []byte) error
	// Add atomically adds delta to the EncodeInt-encoded value of key
	// (missing keys count as zero). Add commutes, so eventual cells apply
	// it as an exactly-once delta message instead of a read-modify-write —
	// which is what keeps them conserving totals under concurrency.
	Add(key string, delta int64) error
	// PushCap inserts id into the EncodeIntList-encoded bounded id list at
	// key, keeping only the cap largest ids (newest-first for monotonically
	// assigned ids). The retained set is the cap largest of every id ever
	// pushed, so PushCap commutes and is idempotent per id: eventual cells
	// apply it as an exactly-once merge message instead of a
	// read-modify-write — the list analogue of Add, and what keeps bounded
	// timelines exact under concurrency.
	PushCap(key string, id int64, cap int) error
}

// EncodeInt is the canonical numeric value encoding of the App layer
// (JSON int64) — what Txn.Add maintains and application bodies should use
// for counter-like keys.
func EncodeInt(v int64) []byte {
	raw, _ := json.Marshal(v)
	return raw
}

// DecodeInt decodes an EncodeInt value; nil or garbage decodes to zero.
func DecodeInt(raw []byte) int64 {
	var v int64
	if raw != nil {
		json.Unmarshal(raw, &v)
	}
	return v
}

// EncodeIntList is the canonical list encoding of the App layer: a JSON
// array of int64, sorted descending (newest-first for monotonically
// assigned ids). Txn.PushCap maintains it; bodies should use it for
// list-valued keys such as timelines and post logs.
func EncodeIntList(vs []int64) []byte {
	if vs == nil {
		vs = []int64{}
	}
	raw, _ := json.Marshal(vs)
	return raw
}

// DecodeIntList decodes an EncodeIntList value; nil or garbage decodes to
// an empty list.
func DecodeIntList(raw []byte) []int64 {
	var vs []int64
	if raw != nil {
		json.Unmarshal(raw, &vs)
	}
	return vs
}

// mergeBounded inserts id into list (dedup), sorts descending, and trims
// to the cap largest ids — the canonical, order-insensitive PushCap merge
// every cell applies, which is what makes PushCap commute.
func mergeBounded(list []int64, id int64, cap int) []int64 {
	for _, v := range list {
		if v == id {
			return list
		}
	}
	list = append(list, id)
	sort.Slice(list, func(i, j int) bool { return list[i] > list[j] })
	if cap > 0 && len(list) > cap {
		list = list[:cap]
	}
	return list
}

// pushCapRMW implements PushCap as a read-modify-write over Get/Put — the
// shared path for cells whose Txn is already isolated (actors, entities,
// the deterministic core) or serial (the auditors' reference map).
func pushCapRMW(tx Txn, key string, id int64, cap int) error {
	raw, _, err := tx.Get(key)
	if err != nil {
		return err
	}
	return tx.Put(key, EncodeIntList(mergeBounded(DecodeIntList(raw), id, cap)))
}

// Op is one named transactional operation of an application.
type Op struct {
	// Name identifies the op within its App.
	Name string
	// Keys derives the declared key set from the op's arguments.
	// Deterministic cells schedule on it, locking cells lock it up front,
	// sharded cells route with it, and dataflow cells gather reads from it
	// before the body runs. Bodies must confine their Gets to these keys.
	Keys func(args []byte) []string
	// ReadOnly declares the op a pure query: its body reads its declared
	// keys and returns a result without writing. Cells use the hint to
	// skip their write machinery — the saga cell stages no compensated
	// steps, the actor cell takes shared locks and skips 2PC, the entity
	// cell skips the buffered-write commit, the dataflow cell answers
	// from the read-gather phase without a write-emit round, and the
	// deterministic cell reads its committed state without consuming a
	// write-schedule slot. The contract is enforced: a ReadOnly body that
	// calls Put, Add, or PushCap gets ErrReadOnlyOp on every cell.
	ReadOnly bool
	// Body executes the op over the cell's Txn. It must be deterministic
	// (same visible state + args => same writes and result) and safe to
	// re-execute: cells retry it on concurrency-control conflicts and
	// replay it for recovery. Returning an error aborts the op where the
	// cell supports atomicity — no buffered writes apply.
	Body func(tx Txn, args []byte) ([]byte, error)
}

// ErrReadOnlyOp rejects writes from the body of an Op declared ReadOnly.
var ErrReadOnlyOp = errors.New("tca: write attempted by read-only op")

// roTxn enforces the ReadOnly contract over any cell's Txn.
type roTxn struct{ Txn }

func (roTxn) Put(string, []byte) error         { return ErrReadOnlyOp }
func (roTxn) Add(string, int64) error          { return ErrReadOnlyOp }
func (roTxn) PushCap(string, int64, int) error { return ErrReadOnlyOp }

// guard wraps tx to reject writes when the op is declared ReadOnly, so
// every cell enforces the same contract regardless of its write path.
func (op Op) guard(tx Txn) Txn {
	if op.ReadOnly {
		return roTxn{tx}
	}
	return tx
}

// App is a model-agnostic transactional application: a named set of Ops
// over uniform keyed state. Build one with NewApp + Register, then deploy
// it under any programming model with Deploy.
type App struct {
	name  string
	ops   map[string]Op
	order []string
}

// NewApp creates an empty application.
func NewApp(name string) *App {
	return &App{name: name, ops: make(map[string]Op)}
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Register adds an op. Registering after Deploy, a nil Keys/Body, or a
// duplicate name panics: op sets are static application code, not runtime
// data, so misuse is a programming error.
func (a *App) Register(op Op) *App {
	if op.Name == "" || op.Keys == nil || op.Body == nil {
		panic(fmt.Sprintf("tca: app %q: op needs Name, Keys and Body", a.name))
	}
	if _, dup := a.ops[op.Name]; dup {
		panic(fmt.Sprintf("tca: app %q: duplicate op %q", a.name, op.Name))
	}
	a.ops[op.Name] = op
	a.order = append(a.order, op.Name)
	return a
}

// Op returns a registered op.
func (a *App) Op(name string) (Op, bool) {
	op, ok := a.ops[name]
	return op, ok
}

// Ops returns the registered op names in registration order.
func (a *App) Ops() []string { return append([]string(nil), a.order...) }

// keysOf resolves an op's declared key set, deduplicated in first-seen
// order (bodies may legitimately derive the same key twice). The result
// is a fresh slice: Keys may return shared or cached storage, and cells
// call keysOf from concurrent invocations.
func (a *App) keysOf(op Op, args []byte) []string {
	keys := op.Keys(args)
	seen := make(map[string]struct{}, len(keys))
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// Cell is one deployment of an App under one taxonomy cell. The same
// methods mean honestly different things per cell — Submit on an eventual
// cell acknowledges acceptance, and its Handle resolves at completion —
// which Guarantee reports.
type Cell interface {
	// Model returns the cell's programming model.
	Model() ProgrammingModel
	// Guarantee describes the cell's real semantics.
	Guarantee() Guarantee
	// App returns the deployed application.
	App() *App
	// Submit starts the named op with args and returns a Handle that
	// resolves when the op has applied. reqID identifies the logical
	// request for idempotence where the cell supports it; tr accumulates
	// simulated latency. Submit's return is acceptance: synchronous cells
	// run the op on a bounded worker pool (Options.Clients), the
	// deterministic cell acknowledges once the transaction is durably
	// appended (concurrent submissions share group log appends), and the
	// dataflow cell acknowledges at the ingress — the per-cell accept/apply
	// split E20 measures.
	Submit(reqID, op string, args []byte, tr *fabric.Trace) Handle
	// Invoke runs the named op to completion: Submit(reqID, op, args,
	// tr).Result() on every cell.
	Invoke(reqID, op string, args []byte, tr *fabric.Trace) ([]byte, error)
	// Read returns the settled value of one key (eventual cells quiesce
	// first). Use it for audits, not as part of an op.
	Read(key string) ([]byte, bool, error)
	// Settle waits until all accepted ops have applied (no-op for
	// synchronous cells).
	Settle() error
	// Close releases resources.
	Close()
}

// Deploy instantiates app under the given model on env with default
// options.
func Deploy(model ProgrammingModel, app *App, env *Env) (Cell, error) {
	return DeployWith(model, app, env, Options{})
}

// DeployWith instantiates app under the given model on env.
func DeployWith(model ProgrammingModel, app *App, env *Env, opts Options) (Cell, error) {
	switch model {
	case Microservices:
		return newMicroCell(app, env, opts), nil
	case Actors:
		return newActorCell(app, env, opts), nil
	case CloudFunctions:
		return newFaasCell(app, env, opts), nil
	case StatefulDataflow:
		return newStatefunCell(app, env, opts)
	case Deterministic:
		return newCoreCell(app, env, opts)
	default:
		return nil, fmt.Errorf("tca: unknown model %v", model)
	}
}

// opError is the shared unknown-op error of every cell adapter.
func opError(app *App, op string) error {
	return fmt.Errorf("tca: app %q has no op %q", app.Name(), op)
}

// keyShard hashes a key onto one of n shards — the routing rule the
// sharded cells (microservices, partitioned core) share.
func keyShard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// sortedKeys returns map keys in deterministic order (bodies and adapters
// iterate state deterministically by contract).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
