package tca

import (
	"fmt"
	"testing"

	"tca/internal/fabric"
)

var allModels = []ProgrammingModel{Microservices, Actors, CloudFunctions, StatefulDataflow, Deterministic}

func newBankT(t *testing.T, model ProgrammingModel) Bank {
	t.Helper()
	env := NewEnv(1, 3)
	b, err := NewBank(model, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestEveryModelTransfers(t *testing.T) {
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			b := newBankT(t, model)
			if err := b.Deposit(0, 100); err != nil {
				t.Fatal(err)
			}
			if err := b.Deposit(1, 100); err != nil {
				t.Fatal(err)
			}
			tr := fabric.NewTrace()
			if err := b.Transfer("t1", 0, 1, 30, tr); err != nil {
				t.Fatal(err)
			}
			if err := b.Settle(); err != nil {
				t.Fatal(err)
			}
			b0, err := b.Balance(0)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := b.Balance(1)
			if err != nil {
				t.Fatal(err)
			}
			if b0 != 70 || b1 != 130 {
				t.Fatalf("balances = %d, %d; want 70, 130", b0, b1)
			}
			if model != StatefulDataflow && tr.Total() <= 0 {
				t.Fatal("no simulated latency charged")
			}
		})
	}
}

func TestEveryModelConservesMoney(t *testing.T) {
	const accounts, transfers = 4, 40
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			b := newBankT(t, model)
			for a := 0; a < accounts; a++ {
				if err := b.Deposit(a, 1000); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < transfers; i++ {
				from, to := i%accounts, (i+1)%accounts
				// Transfers may individually fail (insufficient funds on a
				// race); conservation must hold regardless.
				b.Transfer(fmt.Sprintf("t%d", i), from, to, 7, nil)
			}
			if err := b.Settle(); err != nil {
				t.Fatal(err)
			}
			var total int64
			for a := 0; a < accounts; a++ {
				bal, err := b.Balance(a)
				if err != nil {
					t.Fatal(err)
				}
				total += bal
			}
			if total != accounts*1000 {
				t.Fatalf("total = %d, want %d", total, accounts*1000)
			}
		})
	}
}

func TestGuaranteesMatchTaxonomy(t *testing.T) {
	wantIsolated := map[ProgrammingModel]bool{
		Microservices:    false, // saga
		Actors:           true,  // 2PL+2PC
		CloudFunctions:   true,  // critical sections
		StatefulDataflow: false, // §4.2: exactly-once is not isolation
		Deterministic:    true,  // serializable by construction
	}
	for _, model := range allModels {
		b := newBankT(t, model)
		g := b.Guarantee()
		if g.Isolated != wantIsolated[model] {
			t.Errorf("%v: isolated = %v, want %v", model, g.Isolated, wantIsolated[model])
		}
		if !g.Atomic {
			t.Errorf("%v: every cell must at least be (eventually) atomic", model)
		}
		if g.Note == "" || g.String() == "" {
			t.Errorf("%v: missing guarantee note", model)
		}
		if b.Model() != model {
			t.Errorf("Model() = %v, want %v", b.Model(), model)
		}
	}
}

func TestInsufficientFundsRejected(t *testing.T) {
	// Synchronous cells reject overdrafts; the transfer must leave both
	// balances untouched (atomicity under business failure).
	for _, model := range []ProgrammingModel{Microservices, Actors, CloudFunctions, Deterministic} {
		t.Run(model.String(), func(t *testing.T) {
			b := newBankT(t, model)
			b.Deposit(0, 10)
			b.Deposit(1, 10)
			if err := b.Transfer("big", 0, 1, 1000, nil); err == nil {
				t.Fatal("overdraft accepted")
			}
			b.Settle()
			b0, _ := b.Balance(0)
			b1, _ := b.Balance(1)
			if b0 != 10 || b1 != 10 {
				t.Fatalf("balances after rejected transfer = %d, %d", b0, b1)
			}
		})
	}
}

func TestDeterministicIdempotentTransfer(t *testing.T) {
	b := newBankT(t, Deterministic)
	b.Deposit(0, 100)
	b.Deposit(1, 0)
	for i := 0; i < 3; i++ { // client retries with the same request id
		if err := b.Transfer("retry-me", 0, 1, 40, nil); err != nil {
			t.Fatal(err)
		}
	}
	b.Settle()
	b0, _ := b.Balance(0)
	if b0 != 60 {
		t.Fatalf("balance = %d, want 60 (exactly-once submit)", b0)
	}
}

func TestModelAndAxisStrings(t *testing.T) {
	for _, m := range allModels {
		if m.String() == "" {
			t.Errorf("model %d has empty String()", m)
		}
	}
	if REST.String() != "rest" || Queues.String() != "queues" {
		t.Error("Messaging strings wrong")
	}
	if ExternalState.String() != "external" || EmbeddedState.String() != "embedded" {
		t.Error("StatePlacement strings wrong")
	}
}

func TestChaosEnvConstructs(t *testing.T) {
	env := NewChaosEnv(1, 3, 0.1, 0.1)
	if env.Cluster == nil || env.Broker == nil {
		t.Fatal("chaos env incomplete")
	}
}
