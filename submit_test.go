package tca

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"tca/internal/workload"
)

// Tests for the asynchronous invocation surface: Invoke ≡ Submit.Result on
// every cell, concurrent submissions through Sessions settle to the serial
// reference, core handles survive crash-replay exactly once, concurrent
// core submissions share group log appends, and OrderKeys sessions get
// read-your-writes on the eventual cell.

// TestInvokeIsSubmitResult drives the identical seeded bank stream twice
// per model — once through Invoke, once through Submit(...).Result() — and
// requires op-for-op equal outcomes and equal settled state: the blocking
// call is nothing but the async one awaited.
func TestInvokeIsSubmitResult(t *testing.T) {
	const accounts, ops = 4, 40
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			mkCell := func(seed int64) Cell {
				cell, err := Deploy(model, BankApp(), NewEnv(seed, 3))
				if err != nil {
					t.Fatal(err)
				}
				for a := 0; a < accounts; a++ {
					args, _ := json.Marshal(bankDepositArgs{Account: a, Amount: 500})
					if _, err := cell.Invoke(fmt.Sprintf("seed-%d", a), "deposit", args, nil); err != nil {
						t.Fatal(err)
					}
				}
				if err := cell.Settle(); err != nil {
					t.Fatal(err)
				}
				return cell
			}
			byInvoke, bySubmit := mkCell(31), mkCell(31)
			defer byInvoke.Close()
			defer bySubmit.Close()
			gen1, gen2 := workload.NewBank(37, accounts, 0.3), workload.NewBank(37, accounts, 0.3)
			for i := 0; i < ops; i++ {
				op1, op2 := gen1.Next(), gen2.Next()
				args1, _ := json.Marshal(bankTransferArgs{From: op1.From, To: op1.To, Amount: op1.Amount})
				args2, _ := json.Marshal(bankTransferArgs{From: op2.From, To: op2.To, Amount: op2.Amount})
				r1, err1 := byInvoke.Invoke(fmt.Sprintf("t%d", i), "transfer", args1, nil)
				r2, err2 := bySubmit.Submit(fmt.Sprintf("t%d", i), "transfer", args2, nil).Result()
				if (err1 == nil) != (err2 == nil) || string(r1) != string(r2) {
					t.Fatalf("op %d diverged: invoke=(%q,%v) submit=(%q,%v)", i, r1, err1, r2, err2)
				}
			}
			if err := byInvoke.Settle(); err != nil {
				t.Fatal(err)
			}
			if err := bySubmit.Settle(); err != nil {
				t.Fatal(err)
			}
			for a := 0; a < accounts; a++ {
				v1, _, err := byInvoke.Read(acctKey(a))
				if err != nil {
					t.Fatal(err)
				}
				v2, _, err := bySubmit.Read(acctKey(a))
				if err != nil {
					t.Fatal(err)
				}
				if DecodeInt(v1) != DecodeInt(v2) {
					t.Fatalf("acct %d: invoke=%d submit=%d", a, DecodeInt(v1), DecodeInt(v2))
				}
			}
		})
	}
}

// TestConcurrentSubmitMatchesSerialReference is the concurrency
// conformance property: N client goroutines pipeline one seeded social
// stream through Sessions on every cell, and the settled state must equal
// the serial reference. The social state model commutes (bounded-list
// merges, ±1 edge deltas), so any serializable — or merely exactly-once —
// execution of the accepted ops lands on the reference state regardless
// of interleaving; a mismatch means lost, duplicated, or torn delivery
// under concurrency. Run under -race in CI, this is also the data-race
// gauntlet for every cell's Submit path.
func TestConcurrentSubmitMatchesSerialReference(t *testing.T) {
	const users, fanout, ops, clients = 32, 8, 160, 8
	gen := workload.NewSocial(17, users, fanout)
	stream := make([]workload.SocialOp, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(19, 3)
			cell, err := DeployWith(model, SocialApp(), env, Options{Clients: clients, Partitions: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			var mu sync.Mutex
			accepted := make([]bool, ops)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					sess := NewSession(cell, fmt.Sprintf("client-%d", c), SessionOptions{MaxInFlight: 4})
					handles := make(map[int]Handle)
					for i := c; i < ops; i += clients {
						args, _ := json.Marshal(stream[i])
						handles[i] = sess.Submit(SocialOpName(stream[i]), args, nil)
					}
					sess.Drain()
					mu.Lock()
					for i, h := range handles {
						_, err := h.Result()
						accepted[i] = err == nil
					}
					mu.Unlock()
				}(c)
			}
			wg.Wait()
			audit := NewSocialAuditor()
			for i, op := range stream {
				if accepted[i] {
					audit.RecordOp(op)
				} else if model != Actors {
					// Only the lock-based cell may abort (retries exhausted
					// under contention); everywhere else every op must apply.
					t.Errorf("op %d rejected on %v", i, model)
				}
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("divergence from serial reference: %s", a)
			}
		})
	}
}

// TestCoreHandlesResolveExactlyOnceAcrossCrashReplay pins the handle
// contract of the deterministic cell: a handle exists only once its
// request is durably appended, so crashing the runtime with handles in
// flight and recovering must resolve every one of them — exactly once
// (double resolution would close a closed channel and panic), with the
// effects applied exactly once, and with later retries of the same
// request ids served from the result cache without re-execution. The
// contract must hold identically whether durability is the modeled
// SequenceDelay or the real write-ahead log (Options.LogDir), so the
// same body runs against both.
func TestCoreHandlesResolveExactlyOnceAcrossCrashReplay(t *testing.T) {
	t.Run("model", func(t *testing.T) {
		// SequenceDelay slows the paced log consumption so the crash
		// lands with most handles still unresolved.
		crashReplayHandles(t, Options{SequenceDelay: 300 * time.Microsecond})
	})
	t.Run("wal", func(t *testing.T) {
		// The real log: handles acknowledge after a fsynced group append,
		// and recovery replays from disk through Merkle verification.
		crashReplayHandles(t, Options{LogDir: t.TempDir(), Fsync: FsyncEveryBatch})
	})
}

func crashReplayHandles(t *testing.T, opts Options) {
	const ops, accounts, amount = 40, 4, 5
	env := NewEnv(21, 3)
	cell, err := DeployWith(Deterministic, BankApp(), env, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	rt := cell.(*coreCell).Runtime()
	argsFor := func(i int) []byte {
		args, _ := json.Marshal(bankDepositArgs{Account: i % accounts, Amount: amount})
		return args
	}
	handles := make([]Handle, ops)
	for i := range handles {
		handles[i] = cell.Submit(fmt.Sprintf("cr-%d", i), "deposit", argsFor(i), nil)
	}
	rt.Crash()
	if err := rt.Recover(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if _, err := h.Result(); err != nil {
			t.Fatalf("handle %d failed across crash-replay: %v", i, err)
		}
	}
	if err := cell.Settle(); err != nil {
		t.Fatal(err)
	}
	total := func() int64 {
		var sum int64
		for a := 0; a < accounts; a++ {
			raw, _, err := cell.Read(acctKey(a))
			if err != nil {
				t.Fatal(err)
			}
			sum += DecodeInt(raw)
		}
		return sum
	}
	if got := total(); got != ops*amount {
		t.Fatalf("replayed total = %d, want %d (lost or double-applied deposits)", got, ops*amount)
	}
	// Client retries of the same request ids: served from the result
	// cache, nothing re-applies.
	for i := 0; i < ops; i++ {
		if _, err := cell.Invoke(fmt.Sprintf("cr-%d", i), "deposit", argsFor(i), nil); err != nil {
			t.Fatalf("retry %d: %v", i, err)
		}
	}
	if err := cell.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := total(); got != ops*amount {
		t.Fatalf("total after retries = %d, want %d (dedup failed)", got, ops*amount)
	}
	if rt.Metrics().Counter("core.dedup_hits").Value() == 0 {
		t.Fatal("retries were not served from the result cache")
	}
}

// TestCoreConcurrentSubmissionsShareGroupAppends pins the batching
// behavior the concurrency matrix relies on: pipelined clients submitting
// concurrently must land in shared group log appends (one record, many
// transactions, one modeled SequenceDelay) — and the grouped execution
// must still apply every op exactly once.
func TestCoreConcurrentSubmissionsShareGroupAppends(t *testing.T) {
	const clients, perClient, accounts = 8, 40, 4
	env := NewEnv(23, 3)
	cell, err := DeployWith(Deterministic, BankApp(), env,
		Options{Workers: 16, SequenceDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := NewSession(cell, fmt.Sprintf("g%d", c), SessionOptions{MaxInFlight: 8})
			for i := 0; i < perClient; i++ {
				args, _ := json.Marshal(bankDepositArgs{Account: i % accounts, Amount: 1})
				sess.Submit("deposit", args, nil)
			}
			sess.Drain()
			if sess.Errors() != 0 {
				t.Errorf("client %d: %d submissions failed", c, sess.Errors())
			}
		}(c)
	}
	wg.Wait()
	if err := cell.Settle(); err != nil {
		t.Fatal(err)
	}
	rt := cell.(*coreCell).Runtime()
	if rt.Metrics().Counter("core.group_appends").Value() == 0 {
		t.Fatal("no group appends despite 8 pipelined clients")
	}
	var sum int64
	for a := 0; a < accounts; a++ {
		raw, _, err := cell.Read(acctKey(a))
		if err != nil {
			t.Fatal(err)
		}
		sum += DecodeInt(raw)
	}
	if sum != clients*perClient {
		t.Fatalf("total = %d, want %d", sum, clients*perClient)
	}
}

// TestSessionOrderKeysReadYourWrites pins what OrderKeys buys on the
// eventual cell: a read submitted through the same session after a write
// to an overlapping key must observe the write — the result record orders
// after the final write chunk in the key's partition log, so the read's
// gather sees it. Without client-side ordering the dataflow cell makes no
// such promise.
func TestSessionOrderKeysReadYourWrites(t *testing.T) {
	env := NewEnv(25, 3)
	cell, err := Deploy(StatefulDataflow, SocialApp(), env)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	sess := NewSession(cell, "ryw", SessionOptions{MaxInFlight: 8, OrderKeys: true})
	for post := int64(1); post <= 10; post++ {
		op := workload.SocialOp{Kind: workload.SocialPost, Author: 0, PostID: post, Followers: []int{1, 2}}
		args, _ := json.Marshal(op)
		sess.Submit(SocialComposePost, args, nil)
		qargs, _ := json.Marshal(socialTimelineArgs{User: 1})
		raw, err := sess.Invoke(SocialReadTimeline, qargs, nil)
		if err != nil {
			t.Fatalf("post %d: read-timeline: %v", post, err)
		}
		if !containsInt64(DecodeIntList(raw), post) {
			t.Fatalf("post %d: session read %v missed its own write", post, DecodeIntList(raw))
		}
	}
	sess.Drain()
	if sess.Errors() != 0 {
		t.Fatalf("%d submissions failed", sess.Errors())
	}
}
