package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/fabric"
	"tca/internal/mq"
	"tca/internal/region"
	"tca/internal/vclock"
)

// This file is the geo-replication layer: DeployReplicated wraps any
// cell as a replica group spanning N regions of a region.Topology, with
// the WAN modeled in simulated time (region latencies charge Traces,
// like every other fabric tier — geo experiments report modeled
// latencies that do not depend on the host).
//
// Two replication modes carry the paper's central trade across the WAN:
//
//   - AsyncReplication (the eventual cells): every region accepts writes
//     locally; each committed op's write-set is captured as per-key
//     versioned deltas and shipped to the peers on a short cadence
//     (GeoOptions.ShipInterval). Commutative writes (Add, PushCap) merge
//     exactly — they are delta/merge operations by construction — and
//     plain Puts merge last-writer-wins under a per-region Lamport clock
//     (internal/vclock) with the region index as tiebreak. Local reads
//     never pay the WAN but may be stale; Drain flushes the shippers and
//     reconciles every Put key to its global LWW winner, so replicas
//     converge EXACTLY on quiescence. The staleness probe
//     (StalenessStats) quantifies the divergence the auditor would
//     otherwise have to forbid: replication lag in committed txns and in
//     wall-modeled time, and the max per-key divergence window.
//
//   - SequencedReplication (the deterministic core): a single global
//     sequencer orders every write and feeds the identical op sequence
//     to every region's cell, so all replicas apply the same log order;
//     the group commit round-trips the WAN to a majority
//     (Topology.QuorumRTT) before acknowledging — cross-region commits
//     pay >= 1 WAN RTT, and every replica is serializable against the
//     same order (the auditor's verdict is exactly zero anomalies).
//
// Reads choose their consistency per request: ReadLocal serves from the
// submitting region's replica (fast, possibly stale under async);
// ReadHome round-trips the WAN to the home region (region 0), paying
// latency for the freshest replica. E24 (RunGeoCell) measures the
// resulting frontier.

// ReplicationMode selects how a replica group keeps its regions in sync.
type ReplicationMode int

const (
	// AsyncReplication ships per-key versioned deltas after local commit.
	AsyncReplication ReplicationMode = iota
	// SequencedReplication routes every write through one global
	// sequencer so all regions apply the identical log order.
	SequencedReplication
)

func (m ReplicationMode) String() string {
	if m == SequencedReplication {
		return "sequenced"
	}
	return "async"
}

// ReadMode selects which replica answers a read.
type ReadMode int

const (
	// ReadLocal answers from the submitting region's replica: no WAN
	// cost, staleness bounded by the replication lag.
	ReadLocal ReadMode = iota
	// ReadHome round-trips the WAN to the home region's replica.
	ReadHome
)

func (m ReadMode) String() string {
	if m == ReadHome {
		return "home"
	}
	return "local"
}

// geoApplyOp is the replication op DeployReplicated registers on every
// async replica: it applies a shipped delta batch through the cell's own
// Txn machinery. It is infrastructure, not application traffic — its
// writes are never re-captured or re-shipped.
const geoApplyOp = "geo/apply"

// defaultShipInterval is the async shipper cadence when GeoOptions
// leaves it zero.
const defaultShipInterval = time.Millisecond

// geoShedRetry paces shipper retries when a replica's admission control
// sheds a replication batch: replication is never dropped, only delayed.
const geoShedRetry = 200 * time.Microsecond

// StalenessStats is the auditor's staleness probe for one async replica
// group: how far the replicas trail the writes they have accepted.
// Real time (queue wait, measured) and modeled time (WAN, charged) are
// reported separately and summed into MaxLag, matching the repo's
// real-vs-simulated latency convention.
type StalenessStats struct {
	// ShippedBatches and ShippedWrites count replication traffic.
	ShippedBatches, ShippedWrites int64
	// MaxLagTxns is the peak number of locally committed txns not yet
	// applied on every peer — replication lag in committed txns.
	MaxLagTxns int64
	// MaxShipWait is the peak real time a committed write-set waited in
	// the outbox before shipping (bounded by the ship interval plus
	// scheduling).
	MaxShipWait time.Duration
	// MaxWANLag is the peak modeled WAN latency a batch paid to reach
	// its slowest peer.
	MaxWANLag time.Duration
	// MaxLag is the peak commit-to-fully-replicated delay: ship wait
	// (real) + WAN (modeled) + remote apply (real) — replication lag in
	// wall-modeled time.
	MaxLag time.Duration
	// MaxKeyWindow is the peak per-key divergence window: the longest
	// one key continuously had shipped-but-not-everywhere-applied
	// writes outstanding.
	MaxKeyWindow time.Duration
}

// GeoOptions configures DeployReplicated.
type GeoOptions struct {
	// Mode selects the replication mode (default AsyncReplication).
	Mode ReplicationMode
	// WAN is the cross-region base latency when Topology is nil
	// (default 20ms) — it becomes fabric.Config.CrossRegionLatency, the
	// new tier every region's cluster is built with.
	WAN time.Duration
	// Topology, when set, overrides the uniform WAN with an explicit
	// per-pair topology.
	Topology *region.Topology
	// ShipInterval is the async shipper cadence (default 1ms). The
	// staleness bound is ShipInterval + the pair's WAN latency.
	ShipInterval time.Duration
	// Seed drives the per-region fabric seeds and the topology jitter
	// (default 1).
	Seed int64
	// NodesPerRegion sizes each region's intra-region cluster (default 3).
	NodesPerRegion int
	// Cell passes deployment options to every region's cell.
	Cell Options
}

// geoVersion orders plain Puts across regions: Lamport time with the
// origin region index as tiebreak — a total order, so last-writer-wins
// merges commute and every replica picks the same winner.
type geoVersion struct {
	T uint64 `json:"t"`
	R int    `json:"r"`
}

func (v geoVersion) before(o geoVersion) bool {
	return v.T < o.T || (v.T == o.T && v.R < o.R)
}

// geoWrite is one captured write, in shippable form.
type geoWrite struct {
	Key   string     `json:"k"`
	Op    string     `json:"o"` // "add" | "push" | "put"
	Delta int64      `json:"d,omitempty"`
	ID    int64      `json:"i,omitempty"`
	Cap   int        `json:"c,omitempty"`
	Val   []byte     `json:"v,omitempty"`
	Ver   geoVersion `json:"ver"`
}

// geoWriteSet is one committed op's captured writes.
type geoWriteSet struct {
	ReqID  string     `json:"r"`
	Writes []geoWrite `json:"w"`
}

// geoBatch is one shipped replication batch.
type geoBatch struct {
	Origin int           `json:"o"`
	Sets   []geoWriteSet `json:"s"`
}

// geoEnvelope carries the request id into the wrapped op's body, so the
// delta recorder can key the captured write-set to the submission (and
// overwrite it idempotently when a cell legitimately re-executes the
// body on a conflict retry or recovery replay).
type geoEnvelope struct {
	R string          `json:"r"`
	A json.RawMessage `json:"a"`
}

func wrapGeoArgs(reqID string, args []byte) []byte {
	raw, _ := json.Marshal(geoEnvelope{R: reqID, A: args})
	return raw
}

// geoRecorder captures the write-sets of in-flight ops on one async
// replica. Writes recorded while a body runs are held under the reqID
// (open); when the submission's handle resolves successfully they are
// sealed into the outbox for shipping, and on failure they are dropped —
// so only writes that actually committed replicate.
type geoRecorder struct {
	mu   sync.Mutex
	open map[string][]geoWrite
}

func (r *geoRecorder) begin(reqID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.open[reqID] = nil
}

func (r *geoRecorder) record(reqID string, w geoWrite) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.open[reqID] = append(r.open[reqID], w)
}

func (r *geoRecorder) take(reqID string) []geoWrite {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.open[reqID]
	delete(r.open, reqID)
	return w
}

// geoTxn forwards one body's writes to the cell's Txn and records them
// for replication. Reads pass through untouched.
type geoTxn struct {
	Txn
	rep   *geoReplica
	reqID string
}

func (t geoTxn) Put(key string, value []byte) error {
	if err := t.Txn.Put(key, value); err != nil {
		return err
	}
	ver := t.rep.stampPut(key)
	t.rep.rec.record(t.reqID, geoWrite{Key: key, Op: "put", Val: value, Ver: ver})
	return nil
}

func (t geoTxn) Add(key string, delta int64) error {
	if err := t.Txn.Add(key, delta); err != nil {
		return err
	}
	t.rep.rec.record(t.reqID, geoWrite{Key: key, Op: "add", Delta: delta})
	return nil
}

func (t geoTxn) PushCap(key string, id int64, cap int) error {
	if err := t.Txn.PushCap(key, id, cap); err != nil {
		return err
	}
	t.rep.rec.record(t.reqID, geoWrite{Key: key, Op: "push", ID: id, Cap: cap})
	return nil
}

// geoOutboxEntry is one sealed write-set waiting for the shipper.
type geoOutboxEntry struct {
	set    geoWriteSet
	sealed time.Time
}

// geoReplica is one region's deployment within a replica group.
type geoReplica struct {
	idx  int
	name string
	env  *Env
	cell Cell

	// Async-mode state.
	rec    *geoRecorder
	clock  vclock.Lamport
	verMu  sync.Mutex
	vers   map[string]geoVersion // key -> version of the Put value applied
	outMu  sync.Mutex
	outbox []geoOutboxEntry
	shipN  atomic.Int64 // reqID source for apply submissions
}

// stampPut assigns a new LWW version to a local Put and advances the
// replica's record of the key's winning version.
func (r *geoReplica) stampPut(key string) geoVersion {
	v := geoVersion{T: r.clock.Tick(), R: r.idx}
	r.verMu.Lock()
	if cur, ok := r.vers[key]; !ok || cur.before(v) {
		r.vers[key] = v
	}
	r.verMu.Unlock()
	return v
}

// applyRemotePut decides one incoming Put under LWW: it observes the
// remote version on the local clock (so later local writes order after
// it) and reports whether the incoming version is at least the local
// winner — equal versions are the same write, re-applied idempotently.
func (r *geoReplica) applyRemotePut(key string, ver geoVersion) bool {
	r.clock.Observe(ver.T)
	r.verMu.Lock()
	defer r.verMu.Unlock()
	cur, ok := r.vers[key]
	if ok && ver.before(cur) {
		return false
	}
	r.vers[key] = ver
	return true
}

// ReplicaGroup is one application deployed across the regions of a
// topology — what DeployReplicated returns.
type ReplicaGroup struct {
	model ProgrammingModel
	app   *App
	mode  ReplicationMode
	top   *region.Topology
	reps  []*geoReplica

	shipEvery time.Duration
	stopShip  chan struct{}
	shipWG    sync.WaitGroup
	sealWG    sync.WaitGroup // outstanding sealOnCommit watchers
	flushReq  chan chan struct{}

	seq *geoSequencer

	// Staleness probe state.
	stMu     sync.Mutex
	st       StalenessStats
	pendTxns int64
	keyOpen  map[string]time.Time // key -> divergence window start
	keyPend  map[string]int       // key -> outstanding shipped-batch count
	closed   atomic.Bool
}

// DeployReplicated deploys app as a replica group: one cell per region,
// kept in sync per GeoOptions.Mode. Region names follow the topology
// (or "region-<i>" when one is built from GeoOptions.WAN); region 0 is
// the home region.
func DeployReplicated(model ProgrammingModel, app *App, regions int, gopts GeoOptions) (*ReplicaGroup, error) {
	if regions < 1 {
		return nil, fmt.Errorf("tca: replica group needs >= 1 region (got %d)", regions)
	}
	seed := gopts.Seed
	if seed == 0 {
		seed = 1
	}
	wan := gopts.WAN
	if wan <= 0 {
		wan = 20 * time.Millisecond
	}
	nodes := gopts.NodesPerRegion
	if nodes < 1 {
		nodes = 3
	}
	shipEvery := gopts.ShipInterval
	if shipEvery <= 0 {
		shipEvery = defaultShipInterval
	}

	top := gopts.Topology
	if top == nil {
		cfg := fabric.DefaultConfig()
		cfg.Seed = seed
		cfg.CrossRegionLatency = wan
		names := make([]string, regions)
		for i := range names {
			names[i] = fmt.Sprintf("region-%d", i)
		}
		top = region.New(cfg, names...)
	}
	if top.Size() != regions {
		return nil, fmt.Errorf("tca: topology has %d regions, want %d", top.Size(), regions)
	}

	g := &ReplicaGroup{
		model:     model,
		app:       app,
		mode:      gopts.Mode,
		top:       top,
		shipEvery: shipEvery,
		stopShip:  make(chan struct{}),
		flushReq:  make(chan chan struct{}),
		keyOpen:   make(map[string]time.Time),
		keyPend:   make(map[string]int),
	}
	for i, name := range top.Names() {
		rep := &geoReplica{
			idx:  i,
			name: name,
			rec:  &geoRecorder{open: make(map[string][]geoWrite)},
			vers: make(map[string]geoVersion),
		}
		// Each region is its own intra-region cluster, with the
		// cross-region tier configured and every node placed in the
		// region — the per-region analogue of NewEnv.
		cfg := fabric.DefaultConfig()
		cfg.Seed = seed + int64(i)
		cfg.CrossRegionLatency = wan
		ids := make([]fabric.NodeID, nodes)
		for n := range ids {
			ids[n] = fabric.NodeID(fmt.Sprintf("%s-node-%d", name, n))
		}
		cluster := fabric.NewCluster(cfg, ids...)
		for _, id := range ids {
			cluster.SetRegion(id, name)
		}
		rep.env = &Env{Cluster: cluster, Broker: mq.NewBroker()}

		deployApp := app
		if g.mode == AsyncReplication {
			deployApp = g.wrapApp(rep)
		}
		cell, err := DeployWith(model, deployApp, rep.env, gopts.Cell)
		if err != nil {
			for _, r := range g.reps {
				r.cell.Close()
			}
			return nil, err
		}
		rep.cell = cell
		g.reps = append(g.reps, rep)
	}

	if g.mode == AsyncReplication && regions > 1 {
		g.shipWG.Add(1)
		go g.shipLoop()
	}
	if g.mode == SequencedReplication {
		g.seq = newGeoSequencer(g)
	}
	return g, nil
}

// wrapApp builds the async replica's deployment app: every user op is
// re-registered with envelope args and a recording body, plus the
// geo/apply replication op. The wrapped ops keep the original names,
// key sets, and ReadOnly class, so cells schedule and audit them
// identically.
func (g *ReplicaGroup) wrapApp(rep *geoReplica) *App {
	w := NewApp(g.app.Name())
	for _, name := range g.app.Ops() {
		inner, _ := g.app.Op(name)
		w.Register(Op{
			Name:     inner.Name,
			ReadOnly: inner.ReadOnly,
			Keys: func(args []byte) []string {
				var env geoEnvelope
				json.Unmarshal(args, &env)
				return inner.Keys(env.A)
			},
			Body: func(tx Txn, args []byte) ([]byte, error) {
				var env geoEnvelope
				if err := json.Unmarshal(args, &env); err != nil {
					return nil, err
				}
				if inner.ReadOnly {
					return inner.Body(tx, env.A)
				}
				// Re-execution (conflict retry, recovery replay) restarts
				// the captured set, so it is never double-shipped.
				rep.rec.begin(env.R)
				return inner.Body(geoTxn{Txn: tx, rep: rep, reqID: env.R}, env.A)
			},
		})
	}
	w.Register(Op{
		Name: geoApplyOp,
		Keys: func(args []byte) []string {
			var b geoBatch
			json.Unmarshal(args, &b)
			seen := make(map[string]struct{})
			var keys []string
			for _, s := range b.Sets {
				for _, wr := range s.Writes {
					if _, dup := seen[wr.Key]; !dup {
						seen[wr.Key] = struct{}{}
						keys = append(keys, wr.Key)
					}
				}
			}
			return keys
		},
		Body: func(tx Txn, args []byte) ([]byte, error) {
			var b geoBatch
			if err := json.Unmarshal(args, &b); err != nil {
				return nil, err
			}
			for _, s := range b.Sets {
				for _, wr := range s.Writes {
					var err error
					switch wr.Op {
					case "add":
						err = tx.Add(wr.Key, wr.Delta)
					case "push":
						err = tx.PushCap(wr.Key, wr.ID, wr.Cap)
					case "put":
						if rep.applyRemotePut(wr.Key, wr.Ver) {
							err = tx.Put(wr.Key, wr.Val)
						}
					default:
						err = fmt.Errorf("tca: unknown geo write op %q", wr.Op)
					}
					if err != nil {
						return nil, err
					}
				}
			}
			return nil, nil
		},
	})
	return w
}

// Regions returns the number of regions.
func (g *ReplicaGroup) Regions() int { return len(g.reps) }

// Mode returns the replication mode.
func (g *ReplicaGroup) Mode() ReplicationMode { return g.mode }

// Topology returns the group's region topology.
func (g *ReplicaGroup) Topology() *region.Topology { return g.top }

// CellAt returns region i's cell (audits, crash/recovery tests).
func (g *ReplicaGroup) CellAt(i int) Cell { return g.reps[i].cell }

// Home returns the home region index (always 0).
func (g *ReplicaGroup) Home() int { return 0 }

// Submit starts a write op at the origin region. Async mode commits
// locally and replicates in the background; sequenced mode routes
// through the global sequencer — the trace is charged the WAN to the
// home sequencer plus the group's quorum round trip before the handle
// resolves. Read-only ops should use Query instead.
func (g *ReplicaGroup) Submit(origin int, reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	if origin < 0 || origin >= len(g.reps) {
		return resolvedHandle(nil, fmt.Errorf("tca: unknown origin region %d", origin))
	}
	if g.mode == SequencedReplication {
		return g.seq.submit(origin, reqID, opName, args, tr)
	}
	rep := g.reps[origin]
	h := rep.cell.Submit(reqID, opName, wrapGeoArgs(reqID, args), tr)
	if op, ok := g.app.Op(opName); ok && !op.ReadOnly && len(g.reps) > 1 {
		g.sealWG.Add(1)
		go func() {
			defer g.sealWG.Done()
			g.sealOnCommit(rep, reqID, h)
		}()
	}
	return h
}

// Invoke is Submit(...).Result().
func (g *ReplicaGroup) Invoke(origin int, reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	return g.Submit(origin, reqID, opName, args, tr).Result()
}

// sealOnCommit watches one async submission and, on success, moves its
// captured write-set into the outbox for shipping. Failed ops (business
// aborts, sheds) never replicate.
func (g *ReplicaGroup) sealOnCommit(rep *geoReplica, reqID string, h Handle) {
	_, err := h.Result()
	writes := rep.rec.take(reqID)
	if err != nil || len(writes) == 0 {
		return
	}
	now := time.Now()
	rep.outMu.Lock()
	rep.outbox = append(rep.outbox, geoOutboxEntry{set: geoWriteSet{ReqID: reqID, Writes: writes}, sealed: now})
	rep.outMu.Unlock()

	g.stMu.Lock()
	g.pendTxns++
	if g.pendTxns > g.st.MaxLagTxns {
		g.st.MaxLagTxns = g.pendTxns
	}
	for _, w := range writes {
		if _, open := g.keyOpen[w.Key]; !open {
			g.keyOpen[w.Key] = now
		}
		g.keyPend[w.Key]++
	}
	g.stMu.Unlock()
}

// Query runs a read-only op under the chosen read mode: ReadLocal at the
// origin replica (no WAN), ReadHome at region 0 with the WAN round trip
// charged to the trace.
func (g *ReplicaGroup) Query(origin int, mode ReadMode, reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	if origin < 0 || origin >= len(g.reps) {
		return nil, fmt.Errorf("tca: unknown origin region %d", origin)
	}
	target := origin
	if mode == ReadHome {
		target = g.Home()
		if target != origin {
			g.top.Charge(g.reps[origin].name, g.reps[target].name, tr)
			defer g.top.Charge(g.reps[target].name, g.reps[origin].name, tr)
		}
	}
	if g.mode == AsyncReplication {
		args = wrapGeoArgs(reqID, args)
	}
	return g.reps[target].cell.Invoke(reqID, opName, args, tr)
}

// ReadLocal returns the settled value of key at region i's replica.
func (g *ReplicaGroup) ReadLocal(i int, key string) ([]byte, bool, error) {
	return g.reps[i].cell.Read(key)
}

// ReadHome returns the settled value of key at the home replica,
// charging the WAN round trip from region i to tr.
func (g *ReplicaGroup) ReadHome(i int, key string, tr *fabric.Trace) ([]byte, bool, error) {
	if i != g.Home() {
		g.top.Charge(g.reps[i].name, g.reps[g.Home()].name, tr)
		defer g.top.Charge(g.reps[g.Home()].name, g.reps[i].name, tr)
	}
	return g.reps[g.Home()].cell.Read(key)
}

// shipLoop is the async shipper: every ShipInterval it drains each
// region's outbox into one batch per peer and applies it, exactly once
// per peer, through the peer cell's own machinery.
func (g *ReplicaGroup) shipLoop() {
	defer g.shipWG.Done()
	tick := time.NewTicker(g.shipEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			g.shipAll()
		case done := <-g.flushReq:
			g.shipAll()
			close(done)
		case <-g.stopShip:
			g.shipAll()
			return
		}
	}
}

// shipAll flushes every region's outbox to every peer, synchronously —
// when it returns, everything sealed before the call has applied
// everywhere. Peers are shipped in parallel; the probe's lag numbers
// combine the real queue wait with the modeled WAN charge.
func (g *ReplicaGroup) shipAll() {
	for _, src := range g.reps {
		src.outMu.Lock()
		entries := src.outbox
		src.outbox = nil
		src.outMu.Unlock()
		if len(entries) == 0 {
			continue
		}
		sets := make([]geoWriteSet, len(entries))
		oldest := entries[0].sealed
		var nWrites int64
		for i, e := range entries {
			sets[i] = e.set
			if e.sealed.Before(oldest) {
				oldest = e.sealed
			}
			nWrites += int64(len(e.set.Writes))
		}
		wait := time.Since(oldest)
		batch, _ := json.Marshal(geoBatch{Origin: src.idx, Sets: sets})
		shipID := src.shipN.Add(1)

		var maxWAN time.Duration
		var wanMu sync.Mutex
		var wg sync.WaitGroup
		for _, dst := range g.reps {
			if dst == src {
				continue
			}
			dst := dst
			wg.Add(1)
			go func() {
				defer wg.Done()
				tr := fabric.NewTrace()
				wan := g.top.Charge(src.name, dst.name, tr)
				reqID := fmt.Sprintf("geo/%d/%d/%d", src.idx, dst.idx, shipID)
				for {
					_, err := dst.cell.Invoke(reqID, geoApplyOp, batch, tr)
					if err != nil && errors.Is(err, ErrOverloaded) {
						time.Sleep(geoShedRetry)
						continue
					}
					break
				}
				wanMu.Lock()
				if wan > maxWAN {
					maxWAN = wan
				}
				wanMu.Unlock()
			}()
		}
		wg.Wait()

		g.stMu.Lock()
		g.st.ShippedBatches++
		g.st.ShippedWrites += nWrites
		g.pendTxns -= int64(len(entries))
		if wait > g.st.MaxShipWait {
			g.st.MaxShipWait = wait
		}
		if maxWAN > g.st.MaxWANLag {
			g.st.MaxWANLag = maxWAN
		}
		if lag := time.Since(oldest) + maxWAN; lag > g.st.MaxLag {
			g.st.MaxLag = lag
		}
		now := time.Now()
		for _, e := range entries {
			for _, w := range e.set.Writes {
				g.keyPend[w.Key]--
				if g.keyPend[w.Key] > 0 {
					continue
				}
				delete(g.keyPend, w.Key)
				if open, ok := g.keyOpen[w.Key]; ok {
					delete(g.keyOpen, w.Key)
					if win := now.Sub(open) + maxWAN; win > g.st.MaxKeyWindow {
						g.st.MaxKeyWindow = win
					}
				}
			}
		}
		g.stMu.Unlock()
	}
}

// Staleness returns the probe's counters so far.
func (g *ReplicaGroup) Staleness() StalenessStats {
	g.stMu.Lock()
	defer g.stMu.Unlock()
	return g.st
}

// Drain quiesces the group: every accepted op applied, every sealed
// write-set shipped and applied on every peer, every replica settled,
// and — async mode — every Put key reconciled to its global LWW winner,
// so replicas converge exactly, not approximately. Callers must have
// stopped submitting.
func (g *ReplicaGroup) Drain() error {
	for _, rep := range g.reps {
		if err := rep.cell.Settle(); err != nil {
			return err
		}
	}
	if g.mode != AsyncReplication || len(g.reps) == 1 {
		return nil
	}
	// Sealing runs in handle-watcher goroutines; Settle resolved every
	// handle, so waiting here guarantees every accepted write-set is in
	// its outbox before the flush — without it the last op per region can
	// race the flush and silently never replicate.
	g.sealWG.Wait()
	done := make(chan struct{})
	g.flushReq <- done
	<-done
	for _, rep := range g.reps {
		if err := rep.cell.Settle(); err != nil {
			return err
		}
	}
	return g.reconcilePuts()
}

// reconcilePuts force-syncs every Put key to the global LWW winner on
// every replica. Shipping alone already converges when version order and
// apply order agree; this pass closes the remaining race (a local write
// racing a remote apply on one key) by re-asserting the winner — an
// idempotent no-op everywhere the winner already sits.
func (g *ReplicaGroup) reconcilePuts() error {
	type winner struct {
		ver geoVersion
		rep *geoReplica
	}
	winners := make(map[string]winner)
	for _, rep := range g.reps {
		rep.verMu.Lock()
		for k, v := range rep.vers {
			if w, ok := winners[k]; !ok || w.ver.before(v) {
				winners[k] = winner{ver: v, rep: rep}
			}
		}
		rep.verMu.Unlock()
	}
	if len(winners) == 0 {
		return nil
	}
	var sets []geoWriteSet
	for k, w := range winners {
		val, found, err := w.rep.cell.Read(k)
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		sets = append(sets, geoWriteSet{
			ReqID:  fmt.Sprintf("geo/sync/%s", k),
			Writes: []geoWrite{{Key: k, Op: "put", Val: val, Ver: w.ver}},
		})
	}
	if len(sets) == 0 {
		return nil
	}
	batch, _ := json.Marshal(geoBatch{Origin: -1, Sets: sets})
	for _, rep := range g.reps {
		reqID := fmt.Sprintf("geo/sync/%d/%d", rep.idx, rep.shipN.Add(1))
		for {
			_, err := rep.cell.Invoke(reqID, geoApplyOp, batch, nil)
			if err != nil && errors.Is(err, ErrOverloaded) {
				time.Sleep(geoShedRetry)
				continue
			}
			if err != nil {
				return err
			}
			break
		}
		if err := rep.cell.Settle(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops replication and closes every region's cell.
func (g *ReplicaGroup) Close() {
	if g.closed.Swap(true) {
		return
	}
	if g.mode == AsyncReplication && len(g.reps) > 1 {
		close(g.stopShip)
		g.shipWG.Wait()
	}
	if g.seq != nil {
		g.seq.stop()
	}
	for _, rep := range g.reps {
		rep.cell.Close()
	}
}

// --- sequenced mode ---------------------------------------------------------

// geoSeqReq is one write waiting for the global sequencer.
type geoSeqReq struct {
	origin int
	reqID  string
	op     string
	args   []byte
	tr     *fabric.Trace
	h      *geoSeqHandle
}

// geoSeqHandle resolves with the home replica's result and carries the
// home cell's serialization stamp for the auditor.
type geoSeqHandle struct {
	*opHandle
	seq atomic.Int64
}

// Seq returns the home replica's log-derived serialization position
// (0 until resolution) — the same contract as the core cell's handles.
func (h *geoSeqHandle) Seq() int64 { return h.seq.Load() }

// geoSeqGroupCap bounds how many pending writes one sequencer round
// packs into a single cross-region group commit (one quorum WAN round
// trip amortized across the group, like the WAL's group fsync).
const geoSeqGroupCap = 64

// geoSequencer is the global sequencer of SequencedReplication: one
// goroutine drains submissions in arrival order and feeds the identical
// op sequence to every region's cell, so every replica applies — and
// logs — the same order. Each group pays one modeled quorum WAN round
// trip before its handles resolve.
type geoSequencer struct {
	g    *ReplicaGroup
	in   chan geoSeqReq
	quit chan struct{}
	wg   sync.WaitGroup

	// logs records every replica's applied order as (reqID, log stamp)
	// pairs — the surface the identical-log-order tests compare across
	// regions and across crash/replay.
	logMu sync.Mutex
	logs  [][]geoSeqEntry
}

// geoSeqEntry is one committed op in one replica's log order.
type geoSeqEntry struct {
	reqID string
	seq   int64
}

func newGeoSequencer(g *ReplicaGroup) *geoSequencer {
	s := &geoSequencer{
		g:    g,
		in:   make(chan geoSeqReq, geoSeqGroupCap),
		quit: make(chan struct{}),
		logs: make([][]geoSeqEntry, len(g.reps)),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *geoSequencer) submit(origin int, reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	// The submission travels to the home-region sequencer first: one WAN
	// leg, charged on the way in.
	home := s.g.Home()
	if origin != home {
		s.g.top.Charge(s.g.reps[origin].name, s.g.reps[home].name, tr)
	}
	h := &geoSeqHandle{opHandle: newOpHandle()}
	select {
	case s.in <- geoSeqReq{origin: origin, reqID: reqID, op: opName, args: args, tr: tr, h: h}:
	case <-s.quit:
		h.resolve(nil, errors.New("tca: replica group closed"))
	}
	return h
}

func (s *geoSequencer) stop() {
	close(s.quit)
	s.wg.Wait()
}

// loop sequences groups: drain up to geoSeqGroupCap pending writes,
// submit them in the same order to every region (per-region goroutines,
// order preserved within each region), wait for every replica's
// acknowledgment, then charge the group's quorum round trip and resolve
// every handle with the home replica's result.
func (s *geoSequencer) loop() {
	defer s.wg.Done()
	for {
		var group []geoSeqReq
		select {
		case r := <-s.in:
			group = append(group, r)
		case <-s.quit:
			return
		}
	drain:
		for len(group) < geoSeqGroupCap {
			select {
			case r := <-s.in:
				group = append(group, r)
			default:
				break drain
			}
		}
		s.commit(group)
	}
}

func (s *geoSequencer) commit(group []geoSeqReq) {
	g := s.g
	home := g.Home()
	handles := make([][]Handle, len(g.reps))
	var wg sync.WaitGroup
	for ri, rep := range g.reps {
		ri, rep := ri, rep
		handles[ri] = make([]Handle, len(group))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, req := range group {
				// Same reqID on every replica: the op is one logical
				// transaction applied N times, idempotent per cell.
				var tr *fabric.Trace
				if ri == req.origin {
					tr = req.tr
				}
				h := rep.cell.Submit(req.reqID, req.op, req.args, tr)
				handles[ri][i] = h
				// The deterministic cell's Submit returns at durable
				// append, so sequential submission pins the log order;
				// waiting for apply here would serialize execution too.
			}
			for _, h := range handles[ri] {
				h.Result()
			}
		}()
	}
	wg.Wait()
	// One quorum WAN round trip per group — the cross-region commit
	// cost, amortized across the group's members like a group fsync.
	rtt := g.top.QuorumRTT(g.reps[home].name)
	s.logMu.Lock()
	for ri := range g.reps {
		for i, req := range group {
			if _, err := handles[ri][i].Result(); err != nil {
				continue
			}
			if sh, ok := handles[ri][i].(interface{ Seq() int64 }); ok {
				s.logs[ri] = append(s.logs[ri], geoSeqEntry{reqID: req.reqID, seq: sh.Seq()})
			}
		}
	}
	s.logMu.Unlock()
	for i, req := range group {
		if rtt > 0 {
			req.tr.Charge(rtt)
		}
		if sh, ok := handles[home][i].(interface{ Seq() int64 }); ok {
			req.h.seq.Store(sh.Seq())
		}
		req.h.resolve(handles[home][i].Result())
	}
}

// SequencedOrder returns region i's applied commit order — reqIDs sorted
// by the replica's own log-derived serialization stamps. Under
// SequencedReplication this order must be identical on every region, and
// must survive one region's crash/replay (the log replays in append
// order); the geo tests pin both. Nil for async groups.
func (g *ReplicaGroup) SequencedOrder(i int) []string {
	if g.seq == nil {
		return nil
	}
	g.seq.logMu.Lock()
	entries := append([]geoSeqEntry(nil), g.seq.logs[i]...)
	g.seq.logMu.Unlock()
	sort.Slice(entries, func(a, b int) bool { return entries[a].seq < entries[b].seq })
	out := make([]string, len(entries))
	for j, e := range entries {
		out[j] = e.reqID
	}
	return out
}
