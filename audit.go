package tca

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tca/internal/vclock"
)

// Online incremental auditing. Every workload auditor used to replay the
// full accepted history against a serial reference after the run —
// O(history) wall clock at verification time, and only exact for
// order-confluent mixes because the reference was replayed in completion
// order. This file rebuilds auditing as one shared layer:
//
//   - Auditor is the uniform interface the harness drives live: Record an
//     accepted intent, Observe each applied commit, ask for Violations so
//     far, and Verify the settled cell at the end. Observe does O(delta)
//     work per commit (replay one body on the reference, maintain
//     delta-updated constraint expectations, check live invariants against
//     sampled cell values); nothing replays the history twice.
//   - ConstraintSet is the reusable invariant vocabulary in the spirit of
//     deductive-database constraint checking: per-key predicates (stock
//     never negative), per-key totals maintained by deltas (warehouse
//     YTD = sum of payments), and prefix sums (bank conservation).
//   - orderAudit is the serializability verdict: every non-commutative
//     commit is kept in a bounded per-key window together with the
//     reference values it saw, and a final mismatch is accepted if ANY
//     linear extension of the real-time precedence order reproduces the
//     cell's value — the precedence-graph check that makes non-confluent
//     mixes (blind price writes raced with checkouts) audit exactly
//     instead of reporting false drift. Histories whose values can only be
//     produced by an order that contradicts real time are counted as
//     graph cycles; histories no serial order explains stay violations.
//
// Memory is bounded by live state size plus the per-key windows, never by
// history length: commutative commits (Add/PushCap-only bodies, the vast
// majority of every mix) are folded into the reference and dropped.

// auditWindow bounds the per-key commit window the order verdict keeps;
// older commits are folded into successor pre-values and evicted (the
// verdict then conservatively reports their keys without reorder rescue).
// auditMaxComponent and auditMaxTrials bound the verdict's search;
// auditLiveKeyCap bounds per-commit live sampling; auditMaxViolations
// bounds the live violation log.
const (
	auditWindow        = 64
	auditMaxComponent  = 12
	auditMaxCompNodes  = 512
	auditMaxTrials     = 400
	auditLiveKeyCap    = 4
	auditMaxViolations = 128
	auditReorderWindow = 1024
)

// mapTxn is the reference Txn: a plain map, applied sequentially. The
// auditors replay the op stream on it with the very same bodies, making
// the reference definitionally the serial outcome in completion order.
type mapTxn map[string][]byte

func (m mapTxn) Get(key string) ([]byte, bool, error) {
	v, ok := m[key]
	return v, ok, nil
}

func (m mapTxn) Put(key string, value []byte) error {
	m[key] = value
	return nil
}

func (m mapTxn) Add(key string, delta int64) error {
	m[key] = EncodeInt(DecodeInt(m[key]) + delta)
	return nil
}

func (m mapTxn) PushCap(key string, id int64, cap int) error {
	return pushCapRMW(m, key, id, cap)
}

// Commit is one applied op as the harness observed it: the request, the
// accept/apply interval (zero times mean "serial" — the auditor stamps
// them from its logical clock), and optionally a sample of cell values at
// apply time for live constraint checks.
type Commit struct {
	ReqID string
	Op    string
	Args  []byte
	// Start is when the op was accepted, End when its handle resolved.
	// The order verdict derives its fixed precedence edges from these:
	// disjoint intervals must serialize in real-time order, overlapping
	// ones may serialize either way.
	Start, End time.Time
	// Live holds sampled cell values (key -> raw) peeked right after the
	// commit applied, for the ConstraintSet's live checks. Nil is fine.
	Live map[string][]byte
	// Seq, when nonzero, is the cell's own serialization stamp for this
	// commit (e.g. the deterministic core's log position). The order
	// verdict replays commits in Seq order as its first candidate — the
	// cell's actual commit order, which the completion-order reference
	// scrambles through racing handle goroutines.
	Seq int64
}

// AuditStats summarizes an auditor's counters.
type AuditStats struct {
	// Observed counts commits folded into the reference.
	Observed int64
	// LiveViolations counts live constraint hits during the run (delta
	// checks on sampled values), before any final verification.
	LiveViolations int
	// Reordered counts final mismatches explained by a legal reordering
	// of racing commits — false positives a completion-order audit would
	// have reported, suppressed by the precedence-graph verdict.
	Reordered int
	// GraphCycles counts conflict components whose cell values are only
	// explainable by a serialization contradicting real-time precedence —
	// a cycle in the precedence graph, reported as a violation.
	GraphCycles int
	// Staleness is the geo-replication staleness probe: under async
	// replication, reads from a replica are query answering over
	// possibly-divergent state, so the auditor quantifies the divergence
	// (replication lag, per-key windows) instead of forbidding it. Zero
	// for single-region and sequenced deployments.
	Staleness StalenessStats
}

// Auditor is the uniform live-auditing interface every workload ships.
// Record declares an accepted intent, Observe folds one applied commit
// into the reference in O(delta), Discard drops a recorded intent that
// never applied, Violations lists live constraint hits so far, Verify
// settles the cell and returns the final anomaly list under the
// precedence-graph order verdict, and Close releases state.
type Auditor interface {
	Record(reqID, op string, args []byte)
	Observe(c Commit)
	Discard(reqID string)
	Violations() []string
	Stats() AuditStats
	Verify(c Cell) ([]string, error)
	Close()
}

// --- ConstraintSet ----------------------------------------------------------

// KeyCheck is a per-key predicate constraint: Check returns "" while the
// invariant holds, a violation description otherwise. Live checks run
// against sampled cell values at each Observe; every check also runs
// against the settled cell at Verify.
type KeyCheck struct {
	Name   string
	Prefix string
	Live   bool
	Check  func(key string, val []byte) string
}

// NonNegative is the classic inventory invariant as a KeyCheck: every
// EncodeInt value under prefix stays >= 0.
func NonNegative(name, prefix string, live bool) KeyCheck {
	return KeyCheck{Name: name, Prefix: prefix, Live: live, Check: func(key string, val []byte) string {
		if v := DecodeInt(val); v < 0 {
			return fmt.Sprintf("%s: %s = %d < 0", name, key, v)
		}
		return ""
	}}
}

// KeyTotal is a per-key equality maintained by deltas: Delta maps one
// observed commit to expectation increments (key -> delta), and Verify
// compares each tracked key's settled value to the accumulated
// expectation. Maintenance is O(delta), not O(history).
type KeyTotal struct {
	Name  string
	Delta func(op string, args []byte) map[string]int64
	// Describe renders one mismatch; nil uses a generic message.
	Describe func(key string, got, want int64) string
}

// SumTotal is a single running total over a key prefix: Delta maps one
// observed commit to a total increment, and Verify compares the sum of
// settled values under the prefix to the accumulated expectation — the
// shape of the bank's conservation invariant.
type SumTotal struct {
	Name   string
	Prefix string
	Delta  func(op string, args []byte) int64
}

// ConstraintSet is a reusable bundle of delta-maintained invariants; the
// workload auditors each declare one and the shared engine maintains it.
type ConstraintSet struct {
	checks    []KeyCheck
	keyTotals []KeyTotal
	sums      []SumTotal
}

// NewConstraints returns an empty set.
func NewConstraints() *ConstraintSet { return &ConstraintSet{} }

// Check appends a per-key predicate.
func (s *ConstraintSet) Check(c KeyCheck) *ConstraintSet {
	s.checks = append(s.checks, c)
	return s
}

// KeyTotal appends a per-key delta-maintained equality.
func (s *ConstraintSet) KeyTotal(c KeyTotal) *ConstraintSet {
	s.keyTotals = append(s.keyTotals, c)
	return s
}

// SumTotal appends a prefix-sum delta-maintained equality.
func (s *ConstraintSet) SumTotal(c SumTotal) *ConstraintSet {
	s.sums = append(s.sums, c)
	return s
}

// --- shared reference engine ------------------------------------------------

// auditorConfig wires one workload onto the shared engine.
type auditorConfig struct {
	app  *App
	cons *ConstraintSet
	// compare renders a per-key divergence between the cell's settled
	// value and the reference ("" = semantically equal). Nil compares
	// EncodeInt values.
	compare func(key string, got, want []byte) string
	// onObserve runs per observed commit under the auditor lock, for
	// workload-specific incremental bookkeeping (e.g. social lastPost).
	onObserve func(op string, args []byte)
	// finalize runs at Verify with a settled-cell reader, appending any
	// workload-specific final anomalies (e.g. read-your-writes).
	finalize func(read func(key string) ([]byte, error), add func(string)) error
}

type pendingIntent struct {
	op    string
	args  []byte
	start time.Time
}

// refAuditor is the shared engine behind every workload auditor: the
// serial reference, the constraint machinery, and the order verdict.
type refAuditor struct {
	mu      sync.Mutex
	cfg     auditorConfig
	state   mapTxn
	pending map[string]pendingIntent
	order   *orderAudit
	// clock stamps serial (zero-time) commits so offline replays still
	// carry a total order for the precedence graph.
	clock vclock.Lamport

	keyTotals []map[string]int64 // parallel to cfg.cons.keyTotals
	sums      []int64            // parallel to cfg.cons.sums
	hasLive   bool

	viols     []string
	violTotal int
	observed  int64
	reordered int
	cycles    int
	staleness StalenessStats

	// reorder buffers sequenced commits (Commit.Seq != 0), kept sorted by
	// Seq, so folding happens in the cell's serialization order even when
	// racing handle goroutines observe out of it.
	reorder []Commit
}

func newRefAuditor(cfg auditorConfig) *refAuditor {
	if cfg.cons == nil {
		cfg.cons = NewConstraints()
	}
	if cfg.compare == nil {
		cfg.compare = intCompare
	}
	a := &refAuditor{
		cfg:       cfg,
		state:     make(mapTxn),
		pending:   make(map[string]pendingIntent),
		order:     newOrderAudit(auditWindow),
		keyTotals: make([]map[string]int64, len(cfg.cons.keyTotals)),
		sums:      make([]int64, len(cfg.cons.sums)),
	}
	for i := range a.keyTotals {
		a.keyTotals[i] = make(map[string]int64)
	}
	for _, ck := range cfg.cons.checks {
		if ck.Live {
			a.hasLive = true
		}
	}
	return a
}

func intCompare(key string, got, want []byte) string {
	g, w := DecodeInt(got), DecodeInt(want)
	if g == w {
		return ""
	}
	return fmt.Sprintf("%s: %d, serial reference %d", key, g, w)
}

// Record declares an accepted intent; its Observe (or Discard) resolves it.
func (a *refAuditor) Record(reqID, op string, args []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pending[reqID] = pendingIntent{op: op, args: args, start: time.Now()}
}

// Discard drops a recorded intent whose submission was rejected.
func (a *refAuditor) Discard(reqID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.pending, reqID)
}

// Observe folds one applied commit into the reference: replay its body on
// the serial state (recording the actual read/write footprint), update the
// delta-maintained expectations, run live checks against the sampled
// values, and hand the footprint to the order verdict. O(delta) per call.
//
// Commits carrying a cell serialization stamp (Commit.Seq) pass through a
// bounded reorder buffer first: racing handle goroutines deliver them
// slightly out of commit order, and folding them re-sequenced keeps the
// reference — and every window pre-value — exact against the cell's
// actual serialization instead of relying on the order verdict to repair
// the scramble. The buffer holds at most auditReorderWindow commits (far
// above any harness's in-flight depth, the bound on observation
// displacement); Violations, Stats, and Verify drain it.
func (a *refAuditor) Observe(c Commit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.pending[c.ReqID]; ok {
		delete(a.pending, c.ReqID)
		if c.Op == "" {
			c.Op, c.Args = p.op, p.args
		}
		if c.Start.IsZero() {
			c.Start = p.start
		}
	}
	if _, ok := a.cfg.app.Op(c.Op); !ok {
		return
	}
	if c.End.IsZero() {
		// Serial stream: stamp a strictly increasing logical instant so
		// the precedence graph sees a total real-time order.
		t := time.Unix(0, int64(a.clock.Tick()))
		c.Start, c.End = t, t
	}
	if c.Seq == 0 {
		a.fold(c)
		return
	}
	i := sort.Search(len(a.reorder), func(i int) bool { return a.reorder[i].Seq > c.Seq })
	a.reorder = append(a.reorder, Commit{})
	copy(a.reorder[i+1:], a.reorder[i:])
	a.reorder[i] = c
	for len(a.reorder) > auditReorderWindow {
		a.fold(a.reorder[0])
		a.reorder = a.reorder[1:]
	}
}

// drain folds every buffered sequenced commit. Callers hold a.mu.
func (a *refAuditor) drain() {
	for _, c := range a.reorder {
		a.fold(c)
	}
	a.reorder = nil
}

// fold does Observe's real work on one commit. Callers hold a.mu.
func (a *refAuditor) fold(c Commit) {
	op, ok := a.cfg.app.Op(c.Op)
	if !ok {
		return
	}
	a.observed++

	rec := newRecordingTxn(a.state)
	op.Body(rec, c.Args) // body errors mirror the cell's own abort: partial reference effects match
	cons := a.cfg.cons
	for i, kt := range cons.keyTotals {
		for k, d := range kt.Delta(c.Op, c.Args) {
			a.keyTotals[i][k] += d
		}
	}
	for i, st := range cons.sums {
		a.sums[i] += st.Delta(c.Op, c.Args)
	}
	if a.cfg.onObserve != nil {
		a.cfg.onObserve(c.Op, c.Args)
	}
	for _, ck := range cons.checks {
		if !ck.Live {
			continue
		}
		for k, v := range c.Live {
			if !strings.HasPrefix(k, ck.Prefix) {
				continue
			}
			if msg := ck.Check(k, v); msg != "" {
				a.violation(msg)
			}
		}
	}
	if len(rec.writes) > 0 {
		a.order.observe(&auditNode{
			seq:    a.observed,
			cseq:   c.Seq,
			op:     c.Op,
			args:   c.Args,
			start:  c.Start,
			end:    c.End,
			reads:  rec.readKeys(),
			writes: rec.writeKeys(),
			commut: rec.writes,
			pre:    rec.pre,
		})
	}
}

// ObserveSerial records and immediately observes one op with auditor-
// assigned identity and logical time — the serial-driver convenience the
// typed RecordOp wrappers use.
func (a *refAuditor) ObserveSerial(op string, args []byte) {
	a.Observe(Commit{ReqID: fmt.Sprintf("serial/%d", a.clock.Observe(0)), Op: op, Args: args})
}

func (a *refAuditor) violation(msg string) {
	a.violTotal++
	if len(a.viols) < auditMaxViolations {
		a.viols = append(a.viols, msg)
	}
}

// Violations returns the live constraint hits observed so far.
func (a *refAuditor) Violations() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drain()
	out := append([]string(nil), a.viols...)
	if a.violTotal > len(a.viols) {
		out = append(out, fmt.Sprintf("(+%d more live violations)", a.violTotal-len(a.viols)))
	}
	return out
}

// Stats returns the auditor's counters.
func (a *refAuditor) Stats() AuditStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drain()
	return AuditStats{
		Observed:       a.observed,
		LiveViolations: a.violTotal,
		Reordered:      a.reordered,
		GraphCycles:    a.cycles,
		Staleness:      a.staleness,
	}
}

// ObserveStaleness folds a replica group's staleness probe into the
// auditor's stats. It is not part of the Auditor interface — geo
// harnesses feed it by type assertion, so third-party auditors stay
// valid — and it is monotone: counters accumulate, maxima keep the peak
// across multiple probes.
func (a *refAuditor) ObserveStaleness(s StalenessStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.staleness.ShippedBatches += s.ShippedBatches
	a.staleness.ShippedWrites += s.ShippedWrites
	if s.MaxLagTxns > a.staleness.MaxLagTxns {
		a.staleness.MaxLagTxns = s.MaxLagTxns
	}
	if s.MaxShipWait > a.staleness.MaxShipWait {
		a.staleness.MaxShipWait = s.MaxShipWait
	}
	if s.MaxWANLag > a.staleness.MaxWANLag {
		a.staleness.MaxWANLag = s.MaxWANLag
	}
	if s.MaxLag > a.staleness.MaxLag {
		a.staleness.MaxLag = s.MaxLag
	}
	if s.MaxKeyWindow > a.staleness.MaxKeyWindow {
		a.staleness.MaxKeyWindow = s.MaxKeyWindow
	}
}

// Close releases the auditor's state.
func (a *refAuditor) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state = make(mapTxn)
	a.pending = make(map[string]pendingIntent)
	a.order = newOrderAudit(auditWindow)
}

// LiveKeys returns the declared keys of an op that the set's live checks
// watch, capped — what the harness samples from the cell after the commit.
func (a *refAuditor) LiveKeys(op string, args []byte) []string {
	if !a.hasLive {
		return nil
	}
	o, ok := a.cfg.app.Op(op)
	if !ok {
		return nil
	}
	var out []string
	for _, k := range a.cfg.app.keysOf(o, args) {
		for _, ck := range a.cfg.cons.checks {
			if ck.Live && strings.HasPrefix(k, ck.Prefix) {
				out = append(out, k)
				break
			}
		}
		if len(out) == auditLiveKeyCap {
			break
		}
	}
	return out
}

// Verify settles the cell and returns the final anomaly list: per-key
// divergences from the serial reference filtered through the order
// verdict, constraint predicate failures on settled state, and every
// delta-maintained total that does not match. Work is O(live keys), never
// O(history).
func (a *refAuditor) Verify(c Cell) ([]string, error) {
	if err := c.Settle(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drain()
	var anomalies []string
	cellVals := make(map[string][]byte)
	read := func(key string) ([]byte, error) {
		if v, ok := cellVals[key]; ok {
			return v, nil
		}
		raw, _, err := c.Read(key)
		if err != nil {
			return nil, err
		}
		cellVals[key] = raw
		return raw, nil
	}

	mismatched := make(map[string]string) // key -> divergence message
	for _, key := range sortedKeys(a.state) {
		raw, err := read(key)
		if err != nil {
			return anomalies, err
		}
		if msg := a.cfg.compare(key, raw, a.state[key]); msg != "" {
			mismatched[key] = msg
		}
		for _, ck := range a.cfg.cons.checks {
			if strings.HasPrefix(key, ck.Prefix) {
				if msg := ck.Check(key, raw); msg != "" {
					anomalies = append(anomalies, msg)
				}
			}
		}
	}

	// The order verdict: a mismatch survives only if no serializable
	// completion order explains the cell's values.
	suppressed, cycles := a.resolveOrders(mismatched, read)
	a.cycles += cycles
	for _, key := range sortedKeys(mismatched) {
		if suppressed[key] {
			a.reordered++
			continue
		}
		anomalies = append(anomalies, mismatched[key])
	}

	for i, kt := range a.cfg.cons.keyTotals {
		for _, key := range sortedKeys(a.keyTotals[i]) {
			want := a.keyTotals[i][key]
			raw, err := read(key)
			if err != nil {
				return anomalies, err
			}
			if got := DecodeInt(raw); got != want {
				if kt.Describe != nil {
					anomalies = append(anomalies, kt.Describe(key, got, want))
				} else {
					anomalies = append(anomalies, fmt.Sprintf("%s: %s = %d, delta-maintained expectation %d", kt.Name, key, got, want))
				}
			}
		}
	}
	for i, st := range a.cfg.cons.sums {
		var got int64
		for key := range a.state {
			if !strings.HasPrefix(key, st.Prefix) {
				continue
			}
			raw, err := read(key)
			if err != nil {
				return anomalies, err
			}
			got += DecodeInt(raw)
		}
		if got != a.sums[i] {
			anomalies = append(anomalies, fmt.Sprintf("%s: %s* sums to %d, delta-maintained expectation %d", st.Name, st.Prefix, got, a.sums[i]))
		}
	}
	if a.cfg.finalize != nil {
		if err := a.cfg.finalize(read, func(msg string) { anomalies = append(anomalies, msg) }); err != nil {
			return anomalies, err
		}
	}
	return anomalies, nil
}

// --- recording replay -------------------------------------------------------

// preVal is a reference value snapshot taken before a body's first access.
type preVal struct {
	val   []byte
	found bool
}

// recordingTxn wraps the reference state to capture one replayed body's
// actual footprint: read keys, written keys with their write kind
// (commutative Add/PushCap vs order-sensitive Put), and the reference
// value each touched key had before this body ran.
type recordingTxn struct {
	st     mapTxn
	reads  map[string]struct{}
	writes map[string]bool // key -> all writes commutative
	pre    map[string]preVal
}

func newRecordingTxn(st mapTxn) *recordingTxn {
	return &recordingTxn{st: st, reads: map[string]struct{}{}, writes: map[string]bool{}, pre: map[string]preVal{}}
}

func (t *recordingTxn) snap(key string) {
	if _, ok := t.pre[key]; ok {
		return
	}
	v, found := t.st[key]
	if found {
		v = append([]byte(nil), v...)
	}
	t.pre[key] = preVal{val: v, found: found}
}

func (t *recordingTxn) Get(key string) ([]byte, bool, error) {
	t.snap(key)
	t.reads[key] = struct{}{}
	return t.st.Get(key)
}

func (t *recordingTxn) Put(key string, value []byte) error {
	t.snap(key)
	t.writes[key] = false
	return t.st.Put(key, value)
}

func (t *recordingTxn) Add(key string, delta int64) error {
	t.snap(key)
	if _, seen := t.writes[key]; !seen {
		t.writes[key] = true
	}
	return t.st.Add(key, delta)
}

func (t *recordingTxn) PushCap(key string, id int64, cap int) error {
	t.snap(key)
	if _, seen := t.writes[key]; !seen {
		t.writes[key] = true
	}
	return pushCapRMW(t.st, key, id, cap)
}

func (t *recordingTxn) readKeys() []string {
	out := make([]string, 0, len(t.reads))
	for k := range t.reads {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (t *recordingTxn) writeKeys() []string {
	out := make([]string, 0, len(t.writes))
	for k := range t.writes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- precedence-graph order verdict -----------------------------------------

// auditNode is one observed commit in the order verdict's windows. seq is
// the auditor's own observation counter; cseq is the cell's serialization
// stamp when the cell provides one (Commit.Seq), zero otherwise.
type auditNode struct {
	seq        int64
	cseq       int64
	op         string
	args       []byte
	start, end time.Time
	reads      []string
	writes     []string
	commut     map[string]bool
	pre        map[string]preVal
}

func (n *auditNode) writesKey(key string) bool {
	for _, w := range n.writes {
		if w == key {
			return true
		}
	}
	return false
}

// keyTrack is one key's bounded commit window. A key becomes tracked on
// its first order-sensitive write; commutative-only keys never window
// (their completion-order reference is already exact in any order).
type keyTrack struct {
	tracked bool
	nodes   []*auditNode
}

// orderAudit keeps the bounded per-key windows the precedence-graph
// verdict searches at Verify time.
type orderAudit struct {
	window int
	keys   map[string]*keyTrack
}

func newOrderAudit(window int) *orderAudit {
	return &orderAudit{window: window, keys: map[string]*keyTrack{}}
}

func (o *orderAudit) track(key string) *keyTrack {
	t, ok := o.keys[key]
	if !ok {
		t = &keyTrack{}
		o.keys[key] = t
	}
	return t
}

// observe windows one commit. A commit enters the windows when its order
// can matter: it performed an order-sensitive write, read a tracked key
// (its outcome depends on racing writers), or wrote a tracked key (later
// searches must replay it to reconstruct that key). Pure commutative
// traffic on untracked keys — most of every mix — is folded into the
// reference and dropped here, which is what keeps memory bounded.
func (o *orderAudit) observe(n *auditNode) {
	windowed := false
	for _, k := range n.writes {
		if !n.commut[k] {
			windowed = true
			break
		}
		if t, ok := o.keys[k]; ok && t.tracked {
			windowed = true
			break
		}
	}
	if !windowed {
		for _, k := range n.reads {
			if t, ok := o.keys[k]; ok && t.tracked {
				windowed = true
				break
			}
		}
	}
	if !windowed {
		return
	}
	for _, k := range n.writes {
		t := o.track(k)
		t.tracked = true
		t.nodes = append(t.nodes, n)
		if len(t.nodes) > o.window {
			t.nodes = t.nodes[1:]
		}
	}
}

// inTrack reports whether n is still windowed on key (not evicted).
func (o *orderAudit) inTrack(key string, n *auditNode) bool {
	t, ok := o.keys[key]
	if !ok {
		return false
	}
	for _, m := range t.nodes {
		if m == n {
			return true
		}
	}
	return false
}

// resolveOrders classifies the mismatched keys: for each conflict
// component it searches the linear extensions of the real-time precedence
// order for one that reproduces the cell's settled values. Explained keys
// are suppressed (they were reorder noise, not anomalies); components that
// only an order contradicting real time explains count as graph cycles
// and stay violations; everything else stays a violation outright.
func (a *refAuditor) resolveOrders(mismatched map[string]string, read func(string) ([]byte, error)) (map[string]bool, int) {
	suppressed := make(map[string]bool)
	cycles := 0
	done := make(map[string]bool) // keys already covered by a component
	for _, key := range sortedKeys(mismatched) {
		if done[key] {
			continue
		}
		t, ok := a.order.keys[key]
		if !ok || !t.tracked || len(t.nodes) == 0 {
			continue // no windowed writers: order cannot explain this key
		}
		compKeys, nodes := a.component(key)
		for k := range compKeys {
			done[k] = true
		}
		if len(nodes) == 0 || len(nodes) > auditMaxCompNodes {
			continue // too contended to replay at all; conservatively keep the violation
		}
		// Cheap pass first: replay the heuristic linear extensions —
		// handle-resolution (end-time) and submission (start-time) order.
		// Both provably extend the real-time partial order (a.end <
		// b.start implies both a.end < b.end and a.start < b.start), so a
		// match is a sound suppression at ANY component size — and
		// end-time order is almost exactly the serializable cells' true
		// commit order, which the completion-order reference scrambles
		// through racing handle goroutines.
		ok, err := a.tryHeuristicOrders(compKeys, nodes, read)
		if err != nil {
			continue
		}
		if !ok && len(nodes) <= auditMaxComponent {
			// Exhaustive bounded search over all linear extensions of the
			// real-time precedence order.
			if ok, err = a.searchComponent(compKeys, nodes, read, true); err != nil {
				continue
			}
		}
		if ok {
			for k := range compKeys {
				if _, mis := mismatched[k]; mis {
					suppressed[k] = true
				}
			}
			continue
		}
		// No real-time-respecting order explains the values; if an
		// unconstrained serial order does, the precedence graph has a
		// cycle (a strict-serializability violation), still an anomaly.
		if len(nodes) <= auditMaxComponent {
			if ok, err := a.searchComponent(compKeys, nodes, read, false); err == nil && ok {
				cycles++
			}
		}
	}
	return suppressed, cycles
}

// tryHeuristicOrders replays the component in end-time and start-time
// order — two legal linear extensions of the real-time precedence order —
// and, failing both, runs a bounded greedy repair that moves writers of
// still-mismatched keys within their legal range. It reports whether any
// legal order reproduced the cell's settled values.
func (a *refAuditor) tryHeuristicOrders(compKeys map[string]bool, nodes []*auditNode, read func(string) ([]byte, error)) (bool, error) {
	base, cell, err := a.trialBase(compKeys, read)
	if err != nil {
		return false, err
	}
	order := append([]*auditNode(nil), nodes...)
	// First candidate: the cell's own serialization stamps, when every
	// node carries one — the actual commit order, exact by construction.
	allStamped := true
	for _, n := range order {
		if n.cseq == 0 {
			allStamped = false
			break
		}
	}
	if allStamped {
		sort.SliceStable(order, func(i, j int) bool { return order[i].cseq < order[j].cseq })
		if legalExtension(order) && len(a.replayTrialMis(compKeys, base, order, cell)) == 0 {
			return true, nil
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].end.Before(order[j].end) })
	if len(a.replayTrialMis(compKeys, base, order, cell)) == 0 {
		return true, nil
	}
	startOrder := append([]*auditNode(nil), nodes...)
	sort.SliceStable(startOrder, func(i, j int) bool { return startOrder[i].start.Before(startOrder[j].start) })
	if len(a.replayTrialMis(compKeys, base, startOrder, cell)) == 0 {
		return true, nil
	}
	return a.repairOrder(compKeys, base, order, cell), nil
}

// repairOrder hill-climbs from one legal order toward the cell's settled
// values: for each still-mismatched key, each of its windowed writers is
// tried at the extremes of its legal slot range (the furthest positions
// that violate no real-time edge — every candidate stays a legal linear
// extension), keeping any move that strictly shrinks the mismatch set.
// This recovers within-batch serialization orders that wall-clock
// heuristics cannot see: a group commit resolves many handles at once,
// so end-time order is blind to the log order inside the batch.
func (a *refAuditor) repairOrder(compKeys map[string]bool, base map[string]preVal, order []*auditNode, cell map[string][]byte) bool {
	mis := a.replayTrialMis(compKeys, base, order, cell)
	trials := 0
	for len(mis) > 0 && trials < auditMaxTrials {
		misKeys := make([]string, 0, len(mis))
		for k := range mis {
			misKeys = append(misKeys, k)
		}
		sort.Strings(misKeys)
		improved := false
	keys:
		for _, k := range misKeys {
			for idx, n := range order {
				if !n.writesKey(k) || !a.order.inTrack(k, n) {
					continue
				}
				for _, to := range []int{latestLegal(order, idx), earliestLegal(order, idx)} {
					if to == idx || trials >= auditMaxTrials {
						continue
					}
					cand := moveNode(order, idx, to)
					trials++
					m2 := a.replayTrialMis(compKeys, base, cand, cell)
					if len(m2) < len(mis) {
						order, mis, improved = cand, m2, true
						continue keys
					}
				}
			}
		}
		if !improved {
			return false
		}
	}
	return len(mis) == 0
}

// legalExtension reports whether the order violates no real-time edge: no
// node is placed after one whose interval starts strictly later than the
// node's end. Cell-provided stamps are only trusted as a candidate order,
// never as precedence ground truth, so suppression stays sound even
// against a cell that misreports its serialization.
func legalExtension(order []*auditNode) bool {
	var maxStart time.Time
	for _, n := range order {
		if n.end.Before(maxStart) {
			return false
		}
		if n.start.After(maxStart) {
			maxStart = n.start
		}
	}
	return true
}

// latestLegal returns the furthest position after idx the node can move
// to without jumping over a node it must real-time precede.
func latestLegal(order []*auditNode, idx int) int {
	p := idx
	for j := idx + 1; j < len(order); j++ {
		if order[idx].end.Before(order[j].start) {
			break
		}
		p = j
	}
	return p
}

// earliestLegal returns the furthest position before idx the node can
// move to without jumping over a node that must real-time precede it.
func earliestLegal(order []*auditNode, idx int) int {
	p := idx
	for j := idx - 1; j >= 0; j-- {
		if order[j].end.Before(order[idx].start) {
			break
		}
		p = j
	}
	return p
}

// moveNode returns a copy of order with the node at idx moved to
// position to.
func moveNode(order []*auditNode, idx, to int) []*auditNode {
	out := make([]*auditNode, 0, len(order))
	out = append(out, order[:idx]...)
	out = append(out, order[idx+1:]...)
	out = append(out[:to], append([]*auditNode{order[idx]}, out[to:]...)...)
	return out
}

// trialBase snapshots the component's starting state (each key's
// reference value before its earliest windowed commit) and its settled
// cell values.
func (a *refAuditor) trialBase(compKeys map[string]bool, read func(string) ([]byte, error)) (map[string]preVal, map[string][]byte, error) {
	base := make(map[string]preVal, len(compKeys))
	for k := range compKeys {
		t := a.order.keys[k]
		if t == nil || len(t.nodes) == 0 {
			continue
		}
		earliest := t.nodes[0]
		for _, m := range t.nodes[1:] {
			if m.seq < earliest.seq {
				earliest = m
			}
		}
		base[k] = earliest.pre[k]
	}
	cell := make(map[string][]byte, len(compKeys))
	for k := range compKeys {
		raw, err := read(k)
		if err != nil {
			return nil, nil, err
		}
		cell[k] = raw
	}
	return base, cell, nil
}

// component gathers the conflict closure of one mismatched key: the
// windowed commits of that key, plus — transitively — the windows of
// every tracked key those commits read or wrote, so a search replays a
// closed set of inputs. Untracked read keys stay pinned to the values the
// reference served (their writers are commutative, so their timeline does
// not depend on the component's order).
func (a *refAuditor) component(key string) (map[string]bool, []*auditNode) {
	compKeys := map[string]bool{key: true}
	seen := map[*auditNode]bool{}
	var nodes []*auditNode
	queue := []string{key}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		t, ok := a.order.keys[k]
		if !ok || !t.tracked {
			continue
		}
		for _, n := range t.nodes {
			if seen[n] {
				continue
			}
			seen[n] = true
			nodes = append(nodes, n)
			if len(nodes) > auditMaxCompNodes {
				return compKeys, nodes
			}
			for _, wk := range n.writes {
				if !compKeys[wk] {
					if wt, ok := a.order.keys[wk]; ok && wt.tracked {
						compKeys[wk] = true
						queue = append(queue, wk)
					}
				}
			}
			for _, rk := range n.reads {
				if !compKeys[rk] {
					if rt, ok := a.order.keys[rk]; ok && rt.tracked {
						compKeys[rk] = true
						queue = append(queue, rk)
					}
				}
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].seq < nodes[j].seq })
	return compKeys, nodes
}

// searchComponent enumerates linear extensions of the component's
// precedence order (real-time edges when constrained; none otherwise) and
// replays each against the pre-value base until one reproduces the cell's
// settled value on every component key, within the trial budget.
func (a *refAuditor) searchComponent(compKeys map[string]bool, nodes []*auditNode, read func(string) ([]byte, error), constrained bool) (bool, error) {
	n := len(nodes)
	// Fixed precedence: disjoint real-time intervals must keep their order.
	before := make([][]bool, n)
	for i := range before {
		before[i] = make([]bool, n)
		if !constrained {
			continue
		}
		for j := range before[i] {
			if i != j && nodes[i].end.Before(nodes[j].start) {
				before[i][j] = true
			}
		}
	}
	base, cell, err := a.trialBase(compKeys, read)
	if err != nil {
		return false, err
	}

	used := make([]bool, n)
	order := make([]*auditNode, 0, n)
	trials := 0
	var try func() bool
	try = func() bool {
		if trials >= auditMaxTrials {
			return false
		}
		if len(order) == n {
			trials++
			return a.replayTrial(compKeys, base, order, cell)
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			ready := true
			for j := 0; j < n; j++ {
				if !used[j] && before[j][i] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			used[i] = true
			order = append(order, nodes[i])
			if try() {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
			if trials >= auditMaxTrials {
				return false
			}
		}
		return false
	}
	return try(), nil
}

// replayTrial replays one candidate order from the base snapshot and
// reports whether it reproduces the cell's settled value on every
// component key (under the workload's semantic comparison).
func (a *refAuditor) replayTrial(compKeys map[string]bool, base map[string]preVal, order []*auditNode, cell map[string][]byte) bool {
	return len(a.replayTrialMis(compKeys, base, order, cell)) == 0
}

// replayTrialMis replays one candidate order and returns the component
// keys whose replayed value does not match the cell's settled value.
func (a *refAuditor) replayTrialMis(compKeys map[string]bool, base map[string]preVal, order []*auditNode, cell map[string][]byte) map[string]bool {
	st := make(map[string]preVal, len(base))
	for k, v := range base {
		st[k] = v
	}
	for _, n := range order {
		tx := &trialTxn{audit: a.order, comp: compKeys, st: st, node: n}
		if op, ok := a.cfg.app.Op(n.op); ok {
			op.Body(tx, n.args)
		}
	}
	var mis map[string]bool
	for k := range compKeys {
		var got []byte
		if v, ok := st[k]; ok && v.found {
			got = v.val
		}
		if a.cfg.compare(k, cell[k], got) != "" {
			if mis == nil {
				mis = make(map[string]bool)
			}
			mis[k] = true
		}
	}
	return mis
}

// trialTxn replays one commit inside a candidate order: component keys
// read and write the trial state; reads outside the component are pinned
// to the pre-values the reference served this commit (their timelines do
// not depend on the component's order); writes by commits evicted from a
// key's window are skipped — their effect is already folded into the base.
type trialTxn struct {
	audit *orderAudit
	comp  map[string]bool
	st    map[string]preVal
	node  *auditNode
}

func (t *trialTxn) Get(key string) ([]byte, bool, error) {
	if t.comp[key] {
		v := t.st[key]
		return v.val, v.found, nil
	}
	v := t.node.pre[key]
	return v.val, v.found, nil
}

func (t *trialTxn) allowed(key string) bool {
	return t.comp[key] && t.audit.inTrack(key, t.node)
}

func (t *trialTxn) Put(key string, value []byte) error {
	if t.allowed(key) {
		t.st[key] = preVal{val: value, found: true}
	}
	return nil
}

func (t *trialTxn) Add(key string, delta int64) error {
	if t.allowed(key) {
		v := t.st[key]
		t.st[key] = preVal{val: EncodeInt(DecodeInt(v.val) + delta), found: true}
	}
	return nil
}

func (t *trialTxn) PushCap(key string, id int64, cap int) error {
	if t.allowed(key) {
		v := t.st[key]
		t.st[key] = preVal{val: EncodeIntList(mergeBounded(DecodeIntList(v.val), id, cap)), found: true}
	}
	return nil
}
