package tca

import (
	"tca/internal/actor"
	"tca/internal/fabric"
	"tca/internal/store"
)

// actorCell deploys an App on the actor model with Orleans-style
// transactions: every key is a virtual actor's transactional state, and an
// op runs as one ACID transaction (2PL + 2PC) across the actors it
// touches. Serializable but blocking — lock acquisition plus two commit
// rounds per participant node is exactly the coordination cost E1/E14
// measure.
type actorCell struct {
	app   *App
	sys   *actor.System
	coord *actor.Coordinator
	pool  *submitPool
}

func newActorCell(app *App, env *Env, opts Options) *actorCell {
	sys := actor.NewSystem(env.Cluster, actor.Config{})
	return &actorCell{app: app, sys: sys, coord: actor.NewCoordinator(sys), pool: newSubmitPool(Actors, opts.Clients, opts.MaxPending)}
}

func (c *actorCell) ref(key string) actor.Ref {
	return actor.Ref{Type: c.app.Name(), ID: key}
}

// actorTxn adapts ActorTxn to the Txn surface. Values live in a single
// "v" column of the actor's transactional row (the store copies rows, so
// the string conversion also decouples the caller's byte slice).
type actorTxn struct {
	cell *actorCell
	tx   *actor.ActorTxn
}

func (t actorTxn) Get(key string) ([]byte, bool, error) {
	row, ok, err := t.tx.Read(t.cell.ref(key))
	if err != nil || !ok {
		return nil, false, err
	}
	return []byte(row.Str("v")), true, nil
}

func (t actorTxn) Put(key string, value []byte) error {
	return t.tx.Write(t.cell.ref(key), store.Row{"v": string(value)})
}

func (t actorTxn) Add(key string, delta int64) error {
	raw, _, err := t.Get(key)
	if err != nil {
		return err
	}
	return t.Put(key, EncodeInt(DecodeInt(raw)+delta))
}

// PushCap is a plain read-modify-write here: the 2PL exclusive lock on the
// key actor serializes concurrent merges.
func (t actorTxn) PushCap(key string, id int64, cap int) error {
	return pushCapRMW(t, key, id, cap)
}

func (c *actorCell) Model() ProgrammingModel { return Actors }
func (c *actorCell) App() *App               { return c.app }

func (c *actorCell) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: true, ExactlyOnce: false,
		Note: "Orleans-style 2PL+2PC: serializable but blocking and retry-heavy under contention"}
}

// Submit runs the actor transaction on the cell's bounded worker pool:
// 2PL + 2PC is blocking per transaction, so pipelining is client-side
// concurrency — and with it come the lock conflicts, wounds, and retries
// the serial drivers never provoked. The handle resolves at commit (or
// when retries exhaust).
func (c *actorCell) Submit(reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	return c.pool.submit(func() ([]byte, error) {
		return c.invoke(reqID, opName, args, tr)
	})
}

// Invoke is semantically Submit(...).Result() — TestInvokeIsSubmitResult
// pins the equivalence — taking the pool's inline fast path for blocking
// callers.
func (c *actorCell) Invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	return c.pool.invoke(func() ([]byte, error) {
		return c.invoke(reqID, opName, args, tr)
	})
}

func (c *actorCell) invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	op, ok := c.app.Op(opName)
	if !ok {
		return nil, opError(c.app, opName)
	}
	var result []byte
	body := func(t *actor.ActorTxn) error {
		var bodyErr error
		result, bodyErr = op.Body(op.guard(actorTxn{cell: c, tx: t}), args)
		return bodyErr
	}
	var err error
	if op.ReadOnly {
		// Queries take shared 2PL locks and skip the prepare/commit rounds
		// — the read-only optimization of 2PC, two round trips per
		// participant node saved.
		err = c.coord.RunReadOnly(tr, body)
	} else {
		err = c.coord.Run(tr, body)
	}
	if err != nil {
		return nil, err
	}
	return result, nil
}

func (c *actorCell) Read(key string) ([]byte, bool, error) {
	row, ok, err := c.coord.ReadState(c.ref(key))
	if err != nil || !ok {
		return nil, false, err
	}
	return []byte(row.Str("v")), true, nil
}

func (c *actorCell) Settle() error { return nil }
func (c *actorCell) Close()        { c.sys.Stop() }
