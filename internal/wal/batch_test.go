package wal

import (
	"fmt"
	"os"
	"testing"
	"time"
)

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendBatchReplaysInOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var want [][]byte
	next := uint64(0)
	for batch := 0; batch < 5; batch++ {
		payloads := make([][]byte, batch+1)
		for i := range payloads {
			payloads[i] = []byte(fmt.Sprintf("b%d-r%d", batch, i))
			want = append(want, payloads[i])
		}
		first, err := l.AppendBatch(payloads)
		if err != nil {
			t.Fatal(err)
		}
		if first != next {
			t.Fatalf("batch %d: first index = %d, want %d", batch, first, next)
		}
		next += uint64(len(payloads))
	}
	if l.Len() != next {
		t.Fatalf("Len = %d, want %d", l.Len(), next)
	}
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendBatchEmptyAndInterleaved(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if l.Len() != 0 {
		t.Fatalf("empty batch advanced Len to %d", l.Len())
	}
	if _, err := l.Append([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	first, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("batch after single append starts at %d, want 1", first)
	}
	if got := replayAll(t, l); len(got) != 3 || string(got[2]) != "b" {
		t.Fatalf("unexpected replay %q", got)
	}
}

// TestAppendBatchSpansSegments pins the roll path: a batch larger than the
// active segment's remaining space packs what fits, rolls, and continues —
// every record still replays in order.
func TestAppendBatchSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payloads := make([][]byte, 10)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("payload-%02d-xxxxxxxx", i)) // 19 bytes + 8 header
	}
	if _, err := l.AppendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("expected a segment roll, got %d segment(s)", len(entries))
	}
	got := replayAll(t, l)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if string(got[i]) != string(payloads[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestAppendBatchRecordTooLarge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := make([]byte, 64)
	if _, err := l.AppendBatch([][]byte{[]byte("ok"), big}); err == nil {
		t.Fatal("oversized batch member accepted")
	}
	if l.Len() != 0 {
		t.Fatalf("failed batch advanced Len to %d", l.Len())
	}
}

// TestSyncIntervalFlusher pins the interval-fsync mode: the background
// flusher runs, and Close stops it cleanly (no goroutine leak panic, log
// still replays).
func TestSyncIntervalFlusher(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.AppendBatch([][]byte{[]byte(fmt.Sprintf("r%d", i))}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond / 2)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 10 {
		t.Fatalf("reopened Len = %d, want 10", reopened.Len())
	}
}
