package wal

import (
	"fmt"
	"testing"
	"time"
)

// The WAL's own cost curve, pinned independently of the core runtime that
// sits on top of it: per-record Append vs group AppendBatch across batch
// sizes and fsync policies. The headline ratio is fsync amortization —
// AppendBatch pays one fsync for N records where Append pays N — and the
// no-fsync rows isolate the syscall/buffer cost of batching alone.
// records/s is the comparable unit across rows (ns/op measures one *batch*
// for AppendBatch).

var benchPolicies = []struct {
	name string
	opts Options
}{
	{"fsync=batch", Options{SyncOnAppend: true}},
	{"fsync=1ms", Options{SyncInterval: time.Millisecond}},
	{"fsync=none", Options{}},
}

func benchPayloads(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, size)
		copy(p, fmt.Sprintf("record-%d", i))
		out[i] = p
	}
	return out
}

func BenchmarkAppend(b *testing.B) {
	for _, pol := range benchPolicies {
		b.Run(pol.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), pol.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := benchPayloads(1, 256)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func BenchmarkAppendBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 64, 256} {
		for _, pol := range benchPolicies {
			b.Run(fmt.Sprintf("batch=%d/%s", batch, pol.name), func(b *testing.B) {
				l, err := Open(b.TempDir(), pol.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				payloads := benchPayloads(batch, 256)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := l.AppendBatch(payloads); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// BenchmarkMerkleRoot prices the integrity header each core group append
// adds on top of the raw batch write.
func BenchmarkMerkleRoot(b *testing.B) {
	for _, batch := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			payloads := benchPayloads(batch, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MerkleRoot(payloads)
			}
		})
	}
}
