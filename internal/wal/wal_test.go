package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for i, p := range want {
		idx, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if idx != uint64(i) {
			t.Fatalf("Append index = %d, want %d", idx, i)
		}
	}
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReopenContinuesIndexes(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()

	l2 := openT(t, dir, DefaultOptions())
	defer l2.Close()
	if got := l2.Len(); got != 2 {
		t.Fatalf("Len after reopen = %d, want 2", got)
	}
	idx, err := l2.Append([]byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("index after reopen = %d, want 2", idx)
	}
	var n int
	l2.Replay(func([]byte) error { n++; return nil })
	if n != 3 {
		t.Fatalf("replay count = %d, want 3", n)
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64})
	payload := make([]byte, 20)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(files) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(files))
	}
	l2 := openT(t, dir, Options{SegmentSize: 64})
	defer l2.Close()
	if got := l2.Len(); got != 10 {
		t.Fatalf("Len across segments = %d, want 10", got)
	}
}

func TestRecordTooLarge(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 32})
	defer l.Close()
	if _, err := l.Append(make([]byte, 64)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v, want ErrTooLarge", err)
	}
}

func TestTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	l.Append([]byte("full-record"))
	l.Close()

	// Simulate a crash mid-append: write a partial header at the tail.
	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	f, err := os.OpenFile(files[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x00, 0x01}) // 3 of 8 header bytes
	f.Close()

	l2 := openT(t, dir, DefaultOptions())
	defer l2.Close()
	var n int
	if err := l2.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatalf("Replay with torn tail: %v", err)
	}
	if n != 1 {
		t.Fatalf("replay count = %d, want 1 (torn tail dropped)", n)
	}
}

func TestTornPayloadIgnoredAtTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	l.Append([]byte("keep"))
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	f, _ := os.OpenFile(files[0], os.O_APPEND|os.O_WRONLY, 0)
	// Full header claiming 100 bytes, then only 5 payload bytes.
	hdr := []byte{100, 0, 0, 0, 0, 0, 0, 0}
	f.Write(hdr)
	f.Write([]byte("five!"))
	f.Close()

	l2 := openT(t, dir, DefaultOptions())
	defer l2.Close()
	var n int
	if err := l2.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 1 {
		t.Fatalf("replay count = %d, want 1", n)
	}
}

func TestCorruptChecksumDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	l.Append([]byte("abcdefgh"))
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, _ := os.ReadFile(files[0])
	data[len(data)-1] ^= 0xFF // flip a payload byte
	os.WriteFile(files[0], data, 0o644)

	l2, err := Open(dir, DefaultOptions())
	if err == nil {
		defer l2.Close()
		err = l2.Replay(func([]byte) error { return nil })
	}
	// Either Open (which counts records via replay) or Replay must notice.
	if err == nil {
		t.Fatal("corrupted payload not detected")
	}
}

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	defer l.Close()
	l.Append([]byte("x"))
	l.Append([]byte("y"))
	if err := l.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len after truncate = %d, want 0", got)
	}
	idx, err := l.Append([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("first index after truncate = %d, want 0", idx)
	}
	var n int
	l.Replay(func([]byte) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replay after truncate = %d records, want 1", n)
	}
}

func TestClosedOperations(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestSyncOnAppend(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 1 << 20, SyncOnAppend: true})
	defer l.Close()
	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatalf("Append with sync: %v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	defer l.Close()
	if _, err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	var got int
	l.Replay(func(p []byte) error {
		if len(p) != 0 {
			t.Fatalf("payload = %v, want empty", p)
		}
		got++
		return nil
	})
	if got != 1 {
		t.Fatalf("replay count = %d, want 1", got)
	}
}

// Property: for any sequence of payloads, replay returns exactly that
// sequence — the fundamental log contract every consumer depends on.
func TestReplayEqualsAppendsProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dir, err := os.MkdirTemp("", "walq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(dir, Options{SegmentSize: 256})
		if err != nil {
			return false
		}
		defer l.Close()
		var wrote [][]byte
		for _, p := range payloads {
			if len(p) > 200 {
				p = p[:200]
			}
			if _, err := l.Append(p); err != nil {
				return false
			}
			wrote = append(wrote, p)
		}
		var got [][]byte
		if err := l.Replay(func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(wrote) {
			return false
		}
		for i := range wrote {
			if string(got[i]) != string(wrote[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, DefaultOptions())
	defer l.Close()
	l.Append([]byte("a"))
	sentinel := fmt.Errorf("stop")
	if err := l.Replay(func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Replay error = %v, want sentinel", err)
	}
}
