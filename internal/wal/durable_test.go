package wal

import (
	"errors"
	"testing"
	"time"
)

// The sync-watermark suite: DurableIndex/WaitDurable must track exactly
// what a crash cannot take back — everything at or below the watermark
// survived an fsync (or needs none).

func TestDurableIndexTracksSyncOnAppend(t *testing.T) {
	l := openT(t, t.TempDir(), Options{SyncOnAppend: true})
	defer l.Close()
	if _, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if got, want := l.DurableIndex(), l.Len(); got != want {
		t.Fatalf("DurableIndex = %d, want %d (sync-on-append acks are durable)", got, want)
	}
	if err := l.WaitDurable(l.Len(), nil); err != nil {
		t.Fatalf("WaitDurable on an already-durable index: %v", err)
	}
}

// TestDurableIndexLagsUntilSync opens the log with a flusher interval far
// beyond the test's lifetime: appends are written but not synced, so the
// watermark must lag Len() — the window where an acknowledged-too-early
// record could be lost — until an explicit Sync closes it.
func TestDurableIndexLagsUntilSync(t *testing.T) {
	l := openT(t, t.TempDir(), Options{SyncInterval: time.Hour})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DurableIndex(); got != 0 {
		t.Fatalf("DurableIndex before any sync = %d, want 0", got)
	}
	// A canceled wait must return ErrCanceled, not block or succeed.
	cancel := make(chan struct{})
	close(cancel)
	if err := l.WaitDurable(l.Len(), cancel); !errors.Is(err, ErrCanceled) {
		t.Fatalf("WaitDurable with closed cancel = %v, want ErrCanceled", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.DurableIndex(), l.Len(); got != want {
		t.Fatalf("DurableIndex after Sync = %d, want %d", got, want)
	}
	if err := l.WaitDurable(l.Len(), nil); err != nil {
		t.Fatalf("WaitDurable after Sync: %v", err)
	}
}

// TestWaitDurableUnblocksOnIntervalSync parks a waiter behind the
// watermark and lets the background flusher advance it.
func TestWaitDurableUnblocksOnIntervalSync(t *testing.T) {
	l := openT(t, t.TempDir(), Options{SyncInterval: 10 * time.Millisecond})
	defer l.Close()
	if _, err := l.Append([]byte("y")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(l.Len(), nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitDurable: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable never unblocked on the interval sync")
	}
	if got, want := l.DurableIndex(), l.Len(); got != want {
		t.Fatalf("DurableIndex after interval sync = %d, want %d", got, want)
	}
}

func TestWaitDurableAfterClose(t *testing.T) {
	l := openT(t, t.TempDir(), Options{SyncInterval: time.Hour})
	l.Append([]byte("z"))
	end := l.Len()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close syncs, so the appended record is durable; waiting past the end
	// of a closed log must fail fast instead of blocking forever.
	if err := l.WaitDurable(end+1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitDurable past the end of a closed log = %v, want ErrClosed", err)
	}
}
