package wal

import (
	"fmt"
	"testing"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("payload-%d", i))
	}
	return out
}

func TestMerkleRootDeterministic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 128} {
		a, b := MerkleRoot(leaves(n)), MerkleRoot(leaves(n))
		if a != b {
			t.Fatalf("n=%d: root not deterministic", n)
		}
	}
	if MerkleRoot(nil) != ([HashSize]byte{}) {
		t.Fatal("empty root should be the zero hash")
	}
	one := leaves(1)
	if MerkleRoot(one) != LeafHash(one[0]) {
		t.Fatal("single-leaf root should be the leaf hash")
	}
}

func TestMerkleRootSensitivity(t *testing.T) {
	base := leaves(7)
	root := MerkleRoot(base)
	// Any single-payload change must change the root.
	for i := range base {
		mutated := leaves(7)
		mutated[i] = append(append([]byte(nil), mutated[i]...), 'x')
		if MerkleRoot(mutated) == root {
			t.Fatalf("mutating leaf %d did not change the root", i)
		}
	}
	// Reordering must change the root.
	swapped := leaves(7)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if MerkleRoot(swapped) == root {
		t.Fatal("swapping leaves did not change the root")
	}
	// A leaf must not be confusable with an interior node (domain
	// separation): the 2-leaf root re-presented as a single leaf differs.
	two := leaves(2)
	r2 := MerkleRoot(two)
	if MerkleRoot([][]byte{r2[:]}) == MerkleRoot([][]byte{two[0], two[1]}) {
		t.Fatal("interior node accepted as a leaf")
	}
}

func TestMerkleProofVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 129} {
		ps := leaves(n)
		root := MerkleRoot(ps)
		for i := 0; i < n; i++ {
			proof := MerkleProof(ps, i)
			if !VerifyProof(root, ps[i], proof) {
				t.Fatalf("n=%d: proof for leaf %d rejected", n, i)
			}
			// The wrong payload must not verify with this proof.
			if VerifyProof(root, []byte("forged"), proof) {
				t.Fatalf("n=%d: forged payload verified at leaf %d", n, i)
			}
			// The right payload at the wrong position must not verify.
			if n > 1 {
				other := MerkleProof(ps, (i+1)%n)
				if VerifyProof(root, ps[i], other) {
					t.Fatalf("n=%d: leaf %d verified with leaf %d's proof", n, i, (i+1)%n)
				}
			}
		}
	}
	if MerkleProof(leaves(4), 4) != nil || MerkleProof(leaves(4), -1) != nil {
		t.Fatal("out-of-range proof should be nil")
	}
}

// TestMerkleProofLogarithmic pins the O(log n) claim: a proof over n
// payloads carries at most ⌈log2 n⌉ siblings.
func TestMerkleProofLogarithmic(t *testing.T) {
	for _, n := range []int{2, 64, 256, 1000} {
		ps := leaves(n)
		maxLen := 0
		for i := 0; i < n; i++ {
			if l := len(MerkleProof(ps, i)); l > maxLen {
				maxLen = l
			}
		}
		ceilLog := 0
		for v := 1; v < n; v *= 2 {
			ceilLog++
		}
		if maxLen > ceilLog {
			t.Fatalf("n=%d: proof length %d exceeds ceil(log2 n)=%d", n, maxLen, ceilLog)
		}
	}
}
