// Package wal implements a segmented, checksummed write-ahead log. It is the
// durability substrate for the embedded key-value store (internal/kv), the
// message broker (internal/mq), the saga and workflow logs, and the 2PC
// coordinator log — every place where the paper's systems survey requires
// "persist, then act" (§3.3, §4.1).
//
// Record format (little endian):
//
//	4 bytes  payload length n
//	4 bytes  CRC32 (Castagnoli) of payload
//	n bytes  payload
//
// Segments roll over at a configurable size. Replay stops cleanly at the
// first torn or corrupt record, which models crash-consistency: a record is
// durable iff it was fully written (and fsynced when SyncOnAppend is set).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Common WAL errors.
var (
	ErrClosed   = errors.New("wal: closed")
	ErrCorrupt  = errors.New("wal: corrupt record")
	ErrTooLarge = errors.New("wal: record exceeds segment size")
	ErrCanceled = errors.New("wal: durability wait canceled")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8

// Options configure a log.
type Options struct {
	// SegmentSize is the maximum byte size of one segment file.
	SegmentSize int64
	// SyncOnAppend fsyncs after every append (one fsync per AppendBatch
	// call, however many records the batch carries — the group-commit
	// amortization). Slower but loses nothing on crash. When false,
	// durability is up to the OS page cache (the trade-off every message
	// broker exposes).
	SyncOnAppend bool
	// SyncInterval, when positive and SyncOnAppend is false, runs a
	// background flusher that fsyncs the active segment every interval —
	// the bounded-loss middle ground between per-batch fsync and none.
	SyncInterval time.Duration
}

// DefaultOptions returns 4 MiB segments without per-append fsync.
func DefaultOptions() Options {
	return Options{SegmentSize: 4 << 20}
}

// Log is an append-only write-ahead log stored in a directory of segment
// files named <seq>.wal. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	closed   bool
	active   *os.File
	activeSz int64
	activeID uint64
	next     uint64 // next record index (monotone across segments)
	segments []uint64

	// durable is the sync watermark: every record with index < durable has
	// been covered by an fsync. Records in [durable, next) are appended but
	// may still be sitting in the page cache — the fsync-interval ack gap.
	// syncGen is closed and replaced on every watermark advance (and on
	// close), so WaitDurable blocks on generations instead of polling.
	durable uint64
	syncGen chan struct{}

	flushStop chan struct{} // interval flusher, when SyncInterval is set
	flushDone chan struct{}
}

// Open opens (or creates) a log in dir.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultOptions().SegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.loadSegments(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	// Count existing records so indexes continue across restarts.
	n, err := l.countRecords()
	if err != nil {
		return nil, err
	}
	l.next = n
	// Records that survived a reopen are on disk by definition.
	l.durable = n
	l.syncGen = make(chan struct{})
	if opts.SyncInterval > 0 && !opts.SyncOnAppend {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.runFlusher(opts.SyncInterval, l.flushStop, l.flushDone)
	}
	return l, nil
}

// runFlusher fsyncs the active segment every interval until Close. A sync
// error here is unreported (the next Append/Sync surfaces it); the flusher
// only bounds how much an otherwise-unsynced log can lose.
func (l *Log) runFlusher(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.active.Sync(); err == nil {
					l.markDurableLocked(l.next)
				}
			}
			l.mu.Unlock()
		}
	}
}

func (l *Log) loadSegments() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: readdir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(name, "%016x.wal", &id); err != nil {
			continue
		}
		l.segments = append(l.segments, id)
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i] < l.segments[j] })
	return nil
}

func (l *Log) segPath(id uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%016x.wal", id))
}

func (l *Log) openActive() error {
	if len(l.segments) == 0 {
		l.segments = append(l.segments, 0)
	}
	id := l.segments[len(l.segments)-1]
	f, err := os.OpenFile(l.segPath(id), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	l.active = f
	l.activeSz = st.Size()
	l.activeID = id
	return nil
}

func (l *Log) countRecords() (uint64, error) {
	var n uint64
	err := l.replayLocked(func([]byte) error { n++; return nil })
	return n, err
}

// Append writes one record and returns its index. The index is the total
// number of records appended before it, stable across restarts.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec := int64(headerSize + len(payload))
	if rec > l.opts.SegmentSize {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, rec, l.opts.SegmentSize)
	}
	if l.activeSz+rec > l.opts.SegmentSize {
		if err := l.roll(); err != nil {
			return 0, err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.active.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: write header: %w", err)
	}
	if _, err := l.active.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: write payload: %w", err)
	}
	l.activeSz += rec
	if l.opts.SyncOnAppend {
		if err := l.active.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	idx := l.next
	l.next++
	if l.opts.SyncOnAppend {
		l.markDurableLocked(l.next)
	}
	return idx, nil
}

// AppendBatch writes all payloads as consecutive records with one buffered
// write and (under SyncOnAppend) one fsync — the group commit a per-record
// Append cannot amortize. Returns the index of the first record; the batch
// occupies [first, first+len(payloads)). Records are packed into the
// active segment until it fills, so a batch may span a segment roll, but
// the common case is a single write syscall. An empty batch is a no-op.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for _, p := range payloads {
		if rec := int64(headerSize + len(p)); rec > l.opts.SegmentSize {
			return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, rec, l.opts.SegmentSize)
		}
	}
	first := l.next
	buf := make([]byte, 0, batchSize(payloads))
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := l.active.Write(buf); err != nil {
			return fmt.Errorf("wal: write batch: %w", err)
		}
		l.activeSz += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for _, p := range payloads {
		rec := int64(headerSize + len(p))
		if l.activeSz+int64(len(buf))+rec > l.opts.SegmentSize {
			if err := flush(); err != nil {
				return 0, err
			}
			if err := l.roll(); err != nil {
				return 0, err
			}
		}
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if err := flush(); err != nil {
		return 0, err
	}
	if l.opts.SyncOnAppend && len(payloads) > 0 {
		if err := l.active.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.next = first + uint64(len(payloads))
	if l.opts.SyncOnAppend {
		l.markDurableLocked(l.next)
	}
	return first, nil
}

func batchSize(payloads [][]byte) int {
	n := 0
	for _, p := range payloads {
		n += headerSize + len(p)
	}
	return n
}

func (l *Log) roll() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync on roll: %w", err)
	}
	// Everything indexed so far lives in the segment just synced (a batch
	// mid-roll has not advanced next yet), so the watermark may advance.
	l.markDurableLocked(l.next)
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close on roll: %w", err)
	}
	id := l.activeID + 1
	l.segments = append(l.segments, id)
	f, err := os.OpenFile(l.segPath(id), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open new segment: %w", err)
	}
	l.active = f
	l.activeSz = 0
	l.activeID = id
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.markDurableLocked(l.next)
	return nil
}

// markDurableLocked advances the sync watermark to n and wakes every
// WaitDurable blocked on the current generation. Caller holds l.mu.
func (l *Log) markDurableLocked(n uint64) {
	if n > l.durable {
		l.durable = n
	}
	l.broadcastLocked()
}

func (l *Log) broadcastLocked() {
	close(l.syncGen)
	l.syncGen = make(chan struct{})
}

// DurableIndex returns the sync watermark: every record with index below
// it has been covered by an fsync. Under SyncOnAppend it always equals
// Len(); under SyncInterval it trails Len() by up to one flush period —
// the gap WaitDurable exists to close.
func (l *Log) DurableIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// WaitDurable blocks until the sync watermark reaches end (record indexes
// [0, end) all fsynced), the log closes (ErrClosed), or cancel is closed
// (ErrCanceled). A nil cancel never fires. This is the second phase of the
// interval-mode two-phase ack: append, then wait for the covering sync
// before acknowledging, so acknowledged always means durable.
func (l *Log) WaitDurable(end uint64, cancel <-chan struct{}) error {
	for {
		l.mu.Lock()
		if l.durable >= end {
			l.mu.Unlock()
			return nil
		}
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		gen := l.syncGen
		l.mu.Unlock()
		select {
		case <-gen:
		case <-cancel:
			return ErrCanceled
		}
	}
}

// Len returns the number of durable records.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Replay calls fn for every record in append order. Replay stops without
// error at the first torn record (trailing partial write from a crash); any
// mid-log corruption returns ErrCorrupt.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.replayLocked(fn)
}

func (l *Log) replayLocked(fn func(payload []byte) error) error {
	for si, id := range l.segments {
		last := si == len(l.segments)-1
		if err := l.replaySegment(id, last, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(id uint64, last bool, fn func([]byte) error) error {
	f, err := os.Open(l.segPath(id))
	if err != nil {
		if os.IsNotExist(err) && last {
			return nil
		}
		return fmt.Errorf("wal: open segment for replay: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			if last {
				return nil // torn header at tail: ignore
			}
			return fmt.Errorf("%w: torn header in non-final segment %d", ErrCorrupt, id)
		}
		if err != nil {
			return fmt.Errorf("wal: read header: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if (err == io.ErrUnexpectedEOF || err == io.EOF) && last {
				return nil // torn payload at tail: ignore
			}
			return fmt.Errorf("%w: torn payload in segment %d", ErrCorrupt, id)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return fmt.Errorf("%w: checksum mismatch in segment %d", ErrCorrupt, id)
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// TrimTorn truncates the active segment to its last fully-valid record,
// discarding any torn tail bytes a crash left behind. Without the trim,
// appends after a reopen would land *after* the torn bytes — durable but
// unreachable, since Replay stops at the tear. Returns the number of bytes
// dropped. Only the active (last) segment can carry a tear: rolls sync and
// close their segment before moving on.
func (l *Log) TrimTorn() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	f, err := os.Open(l.segPath(l.activeID))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: open for trim: %w", err)
	}
	var valid int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break // invalid suffix starts here
		}
		valid += int64(headerSize) + int64(n)
	}
	f.Close()
	dropped := l.activeSz - valid
	if dropped <= 0 {
		return 0, nil
	}
	if err := l.active.Truncate(valid); err != nil {
		return 0, fmt.Errorf("wal: trim: %w", err)
	}
	l.activeSz = valid
	return dropped, nil
}

// Truncate removes all records and starts an empty log (used after a
// checkpoint has made the log prefix redundant).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close for truncate: %w", err)
	}
	for _, id := range l.segments {
		if err := os.Remove(l.segPath(id)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: remove segment: %w", err)
		}
	}
	l.segments = nil
	l.next = 0
	l.durable = 0
	l.broadcastLocked()
	return l.openActive()
}

// Close flushes and closes the log (stopping the interval flusher, when
// one is running).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	stop, done := l.flushStop, l.flushDone
	l.flushStop, l.flushDone = nil, nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.active.Sync(); err != nil {
		l.broadcastLocked() // wake waiters; they observe closed
		l.active.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	l.markDurableLocked(l.next)
	return l.active.Close()
}
