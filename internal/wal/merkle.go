package wal

import "crypto/sha256"

// Merkle trees over batch payloads give a group append tamper evidence
// beyond the per-record CRC: the CRC catches torn or bit-rotted records,
// but an attacker (or a buggy tool) that rewrites a payload *and* its CRC
// passes replay silently. A batch root commits to every member payload at
// once, and a stored proof path lets any single record be verified against
// the root in O(log n) hashes — the incremental-integrity idea (check the
// delta, not the whole history) applied to the log itself.
//
// Construction: leaf = H(0x00 || payload), node = H(0x01 || left || right),
// with an odd node promoted unchanged to the next level. Domain-separating
// leaves from interior nodes blocks the classic second-preimage splice
// where an interior node is re-presented as a leaf.

// HashSize is the byte size of a Merkle hash (SHA-256).
const HashSize = sha256.Size

const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one payload as a Merkle leaf.
func LeafHash(payload []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(payload)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

func nodeHash(left, right [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// MerkleRoot returns the root over the payloads. The root of zero leaves is
// the zero hash; a single leaf's root is its leaf hash.
func MerkleRoot(payloads [][]byte) [HashSize]byte {
	if len(payloads) == 0 {
		return [HashSize]byte{}
	}
	level := make([][HashSize]byte, len(payloads))
	for i, p := range payloads {
		level[i] = LeafHash(p)
	}
	for len(level) > 1 {
		next := make([][HashSize]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd node: promote
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling on a Merkle proof path. Left reports the sibling
// sits to the left of the running hash.
type ProofStep struct {
	Sibling [HashSize]byte
	Left    bool
}

// MerkleProof returns the proof path for payload i: the ⌈log2 n⌉ (or fewer,
// with promoted odd nodes) siblings that hash the leaf up to the root.
// Returns nil when i is out of range.
func MerkleProof(payloads [][]byte, i int) []ProofStep {
	if i < 0 || i >= len(payloads) {
		return nil
	}
	level := make([][HashSize]byte, len(payloads))
	for j, p := range payloads {
		level[j] = LeafHash(p)
	}
	var proof []ProofStep
	for len(level) > 1 {
		if sib := i ^ 1; sib < len(level) {
			proof = append(proof, ProofStep{Sibling: level[sib], Left: sib < i})
		}
		next := make([][HashSize]byte, 0, (len(level)+1)/2)
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, nodeHash(level[j], level[j+1]))
			} else {
				next = append(next, level[j])
			}
		}
		level = next
		i /= 2
	}
	return proof
}

// VerifyProof checks payload against root using the proof path from
// MerkleProof — O(len(proof)) = O(log n) hashes, no other payloads needed.
func VerifyProof(root [HashSize]byte, payload []byte, proof []ProofStep) bool {
	h := LeafHash(payload)
	for _, step := range proof {
		if step.Left {
			h = nodeHash(step.Sibling, h)
		} else {
			h = nodeHash(h, step.Sibling)
		}
	}
	return h == root
}
