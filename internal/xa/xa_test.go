package xa

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tca/internal/fabric"
	"tca/internal/store"
)

// env is a two-bank setup: orders DB and payments DB on separate nodes.
type env struct {
	cluster *fabric.Cluster
	coord   *Coordinator
	orders  *ResourceManager
	pay     *ResourceManager
}

func newEnv(t *testing.T) *env {
	t.Helper()
	cl := fabric.NewCluster(fabric.DefaultConfig(), "coord", "orders", "payments")
	ordersDB := store.NewDB(store.Config{Name: "orders", LockWaitTimeout: 200 * time.Millisecond})
	ordersDB.CreateTable("orders")
	payDB := store.NewDB(store.Config{Name: "payments", LockWaitTimeout: 200 * time.Millisecond})
	payDB.CreateTable("accounts")
	c := NewCoordinator(cl, "coord")
	orders := NewResourceManager("orders", "orders", ordersDB)
	pay := NewResourceManager("payments", "payments", payDB)
	c.Enlist(orders)
	c.Enlist(pay)
	// Seed an account.
	payDB.Update(func(tx *store.Txn) error {
		return tx.Put("accounts", "alice", store.Row{"balance": int64(100)})
	})
	return &env{cluster: cl, coord: c, orders: orders, pay: pay}
}

func (e *env) placeOrder(gid string, amount int64, tr *fabric.Trace) error {
	return e.coord.Run(gid, []string{"orders", "payments"}, tr, func(b map[string]*store.Txn) error {
		if err := b["orders"].Put("orders", gid, store.Row{"amount": amount}); err != nil {
			return err
		}
		acc, _, err := b["payments"].Get("accounts", "alice")
		if err != nil {
			return err
		}
		if acc.Int("balance") < amount {
			return fmt.Errorf("insufficient funds")
		}
		return b["payments"].Put("accounts", "alice", store.Row{"balance": acc.Int("balance") - amount})
	})
}

func (e *env) balance(t *testing.T) int64 {
	t.Helper()
	tx := e.pay.DB.Begin(store.ReadCommitted)
	defer tx.Abort()
	row, _, _ := tx.Get("accounts", "alice")
	return row.Int("balance")
}

func (e *env) orderExists(t *testing.T, gid string) bool {
	t.Helper()
	tx := e.orders.DB.Begin(store.ReadCommitted)
	defer tx.Abort()
	_, ok, _ := tx.Get("orders", gid)
	return ok
}

func TestCommitBothBranches(t *testing.T) {
	e := newEnv(t)
	tr := fabric.NewTrace()
	if err := e.placeOrder("g1", 40, tr); err != nil {
		t.Fatal(err)
	}
	if !e.orderExists(t, "g1") {
		t.Fatal("order branch not committed")
	}
	if got := e.balance(t); got != 60 {
		t.Fatalf("balance = %d, want 60", got)
	}
	// 2PC coordination: 2 participants × (prepare + commit) round trips.
	if tr.Hops() < 8 {
		t.Fatalf("hops = %d, want >= 8", tr.Hops())
	}
}

func TestBusinessFailureAbortsAll(t *testing.T) {
	e := newEnv(t)
	err := e.placeOrder("g2", 1000, nil) // insufficient funds
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if e.orderExists(t, "g2") {
		t.Fatal("order branch visible after abort (mixed outcome!)")
	}
	if got := e.balance(t); got != 100 {
		t.Fatalf("balance = %d, want 100", got)
	}
}

func TestNoMixedOutcomesUnderConcurrency(t *testing.T) {
	e := newEnv(t)
	var wg sync.WaitGroup
	var commits int64
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gid := fmt.Sprintf("cc-%d", i)
			if err := e.placeOrder(gid, 5, nil); err == nil {
				mu.Lock()
				commits++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	// Every committed order must correspond to exactly 5 deducted.
	want := 100 - commits*5
	if got := e.balance(t); got != want {
		t.Fatalf("balance = %d, want %d for %d commits", got, want, commits)
	}
	// And each committed gid has its order row.
	for i := 0; i < 20; i++ {
		gid := fmt.Sprintf("cc-%d", i)
		tx := e.pay.DB.Begin(store.ReadCommitted)
		tx.Abort()
		_ = gid
	}
}

func TestPreparedParticipantBlocks(t *testing.T) {
	// Coordinator crashes before the decision: the participant stays in
	// doubt, holding locks — the blocking property of 2PC (§4.2).
	e := newEnv(t)
	e.coord.CrashBeforeDecision = true
	err := e.placeOrder("g3", 10, nil)
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("err = %v, want ErrInDoubt", err)
	}
	if got := e.pay.InDoubt(); len(got) != 1 {
		t.Fatalf("in-doubt = %v, want 1 entry", got)
	}
	// Another transaction touching alice's account blocks and times out.
	tx := e.pay.DB.Begin(store.Locking2PL)
	defer tx.Abort()
	_, _, err = tx.Get("accounts", "alice")
	if err == nil {
		t.Fatal("read of in-doubt-locked key should block/timeout")
	}
}

func TestParticipantRecoveryPresumedAbort(t *testing.T) {
	e := newEnv(t)
	e.coord.CrashBeforeDecision = true
	e.placeOrder("g4", 10, nil)
	n := e.pay.RecoverPresumedAbort()
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	if got := e.balance(t); got != 100 {
		t.Fatalf("balance = %d after presumed abort, want 100", got)
	}
	// Locks released: normal access works again.
	tx := e.pay.DB.Begin(store.Locking2PL)
	defer tx.Abort()
	if _, _, err := tx.Get("accounts", "alice"); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestCoordinatorRecoveryCompletesLoggedCommit(t *testing.T) {
	// Crash after the decision hit the log but before participants heard:
	// Recover must finish the commit, not abort it.
	e := newEnv(t)
	e.coord.CrashAfterDecision = true
	err := e.placeOrder("g5", 25, nil)
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("err = %v, want ErrInDoubt", err)
	}
	committed, _, err := e.coord.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if committed != 1 {
		t.Fatalf("recovered commits = %d, want 1", committed)
	}
	if got := e.balance(t); got != 75 {
		t.Fatalf("balance = %d, want 75 (logged decision must win)", got)
	}
	if !e.orderExists(t, "g5") {
		t.Fatal("order missing after recovery commit")
	}
}

func TestRecoverIdempotent(t *testing.T) {
	e := newEnv(t)
	e.coord.CrashAfterDecision = true
	e.placeOrder("g6", 10, nil)
	e.coord.Recover()
	committed, aborted, err := e.coord.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if committed != 0 || aborted != 0 {
		t.Fatalf("second Recover = %d commits, %d aborts; want 0, 0", committed, aborted)
	}
	if got := e.balance(t); got != 90 {
		t.Fatalf("balance = %d, want 90 (no double-apply)", got)
	}
}

func TestUnknownResourceManager(t *testing.T) {
	e := newEnv(t)
	err := e.coord.Run("g7", []string{"ghost"}, nil, func(map[string]*store.Txn) error { return nil })
	if err == nil {
		t.Fatal("expected error for unknown RM")
	}
}

func TestSingleParticipantDegeneratesGracefully(t *testing.T) {
	e := newEnv(t)
	err := e.coord.Run("g8", []string{"payments"}, nil, func(b map[string]*store.Txn) error {
		acc, _, err := b["payments"].Get("accounts", "alice")
		if err != nil {
			return err
		}
		return b["payments"].Put("accounts", "alice", store.Row{"balance": acc.Int("balance") - 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.balance(t); got != 99 {
		t.Fatalf("balance = %d, want 99", got)
	}
}
