// Package xa implements two-phase commit in the OpenXA style the paper
// surveys in §4.2 / §5.2: a coordinator drives prepare and commit rounds
// across resource managers, each wrapping a database. The implementation
// exhibits the properties that make the pattern unpopular in microservice
// architectures (§4.2):
//
//   - blocking: participants hold locks from prepare until the decision
//     arrives; a slow or crashed coordinator leaves them in doubt;
//   - presumed abort: an in-doubt participant whose coordinator forgot it
//     (no decision logged) aborts on recovery;
//   - atomicity: no mixed outcomes — all participants commit or all abort.
//
// The coordinator writes its decision to a durable log before telling any
// participant, so coordinator crash-recovery can complete in-flight
// transactions deterministically.
package xa

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/store"
)

// Common protocol errors.
var (
	ErrAborted = errors.New("xa: transaction aborted")
	ErrNoTxn   = errors.New("xa: unknown transaction")
	ErrInDoubt = errors.New("xa: participant in doubt")
)

// ResourceManager adapts one database into a 2PC participant: it tracks
// the branch transaction per global transaction id.
type ResourceManager struct {
	Name string
	Node fabric.NodeID
	DB   *store.DB

	mu       sync.Mutex
	branches map[string]*store.Txn
}

// NewResourceManager wraps db as a participant hosted on node.
func NewResourceManager(name string, node fabric.NodeID, db *store.DB) *ResourceManager {
	return &ResourceManager{Name: name, Node: node, DB: db, branches: make(map[string]*store.Txn)}
}

// Branch returns (starting if needed) the local branch of global txn gid.
// Branches use strict 2PL so locks survive into the prepare window.
func (rm *ResourceManager) Branch(gid string) *store.Txn {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	tx, ok := rm.branches[gid]
	if !ok {
		tx = rm.DB.Begin(store.Locking2PL)
		rm.branches[gid] = tx
	}
	return tx
}

// Prepare votes on gid: a yes vote pins the branch's locks until the
// decision.
func (rm *ResourceManager) Prepare(gid string) error {
	rm.mu.Lock()
	tx, ok := rm.branches[gid]
	rm.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s@%s", ErrNoTxn, gid, rm.Name)
	}
	return tx.Prepare()
}

// Commit applies the decision.
func (rm *ResourceManager) Commit(gid string) error {
	rm.mu.Lock()
	tx, ok := rm.branches[gid]
	delete(rm.branches, gid)
	rm.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s@%s", ErrNoTxn, gid, rm.Name)
	}
	return tx.Commit()
}

// Abort rolls the branch back.
func (rm *ResourceManager) Abort(gid string) error {
	rm.mu.Lock()
	tx, ok := rm.branches[gid]
	delete(rm.branches, gid)
	rm.mu.Unlock()
	if !ok {
		return nil // presumed abort: nothing to do
	}
	tx.Abort()
	return nil
}

// InDoubt returns the gids prepared (or active) but undecided at this
// participant — the blocking set.
func (rm *ResourceManager) InDoubt() []string {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]string, 0, len(rm.branches))
	for gid := range rm.branches {
		out = append(out, gid)
	}
	return out
}

// RecoverPresumedAbort aborts every undecided branch (the participant
// recovery rule when the coordinator has no decision for it).
func (rm *ResourceManager) RecoverPresumedAbort() int {
	gids := rm.InDoubt()
	for _, gid := range gids {
		rm.Abort(gid)
	}
	return len(gids)
}

// decision values in the coordinator log.
const (
	decisionCommit = "commit"
	decisionAbort  = "abort"
	decisionDone   = "done"
)

type logRecord struct {
	Participants []string `json:"parts"`
	Decision     string   `json:"decision"`
}

// Coordinator drives global transactions across resource managers.
type Coordinator struct {
	cluster *fabric.Cluster
	node    fabric.NodeID
	log     *store.DB
	m       *metrics.Registry

	mu  sync.RWMutex
	rms map[string]*ResourceManager

	// CrashBeforeDecision, when set, makes the next Run stop after
	// prepare and before logging a decision — the in-doubt scenario.
	CrashBeforeDecision bool
	// CrashAfterDecision stops after logging commit but before notifying
	// participants — recovery must finish the job.
	CrashAfterDecision bool
}

// NewCoordinator creates a coordinator on node with a dedicated decision
// log.
func NewCoordinator(cluster *fabric.Cluster, node fabric.NodeID) *Coordinator {
	log := store.NewDB(store.Config{Name: "xa-coordinator-log"})
	log.CreateTable("decisions")
	return &Coordinator{
		cluster: cluster,
		node:    node,
		log:     log,
		m:       metrics.NewRegistry(),
		rms:     make(map[string]*ResourceManager),
	}
}

// Metrics returns the coordinator's instruments.
func (c *Coordinator) Metrics() *metrics.Registry { return c.m }

// Enlist registers a resource manager.
func (c *Coordinator) Enlist(rm *ResourceManager) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rms[rm.Name] = rm
}

// RM returns an enlisted resource manager.
func (c *Coordinator) RM(name string) (*ResourceManager, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rm, ok := c.rms[name]
	return rm, ok
}

func (c *Coordinator) writeLog(gid string, rec logRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tx := c.log.Begin(store.ReadCommitted)
	if err := tx.Put("decisions", gid, store.Row{"rec": string(raw)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (c *Coordinator) readLog(gid string) (logRecord, bool) {
	tx := c.log.Begin(store.ReadCommitted)
	defer tx.Abort()
	row, ok, err := tx.Get("decisions", gid)
	if err != nil || !ok {
		return logRecord{}, false
	}
	var rec logRecord
	if json.Unmarshal([]byte(row.Str("rec")), &rec) != nil {
		return logRecord{}, false
	}
	return rec, true
}

// Run executes fn as a global transaction gid across the named resource
// managers, then drives 2PC. fn receives the branch transactions by RM
// name and performs its reads/writes through them. Every protocol message
// charges a round trip to tr.
func (c *Coordinator) Run(gid string, participants []string, tr *fabric.Trace, fn func(branches map[string]*store.Txn) error) error {
	branches := make(map[string]*store.Txn, len(participants))
	rms := make([]*ResourceManager, 0, len(participants))
	for _, name := range participants {
		rm, ok := c.RM(name)
		if !ok {
			return fmt.Errorf("xa: unknown resource manager %q", name)
		}
		rms = append(rms, rm)
		branches[name] = rm.Branch(gid)
	}
	abortAll := func() {
		for _, rm := range rms {
			c.roundTrip(rm, tr)
			rm.Abort(gid)
		}
	}
	if err := fn(branches); err != nil {
		abortAll()
		c.m.Counter("xa.aborts").Inc()
		return fmt.Errorf("%w: %w", ErrAborted, err)
	}
	// Phase 1: prepare.
	for _, rm := range rms {
		c.roundTrip(rm, tr)
		if err := rm.Prepare(gid); err != nil {
			abortAll()
			c.m.Counter("xa.aborts").Inc()
			return fmt.Errorf("%w: prepare at %s: %w", ErrAborted, rm.Name, err)
		}
	}
	if c.CrashBeforeDecision {
		c.CrashBeforeDecision = false
		c.m.Counter("xa.coordinator_crashes").Inc()
		return fmt.Errorf("%w: coordinator crashed before decision for %s", ErrInDoubt, gid)
	}
	// Decision: durable before anyone is told.
	if err := c.writeLog(gid, logRecord{Participants: participants, Decision: decisionCommit}); err != nil {
		abortAll()
		return err
	}
	if c.CrashAfterDecision {
		c.CrashAfterDecision = false
		c.m.Counter("xa.coordinator_crashes").Inc()
		return fmt.Errorf("%w: coordinator crashed after decision for %s", ErrInDoubt, gid)
	}
	// Phase 2: commit.
	for _, rm := range rms {
		c.roundTrip(rm, tr)
		if err := rm.Commit(gid); err != nil {
			// Prepared branches cannot fail to commit; this is a bug.
			return fmt.Errorf("xa: commit at %s after prepare: %w", rm.Name, err)
		}
	}
	c.writeLog(gid, logRecord{Participants: participants, Decision: decisionDone})
	c.m.Counter("xa.commits").Inc()
	return nil
}

// roundTrip charges one coordinator<->participant message exchange.
func (c *Coordinator) roundTrip(rm *ResourceManager, tr *fabric.Trace) {
	c.cluster.Send(c.node, rm.Node, tr)
	c.cluster.Send(rm.Node, c.node, tr)
}

// Recover completes in-flight transactions after a coordinator restart:
// logged commit decisions are re-driven to participants; transactions with
// no decision are aborted (presumed abort). Returns (committed, aborted).
func (c *Coordinator) Recover() (committed, aborted int, err error) {
	type entry struct {
		gid string
		rec logRecord
	}
	var entries []entry
	tx := c.log.Begin(store.SnapshotIsolation)
	scanErr := tx.Scan("decisions", "", "", func(gid string, row store.Row) bool {
		var rec logRecord
		if json.Unmarshal([]byte(row.Str("rec")), &rec) != nil {
			return true
		}
		if rec.Decision == decisionCommit {
			entries = append(entries, entry{gid: gid, rec: rec})
		}
		return true
	})
	tx.Abort()
	if scanErr != nil {
		return 0, 0, scanErr
	}
	for _, e := range entries {
		for _, name := range e.rec.Participants {
			rm, ok := c.RM(name)
			if !ok {
				continue
			}
			rm.Commit(e.gid) // idempotent-ish: unknown branch returns ErrNoTxn, ignored
		}
		c.writeLog(e.gid, logRecord{Participants: e.rec.Participants, Decision: decisionDone})
		committed++
	}
	// Presumed abort for everything still undecided at the participants.
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, rm := range c.rms {
		aborted += rm.RecoverPresumedAbort()
	}
	return committed, aborted, nil
}
