package micro

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tca/internal/dedup"
	"tca/internal/fabric"
	"tca/internal/rpc"
	"tca/internal/store"
)

func newDeployment() *Deployment {
	return NewDeployment(fabric.NewCluster(fabric.DefaultConfig(), "n1", "n2", "n3"))
}

func TestInvokeHandler(t *testing.T) {
	d := newDeployment()
	svc := d.AddService(ServiceConfig{Name: "greeter"})
	svc.Handle("hello", func(c *Ctx, req []byte) ([]byte, error) {
		return append([]byte("hello "), req...), nil
	})
	resp, trace, err := d.Invoke("greeter", "hello", []byte("world"), rpc.CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello world" {
		t.Fatalf("resp = %q", resp)
	}
	if trace.Total() <= 0 {
		t.Fatal("no simulated latency recorded")
	}
}

func TestUnknownServiceAndOp(t *testing.T) {
	d := newDeployment()
	if _, _, err := d.Invoke("ghost", "op", nil, rpc.CallOptions{}); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want ErrNoService", err)
	}
	d.AddService(ServiceConfig{Name: "svc"})
	if _, _, err := d.Invoke("svc", "nope", nil, rpc.CallOptions{}); !errors.Is(err, rpc.ErrNoEndpoint) {
		t.Fatalf("err = %v, want rpc.ErrNoEndpoint", err)
	}
	if _, err := d.Service("ghost"); !errors.Is(err, ErrNoService) {
		t.Fatalf("Service(ghost) = %v, want ErrNoService", err)
	}
}

func TestDedicatedDatabasePerService(t *testing.T) {
	d := newDeployment()
	a := d.AddService(ServiceConfig{Name: "a"})
	b := d.AddService(ServiceConfig{Name: "b"})
	if a.DB() == b.DB() {
		t.Fatal("services without explicit DB should get dedicated instances")
	}
	// State written by a is physically isolated from b.
	a.DB().CreateTable("t")
	tx := a.DB().Begin(store.ReadCommitted)
	tx.Put("t", "k", store.Row{"v": int64(1)})
	tx.Commit()
	b.DB().CreateTable("t")
	check := b.DB().Begin(store.ReadCommitted)
	defer check.Abort()
	if _, ok, _ := check.Get("t", "k"); ok {
		t.Fatal("b sees a's rows despite database-per-service")
	}
}

func TestSharedDatabase(t *testing.T) {
	d := newDeployment()
	shared := store.NewDB(store.Config{Name: "shared"})
	a := d.AddService(ServiceConfig{Name: "a", DB: shared})
	b := d.AddService(ServiceConfig{Name: "b", DB: shared})
	if a.DB() != b.DB() {
		t.Fatal("shared DB not shared")
	}
}

func TestServiceStateSurvivesRestart(t *testing.T) {
	d := newDeployment()
	svc := d.AddService(ServiceConfig{Name: "counter"})
	svc.DB().CreateTable("state")
	svc.Handle("inc", func(c *Ctx, req []byte) ([]byte, error) {
		var out []byte
		err := c.DB().Update(func(tx *store.Txn) error {
			r, _, err := tx.Get("state", "n")
			if err != nil {
				return err
			}
			n := r.Int("v") + 1
			out = []byte(fmt.Sprintf("%d", n))
			return tx.Put("state", "n", store.Row{"v": n})
		})
		return out, err
	})
	for i := 0; i < 3; i++ {
		if _, _, err := d.Invoke("counter", "inc", nil, rpc.CallOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Restart() // stateless tier bounce
	resp, _, err := d.Invoke("counter", "inc", nil, rpc.CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "4" {
		t.Fatalf("after restart counter = %s, want 4 (state must live in the DB)", resp)
	}
	if got := d.Metrics().Counter("micro.restarts.counter").Value(); got != 1 {
		t.Fatalf("restart counter = %d", got)
	}
}

func TestCrossServiceCall(t *testing.T) {
	d := newDeployment()
	price := d.AddService(ServiceConfig{Name: "pricing"})
	price.Handle("quote", func(c *Ctx, req []byte) ([]byte, error) {
		return []byte("42"), nil
	})
	order := d.AddService(ServiceConfig{Name: "orders"})
	order.Handle("create", func(c *Ctx, req []byte) ([]byte, error) {
		p, err := c.Call("pricing", "quote", req)
		if err != nil {
			return nil, err
		}
		return append([]byte("order@"), p...), nil
	})
	resp, trace, err := d.Invoke("orders", "create", []byte("item"), rpc.CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "order@42" {
		t.Fatalf("resp = %q", resp)
	}
	if trace.Hops() < 4 {
		t.Fatalf("hops = %d, want >= 4 (two nested round trips)", trace.Hops())
	}
}

func TestIdempotencyMiddlewarePerService(t *testing.T) {
	d := newDeployment()
	var executions int
	var mu sync.Mutex
	svc := d.AddService(ServiceConfig{Name: "pay", Idempotency: dedup.New(0)})
	svc.Handle("charge", func(c *Ctx, req []byte) ([]byte, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return []byte("charged"), nil
	})
	opts := rpc.CallOptions{IdempotencyKey: "payment-1"}
	d.Invoke("pay", "charge", nil, opts)
	d.Invoke("pay", "charge", nil, opts) // client retry with same key
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("handler executed %d times, want 1", executions)
	}
}

func TestCallIdempotent(t *testing.T) {
	d := newDeployment()
	var executions int
	var mu sync.Mutex
	dep := d.AddService(ServiceConfig{Name: "downstream", Idempotency: dedup.New(0)})
	dep.Handle("op", func(c *Ctx, req []byte) ([]byte, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return nil, nil
	})
	up := d.AddService(ServiceConfig{Name: "upstream"})
	up.Handle("op", func(c *Ctx, req []byte) ([]byte, error) {
		// Two identical idempotent calls: second must dedup.
		if _, err := c.CallIdempotent("downstream", "op", nil, "once"); err != nil {
			return nil, err
		}
		return c.CallIdempotent("downstream", "op", nil, "once")
	})
	if _, _, err := d.Invoke("upstream", "op", nil, rpc.CallOptions{}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("downstream executed %d times, want 1", executions)
	}
}

func TestJSONHandler(t *testing.T) {
	type req struct{ A, B int64 }
	type resp struct{ Sum int64 }
	d := newDeployment()
	svc := d.AddService(ServiceConfig{Name: "math"})
	svc.Handle("add", JSONHandler(func(c *Ctx, r req) (resp, error) {
		return resp{Sum: r.A + r.B}, nil
	}))
	var codec Codec
	out, _, err := d.Invoke("math", "add", codec.Marshal(req{A: 2, B: 3}), rpc.CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got resp
	if err := codec.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.Sum != 5 {
		t.Fatalf("Sum = %d, want 5", got.Sum)
	}
}

func TestJSONHandlerBadRequest(t *testing.T) {
	d := newDeployment()
	svc := d.AddService(ServiceConfig{Name: "m"})
	svc.Handle("op", JSONHandler(func(c *Ctx, r struct{ X int }) (struct{}, error) {
		return struct{}{}, nil
	}))
	if _, _, err := d.Invoke("m", "op", []byte("{invalid"), rpc.CallOptions{}); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestPlacementOnNamedNode(t *testing.T) {
	d := newDeployment()
	svc := d.AddService(ServiceConfig{Name: "pinned", Node: "n2"})
	if svc.Node() != "n2" {
		t.Fatalf("Node = %s, want n2", svc.Node())
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	d := newDeployment()
	svc := d.AddService(ServiceConfig{Name: "s"})
	boom := errors.New("boom")
	svc.Handle("fail", func(c *Ctx, req []byte) ([]byte, error) { return nil, boom })
	if _, _, err := d.Invoke("s", "fail", nil, rpc.CallOptions{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestCallRetriesConfigured(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.DropProb = 0.5
	cfg.Seed = 11
	d := NewDeployment(fabric.NewCluster(cfg, "n1", "n2"))
	down := d.AddService(ServiceConfig{Name: "down", Node: "n2"})
	down.Handle("op", func(c *Ctx, req []byte) ([]byte, error) { return []byte("ok"), nil })
	up := d.AddService(ServiceConfig{Name: "up", Node: "n1", CallRetries: 10, CallBackoff: time.Millisecond})
	up.Handle("op", func(c *Ctx, req []byte) ([]byte, error) {
		return c.Call("down", "op", nil)
	})
	withRetries, withoutRetries := 0, 0
	for i := 0; i < 100; i++ {
		if _, _, err := d.Invoke("up", "op", nil, rpc.CallOptions{Retries: 8, RetryBackoff: time.Millisecond}); err == nil {
			withRetries++
		}
		if _, _, err := d.Invoke("up", "op", nil, rpc.CallOptions{}); err == nil {
			withoutRetries++
		}
	}
	// With 50% drops each leg fails half the time: one-shot calls mostly
	// fail, retried calls mostly succeed.
	if withRetries < 70 {
		t.Fatalf("with retries only %d/100 succeeded", withRetries)
	}
	if withoutRetries >= withRetries {
		t.Fatalf("retries did not help: %d vs %d", withRetries, withoutRetries)
	}
}
