// Package micro implements the paper's status-quo programming model
// (§3.1 "Microservice Frameworks"): stateless application-tier services in
// the style of Spring Boot / Flask / Dapr, each delegating state to an
// external database (internal/store) and communicating over synchronous RPC
// (internal/rpc) or asynchronously via the message broker.
//
// The two state-management deployments of §3.3 are both supported:
//
//   - database-per-service (decentralized): each service gets a dedicated
//     store.DB, physical isolation, higher infrastructure cost;
//   - shared database (centralized): services receive the same store.DB
//     and contend for its admission slots — the "noisy neighbor" regime.
//
// Fault tolerance follows §4.1: services are stateless, so Restart simply
// rebinds the handlers; all durable state lives in the database. What is
// lost on a crash is exactly what the paper says is lost: in-flight
// requests and any cross-service workflow progress not recorded in state.
package micro

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"time"

	"tca/internal/dedup"
	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/rpc"
	"tca/internal/store"
)

// Common framework errors.
var (
	ErrNoService = errors.New("micro: no such service")
	ErrNoOp      = errors.New("micro: no such operation")
)

// Handler is one service operation. The request and response are raw bytes;
// use Codec for JSON convenience.
type Handler func(c *Ctx, req []byte) ([]byte, error)

// Ctx is the per-request context handed to handlers.
type Ctx struct {
	// Service is the service executing the handler.
	Service *Service
	// RPC is the underlying transport call (attempt number, idempotency
	// key, trace).
	RPC *rpc.Call
}

// DB returns the service's database.
func (c *Ctx) DB() *store.DB { return c.Service.db }

// Call invokes another service's operation synchronously, charging network
// hops to the current trace.
func (c *Ctx) Call(service, op string, req []byte) ([]byte, error) {
	return c.Service.dep.call(c.Service.node, service, op, req, c.RPC.Trace, rpc.CallOptions{
		Retries:      c.Service.cfg.CallRetries,
		RetryBackoff: c.Service.cfg.CallBackoff,
	})
}

// CallIdempotent is Call with an idempotency key attached, so the callee's
// middleware (if configured) dedups retries.
func (c *Ctx) CallIdempotent(service, op string, req []byte, key string) ([]byte, error) {
	return c.Service.dep.call(c.Service.node, service, op, req, c.RPC.Trace, rpc.CallOptions{
		Retries:        c.Service.cfg.CallRetries,
		RetryBackoff:   c.Service.cfg.CallBackoff,
		IdempotencyKey: key,
	})
}

// ServiceConfig describes one service.
type ServiceConfig struct {
	// Name is the service name, unique within the deployment.
	Name string
	// Node places the service; empty places it by hash of the name.
	Node fabric.NodeID
	// DB is the service's database. nil creates a dedicated instance
	// (database-per-service); passing a shared instance gives the
	// shared-database deployment.
	DB *store.DB
	// Idempotency enables idempotency-key dedup middleware on all
	// operations when non-nil.
	Idempotency *dedup.Store
	// CallRetries / CallBackoff configure outbound calls from this
	// service's handlers.
	CallRetries int
	CallBackoff time.Duration
}

// Service is one deployed microservice.
type Service struct {
	cfg  ServiceConfig
	dep  *Deployment
	node fabric.NodeID
	db   *store.DB

	mu  sync.RWMutex
	ops map[string]Handler
}

// Name returns the service name.
func (s *Service) Name() string { return s.cfg.Name }

// Node returns the node the service runs on.
func (s *Service) Node() fabric.NodeID { return s.node }

// DB returns the service's database (shared or dedicated).
func (s *Service) DB() *store.DB { return s.db }

// Handle registers an operation handler, wrapped with the service's
// idempotency middleware when configured.
func (s *Service) Handle(op string, h Handler) {
	s.mu.Lock()
	s.ops[op] = h
	s.mu.Unlock()
	s.bind(op)
}

func (s *Service) bind(op string) {
	name := endpointName(s.cfg.Name, op)
	inner := func(c *rpc.Call, req []byte) ([]byte, error) {
		s.mu.RLock()
		h, ok := s.ops[op]
		s.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %s/%s", ErrNoOp, s.cfg.Name, op)
		}
		s.dep.metrics.Counter("micro.requests." + s.cfg.Name).Inc()
		return h(&Ctx{Service: s, RPC: c}, req)
	}
	if s.cfg.Idempotency != nil {
		s.dep.transport.Register(name, s.node, rpc.WithIdempotency(s.cfg.Idempotency, inner))
	} else {
		s.dep.transport.Register(name, s.node, inner)
	}
}

// Restart models a stateless application-tier restart: handlers rebind,
// database state is untouched. Any in-memory progress is gone — which is
// the point.
func (s *Service) Restart() {
	s.mu.RLock()
	ops := make([]string, 0, len(s.ops))
	for op := range s.ops {
		ops = append(ops, op)
	}
	s.mu.RUnlock()
	for _, op := range ops {
		s.bind(op)
	}
	s.dep.metrics.Counter("micro.restarts." + s.cfg.Name).Inc()
}

func endpointName(service, op string) string { return "svc/" + service + "/" + op }

// Deployment is a set of services on a fabric cluster.
type Deployment struct {
	cluster   *fabric.Cluster
	transport *rpc.Transport
	metrics   *metrics.Registry

	mu       sync.RWMutex
	services map[string]*Service
}

// NewDeployment creates an empty deployment over the cluster.
func NewDeployment(cluster *fabric.Cluster) *Deployment {
	return &Deployment{
		cluster:   cluster,
		transport: rpc.NewTransport(cluster),
		metrics:   metrics.NewRegistry(),
		services:  make(map[string]*Service),
	}
}

// Cluster returns the deployment's fabric.
func (d *Deployment) Cluster() *fabric.Cluster { return d.cluster }

// Transport returns the deployment's RPC transport.
func (d *Deployment) Transport() *rpc.Transport { return d.transport }

// Metrics returns the deployment's instrument registry.
func (d *Deployment) Metrics() *metrics.Registry { return d.metrics }

// AddService deploys a service. With cfg.DB == nil the service gets a
// dedicated database named after it.
func (d *Deployment) AddService(cfg ServiceConfig) *Service {
	node := cfg.Node
	if node == "" {
		node = d.cluster.Place(cfg.Name)
	}
	db := cfg.DB
	if db == nil {
		db = store.NewDB(store.Config{Name: cfg.Name + "-db"})
	}
	s := &Service{cfg: cfg, dep: d, node: node, db: db, ops: make(map[string]Handler)}
	d.mu.Lock()
	d.services[cfg.Name] = s
	d.mu.Unlock()
	return s
}

// Service returns a deployed service by name.
func (d *Deployment) Service(name string) (*Service, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.services[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoService, name)
	}
	return s, nil
}

// call routes one RPC to a service operation.
func (d *Deployment) call(from fabric.NodeID, service, op string, req []byte, tr *fabric.Trace, opts rpc.CallOptions) ([]byte, error) {
	d.mu.RLock()
	_, ok := d.services[service]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoService, service)
	}
	return d.transport.Call(from, endpointName(service, op), req, tr, opts)
}

// Invoke is the external-client entry point: it calls a service operation
// from outside the cluster (modeled as a loopback from the target's node)
// and returns the response plus the simulated end-to-end latency.
func (d *Deployment) Invoke(service, op string, req []byte, opts rpc.CallOptions) ([]byte, *fabric.Trace, error) {
	d.mu.RLock()
	s, ok := d.services[service]
	d.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoService, service)
	}
	tr := fabric.NewTrace()
	resp, err := d.transport.Call(s.node, endpointName(service, op), req, tr, opts)
	return resp, tr, err
}

// Codec marshals requests and responses as JSON, the lingua franca of REST
// microservices.
type Codec struct{}

// Marshal encodes v as JSON, panicking on programmer error (unmarshalable
// types), matching the ergonomics of typed handler helpers.
func (Codec) Marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("micro: marshal: %v", err))
	}
	return b
}

// Unmarshal decodes JSON into v.
func (Codec) Unmarshal(b []byte, v any) error {
	return json.Unmarshal(b, v)
}

// JSONHandler adapts a typed request/response function into a Handler.
func JSONHandler[Req, Resp any](fn func(c *Ctx, req Req) (Resp, error)) Handler {
	return func(c *Ctx, raw []byte) ([]byte, error) {
		var req Req
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &req); err != nil {
				return nil, fmt.Errorf("micro: bad request: %w", err)
			}
		}
		resp, err := fn(c, req)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return nil, fmt.Errorf("micro: bad response: %w", err)
		}
		return out, nil
	}
}
