package vclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLamportTick(t *testing.T) {
	var l Lamport
	if got := l.Tick(); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := l.Tick(); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
}

func TestLamportObserve(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	if got := l.Observe(10); got != 11 {
		t.Fatalf("Observe(10) = %d, want 11", got)
	}
	if got := l.Observe(3); got != 12 {
		t.Fatalf("Observe(3) = %d, want 12 (must stay monotone)", got)
	}
	if got := l.Now(); got != 12 {
		t.Fatalf("Now = %d, want 12", got)
	}
}

func TestLamportConcurrent(t *testing.T) {
	var l Lamport
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Tick()
			}
		}()
	}
	wg.Wait()
	if got := l.Now(); got != 8000 {
		t.Fatalf("Now = %d, want 8000", got)
	}
}

func TestHLCMonotone(t *testing.T) {
	// Frozen physical clock: logical component must break ties.
	c := NewHLCWithSource(func() int64 { return 100 })
	prev := c.Now()
	for i := 0; i < 100; i++ {
		cur := c.Now()
		if !prev.Before(cur) {
			t.Fatalf("HLC not monotone: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestHLCBackwardsPhysicalClock(t *testing.T) {
	// Physical time goes backwards; HLC must still be monotone.
	times := []int64{100, 50, 40, 200}
	i := 0
	c := NewHLCWithSource(func() int64 { v := times[i%len(times)]; i++; return v })
	prev := c.Now()
	for j := 0; j < 10; j++ {
		cur := c.Now()
		if !prev.Before(cur) {
			t.Fatalf("HLC went backwards: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestHLCObserveDominatesRemote(t *testing.T) {
	c := NewHLCWithSource(func() int64 { return 10 })
	remote := HLCTimestamp{Wall: 500, Logical: 7}
	got := c.Observe(remote)
	if !remote.Before(got) {
		t.Fatalf("Observe result %v must exceed remote %v", got, remote)
	}
	// Subsequent local events remain above the observed remote.
	next := c.Now()
	if !got.Before(next) {
		t.Fatalf("Now after Observe %v must exceed %v", next, got)
	}
}

func TestHLCCompare(t *testing.T) {
	a := HLCTimestamp{Wall: 1, Logical: 0}
	b := HLCTimestamp{Wall: 1, Logical: 1}
	c := HLCTimestamp{Wall: 2, Logical: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("logical tiebreak broken")
	}
	if b.Compare(c) != -1 {
		t.Fatal("wall ordering broken")
	}
}

func TestVectorBasicOrdering(t *testing.T) {
	v1 := NewVector().Tick("a") // {a:1}
	v2 := v1.Tick("a")          // {a:2}
	if v1.Compare(v2) != Before {
		t.Fatalf("v1 vs v2 = %v, want before", v1.Compare(v2))
	}
	if v2.Compare(v1) != After {
		t.Fatalf("v2 vs v1 = %v, want after", v2.Compare(v1))
	}
	if v1.Compare(v1) != Equal {
		t.Fatalf("v1 vs v1 = %v, want equal", v1.Compare(v1))
	}
}

func TestVectorConcurrent(t *testing.T) {
	base := NewVector().Tick("a")
	left := base.Tick("b")
	right := base.Tick("c")
	if got := left.Compare(right); got != Concurrent {
		t.Fatalf("left vs right = %v, want concurrent", got)
	}
}

func TestVectorMerge(t *testing.T) {
	a := Vector{"x": 3, "y": 1}
	b := Vector{"x": 1, "z": 5}
	m := a.Merge(b)
	want := Vector{"x": 3, "y": 1, "z": 5}
	if m.Compare(want) != Equal {
		t.Fatalf("Merge = %v, want %v", m, want)
	}
	// Merge dominates both inputs.
	if !m.DominatesOrEqual(a) || !m.DominatesOrEqual(b) {
		t.Fatal("merge must dominate both inputs")
	}
}

func TestVectorTickDoesNotAliasReceiver(t *testing.T) {
	a := NewVector().Tick("a")
	b := a.Tick("a")
	if a["a"] != 1 || b["a"] != 2 {
		t.Fatalf("Tick mutated receiver: a=%v b=%v", a, b)
	}
}

func TestVectorMissingComponentTreatedAsZero(t *testing.T) {
	a := Vector{}
	b := Vector{"n": 1}
	if got := a.Compare(b); got != Before {
		t.Fatalf("{} vs {n:1} = %v, want before", got)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{"b": 2, "a": 1}
	if got := v.String(); got != "{a:1,b:2}" {
		t.Fatalf("String = %q, want sorted {a:1,b:2}", got)
	}
}

// Property: merge is commutative, associative, idempotent, and dominates
// its inputs — the semilattice laws causal stores rely on.
func TestVectorMergeLattice(t *testing.T) {
	gen := func(seed uint64) Vector {
		v := NewVector()
		ids := []string{"a", "b", "c"}
		for i, id := range ids {
			v[id] = (seed >> (8 * i)) % 16
		}
		return v
	}
	f := func(s1, s2, s3 uint64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if a.Merge(b).Compare(b.Merge(a)) != Equal {
			return false // commutative
		}
		if a.Merge(b).Merge(c).Compare(a.Merge(b.Merge(c))) != Equal {
			return false // associative
		}
		if a.Merge(a).Compare(a) != Equal {
			return false // idempotent
		}
		return a.Merge(b).DominatesOrEqual(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingString(t *testing.T) {
	cases := map[Ordering]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}
