// Package vclock provides the logical time primitives used across the
// repository: Lamport clocks, hybrid logical clocks (HLC), and vector clocks.
// Vector clocks back the causally consistent shared-state store used by the
// cloud-functions runtime (the Cloudburst-style design surveyed in §4.2 of
// the paper); HLCs provide commit timestamps for the MVCC stores.
package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Lamport is a thread-safe Lamport logical clock.
type Lamport struct {
	mu sync.Mutex
	t  uint64
}

// Tick advances the clock for a local event and returns the new time.
func (l *Lamport) Tick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.t++
	return l.t
}

// Observe merges a remote timestamp and returns the new local time.
func (l *Lamport) Observe(remote uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if remote > l.t {
		l.t = remote
	}
	l.t++
	return l.t
}

// Now returns the current time without advancing the clock.
func (l *Lamport) Now() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t
}

// HLC is a hybrid logical clock: physical time with a logical component to
// break ties, monotone even when the wall clock goes backwards.
type HLC struct {
	mu      sync.Mutex
	wall    int64
	logical uint32
	nowFn   func() int64
}

// HLCTimestamp is a single HLC reading. Timestamps are totally ordered.
type HLCTimestamp struct {
	Wall    int64
	Logical uint32
}

// Compare returns -1, 0, or +1 ordering two timestamps.
func (t HLCTimestamp) Compare(o HLCTimestamp) int {
	switch {
	case t.Wall < o.Wall:
		return -1
	case t.Wall > o.Wall:
		return 1
	case t.Logical < o.Logical:
		return -1
	case t.Logical > o.Logical:
		return 1
	default:
		return 0
	}
}

// Before reports whether t orders strictly before o.
func (t HLCTimestamp) Before(o HLCTimestamp) bool { return t.Compare(o) < 0 }

func (t HLCTimestamp) String() string {
	return fmt.Sprintf("%d.%d", t.Wall, t.Logical)
}

// NewHLC returns an HLC reading physical time from the real clock.
func NewHLC() *HLC {
	return &HLC{nowFn: func() int64 { return time.Now().UnixNano() }}
}

// NewHLCWithSource returns an HLC with a custom physical time source,
// used by deterministic tests.
func NewHLCWithSource(now func() int64) *HLC { return &HLC{nowFn: now} }

// Now returns the next timestamp for a local or send event.
func (c *HLC) Now() HLCTimestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := c.nowFn()
	if pt > c.wall {
		c.wall = pt
		c.logical = 0
	} else {
		c.logical++
	}
	return HLCTimestamp{Wall: c.wall, Logical: c.logical}
}

// Observe merges a remote timestamp (receive event) and returns the new
// local timestamp, which is strictly greater than both the previous local
// timestamp and the remote one.
func (c *HLC) Observe(remote HLCTimestamp) HLCTimestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := c.nowFn()
	switch {
	case pt > c.wall && pt > remote.Wall:
		c.wall = pt
		c.logical = 0
	case remote.Wall > c.wall:
		c.wall = remote.Wall
		c.logical = remote.Logical + 1
	case c.wall > remote.Wall:
		c.logical++
	default: // equal walls
		if remote.Logical > c.logical {
			c.logical = remote.Logical
		}
		c.logical++
	}
	return HLCTimestamp{Wall: c.wall, Logical: c.logical}
}

// Vector is a vector clock mapping replica IDs to counters. The zero value
// is an empty clock. Vectors are value types; methods returning a Vector
// never alias the receiver's map.
type Vector map[string]uint64

// NewVector returns an empty vector clock.
func NewVector() Vector { return Vector{} }

// Copy returns a deep copy.
func (v Vector) Copy() Vector {
	c := make(Vector, len(v))
	for k, n := range v {
		c[k] = n
	}
	return c
}

// Tick increments the component for id and returns the updated copy.
func (v Vector) Tick(id string) Vector {
	c := v.Copy()
	c[id]++
	return c
}

// Merge returns the component-wise maximum of v and o.
func (v Vector) Merge(o Vector) Vector {
	c := v.Copy()
	for k, n := range o {
		if n > c[k] {
			c[k] = n
		}
	}
	return c
}

// Ordering relates two vector clocks.
type Ordering int

// Possible causal relations between two vector clocks.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// Compare reports the causal relation of v to o.
func (v Vector) Compare(o Vector) Ordering {
	less, greater := false, false
	for k, n := range v {
		m := o[k]
		if n < m {
			less = true
		}
		if n > m {
			greater = true
		}
	}
	for k, m := range o {
		if _, ok := v[k]; !ok && m > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// DominatesOrEqual reports whether v >= o component-wise, i.e. every event
// in o is also reflected in v.
func (v Vector) DominatesOrEqual(o Vector) bool {
	r := v.Compare(o)
	return r == Equal || r == After
}

func (v Vector) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, v[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
