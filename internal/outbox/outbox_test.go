package outbox

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tca/internal/dedup"
	"tca/internal/mq"
	"tca/internal/store"
)

func newEnv() (*store.DB, *mq.Broker) {
	db := store.NewDB(store.Config{Name: "app"})
	db.CreateTable("orders")
	db.CreateTable(Table)
	broker := mq.NewBroker()
	broker.CreateTopic("events", 1)
	return db, broker
}

func countEvents(t *testing.T, b *mq.Broker) int64 {
	t.Helper()
	hw, err := b.HighWater(mq.TopicPartition{Topic: "events", Partition: 0})
	if err != nil {
		t.Fatal(err)
	}
	return hw
}

func orderExists(db *store.DB, key string) bool {
	tx := db.Begin(store.ReadCommitted)
	defer tx.Abort()
	_, ok, _ := tx.Get("orders", key)
	return ok
}

func TestTransactionalWriteThenDrain(t *testing.T) {
	db, broker := newEnv()
	relay := NewRelay(db, broker)
	ev := Event{ID: "e1", Topic: "events", Key: "o1", Payload: []byte("created")}
	if err := TransactionalWrite(db, 1, "orders", "o1", store.Row{"total": int64(10)}, ev); err != nil {
		t.Fatal(err)
	}
	// Event invisible until the relay runs.
	if n := countEvents(t, broker); n != 0 {
		t.Fatalf("events before drain = %d", n)
	}
	n, err := relay.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Drain = %d, want 1", n)
	}
	if n := countEvents(t, broker); n != 1 {
		t.Fatalf("events after drain = %d, want 1", n)
	}
}

func TestDrainIdempotentOnDispatched(t *testing.T) {
	db, broker := newEnv()
	relay := NewRelay(db, broker)
	TransactionalWrite(db, 1, "orders", "o1", store.Row{}, Event{ID: "e1", Topic: "events", Key: "k"})
	relay.Drain()
	n, _ := relay.Drain()
	if n != 0 {
		t.Fatalf("second Drain = %d, want 0", n)
	}
	if got := countEvents(t, broker); got != 1 {
		t.Fatalf("events = %d, want 1", got)
	}
}

func TestDrainOrder(t *testing.T) {
	db, broker := newEnv()
	relay := NewRelay(db, broker)
	for i := 0; i < 5; i++ {
		TransactionalWrite(db, int64(i), "orders", fmt.Sprintf("o%d", i), store.Row{},
			Event{ID: fmt.Sprintf("e%d", i), Topic: "events", Key: "same", Payload: []byte{byte(i)}})
	}
	relay.Drain()
	c, _ := broker.NewConsumer("check", mq.AtLeastOnce, "events")
	msgs, _ := c.Poll(10)
	if len(msgs) != 5 {
		t.Fatalf("events = %d, want 5", len(msgs))
	}
	for i, m := range msgs {
		if m.Value[0] != byte(i) {
			t.Fatalf("event %d out of order: %v", i, m.Value)
		}
	}
}

func TestAbortedTxnLeavesNoOutboxEntry(t *testing.T) {
	db, broker := newEnv()
	relay := NewRelay(db, broker)
	tx := db.Begin(store.Serializable)
	tx.Put("orders", "o-never", store.Row{})
	Append(tx, 1, Event{ID: "ghost", Topic: "events", Key: "k"})
	tx.Abort()
	n, _ := relay.Drain()
	if n != 0 {
		t.Fatalf("Drain published %d events from an aborted txn", n)
	}
	if orderExists(db, "o-never") {
		t.Fatal("aborted order visible")
	}
}

func TestBackgroundRelay(t *testing.T) {
	db, broker := newEnv()
	relay := NewRelay(db, broker)
	relay.Start(time.Millisecond)
	defer relay.Stop()
	TransactionalWrite(db, 1, "orders", "o1", store.Row{}, Event{ID: "e1", Topic: "events", Key: "k"})
	deadline := time.After(5 * time.Second)
	for countEvents(t, broker) == 0 {
		select {
		case <-deadline:
			t.Fatal("background relay never published")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDualWriteLosesEventOnCrashAfterDB(t *testing.T) {
	db, broker := newEnv()
	w := &DualWriter{DB: db, Broker: broker}
	err := w.Write("orders", "o1", store.Row{"total": int64(5)},
		Event{ID: "e1", Topic: "events", Key: "k"}, CrashAfterDB)
	if !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("err = %v", err)
	}
	// Anomaly: state committed, event lost forever.
	if !orderExists(db, "o1") {
		t.Fatal("order should be committed")
	}
	if n := countEvents(t, broker); n != 0 {
		t.Fatalf("events = %d, want 0 (lost)", n)
	}
}

func TestDualWritePhantomEventOnCrashAfterPublish(t *testing.T) {
	db, broker := newEnv()
	w := &DualWriter{DB: db, Broker: broker}
	err := w.Write("orders", "o2", store.Row{},
		Event{ID: "e2", Topic: "events", Key: "k"}, CrashAfterPublish)
	if !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("err = %v", err)
	}
	// Anomaly: event visible, state never committed.
	if orderExists(db, "o2") {
		t.Fatal("order should not exist")
	}
	if n := countEvents(t, broker); n != 1 {
		t.Fatalf("events = %d, want 1 (phantom)", n)
	}
}

func TestOutboxClosesBothAnomalies(t *testing.T) {
	// Same crash schedule as the dual-write tests, but with the outbox the
	// state and the (pending) event commit atomically; the relay is the
	// only publisher, so no phantom and no loss.
	db, broker := newEnv()
	relay := NewRelay(db, broker)

	// Case 1 analogue: "crash" before relay runs -> event still pending,
	// published by the next relay run. Nothing lost.
	TransactionalWrite(db, 1, "orders", "o1", store.Row{}, Event{ID: "e1", Topic: "events", Key: "k"})
	relay.Drain()
	if n := countEvents(t, broker); n != 1 {
		t.Fatalf("events = %d, want 1", n)
	}

	// Case 2 analogue: business txn aborts -> no outbox row -> no phantom.
	tx := db.Begin(store.Serializable)
	tx.Put("orders", "o2", store.Row{})
	Append(tx, 2, Event{ID: "e2", Topic: "events", Key: "k"})
	tx.Abort()
	relay.Drain()
	if n := countEvents(t, broker); n != 1 {
		t.Fatalf("events = %d, want still 1", n)
	}
}

func TestRelayRedeliveryConsumerDedup(t *testing.T) {
	// Crash between publish and mark-dispatched: the relay re-publishes.
	// The consumer dedups by event id — the end-to-end exactly-once recipe.
	db, broker := newEnv()
	relay := NewRelay(db, broker)
	TransactionalWrite(db, 1, "orders", "o1", store.Row{}, Event{ID: "e1", Topic: "events", Key: "k"})
	relay.Drain()
	// Simulate "crash before mark" by resetting the dispatched flag.
	db.Update(func(tx *store.Txn) error {
		var firstKey string
		tx.Scan(Table, "", "", func(k string, row store.Row) bool { firstKey = k; return false })
		row, _, _ := tx.Get(Table, firstKey)
		row["dispatched"] = int64(0)
		return tx.Put(Table, firstKey, row)
	})
	relay.Drain() // re-publishes e1
	if n := countEvents(t, broker); n != 2 {
		t.Fatalf("raw events = %d, want 2 (at-least-once)", n)
	}
	// Consumer-side dedup by event-id header.
	c, _ := broker.NewConsumer("app", mq.AtLeastOnce, "events")
	seen := dedup.New(0)
	unique := 0
	for {
		msgs, _ := c.Poll(10)
		if msgs == nil {
			break
		}
		for _, m := range msgs {
			seen.Do(m.Headers["event-id"], func() ([]byte, error) {
				unique++
				return nil, nil
			})
		}
		c.Ack()
	}
	if unique != 1 {
		t.Fatalf("unique events = %d, want 1", unique)
	}
}
