// Package outbox implements the transactional outbox pattern — the
// standard answer to §5.2's "coordinating state and messaging": a service
// must atomically (a) commit a state change and (b) publish an event. Two
// separate writes ("dual write") can crash in between, losing the event or
// publishing a phantom for a rolled-back change. The outbox fixes this by
// writing the event into an outbox table *inside the same database
// transaction* as the state change; an asynchronous relay then publishes
// outbox rows to the broker and marks them dispatched.
//
// The relay is at-least-once (crash between publish and mark-dispatched
// redelivers), so events carry unique ids for consumer-side dedup —
// exactly-once end to end is, as always, dedup at the edge (§3.2).
//
// For experiment E13 the package also provides DualWriter, the broken
// pattern, with a crash-injection point between the two writes.
package outbox

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/mq"
	"tca/internal/store"
)

// ErrCrashInjected is returned by DualWriter when the configured crash
// point fires.
var ErrCrashInjected = errors.New("outbox: injected crash")

// Table is the outbox table name created in the application database.
const Table = "outbox"

// Event is one outbox entry.
type Event struct {
	ID      string `json:"id"`
	Topic   string `json:"topic"`
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// Append stages an event inside the caller's open transaction: it commits
// or aborts together with the business writes. The sequence column makes
// the relay's scan order deterministic.
func Append(tx *store.Txn, seq int64, ev Event) error {
	raw, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("outbox: marshal event: %w", err)
	}
	return tx.Put(Table, fmt.Sprintf("%020d", seq), store.Row{
		"event":      string(raw),
		"dispatched": int64(0),
	})
}

// Relay polls the outbox table and publishes undelivered events.
type Relay struct {
	db     *store.DB
	broker *mq.Broker

	published atomic.Int64
	stop      chan struct{}
	wg        sync.WaitGroup
	startMu   sync.Mutex
	running   bool
}

// NewRelay creates a relay for db's outbox table (created if missing).
func NewRelay(db *store.DB, broker *mq.Broker) *Relay {
	db.CreateTable(Table)
	return &Relay{db: db, broker: broker}
}

// Drain publishes all undispatched events once, synchronously. Returns the
// number published. Crash-safety: publish happens before mark-dispatched,
// so a crash in between causes redelivery, never loss.
func (r *Relay) Drain() (int, error) {
	type rowT struct {
		key string
		ev  Event
	}
	var todo []rowT
	tx := r.db.Begin(store.SnapshotIsolation)
	err := tx.Scan(Table, "", "", func(k string, row store.Row) bool {
		if row.Int("dispatched") == 1 {
			return true
		}
		var ev Event
		if json.Unmarshal([]byte(row.Str("event")), &ev) != nil {
			return true
		}
		todo = append(todo, rowT{key: k, ev: ev})
		return true
	})
	tx.Abort()
	if err != nil {
		return 0, err
	}
	// Deliberately non-idempotent producer: the relay's contract is
	// at-least-once publish with consumer-side dedup by event id.
	p := r.broker.NewProducer("")
	n := 0
	for _, item := range todo {
		if _, _, err := p.SendH(item.ev.Topic, item.ev.Key, item.ev.Payload, map[string]string{"event-id": item.ev.ID}); err != nil {
			return n, err
		}
		// Mark dispatched after the publish (at-least-once).
		err := r.db.Update(func(tx *store.Txn) error {
			row, ok, err := tx.Get(Table, item.key)
			if err != nil || !ok {
				return err
			}
			row["dispatched"] = int64(1)
			return tx.Put(Table, item.key, row)
		})
		if err != nil {
			return n, err
		}
		n++
		r.published.Add(1)
	}
	return n, nil
}

// Start polls Drain in the background until Stop.
func (r *Relay) Start(interval time.Duration) {
	r.startMu.Lock()
	defer r.startMu.Unlock()
	if r.running {
		return
	}
	r.running = true
	r.stop = make(chan struct{})
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.stop:
				return
			case <-time.After(interval):
				r.Drain()
			}
		}
	}()
}

// Stop halts background polling.
func (r *Relay) Stop() {
	r.startMu.Lock()
	defer r.startMu.Unlock()
	if !r.running {
		return
	}
	r.running = false
	close(r.stop)
	r.wg.Wait()
}

// Published returns the number of events published so far.
func (r *Relay) Published() int64 { return r.published.Load() }

// CrashPoint selects where DualWriter fails.
type CrashPoint int

// Crash points of the dual-write anti-pattern.
const (
	NoCrash CrashPoint = iota
	// CrashAfterDB: state committed, event never published — lost event.
	CrashAfterDB
	// CrashAfterPublish: event published, state rolled back — phantom
	// event describing a change that never happened.
	CrashAfterPublish
)

// DualWriter performs the broken two-separate-writes pattern, with an
// injectable crash for the anomaly experiment (E13).
type DualWriter struct {
	DB     *store.DB
	Broker *mq.Broker
}

// Write commits the business row and publishes the event as two separate
// operations, crashing at the configured point.
func (w *DualWriter) Write(table, key string, row store.Row, ev Event, crash CrashPoint) error {
	if crash == CrashAfterPublish {
		// Publish first, then "crash" before the DB commit.
		p := w.Broker.NewProducer("")
		if _, _, err := p.SendH(ev.Topic, ev.Key, ev.Payload, map[string]string{"event-id": ev.ID}); err != nil {
			return err
		}
		return fmt.Errorf("%w: after publish, before db commit", ErrCrashInjected)
	}
	err := w.DB.Update(func(tx *store.Txn) error {
		return tx.Put(table, key, row)
	})
	if err != nil {
		return err
	}
	if crash == CrashAfterDB {
		return fmt.Errorf("%w: after db commit, before publish", ErrCrashInjected)
	}
	p := w.Broker.NewProducer("")
	_, _, err = p.SendH(ev.Topic, ev.Key, ev.Payload, map[string]string{"event-id": ev.ID})
	return err
}

// TransactionalWrite is the correct pattern: business row and outbox entry
// in one transaction; the relay publishes later.
func TransactionalWrite(db *store.DB, seq int64, table, key string, row store.Row, ev Event) error {
	return db.Update(func(tx *store.Txn) error {
		if err := tx.Put(table, key, row); err != nil {
			return err
		}
		return Append(tx, seq, ev)
	})
}
