// Package fabric simulates the distributed computing infrastructure that
// transactional cloud applications run on: a cluster of nodes connected by a
// network with configurable latency, message loss, duplication, and
// partitions, plus crash/restart of nodes. Every runtime in this repository
// (microservices, actors, functions, dataflows) executes on a fabric Cluster
// so that the failure modes surveyed in §4.1 of the paper — partial
// failures, message redelivery, duplicate delivery — are exercised by the
// same code paths in tests and benchmarks.
//
// Simulated time: the fabric does not sleep for simulated network latency.
// Instead, every logical request carries a *Trace that accumulates the
// simulated delay it would have experienced. Benchmarks report both real
// execution cost (ns/op) and the simulated end-to-end latency distribution.
// This keeps the benchmark suite fast while preserving the relative shapes
// (cross-node > same-node, cold start > warm, 2PC round trips > saga hops).
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Common fabric errors.
var (
	ErrNodeDown    = errors.New("fabric: node is down")
	ErrPartitioned = errors.New("fabric: network partitioned")
	ErrDropped     = errors.New("fabric: message dropped")
	ErrUnknownNode = errors.New("fabric: unknown node")
)

// NodeID identifies a node in the cluster.
type NodeID string

// Trace accumulates simulated latency along one logical request path.
// It is safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	total time.Duration
	hops  int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Charge adds simulated latency d to the trace.
func (t *Trace) Charge(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total += d
	t.hops++
	t.mu.Unlock()
}

// Total returns the accumulated simulated latency.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Hops returns the number of charged network hops.
func (t *Trace) Hops() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hops
}

// Config describes the simulated infrastructure.
type Config struct {
	// Seed makes every probabilistic decision deterministic.
	Seed int64
	// SameNodeLatency is the simulated latency of a message that stays on
	// one node (loopback / IPC).
	SameNodeLatency time.Duration
	// CrossNodeLatency is the simulated base latency of a cross-node
	// message.
	CrossNodeLatency time.Duration
	// CrossRegionLatency is the simulated base latency of a message that
	// crosses a region boundary (WAN). It applies only between nodes that
	// have been placed in different regions with SetRegion; zero means the
	// cluster has no geo tier and cross-region sends fall back to
	// CrossNodeLatency. Jitter and seeding are shared with the other tiers.
	CrossRegionLatency time.Duration
	// LatencyJitterPct adds uniform jitter in [0, pct] percent of the base
	// latency.
	LatencyJitterPct int
	// DropProb is the probability in [0,1] that a message is dropped.
	DropProb float64
	// DupProb is the probability in [0,1] that a message is delivered
	// twice (the duplicate-delivery case §3.2 highlights).
	DupProb float64
}

// DefaultConfig models a single-AZ cluster: 50µs loopback, 500µs cross-node,
// no faults.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		SameNodeLatency:  50 * time.Microsecond,
		CrossNodeLatency: 500 * time.Microsecond,
		LatencyJitterPct: 20,
	}
}

// Cluster is a set of nodes plus the network between them.
type Cluster struct {
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	nodes      map[NodeID]*nodeState
	regions    map[NodeID]string
	partitions map[partitionKey]bool
	epoch      uint64 // incremented on every membership/failure event
}

type nodeState struct {
	up       bool
	restarts int
}

type partitionKey struct{ a, b NodeID }

func pkey(a, b NodeID) partitionKey {
	if a > b {
		a, b = b, a
	}
	return partitionKey{a, b}
}

// NewCluster creates a cluster with the given node IDs, all up.
func NewCluster(cfg Config, nodes ...NodeID) *Cluster {
	c := &Cluster{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		nodes:      make(map[NodeID]*nodeState, len(nodes)),
		regions:    make(map[NodeID]string),
		partitions: make(map[partitionKey]bool),
	}
	for _, n := range nodes {
		c.nodes[n] = &nodeState{up: true}
	}
	return c
}

// SingleNode returns a one-node cluster with default config, convenient for
// unit tests and embedded deployments.
func SingleNode() *Cluster {
	return NewCluster(DefaultConfig(), "node-0")
}

// Nodes returns the IDs of all nodes, in unspecified order.
func (c *Cluster) Nodes() []NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeID, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	return out
}

// AddNode adds a node to the cluster (scale-out).
func (c *Cluster) AddNode(n NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[n]; !ok {
		c.nodes[n] = &nodeState{up: true}
		c.epoch++
	}
}

// Crash marks a node as down. Messages to/from it fail until Restart.
func (c *Cluster) Crash(n NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, n)
	}
	if s.up {
		s.up = false
		c.epoch++
	}
	return nil
}

// Restart brings a crashed node back up and counts the restart.
func (c *Cluster) Restart(n NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, n)
	}
	if !s.up {
		s.up = true
		s.restarts++
		c.epoch++
	}
	return nil
}

// Up reports whether node n is up.
func (c *Cluster) Up(n NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[n]
	return ok && s.up
}

// Restarts returns how many times n has been restarted.
func (c *Cluster) Restarts(n NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[n]
	if !ok {
		return 0
	}
	return s.restarts
}

// Epoch returns the membership epoch; it changes whenever a node crashes,
// restarts, or joins, or a partition is created/healed. Runtimes use it to
// invalidate placement caches.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// SetRegion places node n in the named region. Nodes default to the
// empty region, so clusters that never call SetRegion behave exactly as
// before the geo tier existed.
func (c *Cluster) SetRegion(n NodeID, region string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.regions[n] = region
}

// RegionOf returns the region node n was placed in ("" if unplaced).
func (c *Cluster) RegionOf(n NodeID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.regions[n]
}

// Partition severs the link between a and b in both directions.
func (c *Cluster) Partition(a, b NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.partitions[pkey(a, b)] {
		c.partitions[pkey(a, b)] = true
		c.epoch++
	}
}

// Heal restores the link between a and b.
func (c *Cluster) Heal(a, b NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitions[pkey(a, b)] {
		delete(c.partitions, pkey(a, b))
		c.epoch++
	}
}

// Delivery is the fabric's verdict on one message send.
type Delivery struct {
	// Err is non-nil when the message cannot be delivered (node down,
	// partition, or random drop).
	Err error
	// Latency is the simulated one-way latency to charge to the trace.
	Latency time.Duration
	// Duplicated reports that the network delivered the message twice;
	// receivers that are not idempotent will observe the payload again.
	Duplicated bool
}

// Send decides the fate of a message from src to dst and charges the
// simulated latency to tr (which may be nil).
func (c *Cluster) Send(src, dst NodeID, tr *Trace) Delivery {
	c.mu.Lock()
	srcUp := false
	if s, ok := c.nodes[src]; ok {
		srcUp = s.up
	}
	dstUp := false
	if s, ok := c.nodes[dst]; ok {
		dstUp = s.up
	}
	parted := c.partitions[pkey(src, dst)]
	var base time.Duration
	switch {
	case src == dst:
		base = c.cfg.SameNodeLatency
	case c.cfg.CrossRegionLatency > 0 && c.regions[src] != c.regions[dst]:
		base = c.cfg.CrossRegionLatency
	default:
		base = c.cfg.CrossNodeLatency
	}
	jitter := time.Duration(0)
	if c.cfg.LatencyJitterPct > 0 && base > 0 {
		jitter = time.Duration(c.rng.Int63n(int64(base) * int64(c.cfg.LatencyJitterPct) / 100))
	}
	drop := c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb
	dup := c.cfg.DupProb > 0 && c.rng.Float64() < c.cfg.DupProb
	c.mu.Unlock()

	lat := base + jitter
	tr.Charge(lat)
	switch {
	case !srcUp || !dstUp:
		return Delivery{Err: ErrNodeDown, Latency: lat}
	case parted && src != dst:
		return Delivery{Err: ErrPartitioned, Latency: lat}
	case drop:
		return Delivery{Err: ErrDropped, Latency: lat}
	default:
		return Delivery{Latency: lat, Duplicated: dup}
	}
}

// DupVerdict samples the configured duplicate-delivery probability once,
// letting transports outside the fabric (e.g. the message broker) share the
// cluster's chaos configuration and seed.
func (c *Cluster) DupVerdict() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.DupProb > 0 && c.rng.Float64() < c.cfg.DupProb
}

// Rand returns a deterministic float64 in [0,1) from the cluster's seeded
// source; runtimes use it for their own probabilistic choices so that one
// seed drives the whole simulation.
func (c *Cluster) Rand() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// Intn returns a deterministic int in [0,n).
func (c *Cluster) Intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// Place deterministically maps a string key to one of the cluster's nodes
// using consistent ordering, ignoring liveness. Runtimes that need
// failure-aware placement should check Up and re-place.
func (c *Cluster) Place(key string) NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.nodes) == 0 {
		return ""
	}
	ids := make([]NodeID, 0, len(c.nodes))
	for n := range c.nodes {
		ids = append(ids, n)
	}
	sortNodeIDs(ids)
	h := fnv64(key)
	return ids[h%uint64(len(ids))]
}

// PlaceAlive maps a key to an up node, skipping crashed nodes; returns
// ErrNodeDown when no node is alive.
func (c *Cluster) PlaceAlive(key string) (NodeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]NodeID, 0, len(c.nodes))
	for n, s := range c.nodes {
		if s.up {
			ids = append(ids, n)
		}
	}
	if len(ids) == 0 {
		return "", ErrNodeDown
	}
	sortNodeIDs(ids)
	h := fnv64(key)
	return ids[h%uint64(len(ids))], nil
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
