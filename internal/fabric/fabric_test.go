package fabric

import (
	"errors"
	"testing"
	"time"
)

func twoNodeCluster(cfg Config) *Cluster {
	return NewCluster(cfg, "n1", "n2")
}

func TestSendHealthy(t *testing.T) {
	c := twoNodeCluster(DefaultConfig())
	tr := NewTrace()
	d := c.Send("n1", "n2", tr)
	if d.Err != nil {
		t.Fatalf("Send on healthy cluster: %v", d.Err)
	}
	if d.Latency < 500*time.Microsecond {
		t.Fatalf("cross-node latency %v below base", d.Latency)
	}
	if tr.Total() != d.Latency {
		t.Fatalf("trace %v != delivery latency %v", tr.Total(), d.Latency)
	}
	if tr.Hops() != 1 {
		t.Fatalf("Hops = %d, want 1", tr.Hops())
	}
}

func TestSameNodeCheaperThanCrossNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LatencyJitterPct = 0
	c := twoNodeCluster(cfg)
	same := c.Send("n1", "n1", nil).Latency
	cross := c.Send("n1", "n2", nil).Latency
	if same >= cross {
		t.Fatalf("same-node %v should be cheaper than cross-node %v", same, cross)
	}
}

func TestCrashBlocksDelivery(t *testing.T) {
	c := twoNodeCluster(DefaultConfig())
	if err := c.Crash("n2"); err != nil {
		t.Fatal(err)
	}
	if d := c.Send("n1", "n2", nil); !errors.Is(d.Err, ErrNodeDown) {
		t.Fatalf("Send to crashed node = %v, want ErrNodeDown", d.Err)
	}
	if c.Up("n2") {
		t.Fatal("n2 should be down")
	}
	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if d := c.Send("n1", "n2", nil); d.Err != nil {
		t.Fatalf("Send after restart: %v", d.Err)
	}
	if got := c.Restarts("n2"); got != 1 {
		t.Fatalf("Restarts = %d, want 1", got)
	}
}

func TestCrashUnknownNode(t *testing.T) {
	c := twoNodeCluster(DefaultConfig())
	if err := c.Crash("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Crash(nope) = %v, want ErrUnknownNode", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	c := twoNodeCluster(DefaultConfig())
	c.Partition("n1", "n2")
	if d := c.Send("n1", "n2", nil); !errors.Is(d.Err, ErrPartitioned) {
		t.Fatalf("Send across partition = %v, want ErrPartitioned", d.Err)
	}
	// Order of arguments must not matter.
	if d := c.Send("n2", "n1", nil); !errors.Is(d.Err, ErrPartitioned) {
		t.Fatalf("reverse Send across partition = %v, want ErrPartitioned", d.Err)
	}
	// Loopback unaffected.
	if d := c.Send("n1", "n1", nil); d.Err != nil {
		t.Fatalf("loopback during partition: %v", d.Err)
	}
	c.Heal("n1", "n2")
	if d := c.Send("n1", "n2", nil); d.Err != nil {
		t.Fatalf("Send after heal: %v", d.Err)
	}
}

func TestDropProbability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0.5
	c := twoNodeCluster(cfg)
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if d := c.Send("n1", "n2", nil); errors.Is(d.Err, ErrDropped) {
			drops++
		}
	}
	if drops < n/3 || drops > 2*n/3 {
		t.Fatalf("drops = %d of %d, want ~50%%", drops, n)
	}
}

func TestDupProbability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupProb = 0.3
	c := twoNodeCluster(cfg)
	dups := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if d := c.Send("n1", "n2", nil); d.Duplicated {
			dups++
		}
	}
	if dups < n/5 || dups > n/2 {
		t.Fatalf("dups = %d of %d, want ~30%%", dups, n)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0.2
	cfg.DupProb = 0.2
	run := func() []bool {
		c := twoNodeCluster(cfg)
		var out []bool
		for i := 0; i < 100; i++ {
			d := c.Send("n1", "n2", nil)
			out = append(out, d.Err != nil, d.Duplicated)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestEpochAdvancesOnEvents(t *testing.T) {
	c := twoNodeCluster(DefaultConfig())
	e0 := c.Epoch()
	c.Crash("n1")
	if c.Epoch() == e0 {
		t.Fatal("epoch must advance on crash")
	}
	e1 := c.Epoch()
	c.Crash("n1") // idempotent: already down
	if c.Epoch() != e1 {
		t.Fatal("epoch must not advance on no-op crash")
	}
	c.Restart("n1")
	c.Partition("n1", "n2")
	c.Heal("n1", "n2")
	c.AddNode("n3")
	if c.Epoch() <= e1 {
		t.Fatal("epoch must advance on restart/partition/heal/add")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	c := NewCluster(DefaultConfig(), "a", "b", "c")
	n1 := c.Place("user-42")
	n2 := c.Place("user-42")
	if n1 != n2 {
		t.Fatalf("Place not deterministic: %s vs %s", n1, n2)
	}
}

func TestPlaceAliveSkipsCrashed(t *testing.T) {
	c := NewCluster(DefaultConfig(), "a", "b")
	first, err := c.PlaceAlive("key")
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(first)
	second, err := c.PlaceAlive("key")
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatalf("PlaceAlive returned crashed node %s", first)
	}
	c.Crash(second)
	if _, err := c.PlaceAlive("key"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("PlaceAlive with no live nodes = %v, want ErrNodeDown", err)
	}
}

func TestPlaceSpreadsKeys(t *testing.T) {
	c := NewCluster(DefaultConfig(), "a", "b", "c", "d")
	counts := map[NodeID]int{}
	for i := 0; i < 4000; i++ {
		counts[c.Place(string(rune('k'))+string(rune(i)))]++
	}
	for n, got := range counts {
		if got < 500 {
			t.Errorf("node %s got only %d of 4000 keys — placement badly skewed", n, got)
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Charge(time.Second) // must not panic
	if tr.Total() != 0 || tr.Hops() != 0 {
		t.Fatal("nil trace should read as zero")
	}
}

func TestAddNode(t *testing.T) {
	c := NewCluster(DefaultConfig(), "a")
	c.AddNode("b")
	if len(c.Nodes()) != 2 {
		t.Fatalf("Nodes = %v, want 2 entries", c.Nodes())
	}
	if !c.Up("b") {
		t.Fatal("new node should be up")
	}
}

func TestSingleNode(t *testing.T) {
	c := SingleNode()
	if d := c.Send("node-0", "node-0", nil); d.Err != nil {
		t.Fatalf("loopback on single node: %v", d.Err)
	}
}
