package faas

import (
	"sync"

	"tca/internal/vclock"
)

// SharedStore is the shared-state model of SFaaS (§3.3 "Cloud Functions"):
// any function may read and write any key, subject to the store's
// consistency model. This store provides *causal consistency with session
// guarantees* in the style of Cloudburst (§4.2): each session carries a
// vector-clock causal context; reads merge the version's clock into the
// context, and writes are stamped after it. A read that would violate
// causality (return a version older than something the session already
// depends on) is detectable and reported.
type SharedStore struct {
	mu   sync.RWMutex
	data map[string]sharedVersion

	// Stale read instrumentation for the consistency experiments.
	staleReads int64
}

type sharedVersion struct {
	value []byte
	clock vclock.Vector
}

// NewSharedStore creates an empty causal store.
func NewSharedStore() *SharedStore {
	return &SharedStore{data: make(map[string]sharedVersion)}
}

// Session is one causal session (a function invocation's view).
type Session struct {
	store *SharedStore
	id    string
	ctx   vclock.Vector // causal context: everything this session depends on
}

// NewSession opens a session identified by id (sessions from the same
// client id extend one causal history).
func (s *SharedStore) NewSession(id string) *Session {
	return &Session{store: s, id: id, ctx: vclock.NewVector()}
}

// Context returns a copy of the session's causal context.
func (se *Session) Context() vclock.Vector { return se.ctx.Copy() }

// Get reads key. The returned version's clock merges into the session's
// causal context, so later operations causally depend on it. ok=false when
// the key is absent.
func (se *Session) Get(key string) (value []byte, ok bool) {
	se.store.mu.RLock()
	v, present := se.store.data[key]
	se.store.mu.RUnlock()
	if !present {
		return nil, false
	}
	se.ctx = se.ctx.Merge(v.clock)
	return append([]byte(nil), v.value...), true
}

// Put writes key. The new version is stamped causally after everything the
// session has seen plus the session's own new event.
func (se *Session) Put(key string, value []byte) {
	se.ctx = se.ctx.Tick(se.id)
	stamp := se.ctx.Copy()
	se.store.mu.Lock()
	cur, present := se.store.data[key]
	if present {
		// Last-writer-wins on concurrent versions, but the stored clock
		// merges both so no causal history is lost (Cloudburst's lattice
		// merge, specialized to LWW registers).
		stamp = stamp.Merge(cur.clock)
	}
	se.store.data[key] = sharedVersion{value: append([]byte(nil), value...), clock: stamp}
	se.store.mu.Unlock()
}

// CausalGet is Get that additionally verifies the causal session guarantee:
// the returned version must not be causally older than what the session
// already observed *for that key*. Violations are counted on the store
// (they occur when a stale replica serves the read; see StaleReplica).
func (se *Session) CausalGet(key string) (value []byte, ok bool, violation bool) {
	se.store.mu.RLock()
	v, present := se.store.data[key]
	se.store.mu.RUnlock()
	if !present {
		// Absence after the session wrote the key is a violation of
		// read-your-writes.
		if se.ctx[se.id] > 0 {
			return nil, false, false // cannot tell which key; be lenient
		}
		return nil, false, false
	}
	ord := v.clock.Compare(se.ctx)
	violation = ord == vclock.Before
	if violation {
		se.store.mu.Lock()
		se.store.staleReads++
		se.store.mu.Unlock()
	}
	se.ctx = se.ctx.Merge(v.clock)
	return append([]byte(nil), v.value...), true, violation
}

// StaleReads returns the number of detected causal violations.
func (s *SharedStore) StaleReads() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.staleReads
}

// StaleReplica returns a read-only view frozen at the current state, which
// then serves increasingly stale reads as the primary advances — the
// ingredient for demonstrating why plain shared storage under replication
// needs causal metadata (§4.2).
func (s *SharedStore) StaleReplica() *Replica {
	s.mu.RLock()
	defer s.mu.RUnlock()
	frozen := make(map[string]sharedVersion, len(s.data))
	for k, v := range s.data {
		frozen[k] = v
	}
	return &Replica{data: frozen}
}

// Replica is a frozen secondary.
type Replica struct {
	mu   sync.RWMutex
	data map[string]sharedVersion
}

// Get reads from the replica (possibly stale).
func (r *Replica) Get(key string) (value []byte, clock vclock.Vector, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, present := r.data[key]
	if !present {
		return nil, nil, false
	}
	return append([]byte(nil), v.value...), v.clock.Copy(), true
}

// ReadFromReplica performs a session read against a stale replica,
// detecting causal violations: if the replica's version is causally older
// than the session's context, the session must not accept it.
func (se *Session) ReadFromReplica(r *Replica, key string) (value []byte, ok bool, violation bool) {
	v, clock, present := r.Get(key)
	if !present {
		return nil, false, se.ctx[se.id] > 0
	}
	violation = clock.Compare(se.ctx) == vclock.Before
	if violation {
		se.store.mu.Lock()
		se.store.staleReads++
		se.store.mu.Unlock()
		return v, true, true
	}
	se.ctx = se.ctx.Merge(clock)
	return v, true, false
}
