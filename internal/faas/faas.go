// Package faas implements the cloud-functions programming model of §3.1:
// Function-as-a-Service with the two state models §3.3 identifies —
// private state (a durable object tied to a function identity, the Azure
// Durable Functions "entity" design) and shared state (a causally
// consistent key-value store, the Cloudburst design).
//
// Lifecycle costs are modeled explicitly (§4.3): each function has a warm
// container pool; an invocation that finds no warm container pays the cold
// start latency. Idle eviction shrinks the pool, trading memory for future
// cold starts — the tension that "undermines wider adoption of FaaS".
//
// Exactly-once per operation (§4.2 Durable Functions): invocations carry an
// id; replays of the same id return the recorded result instead of
// re-executing.
package faas

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tca/internal/dedup"
	"tca/internal/fabric"
	"tca/internal/metrics"
)

// Common platform errors.
var (
	ErrNoFunction   = errors.New("faas: no such function")
	ErrThrottled    = errors.New("faas: concurrency limit reached")
	ErrPlatformDown = errors.New("faas: platform stopped")
)

// Handler is the body of a cloud function.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// Ctx is the per-invocation context.
type Ctx struct {
	// Function is the invoked function's name; Key its partition key.
	Function string
	Key      string
	// Trace accumulates simulated latency (cold start, state fetch, hops).
	Trace *fabric.Trace
	// Cold reports whether this invocation paid a cold start.
	Cold bool

	platform *Platform
	session  *Session
}

// Entities returns the durable-entity manager for cross-entity operations.
func (c *Ctx) Entities() *EntityManager { return c.platform.entities }

// Shared returns a causal session against the shared state store, created
// lazily per invocation (Cloudburst attaches causal metadata per request).
func (c *Ctx) Shared() *Session {
	if c.session == nil {
		c.session = c.platform.shared.NewSession(c.Function + "/" + c.Key)
	}
	return c.session
}

// Call invokes another function synchronously (function composition).
func (c *Ctx) Call(fn, key string, payload []byte) ([]byte, error) {
	return c.platform.Invoke(fn, key, payload, c.Trace)
}

// Config tunes the platform's lifecycle model.
type Config struct {
	// ColdStart is the simulated latency of provisioning a container.
	ColdStart time.Duration
	// StateFetch is the simulated latency of pulling private state from
	// disaggregated storage into a fresh container.
	StateFetch time.Duration
	// MaxConcurrent caps in-flight invocations per function (0 = 256).
	MaxConcurrent int
	// WarmPool is the number of containers kept warm per function
	// (0 = 8). Invocations beyond the warm supply pay cold starts.
	WarmPool int
}

// DefaultConfig models a typical FaaS: 50ms cold start, 2ms state fetch.
func DefaultConfig() Config {
	return Config{
		ColdStart:     50 * time.Millisecond,
		StateFetch:    2 * time.Millisecond,
		MaxConcurrent: 256,
		WarmPool:      8,
	}
}

// function is one registered function and its container pool.
type function struct {
	name    string
	handler Handler

	mu    sync.Mutex
	warm  int // containers currently warm and idle
	busy  int // containers currently executing
	limit int
	pool  int
}

// Platform hosts functions.
type Platform struct {
	cfg     Config
	cluster *fabric.Cluster
	metrics *metrics.Registry

	entities *EntityManager
	shared   *SharedStore
	results  *dedup.Store // invocation-id dedup (exactly-once per op)

	mu      sync.RWMutex
	fns     map[string]*function
	stopped bool
}

// NewPlatform creates a platform on the cluster.
func NewPlatform(cluster *fabric.Cluster, cfg Config) *Platform {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 256
	}
	if cfg.WarmPool <= 0 {
		cfg.WarmPool = 8
	}
	p := &Platform{
		cfg:     cfg,
		cluster: cluster,
		metrics: metrics.NewRegistry(),
		results: dedup.New(0),
		fns:     make(map[string]*function),
	}
	p.entities = newEntityManager(p)
	p.shared = NewSharedStore()
	return p
}

// Metrics returns the platform's instruments.
func (p *Platform) Metrics() *metrics.Registry { return p.metrics }

// SharedStore returns the platform's shared causal store.
func (p *Platform) SharedStore() *SharedStore { return p.shared }

// Entities returns the platform's durable-entity manager.
func (p *Platform) Entities() *EntityManager { return p.entities }

// Register deploys a function.
func (p *Platform) Register(name string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fns[name] = &function{
		name:    name,
		handler: h,
		limit:   p.cfg.MaxConcurrent,
		pool:    p.cfg.WarmPool,
	}
}

// Invoke runs a function. The invocation pays a cold start if no warm
// container is idle, then the state-fetch cost, then executes.
func (p *Platform) Invoke(fn, key string, payload []byte, tr *fabric.Trace) ([]byte, error) {
	return p.InvokeID("", fn, key, payload, tr)
}

// InvokeID is Invoke with an invocation id: replays of the same non-empty
// id return the recorded result without re-executing (exactly-once per
// operation, the Durable Functions guarantee).
func (p *Platform) InvokeID(id, fn, key string, payload []byte, tr *fabric.Trace) ([]byte, error) {
	p.mu.RLock()
	if p.stopped {
		p.mu.RUnlock()
		return nil, ErrPlatformDown
	}
	f, ok := p.fns[fn]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFunction, fn)
	}
	if id == "" {
		return p.execute(f, key, payload, tr)
	}
	resp, dup, err := p.results.DoLocked(fn+"/"+id, func() ([]byte, error) {
		return p.execute(f, key, payload, tr)
	})
	if dup {
		p.metrics.Counter("faas.dedup_replays").Inc()
	}
	return resp, err
}

func (p *Platform) execute(f *function, key string, payload []byte, tr *fabric.Trace) ([]byte, error) {
	cold, err := f.acquire()
	if err != nil {
		p.metrics.Counter("faas.throttled").Inc()
		return nil, err
	}
	defer f.release()
	if cold {
		tr.Charge(p.cfg.ColdStart)
		tr.Charge(p.cfg.StateFetch) // fresh container pulls its state
		p.metrics.Counter("faas.cold_starts").Inc()
	} else {
		p.metrics.Counter("faas.warm_starts").Inc()
	}
	ctx := &Ctx{Function: f.name, Key: key, Trace: tr, Cold: cold, platform: p}
	start := time.Now()
	resp, err := f.handler(ctx, payload)
	p.metrics.Histogram("faas.exec." + f.name).RecordDuration(time.Since(start))
	return resp, err
}

// acquire takes a container, reporting whether it was a cold start.
func (f *function) acquire() (cold bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.busy >= f.limit {
		return false, fmt.Errorf("%w: %s at %d", ErrThrottled, f.name, f.limit)
	}
	f.busy++
	if f.warm > 0 {
		f.warm--
		return false, nil
	}
	return true, nil
}

// release returns the container to the warm pool (or discards it when the
// pool is full).
func (f *function) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.busy--
	if f.warm < f.pool {
		f.warm++
	}
}

// EvictIdle drops all warm containers of fn, modeling idle-timeout
// reclamation: the next invocations pay cold starts again.
func (p *Platform) EvictIdle(fn string) error {
	p.mu.RLock()
	f, ok := p.fns[fn]
	p.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoFunction, fn)
	}
	f.mu.Lock()
	f.warm = 0
	f.mu.Unlock()
	p.metrics.Counter("faas.evictions").Inc()
	return nil
}

// Warm pre-provisions n warm containers (provisioned concurrency).
func (p *Platform) Warm(fn string, n int) error {
	p.mu.RLock()
	f, ok := p.fns[fn]
	p.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoFunction, fn)
	}
	f.mu.Lock()
	f.warm = min(n, f.pool)
	f.mu.Unlock()
	return nil
}

// Stop rejects further invocations.
func (p *Platform) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
