package faas

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tca/internal/store"
)

// Entity errors.
var (
	ErrNotInCriticalSection = errors.New("faas: entity not locked by this critical section")
	ErrLockOrdering         = errors.New("faas: critical sections must lock all entities up front")
)

// EntityID addresses a durable entity (the typed-object state abstraction
// of Azure Durable Functions surveyed in §4.2).
type EntityID struct {
	Type string
	ID   string
}

func (e EntityID) String() string { return e.Type + "@" + e.ID }

// EntityManager hosts durable entities. Individual operations on one entity
// are atomic and serialized (each entity processes one operation at a
// time). Operations spanning entities require an explicit critical section
// — callers acquire and release locks, exactly the contract the paper
// describes ("users must acquire and release locks explicitly"). There is
// no isolation across functions beyond that.
type EntityManager struct {
	p  *Platform
	db *store.DB

	mu    sync.Mutex
	locks map[string]*entityLock
}

type entityLock struct {
	mu sync.Mutex
}

func newEntityManager(p *Platform) *EntityManager {
	db := store.NewDB(store.Config{Name: "faas-entities"})
	db.CreateTable("entities")
	return &EntityManager{p: p, db: db, locks: make(map[string]*entityLock)}
}

func (m *EntityManager) lockOf(id EntityID) *entityLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[id.String()]
	if !ok {
		l = &entityLock{}
		m.locks[id.String()] = l
	}
	return l
}

// Signal performs one atomic operation on a single entity: fn receives the
// current state (nil when fresh) and returns the new state. The
// read-modify-write is serialized per entity and durably committed —
// single-entity operations need no explicit locking.
func (m *EntityManager) Signal(id EntityID, fn func(state store.Row) (store.Row, error)) error {
	l := m.lockOf(id)
	l.mu.Lock()
	defer l.mu.Unlock()
	return m.apply(id, fn)
}

func (m *EntityManager) apply(id EntityID, fn func(state store.Row) (store.Row, error)) error {
	tx := m.db.Begin(store.ReadCommitted)
	cur, _, err := tx.Get("entities", id.String())
	if err != nil {
		tx.Abort()
		return err
	}
	next, err := fn(cur)
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Put("entities", id.String(), next); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Read returns an entity's current state without locking (a dirty read by
// design — Durable Functions reads outside critical sections see whatever
// is committed at that instant).
func (m *EntityManager) Read(id EntityID) (store.Row, bool, error) {
	tx := m.db.Begin(store.ReadCommitted)
	defer tx.Abort()
	return tx.Get("entities", id.String())
}

// CriticalSection is an explicit multi-entity lock scope.
type CriticalSection struct {
	m      *EntityManager
	ids    []EntityID
	held   []*entityLock
	closed bool
}

// Lock opens a critical section over the given entities. Locks are
// acquired in a canonical (sorted) order, which makes cross-section
// deadlock impossible — the discipline Durable Functions enforces by
// requiring all entities to be declared up front.
func (m *EntityManager) Lock(ids ...EntityID) *CriticalSection {
	sorted := make([]EntityID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	cs := &CriticalSection{m: m, ids: sorted}
	for _, id := range sorted {
		l := m.lockOf(id)
		l.mu.Lock()
		cs.held = append(cs.held, l)
	}
	m.p.metrics.Counter("faas.critical_sections").Inc()
	return cs
}

// Update performs an atomic read-modify-write on one locked entity.
func (cs *CriticalSection) Update(id EntityID, fn func(state store.Row) (store.Row, error)) error {
	if cs.closed {
		return ErrNotInCriticalSection
	}
	if !cs.holds(id) {
		return fmt.Errorf("%w: %s", ErrNotInCriticalSection, id)
	}
	return cs.m.apply(id, fn)
}

// Get reads one locked entity.
func (cs *CriticalSection) Get(id EntityID) (store.Row, bool, error) {
	if cs.closed || !cs.holds(id) {
		return nil, false, fmt.Errorf("%w: %s", ErrNotInCriticalSection, id)
	}
	return cs.m.Read(id)
}

func (cs *CriticalSection) holds(id EntityID) bool {
	for _, held := range cs.ids {
		if held == id {
			return true
		}
	}
	return false
}

// Unlock releases the critical section. Idempotent.
func (cs *CriticalSection) Unlock() {
	if cs.closed {
		return
	}
	cs.closed = true
	// Release in reverse acquisition order.
	for i := len(cs.held) - 1; i >= 0; i-- {
		cs.held[i].mu.Unlock()
	}
}
