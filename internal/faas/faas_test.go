package faas

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tca/internal/fabric"
	"tca/internal/store"
)

func newPlatform(cfg Config) *Platform {
	return NewPlatform(fabric.SingleNode(), cfg)
}

func TestInvokeBasic(t *testing.T) {
	p := newPlatform(DefaultConfig())
	p.Register("echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return append([]byte("fn:"), payload...), nil
	})
	tr := fabric.NewTrace()
	resp, err := p.Invoke("echo", "k", []byte("x"), tr)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "fn:x" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestUnknownFunction(t *testing.T) {
	p := newPlatform(DefaultConfig())
	if _, err := p.Invoke("ghost", "k", nil, nil); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("err = %v, want ErrNoFunction", err)
	}
}

func TestColdStartThenWarm(t *testing.T) {
	cfg := DefaultConfig()
	p := newPlatform(cfg)
	p.Register("fn", func(ctx *Ctx, payload []byte) ([]byte, error) { return nil, nil })

	cold := fabric.NewTrace()
	p.Invoke("fn", "k", nil, cold)
	if cold.Total() < cfg.ColdStart {
		t.Fatalf("first invocation latency %v, want >= cold start %v", cold.Total(), cfg.ColdStart)
	}
	warm := fabric.NewTrace()
	p.Invoke("fn", "k", nil, warm)
	if warm.Total() >= cfg.ColdStart {
		t.Fatalf("second invocation latency %v should not pay the cold start", warm.Total())
	}
	if got := p.Metrics().Counter("faas.cold_starts").Value(); got != 1 {
		t.Fatalf("cold_starts = %d, want 1", got)
	}
	if got := p.Metrics().Counter("faas.warm_starts").Value(); got != 1 {
		t.Fatalf("warm_starts = %d, want 1", got)
	}
}

func TestEvictIdleForcesColdStart(t *testing.T) {
	p := newPlatform(DefaultConfig())
	p.Register("fn", func(ctx *Ctx, payload []byte) ([]byte, error) { return nil, nil })
	p.Invoke("fn", "k", nil, nil) // cold
	p.Invoke("fn", "k", nil, nil) // warm
	if err := p.EvictIdle("fn"); err != nil {
		t.Fatal(err)
	}
	p.Invoke("fn", "k", nil, nil) // cold again
	if got := p.Metrics().Counter("faas.cold_starts").Value(); got != 2 {
		t.Fatalf("cold_starts = %d, want 2 after eviction", got)
	}
}

func TestWarmProvisioning(t *testing.T) {
	p := newPlatform(DefaultConfig())
	p.Register("fn", func(ctx *Ctx, payload []byte) ([]byte, error) { return nil, nil })
	if err := p.Warm("fn", 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.Invoke("fn", "k", nil, nil)
	}
	if got := p.Metrics().Counter("faas.cold_starts").Value(); got != 0 {
		t.Fatalf("cold_starts = %d, want 0 with provisioned concurrency", got)
	}
}

func TestConcurrencyThrottle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	p := newPlatform(cfg)
	block := make(chan struct{})
	p.Register("slow", func(ctx *Ctx, payload []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Invoke("slow", "k", nil, nil)
		}()
	}
	time.Sleep(20 * time.Millisecond) // let both invocations occupy slots
	_, err := p.Invoke("slow", "k", nil, nil)
	close(block)
	wg.Wait()
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", err)
	}
}

func TestInvokeIDExactlyOncePerOperation(t *testing.T) {
	p := newPlatform(DefaultConfig())
	var calls int
	var mu sync.Mutex
	p.Register("op", func(ctx *Ctx, payload []byte) ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return []byte("done"), nil
	})
	r1, err := p.InvokeID("op-1", "op", "k", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.InvokeID("op-1", "op", "k", nil, nil) // replay
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1", calls)
	}
	if string(r1) != "done" || string(r2) != "done" {
		t.Fatalf("responses %q, %q", r1, r2)
	}
}

func TestFunctionComposition(t *testing.T) {
	p := newPlatform(DefaultConfig())
	p.Register("inner", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return []byte("inner-result"), nil
	})
	p.Register("outer", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return ctx.Call("inner", ctx.Key, payload)
	})
	resp, err := p.Invoke("outer", "k", nil, fabric.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "inner-result" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestStopRejects(t *testing.T) {
	p := newPlatform(DefaultConfig())
	p.Register("fn", func(ctx *Ctx, payload []byte) ([]byte, error) { return nil, nil })
	p.Stop()
	if _, err := p.Invoke("fn", "k", nil, nil); !errors.Is(err, ErrPlatformDown) {
		t.Fatalf("err = %v, want ErrPlatformDown", err)
	}
}

// --- entities ---------------------------------------------------------------

func TestEntitySignalAtomicRMW(t *testing.T) {
	p := newPlatform(DefaultConfig())
	em := p.entities
	id := EntityID{"account", "a"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				em.Signal(id, func(state store.Row) (store.Row, error) {
					if state == nil {
						state = store.Row{"n": int64(0)}
					}
					return store.Row{"n": state.Int("n") + 1}, nil
				})
			}
		}()
	}
	wg.Wait()
	row, ok, err := em.Read(id)
	if err != nil || !ok {
		t.Fatalf("Read = %v,%v,%v", row, ok, err)
	}
	if row.Int("n") != 800 {
		t.Fatalf("n = %d, want 800 (signals must serialize)", row.Int("n"))
	}
}

func TestEntitySignalErrorLeavesState(t *testing.T) {
	p := newPlatform(DefaultConfig())
	em := p.entities
	id := EntityID{"x", "1"}
	em.Signal(id, func(store.Row) (store.Row, error) { return store.Row{"v": int64(1)}, nil })
	boom := errors.New("no")
	if err := em.Signal(id, func(store.Row) (store.Row, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	row, _, _ := em.Read(id)
	if row.Int("v") != 1 {
		t.Fatalf("state changed on failed signal: %v", row)
	}
}

func TestCriticalSectionTransfer(t *testing.T) {
	p := newPlatform(DefaultConfig())
	em := p.entities
	a, b := EntityID{"account", "a"}, EntityID{"account", "b"}
	em.Signal(a, func(store.Row) (store.Row, error) { return store.Row{"bal": int64(100)}, nil })
	em.Signal(b, func(store.Row) (store.Row, error) { return store.Row{"bal": int64(100)}, nil })

	cs := em.Lock(a, b)
	ra, _, _ := cs.Get(a)
	rb, _, _ := cs.Get(b)
	cs.Update(a, func(store.Row) (store.Row, error) {
		return store.Row{"bal": ra.Int("bal") - 40}, nil
	})
	cs.Update(b, func(store.Row) (store.Row, error) {
		return store.Row{"bal": rb.Int("bal") + 40}, nil
	})
	cs.Unlock()

	ra, _, _ = em.Read(a)
	rb, _, _ = em.Read(b)
	if ra.Int("bal") != 60 || rb.Int("bal") != 140 {
		t.Fatalf("balances = %d, %d; want 60, 140", ra.Int("bal"), rb.Int("bal"))
	}
}

func TestCriticalSectionRejectsUnlockedEntity(t *testing.T) {
	p := newPlatform(DefaultConfig())
	em := p.entities
	a, c := EntityID{"x", "a"}, EntityID{"x", "c"}
	cs := em.Lock(a)
	defer cs.Unlock()
	if err := cs.Update(c, func(store.Row) (store.Row, error) { return nil, nil }); !errors.Is(err, ErrNotInCriticalSection) {
		t.Fatalf("err = %v, want ErrNotInCriticalSection", err)
	}
}

func TestCriticalSectionAfterUnlock(t *testing.T) {
	p := newPlatform(DefaultConfig())
	em := p.entities
	a := EntityID{"x", "a"}
	cs := em.Lock(a)
	cs.Unlock()
	cs.Unlock() // idempotent
	if err := cs.Update(a, func(store.Row) (store.Row, error) { return nil, nil }); !errors.Is(err, ErrNotInCriticalSection) {
		t.Fatalf("Update after Unlock = %v", err)
	}
}

func TestCriticalSectionsNoDeadlockOppositeOrders(t *testing.T) {
	// Sorted acquisition means opposite declaration orders cannot deadlock.
	p := newPlatform(DefaultConfig())
	em := p.entities
	a, b := EntityID{"acc", "a"}, EntityID{"acc", "b"}
	em.Signal(a, func(store.Row) (store.Row, error) { return store.Row{"bal": int64(0)}, nil })
	em.Signal(b, func(store.Row) (store.Row, error) { return store.Row{"bal": int64(0)}, nil })
	var wg sync.WaitGroup
	transfer := func(first, second EntityID) {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			cs := em.Lock(first, second)
			cs.Update(first, func(s store.Row) (store.Row, error) {
				return store.Row{"bal": s.Int("bal") - 1}, nil
			})
			cs.Update(second, func(s store.Row) (store.Row, error) {
				return store.Row{"bal": s.Int("bal") + 1}, nil
			})
			cs.Unlock()
		}
	}
	wg.Add(2)
	go transfer(a, b)
	go transfer(b, a) // opposite order
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: opposite-order critical sections never finished")
	}
	ra, _, _ := em.Read(a)
	rb, _, _ := em.Read(b)
	if ra.Int("bal")+rb.Int("bal") != 0 {
		t.Fatalf("conservation violated: %d + %d != 0", ra.Int("bal"), rb.Int("bal"))
	}
}

// --- shared causal store ------------------------------------------------------

func TestSharedReadYourWrites(t *testing.T) {
	s := NewSharedStore()
	se := s.NewSession("client-1")
	se.Put("k", []byte("v1"))
	v, ok := se.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
}

func TestSharedCausalContextGrows(t *testing.T) {
	s := NewSharedStore()
	w := s.NewSession("writer")
	w.Put("a", []byte("1"))
	r := s.NewSession("reader")
	r.Get("a") // reader now depends on writer's event
	if len(r.Context()) == 0 {
		t.Fatal("read did not merge causal context")
	}
}

func TestStaleReplicaViolationDetected(t *testing.T) {
	s := NewSharedStore()
	se := s.NewSession("c")
	se.Put("k", []byte("old"))
	replica := s.StaleReplica() // frozen now
	se.Put("k", []byte("new"))  // primary advances
	se.Get("k")                 // session causally depends on "new"

	_, ok, violation := se.ReadFromReplica(replica, "k")
	if !ok {
		t.Fatal("replica missing key")
	}
	if !violation {
		t.Fatal("stale replica read not flagged as causal violation")
	}
	if s.StaleReads() != 1 {
		t.Fatalf("StaleReads = %d, want 1", s.StaleReads())
	}
}

func TestFreshReplicaReadNoViolation(t *testing.T) {
	s := NewSharedStore()
	se := s.NewSession("c")
	se.Put("k", []byte("v"))
	replica := s.StaleReplica() // contains the session's latest write
	_, ok, violation := se.ReadFromReplica(replica, "k")
	if !ok || violation {
		t.Fatalf("fresh replica read: ok=%v violation=%v", ok, violation)
	}
}

func TestCausalGetOnPrimaryNeverViolates(t *testing.T) {
	s := NewSharedStore()
	a := s.NewSession("a")
	b := s.NewSession("b")
	for i := 0; i < 50; i++ {
		a.Put("k", []byte{byte(i)})
		if _, ok, violation := b.CausalGet("k"); !ok || violation {
			t.Fatalf("primary read %d: ok=%v violation=%v", i, ok, violation)
		}
	}
}

func TestSharedSessionInvocationIntegration(t *testing.T) {
	p := newPlatform(DefaultConfig())
	p.Register("writer", func(ctx *Ctx, payload []byte) ([]byte, error) {
		ctx.Shared().Put("greeting", payload)
		return nil, nil
	})
	p.Register("reader", func(ctx *Ctx, payload []byte) ([]byte, error) {
		v, _ := ctx.Shared().Get("greeting")
		return v, nil
	})
	if _, err := p.Invoke("writer", "w", []byte("hello"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := p.Invoke("reader", "r", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "hello" {
		t.Fatalf("shared read = %q", v)
	}
}
