package dataflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tca/internal/mq"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func toI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// counterStage accumulates a per-key sum of the incoming values and emits
// the running total.
func counterStage(ctx *OpCtx, rec Record) {
	var cur int64
	if b, ok := ctx.State().Get(rec.Key); ok {
		cur = toI64(b)
	}
	cur += toI64(rec.Value)
	ctx.State().Put(rec.Key, i64(cur))
	ctx.Emit(rec.Key, i64(cur))
}

func produce(t *testing.T, b *mq.Broker, topic, key string, v int64) {
	t.Helper()
	if _, _, err := b.NewProducer("").Send(topic, key, i64(v)); err != nil {
		t.Fatal(err)
	}
}

func waitIdle(t *testing.T, j *Job) {
	t.Helper()
	if err := j.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidation(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	if err := NewJob(b, Config{}).Start(); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("empty job Start = %v, want ErrBadTopology", err)
	}
	j := NewJob(b, Config{}).Source("in").Stage("s", 1, counterStage)
	if err := j.Start(); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("job without sink Start = %v, want ErrBadTopology", err)
	}
}

func TestSingleStageProcessing(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 2)
	var mu sync.Mutex
	got := map[string]int64{}
	j := NewJob(b, Config{Name: "sum"}).
		Source("in").
		Stage("count", 2, counterStage).
		Sink(func(r Record) {
			mu.Lock()
			got[r.Key] = toI64(r.Value)
			mu.Unlock()
		})
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	for i := 0; i < 10; i++ {
		produce(t, b, "in", fmt.Sprintf("k%d", i%3), 1)
	}
	waitIdle(t, j)
	mu.Lock()
	defer mu.Unlock()
	want := map[string]int64{"k0": 4, "k1": 3, "k2": 3}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %s = %d, want %d (got=%v)", k, got[k], w, got)
		}
	}
}

func TestKeyedRoutingIsolatesState(t *testing.T) {
	// Same key always lands on the same instance, so per-key counts are
	// exact even with parallelism > 1 and interleaved keys.
	b := mq.NewBroker()
	b.CreateTopic("in", 4)
	var mu sync.Mutex
	last := map[string]int64{}
	j := NewJob(b, Config{}).
		Source("in").
		Stage("count", 4, counterStage).
		Sink(func(r Record) {
			mu.Lock()
			last[r.Key] = toI64(r.Value)
			mu.Unlock()
		})
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	const keys, per = 20, 25
	for i := 0; i < keys*per; i++ {
		produce(t, b, "in", fmt.Sprintf("key-%d", i%keys), 1)
	}
	waitIdle(t, j)
	mu.Lock()
	defer mu.Unlock()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		if last[key] != per {
			t.Fatalf("%s = %d, want %d", key, last[key], per)
		}
	}
}

func TestMultiStagePipeline(t *testing.T) {
	// Stage 1 doubles, stage 2 accumulates.
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	var total atomic.Int64
	j := NewJob(b, Config{}).
		Source("in").
		Stage("double", 2, func(ctx *OpCtx, rec Record) {
			ctx.Emit(rec.Key, i64(2*toI64(rec.Value)))
		}).
		Stage("sum", 1, counterStage).
		Sink(func(r Record) { total.Store(toI64(r.Value)) })
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	for i := 1; i <= 5; i++ {
		produce(t, b, "in", "acc", int64(i))
	}
	waitIdle(t, j)
	if got := total.Load(); got != 30 {
		t.Fatalf("sum = %d, want 30", got)
	}
}

func TestCheckpointAndRecoverExactlyOnceState(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 2)
	var mu sync.Mutex
	last := map[string]int64{}
	j := NewJob(b, Config{Name: "ck"}).
		Source("in").
		Stage("count", 2, counterStage).
		Sink(func(r Record) {
			mu.Lock()
			last[r.Key] = toI64(r.Value)
			mu.Unlock()
		})
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		produce(t, b, "in", "k", 1)
	}
	waitIdle(t, j)
	if _, err := j.TriggerCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint records, then crash before another checkpoint.
	for i := 0; i < 5; i++ {
		produce(t, b, "in", "k", 1)
	}
	waitIdle(t, j)
	j.Crash()
	if err := j.Recover(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	waitIdle(t, j)
	mu.Lock()
	got := last["k"]
	mu.Unlock()
	// State rolled back to 10, replayed the 5 post-checkpoint records:
	// exactly-once state — 15, not 20.
	if got != 15 {
		t.Fatalf("count after recovery = %d, want 15 (exactly-once state)", got)
	}
}

func TestRecoveryWithoutCheckpointReplaysAll(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	var lastVal atomic.Int64
	j := NewJob(b, Config{}).
		Source("in").
		Stage("count", 1, counterStage).
		Sink(func(r Record) { lastVal.Store(toI64(r.Value)) })
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		produce(t, b, "in", "k", 1)
	}
	waitIdle(t, j)
	j.Crash()
	if err := j.Recover(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	waitIdle(t, j)
	if got := lastVal.Load(); got != 4 {
		t.Fatalf("count = %d, want 4 (full replay from offset 0)", got)
	}
}

func TestCallbackSinkIsAtLeastOnceAcrossFailures(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	var deliveries atomic.Int64
	j := NewJob(b, Config{}).
		Source("in").
		Stage("pass", 1, func(ctx *OpCtx, rec Record) { ctx.Emit(rec.Key, rec.Value) }).
		Sink(func(r Record) { deliveries.Add(1) })
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	produce(t, b, "in", "k", 1)
	waitIdle(t, j)
	j.Crash()
	j.Recover()
	defer j.Stop()
	waitIdle(t, j)
	if got := deliveries.Load(); got != 2 {
		t.Fatalf("callback deliveries = %d, want 2 (replay duplicates plain sinks)", got)
	}
}

func TestTransactionalSinkExactlyOnceOutput(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	b.CreateTopic("out", 1)
	j := NewJob(b, Config{Name: "eo"}).
		Source("in").
		Stage("pass", 1, func(ctx *OpCtx, rec Record) { ctx.Emit(rec.Key, rec.Value) }).
		SinkTo("out")
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	produce(t, b, "in", "k", 7)
	waitIdle(t, j)
	// Output invisible before the checkpoint commits it.
	hw, _ := b.HighWater(mq.TopicPartition{Topic: "out", Partition: 0})
	if hw != 0 {
		t.Fatalf("out visible before checkpoint: %d", hw)
	}
	if _, err := j.TriggerCheckpoint(); err != nil {
		t.Fatal(err)
	}
	hw, _ = b.HighWater(mq.TopicPartition{Topic: "out", Partition: 0})
	if hw != 1 {
		t.Fatalf("out after checkpoint = %d, want 1", hw)
	}
	// Crash + replay of committed work must not duplicate output.
	j.Crash()
	j.Recover()
	defer j.Stop()
	waitIdle(t, j)
	if _, err := j.TriggerCheckpoint(); err != nil {
		t.Fatal(err)
	}
	hw, _ = b.HighWater(mq.TopicPartition{Topic: "out", Partition: 0})
	if hw != 1 {
		t.Fatalf("out after recovery = %d, want 1 (exactly-once output)", hw)
	}
}

func TestMultipleCheckpointsUseLatest(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	var lastVal atomic.Int64
	j := NewJob(b, Config{}).
		Source("in").
		Stage("count", 1, counterStage).
		Sink(func(r Record) { lastVal.Store(toI64(r.Value)) })
	j.Start()
	defer j.Stop()
	for ck := 1; ck <= 3; ck++ {
		produce(t, b, "in", "k", 1)
		waitIdle(t, j)
		if _, err := j.TriggerCheckpoint(); err != nil {
			t.Fatal(err)
		}
		if got := j.LatestCheckpoint(); got != uint64(ck) {
			t.Fatalf("LatestCheckpoint = %d, want %d", got, ck)
		}
	}
	j.Crash()
	j.Recover()
	waitIdle(t, j)
	// Nothing to replay: all 3 records were checkpointed. lastVal stays 3
	// (the sink callback does not re-fire).
	produce(t, b, "in", "k", 1)
	waitIdle(t, j)
	if got := lastVal.Load(); got != 4 {
		t.Fatalf("count = %d, want 4 (recovered state 3 + 1 new)", got)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	j := NewJob(b, Config{}).Source("in").Stage("s", 1, counterStage).Sink(func(Record) {})
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	if err := j.Start(); !errors.Is(err, ErrRunning) {
		t.Fatalf("second Start = %v, want ErrRunning", err)
	}
}

func TestCheckpointWhileStoppedFails(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	j := NewJob(b, Config{}).Source("in").Stage("s", 1, counterStage).Sink(func(Record) {})
	if _, err := j.TriggerCheckpoint(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("TriggerCheckpoint stopped = %v, want ErrNotRunning", err)
	}
}

func TestStateLen(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 2)
	j := NewJob(b, Config{}).Source("in").Stage("count", 2, counterStage).Sink(func(Record) {})
	j.Start()
	defer j.Stop()
	for i := 0; i < 10; i++ {
		produce(t, b, "in", fmt.Sprintf("k%d", i), 1)
	}
	waitIdle(t, j)
	if got := j.StateLen(0); got != 10 {
		t.Fatalf("StateLen = %d, want 10", got)
	}
}

func TestStopAndResumeContinuesFromCheckpoint(t *testing.T) {
	b := mq.NewBroker()
	b.CreateTopic("in", 1)
	var lastVal atomic.Int64
	j := NewJob(b, Config{}).
		Source("in").
		Stage("count", 1, counterStage).
		Sink(func(r Record) { lastVal.Store(toI64(r.Value)) })
	j.Start()
	produce(t, b, "in", "k", 1)
	waitIdle(t, j)
	j.TriggerCheckpoint()
	j.Stop()
	produce(t, b, "in", "k", 1) // arrives while stopped
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	waitIdle(t, j)
	if got := lastVal.Load(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestBarrierAlignmentUnderLoad(t *testing.T) {
	// Checkpoints interleaved with a continuous stream: final counts must
	// still be exact (alignment must not drop or double-process records).
	b := mq.NewBroker()
	b.CreateTopic("in", 4)
	var mu sync.Mutex
	last := map[string]int64{}
	j := NewJob(b, Config{}).
		Source("in").
		Stage("fan", 2, func(ctx *OpCtx, rec Record) { ctx.Emit(rec.Key, rec.Value) }).
		Stage("count", 3, counterStage).
		Sink(func(r Record) {
			mu.Lock()
			last[r.Key] = toI64(r.Value)
			mu.Unlock()
		})
	j.Start()
	defer j.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			produce(t, b, "in", fmt.Sprintf("k%d", i%8), 1)
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := j.TriggerCheckpoint(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	waitIdle(t, j)
	mu.Lock()
	defer mu.Unlock()
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("k%d", k)
		if last[key] != 50 {
			t.Fatalf("%s = %d, want 50", key, last[key])
		}
	}
}
