package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/mq"
)

// event is the union flowing through inter-instance channels.
type event struct {
	rec     Record
	barrier uint64 // 0 = data record, >0 = checkpoint barrier epoch
}

// tagged wraps an event with the index of the upstream that sent it, which
// barrier alignment needs.
type tagged struct {
	from int
	ev   event
}

// ack is an instance's report to the checkpoint coordinator.
type ack struct {
	epoch    uint64
	kind     string // "source" | "op" | "sink"
	stage    int
	instance int
	offsets  map[int]int64     // source acks: partition -> next offset
	snapshot map[string][]byte // op acks: state snapshot
}

// runtime is one live execution of a job.
type runtime struct {
	job  *Job
	stop chan struct{}
	wg   sync.WaitGroup

	sources []*source
	stages  [][]*instance
	sink    *sink

	acks   chan ack
	ckptMu sync.Mutex
}

// source reads one partition of the input topic.
type source struct {
	rt      *runtime
	index   int
	tp      mq.TopicPartition
	pos     atomic.Int64
	trigger chan uint64
	outs    []chan tagged // stage-0 instances
}

// instance is one parallel task of one stage.
type instance struct {
	rt       *runtime
	stage    int
	index    int
	fn       ProcessFunc
	in       chan tagged
	outs     []chan tagged // next stage instances; nil for last stage
	sinkIn   chan tagged   // set on last stage
	upstream int           // number of distinct upstream senders

	stateMu sync.Mutex
	state   *mapState

	// alignment state for the in-progress barrier.
	aligning uint64
	arrived  map[int]bool
	held     []tagged
}

// sink terminates the graph.
type sink struct {
	rt       *runtime
	in       chan tagged
	upstream int
	arrived  map[int]bool
	aligning uint64
	held     []tagged

	mu      sync.Mutex
	buffer  []Record            // records since last barrier (topic mode)
	pending map[uint64][]Record // staged per epoch awaiting commit
}

func newRuntime(j *Job, partitions int, ck *checkpoint) (*runtime, error) {
	rt := &runtime{
		job:  j,
		stop: make(chan struct{}),
		acks: make(chan ack, 1024),
	}
	// Build stages back to front so outs can be wired.
	rt.sink = &sink{
		rt:       rt,
		in:       make(chan tagged, j.cfg.ChannelDepth),
		upstream: j.stages[len(j.stages)-1].parallelism,
		arrived:  make(map[int]bool),
		pending:  make(map[uint64][]Record),
	}
	rt.stages = make([][]*instance, len(j.stages))
	for si := len(j.stages) - 1; si >= 0; si-- {
		spec := j.stages[si]
		upstream := partitions
		if si > 0 {
			upstream = j.stages[si-1].parallelism
		}
		insts := make([]*instance, spec.parallelism)
		for ii := 0; ii < spec.parallelism; ii++ {
			inst := &instance{
				rt:       rt,
				stage:    si,
				index:    ii,
				fn:       spec.fn,
				in:       make(chan tagged, j.cfg.ChannelDepth),
				upstream: upstream,
				state:    newMapState(),
				arrived:  make(map[int]bool),
			}
			if si == len(j.stages)-1 {
				inst.sinkIn = rt.sink.in
			} else {
				for _, down := range rt.stages[si+1] {
					inst.outs = append(inst.outs, down.in)
				}
			}
			if ck != nil {
				if snap := ck.snapshotFor(si, ii); snap != nil {
					inst.state.restore(snap)
				}
			}
			insts[ii] = inst
		}
		rt.stages[si] = insts
	}
	// Sources.
	rt.sources = make([]*source, partitions)
	for pi := 0; pi < partitions; pi++ {
		s := &source{
			rt:      rt,
			index:   pi,
			tp:      mq.TopicPartition{Topic: j.sourceTopic, Partition: pi},
			trigger: make(chan uint64, 4),
		}
		if ck != nil {
			s.pos.Store(ck.offsets[pi])
		}
		for _, inst := range rt.stages[0] {
			s.outs = append(s.outs, inst.in)
		}
		rt.sources[pi] = s
	}
	return rt, nil
}

func (rt *runtime) start() {
	for _, inst := range rt.allInstances() {
		rt.wg.Add(1)
		go inst.run()
	}
	rt.wg.Add(1)
	go rt.sink.run()
	for _, s := range rt.sources {
		rt.wg.Add(1)
		go s.run()
	}
}

func (rt *runtime) halt() {
	close(rt.stop)
	rt.wg.Wait()
}

func (rt *runtime) allInstances() []*instance {
	var out []*instance
	for _, st := range rt.stages {
		out = append(out, st...)
	}
	return out
}

func (rt *runtime) sourceLag() int64 {
	var lag int64
	for _, s := range rt.sources {
		hw, err := rt.job.broker.HighWater(s.tp)
		if err != nil {
			continue
		}
		lag += hw - s.pos.Load()
	}
	return lag
}

// send delivers ev to ch unless the runtime is halting.
func (rt *runtime) send(ch chan tagged, t tagged) bool {
	select {
	case ch <- t:
		return true
	case <-rt.stop:
		return false
	}
}

// --- source ---------------------------------------------------------------

func (s *source) run() {
	defer s.rt.wg.Done()
	for {
		select {
		case <-s.rt.stop:
			return
		case epoch := <-s.trigger:
			// Record the restart position, ack, and emit the barrier.
			offs := map[int]int64{s.index: s.pos.Load()}
			s.rt.acks <- ack{epoch: epoch, kind: "source", instance: s.index, offsets: offs}
			for _, out := range s.outs {
				if !s.rt.send(out, tagged{from: s.index, ev: event{barrier: epoch}}) {
					return
				}
			}
		default:
			msgs, err := s.rt.job.broker.Fetch(s.tp, s.pos.Load(), s.rt.job.cfg.PollBatch)
			if err != nil || len(msgs) == 0 {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			for _, m := range msgs {
				rec := Record{
					Key: m.Key, Value: m.Value,
					Topic: m.Topic, Partition: m.Partition, Offset: m.Offset,
				}
				s.rt.job.inflight.Add(1)
				target := int(hash64(rec.Key) % uint64(len(s.outs)))
				if !s.rt.send(s.outs[target], tagged{from: s.index, ev: event{rec: rec}}) {
					return
				}
			}
			s.pos.Store(msgs[len(msgs)-1].Offset + 1)
		}
	}
}

// --- operator instance ------------------------------------------------------

func (i *instance) run() {
	defer i.rt.wg.Done()
	ctx := &OpCtx{state: i.state, StageIndex: i.stage, InstanceIndex: i.index, emit: i.emit}
	for {
		select {
		case <-i.rt.stop:
			return
		case t := <-i.in:
			if t.ev.barrier > 0 {
				if done := i.onBarrier(t, ctx); !done {
					return
				}
				continue
			}
			if i.aligning != 0 && i.arrived[t.from] {
				// Input already delivered its barrier for the epoch being
				// aligned: hold the record back (alignment blocking).
				i.held = append(i.held, t)
				continue
			}
			i.process(ctx, t.ev.rec)
		}
	}
}

func (i *instance) process(ctx *OpCtx, rec Record) {
	i.stateMu.Lock()
	i.fn(ctx, rec)
	i.stateMu.Unlock()
	i.rt.job.inflight.Add(-1)
}

// emit routes a record downstream (next stage or sink).
func (i *instance) emit(rec Record) {
	i.rt.job.inflight.Add(1)
	if i.sinkIn != nil {
		i.rt.send(i.sinkIn, tagged{from: i.index, ev: event{rec: rec}})
		return
	}
	target := int(hash64(rec.Key) % uint64(len(i.outs)))
	i.rt.send(i.outs[target], tagged{from: i.index, ev: event{rec: rec}})
}

// onBarrier performs alignment; when the barrier has arrived from every
// upstream, the instance snapshots, acks, forwards the barrier, and then
// processes the records it held back. Returns false if halting.
func (i *instance) onBarrier(t tagged, ctx *OpCtx) bool {
	epoch := t.ev.barrier
	if i.aligning == 0 {
		i.aligning = epoch
	}
	i.arrived[t.from] = true
	if len(i.arrived) < i.upstream {
		return true
	}
	// Aligned: snapshot and ack.
	i.stateMu.Lock()
	snap := i.state.snapshot()
	i.stateMu.Unlock()
	i.rt.acks <- ack{epoch: epoch, kind: "op", stage: i.stage, instance: i.index, snapshot: snap}
	// Forward the barrier.
	if i.sinkIn != nil {
		if !i.rt.send(i.sinkIn, tagged{from: i.index, ev: event{barrier: epoch}}) {
			return false
		}
	} else {
		for _, out := range i.outs {
			if !i.rt.send(out, tagged{from: i.index, ev: event{barrier: epoch}}) {
				return false
			}
		}
	}
	// Release held-back records.
	held := i.held
	i.held = nil
	i.aligning = 0
	i.arrived = make(map[int]bool)
	for _, h := range held {
		i.process(ctx, h.ev.rec)
	}
	return true
}

// --- sink -------------------------------------------------------------------

func (k *sink) run() {
	defer k.rt.wg.Done()
	for {
		select {
		case <-k.rt.stop:
			return
		case t := <-k.in:
			if t.ev.barrier > 0 {
				k.onBarrier(t)
				continue
			}
			if k.aligning != 0 && k.arrived[t.from] {
				k.held = append(k.held, t)
				continue
			}
			k.deliver(t.ev.rec)
		}
	}
}

func (k *sink) deliver(rec Record) {
	j := k.rt.job
	if j.sinkTopic != "" {
		k.mu.Lock()
		k.buffer = append(k.buffer, rec)
		k.mu.Unlock()
	}
	if j.sinkFn != nil && !j.sinkAtEpoch {
		j.sinkFn(rec)
	}
	j.inflight.Add(-1)
	j.m.Counter("dataflow.sink_records").Inc()
}

func (k *sink) onBarrier(t tagged) {
	epoch := t.ev.barrier
	if k.aligning == 0 {
		k.aligning = epoch
	}
	k.arrived[t.from] = true
	if len(k.arrived) < k.upstream {
		return
	}
	// Stage the epoch's output for commit-on-checkpoint-complete.
	k.mu.Lock()
	if k.rt.job.sinkTopic != "" {
		k.pending[epoch] = k.buffer
		k.buffer = nil
	}
	k.mu.Unlock()
	k.rt.acks <- ack{epoch: epoch, kind: "sink"}
	held := k.held
	k.held = nil
	k.aligning = 0
	k.arrived = make(map[int]bool)
	for _, h := range held {
		k.deliver(h.ev.rec)
	}
}

// commit publishes epoch's staged output atomically via a transactional
// producer. Called by the checkpoint coordinator after all acks.
func (k *sink) commit(epoch uint64) error {
	j := k.rt.job
	if j.sinkTopic == "" {
		return nil
	}
	k.mu.Lock()
	recs := k.pending[epoch]
	delete(k.pending, epoch)
	k.mu.Unlock()
	if len(recs) == 0 {
		return nil
	}
	p := j.broker.NewTransactionalProducer(fmt.Sprintf("%s-sink-%d", j.cfg.Name, epoch))
	if err := p.Begin(); err != nil {
		return err
	}
	for _, r := range recs {
		if _, _, err := p.Send(j.sinkTopic, r.Key, r.Value); err != nil {
			p.Abort()
			return err
		}
	}
	return p.Commit()
}

func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
