// Package dataflow implements the stateful dataflow programming model of
// §3.1: an application is a chain of keyed, stateful operator stages fed by
// message-log partitions, in the style of Apache Flink. The engine provides
// the fault-tolerance design of §4.1:
//
//   - Coordinated checkpoints: Chandy-Lamport-style barriers flow from the
//     sources through every stage; an operator aligns barriers from all its
//     inputs, snapshots its state, and forwards the barrier.
//   - Recovery: on failure the whole job rolls back to the last completed
//     checkpoint (state snapshots + source offsets) and replays the log.
//
// Together with the log-based sources this yields exactly-once *state*
// semantics (§4.2): every input record's effect on operator state is
// applied exactly once, because replayed records re-execute against
// rolled-back state. Output is exactly-once only through the transactional
// sink (SinkTo), which stages each epoch's output in a broker transaction
// committed when the checkpoint completes; the plain callback sink is
// at-least-once across failures — precisely the distinction the paper
// draws between exactly-once processing and end-to-end guarantees.
//
// The paper's other §4.2 observation — exactly-once processing does NOT
// give cross-key transactional isolation — is directly observable here and
// measured by experiment E7.
package dataflow

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/metrics"
	"tca/internal/mq"
)

// Common engine errors.
var (
	ErrRunning      = errors.New("dataflow: job already running")
	ErrNotRunning   = errors.New("dataflow: job not running")
	ErrNoCheckpoint = errors.New("dataflow: no completed checkpoint")
	ErrBadTopology  = errors.New("dataflow: invalid topology")
)

// Record is one data element flowing through the graph.
type Record struct {
	Key   string
	Value []byte
	// Source coordinates (set on records read from the log).
	Topic     string
	Partition int
	Offset    int64
}

// State is the per-instance keyed state accessor. All access is
// single-threaded within an operator instance (the dataflow model's
// no-shared-state rule, §3.1).
type State interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
	Delete(key string)
	// Len returns the number of live keys (used by checkpoint sizing).
	Len() int
}

// mapState is the in-memory state backend; snapshots deep-copy it.
type mapState struct {
	m map[string][]byte
}

func newMapState() *mapState { return &mapState{m: make(map[string][]byte)} }

func (s *mapState) Get(key string) ([]byte, bool) {
	v, ok := s.m[key]
	return v, ok
}
func (s *mapState) Put(key string, value []byte) {
	s.m[key] = append([]byte(nil), value...)
}
func (s *mapState) Delete(key string) { delete(s.m, key) }
func (s *mapState) Len() int          { return len(s.m) }

func (s *mapState) snapshot() map[string][]byte {
	out := make(map[string][]byte, len(s.m))
	for k, v := range s.m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

func (s *mapState) restore(snap map[string][]byte) {
	s.m = make(map[string][]byte, len(snap))
	for k, v := range snap {
		s.m[k] = append([]byte(nil), v...)
	}
}

// OpCtx is handed to process functions.
type OpCtx struct {
	state *mapState
	emit  func(Record)
	// StageIndex / InstanceIndex identify the executing instance.
	StageIndex    int
	InstanceIndex int
}

// State returns the instance's keyed state.
func (c *OpCtx) State() State { return c.state }

// Emit sends a record to the next stage (or sink), routed by key hash.
func (c *OpCtx) Emit(key string, value []byte) {
	c.emit(Record{Key: key, Value: value})
}

// ProcessFunc is the operator body: it receives one record and may read or
// write state and emit downstream records.
type ProcessFunc func(ctx *OpCtx, rec Record)

// stageSpec describes one operator stage.
type stageSpec struct {
	name        string
	parallelism int
	fn          ProcessFunc
}

// Config tunes a job.
type Config struct {
	// Name identifies the job in metrics.
	Name string
	// PollBatch is the source fetch size. Zero means 128.
	PollBatch int
	// ChannelDepth bounds inter-instance channels. Zero means 256.
	ChannelDepth int
}

// Job is one dataflow topology plus its execution machinery.
type Job struct {
	cfg    Config
	broker *mq.Broker
	m      *metrics.Registry

	sourceTopic string
	stages      []stageSpec
	sinkTopic   string       // "" = callback sink
	sinkFn      func(Record) // may be nil
	sinkAtEpoch bool         // deliver collector records on epoch commit

	mu      sync.Mutex
	running bool
	rt      *runtime // live execution; nil when stopped
	ckptmgr *checkpointStore

	inflight atomic.Int64 // records currently inside the graph
	epochSeq atomic.Uint64
}

// NewJob creates an empty job over the broker.
func NewJob(broker *mq.Broker, cfg Config) *Job {
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 128
	}
	if cfg.ChannelDepth <= 0 {
		cfg.ChannelDepth = 256
	}
	return &Job{
		cfg:     cfg,
		broker:  broker,
		m:       metrics.NewRegistry(),
		ckptmgr: newCheckpointStore(),
	}
}

// Metrics exposes the job's instruments.
func (j *Job) Metrics() *metrics.Registry { return j.m }

// Source sets the input topic; every partition becomes one source instance.
func (j *Job) Source(topic string) *Job {
	j.sourceTopic = topic
	return j
}

// Stage appends a keyed stateful operator stage.
func (j *Job) Stage(name string, parallelism int, fn ProcessFunc) *Job {
	if parallelism <= 0 {
		parallelism = 1
	}
	j.stages = append(j.stages, stageSpec{name: name, parallelism: parallelism, fn: fn})
	return j
}

// SinkTo directs final-stage output to a topic with exactly-once semantics:
// each epoch's records are staged in a broker transaction that commits when
// the checkpoint completes. Output between checkpoints is invisible.
func (j *Job) SinkTo(topic string) *Job {
	j.sinkTopic = topic
	return j
}

// Sink installs a callback sink invoked as records arrive (at-least-once
// across failures: replays after recovery re-deliver).
func (j *Job) Sink(fn func(Record)) *Job {
	j.sinkFn = fn
	return j
}

// validate checks the topology.
func (j *Job) validate() error {
	if j.sourceTopic == "" {
		return fmt.Errorf("%w: no source", ErrBadTopology)
	}
	if len(j.stages) == 0 {
		return fmt.Errorf("%w: no stages", ErrBadTopology)
	}
	if j.sinkTopic == "" && j.sinkFn == nil {
		return fmt.Errorf("%w: no sink", ErrBadTopology)
	}
	return nil
}

// Start launches the job from the latest completed checkpoint (or from the
// beginning when none exists).
func (j *Job) Start() error {
	if err := j.validate(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.running {
		return ErrRunning
	}
	parts, err := j.broker.Partitions(j.sourceTopic)
	if err != nil {
		return err
	}
	ck := j.ckptmgr.latest()
	rt, err := newRuntime(j, parts, ck)
	if err != nil {
		return err
	}
	j.rt = rt
	j.running = true
	rt.start()
	return nil
}

// Stop halts execution gracefully (no state loss; a later Start resumes
// from the last checkpoint, so un-checkpointed work is re-done).
func (j *Job) Stop() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.running {
		return
	}
	j.rt.halt()
	j.rt = nil
	j.running = false
}

// Crash simulates a process failure: execution halts, all in-memory state
// and in-flight records are discarded. Only checkpoints survive.
func (j *Job) Crash() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.running {
		return
	}
	j.rt.halt()
	j.rt = nil
	j.running = false
	j.inflight.Store(0)
	j.m.Counter("dataflow.crashes").Inc()
}

// Recover restarts after a crash from the last completed checkpoint.
func (j *Job) Recover() error {
	return j.Start()
}

// TriggerCheckpoint starts checkpoint epoch n and blocks until it completes
// (all instances snapshotted, transactional sink committed). Returns the
// epoch id.
func (j *Job) TriggerCheckpoint() (uint64, error) {
	j.mu.Lock()
	rt := j.rt
	j.mu.Unlock()
	if rt == nil {
		return 0, ErrNotRunning
	}
	epoch := j.epochSeq.Add(1)
	if err := rt.runCheckpoint(epoch); err != nil {
		return 0, err
	}
	j.m.Counter("dataflow.checkpoints").Inc()
	return epoch, nil
}

// LatestCheckpoint returns the last completed checkpoint epoch (0 = none).
func (j *Job) LatestCheckpoint() uint64 {
	ck := j.ckptmgr.latest()
	if ck == nil {
		return 0
	}
	return ck.epoch
}

// Lag returns unprocessed source records plus in-flight records — zero
// means the job is quiescent.
func (j *Job) Lag() int64 {
	j.mu.Lock()
	rt := j.rt
	j.mu.Unlock()
	if rt == nil {
		return 0
	}
	return rt.sourceLag() + j.inflight.Load()
}

// WaitIdle blocks until the job is quiescent or the timeout elapses.
func (j *Job) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if j.Lag() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dataflow: not idle after %v (lag %d)", timeout, j.Lag())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// StateLen returns the total number of state keys across all instances of
// stage (for checkpoint sizing experiments).
func (j *Job) StateLen(stage int) int {
	j.mu.Lock()
	rt := j.rt
	j.mu.Unlock()
	if rt == nil || stage >= len(rt.stages) {
		return 0
	}
	n := 0
	for _, inst := range rt.stages[stage] {
		n += len(inst.state.m)
	}
	return n
}
