package dataflow

import (
	"fmt"
	"sync"
	"time"
)

// checkpoint is one completed coordinated snapshot: the source offsets and
// every instance's state as of the same barrier, i.e. a consistent cut of
// the whole dataflow (the Chandy-Lamport global state of §4.1).
type checkpoint struct {
	epoch   uint64
	offsets map[int]int64 // partition -> next offset to read
	// snapshots[stage][instance] -> state
	snapshots map[int]map[int]map[string][]byte
}

func (c *checkpoint) snapshotFor(stage, instance int) map[string][]byte {
	if s, ok := c.snapshots[stage]; ok {
		return s[instance]
	}
	return nil
}

// checkpointStore retains completed checkpoints. It survives Job.Crash —
// it models the external durable storage (S3 / DFS) checkpoints are
// written to (§3.3 Dataflows).
type checkpointStore struct {
	mu   sync.Mutex
	cks  []*checkpoint
	keep int
}

func newCheckpointStore() *checkpointStore { return &checkpointStore{keep: 3} }

func (s *checkpointStore) save(ck *checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cks = append(s.cks, ck)
	if len(s.cks) > s.keep {
		s.cks = s.cks[len(s.cks)-s.keep:]
	}
}

func (s *checkpointStore) latest() *checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cks) == 0 {
		return nil
	}
	return s.cks[len(s.cks)-1]
}

// runCheckpoint coordinates one checkpoint epoch: inject barriers at every
// source, collect acks from sources, all operator instances, and the sink,
// then commit the sink's staged output and persist the checkpoint.
//
// Ordering note: the sink transaction commits before the checkpoint record
// is persisted. A crash between the two replays the epoch and can duplicate
// *output* (state stays exactly-once); production engines close this window
// with resumable transaction handles, which the broker stand-in does not
// model. The window is nanoseconds wide here and irrelevant to the
// experiments, but it is the honest place to say so.
func (rt *runtime) runCheckpoint(epoch uint64) error {
	rt.ckptMu.Lock()
	defer rt.ckptMu.Unlock()

	for _, s := range rt.sources {
		select {
		case s.trigger <- epoch:
		case <-rt.stop:
			return ErrNotRunning
		}
	}
	expected := len(rt.sources) + len(rt.allInstances()) + 1
	ck := &checkpoint{
		epoch:     epoch,
		offsets:   make(map[int]int64),
		snapshots: make(map[int]map[int]map[string][]byte),
	}
	timeout := time.After(10 * time.Second)
	got := 0
	for got < expected {
		select {
		case a := <-rt.acks:
			if a.epoch != epoch {
				continue // stale ack from an aborted earlier epoch
			}
			got++
			switch a.kind {
			case "source":
				for p, off := range a.offsets {
					ck.offsets[p] = off
				}
			case "op":
				if ck.snapshots[a.stage] == nil {
					ck.snapshots[a.stage] = make(map[int]map[string][]byte)
				}
				ck.snapshots[a.stage][a.instance] = a.snapshot
			}
		case <-rt.stop:
			return ErrNotRunning
		case <-timeout:
			return fmt.Errorf("dataflow: checkpoint %d timed out (%d/%d acks)", epoch, got, expected)
		}
	}
	if err := rt.sink.commit(epoch); err != nil {
		return fmt.Errorf("dataflow: sink commit for epoch %d: %w", epoch, err)
	}
	rt.job.ckptmgr.save(ck)
	return nil
}
