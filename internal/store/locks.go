package store

import (
	"fmt"
	"sync"
	"time"
)

// lockMode is the requested access mode for a key lock.
type lockMode int

const (
	lockShared lockMode = iota
	lockExclusive
)

// lockManager implements strict two-phase locking with wound-wait deadlock
// avoidance: a requester older than a conflicting holder wounds (aborts) the
// holder; a younger requester waits. Wait-for edges therefore only point
// from younger to older transactions, which makes cycles — and deadlocks —
// impossible. Locks are held until commit or abort (strictness), and across
// the 2PC prepare window, which is exactly the blocking behaviour of
// traditional distributed commit the paper calls out in §4.2.
type lockManager struct {
	db *DB

	mu      sync.Mutex
	entries map[tableKey]*lockEntry
}

type lockEntry struct {
	key tableKey

	mu      sync.Mutex
	holders map[*Txn]lockMode
	change  chan struct{} // closed and replaced whenever holders shrink
}

func newLockManager(db *DB) *lockManager {
	return &lockManager{db: db, entries: make(map[tableKey]*lockEntry)}
}

func (lm *lockManager) entry(tk tableKey) *lockEntry {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	e, ok := lm.entries[tk]
	if !ok {
		e = &lockEntry{key: tk, holders: make(map[*Txn]lockMode), change: make(chan struct{})}
		lm.entries[tk] = e
	}
	return e
}

// acquire takes the lock on tk in the given mode for t, blocking until
// granted, the wait times out, or t is wounded. Re-acquiring a held lock is
// a no-op; acquiring exclusive over an own shared lock upgrades it.
func (lm *lockManager) acquire(t *Txn, tk tableKey, mode lockMode) error {
	e := lm.entry(tk)
	deadline := time.Now().Add(lm.db.cfg.LockWaitTimeout)
	for {
		e.mu.Lock()
		if cur, held := e.holders[t]; held && (cur == lockExclusive || cur == mode) {
			e.mu.Unlock()
			return nil
		}
		conflicts := e.conflictsLocked(t, mode)
		if len(conflicts) == 0 {
			_, alreadyHeld := e.holders[t]
			e.holders[t] = mode // grant (or upgrade shared -> exclusive)
			if !alreadyHeld {
				t.held = append(t.held, e)
			}
			e.mu.Unlock()
			return nil
		}
		// Wound-wait: wound every conflicting holder younger than t.
		for _, h := range conflicts {
			if t.id < h.id {
				h.wound()
			}
		}
		waitCh := e.change
		e.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: %s/%s", ErrLockTimeout, tk.table, tk.key)
		}
		timer := time.NewTimer(remain)
		select {
		case <-waitCh:
			timer.Stop()
		case <-t.woundedCh:
			timer.Stop()
			return ErrWounded
		case <-timer.C:
			return fmt.Errorf("%w: %s/%s", ErrLockTimeout, tk.table, tk.key)
		}
	}
}

// conflictsLocked returns holders whose mode conflicts with t requesting
// mode. Caller holds e.mu.
func (e *lockEntry) conflictsLocked(t *Txn, mode lockMode) []*Txn {
	var out []*Txn
	for h, m := range e.holders {
		if h == t {
			continue
		}
		if mode == lockExclusive || m == lockExclusive {
			out = append(out, h)
		}
	}
	return out
}

// releaseAll drops every lock held by t and wakes waiters.
func (lm *lockManager) releaseAll(t *Txn) {
	for _, e := range t.held {
		e.mu.Lock()
		if _, held := e.holders[t]; held {
			delete(e.holders, t)
			close(e.change)
			e.change = make(chan struct{})
		}
		e.mu.Unlock()
	}
	t.held = nil
}
