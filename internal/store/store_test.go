package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newBank(t *testing.T, accounts int, balance int64) *DB {
	t.Helper()
	db := NewDB(Config{Name: "bank"})
	db.CreateTable("accounts")
	tx := db.Begin(ReadCommitted)
	for i := 0; i < accounts; i++ {
		if err := tx.Put("accounts", fmt.Sprintf("acc-%d", i), Row{"balance": balance}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetCommit(t *testing.T) {
	db := NewDB(Config{})
	db.CreateTable("t")
	tx := db.Begin(ReadCommitted)
	tx.Put("t", "k", Row{"x": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin(ReadCommitted)
	defer tx2.Abort()
	row, ok, err := tx2.Get("t", "k")
	if err != nil || !ok {
		t.Fatalf("Get = %v,%v,%v", row, ok, err)
	}
	if row.Int("x") != 1 {
		t.Fatalf("x = %d, want 1", row.Int("x"))
	}
}

func TestUncommittedInvisible(t *testing.T) {
	db := NewDB(Config{})
	db.CreateTable("t")
	tx := db.Begin(Serializable)
	tx.Put("t", "k", Row{"x": int64(1)})
	other := db.Begin(ReadCommitted)
	if _, ok, _ := other.Get("t", "k"); ok {
		t.Fatal("uncommitted write visible to other transaction (dirty read)")
	}
	other.Abort()
	tx.Abort()
	// Aborted writes never appear.
	check := db.Begin(ReadCommitted)
	defer check.Abort()
	if _, ok, _ := check.Get("t", "k"); ok {
		t.Fatal("aborted write became visible")
	}
}

func TestReadOwnWrites(t *testing.T) {
	db := NewDB(Config{})
	db.CreateTable("t")
	tx := db.Begin(SnapshotIsolation)
	defer tx.Abort()
	tx.Put("t", "k", Row{"x": int64(7)})
	row, ok, _ := tx.Get("t", "k")
	if !ok || row.Int("x") != 7 {
		t.Fatalf("own write not visible: %v %v", row, ok)
	}
	tx.Delete("t", "k")
	if _, ok, _ := tx.Get("t", "k"); ok {
		t.Fatal("own delete not visible")
	}
}

func TestRowCopySemantics(t *testing.T) {
	db := NewDB(Config{})
	db.CreateTable("t")
	in := Row{"x": int64(1)}
	tx := db.Begin(ReadCommitted)
	tx.Put("t", "k", in)
	in["x"] = int64(99) // mutate after Put: must not leak in
	tx.Commit()
	tx2 := db.Begin(ReadCommitted)
	defer tx2.Abort()
	out, _, _ := tx2.Get("t", "k")
	if out.Int("x") != 1 {
		t.Fatalf("store aliased caller row: x = %d", out.Int("x"))
	}
	out["x"] = int64(42) // mutate returned row: must not leak back
	again, _, _ := tx2.Get("t", "k")
	if again.Int("x") != 1 {
		t.Fatal("returned row aliases stored row")
	}
}

func TestSnapshotIsolationRepeatableRead(t *testing.T) {
	db := newBank(t, 1, 100)
	reader := db.Begin(SnapshotIsolation)
	defer reader.Abort()
	r1, _, _ := reader.Get("accounts", "acc-0")

	w := db.Begin(ReadCommitted)
	w.Put("accounts", "acc-0", Row{"balance": int64(999)})
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	r2, _, _ := reader.Get("accounts", "acc-0")
	if r1.Int("balance") != r2.Int("balance") {
		t.Fatalf("non-repeatable read under SI: %d then %d", r1.Int("balance"), r2.Int("balance"))
	}
}

func TestReadCommittedSeesLatest(t *testing.T) {
	db := newBank(t, 1, 100)
	reader := db.Begin(ReadCommitted)
	defer reader.Abort()
	reader.Get("accounts", "acc-0")

	w := db.Begin(ReadCommitted)
	w.Put("accounts", "acc-0", Row{"balance": int64(999)})
	w.Commit()

	r2, _, _ := reader.Get("accounts", "acc-0")
	if r2.Int("balance") != 999 {
		t.Fatalf("read committed should see latest: got %d", r2.Int("balance"))
	}
}

func TestSIFirstCommitterWins(t *testing.T) {
	db := newBank(t, 1, 100)
	t1 := db.Begin(SnapshotIsolation)
	t2 := db.Begin(SnapshotIsolation)
	t1.Put("accounts", "acc-0", Row{"balance": int64(1)})
	t2.Put("accounts", "acc-0", Row{"balance": int64(2)})
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second committer = %v, want ErrWriteConflict", err)
	}
}

func TestSerializableDetectsReadSkew(t *testing.T) {
	// Classic write-skew-adjacent case OCC catches: T1 reads a key that T2
	// changes before T1 commits.
	db := newBank(t, 2, 100)
	t1 := db.Begin(Serializable)
	r, _, _ := t1.Get("accounts", "acc-0")
	t1.Put("accounts", "acc-1", Row{"balance": r.Int("balance") + 1})

	t2 := db.Begin(Serializable)
	t2.Put("accounts", "acc-0", Row{"balance": int64(0)})
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := t1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("t1 commit = %v, want ErrConflict (its read changed)", err)
	}
}

func TestSnapshotIsolationAllowsWriteSkew(t *testing.T) {
	// SI famously admits write skew; Serializable must reject it. This test
	// documents the difference.
	db := newBank(t, 2, 100)
	run := func(iso Isolation) (error, error) {
		// Reset balances.
		reset := db.Begin(ReadCommitted)
		reset.Put("accounts", "acc-0", Row{"balance": int64(100)})
		reset.Put("accounts", "acc-1", Row{"balance": int64(100)})
		reset.Commit()
		// Each txn reads both accounts, then zeroes the *other* one.
		t1 := db.Begin(iso)
		t2 := db.Begin(iso)
		t1.Get("accounts", "acc-0")
		t1.Get("accounts", "acc-1")
		t2.Get("accounts", "acc-0")
		t2.Get("accounts", "acc-1")
		t1.Put("accounts", "acc-0", Row{"balance": int64(0)})
		t2.Put("accounts", "acc-1", Row{"balance": int64(0)})
		return t1.Commit(), t2.Commit()
	}
	if e1, e2 := run(SnapshotIsolation); e1 != nil || e2 != nil {
		t.Fatalf("SI should admit write skew: %v, %v", e1, e2)
	}
	if e1, e2 := run(Serializable); e1 == nil && e2 == nil {
		t.Fatal("Serializable admitted write skew: both committed")
	}
}

func TestSerializableTransfersPreserveTotal(t *testing.T) {
	const accounts, workers, transfers = 8, 4, 200
	db := newBank(t, accounts, 1000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := fmt.Sprintf("acc-%d", (seed+i)%accounts)
				to := fmt.Sprintf("acc-%d", (seed+i+1)%accounts)
				db.Update(func(tx *Txn) error {
					f, _, err := tx.Get("accounts", from)
					if err != nil {
						return err
					}
					g, _, err := tx.Get("accounts", to)
					if err != nil {
						return err
					}
					if err := tx.Put("accounts", from, Row{"balance": f.Int("balance") - 10}); err != nil {
						return err
					}
					return tx.Put("accounts", to, Row{"balance": g.Int("balance") + 10})
				})
			}
		}(w)
	}
	wg.Wait()
	var total int64
	db.View(func(tx *Txn) error {
		return tx.Scan("accounts", "", "", func(k string, r Row) bool {
			total += r.Int("balance")
			return true
		})
	})
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d (money created or destroyed)", total, accounts*1000)
	}
}

func Test2PLTransfersPreserveTotal(t *testing.T) {
	const accounts, workers, transfers = 4, 4, 100
	db := newBank(t, accounts, 1000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := fmt.Sprintf("acc-%d", (seed+i)%accounts)
				to := fmt.Sprintf("acc-%d", (seed+i+3)%accounts)
				if from == to {
					continue
				}
				for {
					tx := db.Begin(Locking2PL)
					err := func() error {
						f, _, err := tx.Get("accounts", from)
						if err != nil {
							return err
						}
						g, _, err := tx.Get("accounts", to)
						if err != nil {
							return err
						}
						if err := tx.Put("accounts", from, Row{"balance": f.Int("balance") - 1}); err != nil {
							return err
						}
						return tx.Put("accounts", to, Row{"balance": g.Int("balance") + 1})
					}()
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					tx.Abort()
					if !IsRetryable(err) {
						t.Errorf("unexpected error: %v", err)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	db.View(func(tx *Txn) error {
		return tx.Scan("accounts", "", "", func(k string, r Row) bool {
			total += r.Int("balance")
			return true
		})
	})
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
}

func Test2PLWoundWaitNoDeadlock(t *testing.T) {
	// Two transactions locking a, b in opposite orders would deadlock under
	// plain 2PL; wound-wait must resolve it by aborting one.
	db := newBank(t, 2, 100)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := make(chan struct{})
	lock := func(i int, first, second string) {
		defer wg.Done()
		<-start
		tx := db.Begin(Locking2PL)
		defer tx.Abort()
		if _, _, err := tx.Get("accounts", first); err != nil {
			errs[i] = err
			return
		}
		tx.Put("accounts", first, Row{"balance": int64(i)})
		if err := tx.Put("accounts", second, Row{"balance": int64(i)}); err != nil {
			errs[i] = err
			return
		}
		errs[i] = tx.Commit()
	}
	wg.Add(2)
	go lock(0, "acc-0", "acc-1")
	go lock(1, "acc-1", "acc-0")
	close(start)
	wg.Wait()
	ok, failed := 0, 0
	for _, err := range errs {
		if err == nil {
			ok++
		} else if IsRetryable(err) {
			failed++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 {
		t.Fatal("both transactions failed; wound-wait should let one through")
	}
}

func TestPrepareCommitContract(t *testing.T) {
	db := newBank(t, 1, 100)
	tx := db.Begin(Locking2PL)
	tx.Get("accounts", "acc-0")
	tx.Put("accounts", "acc-0", Row{"balance": int64(50)})
	if err := tx.Prepare(); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// After prepare, commit must succeed unconditionally.
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit after Prepare: %v", err)
	}
	check := db.Begin(ReadCommitted)
	defer check.Abort()
	r, _, _ := check.Get("accounts", "acc-0")
	if r.Int("balance") != 50 {
		t.Fatalf("balance = %d, want 50", r.Int("balance"))
	}
}

func TestPrepareRequires2PL(t *testing.T) {
	db := newBank(t, 1, 100)
	tx := db.Begin(Serializable)
	defer tx.Abort()
	if err := tx.Prepare(); err == nil {
		t.Fatal("Prepare under OCC should fail")
	}
}

func TestPreparedHoldsLocks(t *testing.T) {
	db := newBank(t, 1, 100)
	db.cfg.LockWaitTimeout = 50 * 1e6 // 50ms
	tx := db.Begin(Locking2PL)
	tx.Put("accounts", "acc-0", Row{"balance": int64(1)})
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Another 2PL transaction must block on the prepared lock and time out
	// — the blocking cost of distributed commit (§4.2).
	other := db.Begin(Locking2PL)
	defer other.Abort()
	_, _, err := other.Get("accounts", "acc-0")
	if err == nil {
		t.Fatal("read of prepared-locked key should block/timeout")
	}
	if !errors.Is(err, ErrLockTimeout) && !errors.Is(err, ErrWounded) {
		t.Fatalf("err = %v, want lock timeout or wound", err)
	}
	tx.Commit()
}

func TestScanMergesOwnWrites(t *testing.T) {
	db := NewDB(Config{})
	db.CreateTable("t")
	seed := db.Begin(ReadCommitted)
	seed.Put("t", "b", Row{"v": int64(1)})
	seed.Commit()
	tx := db.Begin(SnapshotIsolation)
	defer tx.Abort()
	tx.Put("t", "a", Row{"v": int64(2)})
	tx.Delete("t", "b")
	var keys []string
	tx.Scan("t", "", "", func(k string, r Row) bool { keys = append(keys, k); return true })
	if len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("Scan = %v, want [a]", keys)
	}
}

func TestTxnDoneErrors(t *testing.T) {
	db := NewDB(Config{})
	db.CreateTable("t")
	tx := db.Begin(ReadCommitted)
	tx.Commit()
	if _, _, err := tx.Get("t", "k"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Get after commit = %v, want ErrTxnDone", err)
	}
	if err := tx.Put("t", "k", Row{}); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Put after commit = %v, want ErrTxnDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double Commit = %v, want ErrTxnDone", err)
	}
}

func TestNoTableError(t *testing.T) {
	db := NewDB(Config{})
	tx := db.Begin(ReadCommitted)
	defer tx.Abort()
	if _, _, err := tx.Get("ghost", "k"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Get on missing table = %v, want ErrNoTable", err)
	}
}

func TestUpdateRetriesConflicts(t *testing.T) {
	db := newBank(t, 1, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := db.Update(func(tx *Txn) error {
					r, _, err := tx.Get("accounts", "acc-0")
					if err != nil {
						return err
					}
					return tx.Put("accounts", "acc-0", Row{"balance": r.Int("balance") + 1})
				})
				if err != nil {
					t.Errorf("Update: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	check := db.Begin(ReadCommitted)
	defer check.Abort()
	r, _, _ := check.Get("accounts", "acc-0")
	if r.Int("balance") != 400 {
		t.Fatalf("balance = %d, want 400 (lost updates)", r.Int("balance"))
	}
}

func TestIsolationString(t *testing.T) {
	for iso, want := range map[Isolation]string{
		ReadCommitted: "read-committed", SnapshotIsolation: "snapshot",
		Serializable: "serializable", Locking2PL: "2pl",
	} {
		if got := iso.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", iso, got, want)
		}
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{"i": int64(3), "n": 4, "s": "x", "f": 2.5}
	if r.Int("i") != 3 || r.Int("n") != 4 || r.Int("missing") != 0 {
		t.Fatal("Int helper broken")
	}
	if r.Str("s") != "x" || r.Str("i") != "" {
		t.Fatal("Str helper broken")
	}
	if r.Float("f") != 2.5 || r.Float("i") != 3 {
		t.Fatal("Float helper broken")
	}
	if c := r.Clone(); c.Int("i") != 3 {
		t.Fatal("Clone broken")
	}
	var nilRow Row
	if nilRow.Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestDeleteVisibility(t *testing.T) {
	db := newBank(t, 1, 5)
	tx := db.Begin(Serializable)
	tx.Delete("accounts", "acc-0")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check := db.Begin(ReadCommitted)
	defer check.Abort()
	if _, ok, _ := check.Get("accounts", "acc-0"); ok {
		t.Fatal("deleted row visible")
	}
}
