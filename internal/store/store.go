// Package store implements the "external database system" of the paper's
// state-management taxonomy (§3.3): the DBMS that microservices, actors and
// workflows delegate state to. It is a multi-version store with selectable
// isolation levels:
//
//   - ReadCommitted: each read sees the latest committed version.
//   - SnapshotIsolation: reads at a start-of-transaction snapshot;
//     first-committer-wins on write-write conflicts.
//   - Serializable: snapshot reads plus commit-time read-set validation
//     (OCC in the style of Silo), which admits only serializable schedules.
//   - Locking2PL: strict two-phase locking with wound-wait deadlock
//     avoidance. This mode supports Prepare (locks held across the prepare
//     window), which is what the XA/2PC participant (internal/xa) and the
//     Orleans-style actor transaction coordinator build on — and is the
//     source of the "blocking protocol" costs §4.2 discusses.
//
// The database also models shared infrastructure contention: a configurable
// admission limit and per-operation service time let the benchmarks
// reproduce the shared-database "noisy neighbor" effect versus
// database-per-service isolation (§3.3, experiment E4).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Common database errors.
var (
	ErrConflict      = errors.New("store: serialization conflict")
	ErrWriteConflict = errors.New("store: write-write conflict")
	ErrTxnDone       = errors.New("store: transaction already finished")
	ErrNoTable       = errors.New("store: no such table")
	ErrWounded       = errors.New("store: transaction wounded by deadlock avoidance")
	ErrLockTimeout   = errors.New("store: lock wait timeout")
	ErrNotPrepared   = errors.New("store: transaction not prepared")
)

// IsRetryable reports whether err is a transient concurrency-control error
// that the application should retry with a fresh transaction.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrConflict) ||
		errors.Is(err, ErrWriteConflict) ||
		errors.Is(err, ErrWounded) ||
		errors.Is(err, ErrLockTimeout)
}

// Isolation selects the concurrency-control regime of a transaction.
type Isolation int

// Supported isolation levels.
const (
	ReadCommitted Isolation = iota
	SnapshotIsolation
	Serializable
	Locking2PL
)

func (i Isolation) String() string {
	switch i {
	case ReadCommitted:
		return "read-committed"
	case SnapshotIsolation:
		return "snapshot"
	case Serializable:
		return "serializable"
	case Locking2PL:
		return "2pl"
	default:
		return fmt.Sprintf("isolation(%d)", int(i))
	}
}

// Row is one record. The store copies rows on write and returns copies on
// read, so callers may freely mutate what they pass in and get back.
type Row map[string]any

// Clone returns a shallow copy of the row.
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Int reads column col as an int64 (coercing int), returning 0 when absent.
func (r Row) Int(col string) int64 {
	switch v := r[col].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	default:
		return 0
	}
}

// Str reads column col as a string, returning "" when absent.
func (r Row) Str(col string) string {
	s, _ := r[col].(string)
	return s
}

// Float reads column col as a float64, returning 0 when absent.
func (r Row) Float(col string) float64 {
	switch v := r[col].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	default:
		return 0
	}
}

// version is one committed version of a row.
type version struct {
	ts      uint64 // commit timestamp
	row     Row    // nil for deletes
	deleted bool
}

// record is a key's committed version chain, newest first.
type record struct {
	versions []version
}

// latest returns the newest version with ts <= at.
func (rec *record) latest(at uint64) (version, bool) {
	for _, v := range rec.versions {
		if v.ts <= at {
			return v, true
		}
	}
	return version{}, false
}

// table holds records and maintains a sorted key slice for range scans.
type table struct {
	mu     sync.RWMutex
	recs   map[string]*record
	keys   []string
	sorted bool
}

func newTable() *table {
	return &table{recs: make(map[string]*record)}
}

func (t *table) get(key string) (*record, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rec, ok := t.recs[key]
	return rec, ok
}

// install adds a committed version for key at ts. Caller serializes commits.
func (t *table) install(key string, v version) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.recs[key]
	if !ok {
		rec = &record{}
		t.recs[key] = rec
		t.keys = append(t.keys, key)
		t.sorted = false
	}
	rec.versions = append([]version{v}, rec.versions...)
}

func (t *table) sortedKeys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.sorted {
		sort.Strings(t.keys)
		t.sorted = true
	}
	out := make([]string, len(t.keys))
	copy(out, t.keys)
	return out
}

// Config tunes the database's simulated resource envelope.
type Config struct {
	// Name labels the instance in metrics and errors.
	Name string
	// MaxConcurrent caps in-flight operations; 0 means unlimited. A low cap
	// with ServiceTime > 0 models a small connection pool / buffer-pool
	// bound instance whose tenants contend (the shared-database mode).
	MaxConcurrent int
	// ServiceTime is the per-operation busy time actually spent while a
	// slot is held, making the admission cap bite under load.
	ServiceTime time.Duration
	// LockWaitTimeout bounds 2PL lock waits. Zero means 1s.
	LockWaitTimeout time.Duration
}

// DB is an in-memory multi-version database instance.
type DB struct {
	cfg Config

	clock    atomic.Uint64 // last committed timestamp
	txnSeq   atomic.Uint64 // transaction id source (age for wound-wait)
	commitMu sync.Mutex    // serializes validation + install

	mu     sync.RWMutex
	tables map[string]*table

	locks *lockManager
	sem   chan struct{}

	// Stats observable by benchmarks.
	Commits   atomic.Int64
	Aborts    atomic.Int64
	Wounds    atomic.Int64
	Conflicts atomic.Int64
}

// NewDB creates an empty database.
func NewDB(cfg Config) *DB {
	if cfg.LockWaitTimeout <= 0 {
		cfg.LockWaitTimeout = time.Second
	}
	db := &DB{
		cfg:    cfg,
		tables: make(map[string]*table),
	}
	db.locks = newLockManager(db)
	if cfg.MaxConcurrent > 0 {
		db.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return db
}

// Name returns the configured instance name.
func (db *DB) Name() string { return db.cfg.Name }

// CreateTable ensures a table exists. Idempotent.
func (db *DB) CreateTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		db.tables[name] = newTable()
	}
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// admit models occupying one unit of the shared database resource for the
// configured service time. The wait is real, so co-located tenants actually
// contend — this is what experiment E4 measures.
func (db *DB) admit() func() {
	if db.sem == nil {
		if db.cfg.ServiceTime > 0 {
			spin(db.cfg.ServiceTime)
		}
		return func() {}
	}
	db.sem <- struct{}{}
	if db.cfg.ServiceTime > 0 {
		spin(db.cfg.ServiceTime)
	}
	return func() { <-db.sem }
}

// spin busy-waits for roughly d, modeling CPU-bound database work (a sleep
// would yield the slot's pressure to the scheduler and mask contention).
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Now returns the latest commit timestamp.
func (db *DB) Now() uint64 { return db.clock.Load() }

// View runs fn in a read-only snapshot transaction and always releases it.
func (db *DB) View(fn func(tx *Txn) error) error {
	tx := db.Begin(SnapshotIsolation)
	defer tx.Abort()
	return fn(tx)
}

// Update runs fn in a Serializable transaction, retrying on transient
// conflicts up to 10 times. fn may be invoked multiple times.
func (db *DB) Update(fn func(tx *Txn) error) error {
	const maxRetries = 10
	var lastErr error
	for i := 0; i < maxRetries; i++ {
		tx := db.Begin(Serializable)
		if err := fn(tx); err != nil {
			tx.Abort()
			if IsRetryable(err) {
				lastErr = err
				continue
			}
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("store: retries exhausted: %w", lastErr)
}
