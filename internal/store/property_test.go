package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// Model-based property: a single-threaded sequence of serializable
// transactions agrees with a plain map executed in commit order.
func TestSerialEquivalenceProperty(t *testing.T) {
	type op struct {
		Key    uint8
		Val    uint8
		Del    bool
		Commit bool
	}
	f := func(txns [][]op) bool {
		db := NewDB(Config{})
		db.CreateTable("t")
		model := map[string]int64{}
		for _, ops := range txns {
			tx := db.Begin(Serializable)
			staged := map[string]*int64{} // nil pointer = delete
			abort := false
			for _, o := range ops {
				k := fmt.Sprintf("k%d", o.Key%8)
				if o.Del {
					if tx.Delete("t", k) != nil {
						abort = true
						break
					}
					staged[k] = nil
				} else {
					v := int64(o.Val)
					if tx.Put("t", k, Row{"v": v}) != nil {
						abort = true
						break
					}
					staged[k] = &v
				}
				if !o.Commit {
					continue
				}
			}
			commit := len(ops) > 0 && ops[len(ops)-1].Commit && !abort
			if commit {
				if err := tx.Commit(); err != nil {
					return false // no concurrency: commits cannot conflict
				}
				for k, v := range staged {
					if v == nil {
						delete(model, k)
					} else {
						model[k] = *v
					}
				}
			} else {
				tx.Abort()
			}
		}
		// Compare final states.
		check := db.Begin(ReadCommitted)
		defer check.Abort()
		n := 0
		ok := true
		check.Scan("t", "", "", func(k string, r Row) bool {
			n++
			want, present := model[k]
			if !present || want != r.Int("v") {
				ok = false
				return false
			}
			return true
		})
		return ok && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: under concurrent random read-modify-write transactions at
// Serializable, the final sum of all counters equals the number of
// successful commits — no lost updates, ever.
func TestNoLostUpdatesProperty(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := NewDB(Config{})
			db.CreateTable("t")
			var commits int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 100; i++ {
						key := fmt.Sprintf("c%d", rng.Intn(3))
						err := db.Update(func(tx *Txn) error {
							r, _, err := tx.Get("t", key)
							if err != nil {
								return err
							}
							return tx.Put("t", key, Row{"v": r.Int("v") + 1})
						})
						if err == nil {
							mu.Lock()
							commits++
							mu.Unlock()
						}
					}
				}(int64(w))
			}
			wg.Wait()
			var total int64
			db.View(func(tx *Txn) error {
				return tx.Scan("t", "", "", func(k string, r Row) bool {
					total += r.Int("v")
					return true
				})
			})
			mu.Lock()
			defer mu.Unlock()
			if total != commits {
				t.Fatalf("sum = %d, commits = %d: lost or phantom updates", total, commits)
			}
		})
	}
}

// Isolation-level anomaly matrix: which levels admit which anomalies.
// This is the executable version of the textbook table.
func TestAnomalyMatrix(t *testing.T) {
	// Non-repeatable read: T1 reads, T2 commits a change, T1 re-reads.
	nonRepeatable := func(iso Isolation) bool {
		db := NewDB(Config{})
		db.CreateTable("t")
		seed := db.Begin(ReadCommitted)
		seed.Put("t", "k", Row{"v": int64(1)})
		seed.Commit()
		t1 := db.Begin(iso)
		defer t1.Abort()
		r1, _, _ := t1.Get("t", "k")
		t2 := db.Begin(ReadCommitted)
		t2.Put("t", "k", Row{"v": int64(2)})
		t2.Commit()
		r2, _, _ := t1.Get("t", "k")
		return r1.Int("v") != r2.Int("v")
	}
	if !nonRepeatable(ReadCommitted) {
		t.Error("read committed should admit non-repeatable reads")
	}
	if nonRepeatable(SnapshotIsolation) {
		t.Error("snapshot isolation must prevent non-repeatable reads")
	}
	if nonRepeatable(Serializable) {
		t.Error("serializable must prevent non-repeatable reads")
	}

	// Write skew: both read both keys, each zeroes the other.
	writeSkew := func(iso Isolation) bool {
		db := NewDB(Config{})
		db.CreateTable("t")
		seed := db.Begin(ReadCommitted)
		seed.Put("t", "a", Row{"v": int64(1)})
		seed.Put("t", "b", Row{"v": int64(1)})
		seed.Commit()
		t1 := db.Begin(iso)
		t2 := db.Begin(iso)
		t1.Get("t", "a")
		t1.Get("t", "b")
		t2.Get("t", "a")
		t2.Get("t", "b")
		t1.Put("t", "a", Row{"v": int64(0)})
		t2.Put("t", "b", Row{"v": int64(0)})
		e1 := t1.Commit()
		e2 := t2.Commit()
		return e1 == nil && e2 == nil // both committed = skew admitted
	}
	if !writeSkew(SnapshotIsolation) {
		t.Error("snapshot isolation should admit write skew")
	}
	if writeSkew(Serializable) {
		t.Error("serializable must reject write skew")
	}
}
