package store

import (
	"fmt"
	"sort"
	"sync/atomic"
)

type txnState int

const (
	txnActive txnState = iota
	txnPrepared
	txnCommitted
	txnAborted
)

type tableKey struct {
	table, key string
}

type writeOp struct {
	row Row
	del bool
}

// Txn is one database transaction. A Txn is not safe for concurrent use by
// multiple goroutines (as with database/sql's Tx).
type Txn struct {
	db     *DB
	iso    Isolation
	id     uint64 // monotone; lower id = older, used by wound-wait
	snapTS uint64
	state  txnState

	reads  map[tableKey]uint64 // observed commit ts (0 = observed absent)
	writes map[tableKey]writeOp
	order  []tableKey // write order for deterministic install

	wounded   atomic.Bool
	woundedCh chan struct{}
	held      []*lockEntry
}

// Begin starts a transaction at the given isolation level.
func (db *DB) Begin(iso Isolation) *Txn {
	return &Txn{
		db:        db,
		iso:       iso,
		id:        db.txnSeq.Add(1),
		snapTS:    db.clock.Load(),
		reads:     make(map[tableKey]uint64),
		writes:    make(map[tableKey]writeOp),
		woundedCh: make(chan struct{}),
	}
}

// ID returns the transaction's unique id (its age for wound-wait purposes).
func (t *Txn) ID() uint64 { return t.id }

// Isolation returns the transaction's isolation level.
func (t *Txn) Isolation() Isolation { return t.iso }

// wound marks the transaction as a deadlock-avoidance victim. Idempotent.
func (t *Txn) wound() {
	if t.wounded.CompareAndSwap(false, true) {
		close(t.woundedCh)
		t.db.Wounds.Add(1)
	}
}

func (t *Txn) checkUsable() error {
	if t.state != txnActive {
		return ErrTxnDone
	}
	if t.wounded.Load() {
		return ErrWounded
	}
	return nil
}

// Get returns the row at key in table, or ok=false when absent.
func (t *Txn) Get(tableName, key string) (Row, bool, error) {
	if err := t.checkUsable(); err != nil {
		return nil, false, err
	}
	done := t.db.admit()
	defer done()
	tk := tableKey{tableName, key}
	if w, ok := t.writes[tk]; ok {
		if w.del {
			return nil, false, nil
		}
		return w.row.Clone(), true, nil
	}
	tbl, err := t.db.table(tableName)
	if err != nil {
		return nil, false, err
	}
	if t.iso == Locking2PL {
		if err := t.db.locks.acquire(t, tk, lockShared); err != nil {
			return nil, false, err
		}
	}
	at := t.readTS()
	rec, ok := tbl.get(key)
	if !ok {
		t.noteRead(tk, 0)
		return nil, false, nil
	}
	tbl.mu.RLock()
	v, found := rec.latest(at)
	tbl.mu.RUnlock()
	if !found || v.deleted {
		t.noteRead(tk, 0)
		return nil, false, nil
	}
	t.noteRead(tk, v.ts)
	return v.row.Clone(), true, nil
}

// readTS returns the timestamp this transaction reads at.
func (t *Txn) readTS() uint64 {
	switch t.iso {
	case ReadCommitted, Locking2PL:
		return t.db.clock.Load()
	default:
		return t.snapTS
	}
}

func (t *Txn) noteRead(tk tableKey, ts uint64) {
	if t.iso == Serializable {
		if _, seen := t.reads[tk]; !seen {
			t.reads[tk] = ts
		}
	}
}

// Put buffers a write of row under key.
func (t *Txn) Put(tableName, key string, row Row) error {
	if err := t.checkUsable(); err != nil {
		return err
	}
	done := t.db.admit()
	defer done()
	if _, err := t.db.table(tableName); err != nil {
		return err
	}
	tk := tableKey{tableName, key}
	if t.iso == Locking2PL {
		if err := t.db.locks.acquire(t, tk, lockExclusive); err != nil {
			return err
		}
	}
	if _, exists := t.writes[tk]; !exists {
		t.order = append(t.order, tk)
	}
	t.writes[tk] = writeOp{row: row.Clone()}
	return nil
}

// Delete buffers a deletion of key.
func (t *Txn) Delete(tableName, key string) error {
	if err := t.checkUsable(); err != nil {
		return err
	}
	done := t.db.admit()
	defer done()
	if _, err := t.db.table(tableName); err != nil {
		return err
	}
	tk := tableKey{tableName, key}
	if t.iso == Locking2PL {
		if err := t.db.locks.acquire(t, tk, lockExclusive); err != nil {
			return err
		}
	}
	if _, exists := t.writes[tk]; !exists {
		t.order = append(t.order, tk)
	}
	t.writes[tk] = writeOp{del: true}
	return nil
}

// Scan iterates rows with keys in [start, end) in ascending key order,
// merged with the transaction's own uncommitted writes. An empty end means
// "to the last key". fn returning false stops the scan.
//
// Note: under Serializable, Scan validates the individual keys it returned
// but not the absence of others — phantoms are not prevented (the store is
// honest about this classic OCC limitation; the TPC-C workload avoids
// depending on it).
func (t *Txn) Scan(tableName, start, end string, fn func(key string, row Row) bool) error {
	if err := t.checkUsable(); err != nil {
		return err
	}
	done := t.db.admit()
	defer done()
	tbl, err := t.db.table(tableName)
	if err != nil {
		return err
	}
	at := t.readTS()
	keys := tbl.sortedKeys()
	// Merge in own-write keys not yet committed.
	var ownKeys []string
	for tk := range t.writes {
		if tk.table == tableName {
			ownKeys = append(ownKeys, tk.key)
		}
	}
	if len(ownKeys) > 0 {
		set := make(map[string]struct{}, len(keys))
		for _, k := range keys {
			set[k] = struct{}{}
		}
		for _, k := range ownKeys {
			if _, ok := set[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
	}
	for _, k := range keys {
		if k < start || (end != "" && k >= end) {
			continue
		}
		tk := tableKey{tableName, k}
		if w, ok := t.writes[tk]; ok {
			if w.del {
				continue
			}
			if !fn(k, w.row.Clone()) {
				return nil
			}
			continue
		}
		if t.iso == Locking2PL {
			if err := t.db.locks.acquire(t, tk, lockShared); err != nil {
				return err
			}
		}
		rec, ok := tbl.get(k)
		if !ok {
			continue
		}
		tbl.mu.RLock()
		v, found := rec.latest(at)
		tbl.mu.RUnlock()
		if !found || v.deleted {
			continue
		}
		t.noteRead(tk, v.ts)
		if !fn(k, v.row.Clone()) {
			return nil
		}
	}
	return nil
}

// Prepare is phase one of two-phase commit. It is only meaningful under
// Locking2PL: it validates the transaction can commit and pins its locks
// until Commit or Abort. After a successful Prepare, Commit cannot fail —
// the durability contract a 2PC participant must offer its coordinator.
func (t *Txn) Prepare() error {
	if err := t.checkUsable(); err != nil {
		return err
	}
	if t.iso != Locking2PL {
		return fmt.Errorf("store: Prepare requires Locking2PL, have %v", t.iso)
	}
	t.state = txnPrepared
	return nil
}

// Commit makes the transaction's writes visible atomically. Under
// SnapshotIsolation and Serializable it may return ErrWriteConflict or
// ErrConflict, in which case nothing was applied and the caller should
// retry.
func (t *Txn) Commit() error {
	switch t.state {
	case txnActive:
		if t.wounded.Load() {
			t.Abort()
			return ErrWounded
		}
	case txnPrepared:
		// Prepared transactions commit unconditionally.
	default:
		return ErrTxnDone
	}

	db := t.db
	db.commitMu.Lock()
	// Validation.
	if t.state == txnActive {
		switch t.iso {
		case SnapshotIsolation, Serializable:
			for _, tk := range t.order {
				if ts := db.latestTS(tk); ts > t.snapTS {
					db.commitMu.Unlock()
					db.Conflicts.Add(1)
					t.Abort()
					return fmt.Errorf("%w: %s/%s", ErrWriteConflict, tk.table, tk.key)
				}
			}
		}
		if t.iso == Serializable {
			for tk, seen := range t.reads {
				if _, alsoWritten := t.writes[tk]; alsoWritten {
					continue // covered by the write check above
				}
				if ts := db.latestTS(tk); ts != seen {
					db.commitMu.Unlock()
					db.Conflicts.Add(1)
					t.Abort()
					return fmt.Errorf("%w: read %s/%s changed", ErrConflict, tk.table, tk.key)
				}
			}
		}
	}
	// Install.
	ts := db.clock.Add(1)
	for _, tk := range t.order {
		w := t.writes[tk]
		tbl, err := db.table(tk.table)
		if err != nil {
			db.commitMu.Unlock()
			t.Abort()
			return err
		}
		tbl.install(tk.key, version{ts: ts, row: w.row, deleted: w.del})
	}
	db.commitMu.Unlock()

	t.state = txnCommitted
	db.locks.releaseAll(t)
	db.Commits.Add(1)
	return nil
}

// latestTS returns the commit timestamp of the newest version of tk, or 0
// when the key has never been written.
func (db *DB) latestTS(tk tableKey) uint64 {
	tbl, err := db.table(tk.table)
	if err != nil {
		return 0
	}
	rec, ok := tbl.get(tk.key)
	if !ok {
		return 0
	}
	tbl.mu.RLock()
	defer tbl.mu.RUnlock()
	if len(rec.versions) == 0 {
		return 0
	}
	return rec.versions[0].ts
}

// Abort discards the transaction. Safe to call on finished transactions.
func (t *Txn) Abort() {
	if t.state == txnCommitted || t.state == txnAborted {
		return
	}
	t.state = txnAborted
	t.db.locks.releaseAll(t)
	t.db.Aborts.Add(1)
}
