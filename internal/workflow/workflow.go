// Package workflow implements durable execution — the Temporal / Cadence /
// Azure Durable Functions model the paper surveys as "workflows" and
// "durable functions" (§1, §4.2, refs [7, 14, 15]). A workflow is ordinary
// imperative code whose side effects all flow through Activity calls. The
// engine persists an event history: every completed activity's result is
// recorded before the workflow proceeds. When a worker crashes, re-running
// the workflow *replays* the history — recorded activities return their
// recorded results without re-executing — until the code reaches the first
// unrecorded step, where live execution resumes.
//
// The guarantees and caveats match the real systems:
//
//   - workflow code must be deterministic (replay diverging from the
//     history is detected and reported as ErrNonDeterministic);
//   - activities are at-least-once (a crash between execution and the
//     history append re-executes them), so they should be idempotent;
//   - the workflow as a whole is exactly-once in its decisions: once an
//     activity's result is recorded, every future replay sees that result.
package workflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"tca/internal/metrics"
	"tca/internal/store"
)

// Common engine errors.
var (
	ErrNonDeterministic = errors.New("workflow: replay diverged from history")
	ErrUnknownWorkflow  = errors.New("workflow: unknown workflow type")
	ErrCrashInjected    = errors.New("workflow: injected crash")
)

// Handler is the workflow body.
type Handler func(ctx *Ctx) error

// historyEvent is one recorded step.
type historyEvent struct {
	Kind   string `json:"kind"` // "activity" | "side_effect" | "timer"
	Name   string `json:"name"`
	Result []byte `json:"result,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Ctx is the workflow execution context.
type Ctx struct {
	// ID is the workflow instance id.
	ID string

	eng     *Engine
	history []historyEvent
	cursor  int

	// CrashAfterActivity injects a worker crash immediately after the
	// n-th newly executed activity records its result (0 = disabled).
	// Used by tests and the recovery benchmarks.
	CrashAfterActivity int
	executedNow        int
}

// Replaying reports whether the next step is served from history.
func (c *Ctx) Replaying() bool { return c.cursor < len(c.history) }

// Activity executes fn exactly once per history position: on replay the
// recorded result is returned without running fn. Activity errors are
// recorded too — a failed activity deterministically fails on replay.
func (c *Ctx) Activity(name string, fn func() ([]byte, error)) ([]byte, error) {
	if c.cursor < len(c.history) {
		ev := c.history[c.cursor]
		if ev.Kind != "activity" || ev.Name != name {
			return nil, fmt.Errorf("%w: history has %s/%s, code asked for activity/%s",
				ErrNonDeterministic, ev.Kind, ev.Name, name)
		}
		c.cursor++
		c.eng.m.Counter("workflow.replayed_activities").Inc()
		if ev.Err != "" {
			return nil, errors.New(ev.Err)
		}
		return ev.Result, nil
	}
	// Live execution: run, then record.
	result, err := fn()
	ev := historyEvent{Kind: "activity", Name: name, Result: result}
	if err != nil {
		ev.Err = err.Error()
	}
	if werr := c.eng.appendHistory(c.ID, c.cursor, ev); werr != nil {
		return nil, werr
	}
	c.cursor++
	c.executedNow++
	c.eng.m.Counter("workflow.executed_activities").Inc()
	if c.CrashAfterActivity > 0 && c.executedNow >= c.CrashAfterActivity {
		return nil, ErrCrashInjected
	}
	if err != nil {
		return nil, err
	}
	return result, nil
}

// SideEffect records a nondeterministic value (random id, clock reading) so
// replays observe the original value instead of recomputing.
func (c *Ctx) SideEffect(name string, fn func() []byte) ([]byte, error) {
	if c.cursor < len(c.history) {
		ev := c.history[c.cursor]
		if ev.Kind != "side_effect" || ev.Name != name {
			return nil, fmt.Errorf("%w: history has %s/%s, code asked for side_effect/%s",
				ErrNonDeterministic, ev.Kind, ev.Name, name)
		}
		c.cursor++
		return ev.Result, nil
	}
	v := fn()
	if err := c.eng.appendHistory(c.ID, c.cursor, historyEvent{Kind: "side_effect", Name: name, Result: v}); err != nil {
		return nil, err
	}
	c.cursor++
	return v, nil
}

// Sleep is a durable timer: recorded on first execution (waiting the real
// duration), skipped instantly on replay — a replay must not re-wait.
func (c *Ctx) Sleep(d time.Duration) error {
	name := d.String()
	if c.cursor < len(c.history) {
		ev := c.history[c.cursor]
		if ev.Kind != "timer" || ev.Name != name {
			return fmt.Errorf("%w: history has %s/%s, code asked for timer/%s",
				ErrNonDeterministic, ev.Kind, ev.Name, name)
		}
		c.cursor++
		return nil
	}
	time.Sleep(d)
	if err := c.eng.appendHistory(c.ID, c.cursor, historyEvent{Kind: "timer", Name: name}); err != nil {
		return err
	}
	c.cursor++
	return nil
}

// Engine hosts workflow definitions and their histories.
type Engine struct {
	db *store.DB
	m  *metrics.Registry

	mu   sync.RWMutex
	defs map[string]Handler
}

// NewEngine creates an engine persisting histories to db (nil = dedicated).
func NewEngine(db *store.DB) *Engine {
	if db == nil {
		db = store.NewDB(store.Config{Name: "workflow-history"})
	}
	db.CreateTable("wf_history")
	db.CreateTable("wf_status")
	return &Engine{db: db, m: metrics.NewRegistry(), defs: make(map[string]Handler)}
}

// Metrics returns the engine's instruments.
func (e *Engine) Metrics() *metrics.Registry { return e.m }

// Register binds a workflow type name to its handler.
func (e *Engine) Register(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defs[name] = h
}

func historyKey(id string, seq int) string { return fmt.Sprintf("%s/%08d", id, seq) }

func (e *Engine) appendHistory(id string, seq int, ev historyEvent) error {
	raw, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	tx := e.db.Begin(store.ReadCommitted)
	if err := tx.Put("wf_history", historyKey(id, seq), store.Row{"ev": string(raw)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (e *Engine) loadHistory(id string) ([]historyEvent, error) {
	var out []historyEvent
	tx := e.db.Begin(store.SnapshotIsolation)
	defer tx.Abort()
	err := tx.Scan("wf_history", id+"/", id+"/\xff", func(k string, row store.Row) bool {
		var ev historyEvent
		if json.Unmarshal([]byte(row.Str("ev")), &ev) == nil {
			out = append(out, ev)
		}
		return true
	})
	return out, err
}

// HistoryLen returns the recorded event count of a workflow instance.
func (e *Engine) HistoryLen(id string) (int, error) {
	h, err := e.loadHistory(id)
	return len(h), err
}

func (e *Engine) setStatus(id, status string) error {
	tx := e.db.Begin(store.ReadCommitted)
	if err := tx.Put("wf_status", id, store.Row{"status": status}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Status returns "running", "completed", or "failed" ("" when unknown).
func (e *Engine) Status(id string) string {
	tx := e.db.Begin(store.ReadCommitted)
	defer tx.Abort()
	row, ok, _ := tx.Get("wf_status", id)
	if !ok {
		return ""
	}
	return row.Str("status")
}

// Run executes (or resumes) workflow instance id of the named type. On a
// fresh instance this is a normal execution; on an instance with history
// it replays to the last recorded step and continues live. Completed
// instances return their recorded outcome without executing anything.
func (e *Engine) Run(name, id string) error {
	return e.RunWithCrash(name, id, 0)
}

// RunWithCrash is Run with a crash injected after n newly executed
// activities (testing / recovery benchmarks).
func (e *Engine) RunWithCrash(name, id string, crashAfter int) error {
	e.mu.RLock()
	h, ok := e.defs[name]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWorkflow, name)
	}
	switch e.Status(id) {
	case "completed":
		return nil
	case "failed":
		return fmt.Errorf("workflow %s already failed", id)
	}
	history, err := e.loadHistory(id)
	if err != nil {
		return err
	}
	if err := e.setStatus(id, "running"); err != nil {
		return err
	}
	ctx := &Ctx{ID: id, eng: e, history: history, CrashAfterActivity: crashAfter}
	err = h(ctx)
	switch {
	case errors.Is(err, ErrCrashInjected):
		// Worker death: status stays running; a future Run resumes.
		e.m.Counter("workflow.crashes").Inc()
		return err
	case err != nil:
		e.setStatus(id, "failed")
		e.m.Counter("workflow.failed").Inc()
		return err
	default:
		e.setStatus(id, "completed")
		e.m.Counter("workflow.completed").Inc()
		return nil
	}
}
