package workflow

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkflowCompletes(t *testing.T) {
	e := NewEngine(nil)
	var executions atomic.Int64
	e.Register("order", func(ctx *Ctx) error {
		for _, step := range []string{"reserve", "charge", "ship"} {
			if _, err := ctx.Activity(step, func() ([]byte, error) {
				executions.Add(1)
				return []byte(step + "-ok"), nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := e.Run("order", "w1"); err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 3 {
		t.Fatalf("activities executed %d times, want 3", executions.Load())
	}
	if e.Status("w1") != "completed" {
		t.Fatalf("status = %q", e.Status("w1"))
	}
}

func TestCrashAndResumeReplaysWithoutReExecution(t *testing.T) {
	e := NewEngine(nil)
	var executions atomic.Int64
	e.Register("order", func(ctx *Ctx) error {
		for _, step := range []string{"a", "b", "c", "d"} {
			if _, err := ctx.Activity(step, func() ([]byte, error) {
				executions.Add(1)
				return []byte(step), nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	// Crash after 2 newly executed activities.
	err := e.RunWithCrash("order", "w2", 2)
	if !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("err = %v, want crash", err)
	}
	if executions.Load() != 2 {
		t.Fatalf("executed %d before crash, want 2", executions.Load())
	}
	if e.Status("w2") != "running" {
		t.Fatalf("status after crash = %q, want running", e.Status("w2"))
	}
	// Resume: a,b replay from history; c,d execute.
	if err := e.Run("order", "w2"); err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 4 {
		t.Fatalf("total executions = %d, want 4 (2 + 2, no re-execution)", executions.Load())
	}
	if got := e.Metrics().Counter("workflow.replayed_activities").Value(); got != 2 {
		t.Fatalf("replayed = %d, want 2", got)
	}
}

func TestCompletedWorkflowIdempotent(t *testing.T) {
	e := NewEngine(nil)
	var executions atomic.Int64
	e.Register("wf", func(ctx *Ctx) error {
		_, err := ctx.Activity("only", func() ([]byte, error) {
			executions.Add(1)
			return nil, nil
		})
		return err
	})
	e.Run("wf", "w3")
	if err := e.Run("wf", "w3"); err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 {
		t.Fatalf("executions = %d, want 1 (completed workflows are no-ops)", executions.Load())
	}
}

func TestActivityErrorRecordedAndReplayed(t *testing.T) {
	e := NewEngine(nil)
	var executions atomic.Int64
	e.Register("wf", func(ctx *Ctx) error {
		_, err := ctx.Activity("flaky", func() ([]byte, error) {
			executions.Add(1)
			return nil, errors.New("permanent failure")
		})
		if err != nil {
			// The workflow handles the failure and completes gracefully.
			_, err2 := ctx.Activity("fallback", func() ([]byte, error) {
				return []byte("plan-b"), nil
			})
			return err2
		}
		return nil
	})
	if err := e.Run("wf", "w4"); err != nil {
		t.Fatal(err)
	}
	if e.Status("w4") != "completed" {
		t.Fatalf("status = %q", e.Status("w4"))
	}
	if executions.Load() != 1 {
		t.Fatalf("flaky executed %d times, want 1", executions.Load())
	}
}

func TestNonDeterminismDetected(t *testing.T) {
	e := NewEngine(nil)
	// First version of the workflow records activity "a".
	e.Register("wf", func(ctx *Ctx) error {
		_, err := ctx.Activity("a", func() ([]byte, error) { return nil, nil })
		if err != nil {
			return err
		}
		return ErrCrashInjected // pause mid-way with history recorded
	})
	err := e.RunWithCrash("wf", "w5", 0)
	if err == nil {
		t.Fatal("expected pause")
	}
	// "Deploy" a changed workflow that asks for a different activity.
	e.Register("wf", func(ctx *Ctx) error {
		_, err := ctx.Activity("renamed", func() ([]byte, error) { return nil, nil })
		return err
	})
	err = e.Run("wf", "w5")
	if !errors.Is(err, ErrNonDeterministic) {
		t.Fatalf("err = %v, want ErrNonDeterministic", err)
	}
}

func TestSideEffectStableAcrossReplay(t *testing.T) {
	e := NewEngine(nil)
	var values []string
	counter := 0
	e.Register("wf", func(ctx *Ctx) error {
		v, err := ctx.SideEffect("gen-id", func() []byte {
			counter++
			return []byte(fmt.Sprintf("id-%d", counter))
		})
		if err != nil {
			return err
		}
		values = append(values, string(v))
		if len(values) == 1 {
			return ErrCrashInjected // crash after recording
		}
		return nil
	})
	e.RunWithCrash("wf", "w6", 0)
	if err := e.Run("wf", "w6"); err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 || values[0] != values[1] {
		t.Fatalf("side effect unstable across replay: %v", values)
	}
	if counter != 1 {
		t.Fatalf("side effect computed %d times, want 1", counter)
	}
}

func TestSleepReplaysInstantly(t *testing.T) {
	e := NewEngine(nil)
	runs := 0
	e.Register("wf", func(ctx *Ctx) error {
		runs++
		thisRun := runs
		if err := ctx.Sleep(50 * time.Millisecond); err != nil {
			return err
		}
		_, err := ctx.Activity("after", func() ([]byte, error) { return nil, nil })
		if err != nil {
			return err
		}
		if thisRun == 1 {
			return ErrCrashInjected
		}
		return nil
	})
	start := time.Now()
	e.RunWithCrash("wf", "w7", 0) // pays the 50ms
	firstRun := time.Since(start)
	if firstRun < 50*time.Millisecond {
		t.Fatalf("first run too fast: %v", firstRun)
	}
	start = time.Now()
	if err := e.Run("wf", "w7"); err != nil {
		t.Fatal(err)
	}
	if replay := time.Since(start); replay > 25*time.Millisecond {
		t.Fatalf("replay re-waited the timer: %v", replay)
	}
}

func TestWorkflowBusinessFailure(t *testing.T) {
	e := NewEngine(nil)
	e.Register("wf", func(ctx *Ctx) error {
		return errors.New("business rule violated")
	})
	if err := e.Run("wf", "w8"); err == nil {
		t.Fatal("expected failure")
	}
	if e.Status("w8") != "failed" {
		t.Fatalf("status = %q", e.Status("w8"))
	}
	// A failed workflow does not resurrect.
	if err := e.Run("wf", "w8"); err == nil {
		t.Fatal("failed workflow re-ran")
	}
}

func TestUnknownWorkflow(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Run("ghost", "w"); !errors.Is(err, ErrUnknownWorkflow) {
		t.Fatalf("err = %v", err)
	}
}

func TestHistoryLen(t *testing.T) {
	e := NewEngine(nil)
	e.Register("wf", func(ctx *Ctx) error {
		for i := 0; i < 5; i++ {
			if _, err := ctx.Activity(fmt.Sprintf("s%d", i), func() ([]byte, error) { return nil, nil }); err != nil {
				return err
			}
		}
		return nil
	})
	e.Run("wf", "w9")
	n, err := e.HistoryLen("w9")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("history = %d events, want 5", n)
	}
}

func TestLongHistoryReplayCost(t *testing.T) {
	// Replay cost grows with history length — the property E12 measures.
	e := NewEngine(nil)
	const steps = 200
	e.Register("long", func(ctx *Ctx) error {
		for i := 0; i < steps; i++ {
			if _, err := ctx.Activity(fmt.Sprintf("s%d", i), func() ([]byte, error) { return nil, nil }); err != nil {
				return err
			}
		}
		return ErrCrashInjected
	})
	e.RunWithCrash("long", "w10", 0)
	e.Register("long", func(ctx *Ctx) error {
		for i := 0; i < steps; i++ {
			if _, err := ctx.Activity(fmt.Sprintf("s%d", i), func() ([]byte, error) {
				return nil, errors.New("must not re-execute")
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := e.Run("long", "w10"); err != nil {
		t.Fatal(err)
	}
}
