package region

import (
	"testing"
	"time"

	"tca/internal/fabric"
)

func cfg(wan time.Duration, jitter int) fabric.Config {
	c := fabric.DefaultConfig()
	c.CrossRegionLatency = wan
	c.LatencyJitterPct = jitter
	return c
}

func TestLatencyTiersAndOverrides(t *testing.T) {
	top := New(cfg(80*time.Millisecond, 0), "us", "eu", "ap")
	if got := top.Latency("us", "us"); got != 0 {
		t.Fatalf("intra-region latency = %v, want 0", got)
	}
	if got := top.Latency("us", "eu"); got != 80*time.Millisecond {
		t.Fatalf("default WAN latency = %v, want 80ms", got)
	}
	top.SetLatency("us", "ap", 120*time.Millisecond)
	if got := top.Latency("ap", "us"); got != 120*time.Millisecond {
		t.Fatalf("override not symmetric: %v", got)
	}
	if got := top.RTT("us", "eu"); got != 160*time.Millisecond {
		t.Fatalf("RTT = %v, want 160ms", got)
	}
}

func TestJitterBoundedAndSeeded(t *testing.T) {
	const wan = 20 * time.Millisecond
	a := New(cfg(wan, 20), "us", "eu")
	b := New(cfg(wan, 20), "us", "eu")
	for i := 0; i < 100; i++ {
		la, lb := a.Latency("us", "eu"), b.Latency("us", "eu")
		if la != lb {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, la, lb)
		}
		if la < wan || la >= wan+wan*20/100 {
			t.Fatalf("jittered latency %v outside [20ms, 24ms)", la)
		}
	}
}

func TestQuorumRTT(t *testing.T) {
	if got := New(cfg(80*time.Millisecond, 0), "solo").QuorumRTT("solo"); got != 0 {
		t.Fatalf("single-region quorum RTT = %v, want 0", got)
	}
	// Three regions, asymmetric: quorum needs 1 peer beyond the origin,
	// so the nearest peer's RTT is the cost.
	top := New(cfg(80*time.Millisecond, 0), "us", "eu", "ap")
	top.SetLatency("us", "eu", 20*time.Millisecond)
	if got := top.QuorumRTT("us"); got != 40*time.Millisecond {
		t.Fatalf("quorum RTT = %v, want 40ms (nearest peer)", got)
	}
	// Five regions: majority needs 2 peers, so the 2nd-nearest RTT.
	top5 := New(cfg(80*time.Millisecond, 0), "a", "b", "c", "d", "e")
	top5.SetLatency("a", "b", 10*time.Millisecond)
	top5.SetLatency("a", "c", 30*time.Millisecond)
	if got := top5.QuorumRTT("a"); got != 60*time.Millisecond {
		t.Fatalf("5-region quorum RTT = %v, want 60ms (2nd peer)", got)
	}
}

func TestChargeAccumulatesOnTrace(t *testing.T) {
	top := New(cfg(80*time.Millisecond, 0), "us", "eu")
	tr := fabric.NewTrace()
	if d := top.Charge("us", "eu", tr); d != 80*time.Millisecond {
		t.Fatalf("charged %v, want 80ms", d)
	}
	if tr.Total() != 80*time.Millisecond {
		t.Fatalf("trace total = %v, want 80ms", tr.Total())
	}
	// Intra-region charge is free and adds no hop.
	top.Charge("us", "us", tr)
	if tr.Hops() != 1 {
		t.Fatalf("hops = %d, want 1", tr.Hops())
	}
}
