// Package region models a multi-region deployment: N named regions
// connected by a WAN whose per-pair latency dwarfs the intra-region
// fabric tiers. Like the fabric itself, the topology never sleeps —
// WAN delays are charged to a fabric.Trace in simulated time, so geo
// experiments report modeled latencies that are independent of the
// host (the E24 gate row relies on this).
//
// A Topology is the geo analogue of fabric.Config's latency tiers: it
// declares the regions, a default WAN latency for every pair (the
// fabric config's CrossRegionLatency), optional per-pair overrides for
// asymmetric topologies, and a seeded jitter source shared with the
// fabric convention (uniform in [0, LatencyJitterPct] percent of the
// base).
package region

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"tca/internal/fabric"
)

// Topology declares N regions and the WAN between them.
type Topology struct {
	names []string
	index map[string]int
	wan   time.Duration // default pair latency
	pct   int           // jitter percent, fabric convention

	mu       sync.Mutex
	rng      *rand.Rand
	override map[[2]string]time.Duration
}

// New builds a topology over the named regions. The default per-pair
// WAN latency and the jitter percent come from cfg (CrossRegionLatency
// and LatencyJitterPct), and the jitter stream is seeded from cfg.Seed
// so a geo run is as reproducible as a single-region one. Panics on
// fewer than one region or a duplicate name, mirroring App.Register's
// fail-fast contract.
func New(cfg fabric.Config, names ...string) *Topology {
	if len(names) == 0 {
		panic("region: topology needs at least one region")
	}
	t := &Topology{
		names:    append([]string(nil), names...),
		index:    make(map[string]int, len(names)),
		wan:      cfg.CrossRegionLatency,
		pct:      cfg.LatencyJitterPct,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		override: make(map[[2]string]time.Duration),
	}
	for i, n := range names {
		if _, dup := t.index[n]; dup {
			panic(fmt.Sprintf("region: duplicate region %q", n))
		}
		t.index[n] = i
	}
	return t
}

// Names returns the region names in declaration order.
func (t *Topology) Names() []string { return append([]string(nil), t.names...) }

// Size returns the number of regions.
func (t *Topology) Size() int { return len(t.names) }

// Index returns the declaration position of a region, -1 if unknown.
func (t *Topology) Index(name string) int {
	if i, ok := t.index[name]; ok {
		return i
	}
	return -1
}

func pair(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetLatency overrides the WAN base latency for one pair (both
// directions — the modeled WAN is symmetric).
func (t *Topology) SetLatency(a, b string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.override[pair(a, b)] = d
}

// Base returns the un-jittered WAN latency between two regions: zero
// within a region, the per-pair override if set, the topology default
// otherwise.
func (t *Topology) Base(a, b string) time.Duration {
	if a == b {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if d, ok := t.override[pair(a, b)]; ok {
		return d
	}
	return t.wan
}

// Latency returns one sampled one-way WAN latency between two regions:
// the base plus seeded uniform jitter in [0, pct] percent, matching
// fabric.Cluster.Send's jitter rule.
func (t *Topology) Latency(a, b string) time.Duration {
	base := t.Base(a, b)
	if base <= 0 {
		return base
	}
	jit := time.Duration(0)
	if t.pct > 0 {
		t.mu.Lock()
		jit = time.Duration(t.rng.Int63n(int64(base) * int64(t.pct) / 100))
		t.mu.Unlock()
	}
	return base + jit
}

// RTT returns one sampled round trip between two regions (two
// independently jittered one-way legs).
func (t *Topology) RTT(a, b string) time.Duration {
	return t.Latency(a, b) + t.Latency(b, a)
}

// QuorumRTT returns one sampled round trip from origin to the nearest
// majority of the topology: the k-th smallest peer RTT where k peers
// plus the origin form a strict majority of the regions. With one
// region it is zero (no coordination to pay); with a uniform WAN it
// equals RTT to any peer. This is the modeled cost a cross-region
// sequenced commit pays before acknowledging.
func (t *Topology) QuorumRTT(origin string) time.Duration {
	n := len(t.names)
	if n <= 1 {
		return 0
	}
	need := n/2 + 1 - 1 // peers needed beyond the origin itself
	rtts := make([]time.Duration, 0, n-1)
	for _, r := range t.names {
		if r == origin {
			continue
		}
		rtts = append(rtts, t.RTT(origin, r))
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	return rtts[need-1]
}

// Charge samples the one-way WAN latency from a to b and charges it to
// tr (nil-safe via Trace.Charge). Returns the charged latency so
// callers can also account it.
func (t *Topology) Charge(a, b string, tr *fabric.Trace) time.Duration {
	d := t.Latency(a, b)
	if d > 0 {
		tr.Charge(d)
	}
	return d
}
