// Package workload provides the benchmark workloads §5.3 says the field
// lacks good versions of: deterministic, seeded generators for the
// transaction mixes the paper cites — TPC-C (ref [52]), a
// DeathStarBench-style social network (ref [27]), and the Online
// Marketplace microservice benchmark (ref [38]) — plus open-loop and
// closed-loop load drivers (ref [56]: "Closed versus open system models"),
// whose difference experiment E10 demonstrates.
//
// Generators produce *descriptors*, not effects: the same TPC-C op can be
// executed against the core runtime, the actor coordinator, a saga, or a
// microservice deployment, which is exactly what the cross-model
// experiments need.
package workload

import (
	"fmt"
	"math/rand"
)

// BankOp is one transfer in the canonical bank workload.
type BankOp struct {
	From, To int
	Amount   int64
}

// BankGen generates transfers over n accounts. With hot > 0, that fraction
// of traffic targets account 0 (contention knob).
type BankGen struct {
	rng      *rand.Rand
	accounts int
	hotFrac  float64
}

// NewBank creates a seeded bank generator.
func NewBank(seed int64, accounts int, hotFrac float64) *BankGen {
	if accounts < 2 {
		accounts = 2
	}
	return &BankGen{rng: rand.New(rand.NewSource(seed)), accounts: accounts, hotFrac: hotFrac}
}

// Next returns the next transfer.
func (g *BankGen) Next() BankOp {
	from := g.rng.Intn(g.accounts)
	to := g.rng.Intn(g.accounts - 1)
	if to >= from {
		to++
	}
	if g.hotFrac > 0 && g.rng.Float64() < g.hotFrac {
		from = 0
	}
	return BankOp{From: from, To: to, Amount: int64(1 + g.rng.Intn(10))}
}

// --- TPC-C subset -----------------------------------------------------------

// TPCCKind is the transaction type.
type TPCCKind int

// The two write transactions the SFaaS literature evaluates (ref [52]
// builds on exactly this subset plus the rest; NewOrder+Payment is 88% of
// the standard mix), plus the standard's two query transactions —
// OrderStatus and StockLevel — which TPCCApp declares ReadOnly so every
// cell answers them on its query fast path.
const (
	TPCCNewOrder TPCCKind = iota
	TPCCPayment
	TPCCOrderStatus
	TPCCStockLevel
)

func (k TPCCKind) String() string {
	switch k {
	case TPCCNewOrder:
		return "new-order"
	case TPCCPayment:
		return "payment"
	case TPCCOrderStatus:
		return "order-status"
	default:
		return "stock-level"
	}
}

// TPCCItem is one order line.
type TPCCItem struct {
	ItemID int
	Qty    int
}

// TPCCOp is one transaction descriptor.
type TPCCOp struct {
	Kind      TPCCKind
	Warehouse int
	District  int
	Customer  int
	Items     []TPCCItem // NewOrder (order lines) and StockLevel (items to inspect)
	Amount    int64      // Payment only
	// Threshold is StockLevel's low-stock cutoff (standard: uniform in
	// 10..20); zero means the default the app body applies.
	Threshold int64
	// Remote reports a cross-warehouse access (the distributed-transaction
	// trigger: ~10% of NewOrders and 15% of Payments in the standard).
	Remote          bool
	RemoteWarehouse int
}

// TPCCConfig sizes the workload.
type TPCCConfig struct {
	Warehouses int
	// Districts per warehouse (standard: 10).
	Districts int
	// Customers per district (standard: 3000; scale down for tests).
	Customers int
	// Items in the catalog (standard: 100000; scale down).
	Items int
	// NewOrderFrac is the fraction of NewOrder ops (standard mix: ~0.51
	// of all, but of this 2-txn subset ≈ 0.52/0.95).
	NewOrderFrac float64
	// RemoteFrac, when set, pins the fraction of transactions that touch
	// a remote warehouse (TPCCOp.Remote) — the distributed-transaction
	// trigger — for both transaction kinds; point it at 0 to disable
	// cross-warehouse traffic entirely. Nil (the zero value) keeps the
	// standard mix (10% of NewOrders, 15% of Payments). E17 sweeps this
	// knob to tie the app-level matrix to E16's cross-partition scaling
	// curve.
	RemoteFrac *float64
	// QueryFrac is the fraction of the stream that is the standard's query
	// transactions — OrderStatus and StockLevel, alternating by a fair
	// draw — which TPCCApp declares ReadOnly, so they ride every cell's
	// query fast path. Zero (the default) keeps the pure write mix *and*
	// the exact pre-knob rng stream: the query draw only happens when the
	// fraction is positive, like SocialGen's churn draw. E17 sweeps this
	// knob for the matrix's read-path column.
	QueryFrac float64
}

// RemoteFrac boxes a cross-warehouse rate for TPCCConfig.RemoteFrac.
func RemoteFrac(f float64) *float64 { return &f }

// DefaultTPCCConfig returns a laptop-scale configuration.
func DefaultTPCCConfig(warehouses int) TPCCConfig {
	return TPCCConfig{
		Warehouses:   warehouses,
		Districts:    10,
		Customers:    100,
		Items:        1000,
		NewOrderFrac: 0.55,
	}
}

// TPCCGen generates the NewOrder/Payment mix.
type TPCCGen struct {
	rng *rand.Rand
	cfg TPCCConfig
}

// NewTPCC creates a seeded generator.
func NewTPCC(seed int64, cfg TPCCConfig) *TPCCGen {
	if cfg.Warehouses < 1 {
		cfg.Warehouses = 1
	}
	if cfg.Districts < 1 {
		cfg.Districts = 10
	}
	if cfg.Customers < 1 {
		cfg.Customers = 100
	}
	if cfg.Items < 10 {
		cfg.Items = 1000
	}
	if cfg.NewOrderFrac <= 0 {
		cfg.NewOrderFrac = 0.55
	}
	return &TPCCGen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Next returns the next transaction descriptor.
func (g *TPCCGen) Next() TPCCOp {
	// The query draw only happens when queries are enabled, so QueryFrac=0
	// generators keep the exact rng stream of the write-only workload.
	if g.cfg.QueryFrac > 0 && g.rng.Float64() < g.cfg.QueryFrac {
		return g.nextQuery()
	}
	op := TPCCOp{
		Warehouse: g.rng.Intn(g.cfg.Warehouses),
		District:  g.rng.Intn(g.cfg.Districts),
		Customer:  g.rng.Intn(g.cfg.Customers),
	}
	// remoteFrac resolves the cross-warehouse probability: the standard
	// per-kind rate unless the config pins one. The random draw is made
	// either way, so sweeping RemoteFrac never perturbs the rest of the
	// seeded stream — only the Remote bit changes.
	remoteFrac := func(std float64) float64 {
		if g.cfg.RemoteFrac != nil {
			return *g.cfg.RemoteFrac
		}
		return std
	}
	if g.rng.Float64() < g.cfg.NewOrderFrac {
		op.Kind = TPCCNewOrder
		n := 5 + g.rng.Intn(11) // 5..15 order lines, per the standard
		op.Items = make([]TPCCItem, n)
		for i := range op.Items {
			op.Items[i] = TPCCItem{ItemID: g.rng.Intn(g.cfg.Items), Qty: 1 + g.rng.Intn(10)}
		}
		op.Remote = g.cfg.Warehouses > 1 && g.rng.Float64() < remoteFrac(0.10)
	} else {
		op.Kind = TPCCPayment
		op.Amount = int64(1 + g.rng.Intn(5000))
		op.Remote = g.cfg.Warehouses > 1 && g.rng.Float64() < remoteFrac(0.15)
	}
	// The remote-warehouse candidate is drawn unconditionally so the rng
	// consumption per op is fixed: sweeping RemoteFrac flips only the
	// Remote bit and the rest of the seeded stream stays identical —
	// E17's sweep compares the same transactions at different rates.
	if g.cfg.Warehouses > 1 {
		w := g.rng.Intn(g.cfg.Warehouses - 1)
		if w >= op.Warehouse {
			w++
		}
		if op.Remote {
			op.RemoteWarehouse = w
		}
	}
	return op
}

// nextQuery draws one of the standard's query transactions: OrderStatus
// (the customer's balance and order count) or StockLevel (how many of a
// district's recently touched items sit below a threshold drawn uniformly
// in 10..20, per the standard). Queries are home-warehouse only, matching
// the standard's terminal model.
func (g *TPCCGen) nextQuery() TPCCOp {
	op := TPCCOp{
		Warehouse: g.rng.Intn(g.cfg.Warehouses),
		District:  g.rng.Intn(g.cfg.Districts),
		Customer:  g.rng.Intn(g.cfg.Customers),
	}
	if g.rng.Float64() < 0.5 {
		op.Kind = TPCCOrderStatus
		return op
	}
	op.Kind = TPCCStockLevel
	op.Threshold = int64(10 + g.rng.Intn(11))
	n := 5 + g.rng.Intn(11) // inspect 5..15 items, like a NewOrder's lines
	op.Items = make([]TPCCItem, n)
	for i := range op.Items {
		op.Items[i] = TPCCItem{ItemID: g.rng.Intn(g.cfg.Items)}
	}
	return op
}

// StockKey / CustomerKey / DistrictKey name the state keys a TPC-C op
// touches, shared by every runtime adapter so the experiments hit
// identical key sets.
func StockKey(warehouse, item int) string { return fmt.Sprintf("stock/%d/%d", warehouse, item) }
func CustomerKey(w, d, c int) string      { return fmt.Sprintf("cust/%d/%d/%d", w, d, c) }
func DistrictKey(w, d int) string         { return fmt.Sprintf("dist/%d/%d", w, d) }
func WarehouseKey(w int) string           { return fmt.Sprintf("wh/%d", w) }

// Keys returns every state key the op touches (its declared key set for
// the deterministic runtime).
func (op TPCCOp) Keys() []string {
	switch op.Kind {
	case TPCCNewOrder:
		keys := []string{DistrictKey(op.Warehouse, op.District)}
		seen := map[string]struct{}{}
		for _, it := range op.Items {
			w := op.Warehouse
			if op.Remote {
				w = op.RemoteWarehouse
			}
			k := StockKey(w, it.ItemID)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
		return keys
	case TPCCOrderStatus:
		// The query reads the customer's balance and the district's order
		// counter — both home-warehouse (queries are local in the
		// standard's terminal model).
		return []string{
			CustomerKey(op.Warehouse, op.District, op.Customer),
			DistrictKey(op.Warehouse, op.District),
		}
	case TPCCStockLevel:
		keys := []string{DistrictKey(op.Warehouse, op.District)}
		seen := map[string]struct{}{}
		for _, it := range op.Items {
			k := StockKey(op.Warehouse, it.ItemID)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
		return keys
	default:
		w := op.Warehouse
		if op.Remote {
			w = op.RemoteWarehouse
		}
		return []string{
			WarehouseKey(op.Warehouse),
			CustomerKey(w, op.District, op.Customer),
		}
	}
}

// --- Online marketplace -------------------------------------------------------

// MarketKind is the marketplace operation type.
type MarketKind int

// Marketplace operations, after the Online Marketplace benchmark (ref
// [38]): cart updates dominate, checkouts span services, queries are
// read-only, price updates create write skew with checkouts.
const (
	MarketAddToCart MarketKind = iota
	MarketCheckout
	MarketQueryProduct
	MarketUpdatePrice
)

func (k MarketKind) String() string {
	switch k {
	case MarketAddToCart:
		return "add-to-cart"
	case MarketCheckout:
		return "checkout"
	case MarketQueryProduct:
		return "query-product"
	default:
		return "update-price"
	}
}

// MarketOp is one marketplace request. ResvID and Claims are used only
// by the reservation variant (ReservedMarketGen / ReservedKeys): a cart
// add carries the reservation it creates and the client-quoted Price; a
// checkout carries the reservation ids it claims. Plain streams leave
// them zero, so existing seeded runs are byte-identical.
type MarketOp struct {
	Kind    MarketKind
	User    int
	Product int
	Qty     int
	Price   int64
	ResvID  int64   `json:",omitempty"`
	Claims  []int64 `json:",omitempty"`
}

// MarketConfig sizes the marketplace.
type MarketConfig struct {
	Users    int
	Products int
	// Mix fractions; the remainder goes to queries. NewMarket clamps
	// negative fractions to zero and, when the three sum past 1,
	// normalizes them proportionally — so checkout/price traffic is never
	// silently eaten by an over-full cart fraction.
	CartFrac     float64
	CheckoutFrac float64
	PriceFrac    float64
	// ZipfS skews product popularity. rand.NewZipf requires s > 1, so
	// NewMarket clamps any value <= 1.0 up to 1.1 (the mildest supported
	// skew); higher values concentrate traffic on fewer products.
	ZipfS float64
}

// DefaultMarketConfig returns the mix used in the paper-adjacent
// benchmark: 60% cart, 10% checkout, 5% price updates, 25% queries.
func DefaultMarketConfig() MarketConfig {
	return MarketConfig{
		Users: 1000, Products: 500,
		CartFrac: 0.60, CheckoutFrac: 0.10, PriceFrac: 0.05,
		ZipfS: 1.1,
	}
}

// MarketGen generates marketplace requests with zipfian product skew.
type MarketGen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	cfg  MarketConfig
}

// NewMarket creates a seeded generator.
func NewMarket(seed int64, cfg MarketConfig) *MarketGen {
	if cfg.Users < 1 {
		cfg.Users = 1000
	}
	if cfg.Products < 2 {
		cfg.Products = 500
	}
	if cfg.ZipfS <= 1.0 {
		// rand.NewZipf panics (returns nil) for s <= 1; clamp to the
		// mildest legal skew rather than fail. Documented on MarketConfig.
		cfg.ZipfS = 1.1
	}
	// Validate the mix the same way the ZipfS clamp does: repair instead of
	// fail. Negative fractions are zeroed; fractions summing past 1 are
	// scaled down proportionally so every class keeps its relative share
	// (previously a cart fraction past 1 silently ate all checkout and
	// price traffic — Next draws one uniform variate against cumulative
	// thresholds).
	if cfg.CartFrac < 0 {
		cfg.CartFrac = 0
	}
	if cfg.CheckoutFrac < 0 {
		cfg.CheckoutFrac = 0
	}
	if cfg.PriceFrac < 0 {
		cfg.PriceFrac = 0
	}
	if sum := cfg.CartFrac + cfg.CheckoutFrac + cfg.PriceFrac; sum > 1 {
		cfg.CartFrac /= sum
		cfg.CheckoutFrac /= sum
		cfg.PriceFrac /= sum
	}
	rng := rand.New(rand.NewSource(seed))
	return &MarketGen{
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Products-1)),
		cfg:  cfg,
	}
}

// Config returns the generator's effective configuration (after clamping
// and mix normalization) — what the stream actually draws from.
func (g *MarketGen) Config() MarketConfig { return g.cfg }

// Next returns the next request.
func (g *MarketGen) Next() MarketOp {
	op := MarketOp{
		User:    g.rng.Intn(g.cfg.Users),
		Product: int(g.zipf.Uint64()),
	}
	r := g.rng.Float64()
	switch {
	case r < g.cfg.CartFrac:
		op.Kind = MarketAddToCart
		op.Qty = 1 + g.rng.Intn(3)
	case r < g.cfg.CartFrac+g.cfg.CheckoutFrac:
		op.Kind = MarketCheckout
	case r < g.cfg.CartFrac+g.cfg.CheckoutFrac+g.cfg.PriceFrac:
		op.Kind = MarketUpdatePrice
		op.Price = int64(100 + g.rng.Intn(900))
	default:
		op.Kind = MarketQueryProduct
	}
	return op
}

// CartKey / PriceKey / MarketStockKey / OrderKey name the state keys a
// marketplace op touches, shared by the MarketApp bodies and auditor so
// every cell hits identical key sets.
func CartKey(user int) string           { return fmt.Sprintf("cart/%d", user) }
func PriceKey(product int) string       { return fmt.Sprintf("price/%d", product) }
func MarketStockKey(product int) string { return fmt.Sprintf("mstock/%d", product) }
func OrderKey(user int) string          { return fmt.Sprintf("order/%d", user) }

// Keys returns every state key the op touches (its declared key set):
// queries read the product pair, checkouts span the cart, the product and
// the buyer's order ledger — the multi-key write-skew surface.
func (op MarketOp) Keys() []string {
	switch op.Kind {
	case MarketAddToCart:
		return []string{CartKey(op.User)}
	case MarketCheckout:
		return []string{CartKey(op.User), PriceKey(op.Product), MarketStockKey(op.Product), OrderKey(op.User)}
	case MarketQueryProduct:
		return []string{PriceKey(op.Product), MarketStockKey(op.Product)}
	default: // MarketUpdatePrice
		return []string{PriceKey(op.Product)}
	}
}

// --- social network -----------------------------------------------------------

// SocialKind is the social-network operation type.
type SocialKind int

// Social operations: compose-post is the DeathStarBench hot path; follow
// and unfollow are the graph churn that mutates an author's fan-out key
// set between posts.
const (
	SocialPost SocialKind = iota
	SocialFollow
	SocialUnfollow
)

func (k SocialKind) String() string {
	switch k {
	case SocialFollow:
		return "follow"
	case SocialUnfollow:
		return "unfollow"
	default:
		return "compose-post"
	}
}

// SocialOp is one social-network request. A compose-post (the zero Kind)
// fans PostID out to the author's followers' timelines; the follower list
// rides in the descriptor — Calvin-style reconnaissance done by the
// workload layer, which owns the authoritative graph. Follow/unfollow
// carry the single edge (Author, Follower) they flip.
type SocialOp struct {
	Kind      SocialKind
	Author    int
	PostID    int64 // compose-post: the id delivered to every timeline
	Followers []int // compose-post: the fan-out set at generation time
	Follower  int   // follow/unfollow: the follower gained or lost
	TextLen   int
}

// SocialGen generates social ops over a zipf-degree follower graph. With a
// churn fraction > 0 it interleaves follow/unfollow ops that mutate the
// graph, so successive posts by the same author can declare different
// fan-out key sets — the dynamic-key-set stress the wide-transaction
// machinery needs.
type SocialGen struct {
	rng       *rand.Rand
	followers [][]int
	churn     float64
	nextPost  int64
}

// NewSocial builds a seeded follower graph of n users where user degree is
// skewed (a few celebrities, many lurkers). The stream is churn-free:
// every op is a compose-post (the pre-churn workload, kept for seeded
// stream stability).
func NewSocial(seed int64, users, maxFollowers int) *SocialGen {
	return NewSocialChurn(seed, users, maxFollowers, 0)
}

// NewSocialChurn is NewSocial with a follow/unfollow fraction: each op is
// a graph mutation with probability churn, a compose-post otherwise.
func NewSocialChurn(seed int64, users, maxFollowers int, churn float64) *SocialGen {
	if users < 2 {
		users = 2
	}
	if maxFollowers < 1 {
		maxFollowers = 16
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(maxFollowers))
	g := &SocialGen{rng: rng, followers: make([][]int, users), churn: churn}
	for u := range g.followers {
		n := int(zipf.Uint64()) + 1
		fs := make([]int, 0, n)
		seen := map[int]struct{}{u: {}}
		for len(fs) < n && len(seen) < users {
			f := rng.Intn(users)
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			fs = append(fs, f)
		}
		g.followers[u] = fs
	}
	return g
}

// Next returns the next op. Compose-posts snapshot the author's current
// follower list; follow/unfollow mutate the generator's graph in the same
// step, so the descriptor stream and the graph stay in lockstep.
func (g *SocialGen) Next() SocialOp {
	// The churn draw only happens when churn is enabled, so churn-free
	// generators keep the exact rng stream of the pre-churn workload.
	if g.churn > 0 && g.rng.Float64() < g.churn {
		if op, ok := g.nextChurn(); ok {
			return op
		}
	}
	author := g.rng.Intn(len(g.followers))
	g.nextPost++
	return SocialOp{
		Kind:      SocialPost,
		Author:    author,
		PostID:    g.nextPost,
		Followers: append([]int(nil), g.followers[author]...),
		TextLen:   10 + g.rng.Intn(200),
	}
}

// nextChurn flips one follower edge: an unfollow of an existing follower
// half the time (when the author has any), otherwise a follow by a
// non-follower (when one exists).
func (g *SocialGen) nextChurn() (SocialOp, bool) {
	users := len(g.followers)
	author := g.rng.Intn(users)
	fs := g.followers[author]
	if len(fs) > 0 && (g.rng.Float64() < 0.5 || len(fs) >= users-1) {
		i := g.rng.Intn(len(fs))
		f := fs[i]
		g.followers[author] = append(append([]int(nil), fs[:i]...), fs[i+1:]...)
		return SocialOp{Kind: SocialUnfollow, Author: author, Follower: f}, true
	}
	// Find a non-follower; give up (fall back to a post) if the draw
	// keeps hitting existing edges.
	following := map[int]struct{}{author: {}}
	for _, f := range fs {
		following[f] = struct{}{}
	}
	for tries := 0; tries < 8 && len(following) < users; tries++ {
		f := g.rng.Intn(users)
		if _, dup := following[f]; dup {
			continue
		}
		g.followers[author] = append(append([]int(nil), fs...), f)
		return SocialOp{Kind: SocialFollow, Author: author, Follower: f}, true
	}
	return SocialOp{}, false
}

// FollowerCount returns user u's follower count (graph inspection).
func (g *SocialGen) FollowerCount(u int) int { return len(g.followers[u]) }

// Followers returns a copy of user u's current follower list.
func (g *SocialGen) Followers(u int) []int {
	return append([]int(nil), g.followers[u]...)
}

// Users returns the size of the follower graph.
func (g *SocialGen) Users() int { return len(g.followers) }

// PostsKey / TimelineKey / FollowKey name the state keys a social op
// touches, shared by the SocialApp bodies and auditor.
func PostsKey(user int) string    { return fmt.Sprintf("posts/%d", user) }
func TimelineKey(user int) string { return fmt.Sprintf("timeline/%d", user) }

// FollowKey is the (author, follower) edge counter: 1 while follower is
// subscribed to author's posts, 0 after an unfollow. Counters instead of
// a single list-valued followers key keep the churn commutative — a
// follow is +1, an unfollow is -1, exact on every cell in any order.
func FollowKey(author, follower int) string {
	return fmt.Sprintf("follow/%d/%d", author, follower)
}

// Keys returns every state key the op touches (its declared key set). For
// a compose-post that is the author's post log plus one timeline per
// follower: the key set's width IS the fan-out — on the statefun cell
// each key costs a read send (chunked across invocation rounds past the
// send budget), and on the partitioned core it spreads the transaction
// across partitions. Follow/unfollow touch the single edge they flip.
func (op SocialOp) Keys() []string {
	switch op.Kind {
	case SocialFollow, SocialUnfollow:
		return []string{FollowKey(op.Author, op.Follower)}
	default:
		keys := make([]string, 0, len(op.Followers)+1)
		keys = append(keys, PostsKey(op.Author))
		for _, f := range op.Followers {
			keys = append(keys, TimelineKey(f))
		}
		return keys
	}
}

// --- reserved marketplace ------------------------------------------------------

// The reservation-style marketplace variant (ROADMAP 4b): instead of
// checkout reading the live cart, price, and stock — the write-skew
// surface E18/E21 measure — the price is reserved at cart time. Each
// add-to-cart becomes a reservation: the client-quoted price rides in
// the op descriptor (the quote the user saw), the reserved amount lands
// under a per-reservation key written exactly once, and stock is
// escrowed with a commutative decrement. A checkout then claims
// specific reservation ids — keys only that checkout ever touches — so
// every write op's effects are a pure function of its arguments and its
// private keys. No op reads a key another op writes concurrently, which
// is why the eventual cells audit to exactly zero anomalies on this
// variant: commutativity and unique ownership replace isolation. The
// cost is extra state and ops (a key and a tombstone per reservation)
// and a business-policy change — the quoted price is honored even if a
// price update lands in between.

// ReservationKey names one reservation's escrow: written once by the
// reserving add-to-cart, consumed once by the claiming checkout.
func ReservationKey(user int, id int64) string {
	return fmt.Sprintf("resv/%d/%d", user, id)
}

// ReservedKeys returns the op's declared key set under the reservation
// variant. Cart adds touch the escrow and the stock (the price is quoted
// in the args, not read); checkouts touch exactly the claimed
// reservations plus the buyer's order ledger.
func (op MarketOp) ReservedKeys() []string {
	switch op.Kind {
	case MarketAddToCart:
		return []string{MarketStockKey(op.Product), ReservationKey(op.User, op.ResvID)}
	case MarketCheckout:
		keys := make([]string, 0, len(op.Claims)+1)
		for _, id := range op.Claims {
			keys = append(keys, ReservationKey(op.User, id))
		}
		return append(keys, OrderKey(op.User))
	default:
		return op.Keys()
	}
}

// ReservedMarketGen wraps a MarketGen stream with the bookkeeping the
// reservation variant needs: unique reservation ids per cart add, a
// client-side quote for the reserved price, and per-user claim lists so
// each checkout claims reservations exactly once. The base generator's
// rng stream is untouched — the wrapper draws quotes from its own seeded
// rng — so reserved and plain runs sweep identical op mixes.
type ReservedMarketGen struct {
	inner   *MarketGen
	rng     *rand.Rand
	nextID  int64
	idBase  int64
	pending map[int][]int64 // user -> unclaimed reservation ids from this client
}

// maxClaimsPerCheckout bounds a checkout's key width (and so the
// statefun scatter and the core's lock footprint) the way real carts
// bound their size.
const maxClaimsPerCheckout = 8

// NewReservedMarket wraps a seeded base stream. The seed namespaces this
// client's reservation ids (each client claims only ids it issued, so
// ids must be distinct across clients sharing a cell).
func NewReservedMarket(seed int64, cfg MarketConfig) *ReservedMarketGen {
	return &ReservedMarketGen{
		inner:   NewMarket(seed, cfg),
		rng:     rand.New(rand.NewSource(seed ^ 0x5eed)),
		idBase:  seed << 20,
		pending: make(map[int][]int64),
	}
}

// Next returns the next reserved-variant request.
func (g *ReservedMarketGen) Next() MarketOp {
	op := g.inner.Next()
	switch op.Kind {
	case MarketAddToCart:
		g.nextID++
		op.ResvID = g.idBase + g.nextID
		// The quote the client saw — drawn from the same range update-price
		// writes, standing in for a browsed catalog page.
		op.Price = int64(100 + g.rng.Intn(900))
		g.pending[op.User] = append(g.pending[op.User], op.ResvID)
	case MarketCheckout:
		ids := g.pending[op.User]
		n := len(ids)
		if n > maxClaimsPerCheckout {
			n = maxClaimsPerCheckout
		}
		op.Claims = append([]int64(nil), ids[:n]...)
		g.pending[op.User] = ids[n:]
	}
	return op
}

// --- trip booking --------------------------------------------------------------

// BookingKind is the trip-booking operation type.
type BookingKind int

// Booking operations, the examples/booking saga promoted to a
// first-class mix: a trip reserves one flight seat and one hotel room
// atomically, a cancellation releases both, and queries read the trip
// ledger. All mutations are ±1 counter deltas — fully commutative — so
// every cell must audit clean; what the mix measures is the cost of the
// multi-key atomic step (two services plus the user's trip ledger).
const (
	BookingReserve BookingKind = iota
	BookingCancel
	BookingQuery
)

func (k BookingKind) String() string {
	switch k {
	case BookingCancel:
		return "cancel-trip"
	case BookingQuery:
		return "query-trip"
	default:
		return "reserve-trip"
	}
}

// BookingOp is one trip-booking request.
type BookingOp struct {
	Kind   BookingKind
	User   int
	Flight int
	Hotel  int
}

// BookingGen generates booking requests. Cancellations draw only from
// trips this generator has reserved (a client cancels its own booking),
// so the stream never legitimately drives a seat count negative.
type BookingGen struct {
	rng        *rand.Rand
	users      int
	flights    int
	hotels     int
	cancelFrac float64
	queryFrac  float64
	booked     []BookingOp
}

// NewBooking builds a seeded generator over users × flights × hotels
// with the given cancel and query fractions (remainder reserves).
func NewBooking(seed int64, users, flights, hotels int, cancelFrac, queryFrac float64) *BookingGen {
	if users < 1 {
		users = 64
	}
	if flights < 1 {
		flights = 8
	}
	if hotels < 1 {
		hotels = 8
	}
	return &BookingGen{
		rng:        rand.New(rand.NewSource(seed)),
		users:      users,
		flights:    flights,
		hotels:     hotels,
		cancelFrac: cancelFrac,
		queryFrac:  queryFrac,
	}
}

// Next returns the next booking request.
func (g *BookingGen) Next() BookingOp {
	r := g.rng.Float64()
	switch {
	case r < g.cancelFrac && len(g.booked) > 0:
		i := g.rng.Intn(len(g.booked))
		op := g.booked[i]
		g.booked = append(g.booked[:i], g.booked[i+1:]...)
		op.Kind = BookingCancel
		return op
	case r < g.cancelFrac+g.queryFrac:
		return BookingOp{Kind: BookingQuery, User: g.rng.Intn(g.users)}
	default:
		op := BookingOp{
			Kind:   BookingReserve,
			User:   g.rng.Intn(g.users),
			Flight: g.rng.Intn(g.flights),
			Hotel:  g.rng.Intn(g.hotels),
		}
		g.booked = append(g.booked, op)
		return op
	}
}

// FlightKey / HotelKey / TripKey name the booking state: seats sold per
// flight, rooms sold per hotel, trips held per user.
func FlightKey(flight int) string { return fmt.Sprintf("flight/%d", flight) }
func HotelKey(hotel int) string   { return fmt.Sprintf("hotel/%d", hotel) }
func TripKey(user int) string     { return fmt.Sprintf("trip/%d", user) }

// Keys returns the op's declared key set: a reservation (and its
// cancellation) spans the flight, the hotel, and the user's trip ledger.
func (op BookingOp) Keys() []string {
	switch op.Kind {
	case BookingQuery:
		return []string{TripKey(op.User)}
	default:
		return []string{FlightKey(op.Flight), HotelKey(op.Hotel), TripKey(op.User)}
	}
}

// --- double-entry ledger -------------------------------------------------------

// LedgerKind is the ledger operation type.
type LedgerKind int

// Ledger operations, the examples/streamledger job promoted to a
// first-class mix: a posting moves an amount between two accounts and
// journals the entry id on both sides (a bounded commutative PushCap),
// queries read one balance. Conservation (Σ balances constant) is the
// audited invariant.
const (
	LedgerPost LedgerKind = iota
	LedgerQuery
)

func (k LedgerKind) String() string {
	if k == LedgerQuery {
		return "query-balance"
	}
	return "post"
}

// LedgerOp is one ledger request.
type LedgerOp struct {
	Kind   LedgerKind
	From   int
	To     int
	Amount int64
	Entry  int64 // unique journal entry id
}

// LedgerGen generates seeded postings over n accounts; queryFrac of the
// stream reads balances. Entry ids are namespaced by the seed so
// concurrent clients journal distinct ids.
type LedgerGen struct {
	rng       *rand.Rand
	accounts  int
	queryFrac float64
	nextEntry int64
	idBase    int64
}

// NewLedger builds a seeded generator.
func NewLedger(seed int64, accounts int, queryFrac float64) *LedgerGen {
	if accounts < 2 {
		accounts = 32
	}
	return &LedgerGen{
		rng:       rand.New(rand.NewSource(seed)),
		accounts:  accounts,
		queryFrac: queryFrac,
		idBase:    seed << 20,
	}
}

// Next returns the next ledger request.
func (g *LedgerGen) Next() LedgerOp {
	if g.queryFrac > 0 && g.rng.Float64() < g.queryFrac {
		return LedgerOp{Kind: LedgerQuery, From: g.rng.Intn(g.accounts)}
	}
	from := g.rng.Intn(g.accounts)
	to := g.rng.Intn(g.accounts - 1)
	if to >= from {
		to++
	}
	g.nextEntry++
	return LedgerOp{
		Kind:   LedgerPost,
		From:   from,
		To:     to,
		Amount: int64(1 + g.rng.Intn(100)),
		Entry:  g.idBase + g.nextEntry,
	}
}

// AcctKey / JournalKey name the ledger state: one balance and one
// bounded journal of recent entry ids per account.
func AcctKey(account int) string    { return fmt.Sprintf("acct/%d", account) }
func JournalKey(account int) string { return fmt.Sprintf("journal/%d", account) }

// Keys returns the op's declared key set: a posting touches both sides'
// balances and journals.
func (op LedgerOp) Keys() []string {
	if op.Kind == LedgerQuery {
		return []string{AcctKey(op.From)}
	}
	return []string{AcctKey(op.From), AcctKey(op.To), JournalKey(op.From), JournalKey(op.To)}
}
