package workload

import (
	"testing"
	"time"
)

func TestBankGenDeterministic(t *testing.T) {
	a, b := NewBank(7, 100, 0), NewBank(7, 100, 0)
	for i := 0; i < 100; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestBankGenNeverSelfTransfer(t *testing.T) {
	g := NewBank(1, 5, 0)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.From == op.To {
			t.Fatalf("self transfer at %d: %+v", i, op)
		}
		if op.From >= 5 || op.To >= 5 || op.From < 0 || op.To < 0 {
			t.Fatalf("out of range: %+v", op)
		}
		if op.Amount <= 0 {
			t.Fatalf("non-positive amount: %+v", op)
		}
	}
}

func TestBankGenHotFraction(t *testing.T) {
	g := NewBank(1, 100, 0.5)
	hot := 0
	for i := 0; i < 2000; i++ {
		if g.Next().From == 0 {
			hot++
		}
	}
	if hot < 800 || hot > 1300 {
		t.Fatalf("hot transfers = %d of 2000, want ~50%%", hot)
	}
}

func TestTPCCGenMix(t *testing.T) {
	g := NewTPCC(3, DefaultTPCCConfig(4))
	newOrders := 0
	const n = 5000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind == TPCCNewOrder {
			newOrders++
			if len(op.Items) < 5 || len(op.Items) > 15 {
				t.Fatalf("order lines = %d, want 5..15", len(op.Items))
			}
		} else if op.Amount <= 0 {
			t.Fatalf("payment with amount %d", op.Amount)
		}
		if op.Warehouse < 0 || op.Warehouse >= 4 {
			t.Fatalf("warehouse out of range: %+v", op)
		}
		if op.Remote && op.RemoteWarehouse == op.Warehouse {
			t.Fatalf("remote warehouse equals home: %+v", op)
		}
	}
	frac := float64(newOrders) / n
	if frac < 0.50 || frac > 0.60 {
		t.Fatalf("new-order fraction = %.2f, want ~0.55", frac)
	}
}

func TestTPCCKeysDeclared(t *testing.T) {
	g := NewTPCC(3, DefaultTPCCConfig(2))
	for i := 0; i < 200; i++ {
		op := g.Next()
		keys := op.Keys()
		if len(keys) == 0 {
			t.Fatal("empty key set")
		}
		seen := map[string]struct{}{}
		for _, k := range keys {
			if _, dup := seen[k]; dup {
				t.Fatalf("duplicate key %s in %v", k, keys)
			}
			seen[k] = struct{}{}
		}
	}
}

func TestTPCCSingleWarehouseNeverRemote(t *testing.T) {
	g := NewTPCC(3, DefaultTPCCConfig(1))
	for i := 0; i < 500; i++ {
		if g.Next().Remote {
			t.Fatal("remote txn with a single warehouse")
		}
	}
}

func TestMarketGenMix(t *testing.T) {
	g := NewMarket(9, DefaultMarketConfig())
	counts := map[MarketKind]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if f := float64(counts[MarketAddToCart]) / n; f < 0.55 || f > 0.65 {
		t.Fatalf("cart fraction = %.2f, want ~0.60", f)
	}
	if f := float64(counts[MarketCheckout]) / n; f < 0.07 || f > 0.13 {
		t.Fatalf("checkout fraction = %.2f, want ~0.10", f)
	}
	if counts[MarketQueryProduct] == 0 || counts[MarketUpdatePrice] == 0 {
		t.Fatalf("missing op kinds: %v", counts)
	}
}

func TestMarketZipfSkew(t *testing.T) {
	g := NewMarket(9, DefaultMarketConfig())
	hits := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		hits[g.Next().Product]++
	}
	// The hottest product should be much hotter than the median.
	max := 0
	for _, c := range hits {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Fatalf("hottest product got %d of %d; zipf skew missing", max, n)
	}
}

func TestSocialGraphShape(t *testing.T) {
	g := NewSocial(4, 100, 32)
	total := 0
	for u := 0; u < 100; u++ {
		n := g.FollowerCount(u)
		if n < 1 || n > 33 {
			t.Fatalf("user %d has %d followers", u, n)
		}
		total += n
	}
	op := g.Next()
	if len(op.Followers) != g.FollowerCount(op.Author) {
		t.Fatal("op followers mismatch graph")
	}
	for _, f := range op.Followers {
		if f == op.Author {
			t.Fatal("self-follow")
		}
	}
}

func TestClosedLoopCounts(t *testing.T) {
	res := ClosedLoop(4, 25, 0, func() error { return nil })
	if res.Issued != 100 || res.Errors != 0 {
		t.Fatalf("issued=%d errors=%d", res.Issued, res.Errors)
	}
	if res.Latency.Count != 100 {
		t.Fatalf("latency samples = %d", res.Latency.Count)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestClosedLoopSelfThrottles(t *testing.T) {
	// One slot, slow service, many clients: closed loop cannot overload —
	// measured latency stays near service time × queue of clients, and
	// total time ≈ ops × service.
	op := SpinService(1, 200*time.Microsecond)
	res := ClosedLoop(4, 10, 0, op)
	// p50 bounded by clients × service time (each op waits for at most the
	// other 3 clients).
	if res.Latency.P50 > int64(10*time.Millisecond) {
		t.Fatalf("closed-loop p50 = %v, unexpectedly large", time.Duration(res.Latency.P50))
	}
}

func TestOpenLoopBeyondCapacityExplodes(t *testing.T) {
	// Capacity = 1 op / 200µs = 5000/s. Offer 4x that: queueing delay must
	// blow past anything the closed-loop test sees.
	op := SpinService(1, 200*time.Microsecond)
	res := OpenLoop(11, 300, 20000, op)
	if res.Latency.P90 < int64(2*time.Millisecond) {
		t.Fatalf("open-loop p90 = %v; expected queueing explosion", time.Duration(res.Latency.P90))
	}
}

func TestOpenLoopUnderCapacityModest(t *testing.T) {
	op := SpinService(4, 100*time.Microsecond)
	res := OpenLoop(11, 200, 2000, op) // rho = 2000 / 40000 = 0.05
	if res.Latency.P50 > int64(5*time.Millisecond) {
		t.Fatalf("open-loop p50 at low load = %v", time.Duration(res.Latency.P50))
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestTheoreticalMM1(t *testing.T) {
	s := time.Millisecond
	if got := TheoreticalMM1Latency(0.5, s); got != 2*time.Millisecond {
		t.Fatalf("M/M/1 at rho=0.5 = %v, want 2ms", got)
	}
	if got := TheoreticalMM1Latency(1.0, s); got <= 0 {
		t.Log("saturated M/M/1 reported as +Inf duration (overflow), acceptable")
	}
}
