package workload

import (
	"fmt"
	"testing"
	"time"
)

func TestBankGenDeterministic(t *testing.T) {
	a, b := NewBank(7, 100, 0), NewBank(7, 100, 0)
	for i := 0; i < 100; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestBankGenNeverSelfTransfer(t *testing.T) {
	g := NewBank(1, 5, 0)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.From == op.To {
			t.Fatalf("self transfer at %d: %+v", i, op)
		}
		if op.From >= 5 || op.To >= 5 || op.From < 0 || op.To < 0 {
			t.Fatalf("out of range: %+v", op)
		}
		if op.Amount <= 0 {
			t.Fatalf("non-positive amount: %+v", op)
		}
	}
}

func TestBankGenHotFraction(t *testing.T) {
	g := NewBank(1, 100, 0.5)
	hot := 0
	for i := 0; i < 2000; i++ {
		if g.Next().From == 0 {
			hot++
		}
	}
	if hot < 800 || hot > 1300 {
		t.Fatalf("hot transfers = %d of 2000, want ~50%%", hot)
	}
}

func TestTPCCGenMix(t *testing.T) {
	g := NewTPCC(3, DefaultTPCCConfig(4))
	newOrders := 0
	const n = 5000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind == TPCCNewOrder {
			newOrders++
			if len(op.Items) < 5 || len(op.Items) > 15 {
				t.Fatalf("order lines = %d, want 5..15", len(op.Items))
			}
		} else if op.Amount <= 0 {
			t.Fatalf("payment with amount %d", op.Amount)
		}
		if op.Warehouse < 0 || op.Warehouse >= 4 {
			t.Fatalf("warehouse out of range: %+v", op)
		}
		if op.Remote && op.RemoteWarehouse == op.Warehouse {
			t.Fatalf("remote warehouse equals home: %+v", op)
		}
	}
	frac := float64(newOrders) / n
	if frac < 0.50 || frac > 0.60 {
		t.Fatalf("new-order fraction = %.2f, want ~0.55", frac)
	}
}

func TestTPCCKeysDeclared(t *testing.T) {
	g := NewTPCC(3, DefaultTPCCConfig(2))
	for i := 0; i < 200; i++ {
		op := g.Next()
		keys := op.Keys()
		if len(keys) == 0 {
			t.Fatal("empty key set")
		}
		seen := map[string]struct{}{}
		for _, k := range keys {
			if _, dup := seen[k]; dup {
				t.Fatalf("duplicate key %s in %v", k, keys)
			}
			seen[k] = struct{}{}
		}
	}
}

func TestTPCCSingleWarehouseNeverRemote(t *testing.T) {
	g := NewTPCC(3, DefaultTPCCConfig(1))
	for i := 0; i < 500; i++ {
		if g.Next().Remote {
			t.Fatal("remote txn with a single warehouse")
		}
	}
}

func TestMarketGenMix(t *testing.T) {
	g := NewMarket(9, DefaultMarketConfig())
	counts := map[MarketKind]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if f := float64(counts[MarketAddToCart]) / n; f < 0.55 || f > 0.65 {
		t.Fatalf("cart fraction = %.2f, want ~0.60", f)
	}
	if f := float64(counts[MarketCheckout]) / n; f < 0.07 || f > 0.13 {
		t.Fatalf("checkout fraction = %.2f, want ~0.10", f)
	}
	if counts[MarketQueryProduct] == 0 || counts[MarketUpdatePrice] == 0 {
		t.Fatalf("missing op kinds: %v", counts)
	}
}

func TestMarketZipfSkew(t *testing.T) {
	g := NewMarket(9, DefaultMarketConfig())
	hits := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		hits[g.Next().Product]++
	}
	// The hottest product should be much hotter than the median.
	max := 0
	for _, c := range hits {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Fatalf("hottest product got %d of %d; zipf skew missing", max, n)
	}
}

func TestMarketMixNormalized(t *testing.T) {
	// Fractions summing past 1 used to silently eat checkout and price
	// traffic (cumulative thresholds against one uniform draw). NewMarket
	// now normalizes proportionally, mirroring the ZipfS clamp.
	g := NewMarket(9, MarketConfig{
		Users: 10, Products: 10,
		CartFrac: 1.2, CheckoutFrac: 0.6, PriceFrac: 0.6, // sums to 2.4
		ZipfS: 1.1,
	})
	cfg := g.Config()
	if sum := cfg.CartFrac + cfg.CheckoutFrac + cfg.PriceFrac; sum > 1.0000001 {
		t.Fatalf("normalized mix sums to %.3f, want <= 1", sum)
	}
	if cfg.CartFrac/cfg.CheckoutFrac < 1.9 || cfg.CartFrac/cfg.CheckoutFrac > 2.1 {
		t.Fatalf("relative shares not preserved: cart=%.3f checkout=%.3f", cfg.CartFrac, cfg.CheckoutFrac)
	}
	counts := map[MarketKind]int{}
	const n = 6000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	// 0.6/2.4 = 25% checkouts and 25% price updates must survive.
	if f := float64(counts[MarketCheckout]) / n; f < 0.20 || f > 0.30 {
		t.Fatalf("checkout fraction = %.2f, want ~0.25 after normalization", f)
	}
	if f := float64(counts[MarketUpdatePrice]) / n; f < 0.20 || f > 0.30 {
		t.Fatalf("price fraction = %.2f, want ~0.25 after normalization", f)
	}
	if counts[MarketQueryProduct] != 0 {
		t.Fatalf("full mix left %d queries, want 0", counts[MarketQueryProduct])
	}
}

func TestMarketMixClampsNegative(t *testing.T) {
	g := NewMarket(3, MarketConfig{
		Users: 10, Products: 10,
		CartFrac: -0.5, CheckoutFrac: 0.5, PriceFrac: 0, ZipfS: 1.1,
	})
	if cfg := g.Config(); cfg.CartFrac != 0 {
		t.Fatalf("negative cart fraction kept: %.2f", cfg.CartFrac)
	}
	for i := 0; i < 500; i++ {
		if g.Next().Kind == MarketAddToCart {
			t.Fatal("cart op drawn from a zeroed cart fraction")
		}
	}
}

func TestTPCCRemoteFracSweep(t *testing.T) {
	// RemoteFrac pins the cross-warehouse rate for both transaction kinds.
	for _, tc := range []struct {
		frac     float64
		min, max float64
	}{
		{0, 0, 0},
		{0.10, 0.06, 0.14},
		{0.50, 0.44, 0.56},
		{1, 1, 1},
	} {
		cfg := DefaultTPCCConfig(4)
		cfg.RemoteFrac = RemoteFrac(tc.frac)
		g := NewTPCC(17, cfg)
		remote := 0
		const n = 3000
		for i := 0; i < n; i++ {
			if g.Next().Remote {
				remote++
			}
		}
		if f := float64(remote) / n; f < tc.min || f > tc.max {
			t.Fatalf("RemoteFrac=%.2f: observed %.3f, want in [%.2f, %.2f]", tc.frac, f, tc.min, tc.max)
		}
	}
}

func TestTPCCRemoteFracDoesNotPerturbStream(t *testing.T) {
	// Sweeping the remote rate must change only the Remote bit: every other
	// field of the seeded stream stays identical, so E17's sweep compares
	// the same transactions.
	std, all := DefaultTPCCConfig(4), DefaultTPCCConfig(4)
	all.RemoteFrac = RemoteFrac(1)
	a, b := NewTPCC(23, std), NewTPCC(23, all)
	for i := 0; i < 500; i++ {
		x, y := a.Next(), b.Next()
		x.Remote, x.RemoteWarehouse = false, 0
		y.Remote, y.RemoteWarehouse = false, 0
		if fmt.Sprint(x) != fmt.Sprint(y) {
			t.Fatalf("stream diverged at %d:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestTPCCQueryFracMix(t *testing.T) {
	// QueryFrac makes that fraction of the stream the standard's query
	// transactions, split between OrderStatus and StockLevel; StockLevel
	// descriptors carry items to inspect and a threshold in 10..20.
	cfg := DefaultTPCCConfig(2)
	cfg.QueryFrac = 0.30
	g := NewTPCC(29, cfg)
	var status, level int
	const n = 3000
	for i := 0; i < n; i++ {
		op := g.Next()
		switch op.Kind {
		case TPCCOrderStatus:
			status++
		case TPCCStockLevel:
			level++
			if len(op.Items) < 5 || len(op.Items) > 15 {
				t.Fatalf("stock-level inspects %d items, want 5..15", len(op.Items))
			}
			if op.Threshold < 10 || op.Threshold > 20 {
				t.Fatalf("stock-level threshold %d, want 10..20", op.Threshold)
			}
		}
	}
	if f := float64(status+level) / n; f < 0.25 || f > 0.35 {
		t.Fatalf("query fraction %.3f, want ~0.30", f)
	}
	if status == 0 || level == 0 {
		t.Fatalf("query kinds unbalanced: order-status=%d stock-level=%d", status, level)
	}
}

func TestTPCCQueryFracZeroKeepsStream(t *testing.T) {
	// The query draw only happens when QueryFrac > 0, so the zero config
	// reproduces the pre-knob write-only stream bit for bit (the same
	// rule as SocialGen's churn draw). Pinned against a golden prefix
	// captured before the knob could perturb anything: an unconditional
	// rng draw — the regression this guards — shifts every subsequent op.
	golden := []string{
		"new-order/w3/d2/c13/items8/amt0/remotefalse",
		"payment/w1/d1/c81/items0/amt901/remotefalse",
		"new-order/w3/d5/c31/items15/amt0/remotefalse",
		"new-order/w3/d3/c72/items8/amt0/remotefalse",
		"new-order/w1/d1/c99/items5/amt0/remotefalse",
		"new-order/w1/d2/c63/items12/amt0/remotefalse",
		"new-order/w1/d0/c27/items5/amt0/remotefalse",
		"payment/w1/d5/c74/items0/amt1307/remotefalse",
	}
	g := NewTPCC(23, DefaultTPCCConfig(4)) // QueryFrac zero by default
	for i, want := range golden {
		op := g.Next()
		got := fmt.Sprintf("%v/w%d/d%d/c%d/items%d/amt%d/remote%v",
			op.Kind, op.Warehouse, op.District, op.Customer, len(op.Items), op.Amount, op.Remote)
		if got != want {
			t.Fatalf("op %d diverged from the pre-knob stream:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestMarketKeysDeclared(t *testing.T) {
	g := NewMarket(5, DefaultMarketConfig())
	for i := 0; i < 300; i++ {
		op := g.Next()
		keys := op.Keys()
		if len(keys) == 0 {
			t.Fatalf("empty key set for %v", op.Kind)
		}
		if op.Kind == MarketCheckout && len(keys) != 4 {
			t.Fatalf("checkout declares %d keys, want 4 (cart, price, stock, order)", len(keys))
		}
	}
}

func TestSocialKeysAreFollowerTimelines(t *testing.T) {
	g := NewSocial(4, 50, 12)
	for i := 0; i < 100; i++ {
		op := g.Next()
		keys := op.Keys()
		if len(keys) != len(op.Followers)+1 {
			t.Fatalf("key set %d, want followers+posts = %d", len(keys), len(op.Followers)+1)
		}
		if keys[0] != PostsKey(op.Author) {
			t.Fatalf("first key %s, want %s", keys[0], PostsKey(op.Author))
		}
	}
}

func TestSocialGraphShape(t *testing.T) {
	g := NewSocial(4, 100, 32)
	total := 0
	for u := 0; u < 100; u++ {
		n := g.FollowerCount(u)
		if n < 1 || n > 33 {
			t.Fatalf("user %d has %d followers", u, n)
		}
		total += n
	}
	op := g.Next()
	if len(op.Followers) != g.FollowerCount(op.Author) {
		t.Fatal("op followers mismatch graph")
	}
	for _, f := range op.Followers {
		if f == op.Author {
			t.Fatal("self-follow")
		}
	}
}

func TestClosedLoopCounts(t *testing.T) {
	res := ClosedLoop(4, 25, 0, func() error { return nil })
	if res.Issued != 100 || res.Errors != 0 {
		t.Fatalf("issued=%d errors=%d", res.Issued, res.Errors)
	}
	if res.Latency.Count != 100 {
		t.Fatalf("latency samples = %d", res.Latency.Count)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestClosedLoopSelfThrottles(t *testing.T) {
	// One slot, slow service, many clients: closed loop cannot overload —
	// measured latency stays near service time × queue of clients, and
	// total time ≈ ops × service.
	op := SpinService(1, 200*time.Microsecond)
	res := ClosedLoop(4, 10, 0, op)
	// p50 bounded by clients × service time (each op waits for at most the
	// other 3 clients).
	if res.Latency.P50 > int64(10*time.Millisecond) {
		t.Fatalf("closed-loop p50 = %v, unexpectedly large", time.Duration(res.Latency.P50))
	}
}

func TestOpenLoopBeyondCapacityExplodes(t *testing.T) {
	// Capacity = 1 op / 200µs = 5000/s. Offer 4x that: queueing delay must
	// blow past anything the closed-loop test sees.
	op := SpinService(1, 200*time.Microsecond)
	res := OpenLoop(11, 300, 20000, op)
	if res.Latency.P90 < int64(2*time.Millisecond) {
		t.Fatalf("open-loop p90 = %v; expected queueing explosion", time.Duration(res.Latency.P90))
	}
}

func TestOpenLoopUnderCapacityModest(t *testing.T) {
	op := SpinService(4, 100*time.Microsecond)
	res := OpenLoop(11, 200, 2000, op) // rho = 2000 / 40000 = 0.05
	if res.Latency.P50 > int64(5*time.Millisecond) {
		t.Fatalf("open-loop p50 at low load = %v", time.Duration(res.Latency.P50))
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestTheoreticalMM1(t *testing.T) {
	s := time.Millisecond
	if got := TheoreticalMM1Latency(0.5, s); got != 2*time.Millisecond {
		t.Fatalf("M/M/1 at rho=0.5 = %v, want 2ms", got)
	}
	if got := TheoreticalMM1Latency(1.0, s); got <= 0 {
		t.Log("saturated M/M/1 reported as +Inf duration (overflow), acceptable")
	}
}

func TestSocialChurnGraphLockstep(t *testing.T) {
	// The descriptor stream and the generator's graph must stay in
	// lockstep: replaying the follow/unfollow ops onto the seed graph
	// reproduces Followers(), and every compose-post snapshot equals the
	// graph at generation time.
	const users, fanout, ops = 24, 12, 600
	shadow := map[int]map[int]bool{}
	seedGen := NewSocialChurn(5, users, fanout, 0.3)
	for u := 0; u < users; u++ {
		shadow[u] = map[int]bool{}
		for _, f := range seedGen.Followers(u) {
			shadow[u][f] = true
		}
	}
	kinds := map[SocialKind]int{}
	lastPost := int64(0)
	for i := 0; i < ops; i++ {
		op := seedGen.Next()
		kinds[op.Kind]++
		switch op.Kind {
		case SocialFollow:
			if shadow[op.Author][op.Follower] {
				t.Fatalf("op %d: follow of an existing follower %d -> %d", i, op.Follower, op.Author)
			}
			shadow[op.Author][op.Follower] = true
		case SocialUnfollow:
			if !shadow[op.Author][op.Follower] {
				t.Fatalf("op %d: unfollow of a non-follower %d -> %d", i, op.Follower, op.Author)
			}
			delete(shadow[op.Author], op.Follower)
		default:
			if op.PostID <= lastPost {
				t.Fatalf("op %d: post id %d not monotone (last %d)", i, op.PostID, lastPost)
			}
			lastPost = op.PostID
			if len(op.Followers) != len(shadow[op.Author]) {
				t.Fatalf("op %d: post snapshot has %d followers, graph has %d",
					i, len(op.Followers), len(shadow[op.Author]))
			}
			for _, f := range op.Followers {
				if !shadow[op.Author][f] {
					t.Fatalf("op %d: post snapshot includes non-follower %d", i, f)
				}
			}
		}
	}
	if kinds[SocialFollow] == 0 || kinds[SocialUnfollow] == 0 || kinds[SocialPost] == 0 {
		t.Fatalf("degenerate churn mix: %v", kinds)
	}
	// Final graph agreement.
	for u := 0; u < users; u++ {
		if got, want := seedGen.FollowerCount(u), len(shadow[u]); got != want {
			t.Fatalf("user %d: generator has %d followers, replay has %d", u, got, want)
		}
	}
}

func TestSocialChurnDeterministic(t *testing.T) {
	a, b := NewSocialChurn(9, 32, 16, 0.25), NewSocialChurn(9, 32, 16, 0.25)
	for i := 0; i < 200; i++ {
		x, y := a.Next(), b.Next()
		if x.Kind != y.Kind || x.Author != y.Author || x.PostID != y.PostID ||
			x.Follower != y.Follower || len(x.Followers) != len(y.Followers) {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

func TestSocialChurnFreeStreamIsAllPosts(t *testing.T) {
	// NewSocial keeps the pre-churn contract: every op is a compose-post.
	g := NewSocial(7, 16, 8)
	for i := 0; i < 100; i++ {
		if op := g.Next(); op.Kind != SocialPost {
			t.Fatalf("op %d: churn-free generator produced %v", i, op.Kind)
		}
	}
}

func TestSocialOpKeysByKind(t *testing.T) {
	post := SocialOp{Kind: SocialPost, Author: 1, PostID: 3, Followers: []int{2, 4}}
	if got := post.Keys(); len(got) != 3 || got[0] != PostsKey(1) ||
		got[1] != TimelineKey(2) || got[2] != TimelineKey(4) {
		t.Fatalf("post keys = %v", got)
	}
	follow := SocialOp{Kind: SocialFollow, Author: 1, Follower: 9}
	if got := follow.Keys(); len(got) != 1 || got[0] != FollowKey(1, 9) {
		t.Fatalf("follow keys = %v", got)
	}
}
