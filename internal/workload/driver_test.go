package workload

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// gaps draws n inter-arrival gaps from an arrival process.
func gaps(a ArrivalProcess, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = a.Gap()
	}
	return out
}

// TestArrivalsSeedStable pins the reproducibility contract: the same seed
// must produce the identical arrival schedule (that is what makes an
// open-loop sweep comparable between shed=on and shed=off), and a
// different seed must produce a different one.
func TestArrivalsSeedStable(t *testing.T) {
	mk := map[string]func(seed int64) ArrivalProcess{
		"poisson": func(seed int64) ArrivalProcess { return NewPoissonArrivals(seed, 5000) },
		"mmpp":    func(seed int64) ArrivalProcess { return NewMMPPArrivals(seed, 5000, 4, 10*time.Millisecond) },
	}
	for name, newProc := range mk {
		t.Run(name, func(t *testing.T) {
			const n = 512
			a, b := gaps(newProc(7), n), gaps(newProc(7), n)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("gap %d diverged under the same seed: %v vs %v", i, a[i], b[i])
				}
			}
			c := gaps(newProc(8), n)
			same := 0
			for i := range a {
				if a[i] == c[i] {
					same++
				}
			}
			if same == n {
				t.Fatal("different seeds produced the identical schedule")
			}
		})
	}
}

// TestMMPPMeanRate checks the modulation is rate-neutral: the two-state
// process must offer the configured long-run mean, only clumpier.
func TestMMPPMeanRate(t *testing.T) {
	const rate = 10000.0
	const n = 20000
	var total time.Duration
	for _, g := range gaps(NewMMPPArrivals(3, rate, 4, 10*time.Millisecond), n) {
		total += g
	}
	got := float64(n) / total.Seconds()
	if math.Abs(got-rate)/rate > 0.25 {
		t.Fatalf("MMPP mean rate = %.0f/s, want within 25%% of %.0f/s", got, rate)
	}
}

// TestOpenLoopRejectsInvalidRate pins the validation: a non-positive rate
// or count returns an empty result immediately — the op never runs and
// the driver never spins on a zero gap.
func TestOpenLoopRejectsInvalidRate(t *testing.T) {
	var calls atomic.Int64
	op := func() error { calls.Add(1); return nil }
	for _, tc := range []struct {
		rate float64
		n    int
	}{{0, 10}, {-5, 10}, {100, 0}, {100, -1}} {
		res := OpenLoop(1, tc.n, tc.rate, op)
		if res.Issued != 0 || res.Errors != 0 || res.Elapsed != 0 {
			t.Fatalf("OpenLoop(rate=%g, n=%d) = %+v, want zero result", tc.rate, tc.n, res)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("invalid open-loop configs ran the op %d times", calls.Load())
	}
}

func TestLatencyReservoirExactWhenUnderCap(t *testing.T) {
	r := NewLatencyReservoir(1000, 1)
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if got := r.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	if got := r.Max(); got != 1000*time.Microsecond {
		t.Fatalf("Max = %v, want 1ms", got)
	}
	if got := r.P50(); got != 501*time.Microsecond {
		t.Fatalf("P50 = %v, want 501µs", got)
	}
	if got := r.P99(); got != 991*time.Microsecond {
		t.Fatalf("P99 = %v, want 991µs", got)
	}
	if got := r.Quantile(1); got != 1000*time.Microsecond {
		t.Fatalf("Quantile(1) = %v, want the exact max", got)
	}
}

// TestLatencyReservoirBoundedMemory pins the whole point: far more
// observations than capacity, fixed retention, quantiles still drawn from
// a uniform sample of the stream, and the exact max never sampled away.
func TestLatencyReservoirBoundedMemory(t *testing.T) {
	r := NewLatencyReservoir(64, 2)
	const n = 100000
	for i := 1; i <= n; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if got := r.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	if got := len(r.samples); got != 64 {
		t.Fatalf("retained %d samples, want 64", got)
	}
	if got := r.Max(); got != n*time.Microsecond {
		t.Fatalf("Max = %v, want %v (exact max must survive sampling)", got, n*time.Microsecond)
	}
	// The median of a uniform sample of 1..n concentrates near n/2; a
	// reservoir that kept only early (or late) observations would sit at
	// an extreme.
	p50 := r.P50()
	if p50 < n/10*time.Microsecond || p50 > 9*n/10*time.Microsecond {
		t.Fatalf("P50 = %v, not plausibly a uniform sample of 1..%dµs", p50, n)
	}
	if r.Quantile(0.999) > r.Max() {
		t.Fatal("quantile exceeded the exact max")
	}
}

func TestLatencyReservoirEmpty(t *testing.T) {
	r := NewLatencyReservoir(0, 1)
	if r.P50() != 0 || r.P99() != 0 || r.P999() != 0 || r.Max() != 0 || r.Count() != 0 {
		t.Fatal("empty reservoir must report zeros")
	}
}
