package workload

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// defaultReservoirCap bounds a LatencyReservoir's memory when the caller
// passes zero: large enough that p999 over a typical run rests on real
// samples, small enough that a per-row reservoir costs ~32KiB.
const defaultReservoirCap = 4096

// LatencyReservoir estimates latency quantiles (p50/p99/p999) from a
// bounded uniform sample — Vitter's Algorithm R. Memory is fixed at the
// capacity regardless of how many durations are recorded, which is what
// lets the open-loop overload runs (millions of arrivals at 4× capacity)
// keep exact-enough tails without keeping every sample. The maximum is
// tracked exactly: the single worst observation must never be sampled
// away from a tail estimate. Safe for concurrent use.
type LatencyReservoir struct {
	mu      sync.Mutex
	rng     *rand.Rand
	samples []time.Duration
	n       int64         // total recorded
	max     time.Duration // exact maximum
}

// NewLatencyReservoir creates a reservoir holding at most capacity
// samples (zero means 4096). seed fixes the sampling choices, so a run is
// reproducible end to end when its op stream is.
func NewLatencyReservoir(capacity int, seed int64) *LatencyReservoir {
	if capacity <= 0 {
		capacity = defaultReservoirCap
	}
	return &LatencyReservoir{
		rng:     rand.New(rand.NewSource(seed)),
		samples: make([]time.Duration, 0, capacity),
	}
}

// Record adds one observation.
func (r *LatencyReservoir) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if d > r.max {
		r.max = d
	}
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, d)
		return
	}
	// Algorithm R: replace a uniform slot with probability cap/n.
	if j := r.rng.Int63n(r.n); j < int64(cap(r.samples)) {
		r.samples[j] = d
	}
}

// Samples returns a copy of the retained sample set — the bounded
// uniform subsample the quantiles are computed from. Grid runs pool the
// sets across repeats for a pooled tail estimate (grid.PooledQuantile)
// instead of averaging per-repeat quantiles.
func (r *LatencyReservoir) Samples() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.samples...)
}

// Count returns how many observations were recorded (not retained).
func (r *LatencyReservoir) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Max returns the exact maximum observation.
func (r *LatencyReservoir) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sampled
// distribution; q = 1 returns the exact maximum. Zero observations
// return zero.
func (r *LatencyReservoir) Quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	if q >= 1 {
		return r.max
	}
	if q < 0 {
		q = 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// P50 returns the median.
func (r *LatencyReservoir) P50() time.Duration { return r.Quantile(0.50) }

// P99 returns the 99th percentile.
func (r *LatencyReservoir) P99() time.Duration { return r.Quantile(0.99) }

// P999 returns the 99.9th percentile.
func (r *LatencyReservoir) P999() time.Duration { return r.Quantile(0.999) }
