package workload

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/metrics"
)

// Op is the unit of work a driver executes.
type Op func() error

// DriverResult summarizes one load run.
type DriverResult struct {
	// Issued and Errors count operations.
	Issued, Errors int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Latency is the response-time distribution. Under the open-loop
	// driver it includes queueing delay from the request's scheduled
	// arrival time — the number that explodes at saturation (ref [56]).
	Latency metrics.Snapshot
}

// Throughput returns completed operations per second.
func (r DriverResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Issued-r.Errors) / r.Elapsed.Seconds()
}

// ClosedLoop runs n client goroutines, each issuing ops back to back with
// the given think time, for the given number of operations per client.
// Closed systems self-throttle: when the server slows down, the arrival
// rate drops with it, hiding saturation from the latency distribution.
func ClosedLoop(clients, opsPerClient int, think time.Duration, op Op) DriverResult {
	hist := metrics.NewHistogram()
	var errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				t0 := time.Now()
				err := op()
				hist.RecordDuration(time.Since(t0))
				if err != nil {
					errs.Add(1)
				}
				if think > 0 {
					time.Sleep(think)
				}
			}
		}()
	}
	wg.Wait()
	return DriverResult{
		Issued:  int64(clients * opsPerClient),
		Errors:  errs.Load(),
		Elapsed: time.Since(start),
		Latency: hist.Snapshot(),
	}
}

// OpenLoop issues n operations with Poisson arrivals at the given rate
// (ops/second), regardless of how the server keeps up. Latency is measured
// from the *scheduled arrival time*, so queueing delay counts: when the
// offered rate exceeds capacity, latency grows without bound — the
// open-vs-closed contrast of ref [56].
func OpenLoop(seed int64, n int, rate float64, op Op) DriverResult {
	rng := rand.New(rand.NewSource(seed))
	hist := metrics.NewHistogram()
	var errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	next := start
	for i := 0; i < n; i++ {
		// Exponential inter-arrival.
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		next = next.Add(gap)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		scheduled := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := op()
			hist.RecordDuration(time.Since(scheduled))
			if err != nil {
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	return DriverResult{
		Issued:  int64(n),
		Errors:  errs.Load(),
		Elapsed: time.Since(start),
		Latency: hist.Snapshot(),
	}
}

// SpinService returns an Op that busy-spins for d with at most c
// concurrent executions — a stand-in server with capacity c/d ops/sec,
// used by the load-model experiments. The spin yields the processor each
// turn so a fleet of driver goroutines parked here cannot starve the cell
// goroutines (executors, choreographies) they share the runtime with.
func SpinService(c int, d time.Duration) Op {
	slots := make(chan struct{}, c)
	return func() error {
		slots <- struct{}{}
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			runtime.Gosched()
		}
		<-slots
		return nil
	}
}

// TheoreticalMM1Latency returns the M/M/1 expected response time for
// offered load rho = lambda/mu and service time s — the analytic check the
// open-loop experiment compares against.
func TheoreticalMM1Latency(rho float64, s time.Duration) time.Duration {
	if rho >= 1 {
		return time.Duration(math.Inf(1))
	}
	return time.Duration(float64(s) / (1 - rho))
}
