package workload

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/metrics"
)

// Op is the unit of work a driver executes.
type Op func() error

// DriverResult summarizes one load run.
type DriverResult struct {
	// Issued and Errors count operations.
	Issued, Errors int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Latency is the response-time distribution. Under the open-loop
	// driver it includes queueing delay from the request's scheduled
	// arrival time — the number that explodes at saturation (ref [56]).
	Latency metrics.Snapshot
	// P99 is the tail of the same distribution, from a bounded reservoir
	// (LatencyReservoir) — the column the experiment tables report.
	P99 time.Duration
	// LatencySamples is the reservoir's retained sample set, exported so
	// grid repeats can pool their tails (grid.PooledQuantile).
	LatencySamples []time.Duration
}

// Throughput returns completed operations per second.
func (r DriverResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Issued-r.Errors) / r.Elapsed.Seconds()
}

// ClosedLoop runs n client goroutines, each issuing ops back to back with
// the given think time, for the given number of operations per client.
// Closed systems self-throttle: when the server slows down, the arrival
// rate drops with it, hiding saturation from the latency distribution.
func ClosedLoop(clients, opsPerClient int, think time.Duration, op Op) DriverResult {
	hist := metrics.NewHistogram()
	res := NewLatencyReservoir(0, 1)
	var errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				t0 := time.Now()
				err := op()
				d := time.Since(t0)
				hist.RecordDuration(d)
				res.Record(d)
				if err != nil {
					errs.Add(1)
				}
				if think > 0 {
					time.Sleep(think)
				}
			}
		}()
	}
	wg.Wait()
	return DriverResult{
		Issued:         int64(clients * opsPerClient),
		Errors:         errs.Load(),
		Elapsed:        time.Since(start),
		Latency:        hist.Snapshot(),
		P99:            res.P99(),
		LatencySamples: res.Samples(),
	}
}

// ArrivalProcess generates the inter-arrival gaps of an open-loop load
// stream. Implementations are deterministic per seed: the same seed
// produces the identical arrival schedule, which is what makes open-loop
// runs comparable across configurations.
type ArrivalProcess interface {
	// Gap returns the time until the next arrival.
	Gap() time.Duration
}

// poissonArrivals draws exponential inter-arrival gaps — the memoryless
// arrival process of the M/M/1 model.
type poissonArrivals struct {
	rng  *rand.Rand
	rate float64
}

// NewPoissonArrivals returns Poisson arrivals at rate ops/second.
// Non-positive rates are invalid; callers should validate (OpenLoop does).
func NewPoissonArrivals(seed int64, rate float64) ArrivalProcess {
	return &poissonArrivals{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

func (p *poissonArrivals) Gap() time.Duration {
	return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// mmppArrivals is a two-state Markov-modulated Poisson process: a "calm"
// state and a "burst" state, each Poisson at its own rate, with
// exponentially distributed dwell times. The long-run mean rate equals the
// configured rate (the states' rates are rate·2/(b+1) and rate·2b/(b+1)
// with equal expected dwell), so an MMPP sweep offers the same average
// load as a Poisson sweep — only clumpier: bursts at b× the calm rate,
// which is what stresses a bounded queue harder than smooth arrivals.
type mmppArrivals struct {
	rng   *rand.Rand
	rates [2]float64 // calm, burst
	dwell time.Duration
	state int
	left  time.Duration // remaining dwell in the current state
}

// NewMMPPArrivals returns bursty (Markov-modulated Poisson) arrivals with
// long-run mean rate ops/second. burst is the burst-to-calm rate ratio
// (values <= 1 degenerate to Poisson), dwell the expected time in each
// state (zero means 10ms).
func NewMMPPArrivals(seed int64, rate, burst float64, dwell time.Duration) ArrivalProcess {
	if burst < 1 {
		burst = 1
	}
	if dwell <= 0 {
		dwell = 10 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(seed))
	m := &mmppArrivals{
		rng:   rng,
		rates: [2]float64{rate * 2 / (burst + 1), rate * 2 * burst / (burst + 1)},
		dwell: dwell,
	}
	m.left = m.drawDwell()
	return m
}

func (m *mmppArrivals) drawDwell() time.Duration {
	return time.Duration(m.rng.ExpFloat64() * float64(m.dwell))
}

// Gap advances across state boundaries: when the next exponential draw
// overshoots the remaining dwell, the process flips state at the boundary
// and redraws from there — exact, because the exponential is memoryless.
func (m *mmppArrivals) Gap() time.Duration {
	var elapsed time.Duration
	for {
		gap := time.Duration(m.rng.ExpFloat64() / m.rates[m.state] * float64(time.Second))
		if gap < m.left {
			m.left -= gap
			return elapsed + gap
		}
		elapsed += m.left
		m.state = 1 - m.state
		m.left = m.drawDwell()
	}
}

// OpenLoop issues n operations with Poisson arrivals at the given rate
// (ops/second), regardless of how the server keeps up. Latency is measured
// from the *scheduled arrival time*, so queueing delay counts: when the
// offered rate exceeds capacity, latency grows without bound — the
// open-vs-closed contrast of ref [56]. A non-positive rate or n is invalid
// and returns an empty result immediately instead of spinning.
func OpenLoop(seed int64, n int, rate float64, op Op) DriverResult {
	if rate <= 0 || n <= 0 {
		return DriverResult{}
	}
	return OpenLoopArrivals(NewPoissonArrivals(seed, rate), n, op)
}

// OpenLoopArrivals is OpenLoop under any arrival process — the driver the
// overload experiments use with bursty (MMPP) arrivals.
func OpenLoopArrivals(arrivals ArrivalProcess, n int, op Op) DriverResult {
	hist := metrics.NewHistogram()
	res := NewLatencyReservoir(0, 1)
	var errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	next := start
	for i := 0; i < n; i++ {
		next = next.Add(arrivals.Gap())
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		scheduled := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := op()
			d := time.Since(scheduled)
			hist.RecordDuration(d)
			res.Record(d)
			if err != nil {
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	return DriverResult{
		Issued:         int64(n),
		Errors:         errs.Load(),
		Elapsed:        time.Since(start),
		Latency:        hist.Snapshot(),
		P99:            res.P99(),
		LatencySamples: res.Samples(),
	}
}

// SpinService returns an Op that busy-spins for d with at most c
// concurrent executions — a stand-in server with capacity c/d ops/sec,
// used by the load-model experiments. The spin yields the processor each
// turn so a fleet of driver goroutines parked here cannot starve the cell
// goroutines (executors, choreographies) they share the runtime with.
func SpinService(c int, d time.Duration) Op {
	slots := make(chan struct{}, c)
	return func() error {
		slots <- struct{}{}
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			runtime.Gosched()
		}
		<-slots
		return nil
	}
}

// TheoreticalMM1Latency returns the M/M/1 expected response time for
// offered load rho = lambda/mu and service time s — the analytic check the
// open-loop experiment compares against.
func TheoreticalMM1Latency(rho float64, s time.Duration) time.Duration {
	if rho >= 1 {
		return time.Duration(math.Inf(1))
	}
	return time.Duration(float64(s) / (1 - rho))
}
