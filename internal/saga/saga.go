// Package saga implements the eventual-consistency coordination pattern the
// paper identifies as the microservice status quo (§4.2: "Practitioners
// also refer to this eventual consistency model through sagas or patterns
// like orchestration and workflows"). A saga is a sequence of local
// transactions, each with a compensating action; if step i fails, the
// compensations of steps i-1..0 run in reverse order. The saga guarantees
// *atomicity eventually* (every saga either completes or is fully
// compensated) but provides **no isolation**: other requests observe the
// intermediate states — the fundamental contrast with 2PC (internal/xa)
// that experiment E3 measures.
//
// The orchestrator persists a saga log before and after every action, so a
// crashed orchestrator resumes (or compensates) in-flight sagas on restart
// — as long as steps are idempotent, the log replay is safe, which is the
// usual saga contract.
package saga

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"tca/internal/metrics"
	"tca/internal/store"
)

// Common saga errors.
var (
	ErrUnknownSaga = errors.New("saga: unknown saga definition")
	ErrCompensated = errors.New("saga: failed and compensated")
	ErrStuck       = errors.New("saga: compensation failed; manual intervention required")
)

// Ctx carries a saga instance's data between steps. Steps communicate by
// mutating Data (persisted with the log, so recovery sees it).
type Ctx struct {
	// SagaID identifies the instance.
	SagaID string
	// Data is the saga's shared state (JSON-serializable values only).
	Data map[string]any
}

// Step is one local transaction plus its compensation.
type Step struct {
	// Name identifies the step in the log.
	Name string
	// Action performs the step. It must be idempotent: recovery may
	// re-execute an action whose completion was not logged.
	Action func(c *Ctx) error
	// Compensate semantically undoes Action. It must be idempotent and
	// should not fail; a failing compensation leaves the saga stuck.
	// nil means the step needs no compensation.
	Compensate func(c *Ctx) error
}

// Definition is a named, ordered list of steps.
type Definition struct {
	Name  string
	Steps []Step
}

// status values persisted in the saga log.
const (
	statusRunning      = "running"
	statusCompensating = "compensating"
	statusCompleted    = "completed"
	statusCompensated  = "compensated"
	statusStuck        = "stuck"
)

// logEntry is the persisted state of one saga instance.
type logEntry struct {
	Saga   string `json:"saga"`
	Status string `json:"status"`
	// NextStep is the first step that has NOT completed (forward phase) or
	// the next to compensate minus one (backward phase).
	NextStep int            `json:"next_step"`
	Data     map[string]any `json:"data"`
}

// Orchestrator executes sagas with a durable log.
type Orchestrator struct {
	db *store.DB
	m  *metrics.Registry

	mu   sync.RWMutex
	defs map[string]*Definition
}

// NewOrchestrator creates an orchestrator logging to db (nil = dedicated).
func NewOrchestrator(db *store.DB) *Orchestrator {
	if db == nil {
		db = store.NewDB(store.Config{Name: "saga-log"})
	}
	db.CreateTable("saga_log")
	return &Orchestrator{db: db, m: metrics.NewRegistry(), defs: make(map[string]*Definition)}
}

// Metrics returns the orchestrator's instruments.
func (o *Orchestrator) Metrics() *metrics.Registry { return o.m }

// Register makes a saga definition executable (and recoverable: recovery
// needs the definition to resume an instance found in the log).
func (o *Orchestrator) Register(def *Definition) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.defs[def.Name] = def
}

func (o *Orchestrator) definition(name string) (*Definition, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	d, ok := o.defs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSaga, name)
	}
	return d, nil
}

// writeLog persists the instance state.
func (o *Orchestrator) writeLog(id string, e logEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("saga: marshal log: %w", err)
	}
	tx := o.db.Begin(store.ReadCommitted)
	if err := tx.Put("saga_log", id, store.Row{"entry": string(raw)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (o *Orchestrator) readLog(id string) (logEntry, bool, error) {
	tx := o.db.Begin(store.ReadCommitted)
	defer tx.Abort()
	row, ok, err := tx.Get("saga_log", id)
	if err != nil || !ok {
		return logEntry{}, false, err
	}
	var e logEntry
	if err := json.Unmarshal([]byte(row.Str("entry")), &e); err != nil {
		return logEntry{}, false, fmt.Errorf("saga: unmarshal log: %w", err)
	}
	return e, true, nil
}

// Execute runs one saga instance to completion or compensation.
// Returns nil on success, ErrCompensated (wrapping the step error) when the
// saga failed and rolled back, ErrStuck if a compensation failed.
func (o *Orchestrator) Execute(def *Definition, id string, data map[string]any) error {
	o.Register(def)
	if data == nil {
		data = map[string]any{}
	}
	e := logEntry{Saga: def.Name, Status: statusRunning, NextStep: 0, Data: data}
	if err := o.writeLog(id, e); err != nil {
		return err
	}
	return o.drive(def, id, e)
}

// drive advances an instance from its logged position.
func (o *Orchestrator) drive(def *Definition, id string, e logEntry) error {
	c := &Ctx{SagaID: id, Data: e.Data}
	if e.Status == statusRunning {
		for i := e.NextStep; i < len(def.Steps); i++ {
			step := def.Steps[i]
			if err := step.Action(c); err != nil {
				o.m.Counter("saga.step_failures").Inc()
				// Switch to the backward phase: compensate steps [0, i).
				e.Status = statusCompensating
				e.NextStep = i // first NOT completed
				e.Data = c.Data
				if werr := o.writeLog(id, e); werr != nil {
					return werr
				}
				return o.compensate(def, id, e, err)
			}
			e.NextStep = i + 1
			e.Data = c.Data
			if err := o.writeLog(id, e); err != nil {
				return err
			}
		}
		e.Status = statusCompleted
		if err := o.writeLog(id, e); err != nil {
			return err
		}
		o.m.Counter("saga.completed").Inc()
		return nil
	}
	if e.Status == statusCompensating {
		return o.compensate(def, id, e, errors.New("resumed during compensation"))
	}
	return nil // completed / compensated / stuck: nothing to drive
}

// compensate runs compensations for steps [0, e.NextStep) in reverse.
func (o *Orchestrator) compensate(def *Definition, id string, e logEntry, cause error) error {
	c := &Ctx{SagaID: id, Data: e.Data}
	for i := e.NextStep - 1; i >= 0; i-- {
		step := def.Steps[i]
		if step.Compensate != nil {
			if err := step.Compensate(c); err != nil {
				e.Status = statusStuck
				e.NextStep = i + 1
				e.Data = c.Data
				if werr := o.writeLog(id, e); werr != nil {
					return werr
				}
				o.m.Counter("saga.stuck").Inc()
				return fmt.Errorf("%w: step %s: %w", ErrStuck, step.Name, err)
			}
		}
		e.NextStep = i
		e.Data = c.Data
		if err := o.writeLog(id, e); err != nil {
			return err
		}
	}
	e.Status = statusCompensated
	if err := o.writeLog(id, e); err != nil {
		return err
	}
	o.m.Counter("saga.compensated").Inc()
	return fmt.Errorf("%w: %w", ErrCompensated, cause)
}

// Status returns the logged status of a saga instance.
func (o *Orchestrator) Status(id string) (string, bool, error) {
	e, ok, err := o.readLog(id)
	if err != nil || !ok {
		return "", false, err
	}
	return e.Status, true, nil
}

// Recover resumes every unfinished saga instance found in the log — the
// crash-restart path. Completed and compensated instances are skipped.
// Returns the number of instances resumed.
func (o *Orchestrator) Recover() (int, error) {
	type pending struct {
		id string
		e  logEntry
	}
	var todo []pending
	tx := o.db.Begin(store.SnapshotIsolation)
	err := tx.Scan("saga_log", "", "", func(id string, row store.Row) bool {
		var e logEntry
		if json.Unmarshal([]byte(row.Str("entry")), &e) != nil {
			return true
		}
		if e.Status == statusRunning || e.Status == statusCompensating {
			todo = append(todo, pending{id: id, e: e})
		}
		return true
	})
	tx.Abort()
	if err != nil {
		return 0, err
	}
	for _, p := range todo {
		def, err := o.definition(p.e.Saga)
		if err != nil {
			return 0, err
		}
		// Errors here are the saga's own outcome (compensated), not a
		// recovery failure.
		_ = o.drive(def, p.id, p.e)
		o.m.Counter("saga.recovered").Inc()
	}
	return len(todo), nil
}
