package saga

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tca/internal/mq"
	"tca/internal/store"
)

// bookingEnv is a three-service trip booking used across the tests: flight,
// hotel, payment — the canonical saga example.
type bookingEnv struct {
	db *store.DB
}

func newBookingEnv() *bookingEnv {
	db := store.NewDB(store.Config{Name: "booking"})
	db.CreateTable("bookings")
	return &bookingEnv{db: db}
}

func (b *bookingEnv) set(key string, v int64) error {
	return b.db.Update(func(tx *store.Txn) error {
		return tx.Put("bookings", key, store.Row{"v": v})
	})
}

func (b *bookingEnv) get(key string) int64 {
	tx := b.db.Begin(store.ReadCommitted)
	defer tx.Abort()
	row, ok, _ := tx.Get("bookings", key)
	if !ok {
		return 0
	}
	return row.Int("v")
}

func (b *bookingEnv) def(failAt string) *Definition {
	step := func(name string) Step {
		return Step{
			Name: name,
			Action: func(c *Ctx) error {
				if failAt == name {
					return fmt.Errorf("%s unavailable", name)
				}
				return b.set(c.SagaID+"/"+name, 1)
			},
			Compensate: func(c *Ctx) error {
				return b.set(c.SagaID+"/"+name, 0)
			},
		}
	}
	return &Definition{Name: "trip", Steps: []Step{step("flight"), step("hotel"), step("payment")}}
}

func TestSagaCompletes(t *testing.T) {
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	if err := o.Execute(env.def(""), "s1", nil); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"flight", "hotel", "payment"} {
		if env.get("s1/"+svc) != 1 {
			t.Fatalf("%s not booked", svc)
		}
	}
	st, ok, _ := o.Status("s1")
	if !ok || st != statusCompleted {
		t.Fatalf("status = %q, want completed", st)
	}
}

func TestSagaCompensatesOnFailure(t *testing.T) {
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	err := o.Execute(env.def("payment"), "s2", nil)
	if !errors.Is(err, ErrCompensated) {
		t.Fatalf("err = %v, want ErrCompensated", err)
	}
	// flight and hotel were booked then compensated; payment never ran.
	for _, svc := range []string{"flight", "hotel", "payment"} {
		if env.get("s2/"+svc) != 0 {
			t.Fatalf("%s left booked after compensation", svc)
		}
	}
	st, _, _ := o.Status("s2")
	if st != statusCompensated {
		t.Fatalf("status = %q, want compensated", st)
	}
}

func TestSagaFirstStepFailureNothingToCompensate(t *testing.T) {
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	err := o.Execute(env.def("flight"), "s3", nil)
	if !errors.Is(err, ErrCompensated) {
		t.Fatalf("err = %v", err)
	}
	if env.get("s3/flight") != 0 {
		t.Fatal("flight should never have been booked")
	}
}

func TestSagaDataFlowsBetweenSteps(t *testing.T) {
	o := NewOrchestrator(nil)
	def := &Definition{Name: "pipeline", Steps: []Step{
		{Name: "a", Action: func(c *Ctx) error { c.Data["x"] = "from-a"; return nil }},
		{Name: "b", Action: func(c *Ctx) error {
			if c.Data["x"] != "from-a" {
				return fmt.Errorf("data lost: %v", c.Data)
			}
			return nil
		}},
	}}
	if err := o.Execute(def, "p1", map[string]any{}); err != nil {
		t.Fatal(err)
	}
}

func TestSagaStuckOnCompensationFailure(t *testing.T) {
	o := NewOrchestrator(nil)
	def := &Definition{Name: "bad", Steps: []Step{
		{
			Name:       "s0",
			Action:     func(c *Ctx) error { return nil },
			Compensate: func(c *Ctx) error { return errors.New("compensation broken") },
		},
		{Name: "s1", Action: func(c *Ctx) error { return errors.New("fail") }},
	}}
	err := o.Execute(def, "x1", nil)
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
	st, _, _ := o.Status("x1")
	if st != statusStuck {
		t.Fatalf("status = %q, want stuck", st)
	}
}

func TestSagaRecoveryResumesForward(t *testing.T) {
	// Simulate an orchestrator crash after step 0 by writing the log that
	// state would have, then Recover must drive steps 1..2.
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	def := env.def("")
	o.Register(def)
	env.set("r1/flight", 1) // step 0's effect happened
	if err := o.writeLog("r1", logEntry{Saga: "trip", Status: statusRunning, NextStep: 1, Data: map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	n, err := o.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sagas, want 1", n)
	}
	for _, svc := range []string{"flight", "hotel", "payment"} {
		if env.get("r1/"+svc) != 1 {
			t.Fatalf("%s not booked after recovery", svc)
		}
	}
	st, _, _ := o.Status("r1")
	if st != statusCompleted {
		t.Fatalf("status = %q", st)
	}
}

func TestSagaRecoveryResumesCompensation(t *testing.T) {
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	def := env.def("")
	o.Register(def)
	// Crash mid-compensation: steps 0,1 done, compensation pending.
	env.set("r2/flight", 1)
	env.set("r2/hotel", 1)
	if err := o.writeLog("r2", logEntry{Saga: "trip", Status: statusCompensating, NextStep: 2, Data: map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Recover(); err != nil {
		t.Fatal(err)
	}
	if env.get("r2/flight") != 0 || env.get("r2/hotel") != 0 {
		t.Fatal("compensation not completed on recovery")
	}
	st, _, _ := o.Status("r2")
	if st != statusCompensated {
		t.Fatalf("status = %q", st)
	}
}

func TestSagaRecoverySkipsFinished(t *testing.T) {
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	o.Register(env.def(""))
	o.Execute(env.def(""), "done1", nil)
	n, err := o.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("recovered %d, want 0", n)
	}
}

func TestSagaNoIsolationDirtyReads(t *testing.T) {
	// The saga's defining weakness: mid-saga state is visible. Step 1
	// books the flight; before the saga fails at payment and compensates,
	// an outside observer sees the flight as booked.
	env := newBookingEnv()
	o := NewOrchestrator(nil)
	var observedMidSaga int64
	def := env.def("")
	def.Steps[2].Action = func(c *Ctx) error {
		observedMidSaga = env.get(c.SagaID + "/flight") // outside observer
		return errors.New("payment down")
	}
	err := o.Execute(def, "iso1", nil)
	if !errors.Is(err, ErrCompensated) {
		t.Fatal(err)
	}
	if observedMidSaga != 1 {
		t.Fatal("expected the dirty read: sagas do not isolate")
	}
	if env.get("iso1/flight") != 0 {
		t.Fatal("compensation failed")
	}
}

// --- choreography ------------------------------------------------------------

func TestChoreographyCompletes(t *testing.T) {
	env := newBookingEnv()
	broker := mq.NewBroker()
	ch := NewChoreography(broker, "trip", env.def(""))
	ch.Start()
	defer ch.Stop()
	if err := ch.Run("c1", map[string]any{}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"flight", "hotel", "payment"} {
		if env.get("c1/"+svc) != 1 {
			t.Fatalf("%s not booked", svc)
		}
	}
}

func TestChoreographyCompensates(t *testing.T) {
	env := newBookingEnv()
	broker := mq.NewBroker()
	ch := NewChoreography(broker, "trip2", env.def("payment"))
	ch.Start()
	defer ch.Stop()
	err := ch.Run("c2", map[string]any{}, 5*time.Second)
	if !errors.Is(err, ErrCompensated) {
		t.Fatalf("err = %v, want ErrCompensated", err)
	}
	for _, svc := range []string{"flight", "hotel"} {
		if env.get("c2/"+svc) != 0 {
			t.Fatalf("%s left booked", svc)
		}
	}
}

func TestChoreographyConcurrentInstances(t *testing.T) {
	env := newBookingEnv()
	broker := mq.NewBroker()
	ch := NewChoreography(broker, "trip3", env.def(""))
	ch.Start()
	defer ch.Stop()
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		go func(i int) {
			errs <- ch.Run(fmt.Sprintf("cc%d", i), map[string]any{}, 5*time.Second)
		}(i)
	}
	for i := 0; i < 10; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownSagaDefinition(t *testing.T) {
	o := NewOrchestrator(nil)
	if _, err := o.definition("ghost"); !errors.Is(err, ErrUnknownSaga) {
		t.Fatalf("err = %v", err)
	}
}
