package saga

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"tca/internal/dedup"
	"tca/internal/mq"
)

// Choreography is the decentralized saga variant: no orchestrator, each
// step is an independent worker reacting to events on the message broker.
// Success events trigger the next step; failure events trigger the
// compensation chain backwards. Delivery is at-least-once, so every worker
// dedups by saga id — the idempotency burden §3.2 places on applications
// shows up here as code, not as prose.
type Choreography struct {
	name   string
	broker *mq.Broker
	def    *Definition

	mu      sync.Mutex
	results map[string]chan error // sagaID -> completion
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// choreoEvent is the wire format of saga progress events.
type choreoEvent struct {
	SagaID string         `json:"id"`
	Step   int            `json:"step"`
	Data   map[string]any `json:"data"`
	// Compensating marks the backward chain; Cause preserves the failure.
	Compensating bool   `json:"comp,omitempty"`
	Cause        string `json:"cause,omitempty"`
}

// NewChoreography wires a definition to broker topics. Call Start to launch
// the step workers.
func NewChoreography(broker *mq.Broker, name string, def *Definition) *Choreography {
	c := &Choreography{name: name, broker: broker, def: def, results: make(map[string]chan error)}
	for i := range def.Steps {
		broker.CreateTopic(c.stepTopic(i), 1)
	}
	broker.CreateTopic(c.doneTopic(), 1)
	return c
}

func (c *Choreography) stepTopic(i int) string { return "saga." + c.name + fmt.Sprintf(".step%d", i) }
func (c *Choreography) doneTopic() string      { return "saga." + c.name + ".done" }

// Start launches one worker per step plus the completion listener.
func (c *Choreography) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	for i := range c.def.Steps {
		c.wg.Add(1)
		go c.runStepWorker(i)
	}
	c.wg.Add(1)
	go c.runDoneListener()
}

// Stop halts the workers.
func (c *Choreography) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

// Run starts a saga instance and waits for its outcome: nil on completion,
// ErrCompensated on rollback.
func (c *Choreography) Run(id string, data map[string]any, timeout time.Duration) error {
	ch := make(chan error, 1)
	c.mu.Lock()
	c.results[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.results, id)
		c.mu.Unlock()
	}()
	if err := c.publish(c.stepTopic(0), choreoEvent{SagaID: id, Step: 0, Data: data}); err != nil {
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("saga: choreography %s/%s timed out", c.name, id)
	}
}

func (c *Choreography) publish(topic string, ev choreoEvent) error {
	raw, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, _, err = c.broker.NewProducer("").Send(topic, ev.SagaID, raw)
	return err
}

// runStepWorker consumes step-i events: forward events execute the action;
// backward events execute the compensation.
func (c *Choreography) runStepWorker(i int) {
	defer c.wg.Done()
	group := fmt.Sprintf("%s-step%d", c.name, i)
	consumer, err := c.broker.NewConsumer(group, mq.AtLeastOnce, c.stepTopic(i))
	if err != nil {
		return
	}
	seen := dedup.New(0) // at-least-once -> idempotent handling
	step := c.def.Steps[i]
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		msgs, err := consumer.Poll(16)
		if err != nil || len(msgs) == 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		for _, m := range msgs {
			var ev choreoEvent
			if json.Unmarshal(m.Value, &ev) != nil {
				continue
			}
			key := fmt.Sprintf("%s/%d/%v", ev.SagaID, ev.Step, ev.Compensating)
			seen.Do(key, func() ([]byte, error) {
				c.handle(i, step, ev)
				return nil, nil
			})
		}
		consumer.Ack()
	}
}

func (c *Choreography) handle(i int, step Step, ev choreoEvent) {
	ctx := &Ctx{SagaID: ev.SagaID, Data: ev.Data}
	if ctx.Data == nil {
		ctx.Data = map[string]any{}
	}
	if ev.Compensating {
		if step.Compensate != nil {
			_ = step.Compensate(ctx) // stuck handling is orchestration-only
		}
		if i == 0 {
			c.publish(c.doneTopic(), choreoEvent{SagaID: ev.SagaID, Compensating: true, Cause: ev.Cause})
			return
		}
		c.publish(c.stepTopic(i-1), choreoEvent{SagaID: ev.SagaID, Step: i - 1, Data: ctx.Data, Compensating: true, Cause: ev.Cause})
		return
	}
	if err := step.Action(ctx); err != nil {
		if i == 0 {
			c.publish(c.doneTopic(), choreoEvent{SagaID: ev.SagaID, Compensating: true, Cause: err.Error()})
			return
		}
		// Kick the backward chain at the previous step.
		c.publish(c.stepTopic(i-1), choreoEvent{SagaID: ev.SagaID, Step: i - 1, Data: ctx.Data, Compensating: true, Cause: err.Error()})
		return
	}
	if i == len(c.def.Steps)-1 {
		c.publish(c.doneTopic(), choreoEvent{SagaID: ev.SagaID, Data: ctx.Data})
		return
	}
	c.publish(c.stepTopic(i+1), choreoEvent{SagaID: ev.SagaID, Step: i + 1, Data: ctx.Data})
}

// runDoneListener resolves Run waiters.
func (c *Choreography) runDoneListener() {
	defer c.wg.Done()
	consumer, err := c.broker.NewConsumer(c.name+"-done", mq.AtLeastOnce, c.doneTopic())
	if err != nil {
		return
	}
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		msgs, err := consumer.Poll(16)
		if err != nil || len(msgs) == 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		for _, m := range msgs {
			var ev choreoEvent
			if json.Unmarshal(m.Value, &ev) != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.results[ev.SagaID]
			c.mu.Unlock()
			if !ok {
				continue
			}
			var outcome error
			if ev.Compensating {
				outcome = fmt.Errorf("%w: %s", ErrCompensated, ev.Cause)
			}
			select {
			case ch <- outcome:
			default:
			}
		}
		consumer.Ack()
	}
}
