package actor

import (
	"errors"
	"fmt"

	"tca/internal/fabric"
	"tca/internal/store"
)

// ErrReadOnlyTxn rejects writes inside a RunReadOnly transaction.
var ErrReadOnlyTxn = errors.New("actor: write in read-only transaction")

// Coordinator implements cross-actor ACID transactions in the style of the
// Orleans Transactions API the paper surveys in §4.2: transactional state
// is accessed under strict two-phase locking, and commit runs a two-phase
// protocol across every participating actor's node. The coordination —
// lock acquisition, the prepare round, and the commit round — is exactly
// where the "significant performance penalty" the paper cites comes from,
// and the benchmarks measure it against plain actor calls.
//
// As in Orleans, transactional state is disjoint from the actor's ad-hoc
// Save/Load state: transactions go through the dedicated "actor_txn_state"
// table so that the two concurrency regimes never silently mix.
type Coordinator struct {
	sys *System
	// Retries on serialization conflicts / wounds.
	Retries int
}

// NewCoordinator creates a transaction coordinator for the system.
func NewCoordinator(sys *System) *Coordinator {
	sys.db.CreateTable("actor_txn_state")
	return &Coordinator{sys: sys, Retries: 10}
}

// ActorTxn is the per-transaction handle passed to the body function.
type ActorTxn struct {
	sys   *System
	tx    *store.Txn
	trace *fabric.Trace
	coord fabric.NodeID
	// participants are the distinct nodes hosting actors this transaction
	// touched; each costs a prepare and a commit round trip.
	participants map[fabric.NodeID]struct{}
	// readOnly transactions reject writes and skip the commit protocol.
	readOnly bool
}

// Read returns the transactional state of ref, acquiring a shared lock.
func (t *ActorTxn) Read(ref Ref) (store.Row, bool, error) {
	if err := t.charge(ref); err != nil {
		return nil, false, err
	}
	return t.tx.Get("actor_txn_state", ref.String())
}

// Write replaces the transactional state of ref, acquiring an exclusive
// lock that is held until commit or abort.
func (t *ActorTxn) Write(ref Ref, state store.Row) error {
	if t.readOnly {
		return ErrReadOnlyTxn
	}
	if err := t.charge(ref); err != nil {
		return err
	}
	return t.tx.Put("actor_txn_state", ref.String(), state)
}

// charge records ref's node as a participant and charges the access hop.
func (t *ActorTxn) charge(ref Ref) error {
	node, err := t.sys.cluster.PlaceAlive(ref.String())
	if err != nil {
		return err
	}
	t.sys.cluster.Send(t.coord, node, t.trace)
	t.participants[node] = struct{}{}
	return nil
}

// Run executes fn as one ACID transaction across any set of actors,
// retrying on concurrency-control conflicts. The trace accumulates every
// coordination hop, so callers can compare the simulated latency against
// untransactional actor calls.
func (c *Coordinator) Run(tr *fabric.Trace, fn func(t *ActorTxn) error) error {
	coord, err := c.sys.cluster.PlaceAlive("txn-coordinator")
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		t := &ActorTxn{
			sys:          c.sys,
			tx:           c.sys.db.Begin(store.Locking2PL),
			trace:        tr,
			coord:        coord,
			participants: make(map[fabric.NodeID]struct{}),
		}
		if err := fn(t); err != nil {
			t.tx.Abort()
			if store.IsRetryable(err) {
				lastErr = err
				c.sys.metrics.Counter("actor.txn_retries").Inc()
				continue
			}
			return err
		}
		// Phase one: prepare every participant (one round trip each).
		for node := range t.participants {
			c.sys.cluster.Send(coord, node, tr)
			c.sys.cluster.Send(node, coord, tr)
		}
		if err := t.tx.Prepare(); err != nil {
			t.tx.Abort()
			if store.IsRetryable(err) {
				lastErr = err
				c.sys.metrics.Counter("actor.txn_retries").Inc()
				continue
			}
			return err
		}
		// Phase two: commit decision to every participant.
		for node := range t.participants {
			c.sys.cluster.Send(coord, node, tr)
			c.sys.cluster.Send(node, coord, tr)
		}
		if err := t.tx.Commit(); err != nil {
			return fmt.Errorf("actor: commit after prepare must not fail: %w", err)
		}
		c.sys.metrics.Counter("actor.txn_commits").Inc()
		return nil
	}
	c.sys.metrics.Counter("actor.txn_exhausted").Inc()
	return fmt.Errorf("actor: transaction retries exhausted: %w", lastErr)
}

// RunReadOnly executes fn as a read-only transaction: reads acquire shared
// locks under the same 2PL regime as Run (so the snapshot is serializable
// against concurrent writers), but there is nothing to vote on, so the
// prepare and commit rounds — two round trips per participant node — are
// skipped entirely. This is the classic read-only optimization of
// two-phase commit, and exactly the coordination a query saves.
func (c *Coordinator) RunReadOnly(tr *fabric.Trace, fn func(t *ActorTxn) error) error {
	coord, err := c.sys.cluster.PlaceAlive("txn-coordinator")
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		t := &ActorTxn{
			sys:          c.sys,
			tx:           c.sys.db.Begin(store.Locking2PL),
			trace:        tr,
			coord:        coord,
			participants: make(map[fabric.NodeID]struct{}),
			readOnly:     true,
		}
		err := fn(t)
		// Abort releases the shared locks; a transaction with no writes
		// has nothing else to undo.
		t.tx.Abort()
		if err != nil {
			if store.IsRetryable(err) {
				lastErr = err
				c.sys.metrics.Counter("actor.txn_retries").Inc()
				continue
			}
			return err
		}
		c.sys.metrics.Counter("actor.txn_readonly").Inc()
		return nil
	}
	c.sys.metrics.Counter("actor.txn_exhausted").Inc()
	return fmt.Errorf("actor: read-only transaction retries exhausted: %w", lastErr)
}

// ReadState reads an actor's transactional state outside any transaction
// (for verification in tests and the harness).
func (c *Coordinator) ReadState(ref Ref) (store.Row, bool, error) {
	tx := c.sys.db.Begin(store.ReadCommitted)
	defer tx.Abort()
	return tx.Get("actor_txn_state", ref.String())
}

// SeedState initializes transactional state without charging coordination
// (test/workload setup).
func (c *Coordinator) SeedState(ref Ref, state store.Row) error {
	tx := c.sys.db.Begin(store.ReadCommitted)
	if err := tx.Put("actor_txn_state", ref.String(), state); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
