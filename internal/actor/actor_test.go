package actor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tca/internal/fabric"
	"tca/internal/store"
)

func newSystem(t *testing.T, nodes ...fabric.NodeID) (*System, *fabric.Cluster) {
	t.Helper()
	if len(nodes) == 0 {
		nodes = []fabric.NodeID{"n1", "n2", "n3"}
	}
	cl := fabric.NewCluster(fabric.DefaultConfig(), nodes...)
	sys := NewSystem(cl, Config{})
	t.Cleanup(sys.Stop)
	return sys, cl
}

// counterActor increments an in-memory counter per message and returns it.
type counterActor struct {
	n int64
}

func (a *counterActor) Receive(ctx *Ctx, msg Message) ([]byte, error) {
	switch msg.Method {
	case "inc":
		a.n++
		return i64(a.n), nil
	case "get":
		return i64(a.n), nil
	case "save":
		return nil, ctx.Save(store.Row{"n": a.n})
	case "load":
		st, ok, err := ctx.Load()
		if err != nil {
			return nil, err
		}
		if ok {
			a.n = st.Int("n")
		}
		return i64(a.n), nil
	default:
		return nil, fmt.Errorf("unknown method %q", msg.Method)
	}
}

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func toI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func registerCounter(sys *System) {
	sys.Register("counter", func(ref Ref) Behavior { return &counterActor{} })
}

func TestAskActivatesOnDemand(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	if got := sys.ActivationCount(); got != 0 {
		t.Fatalf("activations = %d before first message", got)
	}
	resp, err := sys.Ask(Ref{"counter", "c1"}, "inc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if toI64(resp) != 1 {
		t.Fatalf("counter = %d, want 1", toI64(resp))
	}
	if got := sys.ActivationCount(); got != 1 {
		t.Fatalf("activations = %d, want 1", got)
	}
}

func TestSequentialStatePerActor(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	ref := Ref{"counter", "c1"}
	var wg sync.WaitGroup
	const msgs = 200
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Ask(ref, "inc", nil, nil); err != nil {
				t.Errorf("Ask: %v", err)
			}
		}()
	}
	wg.Wait()
	resp, err := sys.Ask(ref, "get", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if toI64(resp) != msgs {
		t.Fatalf("counter = %d, want %d (mailbox must serialize)", toI64(resp), msgs)
	}
}

func TestDistinctIDsDistinctState(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	sys.Ask(Ref{"counter", "a"}, "inc", nil, nil)
	sys.Ask(Ref{"counter", "a"}, "inc", nil, nil)
	resp, _ := sys.Ask(Ref{"counter", "b"}, "get", nil, nil)
	if toI64(resp) != 0 {
		t.Fatalf("actor b counter = %d, want 0", toI64(resp))
	}
}

func TestUnregisteredType(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.Ask(Ref{"ghost", "x"}, "op", nil, nil); !errors.Is(err, ErrNoSuchType) {
		t.Fatalf("err = %v, want ErrNoSuchType", err)
	}
}

func TestSaveLoadDurableState(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	ref := Ref{"counter", "durable"}
	sys.Ask(ref, "inc", nil, nil)
	sys.Ask(ref, "inc", nil, nil)
	if _, err := sys.Ask(ref, "save", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Deactivate: in-memory state is gone; next activation reloads.
	sys.Deactivate(ref)
	resp, err := sys.Ask(ref, "load", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if toI64(resp) != 2 {
		t.Fatalf("reloaded counter = %d, want 2", toI64(resp))
	}
}

func TestDeactivateLosesUnsavedState(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	ref := Ref{"counter", "volatile"}
	sys.Ask(ref, "inc", nil, nil) // never saved
	sys.Deactivate(ref)
	resp, _ := sys.Ask(ref, "get", nil, nil)
	if toI64(resp) != 0 {
		t.Fatalf("unsaved state survived deactivation: %d", toI64(resp))
	}
}

func TestMigrationOnNodeCrash(t *testing.T) {
	sys, cl := newSystem(t)
	registerCounter(sys)
	ref := Ref{"counter", "migrant"}
	sys.Ask(ref, "inc", nil, nil)
	sys.Ask(ref, "save", nil, nil)

	// Find and crash the hosting node.
	home, err := cl.PlaceAlive(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	cl.Crash(home)

	// The next message must transparently re-place and re-activate.
	resp, err := sys.Ask(ref, "load", nil, nil)
	if err != nil {
		t.Fatalf("Ask after crash: %v", err)
	}
	if toI64(resp) != 1 {
		t.Fatalf("migrated state = %d, want 1", toI64(resp))
	}
	if got := sys.Metrics().Counter("actor.migrations").Value(); got < 1 {
		t.Fatalf("migrations = %d, want >= 1", got)
	}
}

func TestAllNodesDown(t *testing.T) {
	sys, cl := newSystem(t, "only")
	registerCounter(sys)
	cl.Crash("only")
	if _, err := sys.Ask(Ref{"counter", "x"}, "inc", nil, nil); err == nil {
		t.Fatal("Ask with no live nodes should fail")
	}
}

func TestTellFireAndForget(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	ref := Ref{"counter", "telled"}
	for i := 0; i < 10; i++ {
		if err := sys.Tell(ref, "inc", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Tells are async: wait for the mailbox to drain.
	deadline := time.After(2 * time.Second)
	for {
		resp, err := sys.Ask(ref, "get", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if toI64(resp) == 10 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("counter = %d after Tells, want 10", toI64(resp))
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDuplicateDeliveryDoublesEffects(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.DupProb = 1.0
	cl := fabric.NewCluster(cfg, "n1")
	sys := NewSystem(cl, Config{})
	defer sys.Stop()
	registerCounter(sys)
	ref := Ref{"counter", "dup"}
	sys.Ask(ref, "inc", nil, nil)
	// With DupProb=1 the inc was delivered twice. Reading the counter also
	// duplicates, but "get" is idempotent so the value is observable.
	deadline := time.After(time.Second)
	for {
		resp, err := sys.Ask(ref, "get", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if toI64(resp) >= 2 {
			return // effect duplicated, as at-least-once predicts
		}
		select {
		case <-deadline:
			t.Fatalf("counter = %d, want >= 2 under duplicate delivery", toI64(resp))
		case <-time.After(time.Millisecond):
		}
	}
}

func TestActorToActorAsk(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	sys.Register("proxy", func(ref Ref) Behavior {
		return BehaviorFunc(func(ctx *Ctx, msg Message) ([]byte, error) {
			return ctx.Ask(Ref{"counter", "backend"}, "inc", nil, msg.Trace)
		})
	})
	trace := fabric.NewTrace()
	resp, err := sys.Ask(Ref{"proxy", "p"}, "fwd", nil, trace)
	if err != nil {
		t.Fatal(err)
	}
	if toI64(resp) != 1 {
		t.Fatalf("forwarded counter = %d, want 1", toI64(resp))
	}
	if trace.Hops() < 4 {
		t.Fatalf("hops = %d, want >= 4 for nested ask", trace.Hops())
	}
}

func TestMailboxOverflow(t *testing.T) {
	cl := fabric.NewCluster(fabric.DefaultConfig(), "n1")
	sys := NewSystem(cl, Config{MailboxSize: 1})
	defer sys.Stop()
	block := make(chan struct{})
	sys.Register("slow", func(ref Ref) Behavior {
		return BehaviorFunc(func(ctx *Ctx, msg Message) ([]byte, error) {
			<-block
			return nil, nil
		})
	})
	ref := Ref{"slow", "s"}
	// First message occupies the loop; second fills the mailbox; third
	// must be rejected.
	sys.Tell(ref, "op", nil, nil)
	time.Sleep(10 * time.Millisecond)
	sys.Tell(ref, "op", nil, nil)
	err := sys.Tell(ref, "op", nil, nil)
	close(block)
	if !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("err = %v, want ErrMailboxFull", err)
	}
}

func TestStopRejectsNewWork(t *testing.T) {
	sys, _ := newSystem(t)
	registerCounter(sys)
	sys.Stop()
	if _, err := sys.Ask(Ref{"counter", "x"}, "inc", nil, nil); err == nil {
		t.Fatal("Ask after Stop should fail")
	}
}

func TestBehaviorErrorPropagates(t *testing.T) {
	sys, _ := newSystem(t)
	boom := errors.New("boom")
	sys.Register("bad", func(ref Ref) Behavior {
		return BehaviorFunc(func(ctx *Ctx, msg Message) ([]byte, error) { return nil, boom })
	})
	if _, err := sys.Ask(Ref{"bad", "b"}, "op", nil, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// --- transactions -------------------------------------------------------

func seedAccounts(t *testing.T, c *Coordinator, n int, balance int64) []Ref {
	t.Helper()
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{"account", fmt.Sprintf("acc-%d", i)}
		if err := c.SeedState(refs[i], store.Row{"balance": balance}); err != nil {
			t.Fatal(err)
		}
	}
	return refs
}

func TestTxnTransferAtomic(t *testing.T) {
	sys, _ := newSystem(t)
	coord := NewCoordinator(sys)
	refs := seedAccounts(t, coord, 2, 100)
	err := coord.Run(nil, func(tx *ActorTxn) error {
		a, _, err := tx.Read(refs[0])
		if err != nil {
			return err
		}
		b, _, err := tx.Read(refs[1])
		if err != nil {
			return err
		}
		if err := tx.Write(refs[0], store.Row{"balance": a.Int("balance") - 30}); err != nil {
			return err
		}
		return tx.Write(refs[1], store.Row{"balance": b.Int("balance") + 30})
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := coord.ReadState(refs[0])
	b, _, _ := coord.ReadState(refs[1])
	if a.Int("balance") != 70 || b.Int("balance") != 130 {
		t.Fatalf("balances = %d, %d; want 70, 130", a.Int("balance"), b.Int("balance"))
	}
}

func TestTxnAbortRollsBack(t *testing.T) {
	sys, _ := newSystem(t)
	coord := NewCoordinator(sys)
	refs := seedAccounts(t, coord, 1, 100)
	boom := errors.New("refused")
	err := coord.Run(nil, func(tx *ActorTxn) error {
		if err := tx.Write(refs[0], store.Row{"balance": int64(0)}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	a, _, _ := coord.ReadState(refs[0])
	if a.Int("balance") != 100 {
		t.Fatalf("balance = %d after abort, want 100", a.Int("balance"))
	}
}

func TestTxnConcurrentTransfersConserveMoney(t *testing.T) {
	sys, _ := newSystem(t)
	coord := NewCoordinator(sys)
	const accounts = 6
	refs := seedAccounts(t, coord, accounts, 1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				from := refs[(seed+i)%accounts]
				to := refs[(seed+i+1)%accounts]
				err := coord.Run(nil, func(tx *ActorTxn) error {
					a, _, err := tx.Read(from)
					if err != nil {
						return err
					}
					b, _, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, store.Row{"balance": a.Int("balance") - 5}); err != nil {
						return err
					}
					return tx.Write(to, store.Row{"balance": b.Int("balance") + 5})
				})
				if err != nil {
					t.Errorf("txn: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, ref := range refs {
		r, _, _ := coord.ReadState(ref)
		total += r.Int("balance")
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
}

func TestTxnChargesCoordinationHops(t *testing.T) {
	sys, _ := newSystem(t)
	coord := NewCoordinator(sys)
	refs := seedAccounts(t, coord, 2, 100)
	plain := fabric.NewTrace()
	sys.Ask(Ref{"counter", "x"}, "get", nil, plain) // will fail (unregistered) — use a real baseline below
	txn := fabric.NewTrace()
	coord.Run(txn, func(tx *ActorTxn) error {
		if _, _, err := tx.Read(refs[0]); err != nil {
			return err
		}
		_, _, err := tx.Read(refs[1])
		return err
	})
	// Two participant accesses + prepare and commit round trips ≥ 6 hops.
	if txn.Hops() < 6 {
		t.Fatalf("txn hops = %d, want >= 6 (2PC coordination)", txn.Hops())
	}
}
