// Package actor implements a virtual-actor runtime in the style of Orleans
// (§3.1 "The Actor Model"): actors are addressed by (type, id), activated on
// demand on a node chosen by the runtime (location transparency), process
// their mailbox sequentially (single-threaded state access), and are
// transparently re-placed on another node when theirs fails — the failure
// transparency §4.1 attributes to Orleans.
//
// Delivery semantics follow §4.2: at-most-once by default; Ask with retries
// gives at-least-once, which duplicates effects unless the actor's handler
// is idempotent. State durability is the developer's responsibility, via
// Ctx.Load/Ctx.Save against the system's persistence store — the
// "checkpoint actor state to an external DBMS" pattern the paper describes.
//
// Cross-actor transactions (the Orleans Transactions API surveyed in §4.2)
// are provided by Coordinator in txn.go: lock-based two-phase commit over
// actor state, with the significant overhead the paper's cited evaluations
// measure.
package actor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/store"
)

// Common runtime errors.
var (
	ErrNoSuchType    = errors.New("actor: no registered actor type")
	ErrMailboxFull   = errors.New("actor: mailbox full")
	ErrDeactivated   = errors.New("actor: activation deactivated")
	ErrAskTimeout    = errors.New("actor: ask timeout")
	ErrSystemStopped = errors.New("actor: system stopped")
)

// Ref addresses a virtual actor. Refs are valid forever; the runtime
// activates the actor when a message arrives.
type Ref struct {
	Type string
	ID   string
}

func (r Ref) String() string { return r.Type + "/" + r.ID }

// Message is one mailbox item.
type Message struct {
	// Method names the operation; Body carries its argument.
	Method string
	Body   []byte
	// Sender is the asking actor, when the message came from Ask inside
	// another actor ("" for external clients).
	Sender string
	// Trace accumulates simulated latency across the call chain.
	Trace *fabric.Trace
	// Attempt is >1 on redeliveries.
	Attempt int
}

// Behavior is the application-supplied actor logic. One Behavior instance
// exists per activation; the runtime guarantees Receive is never invoked
// concurrently for the same activation.
type Behavior interface {
	Receive(ctx *Ctx, msg Message) ([]byte, error)
}

// BehaviorFunc adapts a function to Behavior.
type BehaviorFunc func(ctx *Ctx, msg Message) ([]byte, error)

// Receive implements Behavior.
func (f BehaviorFunc) Receive(ctx *Ctx, msg Message) ([]byte, error) { return f(ctx, msg) }

// Factory creates a Behavior for a new activation of an actor type.
type Factory func(ref Ref) Behavior

// Ctx gives a behavior access to the runtime during one message.
type Ctx struct {
	// Ref is the actor's own address.
	Ref Ref
	// System is the hosting runtime.
	System *System
	// Node is where this activation lives.
	Node fabric.NodeID

	activation *activation
}

// Tell sends a one-way message to another actor (at-most-once: delivery
// failures are dropped, as in classic actor semantics).
func (c *Ctx) Tell(to Ref, method string, body []byte, tr *fabric.Trace) {
	_ = c.System.deliver(c.Node, to, Message{Method: method, Body: body, Sender: c.Ref.String(), Trace: tr, Attempt: 1}, nil)
}

// Ask performs a request/response call to another actor, charging hops to
// the trace. Retries give at-least-once delivery.
func (c *Ctx) Ask(to Ref, method string, body []byte, tr *fabric.Trace) ([]byte, error) {
	return c.System.ask(c.Node, to, method, body, tr)
}

// Load reads the actor's persisted state, returning ok=false when the actor
// has never saved.
func (c *Ctx) Load() (store.Row, bool, error) {
	return c.System.loadState(c.Ref)
}

// Save persists the actor's state to the system's storage.
func (c *Ctx) Save(state store.Row) error {
	return c.System.saveState(c.Ref, state)
}

// activation is one live instance of a virtual actor on some node.
type activation struct {
	ref      Ref
	node     fabric.NodeID
	behavior Behavior
	mailbox  chan envelope
	done     chan struct{}
	sys      *System

	mu          sync.Mutex
	deactivated bool
}

type envelope struct {
	msg   Message
	reply chan reply // nil for Tell
}

type reply struct {
	body []byte
	err  error
}

// Config tunes the runtime.
type Config struct {
	// MailboxSize bounds each activation's queue. Zero means 1024.
	MailboxSize int
	// AskTimeout bounds Ask waits. Zero means 2s.
	AskTimeout time.Duration
	// AskRetries is the redelivery count for Ask (at-least-once when > 0).
	AskRetries int
	// Persistence stores actor state; nil creates a dedicated store.DB.
	Persistence *store.DB
}

// System is the virtual-actor runtime over a fabric cluster.
type System struct {
	cfg     Config
	cluster *fabric.Cluster
	metrics *metrics.Registry
	db      *store.DB

	mu          sync.Mutex
	factories   map[string]Factory
	activations map[string]*activation // key: ref.String()
	epoch       uint64                 // cluster epoch at last placement validation
	stopped     bool
}

// NewSystem creates a runtime on the cluster.
func NewSystem(cluster *fabric.Cluster, cfg Config) *System {
	if cfg.MailboxSize <= 0 {
		cfg.MailboxSize = 1024
	}
	if cfg.AskTimeout <= 0 {
		cfg.AskTimeout = 2 * time.Second
	}
	db := cfg.Persistence
	if db == nil {
		db = store.NewDB(store.Config{Name: "actor-state"})
	}
	db.CreateTable("actor_state")
	return &System{
		cfg:         cfg,
		cluster:     cluster,
		metrics:     metrics.NewRegistry(),
		db:          db,
		factories:   make(map[string]Factory),
		activations: make(map[string]*activation),
	}
}

// Metrics returns the runtime's instruments.
func (s *System) Metrics() *metrics.Registry { return s.metrics }

// Persistence returns the actor-state database.
func (s *System) Persistence() *store.DB { return s.db }

// Register makes an actor type known to the runtime.
func (s *System) Register(actorType string, f Factory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.factories[actorType] = f
}

// ActivationCount reports the number of live activations (gauge for the
// lifecycle experiments).
func (s *System) ActivationCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.activations)
}

// activationFor returns (activating on demand) the actor's activation.
// Placement is by consistent hash over alive nodes; when the cluster epoch
// moved (crash/restart), placements are revalidated and dead-node
// activations dropped — actor migration on failure.
func (s *System) activationFor(ref Ref) (*activation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, ErrSystemStopped
	}
	if e := s.cluster.Epoch(); e != s.epoch {
		s.epoch = e
		for k, a := range s.activations {
			if !s.cluster.Up(a.node) {
				a.shutdown()
				delete(s.activations, k)
				s.metrics.Counter("actor.migrations").Inc()
			}
		}
	}
	key := ref.String()
	if a, ok := s.activations[key]; ok {
		return a, nil
	}
	f, ok := s.factories[ref.Type]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchType, ref.Type)
	}
	node, err := s.cluster.PlaceAlive(key)
	if err != nil {
		return nil, err
	}
	a := &activation{
		ref:      ref,
		node:     node,
		behavior: f(ref),
		mailbox:  make(chan envelope, s.cfg.MailboxSize),
		done:     make(chan struct{}),
		sys:      s,
	}
	s.activations[key] = a
	s.metrics.Counter("actor.activations").Inc()
	go a.run()
	return a, nil
}

// run is the activation's single-threaded message loop.
func (a *activation) run() {
	ctx := &Ctx{Ref: a.ref, System: a.sys, Node: a.node, activation: a}
	for {
		select {
		case env := <-a.mailbox:
			body, err := a.behavior.Receive(ctx, env.msg)
			if env.reply != nil {
				env.reply <- reply{body: body, err: err}
			}
		case <-a.done:
			// Drain replies so askers do not hang on a deactivated actor.
			for {
				select {
				case env := <-a.mailbox:
					if env.reply != nil {
						env.reply <- reply{err: ErrDeactivated}
					}
				default:
					return
				}
			}
		}
	}
}

func (a *activation) shutdown() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.deactivated {
		a.deactivated = true
		close(a.done)
	}
}

// deliver enqueues a message for ref, activating as needed. reply may be
// nil (Tell). The fabric decides loss/duplication per the chaos config.
func (s *System) deliver(from fabric.NodeID, ref Ref, msg Message, replyCh chan reply) error {
	a, err := s.activationFor(ref)
	if err != nil {
		return err
	}
	return s.deliverTo(a, from, msg, replyCh)
}

func (s *System) deliverTo(a *activation, from fabric.NodeID, msg Message, replyCh chan reply) error {
	d := s.cluster.Send(from, a.node, msg.Trace)
	if d.Err != nil {
		s.metrics.Counter("actor.deliver_failures").Inc()
		return d.Err
	}
	send := func(r chan reply) error {
		select {
		case a.mailbox <- envelope{msg: msg, reply: r}:
			return nil
		default:
			s.metrics.Counter("actor.mailbox_full").Inc()
			return ErrMailboxFull
		}
	}
	if err := send(replyCh); err != nil {
		return err
	}
	if d.Duplicated {
		// Network duplicate: deliver again with no reply channel; the
		// behavior executes twice.
		dup := msg
		dup.Attempt = msg.Attempt + 1
		_ = send(nil)
		s.metrics.Counter("actor.duplicates").Inc()
	}
	return nil
}

// Tell sends a one-way message from outside the cluster (at-most-once).
func (s *System) Tell(ref Ref, method string, body []byte, tr *fabric.Trace) error {
	from, err := s.cluster.PlaceAlive(ref.String())
	if err != nil {
		return err
	}
	return s.deliver(from, ref, Message{Method: method, Body: body, Trace: tr, Attempt: 1}, nil)
}

// Ask sends a request from outside the cluster and waits for the response.
func (s *System) Ask(ref Ref, method string, body []byte, tr *fabric.Trace) ([]byte, error) {
	from, err := s.cluster.PlaceAlive(ref.String())
	if err != nil {
		return nil, err
	}
	return s.ask(from, ref, method, body, tr)
}

func (s *System) ask(from fabric.NodeID, ref Ref, method string, body []byte, tr *fabric.Trace) ([]byte, error) {
	attempts := s.cfg.AskRetries + 1
	var lastErr error
	for i := 1; i <= attempts; i++ {
		a, err := s.activationFor(ref)
		if err != nil {
			lastErr = err
			continue
		}
		replyCh := make(chan reply, 1)
		msg := Message{Method: method, Body: body, Trace: tr, Attempt: i}
		if err := s.deliverTo(a, from, msg, replyCh); err != nil {
			lastErr = err
			if i < attempts {
				s.metrics.Counter("actor.ask_retries").Inc()
			}
			continue
		}
		timer := time.NewTimer(s.cfg.AskTimeout)
		select {
		case r := <-replyCh:
			timer.Stop()
			s.cluster.Send(a.node, from, tr) // response hop
			if r.err != nil {
				return nil, r.err
			}
			return r.body, nil
		case <-timer.C:
			lastErr = ErrAskTimeout
		}
	}
	return nil, fmt.Errorf("actor: ask %s.%s failed: %w", ref, method, lastErr)
}

// loadState reads an actor's durable state.
func (s *System) loadState(ref Ref) (store.Row, bool, error) {
	tx := s.db.Begin(store.ReadCommitted)
	defer tx.Abort()
	return tx.Get("actor_state", ref.String())
}

// saveState writes an actor's durable state (its checkpoint to the
// external DBMS).
func (s *System) saveState(ref Ref, state store.Row) error {
	tx := s.db.Begin(store.ReadCommitted)
	if err := tx.Put("actor_state", ref.String(), state); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Deactivate removes an idle activation (resource management); its state
// survives in storage and the next message re-activates it.
func (s *System) Deactivate(ref Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := ref.String()
	if a, ok := s.activations[key]; ok {
		a.shutdown()
		delete(s.activations, key)
		s.metrics.Counter("actor.deactivations").Inc()
	}
}

// Stop shuts the whole system down.
func (s *System) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	for k, a := range s.activations {
		a.shutdown()
		delete(s.activations, k)
	}
}
