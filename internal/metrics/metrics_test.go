package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros, got %+v", h.Snapshot())
	}
	if p := h.Percentile(0.99); p != 0 {
		t.Fatalf("Percentile on empty = %d, want 0", p)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	if s.Min != 1000 || s.Max != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 1000/1000", s.Min, s.Max)
	}
	// Bucketed value must be within ~3.2% below the true value.
	if s.P50 > 1000 || float64(s.P50) < 1000*0.96 {
		t.Fatalf("P50 = %d, want within [960, 1000]", s.P50)
	}
}

func TestHistogramSmallExactValues(t *testing.T) {
	// Values below subBuckets land in exact unit buckets.
	h := NewHistogram()
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if got := h.Percentile(0.5); got != 15 && got != 16 {
		t.Fatalf("P50 of 0..31 = %d, want 15 or 16", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("Min = %d, want 0", got)
	}
	if got := h.Max(); got != 31 {
		t.Fatalf("Max = %d, want 31", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if got := h.Min(); got != 0 {
		t.Fatalf("negative values should clamp to 0, Min = %d", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	n := 100000
	for i := 0; i < n; i++ {
		h.Record(rng.Int63n(10_000_000)) // up to 10ms in ns
	}
	// Uniform distribution: p50 ≈ 5ms, p99 ≈ 9.9ms. The log-linear buckets
	// guarantee <= ~3.2% relative error (plus sampling noise).
	checks := []struct {
		q    float64
		want float64
	}{{0.5, 5e6}, {0.9, 9e6}, {0.99, 9.9e6}}
	for _, c := range checks {
		got := float64(h.Percentile(c.q))
		if got < c.want*0.90 || got > c.want*1.10 {
			t.Errorf("Percentile(%v) = %.0f, want within 10%% of %.0f", c.q, got, c.want)
		}
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Record(rng.Int63n(1 << 40))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("Percentile not monotone: q=%v p=%d prev=%d", q, p, prev)
		}
		prev = p
	}
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Property: bucketLow(bucketIndex(v)) <= v, and the bucket's low bound
	// is within the relative-error budget of v.
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= 1 << 44
		i := bucketIndex(v)
		low := bucketLow(i)
		if low > v {
			return false
		}
		// Relative error bound: bucket width is low/subBuckets for large v.
		if v >= subBuckets && float64(v-low) > float64(v)/float64(subBuckets)+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 5000; j++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(int64(i))
	}
	wg.Wait()
	if got := h.Count(); got != 20000 {
		t.Fatalf("Count = %d, want 20000", got)
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	if got := h.Max(); got != int64(3*time.Millisecond) {
		t.Fatalf("Max = %d, want %d", got, int64(3*time.Millisecond))
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h").Record(100)
	if got := r.Counter("a").Value(); got != 2 {
		t.Fatalf("counter a = %d, want 2 (same instance should be returned)", got)
	}
	rep := r.Report()
	if rep == "" {
		t.Fatal("Report() empty")
	}
	for _, want := range []string{"a", "g", "h"} {
		if !contains(rep, want) {
			t.Errorf("Report() missing %q:\n%s", want, rep)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(int64(time.Millisecond))
	s := h.Snapshot().String()
	if !contains(s, "n=1") {
		t.Fatalf("Snapshot string %q missing count", s)
	}
}
