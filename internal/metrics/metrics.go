// Package metrics provides counters, gauges and latency histograms used by
// every runtime in this repository to report throughput and latency
// percentiles. The histogram is an HDR-style log-linear histogram: values are
// bucketed with bounded relative error so that p50/p95/p99/p999 can be
// reported without retaining every sample.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// bucketization: log-linear. Each power-of-two range is split into
// subBuckets linear buckets, giving a relative error of 1/subBuckets.
const (
	subBucketBits = 5 // 32 sub-buckets per octave -> ~3% relative error
	subBuckets    = 1 << subBucketBits
	numOctaves    = 45 // covers up to ~2^45 ns ≈ 9.7 hours
	numBuckets    = numOctaves * subBuckets
)

// Histogram is a concurrent log-linear histogram of non-negative int64
// values (typically nanoseconds).
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stores math.MaxInt64 when empty
	once   sync.Once
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func (h *Histogram) init() {
	h.once.Do(func() {
		h.min.CompareAndSwap(0, math.MaxInt64)
	})
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// The octave is the position of the highest set bit above subBucketBits.
	octave := 63 - leadingZeros(uint64(v)) - subBucketBits
	sub := v >> uint(octave)
	idx := (octave+1)*subBuckets + int(sub) - subBuckets
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLow returns the lowest value stored in bucket i (used to report
// percentile values).
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	octave := i/subBuckets - 1
	sub := i%subBuckets + subBuckets
	return int64(sub) << uint(octave)
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.init()
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration adds one duration sample in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the maximum sample, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the minimum sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	m := h.min.Load()
	if m == math.MaxInt64 {
		return 0
	}
	return m
}

// Percentile returns the value at quantile q in [0,1]. The returned value is
// the lower bound of the bucket containing the q-th sample, so it
// underestimates by at most the bucket width (~3%).
func (h *Histogram) Percentile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.Max()
}

// Snapshot captures consistent-enough summary statistics for reporting.
type Snapshot struct {
	Count              int64
	Mean               float64
	Min, Max           int64
	P50, P90, P95, P99 int64
	P999               int64
}

// Snapshot returns current summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(0.50),
		P90:   h.Percentile(0.90),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
	}
}

// String formats the snapshot with durations in human units.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count,
		time.Duration(int64(s.Mean)).Round(time.Microsecond),
		time.Duration(s.P50).Round(time.Microsecond),
		time.Duration(s.P95).Round(time.Microsecond),
		time.Duration(s.P99).Round(time.Microsecond),
		time.Duration(s.Max).Round(time.Microsecond))
}

// Registry is a named collection of metrics, used by runtimes to expose all
// instruments for the benchmark harness to print.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Report renders all instruments sorted by name, one per line.
func (r *Registry) Report() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counts {
		names = append(names, "counter/"+n)
	}
	for n := range r.gauges {
		names = append(names, "gauge/"+n)
	}
	for n := range r.hists {
		names = append(names, "hist/"+n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		kind, name, _ := strings.Cut(n, "/")
		switch kind {
		case "counter":
			fmt.Fprintf(&b, "%-40s %d\n", name, r.counts[name].Value())
		case "gauge":
			fmt.Fprintf(&b, "%-40s %d\n", name, r.gauges[name].Value())
		case "hist":
			fmt.Fprintf(&b, "%-40s %s\n", name, r.hists[name].Snapshot())
		}
	}
	return b.String()
}
