// Package mq implements the durable, partitioned message log that plays the
// role of Kafka/RabbitMQ in the paper's messaging taxonomy (§3.2): producers
// append to topic partitions, consumer groups pull from committed offsets,
// and the delivery guarantee — at-most-once, at-least-once, exactly-once —
// is a property of *how offsets are acknowledged relative to processing*,
// which is precisely the application-level coordination burden the paper
// highlights.
//
// Exactly-once support follows Kafka's design surface: idempotent producers
// (producer id + sequence number dedup), transactional produce (a batch of
// messages across partitions becomes visible atomically), and transactional
// consume-transform-produce (consumer group offsets commit atomically with
// the produced messages).
package mq

import (
	"errors"
	"fmt"
	"sync"

	"tca/internal/fabric"
)

// Common broker errors.
var (
	ErrNoTopic     = errors.New("mq: no such topic")
	ErrNoPartition = errors.New("mq: no such partition")
	ErrTxnActive   = errors.New("mq: producer transaction already active")
	ErrNoTxn       = errors.New("mq: no active producer transaction")
	ErrFenced      = errors.New("mq: producer fenced by newer instance")
)

// Message is one record in a partition log.
type Message struct {
	Topic     string
	Partition int
	Offset    int64
	Key       string
	Value     []byte
	Headers   map[string]string
}

// TopicPartition addresses one partition.
type TopicPartition struct {
	Topic     string
	Partition int
}

func (tp TopicPartition) String() string {
	return fmt.Sprintf("%s/%d", tp.Topic, tp.Partition)
}

// partition is one append-only log plus producer dedup state.
type partition struct {
	mu   sync.Mutex
	msgs []Message
	// producer dedup: highest sequence number appended per producer id.
	producerSeq map[string]int64
}

func newPartition() *partition {
	return &partition{producerSeq: make(map[string]int64)}
}

// append adds messages, deduplicating by (producerID, seq) when producerID
// is non-empty. Returns the number actually appended and the offset of the
// first appended message (-1 when everything was a duplicate).
func (p *partition) append(topic string, part int, producerID string, baseSeq int64, msgs []Message) (int, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	appended := 0
	base := int64(-1)
	for i, m := range msgs {
		if producerID != "" {
			seq := baseSeq + int64(i)
			if last, ok := p.producerSeq[producerID]; ok && seq <= last {
				continue // duplicate from producer retry
			}
			p.producerSeq[producerID] = seq
		}
		m.Topic = topic
		m.Partition = part
		m.Offset = int64(len(p.msgs))
		if base < 0 {
			base = m.Offset
		}
		p.msgs = append(p.msgs, m)
		appended++
	}
	return appended, base
}

func (p *partition) read(from int64, max int) []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= int64(len(p.msgs)) {
		return nil
	}
	end := from + int64(max)
	if end > int64(len(p.msgs)) {
		end = int64(len(p.msgs))
	}
	out := make([]Message, end-from)
	copy(out, p.msgs[from:end])
	return out
}

func (p *partition) highWater() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.msgs))
}

// topic is a set of partitions.
type topic struct {
	name  string
	parts []*partition
}

// Broker is the message broker. Safe for concurrent use.
type Broker struct {
	mu     sync.Mutex
	topics map[string]*topic
	// group -> topic/partition -> next offset to deliver
	offsets map[string]map[TopicPartition]int64
	// transactional producer fencing: transactional id -> epoch
	producerEpochs map[string]int64

	cluster *fabric.Cluster // optional: duplicate-delivery injection
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics:         make(map[string]*topic),
		offsets:        make(map[string]map[TopicPartition]int64),
		producerEpochs: make(map[string]int64),
	}
}

// WithChaos attaches a fabric cluster whose duplicate-delivery probability
// is applied to consumed batches, modeling redelivery by the transport.
func (b *Broker) WithChaos(c *fabric.Cluster) *Broker {
	b.mu.Lock()
	b.cluster = c
	b.mu.Unlock()
	return b
}

// CreateTopic creates a topic with n partitions. Idempotent; partition
// count of an existing topic is not changed.
func (b *Broker) CreateTopic(name string, n int) {
	if n <= 0 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return
	}
	t := &topic{name: name, parts: make([]*partition, n)}
	for i := range t.parts {
		t.parts[i] = newPartition()
	}
	b.topics[name] = t
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTopic, name)
	}
	return len(t.parts), nil
}

func (b *Broker) partition(tp TopicPartition) (*partition, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[tp.Topic]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTopic, tp.Topic)
	}
	if tp.Partition < 0 || tp.Partition >= len(t.parts) {
		return nil, fmt.Errorf("%w: %s", ErrNoPartition, tp)
	}
	return t.parts[tp.Partition], nil
}

// HighWater returns the end offset (next offset to be written) of tp.
func (b *Broker) HighWater(tp TopicPartition) (int64, error) {
	p, err := b.partition(tp)
	if err != nil {
		return 0, err
	}
	return p.highWater(), nil
}

// Fetch reads up to max messages from tp starting at offset (a low-level
// read that does not touch group offsets; the dataflow source uses this).
func (b *Broker) Fetch(tp TopicPartition, offset int64, max int) ([]Message, error) {
	p, err := b.partition(tp)
	if err != nil {
		return nil, err
	}
	return p.read(offset, max), nil
}

// PartitionForKey maps a key to one of n partitions with FNV-1a, matching
// the fabric's placement hash so co-partitioned topics align. Exported so
// log-sharded runtimes (internal/core) home keys exactly the way the
// broker spreads them — one hash, one owner.
func PartitionForKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return int(h % uint64(n))
}

func (t *topic) partitionFor(key string) int {
	return PartitionForKey(key, len(t.parts))
}

// committedOffset returns the group's committed offset for tp (0 if none).
func (b *Broker) committedOffset(group string, tp TopicPartition) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.offsets[group]
	if !ok {
		return 0
	}
	return g[tp]
}

// commitOffsets atomically records the group's offsets.
func (b *Broker) commitOffsets(group string, offs map[TopicPartition]int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.offsets[group]
	if !ok {
		g = make(map[TopicPartition]int64)
		b.offsets[group] = g
	}
	for tp, off := range offs {
		if off > g[tp] {
			g[tp] = off
		}
	}
}

// CommittedOffset exposes a group's committed offset for tests and the
// harness.
func (b *Broker) CommittedOffset(group string, tp TopicPartition) int64 {
	return b.committedOffset(group, tp)
}

// ProduceIdempotent appends one message with an explicit (producerID, seq)
// pair, deduplicating replays: a message with a sequence number at or below
// the highest seen for producerID on the target partition is dropped.
// Callers that derive seq deterministically from their input (e.g. the
// stateful-functions runtime, which uses the consumed record's offset) get
// exactly-once appends across crash-replay cycles.
func (b *Broker) ProduceIdempotent(topicName, key string, value []byte, producerID string, seq int64) (appended bool, err error) {
	b.mu.Lock()
	t, ok := b.topics[topicName]
	b.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoTopic, topicName)
	}
	tp := TopicPartition{Topic: topicName, Partition: t.partitionFor(key)}
	p, err := b.partition(tp)
	if err != nil {
		return false, err
	}
	msg := Message{Key: key, Value: append([]byte(nil), value...)}
	n, _ := p.append(tp.Topic, tp.Partition, producerID, seq, []Message{msg})
	return n == 1, nil
}

// Produce appends one message directly to an explicit partition, bypassing
// the key hash, and returns its offset. Callers that own their partitioning
// scheme (the deterministic core runtime routes each transaction to the
// partition its key set hashes to) use this instead of Producer.Send.
func (b *Broker) Produce(tp TopicPartition, key string, value []byte) (int64, error) {
	p, err := b.partition(tp)
	if err != nil {
		return 0, err
	}
	msg := Message{Key: key, Value: append([]byte(nil), value...)}
	_, off := p.append(tp.Topic, tp.Partition, "", 0, []Message{msg})
	return off, nil
}

// ProduceIdempotentTo is ProduceIdempotent with an explicit target partition
// instead of the key hash. A caller that fans one logical record out to
// several partitions (the core runtime's cross-partition sequencer) passes
// the record's global sequence number as seq: partition-side producer dedup
// then drops replayed fan-outs after a crash, making the fan-out exactly-once
// per partition.
func (b *Broker) ProduceIdempotentTo(tp TopicPartition, key string, value []byte, producerID string, seq int64) (appended bool, err error) {
	p, err := b.partition(tp)
	if err != nil {
		return false, err
	}
	msg := Message{Key: key, Value: append([]byte(nil), value...)}
	n, _ := p.append(tp.Topic, tp.Partition, producerID, seq, []Message{msg})
	return n == 1, nil
}
