package mq

import (
	"fmt"
	"sync"
)

// Producer appends messages to topics. A Producer is safe for concurrent
// use except for the transactional methods, which follow Kafka's model of a
// single in-flight transaction per producer.
type Producer struct {
	b *Broker

	// Idempotence: a stable producer id plus per-partition sequence
	// numbers lets the broker drop retry duplicates.
	id    string
	seqMu sync.Mutex
	seqs  map[TopicPartition]int64

	// Transactions.
	txnID    string // transactional id ("" = non-transactional)
	epoch    int64
	txnMu    sync.Mutex
	inTxn    bool
	buffered []bufferedSend
	offsets  map[string]map[TopicPartition]int64 // group -> offsets, committed with the txn
}

type bufferedSend struct {
	tp  TopicPartition
	msg Message
}

// NewProducer creates a producer. A non-empty id enables idempotent
// produce: broker-side dedup of retry duplicates.
func (b *Broker) NewProducer(id string) *Producer {
	return &Producer{b: b, id: id, seqs: make(map[TopicPartition]int64)}
}

// NewTransactionalProducer creates a producer with a transactional id.
// Creating a new producer with the same transactional id fences all earlier
// instances (zombie fencing), exactly Kafka's protection against a crashed
// producer's late writes.
func (b *Broker) NewTransactionalProducer(txnID string) *Producer {
	b.mu.Lock()
	b.producerEpochs[txnID]++
	epoch := b.producerEpochs[txnID]
	b.mu.Unlock()
	return &Producer{
		b: b,
		// The idempotence id is scoped by epoch, as in Kafka: an epoch bump
		// resets the sequence space, so a restarted instance (whose seqs
		// begin again at 1) is not deduplicated against its fenced
		// predecessor's sequences. Cross-instance exactly-once comes from
		// transactional offset commits, not sequence dedup.
		id:    fmt.Sprintf("%s@%d", txnID, epoch),
		txnID: txnID,
		epoch: epoch,
		seqs:  make(map[TopicPartition]int64),
	}
}

func (p *Producer) checkFenced() error {
	if p.txnID == "" {
		return nil
	}
	p.b.mu.Lock()
	cur := p.b.producerEpochs[p.txnID]
	p.b.mu.Unlock()
	if cur != p.epoch {
		return fmt.Errorf("%w: %s epoch %d < %d", ErrFenced, p.txnID, p.epoch, cur)
	}
	return nil
}

// Send appends one message, choosing the partition by key hash. Returns the
// assigned partition and offset. Inside a transaction the message is
// buffered and gets its offset at commit.
func (p *Producer) Send(topicName, key string, value []byte) (TopicPartition, int64, error) {
	return p.SendH(topicName, key, value, nil)
}

// SendH is Send with headers.
func (p *Producer) SendH(topicName, key string, value []byte, headers map[string]string) (TopicPartition, int64, error) {
	if err := p.checkFenced(); err != nil {
		return TopicPartition{}, 0, err
	}
	p.b.mu.Lock()
	t, ok := p.b.topics[topicName]
	p.b.mu.Unlock()
	if !ok {
		return TopicPartition{}, 0, fmt.Errorf("%w: %s", ErrNoTopic, topicName)
	}
	tp := TopicPartition{Topic: topicName, Partition: t.partitionFor(key)}
	msg := Message{Key: key, Value: append([]byte(nil), value...), Headers: cloneHeaders(headers)}

	p.txnMu.Lock()
	if p.inTxn {
		p.buffered = append(p.buffered, bufferedSend{tp: tp, msg: msg})
		p.txnMu.Unlock()
		return tp, -1, nil
	}
	p.txnMu.Unlock()

	part, err := p.b.partition(tp)
	if err != nil {
		return TopicPartition{}, 0, err
	}
	seq := p.nextSeq(tp, 1)
	_, off := part.append(tp.Topic, tp.Partition, p.id, seq, []Message{msg})
	if off < 0 { // idempotent duplicate: report the end of the log
		off = part.highWater() - 1
	}
	return tp, off, nil
}

func (p *Producer) nextSeq(tp TopicPartition, n int64) int64 {
	if p.id == "" {
		return 0
	}
	p.seqMu.Lock()
	defer p.seqMu.Unlock()
	base := p.seqs[tp] + 1
	p.seqs[tp] += n
	return base
}

// Begin starts a producer transaction. Messages sent until Commit are
// invisible to consumers; Abort discards them.
func (p *Producer) Begin() error {
	if p.txnID == "" {
		return fmt.Errorf("mq: producer %q is not transactional", p.id)
	}
	if err := p.checkFenced(); err != nil {
		return err
	}
	p.txnMu.Lock()
	defer p.txnMu.Unlock()
	if p.inTxn {
		return ErrTxnActive
	}
	p.inTxn = true
	p.buffered = nil
	p.offsets = nil
	return nil
}

// SendOffsets adds consumer-group offset commits to the transaction so that
// consume-transform-produce is atomic: either the outputs appear *and* the
// inputs are marked consumed, or neither.
func (p *Producer) SendOffsets(group string, offs map[TopicPartition]int64) error {
	p.txnMu.Lock()
	defer p.txnMu.Unlock()
	if !p.inTxn {
		return ErrNoTxn
	}
	if p.offsets == nil {
		p.offsets = make(map[string]map[TopicPartition]int64)
	}
	g, ok := p.offsets[group]
	if !ok {
		g = make(map[TopicPartition]int64)
		p.offsets[group] = g
	}
	for tp, off := range offs {
		if off > g[tp] {
			g[tp] = off
		}
	}
	return nil
}

// Commit atomically publishes the buffered messages and offset commits.
// Buffered messages never enter the log before Commit, so consumers can
// never observe an aborted transaction's data (read-committed by
// construction, the same observable semantics as Kafka's read_committed).
func (p *Producer) Commit() error {
	if err := p.checkFenced(); err != nil {
		return err
	}
	p.txnMu.Lock()
	if !p.inTxn {
		p.txnMu.Unlock()
		return ErrNoTxn
	}
	buffered := p.buffered
	offsets := p.offsets
	p.inTxn = false
	p.buffered = nil
	p.offsets = nil
	p.txnMu.Unlock()

	// Group by partition and append under the broker lock ordering:
	// partition appends are individually atomic; offsets commit last so a
	// crash between the two at worst redelivers (at-least-once floor), it
	// never loses.
	byPart := make(map[TopicPartition][]Message)
	var order []TopicPartition
	for _, s := range buffered {
		if _, ok := byPart[s.tp]; !ok {
			order = append(order, s.tp)
		}
		byPart[s.tp] = append(byPart[s.tp], s.msg)
	}
	for _, tp := range order {
		part, err := p.b.partition(tp)
		if err != nil {
			return err
		}
		msgs := byPart[tp]
		seq := p.nextSeq(tp, int64(len(msgs)))
		part.append(tp.Topic, tp.Partition, p.id, seq, msgs)
	}
	for group, offs := range offsets {
		p.b.commitOffsets(group, offs)
	}
	return nil
}

// Abort discards the buffered transaction.
func (p *Producer) Abort() error {
	p.txnMu.Lock()
	defer p.txnMu.Unlock()
	if !p.inTxn {
		return ErrNoTxn
	}
	p.inTxn = false
	p.buffered = nil
	p.offsets = nil
	return nil
}

func cloneHeaders(h map[string]string) map[string]string {
	if h == nil {
		return nil
	}
	c := make(map[string]string, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}
