package mq

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"tca/internal/fabric"
)

func newTopicBroker(t *testing.T, topic string, parts int) *Broker {
	t.Helper()
	b := NewBroker()
	b.CreateTopic(topic, parts)
	return b
}

func TestProduceConsume(t *testing.T) {
	b := newTopicBroker(t, "orders", 1)
	p := b.NewProducer("")
	for i := 0; i < 5; i++ {
		if _, _, err := p.Send("orders", "k", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.NewConsumer("g1", AtLeastOnce, "orders")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 {
		t.Fatalf("Poll = %d messages, want 5", len(msgs))
	}
	for i, m := range msgs {
		if string(m.Value) != fmt.Sprintf("m%d", i) {
			t.Fatalf("msg %d = %q", i, m.Value)
		}
		if m.Offset != int64(i) {
			t.Fatalf("offset %d = %d", i, m.Offset)
		}
	}
}

func TestOffsetsMonotonePerPartition(t *testing.T) {
	b := newTopicBroker(t, "t", 4)
	p := b.NewProducer("")
	seen := map[int]int64{}
	for i := 0; i < 200; i++ {
		tp, off, err := p.Send("t", fmt.Sprintf("key-%d", i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if last, ok := seen[tp.Partition]; ok && off != last+1 {
			t.Fatalf("partition %d offset jumped %d -> %d", tp.Partition, last, off)
		}
		seen[tp.Partition] = off
	}
}

func TestKeyRoutingStable(t *testing.T) {
	b := newTopicBroker(t, "t", 8)
	p := b.NewProducer("")
	tp1, _, _ := p.Send("t", "alice", []byte("1"))
	tp2, _, _ := p.Send("t", "alice", []byte("2"))
	if tp1.Partition != tp2.Partition {
		t.Fatalf("same key routed to different partitions: %d vs %d", tp1.Partition, tp2.Partition)
	}
}

func TestAtLeastOnceRedeliveryAfterCrash(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewProducer("")
	p.Send("t", "k", []byte("important"))

	c, _ := b.NewConsumer("g", AtLeastOnce, "t")
	msgs, _ := c.Poll(10)
	if len(msgs) != 1 {
		t.Fatalf("Poll = %d, want 1", len(msgs))
	}
	// Crash before Ack: a new consumer instance in the same group re-reads.
	c.ClearPending()
	msgs2, _ := c.Poll(10)
	if len(msgs2) != 1 || string(msgs2[0].Value) != "important" {
		t.Fatalf("no redelivery after crash: %v", msgs2)
	}
	c.Ack()
	if msgs3, _ := c.Poll(10); msgs3 != nil {
		t.Fatalf("redelivery after ack: %v", msgs3)
	}
}

func TestAtLeastOnceNoSelfRedeliveryInFlight(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewProducer("")
	p.Send("t", "k", []byte("a"))
	p.Send("t", "k", []byte("b"))
	c, _ := b.NewConsumer("g", AtLeastOnce, "t")
	first, _ := c.Poll(1)
	second, _ := c.Poll(1)
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("polls = %d, %d", len(first), len(second))
	}
	if string(first[0].Value) == string(second[0].Value) {
		t.Fatal("consumer re-read its own in-flight batch")
	}
}

func TestAtMostOnceLosesOnCrash(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewProducer("")
	p.Send("t", "k", []byte("gone"))
	c, _ := b.NewConsumer("g", AtMostOnce, "t")
	msgs, _ := c.Poll(10)
	if len(msgs) != 1 {
		t.Fatalf("Poll = %d, want 1", len(msgs))
	}
	// Crash before processing: offset already committed, message is lost.
	c.ClearPending()
	if again, _ := c.Poll(10); again != nil {
		t.Fatalf("at-most-once redelivered: %v", again)
	}
}

func TestIdempotentProducerDedupsRetries(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewProducer("producer-1")
	p.Send("t", "k", []byte("v"))
	// Simulate a producer retry of the same logical send: same producer id
	// and sequence. We model it by calling the partition append directly
	// with a stale sequence.
	part, _ := b.partition(TopicPartition{Topic: "t", Partition: 0})
	appended, _ := part.append("t", 0, "producer-1", 1, []Message{{Key: "k", Value: []byte("v")}})
	if appended != 0 {
		t.Fatalf("stale sequence appended %d records, want 0", appended)
	}
	hw, _ := b.HighWater(TopicPartition{Topic: "t", Partition: 0})
	if hw != 1 {
		t.Fatalf("high water = %d, want 1", hw)
	}
}

func TestTransactionalProduceAtomicVisibility(t *testing.T) {
	b := newTopicBroker(t, "t", 2)
	b.CreateTopic("t2", 1)
	p := b.NewTransactionalProducer("txn-1")
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	p.Send("t", "a", []byte("1"))
	p.Send("t", "b", []byte("2"))
	p.Send("t2", "c", []byte("3"))
	// Nothing visible before commit.
	for part := 0; part < 2; part++ {
		hw, _ := b.HighWater(TopicPartition{Topic: "t", Partition: part})
		if hw != 0 {
			t.Fatalf("uncommitted message visible in partition %d", part)
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for part := 0; part < 2; part++ {
		hw, _ := b.HighWater(TopicPartition{Topic: "t", Partition: part})
		total += hw
	}
	hw2, _ := b.HighWater(TopicPartition{Topic: "t2", Partition: 0})
	if total != 2 || hw2 != 1 {
		t.Fatalf("after commit: t=%d t2=%d, want 2 and 1", total, hw2)
	}
}

func TestTransactionalAbortDiscards(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewTransactionalProducer("txn-1")
	p.Begin()
	p.Send("t", "k", []byte("never"))
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	hw, _ := b.HighWater(TopicPartition{Topic: "t", Partition: 0})
	if hw != 0 {
		t.Fatal("aborted message visible")
	}
	// A fresh transaction works after abort.
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	p.Send("t", "k", []byte("yes"))
	p.Commit()
	hw, _ = b.HighWater(TopicPartition{Topic: "t", Partition: 0})
	if hw != 1 {
		t.Fatalf("high water = %d, want 1", hw)
	}
}

func TestZombieFencing(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	old := b.NewTransactionalProducer("app-1")
	old.Begin()
	old.Send("t", "k", []byte("stale"))
	// A new instance with the same transactional id fences the old one.
	fresh := b.NewTransactionalProducer("app-1")
	if err := old.Commit(); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie commit = %v, want ErrFenced", err)
	}
	hw, _ := b.HighWater(TopicPartition{Topic: "t", Partition: 0})
	if hw != 0 {
		t.Fatal("fenced producer's messages visible")
	}
	fresh.Begin()
	fresh.Send("t", "k", []byte("good"))
	if err := fresh.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestExactlyOnceConsumeTransformProduce(t *testing.T) {
	b := newTopicBroker(t, "in", 1)
	b.CreateTopic("out", 1)
	src := b.NewProducer("")
	for i := 0; i < 3; i++ {
		src.Send("in", "k", []byte{byte(i)})
	}
	c, _ := b.NewConsumer("proc", AtLeastOnce, "in")
	p := b.NewTransactionalProducer("proc-txn")

	// First pass: consume, produce, commit offsets atomically.
	msgs, _ := c.Poll(10)
	p.Begin()
	for _, m := range msgs {
		p.Send("out", m.Key, m.Value)
	}
	p.SendOffsets("proc", c.PendingOffsets())
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	c.ClearPending() // crash-restart of the processor

	// After restart nothing is redelivered: offsets committed with output.
	if again, _ := c.Poll(10); again != nil {
		t.Fatalf("exactly-once violated: redelivery %v", again)
	}
	hw, _ := b.HighWater(TopicPartition{Topic: "out", Partition: 0})
	if hw != 3 {
		t.Fatalf("out has %d messages, want 3", hw)
	}
}

func TestExactlyOnceCrashBeforeCommitRedelivers(t *testing.T) {
	b := newTopicBroker(t, "in", 1)
	b.CreateTopic("out", 1)
	b.NewProducer("").Send("in", "k", []byte("x"))
	c, _ := b.NewConsumer("proc", AtLeastOnce, "in")
	p := b.NewTransactionalProducer("proc-txn")

	msgs, _ := c.Poll(10)
	p.Begin()
	for _, m := range msgs {
		p.Send("out", m.Key, m.Value)
	}
	p.SendOffsets("proc", c.PendingOffsets())
	// Crash before Commit: buffered output and offsets vanish.
	p.Abort()
	c.ClearPending()

	again, _ := c.Poll(10)
	if len(again) != 1 {
		t.Fatal("input lost despite no commit")
	}
	hw, _ := b.HighWater(TopicPartition{Topic: "out", Partition: 0})
	if hw != 0 {
		t.Fatal("aborted output visible (would be a duplicate after retry)")
	}
}

func TestChaosDuplicateDelivery(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.DupProb = 1.0
	cluster := fabric.NewCluster(cfg, "n")
	b := newTopicBroker(t, "t", 1).WithChaos(cluster)
	b.NewProducer("").Send("t", "k", []byte("v"))
	c, _ := b.NewConsumer("g", AtLeastOnce, "t")
	msgs, _ := c.Poll(10)
	if len(msgs) != 2 {
		t.Fatalf("with DupProb=1 expected duplicated batch, got %d messages", len(msgs))
	}
}

func TestConsumerLag(t *testing.T) {
	b := newTopicBroker(t, "t", 2)
	p := b.NewProducer("")
	for i := 0; i < 10; i++ {
		p.Send("t", fmt.Sprintf("k%d", i), []byte("v"))
	}
	c, _ := b.NewConsumer("g", AtLeastOnce, "t")
	lag, _ := c.Lag()
	if lag != 10 {
		t.Fatalf("lag = %d, want 10", lag)
	}
	for {
		msgs, _ := c.Poll(100)
		if msgs == nil {
			break
		}
	}
	c.Ack()
	lag, _ = c.Lag()
	if lag != 0 {
		t.Fatalf("lag after drain = %d, want 0", lag)
	}
}

func TestUnknownTopicErrors(t *testing.T) {
	b := NewBroker()
	p := b.NewProducer("")
	if _, _, err := p.Send("ghost", "k", nil); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("Send to missing topic = %v, want ErrNoTopic", err)
	}
	if _, err := b.NewConsumer("g", AtLeastOnce, "ghost"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("consumer on missing topic = %v, want ErrNoTopic", err)
	}
	if _, err := b.HighWater(TopicPartition{Topic: "t", Partition: 9}); err == nil {
		t.Fatal("HighWater on missing topic should fail")
	}
}

func TestNonTransactionalBeginFails(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewProducer("plain")
	if err := p.Begin(); err == nil {
		t.Fatal("Begin on non-transactional producer should fail")
	}
}

func TestDoubleBeginFails(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewTransactionalProducer("x")
	p.Begin()
	if err := p.Begin(); !errors.Is(err, ErrTxnActive) {
		t.Fatalf("double Begin = %v, want ErrTxnActive", err)
	}
}

func TestCommitWithoutBeginFails(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewTransactionalProducer("x")
	if err := p.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Commit without Begin = %v, want ErrNoTxn", err)
	}
	if err := p.Abort(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Abort without Begin = %v, want ErrNoTxn", err)
	}
}

// Property: no loss and no reordering within a partition — consuming yields
// exactly the produced sequence.
func TestPartitionFIFOProperty(t *testing.T) {
	f := func(vals []byte) bool {
		b := NewBroker()
		b.CreateTopic("t", 1)
		p := b.NewProducer("")
		for _, v := range vals {
			p.Send("t", "same-key", []byte{v})
		}
		c, _ := b.NewConsumer("g", AtLeastOnce, "t")
		var got []byte
		for {
			msgs, _ := c.Poll(7)
			if msgs == nil {
				break
			}
			for _, m := range msgs {
				got = append(got, m.Value[0])
			}
			c.Ack()
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadersRoundTrip(t *testing.T) {
	b := newTopicBroker(t, "t", 1)
	p := b.NewProducer("")
	p.SendH("t", "k", []byte("v"), map[string]string{"trace": "abc"})
	c, _ := b.NewConsumer("g", AtLeastOnce, "t")
	msgs, _ := c.Poll(1)
	if msgs[0].Headers["trace"] != "abc" {
		t.Fatalf("headers = %v", msgs[0].Headers)
	}
}
