package mq

import (
	"fmt"
	"sync"
)

// DeliveryMode selects when a consumer acknowledges messages relative to
// processing them — the decision that determines the end-to-end guarantee
// (§3.2 "Relation of Messaging & State").
type DeliveryMode int

const (
	// AtLeastOnce delivers from the committed offset and advances it only
	// on explicit Ack. A crash between processing and Ack redelivers.
	AtLeastOnce DeliveryMode = iota
	// AtMostOnce advances the committed offset at Poll time, before the
	// application processes. A crash after Poll loses the batch.
	AtMostOnce
)

func (m DeliveryMode) String() string {
	switch m {
	case AtLeastOnce:
		return "at-least-once"
	case AtMostOnce:
		return "at-most-once"
	default:
		return fmt.Sprintf("delivery(%d)", int(m))
	}
}

// Consumer pulls messages from a set of topic partitions on behalf of a
// consumer group. Not safe for concurrent use (one goroutine per consumer,
// the usual client contract).
type Consumer struct {
	b     *Broker
	group string
	mode  DeliveryMode

	mu       sync.Mutex
	assigned []TopicPartition
	next     int // round-robin cursor over assigned partitions
	// pending are delivered-but-unacked offsets (at-least-once).
	pending map[TopicPartition]int64
}

// NewConsumer creates a consumer in the given group, assigned all
// partitions of the listed topics. (Static assignment: this repository
// models one consumer per partition set; group rebalancing protocols are
// out of scope and orthogonal to the delivery-guarantee experiments.)
func (b *Broker) NewConsumer(group string, mode DeliveryMode, topics ...string) (*Consumer, error) {
	c := &Consumer{b: b, group: group, mode: mode, pending: make(map[TopicPartition]int64)}
	for _, t := range topics {
		n, err := b.Partitions(t)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			c.assigned = append(c.assigned, TopicPartition{Topic: t, Partition: i})
		}
	}
	return c, nil
}

// NewPartitionConsumer creates a consumer assigned exactly the given
// partitions (used when multiple consumers split a topic).
func (b *Broker) NewPartitionConsumer(group string, mode DeliveryMode, parts ...TopicPartition) *Consumer {
	return &Consumer{b: b, group: group, mode: mode, assigned: parts, pending: make(map[TopicPartition]int64)}
}

// Group returns the consumer's group id.
func (c *Consumer) Group() string { return c.group }

// Assignment returns the consumer's partitions.
func (c *Consumer) Assignment() []TopicPartition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TopicPartition, len(c.assigned))
	copy(out, c.assigned)
	return out
}

// Poll fetches up to max messages, rotating over assigned partitions.
// Returns nil when nothing is available.
//
// Under AtMostOnce the committed offset advances immediately; under
// AtLeastOnce the caller must Ack (or the broker will redeliver the same
// messages to the group after a restart). If the broker has chaos attached,
// a batch may be delivered twice — receivers are responsible for dedup,
// the core difficulty §3.2 describes.
func (c *Consumer) Poll(max int) ([]Message, error) {
	if max <= 0 {
		max = 64
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for range c.assigned {
		tp := c.assigned[c.next%len(c.assigned)]
		c.next++
		from := c.fetchPosLocked(tp)
		msgs, err := c.b.Fetch(tp, from, max)
		if err != nil {
			return nil, err
		}
		if len(msgs) == 0 {
			continue
		}
		last := msgs[len(msgs)-1].Offset
		switch c.mode {
		case AtMostOnce:
			c.b.commitOffsets(c.group, map[TopicPartition]int64{tp: last + 1})
		case AtLeastOnce:
			c.pending[tp] = last + 1
		}
		// Duplicate-delivery injection: the transport redelivers the batch.
		c.b.mu.Lock()
		cl := c.b.cluster
		c.b.mu.Unlock()
		if cl != nil && cl.DupVerdict() {
			msgs = append(msgs, msgs...)
		}
		return msgs, nil
	}
	return nil, nil
}

// fetchPosLocked is where the next Poll reads from: the committed offset,
// advanced past delivered-but-unacked messages so one consumer instance
// does not re-read its own in-flight batch.
func (c *Consumer) fetchPosLocked(tp TopicPartition) int64 {
	pos := c.b.committedOffset(c.group, tp)
	if p, ok := c.pending[tp]; ok && p > pos {
		pos = p
	}
	return pos
}

// Ack commits all delivered offsets (at-least-once mode). Call after the
// batch's effects are durable.
func (c *Consumer) Ack() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) == 0 {
		return
	}
	offs := make(map[TopicPartition]int64, len(c.pending))
	for tp, off := range c.pending {
		offs[tp] = off
	}
	c.b.commitOffsets(c.group, offs)
	c.pending = make(map[TopicPartition]int64)
}

// PendingOffsets returns the delivered-but-unacked offsets, which a
// transactional processor passes to Producer.SendOffsets for exactly-once
// consume-transform-produce.
func (c *Consumer) PendingOffsets() map[TopicPartition]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	offs := make(map[TopicPartition]int64, len(c.pending))
	for tp, off := range c.pending {
		offs[tp] = off
	}
	return offs
}

// ClearPending forgets delivered-but-unacked state, simulating a consumer
// crash: the next Poll re-reads from the committed offset.
func (c *Consumer) ClearPending() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = make(map[TopicPartition]int64)
	c.next = 0
}

// Lag returns the total unconsumed messages across the assignment.
func (c *Consumer) Lag() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lag int64
	for _, tp := range c.assigned {
		hw, err := c.b.HighWater(tp)
		if err != nil {
			return 0, err
		}
		lag += hw - c.b.committedOffset(c.group, tp)
	}
	return lag, nil
}
