// Package rpc simulates the synchronous request/response transports of the
// paper's messaging taxonomy (§3.2 "REST and gRPC"): stateless HTTP-style
// calls with no delivery guarantee. Timeouts, sender retries and duplicate
// delivery are first-class — they are exactly the two duplicate-message
// cases §3.2 enumerates (partial failure on the sender side, redelivery
// after timeout) — so the idempotency-key middleware and its cost can be
// measured rather than assumed.
//
// Transport model: endpoints are registered on fabric nodes; a Call
// consults the fabric for the verdict of each attempt (latency charge,
// drop, duplicate) and then invokes the handler in-process. A dropped
// *request* means the handler never ran; a dropped *response* means the
// handler ran but the client times out and retries — the dangerous case
// for non-idempotent operations.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tca/internal/dedup"
	"tca/internal/fabric"
	"tca/internal/metrics"
)

// Common transport errors.
var (
	ErrNoEndpoint = errors.New("rpc: no such endpoint")
	ErrTimeout    = errors.New("rpc: timeout")
	ErrExhausted  = errors.New("rpc: retries exhausted")
)

// Handler processes one request.
type Handler func(c *Call, req []byte) ([]byte, error)

// Call carries per-request context through handler chains.
type Call struct {
	// Endpoint is the target endpoint name.
	Endpoint string
	// IdempotencyKey is the client-supplied unique request id ("" = none).
	IdempotencyKey string
	// Attempt is 1 for the first delivery, >1 for retries/duplicates.
	Attempt int
	// Trace accumulates simulated latency across the whole call tree.
	Trace *fabric.Trace
	// Node is the node the handler runs on.
	Node fabric.NodeID
}

// Transport connects clients to endpoints over a fabric cluster.
type Transport struct {
	cluster *fabric.Cluster
	metrics *metrics.Registry

	mu        sync.RWMutex
	endpoints map[string]*endpoint
}

type endpoint struct {
	name    string
	node    fabric.NodeID
	handler Handler
}

// NewTransport creates a transport over the given cluster.
func NewTransport(cluster *fabric.Cluster) *Transport {
	return &Transport{
		cluster:   cluster,
		metrics:   metrics.NewRegistry(),
		endpoints: make(map[string]*endpoint),
	}
}

// Metrics exposes the transport's instrument registry.
func (t *Transport) Metrics() *metrics.Registry { return t.metrics }

// Cluster returns the underlying fabric.
func (t *Transport) Cluster() *fabric.Cluster { return t.cluster }

// Register binds an endpoint name to a handler on a node. Re-registering
// replaces the handler (how a service restart rebinds its routes).
func (t *Transport) Register(name string, node fabric.NodeID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.endpoints[name] = &endpoint{name: name, node: node, handler: h}
}

// Unregister removes an endpoint.
func (t *Transport) Unregister(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.endpoints, name)
}

func (t *Transport) lookup(name string) (*endpoint, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ep, ok := t.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEndpoint, name)
	}
	return ep, nil
}

// CallOptions tune one logical call.
type CallOptions struct {
	// Retries is how many times the client re-sends after a lost request
	// or lost response. 0 means fire once.
	Retries int
	// RetryBackoff is the simulated wait charged to the trace before each
	// retry (the client's timeout).
	RetryBackoff time.Duration
	// IdempotencyKey is attached to every attempt of this logical call.
	IdempotencyKey string
}

// DefaultCallOptions retries 3 times with a 2ms simulated timeout.
func DefaultCallOptions() CallOptions {
	return CallOptions{Retries: 3, RetryBackoff: 2 * time.Millisecond}
}

// Call performs one logical request from src to the named endpoint.
// Each attempt independently risks request loss, response loss, and
// duplicate delivery per the fabric's chaos configuration. The handler may
// therefore execute zero, one, or multiple times for one logical call —
// the at-most-once / at-least-once tension of §3.2. Use idempotency keys
// plus Middleware to recover exactly-once effects.
func (t *Transport) Call(src fabric.NodeID, name string, req []byte, tr *fabric.Trace, opts CallOptions) ([]byte, error) {
	ep, err := t.lookup(name)
	if err != nil {
		return nil, err
	}
	attempts := opts.Retries + 1
	var lastErr error
	for i := 1; i <= attempts; i++ {
		if i > 1 {
			tr.Charge(opts.RetryBackoff)
			t.metrics.Counter("rpc.retries").Inc()
		}
		resp, err := t.attempt(src, ep, req, tr, i, opts.IdempotencyKey)
		if err == nil {
			t.metrics.Counter("rpc.ok").Inc()
			return resp, nil
		}
		lastErr = err
		if !retryable(err) {
			t.metrics.Counter("rpc.failed").Inc()
			return nil, err
		}
	}
	t.metrics.Counter("rpc.exhausted").Inc()
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, attempts, lastErr)
}

func retryable(err error) bool {
	return errors.Is(err, ErrTimeout) ||
		errors.Is(err, fabric.ErrDropped) ||
		errors.Is(err, fabric.ErrNodeDown) ||
		errors.Is(err, fabric.ErrPartitioned)
}

// attempt is one wire delivery: request leg, execution, response leg.
func (t *Transport) attempt(src fabric.NodeID, ep *endpoint, req []byte, tr *fabric.Trace, attempt int, key string) ([]byte, error) {
	// Request leg.
	d := t.cluster.Send(src, ep.node, tr)
	if d.Err != nil {
		return nil, fmt.Errorf("%w: request leg: %w", ErrTimeout, d.Err)
	}
	call := &Call{Endpoint: ep.name, IdempotencyKey: key, Attempt: attempt, Trace: tr, Node: ep.node}
	resp, err := ep.handler(call, req)
	if d.Duplicated {
		// The network delivered the request twice: the handler executes
		// again. The duplicate's response is discarded — only its side
		// effects remain, which is the whole problem.
		dupCall := &Call{Endpoint: ep.name, IdempotencyKey: key, Attempt: attempt + 1, Trace: tr, Node: ep.node}
		_, _ = ep.handler(dupCall, req)
		t.metrics.Counter("rpc.duplicates").Inc()
	}
	if err != nil {
		return nil, err
	}
	// Response leg.
	d = t.cluster.Send(ep.node, src, tr)
	if d.Err != nil {
		// The handler ran but the client never learns: timeout + retry
		// will re-execute a non-idempotent handler.
		t.metrics.Counter("rpc.lost_responses").Inc()
		return nil, fmt.Errorf("%w: response leg: %w", ErrTimeout, d.Err)
	}
	return resp, nil
}

// WithIdempotency wraps a handler with idempotency-key dedup: replayed
// keys return the recorded response without re-executing. Calls without a
// key pass through unprotected.
func WithIdempotency(store *dedup.Store, h Handler) Handler {
	return func(c *Call, req []byte) ([]byte, error) {
		if c.IdempotencyKey == "" {
			return h(c, req)
		}
		resp, _, err := store.DoLocked(c.IdempotencyKey, func() ([]byte, error) {
			return h(c, req)
		})
		return resp, err
	}
}
