package rpc

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tca/internal/dedup"
	"tca/internal/fabric"
)

func newTestTransport(cfg fabric.Config) (*Transport, *fabric.Cluster) {
	cl := fabric.NewCluster(cfg, "client", "server")
	return NewTransport(cl), cl
}

func TestCallRoundTrip(t *testing.T) {
	tr, _ := newTestTransport(fabric.DefaultConfig())
	tr.Register("echo", "server", func(c *Call, req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	trace := fabric.NewTrace()
	resp, err := tr.Call("client", "echo", []byte("hi"), trace, DefaultCallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if trace.Hops() != 2 {
		t.Fatalf("hops = %d, want 2 (request + response)", trace.Hops())
	}
	if trace.Total() <= 0 {
		t.Fatal("no latency charged")
	}
}

func TestUnknownEndpoint(t *testing.T) {
	tr, _ := newTestTransport(fabric.DefaultConfig())
	if _, err := tr.Call("client", "ghost", nil, nil, DefaultCallOptions()); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v, want ErrNoEndpoint", err)
	}
}

func TestHandlerErrorNotRetried(t *testing.T) {
	tr, _ := newTestTransport(fabric.DefaultConfig())
	var calls atomic.Int32
	tr.Register("fail", "server", func(c *Call, req []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("business error")
	})
	_, err := tr.Call("client", "fail", nil, nil, DefaultCallOptions())
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Fatalf("handler called %d times; business errors must not be retried", calls.Load())
	}
}

func TestRetriesOnDrop(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.DropProb = 0.4
	cfg.Seed = 7
	tr, _ := newTestTransport(cfg)
	var calls atomic.Int32
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) {
		calls.Add(1)
		return []byte("ok"), nil
	})
	okCount := 0
	for i := 0; i < 200; i++ {
		if _, err := tr.Call("client", "op", nil, nil, CallOptions{Retries: 5, RetryBackoff: time.Millisecond}); err == nil {
			okCount++
		}
	}
	if okCount < 190 {
		t.Fatalf("only %d/200 calls succeeded despite retries", okCount)
	}
	// Retries mean more handler executions than logical calls — the
	// duplicate-execution hazard.
	if calls.Load() <= 200 {
		t.Logf("handler calls = %d (lucky seed: no response-leg losses)", calls.Load())
	}
}

func TestCrashedServerFailsAfterRetries(t *testing.T) {
	tr, cl := newTestTransport(fabric.DefaultConfig())
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) { return nil, nil })
	cl.Crash("server")
	_, err := tr.Call("client", "op", nil, nil, CallOptions{Retries: 2, RetryBackoff: time.Millisecond})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestLostResponseCausesDoubleExecution(t *testing.T) {
	// Deterministically lose the first response: handler runs, client
	// retries, handler runs again — §3.2's non-idempotent hazard.
	cfg := fabric.DefaultConfig()
	cfg.DropProb = 0.35
	cfg.Seed = 3
	tr, _ := newTestTransport(cfg)
	var balance atomic.Int64
	tr.Register("credit", "server", func(c *Call, req []byte) ([]byte, error) {
		balance.Add(100) // non-idempotent side effect
		return []byte("ok"), nil
	})
	logical := 0
	for i := 0; i < 300; i++ {
		if _, err := tr.Call("client", "credit", nil, nil, CallOptions{Retries: 8, RetryBackoff: time.Millisecond}); err == nil {
			logical++
		}
	}
	if got := balance.Load(); got <= int64(logical)*100 {
		t.Fatalf("balance = %d for %d logical credits; expected over-crediting from retries", got, logical)
	}
}

func TestIdempotencyMiddlewareRestoresExactlyOnce(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.DropProb = 0.35
	cfg.DupProb = 0.2
	cfg.Seed = 3
	tr, _ := newTestTransport(cfg)
	var balance atomic.Int64
	store := dedup.New(0)
	tr.Register("credit", "server", WithIdempotency(store, func(c *Call, req []byte) ([]byte, error) {
		balance.Add(100)
		return []byte("ok"), nil
	}))
	logical := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("credit-%d", i)
		if _, err := tr.Call("client", "credit", nil, nil, CallOptions{Retries: 8, RetryBackoff: time.Millisecond, IdempotencyKey: key}); err == nil {
			logical++
		}
	}
	// Every successful logical call credited exactly once. (Failed logical
	// calls may still have executed — exactly-once *effects* need the
	// caller to reuse the same key on its own higher-level retry, which
	// this test does not do.)
	if got := balance.Load(); got < int64(logical)*100 {
		t.Fatalf("balance = %d, want >= %d", got, logical*100)
	}
	executed := balance.Load() / 100
	if executed > 300 {
		t.Fatalf("handler effects = %d for 300 logical calls; dedup failed", executed)
	}
}

func TestDuplicateDeliveryExecutesHandlerTwice(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.DupProb = 1.0
	tr, _ := newTestTransport(cfg)
	var calls atomic.Int32
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) {
		calls.Add(1)
		return nil, nil
	})
	if _, err := tr.Call("client", "op", nil, nil, CallOptions{}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times with DupProb=1, want 2", calls.Load())
	}
}

func TestCallAttemptNumbers(t *testing.T) {
	tr, _ := newTestTransport(fabric.DefaultConfig())
	var lastAttempt atomic.Int32
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) {
		lastAttempt.Store(int32(c.Attempt))
		return nil, nil
	})
	tr.Call("client", "op", nil, nil, CallOptions{})
	if lastAttempt.Load() != 1 {
		t.Fatalf("first attempt = %d, want 1", lastAttempt.Load())
	}
}

func TestUnregister(t *testing.T) {
	tr, _ := newTestTransport(fabric.DefaultConfig())
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) { return nil, nil })
	tr.Unregister("op")
	if _, err := tr.Call("client", "op", nil, nil, CallOptions{}); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v, want ErrNoEndpoint", err)
	}
}

func TestMetricsCounters(t *testing.T) {
	tr, _ := newTestTransport(fabric.DefaultConfig())
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) { return nil, nil })
	tr.Call("client", "op", nil, nil, CallOptions{})
	if got := tr.Metrics().Counter("rpc.ok").Value(); got != 1 {
		t.Fatalf("rpc.ok = %d, want 1", got)
	}
}

func TestRetryBackoffChargedToTrace(t *testing.T) {
	tr, cl := newTestTransport(fabric.DefaultConfig())
	tr.Register("op", "server", func(c *Call, req []byte) ([]byte, error) { return nil, nil })
	cl.Crash("server")
	trace := fabric.NewTrace()
	backoff := 10 * time.Millisecond
	tr.Call("client", "op", nil, trace, CallOptions{Retries: 3, RetryBackoff: backoff})
	if trace.Total() < 3*backoff {
		t.Fatalf("trace %v should include 3 retry backoffs of %v", trace.Total(), backoff)
	}
}
