package grid

import (
	"math"
	"sort"
	"time"
)

// Stats is the repeat spread of one metric: sample mean, sample standard
// deviation (n−1 denominator; zero when n < 2), and the observed range.
type Stats struct {
	Mean, Std, Min, Max float64
	N                   int
}

// NewStats computes the spread of xs. An empty slice yields the zero
// Stats; a single observation has Std 0 and Min = Max = Mean.
func NewStats(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// PooledQuantile returns the q-quantile over the concatenation of the
// sample sets — the row-level tail estimate that pools every repeat's
// reservoir instead of averaging per-repeat quantiles (averaging biases
// the tail low when repeats disagree). The convention matches
// workload.LatencyReservoir: sorted index int(q·n), q ≥ 1 the maximum.
// Zero samples return zero.
func PooledQuantile(sets [][]time.Duration, q float64) time.Duration {
	var n int
	for _, s := range sets {
		n += len(s)
	}
	if n == 0 {
		return 0
	}
	pool := make([]time.Duration, 0, n)
	for _, s := range sets {
		pool = append(pool, s...)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	if q >= 1 {
		return pool[len(pool)-1]
	}
	if q < 0 {
		q = 0
	}
	idx := int(q * float64(len(pool)))
	if idx >= len(pool) {
		idx = len(pool) - 1
	}
	return pool[idx]
}
