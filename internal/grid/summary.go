package grid

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRow is one machine-readable result row — the schema of
// BENCH_latest.json and ci/bench_baseline.json. Metrics are keyed by
// name; a grid-produced row carries the throughput mean under the plain
// key (so single-run consumers keep working) plus key_std/key_min/
// key_max, a "repeats" count, and pooled-p99 latency keys.
type BenchRow struct {
	Experiment string             `json:"experiment"`
	Row        string             `json:"row"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Key is the row's identity in a summary: experiment/row.
func (r BenchRow) Key() string { return r.Experiment + "/" + r.Row }

// Summary is the -json document. Repeats and BaseSeed are present only
// on grid-produced summaries; single-run emitters leave them zero and
// older files without the fields decode to zero — both sides of a
// comparison may therefore be either shape.
type Summary struct {
	OpsPerCell int        `json:"ops_per_cell"`
	Repeats    int        `json:"repeats,omitempty"`
	BaseSeed   int64      `json:"base_seed,omitempty"`
	Rows       []BenchRow `json:"rows"`
}

// ReadSummary decodes one summary file.
func ReadSummary(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// BenchRow renders one aggregated row into the summary schema under the
// spec's metric names.
func (res RowResult) BenchRow(spec Spec) BenchRow {
	m := map[string]float64{
		"repeats": float64(res.Repeats),
	}
	key := spec.ThroughputKey
	if key == "" {
		key = "tx_s"
	}
	m[key] = res.Throughput.Mean
	m[key+"_std"] = res.Throughput.Std
	m[key+"_min"] = res.Throughput.Min
	m[key+"_max"] = res.Throughput.Max
	if spec.AcceptKey != "" && res.AcceptP99 > 0 {
		m[spec.AcceptKey] = float64(res.AcceptP99) / 1e3
	}
	if spec.ApplyKey != "" && res.ApplyP99 > 0 {
		m[spec.ApplyKey] = float64(res.ApplyP99) / 1e3
	}
	for k, st := range res.Extra {
		m[k] = st.Mean
		m[k+"_std"] = st.Std
	}
	return BenchRow{Experiment: res.Row.Experiment, Row: res.Row.Name(), Metrics: m}
}
