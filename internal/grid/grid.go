// Package grid is the declarative experiment-grid runner behind
// `tcabench -grid` and the CI regression gate: a Spec declares an
// experiment's knob axes, a repeat count, and a base seed; Run expands
// the axes into rows, executes each row once per repeat with the seed
// varied deterministically (BaseSeed + repeat index), and aggregates the
// repeats into per-row mean/std/min/max throughput plus pooled latency
// tails. The package also owns the machine-readable summary schema
// (Summary — what BENCH_latest.json and ci/bench_baseline.json hold) and
// the std-aware comparison that gates PRs on it, so the runner, the
// emitter, and the gate can never disagree about what a row means.
//
// Isolation contract: a RunFunc must build all of its state fresh on
// every call — cells, runtimes, brokers, temp-dir logs — and tear it
// down before returning. Nothing may survive a repeat in package-level
// state; the repeat seeds (not execution order) are the only thing that
// distinguishes two repeats, which is what makes row statistics
// invariant under grid-order shuffling (pinned in grid_test.go).
package grid

import (
	"fmt"
	"strings"
	"time"
)

// Axis is one knob of a grid: a name and the values to sweep.
type Axis struct {
	Name   string
	Values []string
}

// Spec declares one experiment's grid.
type Spec struct {
	// Experiment is the id the emitted rows carry (e.g. "e10").
	Experiment string
	// Axes are the knobs; the grid's rows are their cartesian product in
	// declaration order (first axis slowest).
	Axes []Axis
	// Repeats is how many times each row runs (min 1). Repeat r uses seed
	// BaseSeed + r, so the repeat index — never wall-clock or execution
	// order — determines a repeat's randomness.
	Repeats int
	// BaseSeed anchors the per-repeat seeds (zero means 1).
	BaseSeed int64
	// Ops is the per-run operation count handed to the RunFunc.
	Ops int
	// ThroughputKey names the throughput metric in the emitted row
	// ("ops_s", "tx_s", "goodput_s"): the mean lands under the key itself
	// — old single-run consumers keep working — and the spread under
	// key_std/key_min/key_max.
	ThroughputKey string
	// AcceptKey and ApplyKey, when non-empty, name the pooled-p99 latency
	// metrics (microseconds) computed from the repeats' accept/apply
	// sample sets.
	AcceptKey, ApplyKey string
}

// Row is one cell of the expanded grid: the experiment id plus one value
// per axis.
type Row struct {
	Experiment string
	names      []string
	values     []string
}

// Knob returns the row's value for the named axis ("" if absent).
func (r Row) Knob(name string) string {
	for i, n := range r.names {
		if n == name {
			return r.values[i]
		}
	}
	return ""
}

// Name renders the row label the summary uses: "axis=value" pairs joined
// by "/" in axis order.
func (r Row) Name() string {
	if len(r.names) == 0 {
		return "default"
	}
	parts := make([]string, len(r.names))
	for i := range r.names {
		parts[i] = r.names[i] + "=" + r.values[i]
	}
	return strings.Join(parts, "/")
}

// Rows expands the spec's axes into their cartesian product, first axis
// slowest. A spec with no axes yields one knobless row.
func (s Spec) Rows() []Row {
	rows := []Row{{Experiment: s.Experiment}}
	for _, ax := range s.Axes {
		next := make([]Row, 0, len(rows)*len(ax.Values))
		for _, r := range rows {
			for _, v := range ax.Values {
				nr := Row{
					Experiment: s.Experiment,
					names:      append(append([]string(nil), r.names...), ax.Name),
					values:     append(append([]string(nil), r.values...), v),
				}
				next = append(next, nr)
			}
		}
		rows = next
	}
	return rows
}

// Sample is one repeat's measurement of one row.
type Sample struct {
	// Throughput is the run's rate under the spec's ThroughputKey.
	Throughput float64
	// Accept and Apply are the run's latency sample sets (the bounded
	// reservoir contents); Run pools them across repeats for the row's
	// tail estimate.
	Accept, Apply []time.Duration
	// Extra metrics are averaged across repeats and emitted with a _std
	// companion (informational — the gate never fails on them).
	Extra map[string]float64
}

// RunFunc executes one row once under one seed. It must construct all
// state fresh and release it before returning (see the package comment).
type RunFunc func(row Row, seed int64, ops int) (Sample, error)

// RowResult aggregates one row's repeats.
type RowResult struct {
	Row     Row
	Repeats int
	// Throughput is the repeat spread of the run rates.
	Throughput Stats
	// AcceptP99 and ApplyP99 are p99s over the pooled per-repeat sample
	// sets (zero when no samples were reported).
	AcceptP99, ApplyP99 time.Duration
	// Extra holds the spread of each extra metric.
	Extra map[string]Stats
}

// Run executes every row of the spec Repeats times and aggregates. Rows
// run sequentially in expansion order; each row's repeat r always uses
// seed BaseSeed + r, so results are independent of row order.
func Run(spec Spec, run RunFunc) ([]RowResult, error) {
	return RunObserved(spec, run, nil)
}

// RunObserved is Run with a progress callback invoked before each repeat
// (nil means none) — tcabench narrates grid progress on stderr with it.
func RunObserved(spec Spec, run RunFunc, observe func(row Row, repeat int)) ([]RowResult, error) {
	if spec.Repeats < 1 {
		spec.Repeats = 1
	}
	base := spec.BaseSeed
	if base == 0 {
		base = 1
	}
	var out []RowResult
	for _, row := range spec.Rows() {
		rates := make([]float64, 0, spec.Repeats)
		var acceptSets, applySets [][]time.Duration
		extras := map[string][]float64{}
		for r := 0; r < spec.Repeats; r++ {
			if observe != nil {
				observe(row, r)
			}
			sample, err := run(row, base+int64(r), spec.Ops)
			if err != nil {
				return nil, fmt.Errorf("grid %s %s repeat %d: %w", spec.Experiment, row.Name(), r, err)
			}
			rates = append(rates, sample.Throughput)
			if len(sample.Accept) > 0 {
				acceptSets = append(acceptSets, sample.Accept)
			}
			if len(sample.Apply) > 0 {
				applySets = append(applySets, sample.Apply)
			}
			for k, v := range sample.Extra {
				extras[k] = append(extras[k], v)
			}
		}
		res := RowResult{
			Row:        row,
			Repeats:    spec.Repeats,
			Throughput: NewStats(rates),
			AcceptP99:  PooledQuantile(acceptSets, 0.99),
			ApplyP99:   PooledQuantile(applySets, 0.99),
		}
		if len(extras) > 0 {
			res.Extra = make(map[string]Stats, len(extras))
			for k, vs := range extras {
				res.Extra[k] = NewStats(vs)
			}
		}
		out = append(out, res)
	}
	return out, nil
}
