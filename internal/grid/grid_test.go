package grid

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// almost compares floats to a tolerance wide enough for arithmetic noise
// and tight enough that a wrong denominator (n vs n−1) fails.
func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestNewStats pins the spread computation on hand-computed fixtures:
// sample (n−1) standard deviation, and the single-observation and
// zero-variance edges the gate math must not divide by zero on.
func TestNewStats(t *testing.T) {
	for _, tc := range []struct {
		name                string
		xs                  []float64
		mean, std, min, max float64
	}{
		// var = ((10−12)² + 0 + (14−12)²)/2 = 4 → std 2.
		{"hand-computed", []float64{10, 12, 14}, 12, 2, 10, 14},
		{"single-repeat", []float64{5}, 5, 0, 5, 5},
		{"zero-variance", []float64{7, 7, 7}, 7, 0, 7, 7},
		// var = (4+4)/1 = 8 → std 2√2.
		{"two-repeats", []float64{1, 5}, 3, 2 * math.Sqrt2, 1, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStats(tc.xs)
			if !almost(s.Mean, tc.mean) || !almost(s.Std, tc.std) ||
				!almost(s.Min, tc.min) || !almost(s.Max, tc.max) || s.N != len(tc.xs) {
				t.Fatalf("NewStats(%v) = %+v, want mean %g std %g min %g max %g",
					tc.xs, s, tc.mean, tc.std, tc.min, tc.max)
			}
		})
	}
	if s := NewStats(nil); s != (Stats{}) {
		t.Fatalf("NewStats(nil) = %+v, want zero", s)
	}
}

// TestPooledQuantile pins the pooled tail: sets concatenate before
// sorting (index int(q·n) over the pool, matching the reservoir
// convention), q ≥ 1 is the pooled maximum, and no samples yield zero.
func TestPooledQuantile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sets := [][]time.Duration{
		{ms(5), ms(1), ms(9)},
		{ms(3), ms(7)},
	}
	// Pool sorted: 1,3,5,7,9. int(0.5·5)=2 → 5ms; int(0.99·5)=4 → 9ms.
	if got := PooledQuantile(sets, 0.5); got != ms(5) {
		t.Fatalf("median = %v, want 5ms", got)
	}
	if got := PooledQuantile(sets, 0.99); got != ms(9) {
		t.Fatalf("p99 = %v, want 9ms", got)
	}
	if got := PooledQuantile(sets, 1); got != ms(9) {
		t.Fatalf("q=1 = %v, want the maximum 9ms", got)
	}
	if got := PooledQuantile(nil, 0.99); got != 0 {
		t.Fatalf("empty pool = %v, want 0", got)
	}
}

// TestSpecRows pins the cartesian expansion (first axis slowest), the
// row labels, and the knobless degenerate case.
func TestSpecRows(t *testing.T) {
	spec := Spec{
		Experiment: "ex",
		Axes: []Axis{
			{Name: "a", Values: []string{"1", "2"}},
			{Name: "b", Values: []string{"x", "y"}},
		},
	}
	var names []string
	for _, r := range spec.Rows() {
		names = append(names, r.Name())
	}
	want := []string{"a=1/b=x", "a=1/b=y", "a=2/b=x", "a=2/b=y"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", names, want)
	}
	r := spec.Rows()[2]
	if r.Knob("a") != "2" || r.Knob("b") != "x" || r.Knob("zzz") != "" {
		t.Fatalf("knobs of %s wrong: a=%q b=%q", r.Name(), r.Knob("a"), r.Knob("b"))
	}
	if rows := (Spec{Experiment: "ex"}).Rows(); len(rows) != 1 || rows[0].Name() != "default" {
		t.Fatalf("knobless spec rows = %v", rows)
	}
}

// fakeRun is a deterministic RunFunc: throughput is a pure function of
// (row name, seed), so any two grids over the same rows and seeds must
// agree exactly — the harness for the seed-policy and order-invariance
// tests. It also logs the (row, seed) call sequence.
type fakeRun struct {
	calls []string
}

func (f *fakeRun) run(row Row, seed int64, ops int) (Sample, error) {
	f.calls = append(f.calls, fmt.Sprintf("%s@%d", row.Name(), seed))
	// Distinct per (row, seed), collision-free at test sizes.
	v := float64(seed * 1000)
	for _, c := range row.Name() {
		v += float64(c)
	}
	return Sample{
		Throughput: v,
		Accept:     []time.Duration{time.Duration(seed) * time.Millisecond},
	}, nil
}

// TestRunSeedSequence pins the seed policy: repeat r of every row runs
// under BaseSeed + r, rows sequentially in expansion order.
func TestRunSeedSequence(t *testing.T) {
	f := &fakeRun{}
	spec := Spec{
		Experiment: "ex",
		Axes:       []Axis{{Name: "k", Values: []string{"a", "b"}}},
		Repeats:    3, BaseSeed: 10,
	}
	res, err := Run(spec, f.run)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k=a@10", "k=a@11", "k=a@12", "k=b@10", "k=b@11", "k=b@12"}
	if fmt.Sprint(f.calls) != fmt.Sprint(want) {
		t.Fatalf("call sequence %v, want %v", f.calls, want)
	}
	if len(res) != 2 || res[0].Repeats != 3 || res[0].Throughput.N != 3 {
		t.Fatalf("results malformed: %+v", res)
	}
	// Pooled accept tail over seeds 10,11,12 → p99 index 2 → 12ms.
	if res[0].AcceptP99 != 12*time.Millisecond {
		t.Fatalf("pooled AcceptP99 = %v, want 12ms", res[0].AcceptP99)
	}
}

// TestRunOrderInvariance pins the isolation contract's observable half:
// because a repeat's randomness is its seed and nothing leaks between
// rows, reversing the grid's row order must reproduce identical per-row
// statistics.
func TestRunOrderInvariance(t *testing.T) {
	fwd := Spec{
		Experiment: "ex",
		Axes:       []Axis{{Name: "k", Values: []string{"a", "b", "c"}}},
		Repeats:    3, BaseSeed: 5,
	}
	rev := fwd
	rev.Axes = []Axis{{Name: "k", Values: []string{"c", "b", "a"}}}
	resFwd, err := Run(fwd, (&fakeRun{}).run)
	if err != nil {
		t.Fatal(err)
	}
	resRev, err := Run(rev, (&fakeRun{}).run)
	if err != nil {
		t.Fatal(err)
	}
	byName := func(rs []RowResult) map[string]RowResult {
		m := map[string]RowResult{}
		for _, r := range rs {
			m[r.Row.Name()] = r
		}
		return m
	}
	f, r := byName(resFwd), byName(resRev)
	for name, fr := range f {
		rr, ok := r[name]
		if !ok {
			t.Fatalf("row %s missing from the reversed grid", name)
		}
		if fr.Throughput != rr.Throughput || fr.AcceptP99 != rr.AcceptP99 {
			t.Fatalf("row %s differs across orders: %+v vs %+v", name, fr, rr)
		}
	}
}

// TestRunErrorPropagates pins the failure path: a repeat error aborts
// the grid with the row and repeat named.
func TestRunErrorPropagates(t *testing.T) {
	boom := func(row Row, seed int64, ops int) (Sample, error) {
		if seed == 2 {
			return Sample{}, fmt.Errorf("boom")
		}
		return Sample{Throughput: 1}, nil
	}
	_, err := Run(Spec{Experiment: "ex", Repeats: 3, BaseSeed: 1}, boom)
	if err == nil {
		t.Fatal("repeat error did not propagate")
	}
	if want := "grid ex default repeat 1: boom"; err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// TestRunClamps pins the defensive defaults: Repeats < 1 runs once,
// BaseSeed 0 anchors at 1.
func TestRunClamps(t *testing.T) {
	f := &fakeRun{}
	if _, err := Run(Spec{Experiment: "ex"}, f.run); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(f.calls) != "[default@1]" {
		t.Fatalf("calls = %v, want one run at seed 1", f.calls)
	}
}

// mkSummary builds a one-row summary for the comparison tests.
func mkSummary(metrics map[string]float64) *Summary {
	return &Summary{
		OpsPerCell: 100,
		Rows:       []BenchRow{{Experiment: "ex", Row: "r", Metrics: metrics}},
	}
}

// TestCompareStdGate pins the std-aware verdicts: a delta beyond the
// percentage threshold gates only when it also clears 2× the pooled
// std; within that spread it is reported as noise. Old single-run
// summaries carry no std and gate on the percentage alone.
func TestCompareStdGate(t *testing.T) {
	t.Run("noisy-delta-suppressed", func(t *testing.T) {
		// −25% but pooled std = sqrt((20²+20²)/2) = 20, 2×20 = 40 ≥ |Δ|=25.
		old := mkSummary(map[string]float64{"tx_s": 100, "tx_s_std": 20})
		new := mkSummary(map[string]float64{"tx_s": 75, "tx_s_std": 20})
		res := Compare(old, new, CompareOptions{})
		if res.Failed() || res.Suppressed != 1 || res.Regressions != 0 {
			t.Fatalf("noisy delta not suppressed: %+v", res)
		}
		if res.Deltas[0].Kind != "noise" {
			t.Fatalf("delta kind = %q, want noise", res.Deltas[0].Kind)
		}
	})
	t.Run("tight-delta-gates", func(t *testing.T) {
		// −25% with pooled std 1: far outside noise → regression.
		old := mkSummary(map[string]float64{"tx_s": 100, "tx_s_std": 1})
		new := mkSummary(map[string]float64{"tx_s": 75, "tx_s_std": 1})
		res := Compare(old, new, CompareOptions{})
		if !res.Failed() || res.Regressions != 1 {
			t.Fatalf("tight regression not gated: %+v", res)
		}
	})
	t.Run("no-std-gates-on-pct", func(t *testing.T) {
		// Legacy single-run files: no _std keys → pooled std 0 → pct-only.
		old := mkSummary(map[string]float64{"tx_s": 100})
		new := mkSummary(map[string]float64{"tx_s": 75})
		res := Compare(old, new, CompareOptions{})
		if !res.Failed() || res.Regressions != 1 {
			t.Fatalf("pct-only regression not gated: %+v", res)
		}
	})
	t.Run("improvement-reported-not-failed", func(t *testing.T) {
		old := mkSummary(map[string]float64{"tx_s": 100, "tx_s_std": 1})
		new := mkSummary(map[string]float64{"tx_s": 150, "tx_s_std": 1})
		res := Compare(old, new, CompareOptions{})
		if res.Failed() || res.Improvements != 1 {
			t.Fatalf("improvement verdict wrong: %+v", res)
		}
	})
	t.Run("within-threshold-silent", func(t *testing.T) {
		old := mkSummary(map[string]float64{"tx_s": 100})
		new := mkSummary(map[string]float64{"tx_s": 90})
		res := Compare(old, new, CompareOptions{})
		if res.Failed() || len(res.Deltas) != 0 || res.Compared != 1 {
			t.Fatalf("−10%% under a 20%% threshold flagged: %+v", res)
		}
	})
}

// TestCompareMissingRowFails pins the hard-failure bugfix: a row present
// in old but absent from new fails the comparison even with every
// surviving metric unchanged — a deleted benchmark can never regress.
func TestCompareMissingRowFails(t *testing.T) {
	old := &Summary{Rows: []BenchRow{
		{Experiment: "ex", Row: "kept", Metrics: map[string]float64{"tx_s": 100}},
		{Experiment: "ex", Row: "dropped", Metrics: map[string]float64{"tx_s": 100}},
	}}
	new := &Summary{Rows: []BenchRow{
		{Experiment: "ex", Row: "kept", Metrics: map[string]float64{"tx_s": 100}},
		{Experiment: "ex", Row: "added", Metrics: map[string]float64{"tx_s": 100}},
	}}
	res := Compare(old, new, CompareOptions{})
	if !res.Failed() {
		t.Fatal("missing row did not fail the comparison")
	}
	if fmt.Sprint(res.Missing) != "[ex/dropped]" || fmt.Sprint(res.Added) != "[ex/added]" {
		t.Fatalf("missing/added = %v / %v", res.Missing, res.Added)
	}
	if res.Regressions != 0 {
		t.Fatalf("missing row counted as a metric regression: %+v", res)
	}
}

// TestCompareLatencyInformational pins that a latency swing beyond the
// threshold is reported but never gates.
func TestCompareLatencyInformational(t *testing.T) {
	old := mkSummary(map[string]float64{"tx_s": 100, "accept_p99_us": 100})
	new := mkSummary(map[string]float64{"tx_s": 100, "accept_p99_us": 300})
	res := Compare(old, new, CompareOptions{})
	if res.Failed() {
		t.Fatalf("latency swing gated: %+v", res)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Kind != "latency" || res.Deltas[0].Metric != "accept_p99_us" {
		t.Fatalf("latency delta not reported: %+v", res.Deltas)
	}
}
