package grid

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// update regenerates the golden files instead of diffing against them:
// go test ./internal/grid -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestSummaryGolden pins the extended BENCH_latest schema against a
// checked-in golden file: the throughput mean under the plain key (the
// back-compat guarantee old consumers rely on) plus _std/_min/_max, the
// repeats count, pooled-p99 latency keys in microseconds, and extras
// with their _std companions. Regenerate with -update after a deliberate
// schema change.
func TestSummaryGolden(t *testing.T) {
	spec := Spec{
		Experiment:    "e23",
		Axes:          []Axis{{Name: "shed", Values: []string{"on"}}},
		Repeats:       3,
		BaseSeed:      1,
		Ops:           1000,
		ThroughputKey: "goodput_s",
		AcceptKey:     "accept_p99_us",
		ApplyKey:      "apply_p99_us",
	}
	res := RowResult{
		Row:       spec.Rows()[0],
		Repeats:   3,
		AcceptP99: 1500 * time.Microsecond,
		ApplyP99:  2500 * time.Microsecond,
		Throughput: Stats{
			Mean: 2000, Std: 25, Min: 1975, Max: 2025, N: 3,
		},
		Extra: map[string]Stats{"shed_pct": {Mean: 1.5, Std: 0.5, Min: 1, Max: 2, N: 3}},
	}
	sum := Summary{
		OpsPerCell: 1000,
		Repeats:    3,
		BaseSeed:   1,
		Rows:       []BenchRow{res.BenchRow(spec)},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "summary_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("summary schema drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
	// The golden file must itself survive a ReadSummary round trip.
	got, err := ReadSummary(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got.Repeats != 3 || got.BaseSeed != 1 || len(got.Rows) != 1 {
		t.Fatalf("round-tripped summary malformed: %+v", got)
	}
	if v := got.Rows[0].Metrics["goodput_s"]; v != 2000 {
		t.Fatalf("round-tripped mean = %v, want 2000", v)
	}
}

// TestReadSummaryLegacy pins that pre-grid single-run files (no repeats,
// no base_seed, no _std keys) still decode — both sides of a comparison
// may be either shape.
func TestReadSummaryLegacy(t *testing.T) {
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	raw := []byte(`{"ops_per_cell": 500, "rows": [
		{"experiment": "e10", "row": "closed 4 clients", "metrics": {"ops_s": 9500}}
	]}`)
	if err := os.WriteFile(legacy, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSummary(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if s.Repeats != 0 || s.BaseSeed != 0 || s.Rows[0].Metrics["ops_s"] != 9500 {
		t.Fatalf("legacy summary decoded wrong: %+v", s)
	}
}
