package grid

import (
	"math"
	"sort"
)

// ThroughputMetrics are the "bigger is better" rates the comparison
// gates on. Exact names only — the _std/_min/_max companions a grid row
// carries are inputs to the gate, never gated themselves.
var ThroughputMetrics = []string{"tx_s", "ops_s", "query_s", "tx_s_audited", "tx_s_off", "goodput_s"}

// LatencyMetrics are the "smaller is better" columns the comparison
// reports alongside throughput. Informational by default: a latency
// swing beyond the threshold is printed but never fails the gate (tails
// swing with machine load at experiment-sized runs).
var LatencyMetrics = []string{
	"p50_us", "p99_us",
	"accept_p50_us", "accept_p99_us", "accept_p999_us",
	"apply_p50_us", "apply_p99_us", "apply_p999_us",
}

// CompareOptions tunes a summary comparison.
type CompareOptions struct {
	// ThresholdPct flags throughput deltas beyond this percentage
	// (zero means 20).
	ThresholdPct float64
	// StdFactor is the noise gate: when both rows carry a _std companion
	// for the metric, a delta is flagged only if it also exceeds
	// StdFactor × the pooled std (zero means 2). Rows without std info —
	// old single-run summaries — gate on the percentage alone.
	StdFactor float64
}

// Delta is one reported metric difference.
type Delta struct {
	RowKey, Metric string
	Old, New       float64
	// Pct is the relative change in percent (positive = higher in new).
	Pct float64
	// PooledStd is sqrt((std_old² + std_new²)/2) when both sides carry a
	// _std companion, else 0.
	PooledStd float64
	// Kind is "regression" (gates), "improvement", "latency"
	// (informational), or "noise" — a delta beyond the percentage
	// threshold that the std gate absorbed.
	Kind string
}

// CompareResult is the verdict of one summary comparison.
type CompareResult struct {
	Deltas []Delta
	// Missing are old rows absent from the new summary — a hard failure:
	// a deleted benchmark can never regress, so a gate that shrugs at
	// missing rows gates nothing.
	Missing []string
	// Added are new rows with no old counterpart (reported, not failed).
	Added    []string
	Compared int
	// Regressions counts gating deltas; Suppressed the throughput deltas
	// the std gate absorbed as repeat noise.
	Regressions, Improvements, Suppressed int
}

// Failed reports whether the comparison should gate: any regression, or
// any row present in old but missing from new.
func (r CompareResult) Failed() bool {
	return r.Regressions > 0 || len(r.Missing) > 0
}

// Compare diffs two summaries row by row: std-aware gating on the
// throughput metrics, informational reporting on the latency columns,
// hard failure on rows the new summary dropped.
func Compare(oldSum, newSum *Summary, opts CompareOptions) CompareResult {
	if opts.ThresholdPct == 0 {
		opts.ThresholdPct = 20
	}
	if opts.StdFactor == 0 {
		opts.StdFactor = 2
	}
	oldRows := make(map[string]BenchRow, len(oldSum.Rows))
	for _, r := range oldSum.Rows {
		oldRows[r.Key()] = r
	}
	var res CompareResult
	seen := make(map[string]bool, len(newSum.Rows))
	for _, nr := range newSum.Rows {
		key := nr.Key()
		seen[key] = true
		or, ok := oldRows[key]
		if !ok {
			res.Added = append(res.Added, key)
			continue
		}
		for _, metric := range ThroughputMetrics {
			newV, ok := nr.Metrics[metric]
			if !ok {
				continue
			}
			oldV, ok := or.Metrics[metric]
			if !ok || oldV <= 0 {
				continue
			}
			res.Compared++
			pct := 100 * (newV - oldV) / oldV
			if math.Abs(pct) <= opts.ThresholdPct {
				continue
			}
			pooled := pooledStd(or.Metrics[metric+"_std"], nr.Metrics[metric+"_std"])
			d := Delta{RowKey: key, Metric: metric, Old: oldV, New: newV, Pct: pct, PooledStd: pooled}
			switch {
			case math.Abs(newV-oldV) <= opts.StdFactor*pooled:
				// Beyond the percentage threshold but within repeat
				// noise: report, don't gate.
				d.Kind = "noise"
				res.Suppressed++
			case pct < 0:
				d.Kind = "regression"
				res.Regressions++
			default:
				d.Kind = "improvement"
				res.Improvements++
			}
			res.Deltas = append(res.Deltas, d)
		}
		for _, metric := range LatencyMetrics {
			newV, ok := nr.Metrics[metric]
			if !ok {
				continue
			}
			oldV, ok := or.Metrics[metric]
			if !ok || oldV <= 0 {
				continue
			}
			if pct := 100 * (newV - oldV) / oldV; math.Abs(pct) > opts.ThresholdPct {
				res.Deltas = append(res.Deltas, Delta{
					RowKey: key, Metric: metric, Old: oldV, New: newV, Pct: pct, Kind: "latency",
				})
			}
		}
	}
	for key := range oldRows {
		if !seen[key] {
			res.Missing = append(res.Missing, key)
		}
	}
	sort.Strings(res.Missing)
	sort.Strings(res.Added)
	return res
}

// pooledStd combines the two sides' repeat spreads; either side without
// std info (an old single-run summary) contributes zero.
func pooledStd(a, b float64) float64 {
	return math.Sqrt((a*a + b*b) / 2)
}
