package statefun

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"tca/internal/mq"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func toI64(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// counterFn keeps a per-id counter; "add" increments by the payload and
// emits the new total to egress.
func counterFn(ctx *Ctx, payload []byte) error {
	cur := int64(0)
	if b, ok := ctx.Get("n"); ok {
		cur = toI64(b)
	}
	cur += toI64(payload)
	ctx.Set("n", i64(cur))
	ctx.SendEgress(ctx.Self.ID, i64(cur))
	return nil
}

func newCounterApp(t *testing.T, name string, egress func(key string, value []byte)) (*App, *mq.Broker) {
	t.Helper()
	b := mq.NewBroker()
	app := NewApp(b, Config{
		Name:        name,
		Parallelism: 2,
		Ingress:     name + "-in",
		OnEgress:    egress,
	})
	app.Register("counter", counterFn)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	return app, b
}

func waitIdle(t *testing.T, app *App) {
	t.Helper()
	if err := app.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestIngressToFunction(t *testing.T) {
	var mu sync.Mutex
	last := map[string]int64{}
	app, _ := newCounterApp(t, "app1", func(k string, v []byte) {
		mu.Lock()
		last[k] = toI64(v)
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		if err := app.SendToIngress(Ref{"counter", "a"}, i64(1)); err != nil {
			t.Fatal(err)
		}
	}
	waitIdle(t, app)
	mu.Lock()
	defer mu.Unlock()
	if last["a"] != 5 {
		t.Fatalf("counter a = %d, want 5", last["a"])
	}
}

func TestScopedStatePerFunctionInstance(t *testing.T) {
	var mu sync.Mutex
	last := map[string]int64{}
	app, _ := newCounterApp(t, "app2", func(k string, v []byte) {
		mu.Lock()
		last[k] = toI64(v)
		mu.Unlock()
	})
	app.SendToIngress(Ref{"counter", "x"}, i64(10))
	app.SendToIngress(Ref{"counter", "y"}, i64(20))
	waitIdle(t, app)
	mu.Lock()
	defer mu.Unlock()
	if last["x"] != 10 || last["y"] != 20 {
		t.Fatalf("x=%d y=%d, want 10, 20 (state must be scoped per id)", last["x"], last["y"])
	}
}

func TestFunctionToFunctionMessaging(t *testing.T) {
	b := mq.NewBroker()
	var mu sync.Mutex
	var egressed []string
	app := NewApp(b, Config{
		Name: "chain", Parallelism: 2, Ingress: "chain-in",
		OnEgress: func(k string, v []byte) {
			mu.Lock()
			egressed = append(egressed, k)
			mu.Unlock()
		},
	})
	// forwarder passes to counter; counter emits.
	app.Register("forwarder", func(ctx *Ctx, payload []byte) error {
		return ctx.Send(Ref{"counter", "target"}, payload)
	})
	app.Register("counter", func(ctx *Ctx, payload []byte) error {
		if ctx.Caller.Type != "forwarder" {
			return fmt.Errorf("caller = %v, want forwarder", ctx.Caller)
		}
		ctx.SendEgress(ctx.Self.ID, payload)
		return nil
	})
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	app.SendToIngress(Ref{"forwarder", "f1"}, i64(7))
	waitIdle(t, app)
	mu.Lock()
	defer mu.Unlock()
	if len(egressed) != 1 || egressed[0] != "target" {
		t.Fatalf("egressed = %v", egressed)
	}
}

func TestExactlyOnceStateAcrossCrash(t *testing.T) {
	var mu sync.Mutex
	last := map[string]int64{}
	app, _ := newCounterApp(t, "app3", func(k string, v []byte) {
		mu.Lock()
		last[k] = toI64(v)
		mu.Unlock()
	})
	for i := 0; i < 6; i++ {
		app.SendToIngress(Ref{"counter", "c"}, i64(1))
	}
	waitIdle(t, app)
	if _, err := app.TriggerCheckpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		app.SendToIngress(Ref{"counter", "c"}, i64(1))
	}
	waitIdle(t, app)
	app.Crash()
	if err := app.Recover(); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, app)
	mu.Lock()
	defer mu.Unlock()
	if last["c"] != 10 {
		t.Fatalf("counter = %d, want 10 (exactly-once across crash)", last["c"])
	}
}

func TestFunctionSendsExactlyOnceAcrossCrash(t *testing.T) {
	// A fan-out function sends to a counter; crash-replay of the fan-out
	// must not double-deliver (deterministic idempotent produce).
	b := mq.NewBroker()
	var mu sync.Mutex
	last := map[string]int64{}
	app := NewApp(b, Config{
		Name: "fan", Parallelism: 2, Ingress: "fan-in",
		OnEgress: func(k string, v []byte) {
			mu.Lock()
			last[k] = toI64(v)
			mu.Unlock()
		},
	})
	app.Register("fanout", func(ctx *Ctx, payload []byte) error {
		for i := 0; i < 3; i++ {
			if err := ctx.Send(Ref{"counter", fmt.Sprintf("t%d", i)}, payload); err != nil {
				return err
			}
		}
		return nil
	})
	app.Register("counter", counterFn)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	app.SendToIngress(Ref{"fanout", "f"}, i64(1))
	waitIdle(t, app)
	// Crash without a checkpoint: everything replays from scratch. The
	// fan-out re-executes and re-sends, but the broker dedups the sends.
	app.Crash()
	if err := app.Recover(); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, app)
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("t%d", i)
		if last[k] != 1 {
			t.Fatalf("counter %s = %d, want 1 (function sends must dedup)", k, last[k])
		}
	}
}

func TestEgressTopicExactlyOnce(t *testing.T) {
	b := mq.NewBroker()
	app := NewApp(b, Config{
		Name: "eg", Parallelism: 1, Ingress: "eg-in", Egress: "eg-out",
	})
	app.Register("counter", counterFn)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	app.SendToIngress(Ref{"counter", "k"}, i64(5))
	waitIdle(t, app)
	// Invisible until checkpoint.
	hw, _ := b.HighWater(mq.TopicPartition{Topic: "eg-out", Partition: 0})
	if hw != 0 {
		t.Fatalf("egress visible before checkpoint: %d", hw)
	}
	if _, err := app.TriggerCheckpoint(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for p := 0; p < 1; p++ {
		hw, _ := b.HighWater(mq.TopicPartition{Topic: "eg-out", Partition: p})
		total += hw
	}
	if total != 1 {
		t.Fatalf("egress after checkpoint = %d, want 1", total)
	}
}

func TestNoIsolationAcrossFunctions(t *testing.T) {
	// The §4.2 observation: exactly-once processing is not transactional
	// isolation. A "transfer" implemented as two separate function
	// messages exposes an intermediate state where money has left one
	// account and not arrived at the other.
	b := mq.NewBroker()
	var mu sync.Mutex
	balances := map[string]int64{}
	app := NewApp(b, Config{
		Name: "bank", Parallelism: 2, Ingress: "bank-in",
		OnEgress: func(k string, v []byte) {
			mu.Lock()
			balances[k] = toI64(v)
			mu.Unlock()
		},
	})
	app.Register("account", func(ctx *Ctx, payload []byte) error {
		cur := int64(0)
		if b, ok := ctx.Get("bal"); ok {
			cur = toI64(b)
		}
		cur += toI64(payload)
		ctx.Set("bal", i64(cur))
		ctx.SendEgress(ctx.Self.ID, i64(cur))
		return nil
	})
	// transfer debits one account, then credits the other via a second
	// message — the saga-like, isolation-free pattern.
	app.Register("transfer", func(ctx *Ctx, payload []byte) error {
		if err := ctx.Send(Ref{"account", "from"}, i64(-toI64(payload))); err != nil {
			return err
		}
		return ctx.Send(Ref{"account", "to"}, payload)
	})
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	app.SendToIngress(Ref{"account", "from"}, i64(100))
	app.SendToIngress(Ref{"account", "to"}, i64(100))
	waitIdle(t, app)
	app.SendToIngress(Ref{"transfer", "t1"}, i64(30))
	waitIdle(t, app)
	mu.Lock()
	defer mu.Unlock()
	// Eventually consistent: totals match after quiescence...
	if balances["from"] != 70 || balances["to"] != 130 {
		t.Fatalf("balances = %v, want from=70 to=130", balances)
	}
	// ...but there is no isolation primitive at all: nothing in this
	// programming model can make the two updates atomic to observers.
	// (internal/core exists to close exactly this gap.)
}

func TestTooManySends(t *testing.T) {
	b := mq.NewBroker()
	errCh := make(chan error, 1)
	app := NewApp(b, Config{Name: "burst", Parallelism: 1, Ingress: "burst-in"})
	app.Register("burst", func(ctx *Ctx, payload []byte) error {
		var err error
		for i := 0; i <= MaxSends; i++ {
			// Target an unregistered type: the sends are dropped at
			// dispatch, so the storm does not recurse.
			if err = ctx.Send(Ref{"sink-hole", "next"}, nil); err != nil {
				break
			}
		}
		select {
		case errCh <- err:
		default:
		}
		return err
	})
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	app.SendToIngress(Ref{"burst", "b"}, nil)
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected ErrTooManySends")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("function never ran")
	}
}

// registerChunkedFanout registers a function that delivers one message to
// each of n counters (t0..t{n-1}) across as many invocation rounds as the
// send budget requires — the continuation pattern the tca statefun cell
// uses for wide transactions. The payload carries the next target index.
func registerChunkedFanout(app *App, n int, errs chan<- error) {
	app.Register("cfan", func(ctx *Ctx, payload []byte) error {
		next := int(toI64(payload))
		for next < n {
			if ctx.SendsRemaining() == 1 && n-next > 1 {
				// Last slot with more than one target left: reserve it
				// for the continuation.
				if err := ctx.SendSelf(i64(int64(next))); err != nil {
					errs <- err
					return err
				}
				return nil
			}
			if err := ctx.Send(Ref{"counter", fmt.Sprintf("t%d", next)}, i64(1)); err != nil {
				errs <- err
				return err
			}
			next++
		}
		return nil
	})
}

// TestChunkedFanoutBoundaries pins the continuation pattern at the exact
// chunk boundaries: fan-outs of 31 (fits with the reserved slot), 32 (the
// old hard ceiling), 33 (first two-round case), and 3*31+1 (multi-round)
// all complete with exactly one delivery per target and never hit
// ErrTooManySends.
func TestChunkedFanoutBoundaries(t *testing.T) {
	for _, n := range []int{MaxSends - 1, MaxSends, MaxSends + 1, 3*(MaxSends-1) + 1} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			b := mq.NewBroker()
			var mu sync.Mutex
			last := map[string]int64{}
			app := NewApp(b, Config{
				Name: fmt.Sprintf("cfan%d", n), Parallelism: 2, Ingress: fmt.Sprintf("cfan%d-in", n),
				OnEgress: func(k string, v []byte) {
					mu.Lock()
					last[k] = toI64(v)
					mu.Unlock()
				},
			})
			errs := make(chan error, n+4)
			registerChunkedFanout(app, n, errs)
			app.Register("counter", counterFn)
			if err := app.Start(); err != nil {
				t.Fatal(err)
			}
			defer app.Stop()
			if err := app.SendToIngress(Ref{"cfan", "wide"}, i64(0)); err != nil {
				t.Fatal(err)
			}
			if err := app.WaitIdle(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-errs:
				t.Fatalf("chunked fan-out hit a send error: %v", err)
			default:
			}
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("t%d", i)
				if last[k] != 1 {
					t.Fatalf("counter %s = %d, want exactly 1", k, last[k])
				}
			}
		})
	}
}

// TestChunkedFanoutExactlyOnceAcrossCrash crashes the app mid-stream with
// no checkpoint: every round replays, every send re-produces, and the
// broker's idempotent-producer dedup still leaves exactly one delivery per
// target — the continuation rounds share the per-record sequence space
// safely because each round consumes its own record.
func TestChunkedFanoutExactlyOnceAcrossCrash(t *testing.T) {
	const n = 3*(MaxSends-1) + 1
	b := mq.NewBroker()
	var mu sync.Mutex
	last := map[string]int64{}
	app := NewApp(b, Config{
		Name: "cfanx", Parallelism: 2, Ingress: "cfanx-in",
		OnEgress: func(k string, v []byte) {
			mu.Lock()
			last[k] = toI64(v)
			mu.Unlock()
		},
	})
	errs := make(chan error, n+4)
	registerChunkedFanout(app, n, errs)
	app.Register("counter", counterFn)
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	if err := app.SendToIngress(Ref{"cfan", "wide"}, i64(0)); err != nil {
		t.Fatal(err)
	}
	if err := app.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	app.Crash()
	if err := app.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := app.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatalf("chunked fan-out hit a send error: %v", err)
	default:
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("t%d", i)
		if last[k] != 1 {
			t.Fatalf("counter %s = %d, want exactly 1 across crash-replay", k, last[k])
		}
	}
}

func TestUnregisteredFunctionDropped(t *testing.T) {
	app, _ := newCounterApp(t, "drop", nil)
	// Must not wedge the pipeline.
	app.SendToIngress(Ref{"ghost", "g"}, i64(1))
	app.SendToIngress(Ref{"counter", "ok"}, i64(1))
	waitIdle(t, app)
}
