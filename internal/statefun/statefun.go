// Package statefun implements Stateful Functions on streaming dataflows —
// the Flink Statefun / SFaaS design of §3.1: developers write functions
// addressed by (type, id); each function owns scoped state co-located with
// execution; functions exchange asynchronous messages; and the runtime
// provides exactly-once processing by integrating state updates with the
// message log (§4.2: "Statefun ... manages state updates and messages in an
// integrated manner, transparently rewinding the application state ... it
// achieves exactly-once processing and atomicity as a consequence.
// However, there is no transactional isolation across Statefun entities.").
//
// Architecture: one dataflow job over an internal message topic. An ingress
// relay copies external messages into the internal topic with a broker
// transaction (exactly-once). Function-to-function sends append to the
// internal topic with deterministic idempotent-producer sequence numbers
// derived from the consumed record's coordinates, so crash-replay re-sends
// are deduplicated by the broker — exactly-once function messaging without
// any application code.
//
// The missing transactional isolation across functions is not a bug: it is
// the exact gap experiment E7 demonstrates, and the one internal/core
// closes.
package statefun

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"tca/internal/dataflow"
	"tca/internal/mq"
)

// Common runtime errors.
var (
	ErrNoFunction   = errors.New("statefun: no registered function type")
	ErrTooManySends = errors.New("statefun: too many sends in one invocation")
	ErrNotRunning   = errors.New("statefun: app not running")
)

// MaxSends bounds function fan-out per consumed message; the deterministic
// idempotence scheme reserves this many sequence numbers per input record.
// Wider fan-outs are not a runtime feature but a choreography pattern:
// send up to MaxSends-1 messages, reserve the last slot for a SendSelf
// continuation, and resume from the continuation's own invocation. Each
// continuation round is driven by its own consumed record (a fresh offset
// on the internal topic), so the per-record sequence space
// origin.Offset*MaxSends+sends stays collision-free across rounds — no
// extension of the idempotence scheme is needed, only the reserved slot.
const MaxSends = 32

// Ref addresses a function instance.
type Ref struct {
	Type string `json:"t"`
	ID   string `json:"i"`
}

func (r Ref) String() string { return r.Type + "/" + r.ID }

// envelope is the wire format on the internal topic.
type envelope struct {
	To      Ref    `json:"to"`
	From    Ref    `json:"from,omitempty"`
	Payload []byte `json:"p"`
}

// Handler is the body of a stateful function.
type Handler func(ctx *Ctx, payload []byte) error

// Ctx is the per-invocation context of a function.
type Ctx struct {
	// Self is the function instance being invoked.
	Self Ref
	// Caller is the sending function (zero for ingress messages).
	Caller Ref

	app    *App
	op     *dataflow.OpCtx
	origin dataflow.Record
	sends  int
}

// stateKey prefixes user keys with the function address, giving each
// (type, id) its own scoped namespace within the instance's keyed state.
func (c *Ctx) stateKey(key string) string { return c.Self.String() + "\x00" + key }

// Get reads a key of the function's scoped state.
func (c *Ctx) Get(key string) ([]byte, bool) {
	return c.op.State().Get(c.stateKey(key))
}

// Set writes a key of the function's scoped state. The update is covered by
// the job's checkpoints: state and message progress commit together.
func (c *Ctx) Set(key string, value []byte) {
	c.op.State().Put(c.stateKey(key), value)
}

// Del removes a key of the function's scoped state.
func (c *Ctx) Del(key string) {
	c.op.State().Delete(c.stateKey(key))
}

// Send delivers a message to another function, exactly once even across
// crash-replay (deterministic idempotent produce).
func (c *Ctx) Send(to Ref, payload []byte) error {
	if c.sends >= MaxSends {
		return fmt.Errorf("%w: > %d", ErrTooManySends, MaxSends)
	}
	env := envelope{To: to, From: c.Self, Payload: payload}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("statefun: marshal envelope: %w", err)
	}
	producerID := fmt.Sprintf("%s-fn-p%d", c.app.cfg.Name, c.origin.Partition)
	seq := c.origin.Offset*MaxSends + int64(c.sends)
	c.sends++
	_, err = c.app.broker.ProduceIdempotent(c.app.internalTopic(), to.String(), data, producerID, seq)
	return err
}

// SendSelf delivers a message to the invoked instance itself — the
// continuation primitive for multi-round choreographies. The message is
// keyed like any other send, so it lands on the same partition and sees
// the same scoped state, and it is exactly-once like any other send: a
// crash between rounds replays the round that produced the continuation,
// and the broker dedups the re-produce.
func (c *Ctx) SendSelf(payload []byte) error { return c.Send(c.Self, payload) }

// SendsRemaining returns how many sends this invocation may still make
// before Send returns ErrTooManySends. Choreographies that fan out wider
// than the budget chunk on it: send SendsRemaining()-1 messages, then one
// SendSelf continuation to claim a fresh budget.
func (c *Ctx) SendsRemaining() int { return MaxSends - c.sends }

// SendEgress emits a record to the app's egress. With an egress topic the
// delivery is exactly-once (committed at checkpoints); with a callback it
// is at-least-once.
func (c *Ctx) SendEgress(key string, value []byte) {
	c.op.Emit(key, value)
}

// Config describes a statefun application.
type Config struct {
	// Name identifies the app (topics are derived from it).
	Name string
	// Parallelism is the number of partitions/instances. Zero means 4.
	Parallelism int
	// Ingress is the external input topic (created if needed).
	Ingress string
	// Egress is the exactly-once output topic ("" = use OnEgress).
	Egress string
	// OnEgress is the at-least-once callback sink used when Egress is "".
	OnEgress func(key string, value []byte)
}

// App is a stateful-functions application.
type App struct {
	cfg    Config
	broker *mq.Broker
	job    *dataflow.Job

	mu      sync.RWMutex
	fns     map[string]Handler
	running bool

	relayStop chan struct{}
	relayWG   sync.WaitGroup
}

// NewApp creates an application over the broker.
func NewApp(broker *mq.Broker, cfg Config) *App {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	a := &App{cfg: cfg, broker: broker, fns: make(map[string]Handler)}
	broker.CreateTopic(cfg.Ingress, cfg.Parallelism)
	broker.CreateTopic(a.internalTopic(), cfg.Parallelism)
	if cfg.Egress != "" {
		broker.CreateTopic(cfg.Egress, cfg.Parallelism)
	}
	return a
}

func (a *App) internalTopic() string { return a.cfg.Name + "-internal" }

// Register binds a function type to its handler.
func (a *App) Register(fnType string, h Handler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fns[fnType] = h
}

// Job exposes the underlying dataflow job (checkpoint control, metrics).
func (a *App) Job() *dataflow.Job { return a.job }

// Start builds and launches the dataflow job and the ingress relay.
func (a *App) Start() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running {
		return dataflow.ErrRunning
	}
	if a.job == nil {
		j := dataflow.NewJob(a.broker, dataflow.Config{Name: a.cfg.Name}).
			Source(a.internalTopic()).
			Stage("functions", a.cfg.Parallelism, a.dispatch)
		switch {
		case a.cfg.Egress != "":
			j.SinkTo(a.cfg.Egress)
		case a.cfg.OnEgress != nil:
			j.Sink(func(r dataflow.Record) { a.cfg.OnEgress(r.Key, r.Value) })
		default:
			j.Sink(func(dataflow.Record) {})
		}
		a.job = j
	}
	if err := a.job.Start(); err != nil {
		return err
	}
	a.relayStop = make(chan struct{})
	a.relayWG.Add(1)
	go a.runRelay()
	a.running = true
	return nil
}

// dispatch decodes an envelope and invokes the target function.
func (a *App) dispatch(op *dataflow.OpCtx, rec dataflow.Record) {
	var env envelope
	if err := json.Unmarshal(rec.Value, &env); err != nil {
		return // poison message: drop (a DLQ is application policy)
	}
	a.mu.RLock()
	h, ok := a.fns[env.To.Type]
	a.mu.RUnlock()
	if !ok {
		return
	}
	ctx := &Ctx{Self: env.To, Caller: env.From, app: a, op: op, origin: rec}
	_ = h(ctx, env.Payload) // handler errors are the function's own policy
}

// runRelay pumps ingress into the internal topic with exactly-once
// consume-transform-produce.
func (a *App) runRelay() {
	defer a.relayWG.Done()
	group := a.cfg.Name + "-relay"
	consumer, err := a.broker.NewConsumer(group, mq.AtLeastOnce, a.cfg.Ingress)
	if err != nil {
		return
	}
	producer := a.broker.NewTransactionalProducer(group)
	for {
		select {
		case <-a.relayStop:
			return
		default:
		}
		msgs, err := consumer.Poll(64)
		if err != nil || len(msgs) == 0 {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err := producer.Begin(); err != nil {
			return // fenced by a newer relay instance
		}
		for _, m := range msgs {
			producer.Send(a.internalTopic(), m.Key, m.Value)
		}
		producer.SendOffsets(group, consumer.PendingOffsets())
		if err := producer.Commit(); err != nil {
			return
		}
		consumer.ClearPending()
	}
}

// SendToIngress enqueues an external message for a function.
func (a *App) SendToIngress(to Ref, payload []byte) error {
	env := envelope{To: to, Payload: payload}
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	p := a.broker.NewProducer("")
	_, _, err = p.Send(a.cfg.Ingress, to.String(), data)
	return err
}

// WaitIdle blocks until ingress, internal traffic, and in-flight records
// drain.
func (a *App) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		// Ingress relay lag.
		for p := 0; p < a.cfg.Parallelism; p++ {
			tp := mq.TopicPartition{Topic: a.cfg.Ingress, Partition: p}
			hw, err := a.broker.HighWater(tp)
			if err == nil && hw > a.broker.CommittedOffset(a.cfg.Name+"-relay", tp) {
				idle = false
			}
		}
		if a.job != nil && a.job.Lag() != 0 {
			idle = false
		}
		if idle {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("statefun: not idle after %v", timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TriggerCheckpoint checkpoints the app (state + progress + egress commit).
func (a *App) TriggerCheckpoint() (uint64, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.running {
		return 0, ErrNotRunning
	}
	return a.job.TriggerCheckpoint()
}

// Crash simulates a process failure of the whole app (job + relay).
func (a *App) Crash() {
	if job := a.prepareShutdown(); job != nil {
		job.Crash()
	}
}

// Recover restarts from the last completed checkpoint.
func (a *App) Recover() error { return a.Start() }

// Stop halts the app gracefully.
func (a *App) Stop() {
	if job := a.prepareShutdown(); job != nil {
		job.Stop()
	}
}

// prepareShutdown stops the relay and flips the running flag, returning the
// job to halt — without holding a.mu, which dispatch (running inside the
// job's instance goroutines) also acquires.
func (a *App) prepareShutdown() *dataflow.Job {
	a.mu.Lock()
	if !a.running {
		a.mu.Unlock()
		return nil
	}
	a.running = false
	stop := a.relayStop
	job := a.job
	a.mu.Unlock()
	close(stop)
	a.relayWG.Wait()
	return job
}
