package dedup

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoFirstExecutesThenDedups(t *testing.T) {
	s := New(0)
	calls := 0
	fn := func() ([]byte, error) { calls++; return []byte("r"), nil }
	r1, dup1, err1 := s.Do("key", fn)
	r2, dup2, err2 := s.Do("key", fn)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if dup1 || !dup2 {
		t.Fatalf("dup flags = %v, %v; want false, true", dup1, dup2)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if string(r1) != "r" || string(r2) != "r" {
		t.Fatalf("responses %q, %q", r1, r2)
	}
}

func TestErrorsAreRecordedToo(t *testing.T) {
	s := New(0)
	sentinel := errors.New("boom")
	calls := 0
	fn := func() ([]byte, error) { calls++; return nil, sentinel }
	_, _, err1 := s.Do("k", fn)
	_, dup, err2 := s.Do("k", fn)
	if !errors.Is(err1, sentinel) || !errors.Is(err2, sentinel) {
		t.Fatalf("errors = %v, %v", err1, err2)
	}
	if !dup || calls != 1 {
		t.Fatalf("dup=%v calls=%d; failed results must be replayed, not re-run", dup, calls)
	}
}

func TestDistinctKeysIndependent(t *testing.T) {
	s := New(0)
	calls := 0
	fn := func() ([]byte, error) { calls++; return nil, nil }
	s.Do("a", fn)
	s.Do("b", fn)
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewWithClock(time.Minute, func() time.Time { return now })
	calls := 0
	fn := func() ([]byte, error) { calls++; return nil, nil }
	s.Do("k", fn)
	now = now.Add(30 * time.Second)
	s.Do("k", fn)
	if calls != 1 {
		t.Fatalf("inside window: calls = %d, want 1", calls)
	}
	now = now.Add(2 * time.Minute)
	s.Do("k", fn)
	if calls != 2 {
		t.Fatalf("after expiry: calls = %d, want 2 (dedup horizon is bounded)", calls)
	}
}

func TestSweep(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewWithClock(time.Minute, func() time.Time { return now })
	s.Save("a", nil, nil)
	s.Save("b", nil, nil)
	now = now.Add(2 * time.Minute)
	s.Save("c", nil, nil)
	if n := s.Sweep(); n != 2 {
		t.Fatalf("Sweep removed %d, want 2", n)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStats(t *testing.T) {
	s := New(0)
	fn := func() ([]byte, error) { return nil, nil }
	s.Do("k", fn)
	s.Do("k", fn)
	s.Do("k2", fn)
	hits, misses := s.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 2", hits, misses)
	}
}

func TestDoLockedSerializesConcurrentDuplicates(t *testing.T) {
	s := New(0)
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() ([]byte, error) {
		calls.Add(1)
		close(started)
		<-release
		return []byte("once"), nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.DoLocked("k", fn)
	}()
	<-started
	// Concurrent duplicate arrives while the first is executing.
	results := make(chan string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, dup, _ := s.DoLocked("k", func() ([]byte, error) {
				calls.Add(1)
				return []byte("again"), nil
			})
			if !dup {
				t.Error("concurrent duplicate not flagged as dup")
			}
			results <- string(r)
		}()
	}
	close(release)
	wg.Wait()
	close(results)
	for r := range results {
		if r != "once" {
			t.Fatalf("duplicate got %q, want the first execution's result", r)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
}

func TestDoLockedSequentialHit(t *testing.T) {
	s := New(0)
	s.DoLocked("k", func() ([]byte, error) { return []byte("v"), nil })
	r, dup, _ := s.DoLocked("k", func() ([]byte, error) { return []byte("other"), nil })
	if !dup || string(r) != "v" {
		t.Fatalf("got %q dup=%v", r, dup)
	}
}

func TestCheckSaveRoundTrip(t *testing.T) {
	s := New(0)
	if _, _, seen := s.Check("k"); seen {
		t.Fatal("unseen key reported seen")
	}
	s.Save("k", []byte("resp"), nil)
	r, err, seen := s.Check("k")
	if !seen || err != nil || string(r) != "resp" {
		t.Fatalf("Check = %q,%v,%v", r, err, seen)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	s := New(0)
	var wg sync.WaitGroup
	var calls atomic.Int32
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			for j := 0; j < 100; j++ {
				s.Do(key, func() ([]byte, error) {
					calls.Add(1)
					return nil, nil
				})
			}
		}(i)
	}
	wg.Wait()
	// At most a handful of executions per key (races in plain Do are
	// allowed); far fewer than the 1600 calls issued.
	if calls.Load() > 64 {
		t.Fatalf("fn ran %d times; dedup ineffective", calls.Load())
	}
}
