// Package dedup implements idempotency-key stores: the application-level
// mechanism the paper identifies (§3.2) as the standard defence against
// duplicated messages from sender retries and redelivery-after-timeout.
// A receiver records each unique request id together with its response;
// replays return the recorded response instead of re-executing the
// (possibly non-idempotent) operation.
package dedup

import (
	"sync"
	"time"
)

// Store is a TTL-bounded idempotency-key store. Safe for concurrent use.
// Keys expire after the window, modeling the bounded dedup horizon every
// real deployment chooses (an infinite window is an unbounded-state
// liability, which is why exactly-once "at the edge" is never free).
type Store struct {
	ttl time.Duration
	now func() time.Time

	mu       sync.Mutex
	m        map[string]entry
	inflight map[string]chan struct{}

	// Stats for the benchmarks.
	hits   int64
	misses int64
}

type entry struct {
	resp    []byte
	err     error
	addedAt time.Time
}

// New creates a store with the given dedup window. ttl <= 0 means keys
// never expire.
func New(ttl time.Duration) *Store {
	return &Store{ttl: ttl, now: time.Now, m: make(map[string]entry)}
}

// NewWithClock creates a store with a custom time source for deterministic
// tests.
func NewWithClock(ttl time.Duration, now func() time.Time) *Store {
	return &Store{ttl: ttl, now: now, m: make(map[string]entry)}
}

// Check returns the recorded response for key, if any.
func (s *Store) Check(key string) (resp []byte, err error, seen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok || s.expired(e) {
		if ok {
			delete(s.m, key)
		}
		s.misses++
		return nil, nil, false
	}
	s.hits++
	return e.resp, e.err, true
}

// Save records the response for key.
func (s *Store) Save(key string, resp []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = entry{resp: resp, err: err, addedAt: s.now()}
}

// Do executes fn exactly once per key within the dedup window: the first
// call runs fn and records its result; replays return the recorded result
// with dup=true. Concurrent callers with the same key serialize on the
// store lock for the check, then at most one runs fn (the others see its
// saved result only if it finished first — matching real idempotency-key
// services, which race unless they add in-flight locking; use DoLocked for
// the stricter variant).
func (s *Store) Do(key string, fn func() ([]byte, error)) (resp []byte, dup bool, err error) {
	if r, e, seen := s.Check(key); seen {
		return r, true, e
	}
	resp, err = fn()
	s.Save(key, resp, err)
	return resp, false, err
}

// DoLocked is Do with in-flight locking: a concurrent duplicate blocks
// until the first execution finishes, then returns its result. This is the
// stronger (and costlier) idempotency contract.
func (s *Store) DoLocked(key string, fn func() ([]byte, error)) (resp []byte, dup bool, err error) {
	s.mu.Lock()
	if e, ok := s.m[key]; ok && !s.expired(e) {
		s.hits++
		s.mu.Unlock()
		return e.resp, true, e.err
	}
	ch, waiting := s.locks()[key]
	if waiting {
		s.mu.Unlock()
		<-ch
		// First execution finished; its result is recorded.
		r, e, seen := s.Check(key)
		if seen {
			return r, true, e
		}
		// Window expired immediately or first caller failed to record —
		// fall through to execute ourselves.
		return s.DoLocked(key, fn)
	}
	done := make(chan struct{})
	s.locks()[key] = done
	s.misses++
	s.mu.Unlock()

	resp, err = fn()

	s.mu.Lock()
	s.m[key] = entry{resp: resp, err: err, addedAt: s.now()}
	delete(s.locks(), key)
	close(done)
	s.mu.Unlock()
	return resp, false, err
}

// locks lazily allocates the in-flight map. Caller holds s.mu.
func (s *Store) locks() map[string]chan struct{} {
	if s.inflight == nil {
		s.inflight = make(map[string]chan struct{})
	}
	return s.inflight
}

func (s *Store) expired(e entry) bool {
	return s.ttl > 0 && s.now().Sub(e.addedAt) > s.ttl
}

// Sweep removes expired keys and returns how many were removed.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, e := range s.m {
		if s.expired(e) {
			delete(s.m, k)
			n++
		}
	}
	return n
}

// Len returns the number of live keys (the memory cost of the window).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Stats returns cumulative (hits, misses).
func (s *Store) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
