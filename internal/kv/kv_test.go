package kv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	if string(got) != "v" {
		t.Fatalf("Get = %q, want v", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	if _, ok, _ := s.Get("nope"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestOverwrite(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("v2"))
	got, _, _ := s.Get("k")
	if string(got) != "v2" {
		t.Fatalf("Get = %q, want v2", got)
	}
}

func TestDelete(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("k", []byte("v"))
	s.Delete("k")
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("deleted key still visible")
	}
	// Delete of a missing key is fine.
	if err := s.Delete("ghost"); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	b := NewBatch().Put("a", []byte("1")).Put("b", []byte("2")).Delete("c")
	s.Put("c", []byte("gone"))
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		got, ok, _ := s.Get(k)
		if !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", k, got, ok, want)
		}
	}
	if _, ok, _ := s.Get("c"); ok {
		t.Fatal("batch delete did not apply")
	}
}

func TestSnapshotStability(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("k", []byte("old"))
	snap := s.Snapshot()
	defer snap.Release()
	s.Put("k", []byte("new"))
	s.Delete("k2") // unrelated
	got, ok, _ := snap.Get("k")
	if !ok || string(got) != "old" {
		t.Fatalf("snapshot Get = %q,%v want old", got, ok)
	}
	cur, _, _ := s.Get("k")
	if string(cur) != "new" {
		t.Fatalf("live Get = %q, want new", cur)
	}
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	s, err := Open("", Options{FlushBytes: 128, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("key", []byte("v0"))
	snap := s.Snapshot()
	defer snap.Release()
	// Churn enough to force flushes and compactions.
	for i := 0; i < 200; i++ {
		s.Put("key", []byte(fmt.Sprintf("v%d", i+1)))
		s.Put(fmt.Sprintf("other-%d", i), make([]byte, 32))
	}
	got, ok, _ := snap.Get("key")
	if !ok || string(got) != "v0" {
		t.Fatalf("snapshot read after compaction = %q,%v want v0", got, ok)
	}
}

func TestSnapshotSeesDeletesAfterIt(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("k", []byte("v"))
	snap := s.Snapshot()
	defer snap.Release()
	s.Delete("k")
	if _, ok, _ := snap.Get("k"); !ok {
		t.Fatal("snapshot must still see key deleted after snapshot")
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("live read must see the delete")
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		s.Put(k, []byte(k))
	}
	var got []string
	s.Scan("b", "e", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
}

func TestScanSkipsTombstones(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Delete("a")
	var got []string
	s.Scan("", "", func(k string, v []byte) bool { got = append(got, k); return true })
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("Scan = %v, want [b]", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	n := 0
	s.Scan("", "", func(string, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan visited %d, want 3", n)
	}
}

func TestScanAcrossRuns(t *testing.T) {
	s, err := Open("", Options{FlushBytes: 64, MaxRuns: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	n := 0
	s.Scan("", "", func(string, []byte) bool { n++; return true })
	if n != 50 {
		t.Fatalf("scan across runs = %d keys, want 50", n)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("persist", []byte("me"))
	s.Delete("persist-not")
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, _ := s2.Get("persist")
	if !ok || string(got) != "me" {
		t.Fatalf("after reopen Get = %q,%v want me", got, ok)
	}
}

func TestCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	seq, err := s.CheckpointTo()
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("checkpoint seq should be > 0")
	}
	// Post-checkpoint mutations.
	s.Put("k0", []byte("dirty"))
	s.Put("extra", []byte("dirty"))
	// Roll back to the checkpoint.
	if err := s.RestoreFrom(dir + "/CHECKPOINT"); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get("k0")
	if !ok || string(got) != "v0" {
		t.Fatalf("after restore k0 = %q,%v want v0", got, ok)
	}
	if _, ok, _ := s.Get("extra"); ok {
		t.Fatal("post-checkpoint key survived restore")
	}
	s.Close()

	// Checkpoint + truncated WAL must also survive a process restart.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, _ = s2.Get("k42")
	if !ok || string(got) != "v42" {
		t.Fatalf("after reopen-from-checkpoint k42 = %q,%v want v42", got, ok)
	}
}

func TestCheckpointSubsumesWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	s.Put("a", []byte("1"))
	if _, err := s.CheckpointTo(); err != nil {
		t.Fatal(err)
	}
	s.Put("b", []byte("2")) // only in WAL
	s.Close()
	s2, _ := Open(dir, Options{})
	defer s2.Close()
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		got, ok, _ := s2.Get(k)
		if !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", k, got, ok, want)
		}
	}
}

func TestInMemoryCheckpointToFails(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	if _, err := s.CheckpointTo(); err == nil {
		t.Fatal("CheckpointTo on in-memory store should fail")
	}
}

func TestClosedStore(t *testing.T) {
	s := NewMemory()
	s.Close()
	if err := s.Put("k", nil); err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get("k"); err != ErrClosed {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s, err := Open("", Options{FlushBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Put(fmt.Sprintf("w%d-k%d", w, i%50), []byte{byte(i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Get(fmt.Sprintf("w%d-k%d", i%4, i%50))
			}
		}()
	}
	wg.Wait()
}

// Property: the store agrees with a plain map under any sequence of
// put/delete operations (model-based test).
func TestMatchesModelProperty(t *testing.T) {
	type op struct {
		Key byte
		Val byte
		Del bool
	}
	f := func(ops []op) bool {
		s, err := Open("", Options{FlushBytes: 96, MaxRuns: 2})
		if err != nil {
			return false
		}
		defer s.Close()
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%16)
			if o.Del {
				s.Delete(k)
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", o.Val)
				s.Put(k, []byte(v))
				model[k] = v
			}
		}
		// Point reads agree.
		for k, want := range model {
			got, ok, _ := s.Get(k)
			if !ok || string(got) != want {
				return false
			}
		}
		// Scan agrees on the live key count.
		n := 0
		s.Scan("", "", func(k string, v []byte) bool {
			if model[k] != string(v) {
				return false
			}
			n++
			return true
		})
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a snapshot taken at any point returns exactly the model state
// at that point regardless of later writes.
func TestSnapshotIsolationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s, err := Open("", Options{FlushBytes: 256, MaxRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	model := map[string]string{}
	type snapPair struct {
		snap  *Snapshot
		model map[string]string
	}
	var snaps []snapPair
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(20))
		if rng.Intn(4) == 0 {
			s.Delete(k)
			delete(model, k)
		} else {
			v := fmt.Sprintf("v%d", i)
			s.Put(k, []byte(v))
			model[k] = v
		}
		if i%50 == 0 {
			frozen := make(map[string]string, len(model))
			for k, v := range model {
				frozen[k] = v
			}
			snaps = append(snaps, snapPair{s.Snapshot(), frozen})
		}
	}
	for i, sp := range snaps {
		for k, want := range sp.model {
			got, ok, _ := sp.snap.Get(k)
			if !ok || string(got) != want {
				t.Fatalf("snapshot %d: Get(%s) = %q,%v want %q", i, k, got, ok, want)
			}
		}
		n := 0
		sp.snap.Scan("", "", func(string, []byte) bool { n++; return true })
		if n != len(sp.model) {
			t.Fatalf("snapshot %d: scan saw %d keys, want %d", i, n, len(sp.model))
		}
		sp.snap.Release()
	}
}

func TestSeqMonotone(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	prev := s.Seq()
	for i := 0; i < 10; i++ {
		s.Put("k", []byte{byte(i)})
		cur := s.Seq()
		if cur <= prev {
			t.Fatalf("Seq not monotone: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestLen(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("a", nil)
	s.Put("b", nil)
	s.Delete("a")
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}
