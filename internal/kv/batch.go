package kv

import (
	"encoding/binary"
	"fmt"
)

// Batch is a set of writes applied atomically: all become visible at once
// and are logged as one WAL record.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key   string
	value []byte
	del   bool
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put adds a write to the batch.
func (b *Batch) Put(key string, value []byte) *Batch {
	v := make([]byte, len(value))
	copy(v, value)
	b.ops = append(b.ops, batchOp{key: key, value: v})
	return b
}

// Delete adds a tombstone to the batch.
func (b *Batch) Delete(key string) *Batch {
	b.ops = append(b.ops, batchOp{key: key, del: true})
	return b
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// encode serializes a batch for the WAL:
//
//	uvarint count, then per op: op byte (0 put, 1 del), uvarint keyLen, key,
//	and for puts uvarint valLen, val.
func (b *Batch) encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(len(b.ops)))
	for _, op := range b.ops {
		if op.del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.key)))
		buf = append(buf, op.key...)
		if !op.del {
			buf = binary.AppendUvarint(buf, uint64(len(op.value)))
			buf = append(buf, op.value...)
		}
	}
	return buf
}

func decodeBatch(buf []byte) (*Batch, error) {
	b := NewBatch()
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("kv: bad batch header")
	}
	buf = buf[sz:]
	for i := uint64(0); i < n; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("kv: truncated batch op")
		}
		del := buf[0] == 1
		buf = buf[1:]
		klen, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf[sz:])) < klen {
			return nil, fmt.Errorf("kv: truncated batch key")
		}
		key := string(buf[sz : sz+int(klen)])
		buf = buf[sz+int(klen):]
		if del {
			b.ops = append(b.ops, batchOp{key: key, del: true})
			continue
		}
		vlen, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf[sz:])) < vlen {
			return nil, fmt.Errorf("kv: truncated batch value")
		}
		val := make([]byte, vlen)
		copy(val, buf[sz:sz+int(vlen)])
		buf = buf[sz+int(vlen):]
		b.ops = append(b.ops, batchOp{key: key, value: val})
	}
	return b, nil
}
