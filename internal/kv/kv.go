// Package kv implements the embedded key-value store that plays RocksDB's
// role in this reproduction (§3.3 "Dataflows" — operators keep local state in
// an embedded LSM-based store). It is an LSM-lite design: a mutable memtable
// absorbs writes, immutable sorted runs hold flushed data, and a background
// compaction merges runs. Every version carries a sequence number, so
// consistent snapshots — the basis of dataflow checkpointing (§4.1) — are
// reads "as of seq".
//
// Durability: when opened with a directory, every write batch is appended to
// a write-ahead log before being applied; Open replays the log. Checkpoint
// serializes the full state to a file and truncates the log, exactly the
// "checkpoint then trim" protocol stream processors use.
package kv

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"tca/internal/wal"
)

// Common store errors.
var (
	ErrClosed = errors.New("kv: closed")
)

// version is one MVCC version of a key.
type version struct {
	seq       uint64
	value     []byte
	tombstone bool
}

// entry is the full version chain of one key, newest first.
type entry struct {
	key      string
	versions []version // sorted descending by seq
}

// memtable is the mutable in-memory table: map for point ops plus a sorted
// key slice maintained incrementally for scans.
type memtable struct {
	m    map[string]*entry
	keys []string // sorted; may contain keys whose newest version is a tombstone
	size int      // approximate bytes
}

func newMemtable() *memtable {
	return &memtable{m: make(map[string]*entry)}
}

func (t *memtable) put(key string, v version) {
	e, ok := t.m[key]
	if !ok {
		e = &entry{key: key}
		t.m[key] = e
		i := sort.SearchStrings(t.keys, key)
		t.keys = append(t.keys, "")
		copy(t.keys[i+1:], t.keys[i:])
		t.keys[i] = key
	}
	e.versions = append(e.versions, version{})
	copy(e.versions[1:], e.versions)
	e.versions[0] = v
	t.size += len(key) + len(v.value) + 24
}

// get returns the newest version with seq <= atSeq.
func (t *memtable) get(key string, atSeq uint64) (version, bool) {
	e, ok := t.m[key]
	if !ok {
		return version{}, false
	}
	for _, v := range e.versions {
		if v.seq <= atSeq {
			return v, true
		}
	}
	return version{}, false
}

// run is an immutable sorted run produced by flushing a memtable.
type run struct {
	entries []entry // sorted ascending by key
}

func (r *run) get(key string, atSeq uint64) (version, bool) {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].key >= key })
	if i >= len(r.entries) || r.entries[i].key != key {
		return version{}, false
	}
	for _, v := range r.entries[i].versions {
		if v.seq <= atSeq {
			return v, true
		}
	}
	return version{}, false
}

// Options configure a store.
type Options struct {
	// FlushBytes is the memtable size that triggers a flush to an
	// immutable run. Zero means the default (1 MiB).
	FlushBytes int
	// MaxRuns is the number of immutable runs that triggers compaction.
	// Zero means the default (4).
	MaxRuns int
	// WAL configures the write-ahead log when the store is durable.
	WAL wal.Options
	// DisableWAL turns off logging even when a directory is given
	// (checkpoint-only durability, how Flink uses RocksDB).
	DisableWAL bool
}

// Store is the embedded key-value store. Safe for concurrent use.
type Store struct {
	opts Options
	dir  string

	seq    atomic.Uint64 // last assigned sequence number
	closed atomic.Bool

	mu   sync.RWMutex
	mem  *memtable
	runs []*run // newest first
	log  *wal.Log

	// snapshot bookkeeping: compaction must not discard versions that an
	// open snapshot can still see.
	snapMu    sync.Mutex
	openSnaps map[uint64]int // seq -> refcount
}

// Open opens a durable store rooted at dir, replaying any existing
// checkpoint and WAL. Pass dir == "" for a volatile in-memory store.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 1 << 20
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 4
	}
	s := &Store{
		opts:      opts,
		dir:       dir,
		mem:       newMemtable(),
		openSnaps: make(map[uint64]int),
	}
	if dir == "" {
		return s, nil
	}
	if err := s.loadCheckpoint(filepath.Join(dir, "CHECKPOINT")); err != nil {
		return nil, err
	}
	if !opts.DisableWAL {
		l, err := wal.Open(filepath.Join(dir, "wal"), opts.WAL)
		if err != nil {
			return nil, fmt.Errorf("kv: open wal: %w", err)
		}
		s.log = l
		if err := s.replayWAL(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NewMemory returns a volatile store with default options.
func NewMemory() *Store {
	s, err := Open("", Options{})
	if err != nil {
		panic(err) // cannot happen for in-memory stores
	}
	return s
}

func (s *Store) replayWAL() error {
	return s.log.Replay(func(payload []byte) error {
		b, err := decodeBatch(payload)
		if err != nil {
			return err
		}
		s.applyBatch(b, false)
		return nil
	})
}

// Seq returns the last assigned sequence number.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	b := NewBatch()
	b.Put(key, value)
	return s.Write(b)
}

// Delete removes key (writes a tombstone).
func (s *Store) Delete(key string) error {
	b := NewBatch()
	b.Delete(key)
	return s.Write(b)
}

// Write applies a batch atomically: one WAL record, one sequence range.
func (s *Store) Write(b *Batch) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(b.ops) == 0 {
		return nil
	}
	if s.log != nil {
		if _, err := s.log.Append(b.encode()); err != nil {
			return fmt.Errorf("kv: wal append: %w", err)
		}
	}
	s.applyBatch(b, true)
	return nil
}

// applyBatch assigns sequence numbers and installs the ops in the memtable.
// flushOK controls whether this write may trigger a flush (replay defers
// flushes until the end).
func (s *Store) applyBatch(b *Batch, flushOK bool) {
	s.mu.Lock()
	for _, op := range b.ops {
		seq := s.seq.Add(1)
		s.mem.put(op.key, version{seq: seq, value: op.value, tombstone: op.del})
	}
	needFlush := flushOK && s.mem.size >= s.opts.FlushBytes
	if needFlush {
		s.flushLocked()
	}
	s.mu.Unlock()
}

// flushLocked converts the memtable into an immutable run. Caller holds mu.
func (s *Store) flushLocked() {
	if len(s.mem.m) == 0 {
		return
	}
	r := &run{entries: make([]entry, 0, len(s.mem.m))}
	for _, k := range s.mem.keys {
		e := s.mem.m[k]
		r.entries = append(r.entries, entry{key: k, versions: e.versions})
	}
	s.runs = append([]*run{r}, s.runs...)
	s.mem = newMemtable()
	if len(s.runs) >= s.opts.MaxRuns {
		s.compactLocked()
	}
}

// compactLocked merges all runs into one, discarding versions invisible to
// every open snapshot. Caller holds mu.
func (s *Store) compactLocked() {
	floor := s.snapshotFloor()
	merged := make(map[string]*entry)
	var keys []string
	// Iterate oldest run first so that appending keeps versions sorted
	// descending when we prepend newer versions.
	for i := len(s.runs) - 1; i >= 0; i-- {
		for _, e := range s.runs[i].entries {
			m, ok := merged[e.key]
			if !ok {
				m = &entry{key: e.key}
				merged[e.key] = m
				keys = append(keys, e.key)
			}
			// e.versions are newer than what's in m (runs are newest
			// first, we iterate oldest first), so prepend.
			m.versions = append(append([]version(nil), e.versions...), m.versions...)
		}
	}
	sort.Strings(keys)
	out := &run{entries: make([]entry, 0, len(keys))}
	for _, k := range keys {
		e := merged[k]
		e.versions = pruneVersions(e.versions, floor)
		if len(e.versions) == 0 {
			continue
		}
		if len(e.versions) == 1 && e.versions[0].tombstone && floor == 0 {
			continue // fully dead key
		}
		out.entries = append(out.entries, *e)
	}
	s.runs = []*run{out}
}

// pruneVersions discards history no snapshot can observe: with floor being
// the oldest open snapshot seq (0 = none), every version newer than the
// floor stays (some snapshot between floor and now may read it), plus the
// first version at or below the floor (what the oldest snapshot reads).
// Anything older is unreachable.
func pruneVersions(vs []version, floor uint64) []version {
	if len(vs) <= 1 {
		return vs
	}
	if floor == 0 {
		return vs[:1:1]
	}
	out := make([]version, 0, len(vs))
	for _, v := range vs {
		out = append(out, v)
		if v.seq <= floor {
			break
		}
	}
	return out
}

// snapshotFloor returns the smallest open snapshot seq, or 0 when none.
func (s *Store) snapshotFloor() uint64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	var floor uint64
	for seq := range s.openSnaps {
		if floor == 0 || seq < floor {
			floor = seq
		}
	}
	return floor
}

// Get returns the current value of key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	return s.getAt(key, s.seq.Load())
}

func (s *Store) getAt(key string, atSeq uint64) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, ok := s.mem.get(key, atSeq); ok {
		if v.tombstone {
			return nil, false, nil
		}
		return v.value, true, nil
	}
	for _, r := range s.runs {
		if v, ok := r.get(key, atSeq); ok {
			if v.tombstone {
				return nil, false, nil
			}
			return v.value, true, nil
		}
	}
	return nil, false, nil
}

// Len returns the number of live keys (linear scan; intended for tests and
// checkpoint sizing, not hot paths).
func (s *Store) Len() int {
	n := 0
	_ = s.Scan("", "", func(string, []byte) bool { n++; return true })
	return n
}

// Scan calls fn for every live key in [start, end) in ascending key order.
// An empty end means "to the last key". fn returning false stops the scan.
func (s *Store) Scan(start, end string, fn func(key string, value []byte) bool) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.scanAt(start, end, s.seq.Load(), fn)
}

func (s *Store) scanAt(start, end string, atSeq uint64, fn func(string, []byte) bool) error {
	s.mu.RLock()
	// Collect candidate key lists: memtable + each run. Merge by key,
	// memtable wins, then newer runs.
	sources := make([][]string, 0, len(s.runs)+1)
	sources = append(sources, s.mem.keys)
	for _, r := range s.runs {
		ks := make([]string, len(r.entries))
		for i := range r.entries {
			ks[i] = r.entries[i].key
		}
		sources = append(sources, ks)
	}
	s.mu.RUnlock()

	seen := make(map[string]struct{})
	var keys []string
	for _, src := range sources {
		i := sort.SearchStrings(src, start)
		for ; i < len(src); i++ {
			k := src[i]
			if end != "" && k >= end {
				break
			}
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, ok, err := s.getAt(k, atSeq)
		if err != nil {
			return err
		}
		if !ok {
			continue // newest visible version is a tombstone
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// Flush forces the memtable into an immutable run (test hook and checkpoint
// preparation).
func (s *Store) Flush() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// Close releases resources. Outstanding snapshots become invalid.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}
