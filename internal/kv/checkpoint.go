package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// checkpoint file format:
//
//	magic "KVCP" | uvarint seq | uvarint keyCount |
//	per key: uvarint keyLen, key, uvarint valLen, val
//
// Only the latest live version of each key is written; a checkpoint is a
// materialized snapshot, not a full history.
const checkpointMagic = "KVCP"

// Checkpoint writes a consistent snapshot of the store to the given path
// (atomically, via rename) and truncates the WAL: the checkpoint subsumes
// it. Returns the snapshot's sequence number.
func (s *Store) Checkpoint(path string) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	sn := s.Snapshot()
	defer sn.Release()
	if err := writeCheckpoint(path, sn); err != nil {
		return 0, err
	}
	if s.log != nil {
		if err := s.log.Truncate(); err != nil {
			return 0, fmt.Errorf("kv: truncate wal after checkpoint: %w", err)
		}
	}
	return sn.seq, nil
}

// CheckpointTo writes the snapshot to the store's default checkpoint
// location inside its directory. Volatile stores return an error.
func (s *Store) CheckpointTo() (uint64, error) {
	if s.dir == "" {
		return 0, fmt.Errorf("kv: in-memory store has no checkpoint location")
	}
	return s.Checkpoint(filepath.Join(s.dir, "CHECKPOINT"))
}

func writeCheckpoint(path string, sn *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kv: create checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(checkpointMagic); err != nil {
		f.Close()
		return fmt.Errorf("kv: write checkpoint: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	if err := writeUvarint(sn.seq); err != nil {
		f.Close()
		return fmt.Errorf("kv: write checkpoint seq: %w", err)
	}
	// Count first (two passes keeps the format simple and the state is in
	// memory anyway).
	var count uint64
	if err := sn.Scan("", "", func(string, []byte) bool { count++; return true }); err != nil {
		f.Close()
		return err
	}
	if err := writeUvarint(count); err != nil {
		f.Close()
		return fmt.Errorf("kv: write checkpoint count: %w", err)
	}
	var scanErr error
	if err := sn.Scan("", "", func(k string, v []byte) bool {
		if scanErr = writeUvarint(uint64(len(k))); scanErr != nil {
			return false
		}
		if _, scanErr = w.WriteString(k); scanErr != nil {
			return false
		}
		if scanErr = writeUvarint(uint64(len(v))); scanErr != nil {
			return false
		}
		if _, scanErr = w.Write(v); scanErr != nil {
			return false
		}
		return true
	}); err != nil {
		f.Close()
		return err
	}
	if scanErr != nil {
		f.Close()
		return fmt.Errorf("kv: write checkpoint entries: %w", scanErr)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("kv: flush checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("kv: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kv: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("kv: install checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint restores state from a checkpoint file if present.
func (s *Store) loadCheckpoint(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kv: open checkpoint: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != checkpointMagic {
		return fmt.Errorf("kv: bad checkpoint magic")
	}
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("kv: read checkpoint seq: %w", err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("kv: read checkpoint count: %w", err)
	}
	for i := uint64(0); i < count; i++ {
		k, err := readLenPrefixed(r)
		if err != nil {
			return fmt.Errorf("kv: read checkpoint key: %w", err)
		}
		v, err := readLenPrefixed(r)
		if err != nil {
			return fmt.Errorf("kv: read checkpoint value: %w", err)
		}
		s.mem.put(string(k), version{seq: seq, value: v})
	}
	if seq > s.seq.Load() {
		s.seq.Store(seq)
	}
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
	return nil
}

// RestoreFrom wipes the store and loads the checkpoint at path. Used by
// dataflow recovery to roll state back to the last completed epoch.
func (s *Store) RestoreFrom(path string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	s.mem = newMemtable()
	s.runs = nil
	s.mu.Unlock()
	s.seq.Store(0)
	if s.log != nil {
		if err := s.log.Truncate(); err != nil {
			return fmt.Errorf("kv: truncate wal on restore: %w", err)
		}
	}
	return s.loadCheckpoint(path)
}

func readLenPrefixed(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
