package kv

// Snapshot is a consistent read-only view of the store as of the sequence
// number at which it was taken. Snapshots pin their versions: compaction
// will not discard data a live snapshot can still see. Release when done.
type Snapshot struct {
	s   *Store
	seq uint64
}

// Snapshot captures the current state.
func (s *Store) Snapshot() *Snapshot {
	seq := s.seq.Load()
	s.snapMu.Lock()
	s.openSnaps[seq]++
	s.snapMu.Unlock()
	return &Snapshot{s: s, seq: seq}
}

// Seq returns the sequence number the snapshot reads at.
func (sn *Snapshot) Seq() uint64 { return sn.seq }

// Get reads key as of the snapshot.
func (sn *Snapshot) Get(key string) ([]byte, bool, error) {
	return sn.s.getAt(key, sn.seq)
}

// Scan iterates live keys in [start, end) as of the snapshot.
func (sn *Snapshot) Scan(start, end string, fn func(key string, value []byte) bool) error {
	return sn.s.scanAt(start, end, sn.seq, fn)
}

// Release unpins the snapshot. Using the snapshot afterwards may observe
// compacted (missing) history.
func (sn *Snapshot) Release() {
	sn.s.snapMu.Lock()
	defer sn.s.snapMu.Unlock()
	if n := sn.s.openSnaps[sn.seq]; n <= 1 {
		delete(sn.s.openSnaps, sn.seq)
	} else {
		sn.s.openSnaps[sn.seq] = n - 1
	}
}
