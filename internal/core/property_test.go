package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tca/internal/mq"
)

// Property: for any random transfer schedule with a crash at a random
// point, replay converges to exactly the same state and the same cached
// results — the determinism contract recovery depends on.
func TestCrashAnywhereDeterminismProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			r := newBankRuntime(t, fmt.Sprintf("prop-%d", trial))
			const accounts = 5
			for a := int64(0); a < accounts; a++ {
				deposit(t, r, fmt.Sprintf("seed-%d", a), a, 1000)
			}
			nOps := 20 + rng.Intn(30)
			crashAt := rng.Intn(nOps)
			checkpointAt := -1
			if rng.Intn(2) == 0 {
				checkpointAt = rng.Intn(crashAt + 1)
			}
			for i := 0; i < nOps; i++ {
				from := int64(rng.Intn(accounts))
				to := (from + 1 + int64(rng.Intn(accounts-1))) % accounts
				transfer(r, fmt.Sprintf("op-%d", i), from, to, int64(1+rng.Intn(5)))
				if i == checkpointAt {
					if _, err := r.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				if i == crashAt {
					r.Crash()
					if err := r.Recover(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := r.Quiesce(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			var total int64
			for a := int64(0); a < accounts; a++ {
				total += balance(r, a)
			}
			if total != accounts*1000 {
				t.Fatalf("total = %d, want %d (crash at op %d, checkpoint at %d)",
					total, accounts*1000, crashAt, checkpointAt)
			}
			// Resubmitting every request id returns cached results without
			// changing state (exactly-once client semantics).
			before := make([]int64, accounts)
			for a := int64(0); a < accounts; a++ {
				before[a] = balance(r, a)
			}
			for i := 0; i < nOps; i++ {
				// Args don't matter for dedup hits, but must parse.
				args := append(append(i64(1), i64(0)...), i64(1)...)
				r.Submit(fmt.Sprintf("op-%d", i), "transfer",
					[]string{"acc/0", "acc/1"}, args, nil)
			}
			r.Quiesce(10 * time.Second)
			for a := int64(0); a < accounts; a++ {
				if balance(r, a) != before[a] {
					t.Fatalf("resubmission changed account %d: %d -> %d",
						a, before[a], balance(r, a))
				}
			}
		})
	}
}

// Property: concurrent submitters with overlapping key sets never break
// conservation, and the commit count equals exactly the distinct request
// ids that didn't abort.
func TestConcurrentSubmittersExactlyOnce(t *testing.T) {
	r := NewRuntime(mq.NewBroker(), Config{Name: "conc", Workers: 8})
	r.Register("inc", func(tx *Tx, args []byte) ([]byte, error) {
		cur, _, err := tx.Get(string(args))
		if err != nil {
			return nil, err
		}
		return nil, tx.Put(string(args), i64(toI64(cur)+1))
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	const workers, opsEach = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("ctr/%d", i%4)
				// Two goroutines per request id: deliberate duplicate
				// submissions racing each other.
				reqID := fmt.Sprintf("req-%d-%d", w/2, i)
				r.Submit(reqID, "inc", []string{key}, []byte(key), nil)
			}
		}(w)
	}
	wg.Wait()
	if err := r.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var total int64
	for c := 0; c < 4; c++ {
		v, _ := r.Read(fmt.Sprintf("ctr/%d", c))
		total += toI64(v)
	}
	// workers/2 distinct id groups × opsEach distinct requests.
	want := int64(workers / 2 * opsEach)
	if total != want {
		t.Fatalf("total increments = %d, want %d (duplicate submissions must collapse)", total, want)
	}
}
