package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tca/internal/mq"
)

// Property: for any random transfer schedule with a crash at a random
// point, replay converges to exactly the same state and the same cached
// results — the determinism contract recovery depends on. Runs single-log
// and sharded (4 partitions): transfers between arbitrary accounts cross
// partition boundaries, so the sharded run exercises the global sequencer's
// recovery path too.
func TestCrashAnywhereDeterminismProperty(t *testing.T) {
	for _, partitions := range []int{1, 4} {
		for trial := 0; trial < 10; trial++ {
			t.Run(fmt.Sprintf("partitions=%d/trial=%d", partitions, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(trial)))
				r := newBankRuntimeParts(t, fmt.Sprintf("prop-%d-%d", partitions, trial), partitions)
				const accounts = 5
				for a := int64(0); a < accounts; a++ {
					deposit(t, r, fmt.Sprintf("seed-%d", a), a, 1000)
				}
				nOps := 20 + rng.Intn(30)
				crashAt := rng.Intn(nOps)
				checkpointAt := -1
				if rng.Intn(2) == 0 {
					checkpointAt = rng.Intn(crashAt + 1)
				}
				for i := 0; i < nOps; i++ {
					from := int64(rng.Intn(accounts))
					to := (from + 1 + int64(rng.Intn(accounts-1))) % accounts
					transfer(r, fmt.Sprintf("op-%d", i), from, to, int64(1+rng.Intn(5)))
					if i == checkpointAt {
						if _, err := r.Checkpoint(); err != nil {
							t.Fatal(err)
						}
					}
					if i == crashAt {
						r.Crash()
						if err := r.Recover(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := r.Quiesce(10 * time.Second); err != nil {
					t.Fatal(err)
				}
				var total int64
				for a := int64(0); a < accounts; a++ {
					total += balance(r, a)
				}
				if total != accounts*1000 {
					t.Fatalf("total = %d, want %d (crash at op %d, checkpoint at %d)",
						total, accounts*1000, crashAt, checkpointAt)
				}
				// Resubmitting every request id returns cached results without
				// changing state (exactly-once client semantics).
				before := make([]int64, accounts)
				for a := int64(0); a < accounts; a++ {
					before[a] = balance(r, a)
				}
				for i := 0; i < nOps; i++ {
					// Args don't matter for dedup hits, but must parse.
					args := append(append(i64(1), i64(0)...), i64(1)...)
					r.Submit(fmt.Sprintf("op-%d", i), "transfer",
						[]string{"acc/0", "acc/1"}, args, nil)
				}
				r.Quiesce(10 * time.Second)
				for a := int64(0); a < accounts; a++ {
					if balance(r, a) != before[a] {
						t.Fatalf("resubmission changed account %d: %d -> %d",
							a, before[a], balance(r, a))
					}
				}
			})
		}
	}
}

// Property: concurrent submitters with overlapping key sets never break
// conservation, and the commit count equals exactly the distinct request
// ids that didn't abort.
func TestConcurrentSubmittersExactlyOnce(t *testing.T) {
	r := NewRuntime(mq.NewBroker(), Config{Name: "conc", Workers: 8})
	r.Register("inc", func(tx *Tx, args []byte) ([]byte, error) {
		cur, _, err := tx.Get(string(args))
		if err != nil {
			return nil, err
		}
		return nil, tx.Put(string(args), i64(toI64(cur)+1))
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	const workers, opsEach = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("ctr/%d", i%4)
				// Two goroutines per request id: deliberate duplicate
				// submissions racing each other.
				reqID := fmt.Sprintf("req-%d-%d", w/2, i)
				r.Submit(reqID, "inc", []string{key}, []byte(key), nil)
			}
		}(w)
	}
	wg.Wait()
	if err := r.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var total int64
	for c := 0; c < 4; c++ {
		v, _ := r.Read(fmt.Sprintf("ctr/%d", c))
		total += toI64(v)
	}
	// workers/2 distinct id groups × opsEach distinct requests.
	want := int64(workers / 2 * opsEach)
	if total != want {
		t.Fatalf("total increments = %d, want %d (duplicate submissions must collapse)", total, want)
	}
}

// Property: at Partitions: 4, cross-partition transfers interleaved with
// concurrent single-partition traffic yield a schedule conflict-equivalent
// to the global sequence order. Evidence, per the serializability argument:
// a reader transaction spanning partitions never observes a half-applied
// transfer (no isolation anomaly ⇒ every observation matches some serial
// prefix), money is conserved, and a crash + replay of the same logs
// reproduces the state bit-for-bit (the order really is the log order, not
// an accident of timing).
func TestCrossPartitionConflictEquivalence(t *testing.T) {
	const partitions = 4
	r := newBankRuntimeParts(t, "xpart", partitions)
	r.Register("sum", func(tx *Tx, args []byte) ([]byte, error) {
		a, _, _ := tx.Get("acc/0")
		b, _, _ := tx.Get("acc/1")
		c, _, _ := tx.Get("acc/2")
		d, _, _ := tx.Get("acc/3")
		return i64(toI64(a) + toI64(b) + toI64(c) + toI64(d)), nil
	})
	const accounts = 4
	// The four accounts must not all land on one partition, or nothing
	// crosses; with FNV over "acc/0".."acc/3" they spread, but assert it so
	// a hash change can't silently hollow the test out.
	crossPair := [2]int64{-1, -1}
	samePair := [2]int64{-1, -1}
	for a := int64(0); a < accounts; a++ {
		for b := int64(0); b < accounts; b++ {
			if a == b {
				continue
			}
			pa := r.PartitionOf(fmt.Sprintf("acc/%d", a))
			pb := r.PartitionOf(fmt.Sprintf("acc/%d", b))
			if pa != pb && crossPair[0] < 0 {
				crossPair = [2]int64{a, b}
			}
			if pa == pb && samePair[0] < 0 {
				samePair = [2]int64{a, b}
			}
		}
	}
	if crossPair[0] < 0 {
		t.Fatal("no cross-partition account pair; partitioning is degenerate")
	}
	for a := int64(0); a < accounts; a++ {
		deposit(t, r, fmt.Sprintf("seed-%d", a), a, 1000)
	}

	var writers, readers sync.WaitGroup
	stopRead := make(chan struct{})
	anomalies := make(chan int64, 1)
	readers.Add(1)
	go func() {
		defer readers.Done()
		var bad int64
		sumKeys := []string{"acc/0", "acc/1", "acc/2", "acc/3"}
		for i := 0; ; i++ {
			select {
			case <-stopRead:
				anomalies <- bad
				return
			default:
			}
			v, err := r.Submit(fmt.Sprintf("audit-%d", i), "sum", sumKeys, nil, nil)
			if err == nil && toI64(v) != accounts*1000 {
				bad++
			}
		}
	}()
	// Single-partition writers (same-pair transfers, if any pair co-homes)
	// race the cross-partition writers.
	const ops = 100
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < ops; i++ {
				pair := crossPair
				if w == 1 && samePair[0] >= 0 {
					pair = samePair
				}
				from, to := pair[0], pair[1]
				if i%2 == 1 {
					from, to = to, from
				}
				transfer(r, fmt.Sprintf("w%d-%d", w, i), from, to, 5)
			}
		}(w)
	}
	writers.Wait()
	close(stopRead)
	readers.Wait()
	if bad := <-anomalies; bad != 0 {
		t.Fatalf("%d isolation anomalies: cross-partition schedule is not conflict-equivalent to a serial order", bad)
	}
	if err := r.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics().Counter("core.cross_commits").Value(); got == 0 {
		t.Fatal("no cross-partition commits recorded; test exercised nothing")
	}
	// Determinism: replaying the same logs from scratch reproduces the state.
	want := make([]int64, accounts)
	var total int64
	for a := int64(0); a < accounts; a++ {
		want[a] = balance(r, a)
		total += want[a]
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
	r.Crash()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := r.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for a := int64(0); a < accounts; a++ {
		if got := balance(r, a); got != want[a] {
			t.Fatalf("replay diverged on acc/%d: %d, want %d", a, got, want[a])
		}
	}
}
