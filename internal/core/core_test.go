package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"tca/internal/mq"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func toI64(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// newBankRuntime registers deposit/transfer/read functions over account
// keys "acc/<n>".
func newBankRuntime(t *testing.T, name string) *Runtime {
	t.Helper()
	return newBankRuntimeParts(t, name, 1)
}

// newBankRuntimeParts is newBankRuntime sharded across partitions.
func newBankRuntimeParts(t *testing.T, name string, partitions int) *Runtime {
	t.Helper()
	r := NewRuntime(mq.NewBroker(), Config{Name: name, Workers: 8, Partitions: partitions})
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

// registerBank installs the deposit/transfer functions shared by the
// runtime tests (including the durable-log suite, which builds its own
// runtimes over custom brokers and log dirs).
func registerBank(r *Runtime) {
	r.Register("deposit", func(tx *Tx, args []byte) ([]byte, error) {
		key := fmt.Sprintf("acc/%d", toI64(args[8:]))
		cur, _, err := tx.Get(key)
		if err != nil {
			return nil, err
		}
		next := toI64(cur) + toI64(args[:8])
		return i64(next), tx.Put(key, i64(next))
	})
	r.Register("transfer", func(tx *Tx, args []byte) ([]byte, error) {
		amount := toI64(args[:8])
		from := fmt.Sprintf("acc/%d", toI64(args[8:16]))
		to := fmt.Sprintf("acc/%d", toI64(args[16:24]))
		fb, _, err := tx.Get(from)
		if err != nil {
			return nil, err
		}
		if toI64(fb) < amount {
			return nil, errors.New("insufficient funds")
		}
		tb, _, err := tx.Get(to)
		if err != nil {
			return nil, err
		}
		if err := tx.Put(from, i64(toI64(fb)-amount)); err != nil {
			return nil, err
		}
		return nil, tx.Put(to, i64(toI64(tb)+amount))
	})
}

func deposit(t *testing.T, r *Runtime, req string, acc, amount int64) {
	t.Helper()
	args := append(i64(amount), i64(acc)...)
	if _, err := r.Submit(req, "deposit", []string{fmt.Sprintf("acc/%d", acc)}, args, nil); err != nil {
		t.Fatal(err)
	}
}

func transfer(r *Runtime, req string, from, to, amount int64) error {
	args := append(append(i64(amount), i64(from)...), i64(to)...)
	keys := []string{fmt.Sprintf("acc/%d", from), fmt.Sprintf("acc/%d", to)}
	_, err := r.Submit(req, "transfer", keys, args, nil)
	return err
}

func balance(r *Runtime, acc int64) int64 {
	v, _ := r.Read(fmt.Sprintf("acc/%d", acc))
	return toI64(v)
}

func TestSubmitCommit(t *testing.T) {
	r := newBankRuntime(t, "t1")
	deposit(t, r, "d1", 0, 100)
	if got := balance(r, 0); got != 100 {
		t.Fatalf("balance = %d, want 100", got)
	}
}

func TestAbortAppliesNothing(t *testing.T) {
	r := newBankRuntime(t, "t2")
	deposit(t, r, "d1", 0, 10)
	err := transfer(r, "t-fail", 0, 1, 1000) // insufficient funds
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if balance(r, 0) != 10 || balance(r, 1) != 0 {
		t.Fatalf("aborted txn mutated state: %d, %d", balance(r, 0), balance(r, 1))
	}
}

func TestSubmitIdempotent(t *testing.T) {
	r := newBankRuntime(t, "t3")
	deposit(t, r, "same-req", 0, 50)
	deposit(t, r, "same-req", 0, 50) // client retry: same request id
	if got := balance(r, 0); got != 50 {
		t.Fatalf("balance = %d, want 50 (duplicate submit must not re-apply)", got)
	}
	if got := r.Metrics().Counter("core.dedup_hits").Value(); got != 1 {
		t.Fatalf("dedup_hits = %d, want 1", got)
	}
}

func TestUndeclaredKeyRejected(t *testing.T) {
	r := newBankRuntime(t, "t4")
	r.Register("sneaky", func(tx *Tx, args []byte) ([]byte, error) {
		_, _, err := tx.Get("acc/999") // not declared
		return nil, err
	})
	_, err := r.Submit("s1", "sneaky", []string{"acc/0"}, nil, nil)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want abort from undeclared access", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	r := newBankRuntime(t, "t5")
	if _, err := r.Submit("x", "ghost", []string{"k"}, nil, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestSerializabilityMoneyConservation(t *testing.T) {
	r := newBankRuntime(t, "t6")
	const accounts = 8
	for a := int64(0); a < accounts; a++ {
		deposit(t, r, fmt.Sprintf("seed-%d", a), a, 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				from := int64((w + i) % accounts)
				to := int64((w + i + 1) % accounts)
				transfer(r, fmt.Sprintf("w%d-i%d", w, i), from, to, 3)
			}
		}(w)
	}
	wg.Wait()
	if err := r.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var total int64
	for a := int64(0); a < accounts; a++ {
		total += balance(r, a)
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
}

func TestDisjointKeysRunInParallel(t *testing.T) {
	// Two slow transactions on disjoint keys should overlap; on the same
	// key they must serialize. Measure wall time to tell the difference.
	r := NewRuntime(mq.NewBroker(), Config{Name: "t7", Workers: 4})
	const step = 20 * time.Millisecond
	r.Register("slow", func(tx *Tx, args []byte) ([]byte, error) {
		time.Sleep(step)
		return nil, tx.Put(string(args), []byte("done"))
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	run := func(keys [2]string) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.Submit(fmt.Sprintf("%s-%d-%d", keys[i], i, time.Now().UnixNano()), "slow", []string{keys[i]}, []byte(keys[i]), nil)
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	disjoint := run([2]string{"a", "b"})
	conflict := run([2]string{"c", "c"})
	if disjoint >= 2*step {
		t.Fatalf("disjoint keys did not parallelize: %v", disjoint)
	}
	if conflict < 2*step {
		t.Fatalf("conflicting keys did not serialize: %v", conflict)
	}
}

func TestCheckpointRecoverExactlyOnce(t *testing.T) {
	r := newBankRuntime(t, "t8")
	deposit(t, r, "d1", 0, 100)
	if _, err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	deposit(t, r, "d2", 0, 50) // after the checkpoint
	r.Crash()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := r.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := balance(r, 0); got != 150 {
		t.Fatalf("balance = %d, want 150 (replay must be exactly-once)", got)
	}
}

func TestRecoverWithoutCheckpointReplaysAll(t *testing.T) {
	r := newBankRuntime(t, "t9")
	deposit(t, r, "d1", 0, 7)
	deposit(t, r, "d2", 0, 8)
	r.Crash()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := r.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := balance(r, 0); got != 15 {
		t.Fatalf("balance = %d, want 15", got)
	}
}

func TestDeterministicReplaySameResults(t *testing.T) {
	// Conflicting transfers: replay after crash must produce the same
	// final state because execution order is the log order.
	r := newBankRuntime(t, "t10")
	deposit(t, r, "seed0", 0, 100)
	deposit(t, r, "seed1", 1, 100)
	for i := 0; i < 20; i++ {
		transfer(r, fmt.Sprintf("x%d", i), int64(i%2), int64((i+1)%2), 1)
	}
	r.Quiesce(5 * time.Second)
	want0, want1 := balance(r, 0), balance(r, 1)
	r.Crash()
	r.Recover()
	r.Quiesce(5 * time.Second)
	if balance(r, 0) != want0 || balance(r, 1) != want1 {
		t.Fatalf("replay diverged: %d,%d vs %d,%d", balance(r, 0), balance(r, 1), want0, want1)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	r := newBankRuntime(t, "t11")
	r.Stop()
	if _, err := r.Submit("x", "deposit", []string{"acc/0"}, append(i64(1), i64(0)...), nil); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v, want ErrNotRunning", err)
	}
}

func TestIsolationNoIntermediateStates(t *testing.T) {
	// Unlike statefun (E7), a reader transaction can never observe a
	// transfer halfway: reads are transactions too and serialize with the
	// writes they conflict with.
	r := newBankRuntime(t, "t12")
	r.Register("sum", func(tx *Tx, args []byte) ([]byte, error) {
		a, _, _ := tx.Get("acc/0")
		b, _, _ := tx.Get("acc/1")
		return i64(toI64(a) + toI64(b)), nil
	})
	deposit(t, r, "s0", 0, 500)
	deposit(t, r, "s1", 1, 500)
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	var anomalies int64
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			i++
			v, err := r.Submit(fmt.Sprintf("read-%d", i), "sum", []string{"acc/0", "acc/1"}, nil, nil)
			if err == nil && toI64(v) != 1000 {
				mu.Lock()
				anomalies++
				mu.Unlock()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		transfer(r, fmt.Sprintf("tr-%d", i), int64(i%2), int64((i+1)%2), 10)
	}
	close(stopRead)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if anomalies != 0 {
		t.Fatalf("%d isolation anomalies observed; core must be serializable", anomalies)
	}
}

// TestSubmitAsyncSeqIsCommitOrder pins Result.Seq/Handle.Seq: concurrent
// conflicting submissions all get nonzero serialization stamps, and the
// per-commit results (the deposit function returns the running balance)
// sorted by Seq reproduce the serial prefix sums — the stamps are the
// runtime's commit order, including inside shared group appends, where
// members carry one TID but distinct batch-indexed stamps.
func TestSubmitAsyncSeqIsCommitOrder(t *testing.T) {
	r := newBankRuntime(t, "seqorder")
	const n = 64
	type outcome struct{ seq, bal, amt int64 }
	out := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			amt := int64(i + 1)
			args := append(i64(amt), i64(7)...)
			h, err := r.SubmitAsync(fmt.Sprintf("seq/%d", i), "deposit", []string{"acc/7"}, args, nil)
			if err != nil {
				t.Error(err)
				return
			}
			v, err := h.Result()
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = outcome{seq: h.Seq(), bal: toI64(v), amt: amt}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	var sum int64
	for _, o := range out {
		if o.seq == 0 {
			t.Fatal("committed handle has zero Seq")
		}
		sum += o.amt
		if o.bal != sum {
			t.Fatalf("balance %d at seq %d, want running sum %d: stamps disagree with commit order", o.bal, o.seq, sum)
		}
	}
}
