package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"tca/internal/wal"
)

// The real durability layer under the deterministic runtime. When
// Config.LogDir is set, every group append the per-partition batchers make
// — and every cross-partition marker the sequencer fans out — is written
// to a segmented, checksummed, fsynced write-ahead log (internal/wal)
// *before* it is produced to the in-memory broker the executors consume:
// persist, then act. The modeled Config.SequenceDelay is not charged in
// this mode; the log's own write+fsync cost is the measured latency
// (BenchmarkE22_DurabilityFrontier maps the batch-size × fsync-policy
// frontier).
//
// On disk, one logical group append is a *header record* followed by its
// member records:
//
//	header  {"n": N, "root": <merkle root over the N member payloads>}
//	member  payload 1
//	...
//	member  payload N
//
// The root makes each group tamper-evident beyond the per-record CRC: a
// rewrite that fixes up the CRC still breaks the root, and a stored proof
// path (wal.MerkleProof) verifies any single member against its root in
// O(log n) hashes. Recovery replays the partition logs through
// verification and distinguishes three endings:
//
//   - clean truncation — the record stream ends exactly at a group
//     boundary: normal, nothing flagged;
//   - torn tail — the stream ends mid-group (crash between the buffered
//     write and its completion): the partial group is dropped and counted
//     in core.wal_torn_batches — those submissions were never acked;
//   - tampering — a group's recomputed root (or a malformed header)
//     disagrees mid-log: ErrLogTampered, recovery refuses to proceed.
var ErrLogTampered = errors.New("core: durable log integrity violation (merkle root mismatch)")

// FsyncPolicy selects when the durable log forces appends to stable
// storage — the knob E22 sweeps against batch size.
type FsyncPolicy int

const (
	// FsyncEveryBatch fsyncs once per group append before acknowledging:
	// an acked submission survives any crash. The group-commit default.
	FsyncEveryBatch FsyncPolicy = iota
	// FsyncInterval fsyncs on a timer (Config.FsyncEvery, default 1ms) and
	// holds each acknowledgment until the covering sync lands — a two-phase
	// ack (append, then wait on the sync watermark), so acknowledged still
	// means durable; the interval only batches how many appends share one
	// fsync. Delayed group commit: lower fsync rate, higher ack latency.
	FsyncInterval
	// FsyncNone leaves durability to the OS page cache: the ceiling the
	// other policies are measured against.
	FsyncNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncEveryBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// walHeader is the header record of one on-disk group.
type walHeader struct {
	N    int    `json:"n"`
	Root []byte `json:"root"`
}

// durableLog is the runtime's set of write-ahead logs: one per input-log
// partition plus (when sharded) one for the global-sequence topic. Each
// partition's mutex serializes the WAL append with the broker produce so
// the on-disk order is exactly the topic order — which is what makes a
// fresh-broker rebuild replay the identical schedule.
type durableLog struct {
	part []*wal.Log
	gseq *wal.Log

	mu []sync.Mutex // one per partition; last slot guards gseq
	// groups counts batcher group appends per partition (the idempotent-
	// producer sequence space); gseqGroups the gseq appends.
	groups     []int64
	gseqGroups int64
	// markerHi is, per partition, the highest global-sequence stamp whose
	// marker is already persisted in that partition's log — bootstrap seeds
	// it from the replay, and the live sequencer consults it so re-sequencing
	// the gseq topic after a restart never re-appends a marker the log
	// already holds (the idempotent produce dedups the broker side; this
	// dedups the disk side). Markers reach a partition in increasing stamp
	// order, so a watermark suffices.
	markerHi []int64
}

func walOptions(cfg Config) wal.Options {
	opts := wal.Options{}
	switch cfg.Fsync {
	case FsyncEveryBatch:
		opts.SyncOnAppend = true
	case FsyncInterval:
		opts.SyncInterval = cfg.FsyncEvery
		if opts.SyncInterval <= 0 {
			opts.SyncInterval = time.Millisecond
		}
	case FsyncNone:
	}
	return opts
}

// openDurableLog opens (or creates) the runtime's logs under dir:
// p<partition>/ per input-log partition, gseq/ for the sequence topic.
// Each log's torn tail bytes (if a crash left any) are trimmed on open so
// live appends extend the valid record stream.
func openDurableLog(dir string, nparts int, cfg Config) (*durableLog, error) {
	d := &durableLog{
		part:     make([]*wal.Log, nparts),
		mu:       make([]sync.Mutex, nparts+1),
		groups:   make([]int64, nparts),
		markerHi: make([]int64, nparts),
	}
	opts := walOptions(cfg)
	open := func(sub string) (*wal.Log, error) {
		l, err := wal.Open(filepath.Join(dir, sub), opts)
		if err != nil {
			return nil, err
		}
		if _, err := l.TrimTorn(); err != nil {
			l.Close()
			return nil, err
		}
		return l, nil
	}
	for p := 0; p < nparts; p++ {
		l, err := open(fmt.Sprintf("p%d", p))
		if err != nil {
			d.close()
			return nil, err
		}
		d.part[p] = l
	}
	if nparts > 1 {
		l, err := open("gseq")
		if err != nil {
			d.close()
			return nil, err
		}
		d.gseq = l
	}
	return d, nil
}

func (d *durableLog) close() {
	for _, l := range d.part {
		if l != nil {
			l.Close()
		}
	}
	if d.gseq != nil {
		d.gseq.Close()
	}
}

// appendGroup writes one group (header + members) to log l. The caller
// holds the matching mutex.
func appendGroup(l *wal.Log, members [][]byte) error {
	root := wal.MerkleRoot(members)
	hdr, err := json.Marshal(walHeader{N: len(members), Root: root[:]})
	if err != nil {
		return err
	}
	payloads := make([][]byte, 0, len(members)+1)
	payloads = append(payloads, hdr)
	payloads = append(payloads, members...)
	_, err = l.AppendBatch(payloads)
	return err
}

// group is one verified on-disk group append.
type group struct {
	members [][]byte
}

// readGroups replays one WAL through group parsing and Merkle
// verification. It returns the verified groups, the number of torn
// (incomplete, tail-only) groups dropped, and an error on tampering or
// mid-log corruption.
func readGroups(l *wal.Log) (groups []group, torn int, err error) {
	var cur *group
	var want int
	var root []byte
	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur.members) < want {
			// Incomplete group: legal only as the very tail (the WAL
			// itself already stopped at the first torn record). The caller
			// sees it as torn because nothing follows.
			torn++
			cur = nil
			return nil
		}
		got := wal.MerkleRoot(cur.members)
		if !bytes.Equal(got[:], root) {
			return fmt.Errorf("%w: group %d", ErrLogTampered, len(groups))
		}
		groups = append(groups, *cur)
		cur = nil
		return nil
	}
	replayErr := l.Replay(func(payload []byte) error {
		if cur == nil {
			var hdr walHeader
			if err := json.Unmarshal(payload, &hdr); err != nil || hdr.N <= 0 {
				return fmt.Errorf("%w: malformed group header", ErrLogTampered)
			}
			cur = &group{members: make([][]byte, 0, hdr.N)}
			want, root = hdr.N, hdr.Root
			return nil
		}
		cur.members = append(cur.members, append([]byte(nil), payload...))
		if len(cur.members) == want {
			return flush()
		}
		return nil
	})
	if replayErr != nil {
		return nil, 0, replayErr
	}
	// A group still open at stream end is torn — unless it had all its
	// members, in which case flush verifies it normally (can't happen:
	// full groups flush inline), so this only counts the partial tail.
	if cur != nil {
		if err := flush(); err != nil {
			return nil, 0, err
		}
	}
	return groups, torn, nil
}

// bootstrap replays every verified group into the broker, idempotently, so
// a fresh broker (real restart) is rebuilt in the exact pre-crash order
// and a surviving broker (in-process recovery) deduplicates everything.
// It also seeds the producer sequence counters the live appenders continue
// from. A torn tail (crash mid-group-write) triggers a rebuild of that log
// down to its verified groups: the dangling partial group must not precede
// live appends on disk, or the next restart would misparse the new group
// headers as members of the old partial group.
func (r *Runtime) bootstrap() error {
	d := r.dlog
	for p := 0; p < r.nparts; p++ {
		groups, torn, err := readGroups(d.part[p])
		if err != nil {
			return err
		}
		if torn > 0 {
			r.m.Counter("core.wal_torn_batches").Add(int64(torn))
			if err := rebuildLog(d.part[p], groups); err != nil {
				return err
			}
		}
		for _, g := range groups {
			if marker, gseq := markerOf(g.members); marker != nil {
				// A cross-partition marker fanned out by the sequencer:
				// same producer id and sequence as the original fan-out,
				// so the live sequencer's re-pass dedups against it.
				r.broker.ProduceIdempotentTo(r.logTopic(p), "", marker, r.cfg.Name+"-seq", gseq-1)
				d.markerHi[p] = gseq
				continue
			}
			raw := combineGroup(g.members)
			r.broker.ProduceIdempotentTo(r.logTopic(p), "", raw, walProducerID(r.cfg.Name, p), d.groups[p])
			d.groups[p]++
			r.m.Counter("core.wal_replayed_groups").Inc()
		}
	}
	if d.gseq != nil {
		groups, torn, err := readGroups(d.gseq)
		if err != nil {
			return err
		}
		if torn > 0 {
			r.m.Counter("core.wal_torn_batches").Add(int64(torn))
			if err := rebuildLog(d.gseq, groups); err != nil {
				return err
			}
		}
		for _, g := range groups {
			for _, member := range g.members {
				r.broker.ProduceIdempotentTo(r.seqTopic(), "", member, r.cfg.Name+"-wal-gseq", d.gseqGroups)
				d.gseqGroups++
			}
		}
	}
	return nil
}

// rebuildLog rewrites a log whose tail held a torn (partially written)
// group: truncate, then re-append the verified groups. The dropped
// submissions were never acked — their durability point was never reached.
func rebuildLog(l *wal.Log, groups []group) error {
	if err := l.Truncate(); err != nil {
		return err
	}
	for _, g := range groups {
		if err := appendGroup(l, g.members); err != nil {
			return err
		}
	}
	return l.Sync()
}

func walProducerID(name string, part int) string {
	return fmt.Sprintf("%s-wal-p%d", name, part)
}

// markerOf reports whether a single-member group is a sequencer marker
// (GSeq stamped) and returns its payload and stamp.
func markerOf(members [][]byte) ([]byte, int64) {
	if len(members) != 1 {
		return nil, 0
	}
	var req request
	if err := json.Unmarshal(members[0], &req); err != nil {
		return nil, 0
	}
	if req.GSeq == 0 {
		return nil, 0
	}
	return members[0], req.GSeq
}

// combineGroup rebuilds the broker record for one batcher group append: a
// single member is its own record; N members are the {"b":[...]} group
// record — byte-identical to the original json.Marshal(request{Batch}),
// since each member payload *is* the original member marshaling.
func combineGroup(members [][]byte) []byte {
	if len(members) == 1 {
		return members[0]
	}
	var buf bytes.Buffer
	buf.WriteString(`{"b":[`)
	for i, m := range members {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(m)
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}

// waitDurable is the second phase of the FsyncInterval two-phase ack:
// block until the log's sync watermark covers everything appended so far,
// so the acknowledgment that follows means "on stable storage", not "in
// the page cache until the next timer tick". The other policies return
// immediately — EveryBatch synced inside the append itself, and None
// explicitly leaves durability to the OS. cancel (the runtime's stop
// channel) aborts the wait on crash/shutdown; the caller then fails its
// submitters instead of acking, and recovery replays the record if the
// sync in fact made it.
func (r *Runtime) waitDurable(l *wal.Log, cancel <-chan struct{}) error {
	if r.cfg.Fsync != FsyncInterval {
		return nil
	}
	if err := l.WaitDurable(l.Len(), cancel); err != nil {
		if errors.Is(err, wal.ErrCanceled) || errors.Is(err, wal.ErrClosed) {
			return ErrNotRunning
		}
		return err
	}
	return nil
}

// appendBatchDurable is the batcher's WAL-mode append path: persist the
// group (header + members, one write, fsync per policy — in interval mode
// waiting out the covering sync), then produce the combined record to the
// broker — under the partition lock, so disk order is topic order.
// Returns after the configured durability point; that return is what the
// submitters' acks mean.
func (r *Runtime) appendBatchDurable(part int, members [][]byte, raw []byte, cancel <-chan struct{}) error {
	d := r.dlog
	d.mu[part].Lock()
	defer d.mu[part].Unlock()
	if err := appendGroup(d.part[part], members); err != nil {
		return err
	}
	if err := r.waitDurable(d.part[part], cancel); err != nil {
		return err
	}
	_, err := r.broker.ProduceIdempotentTo(r.logTopic(part), "", raw, walProducerID(r.cfg.Name, part), d.groups[part])
	d.groups[part]++
	r.m.Counter("core.wal_group_appends").Inc()
	r.m.Counter("core.wal_records").Add(int64(len(members)))
	return err
}

// appendMarkerDurable is the sequencer's WAL-mode fan-out: persist the
// marker in the partition's log, then produce it idempotently keyed by its
// global-sequence offset. A marker bootstrap already replayed from disk
// (stamp at or below the partition's watermark) skips the append — the
// produce below still runs and dedups, covering the crash window where the
// gseq log got the entry but the partition log missed the marker.
func (r *Runtime) appendMarkerDurable(part int, reqID string, raw []byte, gseqOff int64, cancel <-chan struct{}) error {
	d := r.dlog
	d.mu[part].Lock()
	defer d.mu[part].Unlock()
	if gseqOff+1 > d.markerHi[part] {
		if err := appendGroup(d.part[part], [][]byte{raw}); err != nil {
			return err
		}
		d.markerHi[part] = gseqOff + 1
		if err := r.waitDurable(d.part[part], cancel); err != nil {
			return err
		}
	}
	_, err := r.broker.ProduceIdempotentTo(r.logTopic(part), reqID, raw, r.cfg.Name+"-seq", gseqOff)
	return err
}

// appendGSeqDurable persists one cross-partition submission in the global-
// sequence log before it is produced to the sequence topic. d is the
// caller's capture of the runtime's durable log (SubmitAsync snapshots it
// under runMu alongside the running flag).
func (r *Runtime) appendGSeqDurable(d *durableLog, reqID string, raw []byte, cancel <-chan struct{}) error {
	gslot := len(d.mu) - 1
	d.mu[gslot].Lock()
	defer d.mu[gslot].Unlock()
	if err := appendGroup(d.gseq, [][]byte{raw}); err != nil {
		return err
	}
	if err := r.waitDurable(d.gseq, cancel); err != nil {
		return err
	}
	_, err := r.broker.ProduceIdempotentTo(r.seqTopic(), reqID, raw, r.cfg.Name+"-wal-gseq", d.gseqGroups)
	d.gseqGroups++
	return err
}
