// Package core implements the paper's forward-looking contribution: the
// transactional cloud-application runtime §5 calls for — "a programming
// model and system with transparent parallelization, scalability, and
// consistency". It is a deterministic transactional stateful-functions
// engine in the style of Styx [52] and the transactional-dataflow line of
// work the authors survey (§4.2, refs [21, 22, 51]):
//
//   - Every transaction is appended to a durable input log; its log position
//     is its global transaction id. The log IS the sequencer.
//   - Execution is deterministic: transactions apply in log order, with
//     non-conflicting transactions (disjoint key sets) running in
//     parallel. The schedule is conflict-equivalent to the serial order of
//     the log, so the system is serializable *without* locks held across
//     messages and *without* 2PC — the cost the Orleans-style coordinator
//     pays (experiments E1/E14 quantify the difference).
//   - Exactly-once: state snapshots are taken together with the input
//     offsets; recovery reloads the snapshot and replays the log suffix.
//     Determinism makes the replay bit-for-bit identical, and a result
//     cache keyed by client request id makes Submit idempotent.
//
// # Sharding
//
// The key space is hash-partitioned across Config.Partitions input-log
// partitions (Calvin-style; E16 measures the scaling curve). Each partition
// owns one "<name>-txlog" partition and one scheduler loop:
//
//   - A transaction whose declared keys all hash to one partition appends to
//     that partition's log and executes with zero cross-shard coordination —
//     its position in the home partition's log is its order.
//   - A transaction spanning partitions appends to the single-partition
//     global sequence topic "<name>-gseq". A lone sequencer goroutine
//     interleaves each such transaction into every involved partition's log
//     (idempotently, keyed by its global sequence offset), so all partitions
//     agree on the relative order of cross-partition transactions. Each
//     partition executor wires the transaction into its own per-key
//     dependency chains at the marker's log position; the last partition to
//     reach its marker launches execution.
//
// The combined schedule stays conflict-equivalent to a serial order: keys
// are owned by exactly one partition, so conflicts within a partition
// follow that partition's log order, and every partition log agrees with
// the global sequence order on cross-partition transactions — the conflict
// graph is acyclic. Partitions = 1 degenerates to exactly the single-log
// runtime (no sequence topic, no extra machinery).
//
// Transactions declare their key set up front (Calvin-style reconnaissance;
// Styx discovers it dynamically — the declared-keys simplification keeps the
// scheduler compact while preserving the performance shape: no coordination
// round trips, conflict-driven parallelism).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/mq"
)

// Common runtime errors.
var (
	ErrNoFunction = errors.New("core: no registered function")
	ErrUndeclared = errors.New("core: access to undeclared key")
	ErrAborted    = errors.New("core: transaction aborted")
	ErrNotRunning = errors.New("core: runtime not running")
	ErrTimeout    = errors.New("core: result wait timeout")
	ErrReadOnly   = errors.New("core: write in read-only transaction")
	// ErrOverloaded is the admission-control sentinel: a bounded submission
	// queue (Config.MaxPending) was full and the runtime shed the request
	// instead of queueing it. Match with errors.Is; the concrete error is
	// an *OverloadError carrying the rejection's context.
	ErrOverloaded = errors.New("core: overloaded")
)

// OverloadError is the typed shed rejection SubmitAsync returns when
// admission control (Config.MaxPending) refuses a submission. The request
// never reached the log: nothing was appended, nothing will execute, and
// the same reqID may simply be resubmitted after RetryAfter.
type OverloadError struct {
	// Partition is the home partition whose batcher queue was full, or -1
	// when the global-sequence (cross-partition) path was saturated.
	Partition int
	// Pending is the queue depth observed at rejection.
	Pending int
	// RetryAfter is a coarse hint: roughly how long until the appender has
	// drained enough to plausibly accept a retry.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	where := fmt.Sprintf("partition %d", e.Partition)
	if e.Partition < 0 {
		where = "global sequence"
	}
	return fmt.Sprintf("core: overloaded: %s queue full (%d pending, retry after %v)",
		where, e.Pending, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Tx is the transactional context passed to functions. All state access is
// restricted to the transaction's declared keys; writes buffer and apply
// atomically at commit. Read-only transactions (SubmitReadOnly) run over a
// consistent snapshot instead of live state and reject writes.
type Tx struct {
	rt     *Runtime
	tid    int64
	keys   map[string]struct{}
	writes map[string][]byte
	dels   map[string]struct{}
	ro     bool
	snap   map[string][]byte
}

// TID returns the transaction's global id. A single-partition transaction's
// id encodes (home-partition log offset, partition); a cross-partition
// transaction's id is its global sequence offset.
func (t *Tx) TID() int64 { return t.tid }

// Get reads a declared key.
func (t *Tx) Get(key string) ([]byte, bool, error) {
	if _, ok := t.keys[key]; !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUndeclared, key)
	}
	if t.ro {
		v, ok := t.snap[key]
		if !ok {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	if _, deleted := t.dels[key]; deleted {
		return nil, false, nil
	}
	if v, ok := t.writes[key]; ok {
		return v, true, nil
	}
	t.rt.stateMu.Lock()
	v, ok := t.rt.state[key]
	t.rt.stateMu.Unlock()
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Put buffers a write to a declared key.
func (t *Tx) Put(key string, value []byte) error {
	if t.ro {
		return fmt.Errorf("%w: %s", ErrReadOnly, key)
	}
	if _, ok := t.keys[key]; !ok {
		return fmt.Errorf("%w: %s", ErrUndeclared, key)
	}
	delete(t.dels, key)
	t.writes[key] = append([]byte(nil), value...)
	return nil
}

// Del buffers a delete of a declared key.
func (t *Tx) Del(key string) error {
	if t.ro {
		return fmt.Errorf("%w: %s", ErrReadOnly, key)
	}
	if _, ok := t.keys[key]; !ok {
		return fmt.Errorf("%w: %s", ErrUndeclared, key)
	}
	delete(t.writes, key)
	t.dels[key] = struct{}{}
	return nil
}

// TxnFunc is a transactional function: it reads and writes its declared
// keys through tx and returns a result for the client. Returning an error
// aborts the transaction (no writes apply) — the error is the result.
// Functions must be deterministic: same state + args => same outcome.
type TxnFunc func(tx *Tx, args []byte) ([]byte, error)

// Config tunes the runtime.
type Config struct {
	// Name prefixes the runtime's topics.
	Name string
	// Workers bounds concurrently executing transactions. Zero means 8.
	Workers int
	// Partitions shards the key space across that many input-log partitions,
	// each with its own scheduler loop. Zero or one means a single log —
	// exactly the pre-sharding semantics.
	Partitions int
	// SequenceDelay models the per-record latency of durably appending and
	// order-stamping one record at a log partition — the fsync/replication
	// await of a real durable log (cf. store.Config.ServiceTime, which
	// models CPU-bound database work by spinning; an append await leaves
	// the CPU free, so it sleeps). It is paid serially at each partition's
	// appender (the group-append batcher: submissions arriving while an
	// append is in flight join the next group and split one record's
	// delay — the group-commit amortization E20 measures) and per
	// cross-partition record at the global sequencer, but overlaps across
	// partitions — the latency sharding hides, which E16 measures. Zero
	// (the default) disables the model. Ignored when LogDir is set: a real
	// log's own append+fsync cost replaces the model.
	SequenceDelay time.Duration
	// LogDir, when set, puts a real durable write-ahead log under the
	// runtime: the per-partition batchers persist every group append
	// (header record with a Merkle root over the members, then the member
	// records) to <LogDir>/p<partition> before producing it to the broker,
	// and Start replays the logs through Merkle verification — persist,
	// then act, measured instead of modeled. See internal/core/wal.go.
	LogDir string
	// Fsync selects the durable log's sync policy (LogDir mode only):
	// every batch (default), interval (FsyncEvery), or none.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval flush period. Zero means 1ms.
	FsyncEvery time.Duration
	// MaxGroupAppend caps how many concurrent submissions one group append
	// may carry. Zero means 128 (the executors' fetch batch). E22 sweeps
	// it to map batch size against fsync policy.
	MaxGroupAppend int
	// MaxPending, when positive, turns on admission control: each
	// partition's batcher queue holds at most MaxPending un-appended
	// submissions and SubmitAsync sheds (returns *OverloadError,
	// errors.Is-matching ErrOverloaded) instead of blocking when it is
	// full; the cross-partition path bounds its in-flight un-sequenced
	// submissions the same way. Zero or negative keeps the legacy
	// behavior: a MaxGroupAppend-deep queue with blocking admission. E23
	// sweeps offered load past saturation against this knob.
	MaxPending int
	// ResultTimeout bounds Submit waits. Zero means 10s.
	ResultTimeout time.Duration
	// Cluster, when set, charges Submit's sequencer and reply hops to the
	// caller's trace for latency comparisons.
	Cluster *fabric.Cluster
}

// Result is a transaction outcome. Seq is the transaction's position in
// the runtime's serialization order — derived from its log offset, with
// group-append members sub-ordered by their batch index (members share a
// record and therefore a TID, but are scheduled, and so serialized, in
// batch order). Zero means unknown (e.g. a timed-out handle).
type Result struct {
	Value []byte
	Err   string // "" = committed
	TID   int64
	Seq   int64
}

// request is the input-log wire format. GSeq is zero for transactions
// appended directly to their home partition; the sequencer stamps
// cross-partition markers with their global sequence offset + 1. A group
// append (SubmitAsync batching concurrent submissions) carries its member
// transactions in Batch instead — one log record, many transactions, one
// SequenceDelay: the amortization that makes pipelined clients scale the
// log's serial append rate.
type request struct {
	ReqID string    `json:"r,omitempty"`
	Fn    string    `json:"f,omitempty"`
	Keys  []string  `json:"k,omitempty"`
	Args  []byte    `json:"a,omitempty"`
	GSeq  int64     `json:"g,omitempty"`
	Batch []request `json:"b,omitempty"`
}

// maxGroupAppend is the default bound on how many concurrent submissions
// one group append may carry (matching the executors' fetch batch);
// Config.MaxGroupAppend overrides it.
const maxGroupAppend = 128

// pendingSubmit is one submission waiting for its group append. acked is
// buffered so a batcher shutting down never blocks on a submitter that
// already gave up.
type pendingSubmit struct {
	req   request
	acked chan error
}

// crossTxn gathers one cross-partition transaction while the involved
// partition executors reach its markers. Every joiner splices the shared
// done channel into the chains of the keys its partition owns, so
// successors in every partition wait on the same completion event; the last
// joiner launches execution.
type crossTxn struct {
	tid    int64
	req    request
	need   int
	joined map[int]bool
	waits  []chan struct{}
	done   chan struct{}
}

// Runtime is the deterministic transactional engine.
type Runtime struct {
	cfg        Config
	nparts     int
	maxGroup   int
	maxPending int // >0: bounded batcher queues + shedding (Config.MaxPending)
	broker     *mq.Broker
	m          *metrics.Registry

	// crossPending counts cross-partition submissions produced to the
	// sequence topic but not yet consumed by the sequencer — the gseq
	// path's bounded queue when maxPending > 0.
	crossPending atomic.Int64

	// dlog is the real durable log (Config.LogDir mode); nil in modeled
	// mode. Opened and bootstrapped by the first Start, kept across
	// Crash/Recover (disk survives a crash), closed by Stop.
	dlog *durableLog

	// per-partition commit counters, resolved once, off the hot path.
	partCommits []*metrics.Counter

	fnMu sync.RWMutex
	fns  map[string]TxnFunc

	stateMu sync.Mutex
	state   map[string][]byte

	// scheduler: per-key tail of the dependency chain. A key is owned by
	// exactly one partition, so two executors never race on the same
	// entry's order, only on the map itself.
	schedMu sync.Mutex
	tails   map[string]chan struct{}
	sem     chan struct{}

	// results: cache (exactly-once client semantics) + waiters. scheduled
	// guards against double execution when the same request id appears
	// twice in a partition log (concurrent client retries).
	resMu     sync.Mutex
	results   map[string]Result
	waiters   map[string][]chan Result
	scheduled map[string]struct{}

	// cross-partition transactions currently being gathered.
	crossMu sync.Mutex
	cross   map[string]*crossTxn

	// checkpoint survives Crash, like the dataflow checkpoint store
	// (models durable snapshot storage).
	ckMu       sync.Mutex
	checkpoint *snapshot

	runMu    sync.Mutex
	running  bool
	stop     chan struct{}
	wakes    []chan struct{} // poked by Submit so executors needn't poll
	seqWake  chan struct{}
	batchCh  []chan *pendingSubmit // per-partition group-append queues
	wg       sync.WaitGroup
	inflight sync.WaitGroup

	offMu   sync.Mutex
	offsets []int64 // next input-log offset, per partition

	seqMu   sync.Mutex
	seqOff  int64               // next global-sequence offset to consume
	seqSeen map[string]struct{} // request ids already sequenced (dedup)
}

type snapshot struct {
	offsets []int64
	seqOff  int64
	seqSeen map[string]struct{}
	state   map[string][]byte
	results map[string]Result
}

// NewRuntime creates a runtime over the broker. The input log is the topic
// "<name>-txlog" with cfg.Partitions partitions; cross-partition
// transactions are ordered through the single-partition "<name>-gseq".
func NewRuntime(broker *mq.Broker, cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.ResultTimeout <= 0 {
		cfg.ResultTimeout = 10 * time.Second
	}
	broker.CreateTopic(cfg.Name+"-txlog", cfg.Partitions)
	// The topic may pre-exist with a different partition count; the log is
	// authoritative, so shard the runtime the way the log is sharded.
	nparts, _ := broker.Partitions(cfg.Name + "-txlog")
	if nparts <= 0 {
		nparts = 1
	}
	if nparts > 1 {
		broker.CreateTopic(cfg.Name+"-gseq", 1)
	}
	m := metrics.NewRegistry()
	partCommits := make([]*metrics.Counter, nparts)
	wakes := make([]chan struct{}, nparts)
	for p := 0; p < nparts; p++ {
		partCommits[p] = m.Counter(fmt.Sprintf("core.partition.%d.commits", p))
		wakes[p] = make(chan struct{}, 1)
	}
	maxGroup := cfg.MaxGroupAppend
	if maxGroup <= 0 {
		maxGroup = maxGroupAppend
	}
	return &Runtime{
		cfg:         cfg,
		nparts:      nparts,
		maxGroup:    maxGroup,
		maxPending:  cfg.MaxPending,
		broker:      broker,
		m:           m,
		partCommits: partCommits,
		fns:         make(map[string]TxnFunc),
		state:       make(map[string][]byte),
		tails:       make(map[string]chan struct{}),
		sem:         make(chan struct{}, cfg.Workers),
		results:     make(map[string]Result),
		waiters:     make(map[string][]chan Result),
		scheduled:   make(map[string]struct{}),
		cross:       make(map[string]*crossTxn),
		wakes:       wakes,
		seqWake:     make(chan struct{}, 1),
		offsets:     make([]int64, nparts),
		seqSeen:     make(map[string]struct{}),
	}
}

// Metrics returns the runtime's instruments.
func (r *Runtime) Metrics() *metrics.Registry { return r.m }

// Partitions returns the number of input-log partitions the runtime shards
// the key space across.
func (r *Runtime) Partitions() int { return r.nparts }

// PartitionOf returns the home partition of a key.
func (r *Runtime) PartitionOf(key string) int { return partitionForKey(key, r.nparts) }

// Register binds a function name to its body.
func (r *Runtime) Register(name string, fn TxnFunc) {
	r.fnMu.Lock()
	defer r.fnMu.Unlock()
	r.fns[name] = fn
}

func (r *Runtime) logTopic(part int) mq.TopicPartition {
	return mq.TopicPartition{Topic: r.cfg.Name + "-txlog", Partition: part}
}

func (r *Runtime) seqTopic() mq.TopicPartition {
	return mq.TopicPartition{Topic: r.cfg.Name + "-gseq", Partition: 0}
}

// partitionForKey maps a key to its home partition with the broker's own
// partitioning hash, so the runtime homes keys exactly where the broker
// would spread them.
func partitionForKey(key string, n int) int {
	return mq.PartitionForKey(key, n)
}

// partitionsOf returns the sorted distinct home partitions of a key set.
// An empty key set homes on partition 0.
func (r *Runtime) partitionsOf(keys []string) []int {
	if r.nparts == 1 || len(keys) == 0 {
		return []int{0}
	}
	seen := make(map[int]struct{}, len(keys))
	parts := make([]int, 0, len(keys))
	for _, k := range keys {
		p := partitionForKey(k, r.nparts)
		if _, ok := seen[p]; !ok {
			seen[p] = struct{}{}
			parts = append(parts, p)
		}
	}
	sort.Ints(parts)
	return parts
}

// Start launches the partition executors (and, when sharded, the global
// sequencer) from the latest checkpoint.
func (r *Runtime) Start() error {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.running {
		return nil
	}
	// First start in LogDir mode (or first after Stop closed the logs):
	// open the durable logs and replay them through Merkle verification
	// into the broker — persist-then-act's recovery half. Crash/Recover
	// keeps dlog open (disk survives a crash; in-process recovery reuses
	// it), so recovery does not re-read the disk: the broker it rebuilt is
	// still there.
	if r.cfg.LogDir != "" && r.dlog == nil {
		d, err := openDurableLog(r.cfg.LogDir, r.nparts, r.cfg)
		if err != nil {
			return err
		}
		r.dlog = d
		if err := r.bootstrap(); err != nil {
			d.close()
			r.dlog = nil
			return err
		}
	}
	r.ckMu.Lock()
	if ck := r.checkpoint; ck != nil {
		r.stateMu.Lock()
		r.state = cloneState(ck.state)
		r.stateMu.Unlock()
		r.resMu.Lock()
		r.results = cloneResults(ck.results)
		r.resMu.Unlock()
		r.offMu.Lock()
		copy(r.offsets, ck.offsets)
		r.offMu.Unlock()
		r.seqMu.Lock()
		r.seqOff = ck.seqOff
		r.seqSeen = cloneSet(ck.seqSeen)
		r.seqMu.Unlock()
	} else {
		r.offMu.Lock()
		for p := range r.offsets {
			r.offsets[p] = 0
		}
		r.offMu.Unlock()
		r.seqMu.Lock()
		r.seqOff = 0
		r.seqSeen = make(map[string]struct{})
		r.seqMu.Unlock()
	}
	r.ckMu.Unlock()
	// Handles registered before a crash survive it (they are client-side
	// state): deliver any whose result the restored checkpoint already
	// holds — replay re-executes the rest and delivers them the normal
	// way. Each waiter is removed when notified, so a handle resolves
	// exactly once across any number of crash/recovery cycles.
	r.resMu.Lock()
	for reqID, ws := range r.waiters {
		if res, ok := r.results[reqID]; ok {
			delete(r.waiters, reqID)
			for _, w := range ws {
				w <- res
			}
		}
	}
	r.resMu.Unlock()
	r.stop = make(chan struct{})
	// Fresh group-append queues per incarnation: a submission stranded in
	// a dead incarnation's queue already failed its caller via the closed
	// stop channel and must not be appended by the next incarnation.
	r.batchCh = make([]chan *pendingSubmit, r.nparts)
	r.running = true
	qcap := r.maxGroup
	if r.maxPending > 0 {
		// Bounded admission: the queue capacity IS the admission bound —
		// SubmitAsync sheds on a full channel instead of blocking.
		qcap = r.maxPending
	}
	for p := 0; p < r.nparts; p++ {
		r.batchCh[p] = make(chan *pendingSubmit, qcap)
		r.wg.Add(2)
		go r.runExecutor(p, r.stop)
		go r.runBatcher(p, r.batchCh[p], r.stop)
	}
	if r.nparts > 1 {
		r.wg.Add(1)
		go r.runSequencer(r.stop)
	}
	return nil
}

func (r *Runtime) setOffset(part int, v int64) {
	r.offMu.Lock()
	r.offsets[part] = v
	r.offMu.Unlock()
}

func (r *Runtime) getOffset(part int) int64 {
	r.offMu.Lock()
	defer r.offMu.Unlock()
	return r.offsets[part]
}

func (r *Runtime) getSeqOff() int64 {
	r.seqMu.Lock()
	defer r.seqMu.Unlock()
	return r.seqOff
}

// retryAfterHint is the coarse backoff hint attached to shed rejections:
// the modeled append delay when one is configured (the queue drains at
// roughly one group per SequenceDelay), otherwise a millisecond — the
// order of one fsync-interval tick.
func (r *Runtime) retryAfterHint() time.Duration {
	if d := r.cfg.SequenceDelay; d > 0 {
		return d
	}
	return time.Millisecond
}

// crossDone retires one counted cross-partition submission. The clamp
// absorbs sequence-topic messages that were never counted (bootstrap
// replay, pre-bound incarnations), which can only make admission
// temporarily more permissive, never wedge it.
func (r *Runtime) crossDone() {
	for {
		v := r.crossPending.Load()
		if v <= 0 {
			return
		}
		if r.crossPending.CompareAndSwap(v, v-1) {
			return
		}
	}
}

// wake pokes one partition executor without blocking.
func (r *Runtime) wake(part int) {
	select {
	case r.wakes[part] <- struct{}{}:
	default:
	}
}

// pace throttles an appending loop (the partition batchers, the global
// sequencer) to one record per SequenceDelay, modeling the serial
// durable-append/ordering latency of a real log partition. Owed delay
// accumulates and is slept in quanta of at least a millisecond —
// group-commit style — so coarse OS timer granularity cannot distort the
// modeled rate; measured oversleep is credited back.
func (r *Runtime) pace(owed time.Duration, records int) time.Duration {
	owed += r.cfg.SequenceDelay * time.Duration(records)
	if owed >= time.Millisecond {
		start := time.Now()
		time.Sleep(owed)
		owed -= time.Since(start)
	}
	return owed
}

// runExecutor consumes one input-log partition in order and schedules its
// transactions. One loop per partition is the parallelism sharding buys:
// decoding and scheduling of disjoint partitions never serializes behind a
// single goroutine. The consumption itself is unpaced: SequenceDelay was
// already paid when each record was appended (batcher or sequencer), and
// a recovery replay reads the local log without re-paying the append —
// which is also why replay outruns original ingestion.
func (r *Runtime) runExecutor(part int, stop chan struct{}) {
	defer r.wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		msgs, err := r.broker.Fetch(r.logTopic(part), r.getOffset(part), 128)
		if err != nil || len(msgs) == 0 {
			select {
			case <-stop:
				return
			case <-r.wakes[part]:
			case <-time.After(time.Millisecond):
			}
			continue
		}
		for _, m := range msgs {
			r.schedule(part, m.Offset, m.Value, stop)
		}
		r.setOffset(part, msgs[len(msgs)-1].Offset+1)
	}
}

// runSequencer consumes the global sequence topic and interleaves each
// cross-partition transaction into every involved partition's log, in
// global sequence order. A single writer means all partitions observe
// cross-partition transactions in the same relative order, which keeps the
// combined conflict graph acyclic. Marker appends are idempotent (producer
// id + global sequence offset), so replaying the sequence suffix after a
// crash never duplicates a marker the broker already holds.
func (r *Runtime) runSequencer(stop chan struct{}) {
	defer r.wg.Done()
	producerID := r.cfg.Name + "-seq"
	var owed time.Duration
	for {
		select {
		case <-stop:
			return
		default:
		}
		msgs, err := r.broker.Fetch(r.seqTopic(), r.getSeqOff(), 128)
		if err != nil || len(msgs) == 0 {
			select {
			case <-stop:
				return
			case <-r.seqWake:
			case <-time.After(time.Millisecond):
			}
			continue
		}
		if r.cfg.SequenceDelay > 0 && r.dlog == nil {
			owed = r.pace(owed, len(msgs))
		}
		for _, m := range msgs {
			r.sequenceOne(producerID, m, stop)
			r.crossDone()
			// Advance only after the fan-out: seqOff >= high water implies
			// every sequenced transaction's markers are in the partition
			// logs, which is what Quiesce relies on.
			r.seqMu.Lock()
			r.seqOff = m.Offset + 1
			r.seqMu.Unlock()
		}
	}
}

// sequenceOne fans one global-sequence entry out to its involved partitions.
// Duplicate request ids (client retries racing Submit's fast path) are
// dropped here, so each partition log carries at most one marker per
// cross-partition request.
func (r *Runtime) sequenceOne(producerID string, m mq.Message, stop chan struct{}) {
	var req request
	if err := json.Unmarshal(m.Value, &req); err != nil {
		r.m.Counter("core.poison").Inc()
		return
	}
	r.seqMu.Lock()
	_, dup := r.seqSeen[req.ReqID]
	if !dup {
		r.seqSeen[req.ReqID] = struct{}{}
	}
	r.seqMu.Unlock()
	if dup {
		r.m.Counter("core.seq_dup_drops").Inc()
		return
	}
	req.GSeq = m.Offset + 1
	raw, err := json.Marshal(req)
	if err != nil {
		r.m.Counter("core.poison").Inc()
		return
	}
	for _, p := range r.partitionsOf(req.Keys) {
		if r.dlog != nil {
			if err := r.appendMarkerDurable(p, req.ReqID, raw, m.Offset, stop); err != nil {
				r.m.Counter("core.wal_errors").Inc()
				continue
			}
		} else {
			r.broker.ProduceIdempotentTo(r.logTopic(p), req.ReqID, raw, producerID, m.Offset)
		}
		r.wake(p)
	}
	r.m.Counter("core.cross_sequenced").Inc()
}

// runBatcher is the partition's appender: it turns concurrent submissions
// into group log appends. Each appended record pays the modeled
// SequenceDelay serially (pace; the fsync/replication await of a real
// log), and submissions arriving while that pay is in flight join the
// current group — classic group commit. A group of N concurrent
// submissions therefore costs one record's delay instead of N, which is
// why the deterministic cell's throughput grows with client count in E20.
// A group of one keeps the legacy single-request record shape.
func (r *Runtime) runBatcher(part int, ch chan *pendingSubmit, stop chan struct{}) {
	defer r.wg.Done()
	var owed time.Duration
	for {
		var first *pendingSubmit
		select {
		case <-stop:
			// Fail-ack anything still queued so no submitter blocks on a
			// dead incarnation.
			for {
				select {
				case ps := <-ch:
					ps.acked <- ErrNotRunning
				default:
					return
				}
			}
		case first = <-ch:
		}
		batch := []*pendingSubmit{first}
		// The durable append ahead of this group: pay one record's delay,
		// then sweep in everything that queued while it was in flight. With
		// a real log (dlog) the append itself is the delay — the modeled
		// pace is not charged on top.
		if r.cfg.SequenceDelay > 0 && r.dlog == nil {
			owed = r.pace(owed, 1)
		}
		// Sweep in everything already queued. In WAL mode, yield the
		// processor a few times between sweeps: submitters woken by the
		// previous group's acks are runnable but may not have re-enqueued
		// yet (acute on few cores), and a scheduler pass costs ~µs against
		// the fsync this group is about to pay — so letting them join
		// multiplies the records amortizing it.
		yields := 0
	drain:
		for len(batch) < r.maxGroup {
			select {
			case ps := <-ch:
				batch = append(batch, ps)
			default:
				if r.dlog == nil || yields >= 4 {
					break drain
				}
				yields++
				runtime.Gosched()
			}
		}
		var raw []byte
		var err error
		if len(batch) > 1 {
			r.m.Counter("core.group_appends").Inc()
			r.m.Counter("core.grouped_txns").Add(int64(len(batch)))
		}
		if r.dlog != nil {
			// WAL mode: marshal the members individually (they are the
			// Merkle leaves and the replayable units), persist the group,
			// then produce the combined record — the ack below means "on
			// disk per the fsync policy".
			members := make([][]byte, len(batch))
			for i, ps := range batch {
				if members[i], err = json.Marshal(ps.req); err != nil {
					break
				}
			}
			if err == nil {
				raw = combineGroup(members)
				err = r.appendBatchDurable(part, members, raw, stop)
			}
		} else {
			if len(batch) == 1 {
				raw, err = json.Marshal(batch[0].req)
			} else {
				reqs := make([]request, len(batch))
				for i, ps := range batch {
					reqs[i] = ps.req
				}
				raw, err = json.Marshal(request{Batch: reqs})
			}
			if err == nil {
				_, err = r.broker.Produce(r.logTopic(part), "", raw)
			}
		}
		for _, ps := range batch {
			ps.acked <- err
		}
		if err == nil {
			r.wake(part)
		}
	}
}

// schedule routes one log entry: group appends are unpacked into their
// member transactions in record order (so chain order still equals log
// order); entries whose keys span partitions are cross-partition markers
// written by the sequencer; everything else is a home-partition
// transaction scheduled exactly as in the single-log runtime.
func (r *Runtime) schedule(part int, off int64, raw []byte, stop chan struct{}) {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		r.m.Counter("core.poison").Inc()
		return
	}
	if len(req.Batch) > 0 {
		// Members of a group append share the record's transaction id; they
		// were all single-partition submissions homed here, and replay
		// unpacks the identical record identically.
		tid := off*int64(r.nparts) + int64(part)
		for i := range req.Batch {
			r.scheduleSingle(part, tid, tid*int64(r.maxGroup)+int64(i)+1, req.Batch[i], stop)
		}
		return
	}
	parts := r.partitionsOf(req.Keys)
	if len(parts) > 1 {
		r.scheduleCross(part, parts, req, stop)
		return
	}
	tid := off*int64(r.nparts) + int64(part)
	r.scheduleSingle(part, tid, tid*int64(r.maxGroup)+1, req, stop)
}

// scheduleSingle wires a home-partition transaction into the per-key
// dependency chains and launches it. Scheduling happens in partition-log
// order, so chain order == log order; execution may interleave but only
// between non-conflicting transactions — conflict-equivalent to the serial
// log order.
func (r *Runtime) scheduleSingle(part int, tid, seq int64, req request, stop chan struct{}) {
	// Deduplicate: a replayed request whose result is already cached, or a
	// duplicate log entry whose first copy is already scheduled, must not
	// re-execute.
	r.resMu.Lock()
	_, done := r.results[req.ReqID]
	_, inFlight := r.scheduled[req.ReqID]
	if !done && !inFlight {
		r.scheduled[req.ReqID] = struct{}{}
	}
	r.resMu.Unlock()
	if done || inFlight {
		return
	}
	keys := append([]string(nil), req.Keys...)
	sort.Strings(keys)
	myDone := make(chan struct{})
	waits := make([]chan struct{}, 0, len(keys))
	r.schedMu.Lock()
	for _, k := range keys {
		if tail, ok := r.tails[k]; ok {
			waits = append(waits, tail)
		}
		r.tails[k] = myDone
	}
	r.schedMu.Unlock()

	r.inflight.Add(1)
	go func() {
		defer r.inflight.Done()
		defer close(myDone)
		for _, w := range waits {
			select {
			case <-w:
			case <-stop:
				return
			}
		}
		select {
		case r.sem <- struct{}{}:
			defer func() { <-r.sem }()
		case <-stop:
			return
		}
		r.execute(tid, seq, req, part)
	}()
}

// scheduleCross contributes one partition's view of a cross-partition
// transaction. The marker sits at a deterministic position in this
// partition's log, so splicing the keys this partition owns into the chains
// here orders this partition's conflicts against the transaction exactly as
// the log says. The last involved partition to reach its marker launches
// execution.
func (r *Runtime) scheduleCross(part int, parts []int, req request, stop chan struct{}) {
	r.resMu.Lock()
	_, done := r.results[req.ReqID]
	r.resMu.Unlock()
	if done {
		return
	}
	r.crossMu.Lock()
	ct, ok := r.cross[req.ReqID]
	if !ok {
		ct = &crossTxn{
			tid:    req.GSeq - 1,
			req:    req,
			need:   len(parts),
			joined: make(map[int]bool, len(parts)),
			done:   make(chan struct{}),
		}
		r.cross[req.ReqID] = ct
	}
	if ct.joined[part] {
		r.crossMu.Unlock()
		return
	}
	ct.joined[part] = true
	myKeys := make([]string, 0, len(req.Keys))
	for _, k := range req.Keys {
		if partitionForKey(k, r.nparts) == part {
			myKeys = append(myKeys, k)
		}
	}
	sort.Strings(myKeys)
	r.schedMu.Lock()
	for _, k := range myKeys {
		if tail, ok := r.tails[k]; ok {
			ct.waits = append(ct.waits, tail)
		}
		r.tails[k] = ct.done
	}
	r.schedMu.Unlock()
	launch := len(ct.joined) == ct.need
	r.crossMu.Unlock()
	if !launch {
		return
	}

	r.inflight.Add(1)
	go func() {
		defer r.inflight.Done()
		defer close(ct.done)
		defer func() {
			r.crossMu.Lock()
			delete(r.cross, ct.req.ReqID)
			r.crossMu.Unlock()
		}()
		for _, w := range ct.waits {
			select {
			case <-w:
			case <-stop:
				return
			}
		}
		select {
		case r.sem <- struct{}{}:
			defer func() { <-r.sem }()
		case <-stop:
			return
		}
		r.execute(ct.tid, ct.tid*int64(r.maxGroup)+1, ct.req, -1)
	}()
}

// execute runs one transaction and publishes its result. part is the home
// partition, or -1 for a cross-partition transaction; seq is the
// transaction's serialization stamp (Result.Seq).
func (r *Runtime) execute(tid, seq int64, req request, part int) {
	r.fnMu.RLock()
	fn, ok := r.fns[req.Fn]
	r.fnMu.RUnlock()
	var res Result
	if !ok {
		res = Result{Err: ErrNoFunction.Error() + ": " + req.Fn, TID: tid, Seq: seq}
	} else {
		tx := &Tx{
			rt:     r,
			tid:    tid,
			keys:   make(map[string]struct{}, len(req.Keys)),
			writes: make(map[string][]byte),
			dels:   make(map[string]struct{}),
		}
		for _, k := range req.Keys {
			tx.keys[k] = struct{}{}
		}
		value, err := fn(tx, req.Args)
		if err != nil {
			res = Result{Err: err.Error(), TID: tid, Seq: seq}
			r.m.Counter("core.aborts").Inc()
		} else {
			// Commit: apply buffered writes atomically.
			r.stateMu.Lock()
			for k, v := range tx.writes {
				r.state[k] = v
			}
			for k := range tx.dels {
				delete(r.state, k)
			}
			r.stateMu.Unlock()
			res = Result{Value: value, TID: tid, Seq: seq}
			r.m.Counter("core.commits").Inc()
			if part >= 0 {
				r.partCommits[part].Inc()
			} else {
				r.m.Counter("core.cross_commits").Inc()
			}
		}
	}
	r.resMu.Lock()
	r.results[req.ReqID] = res
	delete(r.scheduled, req.ReqID)
	ws := r.waiters[req.ReqID]
	delete(r.waiters, req.ReqID)
	r.resMu.Unlock()
	for _, w := range ws {
		w <- res
	}
}

// Handle is an in-flight asynchronous submission (SubmitAsync). Done
// closes when the scheduled transaction has committed or aborted — the
// "applied" event, as opposed to the durable-append acknowledgment
// SubmitAsync's return represents. A handle survives Crash/Recover: the
// request is already in the log when the handle exists, so replay
// re-executes (or the restored checkpoint re-delivers) it, and the handle
// resolves exactly once.
type Handle struct {
	ch       chan Result
	done     chan struct{}
	timeout  time.Duration
	rt       *Runtime
	tr       *fabric.Trace
	reqID    string
	res      Result
	timedOut bool
}

// watch waits for the executor's result delivery (bounded by the
// runtime's ResultTimeout) and completes the handle. A timed-out handle
// unregisters its waiter so abandoned registrations cannot accumulate
// across the runtime's lifetime.
func (h *Handle) watch() {
	timer := time.NewTimer(h.timeout)
	defer timer.Stop()
	select {
	case res := <-h.ch:
		h.res = res
		h.rt.chargeHop(h.tr) // result -> client
	case <-timer.C:
		h.timedOut = true
		h.rt.dropWaiter(h.reqID, h.ch)
	}
	close(h.done)
}

// Done is closed when the transaction has committed or aborted.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result blocks for completion and returns the transaction's outcome.
func (h *Handle) Result() ([]byte, error) {
	<-h.done
	if h.timedOut {
		return nil, ErrTimeout
	}
	return resultOut(h.res)
}

// Seq blocks for completion and returns the transaction's serialization
// stamp — its position in the runtime's commit order (zero if unknown,
// e.g. a timed-out handle). Auditors use it to replay observed commits in
// the order the runtime actually serialized them.
func (h *Handle) Seq() int64 {
	<-h.done
	if h.timedOut {
		return 0
	}
	return h.res.Seq
}

// resolvedHandle wraps an already-known result (dedup fast path).
func resolvedHandle(res Result) *Handle {
	h := &Handle{done: make(chan struct{}), res: res}
	close(h.done)
	return h
}

// Submit appends a transaction to its home partition (or, when its declared
// keys span partitions, to the global sequence topic) and waits for its
// result. reqID makes the call idempotent: resubmitting (a client retry)
// returns the cached result without re-execution. Two simulated hops (to
// the sequencer and back) are charged to tr — compare with the 2PC hop
// count.
func (r *Runtime) Submit(reqID, fn string, keys []string, args []byte, tr *fabric.Trace) ([]byte, error) {
	h, err := r.SubmitAsync(reqID, fn, keys, args, tr)
	if err != nil {
		return nil, err
	}
	return h.Result()
}

// SubmitAsync is the pipelined Submit: it returns once the transaction is
// durably appended — concurrent submissions to the same partition share a
// group log append, amortizing SequenceDelay — and the Handle resolves
// when the scheduled transaction commits. The two events are the
// deterministic cell's honest accept-vs-apply split: acknowledgment is
// the append, application is the commit, and E20 reports them as two
// latency numbers per request.
func (r *Runtime) SubmitAsync(reqID, fn string, keys []string, args []byte, tr *fabric.Trace) (*Handle, error) {
	r.runMu.Lock()
	running, stop, batches, dlog := r.running, r.stop, r.batchCh, r.dlog
	r.runMu.Unlock()
	if !running {
		return nil, ErrNotRunning
	}
	r.chargeHop(tr) // client -> sequencer
	// Fast path: already executed (client retry).
	r.resMu.Lock()
	if res, ok := r.results[reqID]; ok {
		r.resMu.Unlock()
		r.m.Counter("core.dedup_hits").Inc()
		r.chargeHop(tr) // cached result -> client
		return resolvedHandle(res), nil
	}
	ch := make(chan Result, 1)
	r.waiters[reqID] = append(r.waiters[reqID], ch)
	r.resMu.Unlock()
	// Every failure past this point must unregister the waiter: the
	// request never reached the log, so nothing will ever deliver it —
	// and Crash deliberately preserves waiters, so a leaked one would
	// outlive every recovery.
	fail := func(err error) (*Handle, error) {
		r.dropWaiter(reqID, ch)
		return nil, err
	}

	req := request{ReqID: reqID, Fn: fn, Keys: keys, Args: args}
	if parts := r.partitionsOf(keys); len(parts) == 1 {
		ps := &pendingSubmit{req: req, acked: make(chan error, 1)}
		if r.maxPending > 0 {
			// Bounded admission: a full batcher queue sheds instead of
			// blocking — the request never reached the log, so nothing
			// to clean up beyond the waiter, and the same reqID can be
			// resubmitted after the hint.
			select {
			case batches[parts[0]] <- ps:
			default:
				r.m.Counter("core.shed").Inc()
				return fail(&OverloadError{
					Partition:  parts[0],
					Pending:    len(batches[parts[0]]),
					RetryAfter: r.retryAfterHint(),
				})
			}
		} else {
			select {
			case batches[parts[0]] <- ps:
			case <-stop:
				return fail(ErrNotRunning)
			}
		}
		select {
		case err := <-ps.acked:
			if err != nil {
				return fail(err)
			}
		case <-stop:
			return fail(ErrNotRunning)
		}
	} else {
		if r.maxPending > 0 {
			// The gseq path's bound: submissions produced to the sequence
			// topic but not yet consumed by the sequencer.
			if n := r.crossPending.Load(); n >= int64(r.maxPending) {
				r.m.Counter("core.shed").Inc()
				return fail(&OverloadError{
					Partition:  -1,
					Pending:    int(n),
					RetryAfter: r.retryAfterHint(),
				})
			}
			r.crossPending.Add(1)
		}
		raw, err := json.Marshal(req)
		if err != nil {
			r.crossDone()
			return fail(err)
		}
		if dlog != nil {
			// Cross-partition submissions persist in the global-sequence
			// log before the topic sees them: the gseq log is their
			// durability point (the sequencer's markers are derived).
			if err := r.appendGSeqDurable(dlog, reqID, raw, stop); err != nil {
				r.crossDone()
				return fail(err)
			}
		} else if _, err := r.broker.Produce(r.seqTopic(), reqID, raw); err != nil {
			r.crossDone()
			return fail(err)
		}
		r.m.Counter("core.cross_submits").Inc()
		select {
		case r.seqWake <- struct{}{}:
		default:
		}
	}
	h := &Handle{ch: ch, done: make(chan struct{}), timeout: r.cfg.ResultTimeout, rt: r, tr: tr, reqID: reqID}
	go h.watch()
	return h, nil
}

// dropWaiter unregisters one waiter channel for reqID (submission failure
// or handle timeout). The channel is buffered, so a delivery racing the
// drop is absorbed rather than lost or blocking the executor.
func (r *Runtime) dropWaiter(reqID string, ch chan Result) {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	ws := r.waiters[reqID]
	for i, w := range ws {
		if w == ch {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(r.waiters, reqID)
	} else {
		r.waiters[reqID] = ws
	}
}

// SubmitReadOnly executes a read-only transaction immediately against the
// latest committed state: no input-log append, no scheduling, no
// write-schedule slot consumed — queries never delay or conflict with the
// write pipeline. The snapshot of the declared keys is cut atomically
// under the state lock, which keeps it serializable: commits apply their
// whole write set under that lock, and any two committed writers that
// conflict with each other are chain-ordered (the later one applies its
// state strictly after the earlier one's apply completes), so a cut that
// includes the later writer always includes the earlier — the read fits
// into the conflict graph without a cycle. Writers that do not conflict
// commute around the read. Reads are naturally idempotent, so there is no
// result caching; reqID is accepted for interface symmetry with Submit.
func (r *Runtime) SubmitReadOnly(reqID, fn string, keys []string, args []byte, tr *fabric.Trace) ([]byte, error) {
	_ = reqID
	r.runMu.Lock()
	running := r.running
	r.runMu.Unlock()
	if !running {
		return nil, ErrNotRunning
	}
	r.fnMu.RLock()
	body, ok := r.fns[fn]
	r.fnMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFunction, fn)
	}
	r.chargeHop(tr) // client -> owning node
	tx := &Tx{
		rt:   r,
		tid:  -1,
		keys: make(map[string]struct{}, len(keys)),
		ro:   true,
		snap: make(map[string][]byte, len(keys)),
	}
	for _, k := range keys {
		tx.keys[k] = struct{}{}
	}
	r.stateMu.Lock()
	for _, k := range keys {
		if v, ok := r.state[k]; ok {
			tx.snap[k] = append([]byte(nil), v...)
		}
	}
	r.stateMu.Unlock()
	value, err := body(tx, args)
	r.chargeHop(tr) // result -> client
	if err != nil {
		r.m.Counter("core.readonly_aborts").Inc()
		return nil, fmt.Errorf("%w: %s", ErrAborted, err.Error())
	}
	r.m.Counter("core.readonly").Inc()
	return value, nil
}

// chargeHop prices one cross-node message on the fabric, when configured.
func (r *Runtime) chargeHop(tr *fabric.Trace) {
	if r.cfg.Cluster == nil || tr == nil {
		return
	}
	nodes := r.cfg.Cluster.Nodes()
	if len(nodes) == 0 {
		return
	}
	src := nodes[0]
	dst := nodes[len(nodes)-1]
	r.cfg.Cluster.Send(src, dst, tr)
}

func resultOut(res Result) ([]byte, error) {
	if res.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrAborted, res.Err)
	}
	return res.Value, nil
}

// Read returns the committed value of a key outside any transaction (it
// sees the latest committed state; used by tests and the harness).
func (r *Runtime) Read(key string) ([]byte, bool) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	v, ok := r.state[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// caughtUp reports whether everything written to the logs so far has been
// scheduled. The sequence topic is checked first: once the sequencer has
// consumed up to its high water, every marker is already in the partition
// logs, so the per-partition high waters observed afterwards cover them.
func (r *Runtime) caughtUp() (bool, error) {
	if r.nparts > 1 {
		hw, err := r.broker.HighWater(r.seqTopic())
		if err != nil {
			return false, err
		}
		if r.getSeqOff() < hw {
			return false, nil
		}
	}
	for p := 0; p < r.nparts; p++ {
		hw, err := r.broker.HighWater(r.logTopic(p))
		if err != nil {
			return false, err
		}
		if r.getOffset(p) < hw {
			return false, nil
		}
	}
	return true, nil
}

// Quiesce blocks until every transaction in the logs so far has executed.
func (r *Runtime) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok, err := r.caughtUp()
		if err != nil {
			return err
		}
		if ok {
			done := make(chan struct{})
			go func() { r.inflight.Wait(); close(done) }()
			select {
			case <-done:
				return nil
			case <-time.After(time.Until(deadline)):
				return fmt.Errorf("core: quiesce timeout draining in-flight")
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: quiesce timeout (logs not drained)")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// progressCut samples the runtime's progress markers: per-partition
// offsets, the sequencer position, and the number of executed transactions
// (every execution inserts exactly one result).
func (r *Runtime) progressCut() ([]int64, int64, int) {
	r.offMu.Lock()
	offsets := append([]int64(nil), r.offsets...)
	r.offMu.Unlock()
	r.seqMu.Lock()
	seqOff := r.seqOff
	r.seqMu.Unlock()
	r.resMu.Lock()
	nResults := len(r.results)
	r.resMu.Unlock()
	return offsets, seqOff, nResults
}

func sameProgress(offsA []int64, seqA int64, nResA int, offsB []int64, seqB int64, nResB int) bool {
	if seqA != seqB || nResA != nResB || len(offsA) != len(offsB) {
		return false
	}
	for i := range offsA {
		if offsA[i] != offsB[i] {
			return false
		}
	}
	return true
}

// Checkpoint snapshots state + results + input offsets (per partition,
// plus the sequencer's position and dedup set). The pieces are guarded by
// separate locks, so after quiescing and cloning, progress is re-sampled
// (through a second quiesce, which also drains anything consumed-but-
// unexecuted at clone time): if a concurrent Submit advanced any marker
// while the clones were cut, the pieces could disagree — offsets past a
// transaction whose write is missing from state would silently lose it on
// recovery — and the capture retries until it gets a stable cut. Returns
// the total number of log entries consumed across partitions.
func (r *Runtime) Checkpoint() (int64, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := r.Quiesce(time.Until(deadline)); err != nil {
			return 0, err
		}
		offsA, seqA, nResA := r.progressCut()
		r.stateMu.Lock()
		state := cloneState(r.state)
		r.stateMu.Unlock()
		r.resMu.Lock()
		results := cloneResults(r.results)
		r.resMu.Unlock()
		r.seqMu.Lock()
		seqSeen := cloneSet(r.seqSeen)
		r.seqMu.Unlock()
		if err := r.Quiesce(time.Until(deadline)); err != nil {
			return 0, err
		}
		offsB, seqB, nResB := r.progressCut()
		if sameProgress(offsA, seqA, nResA, offsB, seqB, nResB) && nResA == len(results) {
			r.ckMu.Lock()
			r.checkpoint = &snapshot{offsets: offsA, seqOff: seqA, seqSeen: seqSeen, state: state, results: results}
			r.ckMu.Unlock()
			r.m.Counter("core.checkpoints").Inc()
			var total int64
			for _, off := range offsA {
				total += off
			}
			return total, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("core: checkpoint could not cut a stable snapshot")
		}
	}
}

// Crash kills the runtime, losing all in-memory state. Only the input logs
// (broker) and the checkpoint survive.
func (r *Runtime) Crash() {
	r.runMu.Lock()
	if !r.running {
		r.runMu.Unlock()
		return
	}
	r.running = false
	close(r.stop)
	r.runMu.Unlock()
	r.wg.Wait()
	r.inflight.Wait()
	r.stateMu.Lock()
	r.state = make(map[string][]byte)
	r.stateMu.Unlock()
	r.resMu.Lock()
	r.results = make(map[string]Result)
	// waiters survive the crash: they are client-side handles for requests
	// already durably in the log. Recovery re-delivers them (Start) or
	// replay re-executes and delivers normally — exactly once either way.
	r.scheduled = make(map[string]struct{})
	r.resMu.Unlock()
	r.schedMu.Lock()
	r.tails = make(map[string]chan struct{})
	r.schedMu.Unlock()
	r.crossMu.Lock()
	r.cross = make(map[string]*crossTxn)
	r.crossMu.Unlock()
	r.m.Counter("core.crashes").Inc()
}

// Recover restarts from the checkpoint and replays the log suffixes.
// Determinism guarantees the replay reproduces the pre-crash state.
func (r *Runtime) Recover() error { return r.Start() }

// Stop halts gracefully. In-memory state is discarded, like Crash — resume
// is always from the checkpoint plus log replay, which keeps the recovery
// path singular and well-tested. In LogDir mode Stop also syncs and closes
// the durable logs (Crash deliberately does not: the disk "survives" a
// crash, and in-process recovery reuses the open handles); a later Start
// reopens and re-replays them, with idempotent produce deduplicating
// against a surviving broker.
func (r *Runtime) Stop() {
	r.Crash()
	r.runMu.Lock()
	if r.dlog != nil {
		r.dlog.close()
		r.dlog = nil
	}
	r.runMu.Unlock()
}

func cloneState(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

func cloneResults(m map[string]Result) map[string]Result {
	out := make(map[string]Result, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneSet(m map[string]struct{}) map[string]struct{} {
	out := make(map[string]struct{}, len(m))
	for k := range m {
		out[k] = struct{}{}
	}
	return out
}
