// Package core implements the paper's forward-looking contribution: the
// transactional cloud-application runtime §5 calls for — "a programming
// model and system with transparent parallelization, scalability, and
// consistency". It is a deterministic transactional stateful-functions
// engine in the style of Styx [52] and the transactional-dataflow line of
// work the authors survey (§4.2, refs [21, 22, 51]):
//
//   - Every transaction is appended to a durable input log; its log offset
//     is its global transaction id. The log IS the sequencer.
//   - Execution is deterministic: transactions apply in log order, with
//     non-conflicting transactions (disjoint key sets) running in
//     parallel. The schedule is conflict-equivalent to the serial order of
//     the log, so the system is serializable *without* locks held across
//     messages and *without* 2PC — the cost the Orleans-style coordinator
//     pays (experiments E1/E14 quantify the difference).
//   - Exactly-once: state snapshots are taken together with the input
//     offset; recovery reloads the snapshot and replays the log suffix.
//     Determinism makes the replay bit-for-bit identical, and a result
//     cache keyed by client request id makes Submit idempotent.
//
// Transactions declare their key set up front (Calvin-style reconnaissance;
// Styx discovers it dynamically — the declared-keys simplification keeps the
// scheduler compact while preserving the performance shape: no coordination
// round trips, conflict-driven parallelism).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/mq"
)

// Common runtime errors.
var (
	ErrNoFunction = errors.New("core: no registered function")
	ErrUndeclared = errors.New("core: access to undeclared key")
	ErrAborted    = errors.New("core: transaction aborted")
	ErrNotRunning = errors.New("core: runtime not running")
	ErrTimeout    = errors.New("core: result wait timeout")
)

// Tx is the transactional context passed to functions. All state access is
// restricted to the transaction's declared keys; writes buffer and apply
// atomically at commit.
type Tx struct {
	rt     *Runtime
	tid    int64
	keys   map[string]struct{}
	writes map[string][]byte
	dels   map[string]struct{}
}

// TID returns the transaction's global id (its input-log offset).
func (t *Tx) TID() int64 { return t.tid }

// Get reads a declared key.
func (t *Tx) Get(key string) ([]byte, bool, error) {
	if _, ok := t.keys[key]; !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUndeclared, key)
	}
	if _, deleted := t.dels[key]; deleted {
		return nil, false, nil
	}
	if v, ok := t.writes[key]; ok {
		return v, true, nil
	}
	t.rt.stateMu.Lock()
	v, ok := t.rt.state[key]
	t.rt.stateMu.Unlock()
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Put buffers a write to a declared key.
func (t *Tx) Put(key string, value []byte) error {
	if _, ok := t.keys[key]; !ok {
		return fmt.Errorf("%w: %s", ErrUndeclared, key)
	}
	delete(t.dels, key)
	t.writes[key] = append([]byte(nil), value...)
	return nil
}

// Del buffers a delete of a declared key.
func (t *Tx) Del(key string) error {
	if _, ok := t.keys[key]; !ok {
		return fmt.Errorf("%w: %s", ErrUndeclared, key)
	}
	delete(t.writes, key)
	t.dels[key] = struct{}{}
	return nil
}

// TxnFunc is a transactional function: it reads and writes its declared
// keys through tx and returns a result for the client. Returning an error
// aborts the transaction (no writes apply) — the error is the result.
// Functions must be deterministic: same state + args => same outcome.
type TxnFunc func(tx *Tx, args []byte) ([]byte, error)

// Config tunes the runtime.
type Config struct {
	// Name prefixes the runtime's topics.
	Name string
	// Workers bounds concurrently executing transactions. Zero means 8.
	Workers int
	// ResultTimeout bounds Submit waits. Zero means 10s.
	ResultTimeout time.Duration
	// Cluster, when set, charges Submit's sequencer and reply hops to the
	// caller's trace for latency comparisons.
	Cluster *fabric.Cluster
}

// Result is a transaction outcome.
type Result struct {
	Value []byte
	Err   string // "" = committed
	TID   int64
}

// request is the input-log wire format.
type request struct {
	ReqID string   `json:"r"`
	Fn    string   `json:"f"`
	Keys  []string `json:"k"`
	Args  []byte   `json:"a"`
}

// Runtime is the deterministic transactional engine.
type Runtime struct {
	cfg    Config
	broker *mq.Broker
	m      *metrics.Registry

	fnMu sync.RWMutex
	fns  map[string]TxnFunc

	stateMu sync.Mutex
	state   map[string][]byte

	// scheduler: per-key tail of the dependency chain.
	schedMu sync.Mutex
	tails   map[string]chan struct{}
	sem     chan struct{}

	// results: cache (exactly-once client semantics) + waiters. scheduled
	// guards against double execution when the same request id appears
	// twice in the log (concurrent client retries).
	resMu     sync.Mutex
	results   map[string]Result
	waiters   map[string][]chan Result
	scheduled map[string]struct{}

	// checkpoint survives Crash, like the dataflow checkpoint store
	// (models durable snapshot storage).
	ckMu       sync.Mutex
	checkpoint *snapshot

	runMu    sync.Mutex
	running  bool
	stop     chan struct{}
	wake     chan struct{} // poked by Submit so the executor needn't poll
	wg       sync.WaitGroup
	inflight sync.WaitGroup

	offMu  sync.Mutex
	offset int64
}

type snapshot struct {
	offset  int64
	state   map[string][]byte
	results map[string]Result
}

// NewRuntime creates a runtime over the broker. The input log is the topic
// "<name>-txlog" with a single partition: the log is the sequencer, and a
// single total order is what makes execution deterministic.
func NewRuntime(broker *mq.Broker, cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.ResultTimeout <= 0 {
		cfg.ResultTimeout = 10 * time.Second
	}
	broker.CreateTopic(cfg.Name+"-txlog", 1)
	return &Runtime{
		cfg:     cfg,
		broker:  broker,
		m:       metrics.NewRegistry(),
		fns:     make(map[string]TxnFunc),
		state:   make(map[string][]byte),
		tails:   make(map[string]chan struct{}),
		sem:     make(chan struct{}, cfg.Workers),
		results:   make(map[string]Result),
		waiters:   make(map[string][]chan Result),
		scheduled: make(map[string]struct{}),
		wake:      make(chan struct{}, 1),
	}
}

// Metrics returns the runtime's instruments.
func (r *Runtime) Metrics() *metrics.Registry { return r.m }

// Register binds a function name to its body.
func (r *Runtime) Register(name string, fn TxnFunc) {
	r.fnMu.Lock()
	defer r.fnMu.Unlock()
	r.fns[name] = fn
}

func (r *Runtime) logTopic() mq.TopicPartition {
	return mq.TopicPartition{Topic: r.cfg.Name + "-txlog", Partition: 0}
}

// Start launches the executor from the latest checkpoint.
func (r *Runtime) Start() error {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.running {
		return nil
	}
	r.ckMu.Lock()
	if ck := r.checkpoint; ck != nil {
		r.stateMu.Lock()
		r.state = cloneState(ck.state)
		r.stateMu.Unlock()
		r.resMu.Lock()
		r.results = cloneResults(ck.results)
		r.resMu.Unlock()
		r.setOffset(ck.offset)
	} else {
		r.setOffset(0)
	}
	r.ckMu.Unlock()
	r.stop = make(chan struct{})
	r.running = true
	r.wg.Add(1)
	go r.runExecutor(r.stop)
	return nil
}

func (r *Runtime) setOffset(v int64) {
	r.offMu.Lock()
	r.offset = v
	r.offMu.Unlock()
}

func (r *Runtime) getOffset() int64 {
	r.offMu.Lock()
	defer r.offMu.Unlock()
	return r.offset
}

// runExecutor consumes the input log in order and schedules transactions.
func (r *Runtime) runExecutor(stop chan struct{}) {
	defer r.wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		msgs, err := r.broker.Fetch(r.logTopic(), r.getOffset(), 128)
		if err != nil || len(msgs) == 0 {
			select {
			case <-stop:
				return
			case <-r.wake:
			case <-time.After(time.Millisecond):
			}
			continue
		}
		for _, m := range msgs {
			r.schedule(m.Offset, m.Value, stop)
		}
		r.setOffset(msgs[len(msgs)-1].Offset + 1)
	}
}

// schedule wires the transaction into the per-key dependency chains and
// launches it. Scheduling happens in log order, so chain order == log
// order; execution may interleave but only between non-conflicting
// transactions — conflict-equivalent to the serial log order.
func (r *Runtime) schedule(tid int64, raw []byte, stop chan struct{}) {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		r.m.Counter("core.poison").Inc()
		return
	}
	// Deduplicate: a replayed request whose result is already cached, or a
	// duplicate log entry whose first copy is already scheduled, must not
	// re-execute.
	r.resMu.Lock()
	_, done := r.results[req.ReqID]
	_, inFlight := r.scheduled[req.ReqID]
	if !done && !inFlight {
		r.scheduled[req.ReqID] = struct{}{}
	}
	r.resMu.Unlock()
	if done || inFlight {
		return
	}
	keys := append([]string(nil), req.Keys...)
	sort.Strings(keys)
	myDone := make(chan struct{})
	waits := make([]chan struct{}, 0, len(keys))
	r.schedMu.Lock()
	for _, k := range keys {
		if tail, ok := r.tails[k]; ok {
			waits = append(waits, tail)
		}
		r.tails[k] = myDone
	}
	r.schedMu.Unlock()

	r.inflight.Add(1)
	go func() {
		defer r.inflight.Done()
		defer close(myDone)
		for _, w := range waits {
			select {
			case <-w:
			case <-stop:
				return
			}
		}
		select {
		case r.sem <- struct{}{}:
			defer func() { <-r.sem }()
		case <-stop:
			return
		}
		r.execute(tid, req)
	}()
}

// execute runs one transaction and publishes its result.
func (r *Runtime) execute(tid int64, req request) {
	r.fnMu.RLock()
	fn, ok := r.fns[req.Fn]
	r.fnMu.RUnlock()
	var res Result
	if !ok {
		res = Result{Err: ErrNoFunction.Error() + ": " + req.Fn, TID: tid}
	} else {
		tx := &Tx{
			rt:     r,
			tid:    tid,
			keys:   make(map[string]struct{}, len(req.Keys)),
			writes: make(map[string][]byte),
			dels:   make(map[string]struct{}),
		}
		for _, k := range req.Keys {
			tx.keys[k] = struct{}{}
		}
		value, err := fn(tx, req.Args)
		if err != nil {
			res = Result{Err: err.Error(), TID: tid}
			r.m.Counter("core.aborts").Inc()
		} else {
			// Commit: apply buffered writes atomically.
			r.stateMu.Lock()
			for k, v := range tx.writes {
				r.state[k] = v
			}
			for k := range tx.dels {
				delete(r.state, k)
			}
			r.stateMu.Unlock()
			res = Result{Value: value, TID: tid}
			r.m.Counter("core.commits").Inc()
		}
	}
	r.resMu.Lock()
	r.results[req.ReqID] = res
	delete(r.scheduled, req.ReqID)
	ws := r.waiters[req.ReqID]
	delete(r.waiters, req.ReqID)
	r.resMu.Unlock()
	for _, w := range ws {
		w <- res
	}
}

// Submit appends a transaction to the input log and waits for its result.
// reqID makes the call idempotent: resubmitting (a client retry) returns
// the cached result without re-execution. Two simulated hops (to the
// sequencer and back) are charged to tr — compare with the 2PC hop count.
func (r *Runtime) Submit(reqID, fn string, keys []string, args []byte, tr *fabric.Trace) ([]byte, error) {
	r.runMu.Lock()
	running := r.running
	r.runMu.Unlock()
	if !running {
		return nil, ErrNotRunning
	}
	r.chargeHop(tr) // client -> sequencer
	// Fast path: already executed (client retry).
	r.resMu.Lock()
	if res, ok := r.results[reqID]; ok {
		r.resMu.Unlock()
		r.m.Counter("core.dedup_hits").Inc()
		return resultOut(res)
	}
	ch := make(chan Result, 1)
	r.waiters[reqID] = append(r.waiters[reqID], ch)
	r.resMu.Unlock()

	raw, err := json.Marshal(request{ReqID: reqID, Fn: fn, Keys: keys, Args: args})
	if err != nil {
		return nil, err
	}
	if _, _, err := r.broker.NewProducer("").Send(r.cfg.Name+"-txlog", reqID, raw); err != nil {
		return nil, err
	}
	select {
	case r.wake <- struct{}{}:
	default:
	}
	timer := time.NewTimer(r.cfg.ResultTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		r.chargeHop(tr) // result -> client
		return resultOut(res)
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// chargeHop prices one cross-node message on the fabric, when configured.
func (r *Runtime) chargeHop(tr *fabric.Trace) {
	if r.cfg.Cluster == nil || tr == nil {
		return
	}
	nodes := r.cfg.Cluster.Nodes()
	if len(nodes) == 0 {
		return
	}
	src := nodes[0]
	dst := nodes[len(nodes)-1]
	r.cfg.Cluster.Send(src, dst, tr)
}

func resultOut(res Result) ([]byte, error) {
	if res.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrAborted, res.Err)
	}
	return res.Value, nil
}

// Read returns the committed value of a key outside any transaction (it
// sees the latest committed state; used by tests and the harness).
func (r *Runtime) Read(key string) ([]byte, bool) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	v, ok := r.state[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Quiesce blocks until every transaction in the log so far has executed.
func (r *Runtime) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hw, err := r.broker.HighWater(r.logTopic())
		if err != nil {
			return err
		}
		if r.getOffset() >= hw {
			done := make(chan struct{})
			go func() { r.inflight.Wait(); close(done) }()
			select {
			case <-done:
				return nil
			case <-time.After(time.Until(deadline)):
				return fmt.Errorf("core: quiesce timeout draining in-flight")
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: quiesce timeout (offset %d < %d)", r.getOffset(), hw)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Checkpoint snapshots state + results + input offset. Returns the offset.
func (r *Runtime) Checkpoint() (int64, error) {
	if err := r.Quiesce(10 * time.Second); err != nil {
		return 0, err
	}
	r.stateMu.Lock()
	state := cloneState(r.state)
	r.stateMu.Unlock()
	r.resMu.Lock()
	results := cloneResults(r.results)
	r.resMu.Unlock()
	off := r.getOffset()
	r.ckMu.Lock()
	r.checkpoint = &snapshot{offset: off, state: state, results: results}
	r.ckMu.Unlock()
	r.m.Counter("core.checkpoints").Inc()
	return off, nil
}

// Crash kills the runtime, losing all in-memory state. Only the input log
// (broker) and the checkpoint survive.
func (r *Runtime) Crash() {
	r.runMu.Lock()
	if !r.running {
		r.runMu.Unlock()
		return
	}
	r.running = false
	close(r.stop)
	r.runMu.Unlock()
	r.wg.Wait()
	r.inflight.Wait()
	r.stateMu.Lock()
	r.state = make(map[string][]byte)
	r.stateMu.Unlock()
	r.resMu.Lock()
	r.results = make(map[string]Result)
	r.waiters = make(map[string][]chan Result)
	r.scheduled = make(map[string]struct{})
	r.resMu.Unlock()
	r.schedMu.Lock()
	r.tails = make(map[string]chan struct{})
	r.schedMu.Unlock()
	r.m.Counter("core.crashes").Inc()
}

// Recover restarts from the checkpoint and replays the log suffix.
// Determinism guarantees the replay reproduces the pre-crash state.
func (r *Runtime) Recover() error { return r.Start() }

// Stop halts gracefully. In-memory state is discarded, like Crash — resume
// is always from the checkpoint plus log replay, which keeps the recovery
// path singular and well-tested.
func (r *Runtime) Stop() {
	r.Crash()
}

func cloneState(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

func cloneResults(m map[string]Result) map[string]Result {
	out := make(map[string]Result, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
