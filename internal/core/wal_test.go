package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"tca/internal/mq"
)

// The durable-log suite: the runtime in Config.LogDir mode, where every
// group append persists to a real WAL (with a Merkle root per group) before
// the broker sees it, and Start replays the logs through verification.

func newWALRuntime(t *testing.T, name, dir string, parts int) *Runtime {
	t.Helper()
	r := NewRuntime(mq.NewBroker(), Config{Name: name, Partitions: parts, LogDir: dir})
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func TestDurableLogCommitAndCounters(t *testing.T) {
	dir := t.TempDir()
	r := newWALRuntime(t, "wal-basic", dir, 1)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deposit(t, r, fmt.Sprintf("d%d", i), int64(i%4), 5)
		}(i)
	}
	wg.Wait()
	var total int64
	for acc := int64(0); acc < 4; acc++ {
		total += balance(r, acc)
	}
	if total != 32*5 {
		t.Fatalf("total = %d, want %d", total, 32*5)
	}
	if r.Metrics().Counter("core.wal_records").Value() != 32 {
		t.Fatalf("wal_records = %d, want 32", r.Metrics().Counter("core.wal_records").Value())
	}
	if g := r.Metrics().Counter("core.wal_group_appends").Value(); g < 1 || g > 32 {
		t.Fatalf("wal_group_appends = %d, want within [1,32]", g)
	}
}

// TestDurableLogRestartRebuildsFreshBroker is the real-restart path: the
// broker (in-memory) is lost, only the log directory survives. A new
// runtime over a fresh broker must rebuild the identical state from the
// WAL alone, and replayed requests must stay idempotent.
func TestDurableLogRestartRebuildsFreshBroker(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "wal-restart", LogDir: dir}

	r := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deposit(t, r, fmt.Sprintf("d%d", i), int64(i%3), 10)
		}(i)
	}
	wg.Wait()
	want := []int64{balance(r, 0), balance(r, 1), balance(r, 2)}
	r.Stop()

	r2 := NewRuntime(mq.NewBroker(), cfg) // fresh broker: only disk survives
	registerBank(r2)
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r2.Stop)
	if err := r2.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for acc := int64(0); acc < 3; acc++ {
		if got := balance(r2, acc); got != want[acc] {
			t.Fatalf("acc %d after restart = %d, want %d", acc, got, want[acc])
		}
	}
	if r2.Metrics().Counter("core.wal_replayed_groups").Value() == 0 {
		t.Fatal("restart replayed no groups")
	}
	// A pre-restart request id resubmitted post-restart must hit the result
	// cache the replay rebuilt, not re-apply.
	deposit(t, r2, "d0", 0, 10)
	if got := balance(r2, 0); got != want[0] {
		t.Fatalf("replayed request re-applied: acc 0 = %d, want %d", got, want[0])
	}
	if r2.Metrics().Counter("core.dedup_hits").Value() == 0 {
		t.Fatal("resubmit after restart missed the dedup cache")
	}
}

// TestDurableLogCrossPartitionRestart exercises the sharded layout: per-
// partition logs plus the gseq log, with sequencer markers persisted in the
// partition logs. Balances (and conservation) must survive a full restart.
func TestDurableLogCrossPartitionRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "wal-cross", Partitions: 4, LogDir: dir}

	r := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	const accounts = 8
	for a := int64(0); a < accounts; a++ {
		deposit(t, r, fmt.Sprintf("seed%d", a), a, 100)
	}
	for i := 0; i < 10; i++ {
		from, to := int64(i%accounts), int64((i+3)%accounts)
		if err := transfer(r, fmt.Sprintf("x%d", i), from, to, 7); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]int64, accounts)
	for a := int64(0); a < accounts; a++ {
		want[a] = balance(r, a)
	}
	r.Stop()

	r2 := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r2)
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r2.Stop)
	if err := r2.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var total int64
	for a := int64(0); a < accounts; a++ {
		got := balance(r2, a)
		total += got
		if got != want[a] {
			t.Fatalf("acc %d after restart = %d, want %d", a, got, want[a])
		}
	}
	if total != accounts*100 {
		t.Fatalf("conservation broken after restart: total = %d", total)
	}
}

// TestDurableLogHandlesResolveAcrossCrash is the WAL-mode twin of the
// modeled crash/replay handle test: handles issued before an in-process
// crash resolve exactly once after recovery, because the acked submissions
// are on disk and in the surviving broker.
func TestDurableLogHandlesResolveAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	r := newWALRuntime(t, "wal-handles", dir, 1)
	const n = 25
	handles := make([]*Handle, 0, n)
	for i := 0; i < n; i++ {
		args := append(i64(2), i64(0)...)
		h, err := r.SubmitAsync(fmt.Sprintf("h%d", i), "deposit", []string{"acc/0"}, args, nil)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	r.Crash()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if _, err := h.Result(); err != nil {
			t.Fatalf("handle %d after crash: %v", i, err)
		}
	}
	// Handles may have resolved before the crash; the post-crash replay that
	// rebuilds state is asynchronous either way, so drain it before reading.
	if err := r.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := balance(r, 0); got != n*2 {
		t.Fatalf("balance = %d, want %d", got, n*2)
	}
}

// segFiles returns a log directory's segment files in order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	if len(out) == 0 {
		t.Fatalf("no segments in %s", dir)
	}
	return out
}

// TestDurableLogTornTailDropsOnlyTornBatch truncates the last segment mid-
// record — the torn tail a crash between the buffered write and its
// completion leaves — and restarts over a fresh broker. Replay must stop at
// the tear, flag exactly the torn batch, and come up clean with everything
// before it intact.
func TestDurableLogTornTailDropsOnlyTornBatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "wal-torn", LogDir: dir}
	r := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // sequential: one group per deposit
		deposit(t, r, fmt.Sprintf("d%d", i), 0, 10)
	}
	r.Stop()

	segs := segFiles(t, filepath.Join(dir, "p0"))
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final group's member record: its header record stays
	// whole, so the group parses as started-but-incomplete — torn.
	if err := os.Truncate(last, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	r2 := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r2)
	if err := r2.Start(); err != nil {
		t.Fatalf("restart over torn log: %v", err)
	}
	t.Cleanup(r2.Stop)
	if err := r2.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := balance(r2, 0); got != 50 {
		t.Fatalf("balance after torn tail = %d, want 50 (exactly the torn batch dropped)", got)
	}
	if torn := r2.Metrics().Counter("core.wal_torn_batches").Value(); torn != 1 {
		t.Fatalf("wal_torn_batches = %d, want 1", torn)
	}
	// The rebuild must leave a clean log: live appends after the tear and a
	// further restart both work.
	deposit(t, r2, "d5b", 0, 10)
	r2.Stop()
	r3 := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r3)
	if err := r3.Start(); err != nil {
		t.Fatalf("second restart: %v", err)
	}
	t.Cleanup(r3.Stop)
	if err := r3.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := balance(r3, 0); got != 60 {
		t.Fatalf("balance after rebuild+append+restart = %d, want 60", got)
	}
	if torn := r3.Metrics().Counter("core.wal_torn_batches").Value(); torn != 0 {
		t.Fatalf("rebuilt log still reports %d torn batches", torn)
	}
}

// TestDurableLogTamperDetected rewrites a member payload on disk and fixes
// up its CRC — the tamper a checksum alone cannot see. The group's Merkle
// root still disagrees, and Start must refuse with ErrLogTampered rather
// than replay forged history.
func TestDurableLogTamperDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "wal-tamper", LogDir: dir}
	r := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		deposit(t, r, fmt.Sprintf("d%d", i), 0, 25)
	}
	r.Stop()

	segs := segFiles(t, filepath.Join(dir, "p0"))
	tampered := false
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		castagnoli := crc32.MakeTable(crc32.Castagnoli)
		for off := 0; off+8 <= len(data); {
			n := int(binary.LittleEndian.Uint32(data[off : off+4]))
			if off+8+n > len(data) {
				break
			}
			payload := data[off+8 : off+8+n]
			// Member records carry the function name; headers don't.
			if !tampered && containsBytes(payload, []byte(`"f":"deposit"`)) {
				payload[len(payload)-2] ^= 0x01 // forge one byte…
				binary.LittleEndian.PutUint32(data[off+4:off+8],
					crc32.Checksum(payload, castagnoli)) // …and fix the CRC
				tampered = true
			}
			off += 8 + n
		}
		if tampered {
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if !tampered {
		t.Fatal("found no member record to tamper with")
	}

	r2 := NewRuntime(mq.NewBroker(), cfg)
	registerBank(r2)
	err := r2.Start()
	if !errors.Is(err, ErrLogTampered) {
		t.Fatalf("Start over tampered log = %v, want ErrLogTampered", err)
	}
}

func containsBytes(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestDurableLogMaxGroupAppend pins the configurable group-append cap: the
// serialization stamps scale with it, and groups never exceed it.
func TestDurableLogMaxGroupAppend(t *testing.T) {
	dir := t.TempDir()
	r := NewRuntime(mq.NewBroker(), Config{Name: "wal-cap", LogDir: dir, MaxGroupAppend: 4})
	registerBank(r)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deposit(t, r, fmt.Sprintf("d%d", i), 0, 1)
		}(i)
	}
	wg.Wait()
	if got := balance(r, 0); got != 40 {
		t.Fatalf("balance = %d, want 40", got)
	}
	appends := r.Metrics().Counter("core.wal_group_appends").Value()
	if appends < 10 { // 40 records / cap 4
		t.Fatalf("wal_group_appends = %d, want >= 10 under cap 4", appends)
	}
}

// TestIntervalAckCoversDurability pins the FsyncInterval two-phase ack:
// the submitter's acknowledgment must not return before the covering
// fsync. With a short interval the ack returns and the watermark already
// covers the log; with an interval beyond the test's lifetime the ack
// must still be pending — returning early here is exactly the
// acknowledged-but-lost window the watermark closed.
func TestIntervalAckCoversDurability(t *testing.T) {
	t.Run("short-interval", func(t *testing.T) {
		dir := t.TempDir()
		r := NewRuntime(mq.NewBroker(), Config{
			Name: "wal-ivl-short", LogDir: dir,
			Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond,
		})
		registerBank(r)
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Stop)
		for i := 0; i < 3; i++ {
			deposit(t, r, fmt.Sprintf("d%d", i), 0, 2)
		}
		// The blocking Submit returned, so the interval sync covering its
		// record already ran: the watermark is the whole log.
		l := r.dlog.part[0]
		if got, want := l.DurableIndex(), l.Len(); got != want {
			t.Fatalf("DurableIndex after acked submits = %d, want %d", got, want)
		}
	})
	t.Run("ack-waits-for-sync", func(t *testing.T) {
		dir := t.TempDir()
		r := NewRuntime(mq.NewBroker(), Config{
			Name: "wal-ivl-long", LogDir: dir,
			Fsync: FsyncInterval, FsyncEvery: time.Hour,
		})
		registerBank(r)
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Stop)
		acked := make(chan error, 1)
		go func() {
			args := append(i64(7), i64(0)...)
			_, err := r.SubmitAsync("slow-ack", "deposit", []string{"acc/0"}, args, nil)
			acked <- err
		}()
		select {
		case err := <-acked:
			t.Fatalf("ack returned before the covering fsync (err=%v)", err)
		case <-time.After(100 * time.Millisecond):
			// still pending: the ack is waiting out the interval sync.
		}
		// Crash while the ack is parked — the kill between append and
		// interval sync. The parked submitter must be released with an
		// error instead of hanging on a dead flusher, and because the ack
		// never returned, the client holds no durability claim: whether the
		// record survives is the disk's business alone.
		r.Crash()
		select {
		case err := <-acked:
			if err == nil {
				t.Fatal("parked ack resolved nil across a crash")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked ack never released by the crash")
		}
		// Full restart from disk (Stop syncs and closes the logs, so the
		// written record reaches stable storage; a fresh broker means only
		// the log directory survives). The appended record must apply
		// exactly once — never twice, never torn — and its request id must
		// land in the rebuilt dedup cache.
		r.Stop()
		r2 := NewRuntime(mq.NewBroker(), Config{
			Name: "wal-ivl-long", LogDir: dir,
			Fsync: FsyncInterval, FsyncEvery: time.Hour,
		})
		registerBank(r2)
		if err := r2.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r2.Stop)
		if err := r2.Quiesce(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if got := balance(r2, 0); got != 7 {
			t.Fatalf("balance after restart = %d, want 7 (appended record replays once)", got)
		}
		deposit(t, r2, "slow-ack", 0, 7)
		if got := balance(r2, 0); got != 7 {
			t.Fatalf("replayed request re-applied: balance = %d, want 7", got)
		}
	})
}
