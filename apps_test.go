package tca

import (
	"encoding/json"
	"fmt"
	"testing"

	"tca/internal/workload"
)

// Cross-model and concurrency tests for the apps ISSUE 10 promoted to
// first-class workloads: the reserved marketplace, the trip-booking saga
// (from examples/booking), and the double-entry ledger (from
// examples/streamledger).

// TestReservedMarketCrossModelAudit drives the reserved checkout serially
// under all five cells: every cell must match the serial reference
// exactly — the reserved protocol's writes are pure functions of their
// arguments, so there is no stale-read surface at any isolation level.
func TestReservedMarketCrossModelAudit(t *testing.T) {
	cfg := workload.MarketConfig{
		Users: 8, Products: 6,
		CartFrac: 0.45, CheckoutFrac: 0.20, PriceFrac: 0.10,
		ZipfS: 1.2,
	}
	const ops = 150
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(1, 3)
			cell, err := Deploy(model, MarketAppReserved(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			gen := workload.NewReservedMarket(42, cfg)
			audit := NewMarketReservedAuditor()
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				_, err := cell.Invoke(fmt.Sprintf("r%d", i), marketOpName(op), args, nil)
				if model == StatefulDataflow {
					if err := cell.Settle(); err != nil {
						t.Fatal(err)
					}
					audit.RecordOp(op)
				} else if err == nil {
					audit.RecordOp(op)
				} else if op.Kind != workload.MarketCheckout {
					t.Fatalf("op %d (%s): %v", i, marketOpName(op), err)
				}
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("anomaly: %s", a)
			}
		})
	}
}

// TestReservedMarketEliminatesWriteSkew is the satellite claim itself:
// under the same concurrent harness where the plain marketplace drifts on
// the eventual cell (E21's tolerate-the-drift row), the reserved protocol
// audits clean — zero anomalies, not fewer.
func TestReservedMarketEliminatesWriteSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent audited run")
	}
	res, err := RunConcurrencyCell("market-res", StatefulDataflow, 16, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audited {
		t.Fatal("auditor did not run")
	}
	for _, a := range res.Anomalies {
		t.Errorf("reserved checkout anomaly: %s", a)
	}
	if res.GraphCycles != 0 {
		t.Errorf("GraphCycles = %d, want 0", res.GraphCycles)
	}
	if res.Issued-res.Rejected < 100 {
		t.Fatalf("degenerate run: %d accepted of %d issued", res.Issued-res.Rejected, res.Issued)
	}
}

// TestBookingCrossModelAudit drives the promoted trip-booking app
// serially under all five cells against its auditor.
func TestBookingCrossModelAudit(t *testing.T) {
	const ops = 120
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(1, 3)
			cell, err := Deploy(model, BookingApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			gen := workload.NewBooking(11, 16, 4, 4, 0.2, 0.15)
			audit := NewBookingAuditor()
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				if _, err := cell.Invoke(fmt.Sprintf("b%d", i), bookingOpName(op), args, nil); err != nil {
					t.Fatalf("op %d (%s): %v", i, bookingOpName(op), err)
				}
				audit.RecordOp(op)
				if model == StatefulDataflow {
					if err := cell.Settle(); err != nil {
						t.Fatal(err)
					}
				}
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("anomaly: %s", a)
			}
		})
	}
}

// TestLedgerCrossModelAudit drives the promoted ledger app serially under
// all five cells: conservation must hold and every balance must match the
// reference.
func TestLedgerCrossModelAudit(t *testing.T) {
	const ops = 120
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(1, 3)
			cell, err := Deploy(model, LedgerApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			gen := workload.NewLedger(13, 12, 0.15)
			audit := NewLedgerAuditor()
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				if _, err := cell.Invoke(fmt.Sprintf("l%d", i), ledgerOpName(op), args, nil); err != nil {
					t.Fatalf("op %d (%s): %v", i, ledgerOpName(op), err)
				}
				audit.RecordOp(op)
				if model == StatefulDataflow {
					if err := cell.Settle(); err != nil {
						t.Fatal(err)
					}
				}
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("anomaly: %s", a)
			}
		})
	}
}

// TestStatefunCellCrashRecoverReads pins the stateful-dataflow cell's
// crash/recovery surface end to end through the tca API, the path
// examples/streamledger demos: checkpoint, more writes, crash before the
// next checkpoint, recover, and the replayed state must be exact and
// readable. Regression test for the restarted relay producer being
// sequence-deduplicated against its fenced predecessor (same
// transactional id, fresh sequence space) — the broker must scope
// idempotence by producer epoch or every post-recovery relayed message,
// probes included, is silently dropped.
func TestStatefunCellCrashRecoverReads(t *testing.T) {
	env := NewEnv(1, 3)
	cell, err := Deploy(StatefulDataflow, geoTestApp(), env)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	bump := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			args, _ := json.Marshal(geoTestArgs{K: "cnt/0", V: 1})
			if _, err := cell.Invoke(fmt.Sprintf("w%d", i), "bump", args, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := cell.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	bump(0, 10)
	sf := StatefunRuntime(cell)
	if sf == nil {
		t.Fatal("StatefunRuntime returned nil for a statefun cell")
	}
	if _, err := sf.TriggerCheckpoint(); err != nil {
		t.Fatal(err)
	}
	bump(10, 15) // un-checkpointed tail: must replay from the input log
	sf.Crash()
	if err := sf.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := cell.Settle(); err != nil {
		t.Fatal(err)
	}
	raw, found, err := cell.Read("cnt/0")
	if err != nil {
		t.Fatal(err)
	}
	if !found || DecodeInt(raw) != 15 {
		t.Fatalf("cnt/0 = %d (found=%v), want 15", DecodeInt(raw), found)
	}
}

// TestNewMixesRegistered pins the workload-layer registration: the three
// promoted mixes drive through the concurrent harness on a synchronous
// cell and audit clean (they commute or, for market-res, are pure
// functions of their arguments).
func TestNewMixesRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent audited runs")
	}
	for _, mix := range []string{"booking", "ledger"} {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			res, err := RunConcurrencyCell(mix, Actors, 8, 300)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Audited {
				t.Fatal("auditor did not run")
			}
			for _, a := range res.Anomalies {
				t.Errorf("anomaly: %s", a)
			}
		})
	}
}
