package tca

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"tca/internal/workload"
)

// The injected-violation suite symmetric with
// TestMarketAuditorDetectsWriteSkew: every workload's incremental auditor
// must flag a deliberately corrupted cell, and the precedence-graph order
// verdict must separate reorder noise (suppressed) from genuinely
// non-serializable histories (kept) and real-time-contradicting ones
// (counted as graph cycles).

// refCell clones an auditor's serial reference into a mapCell, the
// starting point every injection corrupts.
func refCell(state mapTxn) *mapCell {
	clone := make(mapTxn, len(state))
	for k, v := range state {
		clone[k] = v
	}
	return &mapCell{state: clone}
}

// TestTPCCAuditorFlagsNegativeStock injects the classic inventory
// violation: a cell whose settled stock went negative must be flagged
// both as a constraint hit and as divergence no serial order explains.
func TestTPCCAuditorFlagsNegativeStock(t *testing.T) {
	audit := NewTPCCAuditor()
	audit.RecordOp(workload.TPCCOp{
		Kind: workload.TPCCNewOrder, Warehouse: 0, District: 1,
		Items: []workload.TPCCItem{{ItemID: 7, Qty: 5}},
	})
	cell := refCell(audit.state)
	key := workload.StockKey(0, 7)
	cell.state[key] = EncodeInt(-3)
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	var constraint bool
	for _, a := range anomalies {
		if strings.Contains(a, "< 0") {
			constraint = true
		}
	}
	if !constraint {
		t.Fatalf("anomalies = %v, want a negative-stock constraint hit", anomalies)
	}
}

// TestTPCCAuditorLiveViolation pins the live path: a sampled negative
// stock value at Observe time surfaces through Violations before any
// final Verify.
func TestTPCCAuditorLiveViolation(t *testing.T) {
	audit := NewTPCCAuditor()
	op := workload.TPCCOp{
		Kind: workload.TPCCNewOrder, Warehouse: 0, District: 1,
		Items: []workload.TPCCItem{{ItemID: 7, Qty: 5}},
	}
	args, _ := json.Marshal(op)
	key := workload.StockKey(0, 7)
	if keys := audit.LiveKeys(tpccOpName(op), args); len(keys) == 0 || keys[0] != key {
		t.Fatalf("LiveKeys = %v, want the stock key %s", keys, key)
	}
	audit.Record("r1", tpccOpName(op), args)
	audit.Observe(Commit{ReqID: "r1", Live: map[string][]byte{key: EncodeInt(-5)}})
	if v := audit.Violations(); len(v) != 1 || !strings.Contains(v[0], "< 0") {
		t.Fatalf("Violations = %v, want one live negative-stock hit", v)
	}
	if s := audit.Stats(); s.LiveViolations != 1 || s.Observed != 1 {
		t.Fatalf("Stats = %+v, want 1 live violation over 1 observed commit", s)
	}
}

// TestSocialAuditorFlagsDroppedDelivery injects a lost fan-out: a
// follower's settled timeline missing the delivered post must be flagged
// (list-exact delivery; commutative state, so no reorder can excuse it).
func TestSocialAuditorFlagsDroppedDelivery(t *testing.T) {
	audit := NewSocialAuditor()
	audit.RecordOp(workload.SocialOp{
		Kind: workload.SocialPost, Author: 0, PostID: 41, Followers: []int{1, 2},
	})
	cell := refCell(audit.state)
	cell.state[workload.TimelineKey(2)] = EncodeIntList(nil)
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) != 1 || !strings.Contains(anomalies[0], workload.TimelineKey(2)) {
		t.Fatalf("anomalies = %v, want exactly the dropped delivery on %s", anomalies, workload.TimelineKey(2))
	}
}

// TestBankAuditorFlagsConservationBreak injects lost money: settled
// balances that do not sum to the deposits must trip the delta-maintained
// conservation invariant.
func TestBankAuditorFlagsConservationBreak(t *testing.T) {
	audit := NewBankAuditor()
	audit.RecordDeposit(0, 100)
	audit.RecordDeposit(1, 100)
	audit.RecordTransfer(0, 1, 30)
	cell := refCell(audit.state)
	cell.state[acctKey(1)] = EncodeInt(120) // reference says 130: 10 units vanished
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	var conservation bool
	for _, a := range anomalies {
		if strings.Contains(a, "conservation") {
			conservation = true
		}
	}
	if !conservation {
		t.Fatalf("anomalies = %v, want a conservation break", anomalies)
	}
	// The intact reference must verify clean.
	if anomalies, err := audit.Verify(refCell(audit.state)); err != nil || len(anomalies) != 0 {
		t.Fatalf("clean cell: anomalies = %v, err = %v", anomalies, err)
	}
}

// observeAt folds one op into the auditor with explicit real-time bounds,
// the way the live harness does.
func observeAt(a Auditor, reqID, op string, args []byte, start, end time.Time) {
	a.Record(reqID, op, args)
	a.Observe(Commit{ReqID: reqID, Op: op, Args: args, Start: start, End: end})
}

// TestOrderVerdictSuppressesConcurrentPuts pins the false-positive fix:
// two racing blind price writes whose handles overlapped in real time may
// serialize either way, so a cell that applied them opposite to
// completion order is NOT anomalous — the old completion-order audit
// reported exactly this as drift.
func TestOrderVerdictSuppressesConcurrentPuts(t *testing.T) {
	audit := NewMarketAuditor()
	base := time.Now()
	a1, _ := json.Marshal(workload.MarketOp{Kind: workload.MarketUpdatePrice, Product: 1, Price: 200})
	a2, _ := json.Marshal(workload.MarketOp{Kind: workload.MarketUpdatePrice, Product: 1, Price: 300})
	// Overlapping intervals: either serialization is legal.
	observeAt(audit, "r1", workload.MarketUpdatePrice.String(), a1, base, base.Add(10*time.Millisecond))
	observeAt(audit, "r2", workload.MarketUpdatePrice.String(), a2, base.Add(time.Millisecond), base.Add(11*time.Millisecond))
	// Completion order says 300; the cell serialized the other way.
	cell := refCell(audit.state)
	cell.state[workload.PriceKey(1)] = EncodeInt(200)
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) != 0 {
		t.Fatalf("anomalies = %v, want none: the reorder is serializable", anomalies)
	}
	if s := audit.Stats(); s.Reordered != 1 || s.GraphCycles != 0 {
		t.Fatalf("Stats = %+v, want exactly one suppressed reordering", s)
	}
}

// TestOrderVerdictKeepsLostUpdate pins the other side: a genuinely
// non-serializable history — two concurrent NewOrders whose stock
// read-modify-writes both read the same snapshot, losing one decrement —
// matches NO serial order and must stay an anomaly.
func TestOrderVerdictKeepsLostUpdate(t *testing.T) {
	audit := NewTPCCAuditor()
	base := time.Now()
	op := workload.TPCCOp{
		Kind: workload.TPCCNewOrder, Warehouse: 0, District: 1,
		Items: []workload.TPCCItem{{ItemID: 7, Qty: 5}},
	}
	args, _ := json.Marshal(op)
	observeAt(audit, "r1", tpccOpName(op), args, base, base.Add(10*time.Millisecond))
	observeAt(audit, "r2", tpccOpName(op), args, base.Add(time.Millisecond), base.Add(11*time.Millisecond))
	// Serial: 100-5 = 95, then 95-5 = 90 — in either order. The cell lost
	// one update: both read 100, one overwrote the other.
	cell := refCell(audit.state)
	cell.state[workload.StockKey(0, 7)] = EncodeInt(95)
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	var drift bool
	for _, a := range anomalies {
		if strings.Contains(a, workload.StockKey(0, 7)) {
			drift = true
		}
	}
	if !drift {
		t.Fatalf("anomalies = %v, want the lost stock update kept", anomalies)
	}
	if s := audit.Stats(); s.Reordered != 0 {
		t.Fatalf("Stats = %+v, want no suppression for a non-serializable history", s)
	}
}

// TestOrderVerdictCountsRealTimeCycle pins the strict-serializability
// case: when only an order contradicting real time explains the settled
// value (the second write demonstrably started after the first finished,
// yet lost), the verdict keeps the anomaly and counts a precedence-graph
// cycle.
func TestOrderVerdictCountsRealTimeCycle(t *testing.T) {
	audit := NewMarketAuditor()
	base := time.Now()
	a1, _ := json.Marshal(workload.MarketOp{Kind: workload.MarketUpdatePrice, Product: 1, Price: 200})
	a2, _ := json.Marshal(workload.MarketOp{Kind: workload.MarketUpdatePrice, Product: 1, Price: 300})
	// Disjoint intervals: the 300 write started after the 200 write's
	// handle resolved, so real time fixes the order.
	observeAt(audit, "r1", workload.MarketUpdatePrice.String(), a1, base, base.Add(time.Millisecond))
	observeAt(audit, "r2", workload.MarketUpdatePrice.String(), a2, base.Add(5*time.Millisecond), base.Add(6*time.Millisecond))
	cell := refCell(audit.state)
	cell.state[workload.PriceKey(1)] = EncodeInt(200) // only the forbidden order explains this
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %v, want the real-time violation kept", anomalies)
	}
	if s := audit.Stats(); s.GraphCycles != 1 || s.Reordered != 0 {
		t.Fatalf("Stats = %+v, want one precedence-graph cycle", s)
	}
}

// TestAuditorWindowBounded pins the memory bound: hammering one key with
// order-sensitive writes must not grow its window past auditWindow — the
// no-full-history-replay guarantee of the live path.
func TestAuditorWindowBounded(t *testing.T) {
	audit := NewMarketAuditor()
	for i := 0; i < 10*auditWindow; i++ {
		audit.RecordOp(workload.MarketOp{Kind: workload.MarketUpdatePrice, Product: 1, Price: int64(100 + i)})
	}
	track := audit.order.keys[workload.PriceKey(1)]
	if track == nil || !track.tracked {
		t.Fatal("price key not tracked")
	}
	if len(track.nodes) > auditWindow {
		t.Fatalf("window holds %d commits, want <= %d", len(track.nodes), auditWindow)
	}
	// The evicted history is still folded into the verdict: the reference
	// itself verifies clean.
	if anomalies, err := audit.Verify(refCell(audit.state)); err != nil || len(anomalies) != 0 {
		t.Fatalf("clean cell: anomalies = %v, err = %v", anomalies, err)
	}
}

// TestConcurrencyCellLiveAudit drives the real harness end to end with
// the auditor inside the loop: the serializable cells must come out
// exact on every mix — the acceptance bar for the precedence-graph
// verdict (no false anomalies on isolated cells).
func TestConcurrencyCellLiveAudit(t *testing.T) {
	for _, mix := range AuditedMixes {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			t.Parallel()
			res, err := RunConcurrencyCellOpts(mix, Deterministic, 8, 120, ConcurrencyOptions{Audit: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Audited {
				t.Fatal("run not audited")
			}
			if len(res.Anomalies) != 0 {
				t.Errorf("deterministic cell: anomalies = %v, want none", res.Anomalies)
			}
			if res.Violations != 0 {
				t.Errorf("deterministic cell: %d live violations, want none", res.Violations)
			}
		})
	}
}
