package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"tca/internal/fabric"
)

// The bank — the running example of the transactional-cloud-apps
// literature — is now just one App on the application layer (app.go): two
// ops over account keys. The Bank interface survives as a thin typed
// wrapper over the Cell it deploys to, so existing callers and tests keep
// their exact semantics.

// Bank is the running example deployed under one taxonomy cell: accounts
// with balances, transfers between them, and a total-balance audit.
//
// Transfer's error contract is per cell: eventual cells (StatefulDataflow)
// acknowledge acceptance, not completion — call Settle before auditing.
type Bank interface {
	// Model returns the cell's programming model.
	Model() ProgrammingModel
	// Guarantee describes the cell's real semantics.
	Guarantee() Guarantee
	// Deposit seeds an account (setup; not part of the measured path).
	Deposit(account int, amount int64) error
	// Transfer moves amount between accounts. reqID identifies the
	// logical request for idempotence where the cell supports it; tr
	// accumulates simulated latency.
	Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error
	// Balance reads one account.
	Balance(account int) (int64, error)
	// Settle waits until all accepted transfers have applied (no-op for
	// synchronous cells).
	Settle() error
	// Close releases resources.
	Close()
}

func acctKey(n int) string { return fmt.Sprintf("acct/%d", n) }

// bankDepositArgs / bankTransferArgs are the bank ops' wire arguments.
type bankDepositArgs struct {
	Account int   `json:"account"`
	Amount  int64 `json:"amount"`
}

type bankTransferArgs struct {
	From   int   `json:"from"`
	To     int   `json:"to"`
	Amount int64 `json:"amount"`
}

// ErrInsufficientFunds rejects overdrafts on cells that read before they
// write (all synchronous cells; the dataflow cell checks against its
// asynchronous snapshot).
var ErrInsufficientFunds = errors.New("insufficient funds")

// BankApp builds the bank as a model-agnostic App: "deposit" and
// "transfer" over acct/N keys. Balances use the EncodeInt value encoding
// and commutative Adds, so even the eventual cells conserve money under
// concurrency.
//
// The overdraft check is part of the body, so it is exactly as strong as
// the cell's isolation: the actor, entity and deterministic cells enforce
// it atomically, while the saga and dataflow cells check against an
// uncoordinated read — concurrent transfers can overdraw one account
// there. That is the missing-isolation anomaly of §4.2, surfaced rather
// than papered over; money stays conserved in every cell regardless.
func BankApp() *App {
	app := NewApp("bank")
	app.Register(Op{
		Name: "deposit",
		Keys: func(args []byte) []string {
			var a bankDepositArgs
			json.Unmarshal(args, &a)
			return []string{acctKey(a.Account)}
		},
		Body: func(tx Txn, args []byte) ([]byte, error) {
			var a bankDepositArgs
			if err := json.Unmarshal(args, &a); err != nil {
				return nil, err
			}
			return nil, tx.Add(acctKey(a.Account), a.Amount)
		},
	})
	app.Register(Op{
		Name: "transfer",
		Keys: func(args []byte) []string {
			var a bankTransferArgs
			json.Unmarshal(args, &a)
			return []string{acctKey(a.From), acctKey(a.To)}
		},
		Body: func(tx Txn, args []byte) ([]byte, error) {
			var a bankTransferArgs
			if err := json.Unmarshal(args, &a); err != nil {
				return nil, err
			}
			raw, _, err := tx.Get(acctKey(a.From))
			if err != nil {
				return nil, err
			}
			if DecodeInt(raw) < a.Amount {
				return nil, ErrInsufficientFunds
			}
			if err := tx.Add(acctKey(a.From), -a.Amount); err != nil {
				return nil, err
			}
			return nil, tx.Add(acctKey(a.To), a.Amount)
		},
	})
	return app
}

// NewBank instantiates the bank under the given model on env with default
// options.
func NewBank(model ProgrammingModel, env *Env) (Bank, error) {
	return NewBankWith(model, env, Options{})
}

// NewBankWith instantiates the bank under the given model on env: it
// deploys BankApp through the application layer and wraps the cell.
func NewBankWith(model ProgrammingModel, env *Env, opts Options) (Bank, error) {
	cell, err := DeployWith(model, BankApp(), env, opts)
	if err != nil {
		return nil, err
	}
	return &bankCell{cell: cell}, nil
}

// bankCell adapts a deployed Cell to the Bank interface.
type bankCell struct {
	cell       Cell
	depositSeq atomic.Int64
}

func (b *bankCell) Model() ProgrammingModel { return b.cell.Model() }
func (b *bankCell) Guarantee() Guarantee    { return b.cell.Guarantee() }

func (b *bankCell) Deposit(account int, amount int64) error {
	args, _ := json.Marshal(bankDepositArgs{Account: account, Amount: amount})
	reqID := fmt.Sprintf("deposit-%d-%d", account, b.depositSeq.Add(1))
	if _, err := b.cell.Invoke(reqID, "deposit", args, nil); err != nil {
		return err
	}
	// Seeding is synchronous even on the eventual cell, so tests and
	// benchmarks can audit right after setup.
	if b.cell.Model() == StatefulDataflow {
		return b.cell.Settle()
	}
	return nil
}

func (b *bankCell) Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error {
	args, _ := json.Marshal(bankTransferArgs{From: from, To: to, Amount: amount})
	_, err := b.cell.Invoke(reqID, "transfer", args, tr)
	return err
}

func (b *bankCell) Balance(account int) (int64, error) {
	raw, _, err := b.cell.Read(acctKey(account))
	return DecodeInt(raw), err
}

// PeekBalance reads a balance without settling — the dirty read an
// external observer performs, which E7 uses to expose the dataflow cell's
// missing isolation. Synchronous cells read committed state.
func (b *bankCell) PeekBalance(account int) int64 {
	if sc, ok := b.cell.(*statefunCell); ok {
		raw, _, _ := sc.Peek(acctKey(account))
		return DecodeInt(raw)
	}
	raw, _, _ := b.cell.Read(acctKey(account))
	return DecodeInt(raw)
}

func (b *bankCell) Settle() error { return b.cell.Settle() }
func (b *bankCell) Close()        { b.cell.Close() }

// BankAuditor audits the bank on the shared engine (audit.go): per-key
// equality with the serial reference (balances are commutative Adds, so
// any divergence is a lost or doubled delta, exact in any order), a live
// overdraft check on sampled balances, and the conservation invariant as
// a delta-maintained prefix sum — the settled balances must sum to
// exactly the deposits, transfer by transfer, with O(delta) maintenance.
type BankAuditor struct {
	*refAuditor
}

// NewBankAuditor creates an empty auditor.
func NewBankAuditor() *BankAuditor {
	cons := NewConstraints().
		Check(NonNegative("overdraft", "acct/", true)).
		SumTotal(SumTotal{
			Name:   "conservation",
			Prefix: "acct/",
			Delta: func(opName string, args []byte) int64 {
				if opName != "deposit" {
					return 0
				}
				var a bankDepositArgs
				json.Unmarshal(args, &a)
				return a.Amount
			},
		})
	return &BankAuditor{newRefAuditor(auditorConfig{app: BankApp(), cons: cons})}
}

// RecordDeposit folds one applied deposit into the reference.
func (a *BankAuditor) RecordDeposit(account int, amount int64) {
	args, _ := json.Marshal(bankDepositArgs{Account: account, Amount: amount})
	a.ObserveSerial("deposit", args)
}

// RecordTransfer folds one applied transfer into the reference.
func (a *BankAuditor) RecordTransfer(from, to int, amount int64) {
	args, _ := json.Marshal(bankTransferArgs{From: from, To: to, Amount: amount})
	a.ObserveSerial("transfer", args)
}
