package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/actor"
	"tca/internal/core"
	"tca/internal/dedup"
	"tca/internal/faas"
	"tca/internal/fabric"
	"tca/internal/micro"
	"tca/internal/rpc"
	"tca/internal/saga"
	"tca/internal/statefun"
	"tca/internal/store"
)

// Bank is the running example deployed under one taxonomy cell: accounts
// with balances, transfers between them, and a total-balance audit.
//
// Transfer's error contract is per cell: eventual cells (StatefulDataflow)
// acknowledge acceptance, not completion — call Settle before auditing.
type Bank interface {
	// Model returns the cell's programming model.
	Model() ProgrammingModel
	// Guarantee describes the cell's real semantics.
	Guarantee() Guarantee
	// Deposit seeds an account (setup; not part of the measured path).
	Deposit(account int, amount int64) error
	// Transfer moves amount between accounts. reqID identifies the
	// logical request for idempotence where the cell supports it; tr
	// accumulates simulated latency.
	Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error
	// Balance reads one account.
	Balance(account int) (int64, error)
	// Settle waits until all accepted transfers have applied (no-op for
	// synchronous cells).
	Settle() error
	// Close releases resources.
	Close()
}

func acctKey(n int) string { return fmt.Sprintf("acct/%d", n) }

// NewBank instantiates the bank under the given model on env with default
// options.
func NewBank(model ProgrammingModel, env *Env) (Bank, error) {
	return NewBankWith(model, env, Options{})
}

// NewBankWith instantiates the bank under the given model on env.
func NewBankWith(model ProgrammingModel, env *Env, opts Options) (Bank, error) {
	switch model {
	case Microservices:
		return newMicroBank(env), nil
	case Actors:
		return newActorBank(env), nil
	case CloudFunctions:
		return newFaasBank(env), nil
	case StatefulDataflow:
		return newStatefunBank(env)
	case Deterministic:
		return newCoreBank(env, opts)
	default:
		return nil, fmt.Errorf("tca: unknown model %v", model)
	}
}

// --- microservices + saga ----------------------------------------------------

// microBank: two account-shard services (even/odd accounts) with
// database-per-service; transfers are sagas (debit, then credit, with a
// refund compensation). Atomic eventually; dirty reads possible mid-saga.
type microBank struct {
	dep        *micro.Deployment
	orch       *saga.Orchestrator
	depositSeq atomic.Int64
}

func shardOf(account int) string {
	if account%2 == 0 {
		return "accounts-even"
	}
	return "accounts-odd"
}

type adjustReq struct {
	Account int   `json:"account"`
	Delta   int64 `json:"delta"`
	// FailIfNegative makes the debit leg reject overdrafts.
	FailIfNegative bool `json:"fail_if_negative"`
}

func newMicroBank(env *Env) *microBank {
	dep := micro.NewDeployment(env.Cluster)
	for _, name := range []string{"accounts-even", "accounts-odd"} {
		// Idempotency middleware is what makes the saga's retries safe on
		// a lossy, duplicating network (§3.2): without it, duplicate
		// deliveries of the non-idempotent "adjust" create money.
		svc := dep.AddService(micro.ServiceConfig{Name: name, Idempotency: dedup.New(0)})
		svc.DB().CreateTable("accounts")
		svc.Handle("adjust", micro.JSONHandler(func(c *micro.Ctx, r adjustReq) (struct{}, error) {
			err := c.DB().Update(func(tx *store.Txn) error {
				row, _, err := tx.Get("accounts", acctKey(r.Account))
				if err != nil {
					return err
				}
				bal := row.Int("balance") + r.Delta
				if r.FailIfNegative && bal < 0 {
					return errors.New("insufficient funds")
				}
				return tx.Put("accounts", acctKey(r.Account), store.Row{"balance": bal})
			})
			return struct{}{}, err
		}))
		svc.Handle("balance", micro.JSONHandler(func(c *micro.Ctx, r adjustReq) (int64, error) {
			var bal int64
			err := c.DB().View(func(tx *store.Txn) error {
				row, _, err := tx.Get("accounts", acctKey(r.Account))
				if err != nil {
					return err
				}
				bal = row.Int("balance")
				return nil
			})
			return bal, err
		}))
	}
	return &microBank{dep: dep, orch: saga.NewOrchestrator(nil)}
}

func (b *microBank) Model() ProgrammingModel { return Microservices }

func (b *microBank) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: false, ExactlyOnce: false,
		Note: "saga over REST: compensations on failure, dirty reads mid-saga"}
}

func (b *microBank) call(svc, op, idemKey string, req adjustReq, tr *fabric.Trace) error {
	var codec micro.Codec
	s, err := b.dep.Service(svc)
	if err != nil {
		return err
	}
	_, err = b.dep.Transport().Call(s.Node(), "svc/"+svc+"/"+op, codec.Marshal(req), tr, rpc.CallOptions{
		Retries:        3,
		RetryBackoff:   time.Millisecond,
		IdempotencyKey: idemKey,
	})
	return err
}

func (b *microBank) Deposit(account int, amount int64) error {
	key := fmt.Sprintf("deposit/%d/%d", account, b.depositSeq.Add(1))
	return b.call(shardOf(account), "adjust", key, adjustReq{Account: account, Delta: amount}, nil)
}

func (b *microBank) Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error {
	def := &saga.Definition{
		Name: "transfer",
		Steps: []saga.Step{
			{
				Name: "debit",
				Action: func(c *saga.Ctx) error {
					return b.call(shardOf(from), "adjust", reqID+"/debit", adjustReq{Account: from, Delta: -amount, FailIfNegative: true}, tr)
				},
				Compensate: func(c *saga.Ctx) error {
					return b.call(shardOf(from), "adjust", reqID+"/refund", adjustReq{Account: from, Delta: amount}, tr)
				},
			},
			{
				Name: "credit",
				Action: func(c *saga.Ctx) error {
					return b.call(shardOf(to), "adjust", reqID+"/credit", adjustReq{Account: to, Delta: amount}, tr)
				},
			},
		},
	}
	return b.orch.Execute(def, reqID, nil)
}

func (b *microBank) Balance(account int) (int64, error) {
	svc, err := b.dep.Service(shardOf(account))
	if err != nil {
		return 0, err
	}
	var bal int64
	err = svc.DB().View(func(tx *store.Txn) error {
		row, _, err := tx.Get("accounts", acctKey(account))
		if err != nil {
			return err
		}
		bal = row.Int("balance")
		return nil
	})
	return bal, err
}

func (b *microBank) Settle() error { return nil }
func (b *microBank) Close()        {}

// --- actors + transactions -----------------------------------------------------

type actorBank struct {
	sys   *actor.System
	coord *actor.Coordinator
}

func newActorBank(env *Env) *actorBank {
	sys := actor.NewSystem(env.Cluster, actor.Config{})
	return &actorBank{sys: sys, coord: actor.NewCoordinator(sys)}
}

func (b *actorBank) Model() ProgrammingModel { return Actors }

func (b *actorBank) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: true, ExactlyOnce: false,
		Note: "Orleans-style 2PL+2PC: serializable but blocking and retry-heavy under contention"}
}

func (b *actorBank) ref(account int) actor.Ref {
	return actor.Ref{Type: "account", ID: fmt.Sprintf("%d", account)}
}

func (b *actorBank) Deposit(account int, amount int64) error {
	cur, _, err := b.coord.ReadState(b.ref(account))
	if err != nil {
		return err
	}
	bal := amount
	if cur != nil {
		bal += cur.Int("balance")
	}
	return b.coord.SeedState(b.ref(account), store.Row{"balance": bal})
}

func (b *actorBank) Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error {
	return b.coord.Run(tr, func(t *actor.ActorTxn) error {
		f, _, err := t.Read(b.ref(from))
		if err != nil {
			return err
		}
		if f.Int("balance") < amount {
			return errors.New("insufficient funds")
		}
		g, _, err := t.Read(b.ref(to))
		if err != nil {
			return err
		}
		if err := t.Write(b.ref(from), store.Row{"balance": f.Int("balance") - amount}); err != nil {
			return err
		}
		return t.Write(b.ref(to), store.Row{"balance": g.Int("balance") + amount})
	})
}

func (b *actorBank) Balance(account int) (int64, error) {
	row, ok, err := b.coord.ReadState(b.ref(account))
	if err != nil || !ok {
		return 0, err
	}
	return row.Int("balance"), nil
}

func (b *actorBank) Settle() error { return nil }
func (b *actorBank) Close()        { b.sys.Stop() }

// --- cloud functions + entities -------------------------------------------------

type faasBank struct {
	p *faas.Platform
}

func newFaasBank(env *Env) *faasBank {
	p := faas.NewPlatform(env.Cluster, faas.DefaultConfig())
	p.Register("transfer", func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var r struct {
			From, To int
			Amount   int64
		}
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil, err
		}
		em := ctx.Entities()
		fromID := faas.EntityID{Type: "account", ID: fmt.Sprintf("%d", r.From)}
		toID := faas.EntityID{Type: "account", ID: fmt.Sprintf("%d", r.To)}
		cs := em.Lock(fromID, toID)
		defer cs.Unlock()
		row, _, err := cs.Get(fromID)
		if err != nil {
			return nil, err
		}
		if row.Int("balance") < r.Amount {
			return nil, errors.New("insufficient funds")
		}
		if err := cs.Update(fromID, func(s store.Row) (store.Row, error) {
			return store.Row{"balance": s.Int("balance") - r.Amount}, nil
		}); err != nil {
			return nil, err
		}
		return nil, cs.Update(toID, func(s store.Row) (store.Row, error) {
			if s == nil {
				s = store.Row{"balance": int64(0)}
			}
			return store.Row{"balance": s.Int("balance") + r.Amount}, nil
		})
	})
	return &faasBank{p: p}
}

func (b *faasBank) Model() ProgrammingModel { return CloudFunctions }

func (b *faasBank) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: true, ExactlyOnce: true,
		Note: "Durable-Functions entities: explicit critical sections, dedup by op id; cold starts on the latency tail"}
}

func (b *faasBank) entity(account int) faas.EntityID {
	return faas.EntityID{Type: "account", ID: fmt.Sprintf("%d", account)}
}

func (b *faasBank) Deposit(account int, amount int64) error {
	return b.p.Entities().Signal(b.entity(account), func(s store.Row) (store.Row, error) {
		if s == nil {
			s = store.Row{"balance": int64(0)}
		}
		return store.Row{"balance": s.Int("balance") + amount}, nil
	})
}

func (b *faasBank) Balance(account int) (int64, error) {
	row, ok, err := b.p.Entities().Read(b.entity(account))
	if err != nil || !ok {
		return 0, err
	}
	return row.Int("balance"), nil
}

func (b *faasBank) Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error {
	payload, _ := json.Marshal(struct {
		From, To int
		Amount   int64
	}{from, to, amount})
	_, err := b.p.InvokeID(reqID, "transfer", fmt.Sprintf("%d", from), payload, tr)
	return err
}

func (b *faasBank) Settle() error { return nil }
func (b *faasBank) Close()        { b.p.Stop() }

// --- stateful dataflow (statefun) ----------------------------------------------

type statefunBank struct {
	app      *statefun.App
	accepted atomic.Int64

	mu     sync.Mutex
	probes map[string]chan int64
}

func newStatefunBank(env *Env) (*statefunBank, error) {
	b := &statefunBank{probes: make(map[string]chan int64)}
	app := statefun.NewApp(env.Broker, statefun.Config{
		Name: "bank", Parallelism: 2, Ingress: "bank-ingress",
		OnEgress: func(key string, value []byte) {
			var bal int64
			if json.Unmarshal(value, &bal) != nil {
				return
			}
			b.mu.Lock()
			ch, ok := b.probes[key]
			if ok {
				delete(b.probes, key)
			}
			b.mu.Unlock()
			if ok {
				select {
				case ch <- bal:
				default:
				}
			}
		},
	})
	app.Register("account", func(ctx *statefun.Ctx, payload []byte) error {
		var delta int64
		if err := json.Unmarshal(payload, &delta); err != nil {
			return err
		}
		var bal int64
		if raw, ok := ctx.Get("balance"); ok {
			json.Unmarshal(raw, &bal)
		}
		bal += delta
		raw, _ := json.Marshal(bal)
		ctx.Set("balance", raw)
		ctx.SendEgress(ctx.Self.ID, raw)
		return nil
	})
	app.Register("transfer", func(ctx *statefun.Ctx, payload []byte) error {
		var r struct {
			From, To int
			Amount   int64
		}
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		debit, _ := json.Marshal(-r.Amount)
		credit, _ := json.Marshal(r.Amount)
		if err := ctx.Send(statefun.Ref{Type: "account", ID: fmt.Sprintf("%d", r.From)}, debit); err != nil {
			return err
		}
		return ctx.Send(statefun.Ref{Type: "account", ID: fmt.Sprintf("%d", r.To)}, credit)
	})
	if err := app.Start(); err != nil {
		return nil, err
	}
	b.app = app
	return b, nil
}

func (b *statefunBank) Model() ProgrammingModel { return StatefulDataflow }

func (b *statefunBank) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: false, ExactlyOnce: true,
		Note: "exactly-once processing; NO isolation across functions (§4.2) — transfers settle eventually"}
}

func (b *statefunBank) Deposit(account int, amount int64) error {
	raw, _ := json.Marshal(amount)
	if err := b.app.SendToIngress(statefun.Ref{Type: "account", ID: fmt.Sprintf("%d", account)}, raw); err != nil {
		return err
	}
	return b.app.WaitIdle(5 * time.Second)
}

func (b *statefunBank) Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error {
	payload, _ := json.Marshal(struct {
		From, To int
		Amount   int64
	}{from, to, amount})
	// Asynchronous: acceptance, not completion.
	tr.Charge(time.Millisecond / 2) // one produce hop
	b.accepted.Add(1)
	return b.app.SendToIngress(statefun.Ref{Type: "transfer", ID: reqID}, payload)
}

// Balance settles, then reads the function's scoped state by sending a
// zero-delta probe and catching the account's egressed balance.
func (b *statefunBank) Balance(account int) (int64, error) {
	if err := b.Settle(); err != nil {
		return 0, err
	}
	id := fmt.Sprintf("%d", account)
	ch := make(chan int64, 1)
	b.mu.Lock()
	b.probes[id] = ch
	b.mu.Unlock()
	zero, _ := json.Marshal(int64(0))
	if err := b.app.SendToIngress(statefun.Ref{Type: "account", ID: id}, zero); err != nil {
		return 0, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-time.After(5 * time.Second):
		return 0, errors.New("tca: balance probe timeout")
	}
}

func (b *statefunBank) Settle() error { return b.app.WaitIdle(10 * time.Second) }
func (b *statefunBank) Close()        { b.app.Stop() }

// --- deterministic core ---------------------------------------------------------

type coreBank struct {
	rt  *core.Runtime
	seq atomic.Int64
}

func newCoreBank(env *Env, opts Options) (*coreBank, error) {
	rt := core.NewRuntime(env.Broker, core.Config{Name: "corebank", Cluster: env.Cluster, Partitions: opts.Partitions})
	rt.Register("transfer", func(tx *core.Tx, args []byte) ([]byte, error) {
		var r struct {
			From, To string
			Amount   int64
		}
		if err := json.Unmarshal(args, &r); err != nil {
			return nil, err
		}
		fb, _, err := tx.Get(r.From)
		if err != nil {
			return nil, err
		}
		var fbal int64
		if fb != nil {
			json.Unmarshal(fb, &fbal)
		}
		if fbal < r.Amount {
			return nil, errors.New("insufficient funds")
		}
		tb, _, err := tx.Get(r.To)
		if err != nil {
			return nil, err
		}
		var tbal int64
		if tb != nil {
			json.Unmarshal(tb, &tbal)
		}
		fraw, _ := json.Marshal(fbal - r.Amount)
		traw, _ := json.Marshal(tbal + r.Amount)
		if err := tx.Put(r.From, fraw); err != nil {
			return nil, err
		}
		return nil, tx.Put(r.To, traw)
	})
	rt.Register("deposit", func(tx *core.Tx, args []byte) ([]byte, error) {
		var r struct {
			Key    string
			Amount int64
		}
		if err := json.Unmarshal(args, &r); err != nil {
			return nil, err
		}
		var bal int64
		if raw, _, _ := tx.Get(r.Key); raw != nil {
			json.Unmarshal(raw, &bal)
		}
		out, _ := json.Marshal(bal + r.Amount)
		return nil, tx.Put(r.Key, out)
	})
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return &coreBank{rt: rt}, nil
}

func (b *coreBank) Model() ProgrammingModel { return Deterministic }

func (b *coreBank) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: true, ExactlyOnce: true,
		Note: "deterministic transactional dataflow (Styx-like): serializable, log-ordered, no 2PC"}
}

func (b *coreBank) Deposit(account int, amount int64) error {
	args, _ := json.Marshal(struct {
		Key    string
		Amount int64
	}{acctKey(account), amount})
	_, err := b.rt.Submit(fmt.Sprintf("deposit-%d-%d", account, b.seq.Add(1)), "deposit", []string{acctKey(account)}, args, nil)
	return err
}

func (b *coreBank) Transfer(reqID string, from, to int, amount int64, tr *fabric.Trace) error {
	args, _ := json.Marshal(struct {
		From, To string
		Amount   int64
	}{acctKey(from), acctKey(to), amount})
	_, err := b.rt.Submit(reqID, "transfer", []string{acctKey(from), acctKey(to)}, args, tr)
	return err
}

func (b *coreBank) Balance(account int) (int64, error) {
	raw, ok := b.rt.Read(acctKey(account))
	if !ok {
		return 0, nil
	}
	var bal int64
	return bal, json.Unmarshal(raw, &bal)
}

func (b *coreBank) Settle() error { return b.rt.Quiesce(10 * time.Second) }
func (b *coreBank) Close()        { b.rt.Stop() }
