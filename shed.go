package tca

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is the admission-control sentinel: a cell refused a
// submission because its bounded pending queue (Options.MaxPending) was
// full. Match it with errors.Is — the concrete error is always a
// *ShedError carrying the rejection's context. A shed submission never
// entered the cell's pipeline: no state was touched, no audit intent
// exists, and resubmitting the same request id later is safe on every
// cell.
var ErrOverloaded = errors.New("tca: cell overloaded")

// ShedError is the typed rejection a saturated cell resolves a Submit
// handle with. It is a load signal, not a failure of the op: the caller
// may retry after RetryAfter (Session does this automatically when
// SessionOptions.RetryBudget allows).
type ShedError struct {
	// Model is the cell that shed the submission.
	Model ProgrammingModel
	// Depth is the pending-queue depth observed at rejection — how much
	// accepted-but-unfinished work was already in flight.
	Depth int
	// RetryAfter is a coarse hint: roughly how long until the cell has
	// drained enough to plausibly accept a retry.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("tca: %v overloaded: %d pending (retry after %v)",
		e.Model, e.Depth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match every shed rejection.
func (e *ShedError) Is(target error) bool { return target == ErrOverloaded }

// shedHandle is the uniform rejection path: an already-resolved Handle
// carrying a *ShedError, returned synchronously from Submit so callers
// can distinguish "shed at the door" from "accepted and in flight"
// without blocking.
func shedHandle(model ProgrammingModel, depth int, retryAfter time.Duration) Handle {
	return resolvedHandle(nil, &ShedError{Model: model, Depth: depth, RetryAfter: retryAfter})
}
