package tca

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Tests for overload-aware admission control: a saturated cell sheds with
// the typed ErrOverloaded sentinel, a shed op leaves state untouched on
// every cell and never reaches the auditor, and Sessions absorb transient
// sheds under their retry budget.

// slowBumpApp is a single-op App whose body holds its executor for d
// before adding one to a single counter key — slow enough that a burst of
// concurrent submissions must pile up behind any bounded queue. The
// counter uses Txn.Add (exactly-once on every cell), so the settled value
// of "n" counts applied ops exactly: state is the witness that shed ops
// never ran.
func slowBumpApp(d time.Duration) *App {
	return NewApp("slow-bump").Register(Op{
		Name: "bump",
		Keys: func([]byte) []string { return []string{"n"} },
		Body: func(tx Txn, _ []byte) ([]byte, error) {
			time.Sleep(d)
			return nil, tx.Add("n", 1)
		},
	})
}

// TestShedConformanceAllCells saturates every cell through a tiny bound
// (one executor, MaxPending 1) with 32 concurrent submissions and pins
// the shedding contract on each: some submissions shed; every shed
// matches errors.Is(err, ErrOverloaded) and carries a *ShedError naming
// the cell with a positive retry hint; Result is idempotent; and the
// settled counter equals the successes exactly — a shed op never touched
// state.
func TestShedConformanceAllCells(t *testing.T) {
	const burst = 32
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			cell, err := DeployWith(model, slowBumpApp(2*time.Millisecond), NewEnv(11, 3),
				Options{Clients: 1, Workers: 1, MaxPending: 1, SequenceDelay: 2 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			var wg sync.WaitGroup
			errs := make([]error, burst)
			handles := make([]Handle, burst)
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					h := cell.Submit(fmt.Sprintf("b%d", i), "bump", nil, nil)
					handles[i] = h
					_, errs[i] = h.Result()
				}(i)
			}
			wg.Wait()
			var ok, shed int
			for i, err := range errs {
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					shed++
					var se *ShedError
					if !errors.As(err, &se) {
						t.Fatalf("shed error is not a *ShedError: %v", err)
					}
					if se.Model != model {
						t.Fatalf("ShedError.Model = %v, want %v", se.Model, model)
					}
					if se.RetryAfter <= 0 {
						t.Fatalf("ShedError.RetryAfter = %v, want > 0", se.RetryAfter)
					}
					// Result must be idempotent: the same outcome again.
					if _, again := handles[i].Result(); !errors.Is(again, ErrOverloaded) {
						t.Fatalf("second Result() = %v, want the same shed", again)
					}
				default:
					t.Fatalf("submission %d failed with a non-shed error: %v", i, err)
				}
			}
			if shed == 0 {
				t.Fatalf("no submissions shed through a bound of 1 (%d succeeded)", ok)
			}
			if ok+shed != burst {
				t.Fatalf("ok %d + shed %d != %d", ok, shed, burst)
			}
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
			raw, _, err := cell.Read("n")
			if err != nil {
				t.Fatal(err)
			}
			if got := DecodeInt(raw); got != int64(ok) {
				t.Fatalf("settled counter = %d, want %d (one per success; shed ops must not touch state)", got, ok)
			}
		})
	}
}

// TestShedNeverReachesAuditor drives the audited overload runner far past
// the worker-pool cells' bound: with the shed ops Discarded before
// observation, the audit must come back exact — a shed submission has no
// intent the reference could miss.
func TestShedNeverReachesAuditor(t *testing.T) {
	for _, model := range []ProgrammingModel{Microservices, Actors, CloudFunctions} {
		t.Run(model.String(), func(t *testing.T) {
			res, err := RunOverloadCell("social", model, 200000, 400,
				OverloadOptions{Shed: true, Audit: true, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Audited {
				t.Fatal("auditor did not run")
			}
			if res.Shed == 0 {
				t.Fatal("offered 400 ops at 200k/s through a bound of ~80 and shed none")
			}
			if len(res.Anomalies) != 0 {
				t.Fatalf("shed ops surfaced as anomalies: %v", res.Anomalies)
			}
			if res.Violations != 0 {
				t.Fatalf("shed ops surfaced as %d live violations", res.Violations)
			}
		})
	}
}

// TestRunOverloadCellValidatesRate pins the open-loop validation at the
// harness layer too.
func TestRunOverloadCellValidatesRate(t *testing.T) {
	if _, err := RunOverloadCell("social", Microservices, 0, 100, OverloadOptions{}); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := RunOverloadCell("social", Microservices, -1, 100, OverloadOptions{}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := RunOverloadCell("social", Microservices, 100, 0, OverloadOptions{}); err == nil {
		t.Fatal("zero ops accepted")
	}
}

// TestSessionRetryBudget pins the client-side half of admission control:
// a session with budget absorbs transient sheds (every op eventually
// applies, the counter is exact) while a budget-less session surfaces
// them to the caller.
func TestSessionRetryBudget(t *testing.T) {
	const ops = 64
	mkCell := func(t *testing.T) Cell {
		cell, err := DeployWith(Microservices, slowBumpApp(300*time.Microsecond), NewEnv(13, 3),
			Options{Clients: 1, MaxPending: 1})
		if err != nil {
			t.Fatal(err)
		}
		return cell
	}
	t.Run("budget-absorbs", func(t *testing.T) {
		cell := mkCell(t)
		defer cell.Close()
		sess := NewSession(cell, "budgeted", SessionOptions{
			MaxInFlight: 32, RetryBudget: 100, Backoff: 100 * time.Microsecond,
		})
		for i := 0; i < ops; i++ {
			sess.Submit("bump", nil, nil)
		}
		sess.Drain()
		if got := sess.Errors(); got != 0 {
			t.Fatalf("budgeted session surfaced %d errors", got)
		}
		if sess.Retries() == 0 {
			t.Fatal("32-deep pipeline through a bound of 2 never retried — the bound is not biting")
		}
		if err := cell.Settle(); err != nil {
			t.Fatal(err)
		}
		raw, _, err := cell.Read("n")
		if err != nil {
			t.Fatal(err)
		}
		if got := DecodeInt(raw); got != ops {
			t.Fatalf("settled counter = %d, want %d (retries must not double-apply)", got, ops)
		}
	})
	t.Run("no-budget-surfaces", func(t *testing.T) {
		cell := mkCell(t)
		defer cell.Close()
		sess := NewSession(cell, "unbudgeted", SessionOptions{MaxInFlight: 32, RetryBudget: -1})
		for i := 0; i < ops; i++ {
			sess.Submit("bump", nil, nil)
		}
		sess.Drain()
		if sess.Errors() == 0 {
			t.Fatal("budget-less session surfaced no sheds through a bound of 2")
		}
		if sess.Retries() != 0 {
			t.Fatalf("budget-less session retried %d times", sess.Retries())
		}
	})
}

// TestSessionJitterSeeded pins the reproducibility bugfix for retry
// backoff: jitter is drawn from a per-session seeded generator (derived
// from the session id, or SessionOptions.Rand), not the global
// math/rand, so repeating a run with the same session ids repeats the
// identical wait sequence — the repeat-twice-identical property the
// grid's seed policy relies on.
func TestSessionJitterSeeded(t *testing.T) {
	draw := func(s *Session) []time.Duration {
		out := make([]time.Duration, 0, 64)
		backoff := 200 * time.Microsecond
		for i := 0; i < 64; i++ {
			out = append(out, s.retryWait(backoff, 0))
			if i%8 == 7 {
				backoff *= 2 // exercise more than one jitter window
			}
		}
		return out
	}
	equal := func(a, b []time.Duration) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	// Repeat-twice-identical: the same session id draws the same sequence.
	a := draw(NewSession(nil, "c7", SessionOptions{}))
	b := draw(NewSession(nil, "c7", SessionOptions{}))
	if !equal(a, b) {
		t.Fatal("two sessions with the same id drew different jitter sequences")
	}
	// Distinct ids draw distinct sequences (their streams must not collide).
	if c := draw(NewSession(nil, "c8", SessionOptions{})); equal(a, c) {
		t.Fatal("sessions c7 and c8 drew identical jitter sequences")
	}
	// An explicit generator overrides the id derivation.
	mk := func() *Session {
		return NewSession(nil, "any", SessionOptions{Rand: rand.New(rand.NewSource(99))})
	}
	if !equal(draw(mk()), draw(mk())) {
		t.Fatal("two sessions sharing seed 99 drew different jitter sequences")
	}
	// The shed hint stays a floor on every draw.
	s := NewSession(nil, "floor", SessionOptions{})
	for i := 0; i < 16; i++ {
		if w := s.retryWait(100*time.Microsecond, time.Millisecond); w < time.Millisecond {
			t.Fatalf("retryWait ignored the retry-after floor: %v", w)
		}
	}
}
