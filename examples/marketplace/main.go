// Marketplace: the Online-Marketplace-style workload (§5.3, ref [38]) —
// carts, checkouts, product queries, price updates — driven against the
// deterministic transactional runtime, with a crash and exactly-once
// recovery mid-run.
package main

import (
	"encoding/json"
	"fmt"
	"time"

	"tca/internal/core"
	"tca/internal/mq"
	"tca/internal/workload"
)

func main() {
	broker := mq.NewBroker()
	rt := core.NewRuntime(broker, core.Config{Name: "market", Workers: 8})

	// One transactional function per operation kind; carts, stock and
	// orders are plain keys — a checkout touches all three atomically and
	// in isolation, which takes a saga plus careful compensations in the
	// microservice version of this app.
	rt.Register("checkout", func(tx *core.Tx, args []byte) ([]byte, error) {
		var op workload.MarketOp
		if err := json.Unmarshal(args, &op); err != nil {
			return nil, err
		}
		cart := fmt.Sprintf("cart/%d", op.User)
		stock := fmt.Sprintf("stock/%d", op.Product)
		order := fmt.Sprintf("orders/%d", op.User)
		items := readInt(tx, cart)
		if items == 0 {
			return nil, fmt.Errorf("empty cart")
		}
		writeInt(tx, stock, readInt(tx, stock)-items)
		writeInt(tx, order, readInt(tx, order)+1)
		writeInt(tx, cart, 0)
		return nil, nil
	})
	rt.Register("add-to-cart", func(tx *core.Tx, args []byte) ([]byte, error) {
		var op workload.MarketOp
		if err := json.Unmarshal(args, &op); err != nil {
			return nil, err
		}
		cart := fmt.Sprintf("cart/%d", op.User)
		writeInt(tx, cart, readInt(tx, cart)+int64(op.Qty))
		return nil, nil
	})
	if err := rt.Start(); err != nil {
		panic(err)
	}

	gen := workload.NewMarket(7, workload.DefaultMarketConfig())
	carts, checkouts := 0, 0
	for i := 0; i < 2000; i++ {
		op := gen.Next()
		args, _ := json.Marshal(op)
		switch op.Kind {
		case workload.MarketAddToCart:
			rt.Submit(fmt.Sprintf("c%d", i), "add-to-cart",
				[]string{fmt.Sprintf("cart/%d", op.User)}, args, nil)
			carts++
		case workload.MarketCheckout:
			keys := []string{
				fmt.Sprintf("cart/%d", op.User),
				fmt.Sprintf("stock/%d", op.Product),
				fmt.Sprintf("orders/%d", op.User),
			}
			if _, err := rt.Submit(fmt.Sprintf("o%d", i), "checkout", keys, args, nil); err == nil {
				checkouts++
			}
		}
		if i == 1000 {
			// Mid-run crash: checkpoint-free recovery replays the whole
			// log deterministically; nothing double-applies.
			rt.Crash()
			if err := rt.Recover(); err != nil {
				panic(err)
			}
			fmt.Println("crashed and recovered at op 1000")
		}
	}
	if err := rt.Quiesce(10 * time.Second); err != nil {
		panic(err)
	}
	fmt.Printf("done: %d cart updates, %d successful checkouts\n", carts, checkouts)
	fmt.Print(rt.Metrics().Report())
}

func readInt(tx *core.Tx, key string) int64 {
	raw, _, _ := tx.Get(key)
	if raw == nil {
		return 0
	}
	var v int64
	json.Unmarshal(raw, &v)
	return v
}

func writeInt(tx *core.Tx, key string, v int64) {
	raw, _ := json.Marshal(v)
	tx.Put(key, raw)
}
