// Booking: the trip-booking workload (flight + hotel + trip ledger, with
// cancellations as first-class compensations) as a tca.BookingApp —
// deployed under two programming models, driven through pipelined
// Sessions, crashed mid-stream on the deterministic cell, and audited
// against the serial reference. This is the promoted form of the old
// hand-rolled saga demo: the same all-or-nothing trip step, but running
// under every cell's own atomicity mechanism instead of one bespoke
// orchestrator, and checked by the shared auditor instead of a manual
// scan.
package main

import (
	"encoding/json"
	"fmt"

	"tca"
	"tca/internal/workload"
)

func main() {
	for _, model := range []tca.ProgrammingModel{tca.Microservices, tca.Deterministic} {
		env := tca.NewEnv(1, 3)
		cell, err := tca.Deploy(model, tca.BookingApp(), env)
		if err != nil {
			panic(err)
		}

		// Two travel agents share the cell, each a pipelined Session with
		// its own seeded stream; OrderKeys buys read-your-writes per agent.
		gens := []*workload.BookingGen{
			workload.NewBooking(1, 32, 6, 6, 0.2, 0.1),
			workload.NewBooking(2, 32, 6, 6, 0.2, 0.1),
		}
		sessions := []*tca.Session{
			tca.NewSession(cell, "agent-a", tca.SessionOptions{MaxInFlight: 8, OrderKeys: true}),
			tca.NewSession(cell, "agent-b", tca.SessionOptions{MaxInFlight: 8, OrderKeys: true}),
		}
		audit := tca.NewBookingAuditor()
		const opsPerAgent = 40
		for i := 0; i < opsPerAgent; i++ {
			for s, sess := range sessions {
				op := gens[s].Next()
				args, _ := json.Marshal(op)
				if _, err := sess.Invoke(op.Kind.String(), args, nil); err != nil {
					panic(err)
				}
				audit.RecordOp(op)
			}
		}

		// On the deterministic cell, crash the runtime mid-demo and replay
		// its durable log — the bookings survive, exactly once.
		if rt := tca.CoreRuntime(cell); rt != nil {
			fmt.Printf("%v: crash! replaying the durable log\n", model)
			rt.Crash()
			if err := rt.Recover(); err != nil {
				panic(err)
			}
		}
		for _, sess := range sessions {
			sess.Drain()
		}
		if err := cell.Settle(); err != nil {
			panic(err)
		}

		anomalies, err := audit.Verify(cell)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: %d ops, %d anomalies (want 0)\n", model, 2*opsPerAgent, len(anomalies))
		for _, a := range anomalies {
			fmt.Println("  anomaly:", a)
		}
		audit.Close()
		cell.Close()
	}
}
