// Booking: a travel-booking saga (flight, hotel, payment) with a crash of
// the orchestrator mid-saga and recovery from the durable saga log —
// §4.2's eventual-consistency coordination pattern, end to end.
package main

import (
	"errors"
	"fmt"

	"tca/internal/saga"
	"tca/internal/store"
)

func main() {
	db := store.NewDB(store.Config{Name: "travel"})
	db.CreateTable("reservations")
	sagaLog := store.NewDB(store.Config{Name: "saga-log"})
	orch := saga.NewOrchestrator(sagaLog)

	reserve := func(c *saga.Ctx, what string) error {
		return db.Update(func(tx *store.Txn) error {
			return tx.Put("reservations", c.SagaID+"/"+what, store.Row{"ok": int64(1)})
		})
	}
	release := func(c *saga.Ctx, what string) error {
		return db.Update(func(tx *store.Txn) error {
			return tx.Delete("reservations", c.SagaID+"/"+what)
		})
	}
	def := &saga.Definition{Name: "trip", Steps: []saga.Step{
		{
			Name:       "flight",
			Action:     func(c *saga.Ctx) error { return reserve(c, "flight") },
			Compensate: func(c *saga.Ctx) error { return release(c, "flight") },
		},
		{
			Name:       "hotel",
			Action:     func(c *saga.Ctx) error { return reserve(c, "hotel") },
			Compensate: func(c *saga.Ctx) error { return release(c, "hotel") },
		},
		{
			Name: "payment",
			Action: func(c *saga.Ctx) error {
				if c.Data["card_declined"] == true {
					return errors.New("card declined")
				}
				return reserve(c, "payment")
			},
		},
	}}

	// A successful trip.
	if err := orch.Execute(def, "trip-ok", nil); err != nil {
		panic(err)
	}
	fmt.Println("trip-ok: booked")

	// A declined card: the saga compensates flight and hotel.
	err := orch.Execute(def, "trip-declined", map[string]any{"card_declined": true})
	fmt.Printf("trip-declined: %v\n", err)

	// An orchestrator crash mid-saga: simulate by restoring the log state a
	// crashed orchestrator would leave behind, then recover.
	fresh := saga.NewOrchestrator(sagaLog) // "restarted" orchestrator process
	fresh.Register(def)
	resumed, err := fresh.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovery pass: %d in-flight sagas resumed\n", resumed)

	// Audit: every trip is all-or-nothing.
	counts := map[string]int{}
	db.View(func(tx *store.Txn) error {
		return tx.Scan("reservations", "", "", func(k string, _ store.Row) bool {
			for i := len(k) - 1; i >= 0; i-- {
				if k[i] == '/' {
					counts[k[:i]]++
					break
				}
			}
			return true
		})
	})
	for id, n := range counts {
		fmt.Printf("%s: %d reservations (3 = complete, 0 = compensated)\n", id, n)
	}
}
