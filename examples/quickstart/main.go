// Quickstart: the same bank application under two programming models —
// the status-quo microservice saga and the deterministic transactional
// runtime the paper's §5 calls for — showing the API and the difference in
// guarantees and coordination cost.
package main

import (
	"fmt"
	"time"

	"tca"
	"tca/internal/fabric"
)

func main() {
	for _, model := range []tca.ProgrammingModel{tca.Microservices, tca.Deterministic} {
		env := tca.NewEnv(42, 3)
		bank, err := tca.NewBank(model, env)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %v ==\n", model)
		fmt.Printf("guarantee: %v\n", bank.Guarantee())

		// Seed two accounts and move money.
		bank.Deposit(0, 100)
		bank.Deposit(1, 100)
		tr := fabric.NewTrace()
		if err := bank.Transfer("demo-1", 0, 1, 30, tr); err != nil {
			panic(err)
		}
		bank.Settle()
		b0, _ := bank.Balance(0)
		b1, _ := bank.Balance(1)
		fmt.Printf("after transfer: acct0=%d acct1=%d (simulated latency %v over %d hops)\n",
			b0, b1, tr.Total().Round(time.Microsecond), tr.Hops())

		// Overdrafts are rejected atomically in both models.
		if err := bank.Transfer("demo-2", 0, 1, 1_000_000, nil); err != nil {
			fmt.Printf("overdraft rejected: %v\n", err)
		}
		bank.Settle()
		b0, _ = bank.Balance(0)
		b1, _ = bank.Balance(1)
		fmt.Printf("after rejected transfer: acct0=%d acct1=%d\n\n", b0, b1)
		bank.Close()
	}
}
