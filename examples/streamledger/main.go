// Streamledger: an exactly-once account ledger on the stateful dataflow
// engine. Deposits stream in from the log; the job keeps per-account
// balances, checkpoints, crashes, and recovers — the final balances are
// exact despite the crash (§4.1 checkpoint/replay fault tolerance).
package main

import (
	"encoding/binary"
	"fmt"
	"time"

	"tca/internal/dataflow"
	"tca/internal/mq"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func toI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func main() {
	broker := mq.NewBroker()
	broker.CreateTopic("deposits", 2)
	broker.CreateTopic("balances", 2)

	job := dataflow.NewJob(broker, dataflow.Config{Name: "ledger"}).
		Source("deposits").
		Stage("account", 2, func(ctx *dataflow.OpCtx, rec dataflow.Record) {
			var bal int64
			if raw, ok := ctx.State().Get(rec.Key); ok {
				bal = toI64(raw)
			}
			bal += toI64(rec.Value)
			ctx.State().Put(rec.Key, i64(bal))
			ctx.Emit(rec.Key, i64(bal))
		}).
		SinkTo("balances") // exactly-once output, committed at checkpoints
	if err := job.Start(); err != nil {
		panic(err)
	}

	p := broker.NewProducer("teller")
	accounts := []string{"alice", "bob", "carol"}
	for i := 0; i < 30; i++ {
		p.Send("deposits", accounts[i%3], i64(10))
	}
	job.WaitIdle(5 * time.Second)
	epoch, err := job.TriggerCheckpoint()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint %d complete; 30 deposits applied\n", epoch)

	// More deposits, then a crash BEFORE the next checkpoint.
	for i := 0; i < 15; i++ {
		p.Send("deposits", accounts[i%3], i64(10))
	}
	job.WaitIdle(5 * time.Second)
	fmt.Println("crash! (15 un-checkpointed deposits will replay)")
	job.Crash()
	if err := job.Recover(); err != nil {
		panic(err)
	}
	job.WaitIdle(5 * time.Second)
	if _, err := job.TriggerCheckpoint(); err != nil {
		panic(err)
	}
	job.Stop()

	// Read the committed balance stream: the last value per account must
	// reflect every deposit exactly once: 15 deposits x 10 per account.
	final := map[string]int64{}
	c, _ := broker.NewConsumer("auditor", mq.AtLeastOnce, "balances")
	for {
		msgs, _ := c.Poll(64)
		if msgs == nil {
			break
		}
		for _, m := range msgs {
			final[m.Key] = toI64(m.Value)
		}
		c.Ack()
	}
	for _, acc := range accounts {
		fmt.Printf("%s: %d (want 150)\n", acc, final[acc])
	}
}
