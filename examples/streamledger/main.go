// Streamledger: the double-entry ledger as a tca.LedgerApp on the
// stateful-dataflow cell — postings stream in through a pipelined
// Session, the engine checkpoints, crashes, and recovers, and the final
// balances conserve exactly despite the crash. This is the promoted form
// of the old hand-rolled dataflow job: the same exactly-once guarantee,
// but expressed as a first-class audited App (conservation is Σ balances
// = 0 by double entry) instead of a bespoke pipeline with a manual
// output scan.
package main

import (
	"encoding/json"
	"fmt"

	"tca"
	"tca/internal/workload"
)

func main() {
	env := tca.NewEnv(1, 3)
	cell, err := tca.Deploy(tca.StatefulDataflow, tca.LedgerApp(), env)
	if err != nil {
		panic(err)
	}
	defer cell.Close()

	gen := workload.NewLedger(1, 8, 0.1)
	sess := tca.NewSession(cell, "teller", tca.SessionOptions{MaxInFlight: 8})
	audit := tca.NewLedgerAuditor()
	defer audit.Close()

	post := func(n int) {
		for i := 0; i < n; i++ {
			op := gen.Next()
			args, _ := json.Marshal(op)
			if _, err := sess.Invoke(op.Kind.String(), args, nil); err != nil {
				panic(err)
			}
			audit.RecordOp(op)
		}
	}

	// First batch, then a checkpoint.
	post(30)
	sess.Drain()
	if err := cell.Settle(); err != nil {
		panic(err)
	}
	sf := tca.StatefunRuntime(cell)
	epoch, err := sf.TriggerCheckpoint()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint %d complete; 30 postings applied\n", epoch)

	// More postings, then a crash BEFORE the next checkpoint: the
	// un-checkpointed tail replays from the durable input log.
	post(15)
	sess.Drain()
	if err := cell.Settle(); err != nil {
		panic(err)
	}
	fmt.Println("crash! (un-checkpointed postings will replay)")
	sf.Crash()
	if err := sf.Recover(); err != nil {
		panic(err)
	}
	if err := cell.Settle(); err != nil {
		panic(err)
	}

	// The audit proves exactly-once: every balance matches the serial
	// reference (no lost or doubled posting), and conservation holds.
	anomalies, err := audit.Verify(cell)
	if err != nil {
		panic(err)
	}
	fmt.Printf("45 postings audited, %d anomalies (want 0)\n", len(anomalies))
	for _, a := range anomalies {
		fmt.Println("  anomaly:", a)
	}
	var total int64
	for a := 0; a < 8; a++ {
		raw, _, err := cell.Read(workload.AcctKey(a))
		if err != nil {
			panic(err)
		}
		bal := tca.DecodeInt(raw)
		total += bal
		fmt.Printf("acct/%d: %+d\n", a, bal)
	}
	fmt.Printf("sum of balances: %d (want 0 — double entry conserves)\n", total)
}
