package tca

import (
	"fmt"
	"time"

	"tca/internal/dedup"
	"tca/internal/fabric"
	"tca/internal/micro"
	"tca/internal/rpc"
	"tca/internal/saga"
	"tca/internal/store"
)

// microShards is the number of key-shard services a micro cell deploys —
// database-per-service, keys hash-routed (the even/odd account split of
// the original bank, generalized).
const microShards = 2

// microCell deploys an App on the status-quo stack: stateless services
// with per-service databases behind REST. The body's Gets are plain RPC
// reads with no coordination (dirty reads between saga steps are the
// cell's honest anomaly), and its writes run as a saga — one idempotent
// step per key, compensated in reverse on failure. Atomic eventually, not
// isolated.
type microCell struct {
	app  *App
	dep  *micro.Deployment
	orch *saga.Orchestrator
	pool *submitPool
}

// kvGetReq/kvApplyReq are the shard services' wire types. Apply either
// adds Delta to the EncodeInt value (commutative, safely retried under
// idempotency keys) or, with Set, replaces/deletes the value outright; it
// returns the previous value so sagas can compensate.
type kvGetReq struct {
	Key string `json:"key"`
}

type kvGetResp struct {
	Val   string `json:"val"`
	Found bool   `json:"found"`
}

type kvApplyReq struct {
	Key   string `json:"key"`
	Delta int64  `json:"delta,omitempty"`
	Set   bool   `json:"set,omitempty"`
	Del   bool   `json:"del,omitempty"`
	Val   string `json:"val,omitempty"`
	// Push merges ID into the bounded id list at Key, keeping the Cap
	// largest (Txn.PushCap). Compensation restores the captured previous
	// value through the Set path, like any replaced value.
	Push bool  `json:"push,omitempty"`
	ID   int64 `json:"id,omitempty"`
	Cap  int   `json:"cap,omitempty"`
}

type kvApplyResp struct {
	Prev      string `json:"prev"`
	PrevFound bool   `json:"prev_found"`
}

func newMicroCell(app *App, env *Env, opts Options) *microCell {
	dep := micro.NewDeployment(env.Cluster)
	for s := 0; s < microShards; s++ {
		// Idempotency middleware makes retries of the non-idempotent
		// "apply" safe on a lossy, duplicating network (§3.2).
		svc := dep.AddService(micro.ServiceConfig{
			Name:        shardService(app, s),
			Idempotency: dedup.New(0),
		})
		svc.DB().CreateTable("state")
		svc.Handle("get", micro.JSONHandler(func(c *micro.Ctx, r kvGetReq) (kvGetResp, error) {
			var resp kvGetResp
			err := c.DB().View(func(tx *store.Txn) error {
				row, ok, err := tx.Get("state", r.Key)
				if err != nil {
					return err
				}
				if ok {
					resp = kvGetResp{Val: row.Str("v"), Found: true}
				}
				return nil
			})
			return resp, err
		}))
		svc.Handle("apply", micro.JSONHandler(func(c *micro.Ctx, r kvApplyReq) (kvApplyResp, error) {
			var resp kvApplyResp
			err := c.DB().Update(func(tx *store.Txn) error {
				row, ok, err := tx.Get("state", r.Key)
				if err != nil {
					return err
				}
				if ok {
					resp = kvApplyResp{Prev: row.Str("v"), PrevFound: true}
				}
				switch {
				case r.Push:
					merged := mergeBounded(DecodeIntList([]byte(resp.Prev)), r.ID, r.Cap)
					return tx.Put("state", r.Key, store.Row{"v": string(EncodeIntList(merged))})
				case r.Set && r.Del:
					return tx.Delete("state", r.Key)
				case r.Set:
					return tx.Put("state", r.Key, store.Row{"v": r.Val})
				default:
					cur := DecodeInt([]byte(resp.Prev))
					return tx.Put("state", r.Key, store.Row{"v": string(EncodeInt(cur + r.Delta))})
				}
			})
			return resp, err
		}))
	}
	return &microCell{app: app, dep: dep, orch: saga.NewOrchestrator(nil), pool: newSubmitPool(Microservices, opts.Clients, opts.MaxPending)}
}

func shardService(app *App, shard int) string {
	return fmt.Sprintf("%s-shard-%d", app.Name(), shard)
}

func (c *microCell) shardOf(key string) string {
	return shardService(c.app, keyShard(key, microShards))
}

func (c *microCell) call(key, op, idemKey string, req, resp any, tr *fabric.Trace) error {
	var codec micro.Codec
	svcName := c.shardOf(key)
	s, err := c.dep.Service(svcName)
	if err != nil {
		return err
	}
	raw, err := c.dep.Transport().Call(s.Node(), "svc/"+svcName+"/"+op, codec.Marshal(req), tr, rpc.CallOptions{
		Retries:        3,
		RetryBackoff:   time.Millisecond,
		IdempotencyKey: idemKey,
	})
	if err != nil {
		return err
	}
	if resp != nil {
		return codec.Unmarshal(raw, resp)
	}
	return nil
}

// microWrite is one buffered write awaiting its saga step.
type microWrite struct {
	key   string
	delta int64 // Add write when !set && !push
	set   bool  // Put write: replace with val
	val   []byte
	push  bool // PushCap write: merge id into the bounded list
	id    int64
	cap   int
	// prev captures the apply response for compensation.
	prev kvApplyResp
}

// microTxn reads through uncoordinated RPC and buffers writes for the
// saga. Gets overlay the op's own buffered writes so bodies read their
// writes.
type microTxn struct {
	cell   *microCell
	tr     *fabric.Trace
	writes []microWrite
}

func (t *microTxn) Get(key string) ([]byte, bool, error) {
	var resp kvGetResp
	if err := t.cell.call(key, "get", "", kvGetReq{Key: key}, &resp, t.tr); err != nil {
		return nil, false, err
	}
	raw, found := []byte(resp.Val), resp.Found
	if !found {
		raw = nil
	}
	// Overlay buffered writes in order so bodies read their own writes.
	for _, w := range t.writes {
		if w.key != key {
			continue
		}
		switch {
		case w.set:
			raw, found = w.val, true
		case w.push:
			raw, found = EncodeIntList(mergeBounded(DecodeIntList(raw), w.id, w.cap)), true
		default:
			raw, found = EncodeInt(DecodeInt(raw)+w.delta), true
		}
	}
	return raw, found, nil
}

func (t *microTxn) Put(key string, value []byte) error {
	t.writes = append(t.writes, microWrite{key: key, set: true, val: value})
	return nil
}

func (t *microTxn) Add(key string, delta int64) error {
	t.writes = append(t.writes, microWrite{key: key, delta: delta})
	return nil
}

func (t *microTxn) PushCap(key string, id int64, cap int) error {
	t.writes = append(t.writes, microWrite{key: key, push: true, id: id, cap: cap})
	return nil
}

func (c *microCell) Model() ProgrammingModel { return Microservices }
func (c *microCell) App() *App               { return c.app }

func (c *microCell) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: false, ExactlyOnce: false,
		Note: "saga over REST: compensations on failure, dirty reads mid-saga"}
}

// Submit runs the saga on the cell's bounded worker pool: the REST stack
// is synchronous per request, so pipelining is client-side concurrency —
// Options.Clients sagas in flight, each with its honest (un-isolated)
// interleavings. The handle resolves when the saga completes or
// compensates.
func (c *microCell) Submit(reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	return c.pool.submit(func() ([]byte, error) {
		return c.invoke(reqID, opName, args, tr)
	})
}

// Invoke is semantically Submit(...).Result() — TestInvokeIsSubmitResult
// pins the equivalence — taking the pool's inline fast path for blocking
// callers.
func (c *microCell) Invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	return c.pool.invoke(func() ([]byte, error) {
		return c.invoke(reqID, opName, args, tr)
	})
}

func (c *microCell) invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	op, ok := c.app.Op(opName)
	if !ok {
		return nil, opError(c.app, opName)
	}
	tx := &microTxn{cell: c, tr: tr}
	result, err := op.Body(op.guard(tx), args)
	if err != nil {
		return nil, err // business failure before any write: clean abort
	}
	if op.ReadOnly || len(tx.writes) == 0 {
		// Queries pay only their uncoordinated RPC reads: no saga is
		// staged, no per-key apply steps, no compensations registered.
		return result, nil
	}
	steps := make([]saga.Step, len(tx.writes))
	for i := range tx.writes {
		i, w := i, &tx.writes[i]
		steps[i] = saga.Step{
			Name: w.key,
			Action: func(*saga.Ctx) error {
				req := kvApplyReq{Key: w.key, Delta: w.delta}
				switch {
				case w.set:
					req = kvApplyReq{Key: w.key, Set: true, Val: string(w.val)}
				case w.push:
					req = kvApplyReq{Key: w.key, Push: true, ID: w.id, Cap: w.cap}
				}
				return c.call(w.key, "apply", fmt.Sprintf("%s/w%d", reqID, i), req, &w.prev, tr)
			},
			Compensate: func(*saga.Ctx) error {
				req := kvApplyReq{Key: w.key, Delta: -w.delta}
				if w.set || w.push {
					// Restore (or remove) the value the step replaced — for
					// a push that also brings back any id the bounded merge
					// evicted, which removing just w.id would lose.
					req = kvApplyReq{Key: w.key, Set: true, Val: w.prev.Prev, Del: !w.prev.PrevFound}
				}
				return c.call(w.key, "apply", fmt.Sprintf("%s/c%d", reqID, i), req, nil, tr)
			},
		}
	}
	if err := c.orch.Execute(&saga.Definition{Name: op.Name, Steps: steps}, reqID, nil); err != nil {
		return nil, err
	}
	return result, nil
}

func (c *microCell) Read(key string) ([]byte, bool, error) {
	s, err := c.dep.Service(c.shardOf(key))
	if err != nil {
		return nil, false, err
	}
	var raw []byte
	var found bool
	err = s.DB().View(func(tx *store.Txn) error {
		row, ok, err := tx.Get("state", key)
		if err != nil {
			return err
		}
		if ok {
			raw, found = []byte(row.Str("v")), true
		}
		return nil
	})
	return raw, found, err
}

func (c *microCell) Settle() error { return nil }
func (c *microCell) Close()        {}
