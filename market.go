package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"tca/internal/workload"
)

// The Online Marketplace benchmark (§5.3, ref [38]) as a first-class App:
// carts, checkouts, product queries, and price updates from one seeded
// workload.MarketGen stream, deployable under all five programming models.
// This retires the hand-rolled per-model marketplace adapters the old E15
// carried — the workload is now ~100 lines of App, like TPC-C.
//
// State encoding (all values EncodeInt int64):
//
//	cart/U     items in user U's cart (adds accumulate, checkout removes)
//	price/P    product P's current price (starts at marketInitialPrice)
//	mstock/P   product P's stock (starts at marketInitialStock on first touch)
//	order/U    user U's lifetime spend ledger (checkout adds items × price)
//
// Cart and order mutations are commutative Adds, so they stay exact even
// on the eventual cells. The checkout is the anomaly surface: it reads the
// cart, the price, and the stock, then writes stock and the order ledger.
// Under a concurrent price update, a cell without isolation can charge a
// price that was never current at any serialization point of the checkout
// — the write-skew between checkouts and price updates that MarketAuditor
// detects as order-ledger drift from the serial reference. query-product
// is declared ReadOnly: every cell answers it without write machinery.

// marketInitialPrice and marketInitialStock are the implicit state of an
// untouched product; marketRestock/marketRestockFloor mirror the TPC-C
// replenishment rule so stock stays non-negative in the serial order.
const (
	marketInitialPrice = 100
	marketInitialStock = 1000
	marketRestock      = 900
	marketRestockFloor = 10
)

// ErrEmptyCart rejects a checkout with nothing in the cart — a business
// failure, aborted before any write on every cell.
var ErrEmptyCart = errors.New("tca: checkout with empty cart")

// marketQueryResult is query-product's wire result.
type marketQueryResult struct {
	Price int64 `json:"price"`
	Stock int64 `json:"stock"`
}

// MarketApp builds the marketplace as a model-agnostic App. Op arguments
// are JSON-encoded workload.MarketOp descriptors, so any seeded
// workload.MarketGen stream drives any cell.
func MarketApp() *App {
	app := NewApp("market")
	keys := func(args []byte) []string {
		var op workload.MarketOp
		json.Unmarshal(args, &op)
		return op.Keys()
	}
	app.Register(Op{Name: workload.MarketAddToCart.String(), Keys: keys, Body: marketAddToCart})
	app.Register(Op{Name: workload.MarketCheckout.String(), Keys: keys, Body: marketCheckout})
	app.Register(Op{Name: workload.MarketQueryProduct.String(), Keys: keys, ReadOnly: true, Body: marketQueryProduct})
	app.Register(Op{Name: workload.MarketUpdatePrice.String(), Keys: keys, Body: marketUpdatePrice})
	return app
}

// marketOpName maps a generated op to its registered op name.
func marketOpName(op workload.MarketOp) string { return op.Kind.String() }

// marketAddToCart drops qty items into the user's cart — a pure
// commutative delta, exact on every cell.
func marketAddToCart(tx Txn, args []byte) ([]byte, error) {
	var op workload.MarketOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	return nil, tx.Add(workload.CartKey(op.User), int64(op.Qty))
}

// marketPrice reads a product's current price, defaulting untouched
// products to the initial price.
func marketPrice(tx Txn, product int) (int64, error) {
	raw, found, err := tx.Get(workload.PriceKey(product))
	if err != nil {
		return 0, err
	}
	if !found {
		return marketInitialPrice, nil
	}
	return DecodeInt(raw), nil
}

// marketCheckout purchases the cart's items at the product's current
// price: an honest read-modify-write across four keys. The price and cart
// reads are exactly as fresh as the cell's isolation — which is the point.
func marketCheckout(tx Txn, args []byte) ([]byte, error) {
	var op workload.MarketOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	raw, _, err := tx.Get(workload.CartKey(op.User))
	if err != nil {
		return nil, err
	}
	items := DecodeInt(raw)
	if items <= 0 {
		return nil, ErrEmptyCart
	}
	price, err := marketPrice(tx, op.Product)
	if err != nil {
		return nil, err
	}
	stockKey := workload.MarketStockKey(op.Product)
	raw, found, err := tx.Get(stockKey)
	if err != nil {
		return nil, err
	}
	stock := int64(marketInitialStock)
	if found {
		stock = DecodeInt(raw)
	}
	for stock-items < marketRestockFloor {
		stock += marketRestock
	}
	stock -= items
	if err := tx.Put(stockKey, EncodeInt(stock)); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.OrderKey(op.User), items*price); err != nil {
		return nil, err
	}
	// Remove exactly what was bought (commutative): a concurrent
	// add-to-cart is preserved rather than clobbered.
	return EncodeInt(items * price), tx.Add(workload.CartKey(op.User), -items)
}

// marketQueryProduct is the read-only op: price and stock from one
// consistent view, no writes — the path every cell answers without its
// write machinery.
func marketQueryProduct(tx Txn, args []byte) ([]byte, error) {
	var op workload.MarketOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	price, err := marketPrice(tx, op.Product)
	if err != nil {
		return nil, err
	}
	raw, found, err := tx.Get(workload.MarketStockKey(op.Product))
	if err != nil {
		return nil, err
	}
	stock := int64(marketInitialStock)
	if found {
		stock = DecodeInt(raw)
	}
	out, _ := json.Marshal(marketQueryResult{Price: price, Stock: stock})
	return out, nil
}

// marketUpdatePrice repositions a product — the blind write that, raced
// against a checkout's price read, produces the write-skew E18 measures.
func marketUpdatePrice(tx Txn, args []byte) ([]byte, error) {
	var op workload.MarketOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	return nil, tx.Put(workload.PriceKey(op.Product), EncodeInt(op.Price))
}

// MarketAuditor audits the accepted marketplace ops incrementally on the
// shared engine (audit.go). Order-ledger divergence that no serializable
// completion order explains means a checkout charged a price or cart that
// was never current at ANY serialization point — the write-skew between
// concurrent checkouts and price updates; divergence elsewhere (stock,
// carts) is a lost or doubled update. A blind price update racing a
// checkout is NOT an anomaly when some legal order explains the ledger —
// the precedence-graph verdict suppresses exactly those, so isolated
// cells must report zero without the verdict leaning on order confluence.
type MarketAuditor struct {
	*refAuditor
}

// NewMarketAuditor creates an empty auditor.
func NewMarketAuditor() *MarketAuditor {
	cons := NewConstraints().Check(NonNegative("negative stock", "mstock/", true))
	return &MarketAuditor{newRefAuditor(auditorConfig{
		app:  MarketApp(),
		cons: cons,
		compare: func(key string, got, want []byte) string {
			g, w := DecodeInt(got), DecodeInt(want)
			if g == w {
				return ""
			}
			if strings.HasPrefix(key, "order/") {
				return fmt.Sprintf("%s: charged %d, serial reference %d (checkout/price write skew)", key, g, w)
			}
			return fmt.Sprintf("%s: %d, serial reference %d", key, g, w)
		},
	})}
}

// RecordOp folds one accepted op into the reference in serial order.
// Queries are no-ops by construction and skipped.
func (a *MarketAuditor) RecordOp(op workload.MarketOp) {
	if op.Kind == workload.MarketQueryProduct {
		return
	}
	args, _ := json.Marshal(op)
	a.ObserveSerial(marketOpName(op), args)
}

// --- reservation variant (ROADMAP 4b) ----------------------------------------

// MarketAppReserved is the reservation-style marketplace: the same op
// names and mix as MarketApp, restructured so no op reads state another
// op writes concurrently. add-to-cart reserves — it escrows the
// client-quoted price under a per-reservation key (written exactly once)
// and decrements stock commutatively; checkout claims its own
// reservations (keys only it ever touches) and moves the escrowed
// amounts to the order ledger. Every write is then a pure function of
// the op's arguments and private keys, so the eventual cells audit to
// exactly zero anomalies — commutativity and unique key ownership buy
// what the drifting MarketApp needs isolation for. The trade: more keys
// and writes per op (the extra-ops cost E21's reserved row measures),
// stock escrowed at cart time (abandoned carts hold it; stock may
// backorder below zero since nothing un-reserves), and the quoted price
// honored even if update-price lands in between — a business policy,
// not an anomaly.
func MarketAppReserved() *App {
	app := NewApp("market-res")
	keys := func(args []byte) []string {
		var op workload.MarketOp
		json.Unmarshal(args, &op)
		return op.ReservedKeys()
	}
	app.Register(Op{Name: workload.MarketAddToCart.String(), Keys: keys, Body: marketReserve})
	app.Register(Op{Name: workload.MarketCheckout.String(), Keys: keys, Body: marketClaim})
	app.Register(Op{Name: workload.MarketQueryProduct.String(), Keys: keys, ReadOnly: true, Body: marketQueryProduct})
	app.Register(Op{Name: workload.MarketUpdatePrice.String(), Keys: keys, Body: marketUpdatePrice})
	return app
}

// marketReserve escrows qty items at the client-quoted price: one Put to
// a virgin per-reservation key plus one commutative stock decrement.
// Re-execution re-puts the same value — idempotent by construction.
func marketReserve(tx Txn, args []byte) ([]byte, error) {
	var op workload.MarketOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	qty := int64(op.Qty)
	if qty < 1 {
		qty = 1
	}
	amount := qty * op.Price
	if err := tx.Put(workload.ReservationKey(op.User, op.ResvID), EncodeInt(amount)); err != nil {
		return nil, err
	}
	return EncodeInt(amount), tx.Add(workload.MarketStockKey(op.Product), -qty)
}

// marketClaim settles the claimed reservations into the order ledger.
// Each claimed key was written by exactly one reserve and is claimed by
// exactly this checkout, so the read can never race another writer; a
// reservation whose write is still in flight reads as absent and simply
// stays open — consistent with ordering this checkout before it.
func marketClaim(tx Txn, args []byte) ([]byte, error) {
	var op workload.MarketOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	var total int64
	for _, id := range op.Claims {
		key := workload.ReservationKey(op.User, id)
		raw, found, err := tx.Get(key)
		if err != nil {
			return nil, err
		}
		amount := DecodeInt(raw)
		if !found || amount <= 0 {
			continue
		}
		if err := tx.Put(key, EncodeInt(0)); err != nil {
			return nil, err
		}
		if err := tx.Add(workload.OrderKey(op.User), amount); err != nil {
			return nil, err
		}
		total += amount
	}
	if total == 0 {
		return nil, ErrEmptyCart
	}
	return EncodeInt(total), nil
}

// NewMarketReservedAuditor audits the reservation variant on the shared
// engine. There is no live stock constraint — escrowed stock may
// legitimately backorder below zero — so the whole verdict is the
// settled-state comparison against the serial reference, which the
// variant must pass with zero anomalies on every cell.
func NewMarketReservedAuditor() *MarketAuditor {
	return &MarketAuditor{newRefAuditor(auditorConfig{
		app: MarketAppReserved(),
		compare: func(key string, got, want []byte) string {
			g, w := DecodeInt(got), DecodeInt(want)
			if g == w {
				return ""
			}
			return fmt.Sprintf("%s: %d, serial reference %d", key, g, w)
		},
	})}
}
