// Package tca (Transactional Cloud Applications) is the public face of this
// repository: an executable rendition of the taxonomy in Figure 1 of
// "Transactional Cloud Applications: Status Quo, Challenges, and
// Opportunities" (SIGMOD-Companion 2025).
//
// The paper organizes the landscape along three axes — programming model,
// messaging, and state management — and three requirements: fault
// tolerance, consistency, and lifecycle. This package lets you run the
// *same application* under every programming model the paper surveys,
// with honest guarantees for each:
//
//	model            messaging      state          op guarantee
//	-----            ---------      -----          ------------
//	Microservices    REST (sync)    external DB    saga: atomic eventually, no isolation
//	Actors           async msgs     external DB    2PC + 2PL: serializable, blocking
//	CloudFunctions   sync invoke    entity store   entity locks: atomic, deadlock-free
//	StatefulDataflow log (async)    embedded       exactly-once, NO isolation
//	Deterministic    log (async)    embedded       serializable + exactly-once (Styx-like)
//
// # The application layer
//
// Applications and deployment cells are separate layers (app.go):
//
//   - An App (NewApp + Register) is a model-agnostic set of named Ops.
//     Each Op declares the key set it touches and a deterministic Body
//     over the uniform Txn surface — Get, Put, and the commutative Add.
//     An Op may declare itself ReadOnly: every cell then answers it
//     without its write machinery (no saga staging, shared locks with no
//     2PC, no buffered-write commit, no write-emit choreography round,
//     no write-schedule slot) and rejects writes from its body.
//   - Deploy(model, app, env) instantiates the App under one taxonomy
//     cell and returns a Cell: Submit starts an op with the cell's honest
//     semantics (a saga, an actor transaction, an entity critical
//     section, a dataflow message choreography, or a deterministic
//     log-ordered transaction), Read audits settled state, and Guarantee
//     reports what the cell really promises.
//
// Four applications ship as App constructors: BankApp (the literature's
// running example; the Bank interface wraps it for compatibility),
// TPCCApp (the TPC-C NewOrder/Payment subset plus the standard's two
// query transactions), MarketApp (the Online Marketplace mix: carts,
// write-skew-prone checkouts, read-only product queries, price updates)
// and SocialApp (DeathStarBench-style compose-post whose declared key set
// is the follower-timeline list). Writing another workload is a
// ~100-line App, not a per-model fork.
//
// # Auditing
//
// Every workload ships a cross-model auditor (TPCCAuditor,
// MarketAuditor, SocialAuditor, BankAuditor) built on one shared layer
// (audit.go): the Auditor interface — Record an accepted intent, Observe
// each applied commit, Violations so far, Verify the settled cell — and
// a ConstraintSet of delta-maintained invariants (per-key predicates
// like stock >= 0, per-key totals like warehouse YTD = Σpayments, prefix
// sums like bank conservation). Observe does O(delta) work per commit
// against an incrementally maintained serial reference, so auditors run
// live inside the concurrency harness with memory bounded by state size
// plus fixed per-key windows, never by history length. Final divergences
// pass through a precedence-graph order verdict: a mismatch is accepted
// (counted as Reordered, not anomalous) when some linear extension of
// the observed real-time precedence order reproduces the cell's settled
// values, so racing non-commutative commits audit exactly instead of
// reporting false drift; values only an order contradicting real time
// explains are counted as GraphCycles and kept as violations. Cells that
// know their own serialization — the deterministic core stamps every
// result with its log position — pass it as Commit.Seq, and the auditor
// re-sequences racing observations through a bounded reorder buffer so
// the reference tracks the cell's true commit order exactly.
//
// # Driving a cell
//
// The invocation surface is asynchronous at its base: Cell.Submit starts
// an op and returns a Handle immediately — acceptance — and the Handle's
// Done/Result report completion. What the two events mean is the
// messaging axis of the taxonomy, per cell: on the synchronous cells
// acceptance is admission to a bounded worker pool (Options.Clients
// executing slots plus an Options.MaxPending queue — accept latency is
// the admission decision) and the handle resolves when the blocking
// protocol ends; the
// deterministic cell acknowledges once the transaction is durably in the
// log (concurrent submissions share group log appends, amortizing the
// modeled append latency) and resolves the handle when the scheduled
// transaction commits; the dataflow cell acknowledges at the ingress and
// resolves when the choreography's result record lands — acknowledged is
// not applied, as two distinct latency numbers per request. Invoke is the
// blocking wrapper, Submit(...).Result() on every cell.
//
// Clients hold a Session (NewSession) per logical user: it assigns the
// session's request ids, caps in-flight submissions (pipelining depth),
// retries shed submissions with jittered exponential backoff
// (SessionOptions.RetryBudget, Backoff), and can order ops on overlapping
// keys (SessionOptions.OrderKeys) for session read-your-writes on the
// eventual cells. The concurrency matrix (E20 in EXPERIMENTS.md) drives
// every cell this way through workload.ClosedLoop; the rest of the bench
// suite (bench_test.go) covers every other experiment.
//
// # Overload
//
// Every cell's accept path is bounded (Options.MaxPending): when the
// accepted-but-unfinished backlog fills the bound, Submit sheds — the
// handle resolves immediately with a *ShedError (errors.Is(err,
// ErrOverloaded) matches, and the error carries the cell, the observed
// queue depth, and a retry-after hint) and the op provably never entered
// the pipeline: no state is touched on any cell and nothing reaches an
// auditor. Where the bound sits is per cell: the synchronous cells bound
// their worker-pool queue, the Deterministic cell bounds each partition
// batcher's un-appended submissions (core.Config.MaxPending, and the
// cross-partition sequence path likewise), and the dataflow cell bounds
// its acknowledged-not-yet-applied ingress records.
//
// Shedding is what separates goodput from throughput past saturation.
// Throughput counts ops the cell finished; goodput counts ops that
// completed successfully per wall-clock second of offered load. A cell
// without admission control accepts everything an open-loop arrival
// process offers, so past capacity its queues — and every request's
// latency — grow without bound: throughput looks flat while tail latency
// collapses. With admission control the cell does bounded work at its
// capacity, answers the rest cheaply with ErrOverloaded, and tail latency
// for accepted work stays bounded — goodput holds near peak at 2–4×
// offered load. E23 (RunOverloadCell, BenchmarkE23_OverloadFrontier,
// tcabench -experiment e23) measures exactly this frontier, with Poisson
// and bursty arrivals from internal/workload.
//
// # Durability
//
// By default the Deterministic cell's log lives in the in-memory broker
// and its append cost is modeled (Options.SequenceDelay). Setting
// Options.LogDir puts a real segmented write-ahead log (internal/wal)
// under it instead: every group of concurrent submissions becomes one
// group append — a header record carrying the group's Merkle root, then
// the member records, written in one buffered write and made durable per
// Options.Fsync (every batch, a ~1ms interval, or the OS page cache)
// before the broker, and so the scheduler, sees the group. Submit
// acknowledges after that append: on the every-batch policy,
// acknowledged means fsynced. Options.MaxGroupAppend caps the group
// size, trading acknowledgment latency against how many transactions
// amortize each fsync — E22 (BenchmarkE22_DurabilityFrontier) maps that
// frontier.
//
// On Start the cell replays the logs from disk before accepting traffic,
// re-verifying each group against its Merkle root: a partial group at
// the tail of the stream is a torn write from a crash mid-append — it is
// counted (core.wal_torn_batches), dropped, and the log is rewritten to
// the last complete group; a root mismatch anywhere else means the bytes
// on disk are not the bytes that were acknowledged, and Start refuses
// with core.ErrLogTampered rather than replaying corrupted history.
// Because groups persist before the broker sees them, the disk order and
// the topic order agree, so replay rebuilds the identical schedule and
// in-flight Handles resolve exactly once across a crash.
//
// # Geo-replication
//
// DeployReplicated(model, app, regions, opts) wraps any cell as a multi-region
// ReplicaGroup: one full replica of the cell per region in a
// region.Topology, with every cross-region message charged through a
// dedicated WAN tier of the latency fabric (GeoOptions.WAN, or the
// topology's own per-pair distances). Two replication modes span the
// paper's consistency axis:
//
//   - AsyncReplication ships committed writes as versioned deltas on a ship
//     interval. Commutative ops — Add, PushCap — merge by replay on the
//     remote replica (PushCap's capped newest-ids list is a bounded CRDT:
//     the merge keeps the global top-cap ids regardless of arrival
//     order), and Put conflicts resolve last-writer-wins on hybrid
//     vector-clock timestamps, with a reconcile round forcing the global
//     winner everywhere on Drain. A drained group therefore converges
//     exactly — byte-equal state on all replicas — while steady-state
//     reads trade freshness for locality.
//   - SequencedReplication routes every write through the home region's global
//     sequencer before group commit, so all regions apply the identical
//     log order (SequencedOrder) and reads are fresh everywhere; the
//     price is that every cross-region commit pays at least one WAN
//     round trip by construction.
//
// Reads pick their side of the trade per query: ReadLocal answers
// from the caller's region at region-local latency (possibly stale under
// AsyncReplication), ReadHome forwards to the home region and pays the
// WAN round trip for freshness. The group's staleness probe
// (ReplicaGroup.Staleness, StalenessStats) bounds what "possibly stale"
// means — maximum replication lag in committed transactions and in
// wall-modeled time (at most one ship interval plus one WAN delay), and
// the widest per-key divergence window — and feeds the Auditor layer via
// ObserveStaleness so audit verdicts carry the staleness context. E24
// (RunGeoCell, BenchmarkE24_GeoFrontier, tcabench -experiment e24)
// sweeps regions x WAN x read mode and measures the frontier: async
// local reads are WAN-blind with bounded nonzero staleness, sequenced
// commits pay the WAN round trip with zero anomalies.
package tca

import (
	"fmt"
	"time"

	"tca/internal/core"
	"tca/internal/fabric"
	"tca/internal/mq"
)

// ProgrammingModel is the first axis of Figure 1.
type ProgrammingModel int

// The programming models of §3.1.
const (
	Microservices ProgrammingModel = iota
	Actors
	CloudFunctions
	StatefulDataflow
	// Deterministic is the §5 "opportunity": the Styx-like deterministic
	// transactional dataflow runtime (internal/core).
	Deterministic
)

func (m ProgrammingModel) String() string {
	switch m {
	case Microservices:
		return "microservices"
	case Actors:
		return "actors"
	case CloudFunctions:
		return "cloud-functions"
	case StatefulDataflow:
		return "stateful-dataflow"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Messaging is the second axis of Figure 1.
type Messaging int

// Messaging styles of §3.2.
const (
	REST Messaging = iota
	Queues
)

func (m Messaging) String() string {
	if m == REST {
		return "rest"
	}
	return "queues"
}

// StatePlacement is the third axis of Figure 1 (embedded vs external).
type StatePlacement int

// State placements of §3.3.
const (
	ExternalState StatePlacement = iota
	EmbeddedState
)

func (s StatePlacement) String() string {
	if s == ExternalState {
		return "external"
	}
	return "embedded"
}

// Env is the shared infrastructure an application deploys onto: the
// simulated cluster and the message broker.
type Env struct {
	Cluster *fabric.Cluster
	Broker  *mq.Broker
}

// NewEnv creates a healthy n-node environment with the given seed.
func NewEnv(seed int64, nodes int) *Env {
	if nodes < 1 {
		nodes = 3
	}
	cfg := fabric.DefaultConfig()
	cfg.Seed = seed
	ids := make([]fabric.NodeID, nodes)
	for i := range ids {
		ids[i] = fabric.NodeID(fmt.Sprintf("node-%d", i))
	}
	return &Env{Cluster: fabric.NewCluster(cfg, ids...), Broker: mq.NewBroker()}
}

// NewChaosEnv is NewEnv with message drop and duplication probabilities —
// the failure modes of §3.2/§4.1.
func NewChaosEnv(seed int64, nodes int, dropProb, dupProb float64) *Env {
	env := NewEnv(seed, nodes)
	cfg := fabric.DefaultConfig()
	cfg.Seed = seed
	cfg.DropProb = dropProb
	cfg.DupProb = dupProb
	ids := make([]fabric.NodeID, nodes)
	for i := range ids {
		ids[i] = fabric.NodeID(fmt.Sprintf("node-%d", i))
	}
	env.Cluster = fabric.NewCluster(cfg, ids...)
	env.Broker = mq.NewBroker().WithChaos(env.Cluster)
	return env
}

// Options tunes optional cell parameters. The zero value is the default
// deployment for every model.
type Options struct {
	// Partitions shards the Deterministic cell's input log (and so its
	// scheduler) across that many partitions; zero or one means a single
	// log. Other models ignore it. E16 sweeps this knob.
	Partitions int
	// Workers bounds the Deterministic cell's concurrently executing
	// transactions (zero = the runtime default). Other models ignore it;
	// the pipelined-parallel benchmarks (E14) raise it.
	Workers int
	// Clients bounds the synchronous cells' (microservices, actors, cloud
	// functions) concurrently executing submissions: Cell.Submit queues
	// past the cap. Zero means 16. The log-based cells pipeline natively
	// and ignore it. E20 sweeps this knob.
	Clients int
	// SequenceDelay models the Deterministic cell's per-record durable
	// log-append latency (core.Config.SequenceDelay — the fsync/replication
	// await group appends amortize across concurrent submissions). Zero
	// disables the model. Other models ignore it, and LogDir supersedes it:
	// a real log's own append+fsync cost replaces the model.
	SequenceDelay time.Duration
	// LogDir, when set, backs the Deterministic cell with a real durable
	// write-ahead log under that directory: group appends persist (one
	// buffered write + fsync per the policy, with a Merkle root over each
	// group's members) before the broker sees them, and startup replays the
	// logs through verification. See the package doc's Durability section.
	// Other models ignore it.
	LogDir string
	// Fsync selects the durable log's sync policy in LogDir mode:
	// FsyncEveryBatch (default), FsyncInterval, or FsyncNone. E22 sweeps
	// this knob against MaxGroupAppend.
	Fsync FsyncPolicy
	// MaxGroupAppend caps how many concurrent submissions the Deterministic
	// cell packs into one group log append (zero = the runtime's default,
	// 128). E22 sweeps it to map batch size against fsync policy.
	MaxGroupAppend int
	// MaxPending is the admission-control knob: how much
	// accepted-but-unfinished work a cell will hold beyond its executing
	// capacity before Submit sheds — the returned Handle resolves
	// immediately with a *ShedError (errors.Is(err, ErrOverloaded)) and
	// the op provably never runs. Zero means each cell's default bound:
	// 4× the worker pool for the synchronous cells, 4× MaxGroupAppend
	// un-appended submissions per partition for the Deterministic cell,
	// and 1024 acknowledged-not-yet-applied ingress records for the
	// dataflow cell. Negative disables admission control entirely — the
	// pre-overload-aware behavior (blocking pools, unbounded queues).
	// E23 sweeps offered load past saturation against this bound.
	MaxPending int
}

// FsyncPolicy selects when the Deterministic cell's durable log forces
// appends to stable storage (Options.LogDir mode).
type FsyncPolicy = core.FsyncPolicy

// The durable log's sync policies: fsync before every group-append
// acknowledgment, fsync on a ~1ms timer, or leave it to the OS page cache.
const (
	FsyncEveryBatch = core.FsyncEveryBatch
	FsyncInterval   = core.FsyncInterval
	FsyncNone       = core.FsyncNone
)

// Guarantee describes what a deployment cell actually promises — the
// honesty layer of the taxonomy.
type Guarantee struct {
	Atomic      bool   // transfers are all-or-nothing (eventually, for sagas)
	Isolated    bool   // concurrent observers cannot see intermediate states
	ExactlyOnce bool   // retries/replays do not double-apply
	Note        string // one-line caveat
}

func (g Guarantee) String() string {
	return fmt.Sprintf("atomic=%v isolated=%v exactly-once=%v (%s)",
		g.Atomic, g.Isolated, g.ExactlyOnce, g.Note)
}
