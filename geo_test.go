package tca

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"tca/internal/fabric"
)

// geoTestApp is a minimal app exercising all three write classes the
// replication layer must merge: commutative Add, bounded commutative
// PushCap, and order-sensitive Put (the LWW surface). The key universe
// is fixed so convergence checks can enumerate it.
type geoTestArgs struct {
	K  string `json:"k"`
	V  int64  `json:"v"`
	ID int64  `json:"id,omitempty"`
}

func geoTestApp() *App {
	app := NewApp("geotest")
	keys := func(args []byte) []string {
		var a geoTestArgs
		json.Unmarshal(args, &a)
		return []string{a.K}
	}
	app.Register(Op{Name: "bump", Keys: keys, Body: func(tx Txn, args []byte) ([]byte, error) {
		var a geoTestArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return nil, tx.Add(a.K, a.V)
	}})
	app.Register(Op{Name: "set", Keys: keys, Body: func(tx Txn, args []byte) ([]byte, error) {
		var a geoTestArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return nil, tx.Put(a.K, EncodeInt(a.V))
	}})
	app.Register(Op{Name: "tag", Keys: keys, Body: func(tx Txn, args []byte) ([]byte, error) {
		var a geoTestArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return nil, tx.PushCap(a.K, a.ID, 8)
	}})
	app.Register(Op{Name: "peek", Keys: keys, ReadOnly: true, Body: func(tx Txn, args []byte) ([]byte, error) {
		var a geoTestArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		raw, _, err := tx.Get(a.K)
		return raw, err
	}})
	return app
}

func geoTestKeys() []string {
	keys := make([]string, 0, 12)
	for i := 0; i < 4; i++ {
		keys = append(keys, fmt.Sprintf("cnt/%d", i), fmt.Sprintf("cfg/%d", i), fmt.Sprintf("log/%d", i))
	}
	return keys
}

// assertReplicasEqual reads every key of the fixed universe from every
// replica and fails on any pairwise divergence from region 0.
func assertReplicasEqual(t *testing.T, g *ReplicaGroup, keys []string) {
	t.Helper()
	for _, key := range keys {
		base, baseFound, err := g.ReadLocal(0, key)
		if err != nil {
			t.Fatalf("read %s at region 0: %v", key, err)
		}
		for r := 1; r < g.Regions(); r++ {
			got, found, err := g.ReadLocal(r, key)
			if err != nil {
				t.Fatalf("read %s at region %d: %v", key, r, err)
			}
			if found != baseFound || !bytes.Equal(got, base) {
				t.Errorf("replicas diverge on %s: region 0 = %q (found=%v), region %d = %q (found=%v)",
					key, base, baseFound, r, got, found)
			}
		}
	}
}

// TestGeoAsyncConvergenceAllCells pins the convergence-on-quiescence
// property across all five programming models: two async regions, both
// accepting a mixed write stream (including conflicting Puts on shared
// keys — the LWW surface), must be byte-identical on every key after
// Drain. Exact, not approximate.
func TestGeoAsyncConvergenceAllCells(t *testing.T) {
	for _, model := range []ProgrammingModel{Microservices, Actors, CloudFunctions, StatefulDataflow, Deterministic} {
		t.Run(model.String(), func(t *testing.T) {
			g, err := DeployReplicated(model, geoTestApp(), 2, GeoOptions{
				Mode: AsyncReplication,
				WAN:  5 * time.Millisecond,
				Seed: 7,
				Cell: Options{SequenceDelay: 80 * time.Microsecond, Workers: 8, Clients: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			const opsPerRegion = 60
			var wg sync.WaitGroup
			for r := 0; r < g.Regions(); r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPerRegion; i++ {
						var name string
						var a geoTestArgs
						switch i % 3 {
						case 0:
							name = "bump"
							a = geoTestArgs{K: fmt.Sprintf("cnt/%d", i%4), V: int64(1 + r)}
						case 1:
							// Conflicting Puts from both regions on the same keys.
							name = "set"
							a = geoTestArgs{K: fmt.Sprintf("cfg/%d", i%4), V: int64(1000*r + i)}
						default:
							name = "tag"
							a = geoTestArgs{K: fmt.Sprintf("log/%d", i%4), ID: int64(100*r + i)}
						}
						args, _ := json.Marshal(a)
						if _, err := g.Invoke(r, fmt.Sprintf("r%d-op%d", r, i), name, args, nil); err != nil {
							t.Errorf("region %d op %d: %v", r, i, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := g.Drain(); err != nil {
				t.Fatal(err)
			}
			assertReplicasEqual(t, g, geoTestKeys())

			// The commutative counters must be exact, not just equal: both
			// regions' deltas applied exactly once everywhere.
			for i := 0; i < 4; i++ {
				raw, _, err := g.ReadLocal(1, fmt.Sprintf("cnt/%d", i))
				if err != nil {
					t.Fatal(err)
				}
				// Each region bumps each of the 4 counter keys 5 times
				// (20 bumps round-robined over 4 keys), region r with
				// delta 1+r: 5×1 + 5×2.
				want := int64(opsPerRegion/3/4) * 3
				if got := DecodeInt(raw); got != want {
					t.Errorf("cnt/%d = %d, want %d (lost or doubled replicated delta)", i, got, want)
				}
			}
		})
	}
}

// TestGeoStalenessBounded pins the staleness bound: replication lag
// never exceeds the configured ship interval (real queue wait, with
// scheduling slop) plus the WAN bound (modeled, exact). The probe must
// also be nonzero — an async group that shipped nothing measured
// nothing.
func TestGeoStalenessBounded(t *testing.T) {
	const wan = 20 * time.Millisecond
	const ship = 2 * time.Millisecond
	g, err := DeployReplicated(Actors, geoTestApp(), 2, GeoOptions{
		Mode:         AsyncReplication,
		WAN:          wan,
		ShipInterval: ship,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 40; i++ {
		args, _ := json.Marshal(geoTestArgs{K: fmt.Sprintf("cnt/%d", i%4), V: 1})
		if _, err := g.Invoke(i%2, fmt.Sprintf("st-%d", i), "bump", args, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}
	st := g.Staleness()
	if st.ShippedBatches == 0 || st.ShippedWrites == 0 {
		t.Fatalf("staleness probe saw no replication traffic: %+v", st)
	}
	if st.MaxLagTxns < 1 {
		t.Fatalf("MaxLagTxns = %d, want >= 1 (writes committed before shipping)", st.MaxLagTxns)
	}
	// Modeled WAN lag is exact: one jittered one-way leg, at most
	// base × (1 + jitter%) with the fabric's default 20% jitter.
	if limit := wan + wan*20/100; st.MaxWANLag > limit {
		t.Fatalf("MaxWANLag = %v exceeds the WAN bound %v", st.MaxWANLag, limit)
	}
	// The real queue wait is bounded by the ship interval plus
	// scheduling; generous slop keeps a loaded CI box honest.
	if limit := ship + 500*time.Millisecond; st.MaxShipWait > limit {
		t.Fatalf("MaxShipWait = %v exceeds ship interval %v + slop", st.MaxShipWait, ship)
	}
	if st.MaxLag < st.MaxWANLag {
		t.Fatalf("MaxLag %v < MaxWANLag %v: lag must include the WAN leg", st.MaxLag, st.MaxWANLag)
	}
	if st.MaxKeyWindow <= 0 {
		t.Fatalf("MaxKeyWindow = %v, want > 0 (keys had outstanding divergence windows)", st.MaxKeyWindow)
	}
}

// TestGeoSequencedIdenticalOrderAcrossCrashReplay pins the sequenced
// core's defining property: every region applies the identical log
// order, and one region's crash/replay neither loses a committed op nor
// reorders it — after recovery the replica continues from the same
// order and converges to the same state.
func TestGeoSequencedIdenticalOrderAcrossCrashReplay(t *testing.T) {
	g, err := DeployReplicated(Deterministic, geoTestApp(), 3, GeoOptions{
		Mode: SequencedReplication,
		WAN:  10 * time.Millisecond,
		Seed: 5,
		Cell: Options{SequenceDelay: 80 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	submit := func(phase string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			var name string
			a := geoTestArgs{K: fmt.Sprintf("cnt/%d", i%4), V: 1}
			if i%4 == 3 {
				name = "set"
				a = geoTestArgs{K: fmt.Sprintf("cfg/%d", i%4), V: int64(i)}
			} else {
				name = "bump"
			}
			args, _ := json.Marshal(a)
			if _, err := g.Invoke(i%3, fmt.Sprintf("%s-%d", phase, i), name, args, nil); err != nil {
				t.Fatalf("%s op %d: %v", phase, i, err)
			}
		}
	}

	submit("p1", 24)
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}

	// Crash region 2 and replay its durable log.
	rt := g.CellAt(2).(*coreCell).Runtime()
	rt.Crash()
	if err := rt.Recover(); err != nil {
		t.Fatal(err)
	}

	submit("p2", 24)
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}

	base := g.SequencedOrder(0)
	if len(base) != 48 {
		t.Fatalf("region 0 applied %d sequenced ops, want 48", len(base))
	}
	for r := 1; r < g.Regions(); r++ {
		order := g.SequencedOrder(r)
		if len(order) != len(base) {
			t.Fatalf("region %d applied %d ops, region 0 applied %d", r, len(order), len(base))
		}
		for i := range base {
			if order[i] != base[i] {
				t.Fatalf("log order diverges at position %d: region 0 applied %s, region %d applied %s",
					i, base[i], r, order[i])
			}
		}
	}
	assertReplicasEqual(t, g, geoTestKeys())
}

// TestGeoReadModesChargeTheWAN pins the read-mode contract: ReadLocal
// answers without touching the WAN, ReadHome from a non-home region
// charges a round trip.
func TestGeoReadModesChargeTheWAN(t *testing.T) {
	const wan = 20 * time.Millisecond
	g, err := DeployReplicated(Actors, geoTestApp(), 2, GeoOptions{
		Mode: AsyncReplication,
		WAN:  wan,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	args, _ := json.Marshal(geoTestArgs{K: "cnt/0", V: 5})
	if _, err := g.Invoke(0, "w-0", "bump", args, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}

	qargs, _ := json.Marshal(geoTestArgs{K: "cnt/0"})
	local := fabric.NewTrace()
	raw, err := g.Query(1, ReadLocal, "q-local", "peek", qargs, local)
	if err != nil {
		t.Fatal(err)
	}
	if DecodeInt(raw) != 5 {
		t.Fatalf("local read after drain = %d, want 5", DecodeInt(raw))
	}
	if local.Total() >= wan {
		t.Fatalf("ReadLocal charged %v — paid the WAN", local.Total())
	}

	home := fabric.NewTrace()
	raw, err = g.Query(1, ReadHome, "q-home", "peek", qargs, home)
	if err != nil {
		t.Fatal(err)
	}
	if DecodeInt(raw) != 5 {
		t.Fatalf("home read = %d, want 5", DecodeInt(raw))
	}
	if home.Total() < 2*wan {
		t.Fatalf("ReadHome from a remote region charged %v, want >= one WAN round trip (%v)", home.Total(), 2*wan)
	}
}

// TestRunGeoCellSequencedAuditsClean pins E24's sequenced half: the
// audit runs and comes back empty, and every cross-region commit pays at
// least one WAN round trip (the sequencer's quorum).
func TestRunGeoCellSequencedAuditsClean(t *testing.T) {
	const wan = 20 * time.Millisecond
	res, err := RunGeoCell(GeoConfig{
		Mode: SequencedReplication, Regions: 2, WAN: wan,
		Read: ReadLocal, Clients: 2, Ops: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audited {
		t.Fatal("sequenced run did not audit")
	}
	for _, a := range res.Anomalies {
		t.Errorf("anomaly: %s", a)
	}
	if res.WriteP50 < 2*wan {
		t.Errorf("sequenced commit p50 = %v, want >= one WAN round trip (%v)", res.WriteP50, 2*wan)
	}
	if res.Issued-res.Rejected < 48 {
		t.Fatalf("degenerate run: %d accepted of %d issued", res.Issued-res.Rejected, res.Issued)
	}
}

// TestRunGeoCellAsyncConvergesWithLocalReads pins E24's async half: the
// replicas converge exactly after drain, the staleness probe is nonzero,
// and local reads never pay the WAN.
func TestRunGeoCellAsyncConvergesWithLocalReads(t *testing.T) {
	const wan = 80 * time.Millisecond
	res, err := RunGeoCell(GeoConfig{
		Mode: AsyncReplication, Regions: 2, WAN: wan,
		Read: ReadLocal, Clients: 2, Ops: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		for i, d := range res.Diverged {
			if i >= 5 {
				t.Errorf("... and %d more", len(res.Diverged)-5)
				break
			}
			t.Errorf("diverged: %s", d)
		}
		t.Fatal("async replicas did not converge after drain")
	}
	if res.Staleness.ShippedWrites == 0 || res.Staleness.MaxLag <= 0 {
		t.Fatalf("staleness probe empty: %+v", res.Staleness)
	}
	if res.ReadP99 >= wan {
		t.Errorf("local read p99 = %v pays the WAN (%v)", res.ReadP99, wan)
	}
}
