package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"tca/internal/statefun"
	"tca/internal/workload"
)

// Cross-cell conformance for wide, dynamic transactions: one seeded social
// stream whose compose-post fan-outs straddle the statefun runtime's
// per-invocation send budget (statefun.MaxSends), with follow/unfollow
// churn mutating the fan-out key sets between posts. Every cell must
// deliver exactly and preserve read-your-writes; the statefun cell must
// chunk instead of dropping ops on ErrTooManySends.

// wideSocialStream drives ops ops from a churned generator into cell,
// recording accepted ops in a fresh auditor (the eventual cell records on
// acceptance, like the benchmarks).
func wideSocialStream(t *testing.T, cell Cell, seed int64, users, fanout, ops int, churn float64) *SocialAuditor {
	t.Helper()
	gen := workload.NewSocialChurn(seed, users, fanout, churn)
	audit := NewSocialAuditor()
	for i := 0; i < ops; i++ {
		op := gen.Next()
		args, _ := json.Marshal(op)
		_, err := cell.Invoke(fmt.Sprintf("w%d", i), SocialOpName(op), args, nil)
		if cell.Model() == StatefulDataflow || err == nil {
			audit.RecordOp(op)
		} else {
			t.Fatalf("op %d (%s, fan-out %d): %v", i, SocialOpName(op), len(op.Followers), err)
		}
		// Bound the eventual cell's in-flight choreography: wide posts are
		// hundreds of messages each.
		if cell.Model() == StatefulDataflow && i%32 == 31 {
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return audit
}

// TestWideTxnCrossCellConformance runs the same seeded wide-transaction
// stream on all five cells: fan-outs past the old 32-send cliff must
// complete with exact delivery and read-your-writes everywhere — the
// whole social state model commutes, so even the isolation-free cells
// must audit clean.
func TestWideTxnCrossCellConformance(t *testing.T) {
	const (
		users  = 96
		fanout = 48 // straddles statefun.MaxSends = 32
		ops    = 90
		churn  = 0.25
	)
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(17, 3)
			cell, err := DeployWith(model, SocialApp(), env, Options{Partitions: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			audit := wideSocialStream(t, cell, 17, users, fanout, ops, churn)
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("anomaly: %s", a)
			}
			if sf, ok := cell.(*statefunCell); ok {
				if n, last := sf.handlerErrors(); n != 0 {
					t.Errorf("statefun cell dropped %d ops, last error: %v", n, last)
				}
			}
		})
	}
}

// TestStatefunTooManySendsUnreachable pins the tentpole directly: a
// compose-post to 4x the send budget — the celebrity hot path that used
// to hard-fail — chunks through the continuation rounds with zero handler
// errors, and in particular never surfaces statefun.ErrTooManySends.
func TestStatefunTooManySendsUnreachable(t *testing.T) {
	users := 4*statefun.MaxSends + 8
	env := NewEnv(19, 3)
	cell, err := Deploy(StatefulDataflow, SocialApp(), env)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	audit := NewSocialAuditor()
	// One author, every other user a follower: fan-out 135 on a 32-send
	// runtime.
	op := workload.SocialOp{Kind: workload.SocialPost, Author: 0, PostID: 1}
	for f := 1; f < users; f++ {
		op.Followers = append(op.Followers, f)
	}
	args, _ := json.Marshal(op)
	if _, err := cell.Invoke("celebrity", SocialComposePost, args, nil); err != nil {
		t.Fatal(err)
	}
	audit.RecordOp(op)
	anomalies, err := audit.Verify(cell)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range anomalies {
		t.Errorf("anomaly: %s", a)
	}
	sf := cell.(*statefunCell)
	n, last := sf.handlerErrors()
	if errors.Is(last, statefun.ErrTooManySends) {
		t.Fatalf("ErrTooManySends reached the cell adapter: %v", last)
	}
	if n != 0 {
		t.Fatalf("statefun cell dropped %d ops, last error: %v", n, last)
	}
}

// keyRecorderTxn wraps a Txn and records every key the body touches.
type keyRecorderTxn struct {
	inner   Txn
	touched map[string]struct{}
}

func (t *keyRecorderTxn) Get(key string) ([]byte, bool, error) {
	t.touched[key] = struct{}{}
	return t.inner.Get(key)
}

func (t *keyRecorderTxn) Put(key string, value []byte) error {
	t.touched[key] = struct{}{}
	return t.inner.Put(key, value)
}

func (t *keyRecorderTxn) Add(key string, delta int64) error {
	t.touched[key] = struct{}{}
	return t.inner.Add(key, delta)
}

func (t *keyRecorderTxn) PushCap(key string, id int64, cap int) error {
	t.touched[key] = struct{}{}
	return t.inner.PushCap(key, id, cap)
}

// TestSocialChurnKeyDeclarationProperty is the declared-key-set property
// under graph churn: for every op in a long churned stream, the keys the
// body actually touches are exactly the keys the op declares — recomputed
// per op, after arbitrary interleavings of follow/unfollow. The serial
// recorder proves containment; the five-cell run proves the cells' own
// guards (core ErrUndeclared, entity critical sections) never fire.
func TestSocialChurnKeyDeclarationProperty(t *testing.T) {
	const (
		users  = 48
		fanout = 40
		ops    = 400
		churn  = 0.4
	)
	app := SocialApp()
	gen := workload.NewSocialChurn(23, users, fanout, churn)
	state := make(mapTxn)
	kinds := map[workload.SocialKind]int{}
	for i := 0; i < ops; i++ {
		op := gen.Next()
		kinds[op.Kind]++
		args, _ := json.Marshal(op)
		registered, ok := app.Op(SocialOpName(op))
		if !ok {
			t.Fatalf("op %d: unregistered kind %v", i, op.Kind)
		}
		declared := map[string]struct{}{}
		for _, k := range app.keysOf(registered, args) {
			declared[k] = struct{}{}
		}
		rec := &keyRecorderTxn{inner: state, touched: map[string]struct{}{}}
		if _, err := registered.Body(rec, args); err != nil {
			t.Fatalf("op %d (%s): %v", i, SocialOpName(op), err)
		}
		for k := range rec.touched {
			if _, ok := declared[k]; !ok {
				t.Fatalf("op %d (%s): body touched undeclared key %s", i, SocialOpName(op), k)
			}
		}
		for k := range declared {
			if _, ok := rec.touched[k]; !ok {
				t.Fatalf("op %d (%s): declared key %s never touched", i, SocialOpName(op), k)
			}
		}
	}
	if kinds[workload.SocialFollow] == 0 || kinds[workload.SocialUnfollow] == 0 || kinds[workload.SocialPost] == 0 {
		t.Fatalf("degenerate churn mix: %v", kinds)
	}

	// The same stream on every cell: the cells whose runtimes hard-guard
	// undeclared access (the deterministic core, entity critical sections)
	// must accept every op, and all five must audit clean.
	const cellOps = 120
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(23, 3)
			cell, err := Deploy(model, SocialApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			audit := wideSocialStream(t, cell, 23, users, fanout, cellOps, churn)
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("anomaly: %s", a)
			}
		})
	}
}
