package tca

import (
	"encoding/json"
	"fmt"
	"testing"

	"tca/internal/workload"
)

// TestTPCCCrossModelConservation is the application layer's conservation
// property: the identical seeded TPC-C stream, run under every cell of the
// taxonomy, must preserve the integrity constraints (stock never negative,
// warehouse YTD = sum of payments, district counters = NewOrder count) and
// — when each op settles before the next — produce exactly the serial
// reference state on every model.
func TestTPCCCrossModelConservation(t *testing.T) {
	cfg := workload.TPCCConfig{
		Warehouses: 2, Districts: 2, Customers: 20, Items: 50, NewOrderFrac: 0.55,
	}
	const ops = 120

	finals := make(map[ProgrammingModel]map[string]int64)
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(1, 3)
			cell, err := Deploy(model, TPCCApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			gen := workload.NewTPCC(42, cfg)
			audit := NewTPCCAuditor()
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				if _, err := cell.Invoke(fmt.Sprintf("x%d", i), tpccOpName(op), args, nil); err != nil {
					t.Fatalf("op %d (%s): %v", i, tpccOpName(op), err)
				}
				audit.RecordOp(op)
				// Settling per op serializes even the eventual cell, so the
				// equality-with-reference assertion is exact for all five.
				if model == StatefulDataflow {
					if err := cell.Settle(); err != nil {
						t.Fatal(err)
					}
				}
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("integrity violation: %s", a)
			}
			final := make(map[string]int64, len(audit.state))
			for key := range audit.state {
				raw, _, err := cell.Read(key)
				if err != nil {
					t.Fatal(err)
				}
				final[key] = DecodeInt(raw)
			}
			finals[model] = final
		})
	}

	// The deterministic and actor cells (and every other one, given the
	// serialized drive) must agree on the final state key for key.
	det, act := finals[Deterministic], finals[Actors]
	if det == nil || act == nil {
		t.Fatal("missing final states for deterministic/actor cells")
	}
	for key, v := range det {
		if act[key] != v {
			t.Errorf("%s: deterministic=%d actors=%d", key, v, act[key])
		}
	}
}

// TestBankAppSharesCellSemantics drives BankApp directly through the
// layer (no Bank wrapper) under every model: deposits then transfers from
// one seeded stream, money conserved everywhere.
func TestBankAppSharesCellSemantics(t *testing.T) {
	const accounts, transfers = 6, 30
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(2, 3)
			cell, err := Deploy(model, BankApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			for a := 0; a < accounts; a++ {
				args, _ := json.Marshal(bankDepositArgs{Account: a, Amount: 500})
				if _, err := cell.Invoke(fmt.Sprintf("seed-%d", a), "deposit", args, nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
			gen := workload.NewBank(9, accounts, 0)
			for i := 0; i < transfers; i++ {
				op := gen.Next()
				args, _ := json.Marshal(bankTransferArgs{From: op.From, To: op.To, Amount: op.Amount})
				cell.Invoke(fmt.Sprintf("t%d", i), "transfer", args, nil)
			}
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
			var total int64
			for a := 0; a < accounts; a++ {
				raw, _, err := cell.Read(acctKey(a))
				if err != nil {
					t.Fatal(err)
				}
				total += DecodeInt(raw)
			}
			if total != accounts*500 {
				t.Fatalf("total = %d, want %d", total, accounts*500)
			}
		})
	}
}

// TestAppRegistryContract pins the App registry's misuse behavior: unknown
// ops error on Invoke, duplicate/incomplete registrations panic.
func TestAppRegistryContract(t *testing.T) {
	env := NewEnv(3, 3)
	cell, err := Deploy(Deterministic, BankApp(), env)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	if _, err := cell.Invoke("x", "no-such-op", nil, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("incomplete op", func() { NewApp("x").Register(Op{Name: "a"}) })
	mustPanic("duplicate op", func() {
		app := NewApp("x")
		op := Op{
			Name: "a",
			Keys: func([]byte) []string { return nil },
			Body: func(Txn, []byte) ([]byte, error) { return nil, nil },
		}
		app.Register(op)
		app.Register(op)
	})
	if got := len(BankApp().Ops()); got != 2 {
		t.Fatalf("BankApp ops = %d, want 2", got)
	}
}
