package tca

import (
	"encoding/json"
	"fmt"
	"testing"

	"tca/internal/fabric"
	"tca/internal/workload"
)

// Cross-model property tests for the two new first-class workloads: the
// identical seeded stream must deploy under all five cells, and — when
// each op settles before the next — match the serial reference exactly.

func TestMarketCrossModelAudit(t *testing.T) {
	cfg := workload.MarketConfig{
		Users: 8, Products: 6,
		CartFrac: 0.45, CheckoutFrac: 0.20, PriceFrac: 0.10, // 25% queries
		ZipfS: 1.2,
	}
	const ops = 150
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(1, 3)
			cell, err := Deploy(model, MarketApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			gen := workload.NewMarket(42, cfg)
			audit := NewMarketAuditor()
			queries, checkouts := 0, 0
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				_, err := cell.Invoke(fmt.Sprintf("m%d", i), marketOpName(op), args, nil)
				// The eventual cell acknowledges acceptance; settling per op
				// serializes it, and the serial reference replays the same
				// body (including its empty-cart abort) — so recording on
				// acceptance stays consistent.
				if model == StatefulDataflow {
					if err := cell.Settle(); err != nil {
						t.Fatal(err)
					}
					audit.RecordOp(op)
				} else if err == nil {
					audit.RecordOp(op)
				} else if op.Kind != workload.MarketCheckout {
					// Only checkouts may fail in business terms (empty
					// cart; cells wrap the error in their own types).
					t.Fatalf("op %d (%s): %v", i, marketOpName(op), err)
				}
				switch op.Kind {
				case workload.MarketQueryProduct:
					queries++
				case workload.MarketCheckout:
					checkouts++
				}
			}
			if queries == 0 || checkouts == 0 {
				t.Fatalf("degenerate mix: %d queries, %d checkouts", queries, checkouts)
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("anomaly: %s", a)
			}
		})
	}
}

func TestSocialCrossModelFanout(t *testing.T) {
	const ops = 60
	gen0 := workload.NewSocial(7, 16, 8)
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(2, 3)
			cell, err := Deploy(model, SocialApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			// Fresh generator per cell: same seed, same follower graph,
			// same post stream.
			gen := workload.NewSocial(7, 16, 8)
			audit := NewSocialAuditor()
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				if _, err := cell.Invoke(fmt.Sprintf("p%d", i), SocialComposePost, args, nil); err != nil {
					t.Fatalf("compose-post %d (fan-out %d): %v", i, len(op.Followers), err)
				}
				audit.RecordOp(op)
				if model == StatefulDataflow {
					if err := cell.Settle(); err != nil {
						t.Fatal(err)
					}
				}
			}
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("lost/duplicated delivery: %s", a)
			}
			// The read-only timeline query agrees with the reference on the
			// synchronous cells: same bounded list of newest post ids.
			if model != StatefulDataflow {
				for u := 0; u < gen0.Users(); u++ {
					args, _ := json.Marshal(socialTimelineArgs{User: u})
					res, err := cell.Invoke(fmt.Sprintf("rt%d", u), SocialReadTimeline, args, nil)
					if err != nil {
						t.Fatalf("read-timeline %d: %v", u, err)
					}
					want := DecodeIntList(audit.state[workload.TimelineKey(u)])
					if got := DecodeIntList(res); !equalInt64s(got, want) {
						t.Errorf("timeline/%d = %v, want %v", u, got, want)
					}
				}
			}
		})
	}
}

// TestMarketAuditorDetectsWriteSkew pins the auditor itself: a checkout
// that charged a stale price (simulated directly on a cell-free reference
// pair) must be reported as order-ledger drift.
func TestMarketAuditorDetectsWriteSkew(t *testing.T) {
	audit := NewMarketAuditor()
	// The reference sees: price -> 300, cart +2, checkout at 300.
	audit.RecordOp(workload.MarketOp{Kind: workload.MarketUpdatePrice, Product: 1, Price: 300})
	audit.RecordOp(workload.MarketOp{Kind: workload.MarketAddToCart, User: 0, Product: 1, Qty: 2})
	audit.RecordOp(workload.MarketOp{Kind: workload.MarketCheckout, User: 0, Product: 1})
	// A fake cell whose checkout ran before the price update landed: it
	// charged the initial price instead.
	skewed := make(mapTxn)
	for k, v := range audit.state {
		skewed[k] = v
	}
	skewed[workload.OrderKey(0)] = EncodeInt(2 * marketInitialPrice)
	anomalies, err := audit.Verify(&mapCell{state: skewed})
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %v, want exactly the order-ledger drift", anomalies)
	}
}

// mapCell is a minimal read-only Cell over a state map, for auditor tests.
type mapCell struct{ state mapTxn }

func (c *mapCell) Model() ProgrammingModel { return Deterministic }
func (c *mapCell) Guarantee() Guarantee    { return Guarantee{} }
func (c *mapCell) App() *App               { return nil }
func (c *mapCell) Submit(string, string, []byte, *fabric.Trace) Handle {
	return resolvedHandle(nil, fmt.Errorf("mapCell: not invokable"))
}
func (c *mapCell) Invoke(string, string, []byte, *fabric.Trace) ([]byte, error) {
	return nil, fmt.Errorf("mapCell: not invokable")
}
func (c *mapCell) Read(key string) ([]byte, bool, error) {
	v, ok := c.state[key]
	return v, ok, nil
}
func (c *mapCell) Settle() error { return nil }
func (c *mapCell) Close()        {}
