package tca

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tca/internal/fabric"
	"tca/internal/saga"
)

// Integration tests: whole taxonomy cells under chaos and failures, the
// scenarios §4.1/§4.2 describe in prose.

func TestMicroBankConservesUnderMessageChaos(t *testing.T) {
	// Drops and duplicates on the wire; saga + retries + compensations
	// must keep the books balanced even when individual transfers fail.
	env := NewChaosEnv(3, 3, 0.05, 0.05)
	bank, err := NewBank(Microservices, env)
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	const accounts = 6
	for a := 0; a < accounts; a++ {
		// Deposits go over the same lossy wire; retry until applied.
		for try := 0; try < 20; try++ {
			if err := bank.Deposit(a, 0); err == nil {
				break
			}
		}
	}
	// Seed balances robustly via many small deposits with retries.
	seeded := make([]int64, accounts)
	for a := 0; a < accounts; a++ {
		for i := 0; i < 5; i++ {
			if err := bank.Deposit(a, 100); err == nil {
				seeded[a] += 100
			}
		}
	}
	var want int64
	for _, s := range seeded {
		want += s
	}
	completed, compensated := 0, 0
	for i := 0; i < 60; i++ {
		err := bank.Transfer(fmt.Sprintf("chaos-%d", i), i%accounts, (i+1)%accounts, 5, nil)
		switch {
		case err == nil:
			completed++
		case errors.Is(err, saga.ErrCompensated):
			compensated++
		case errors.Is(err, saga.ErrStuck):
			t.Fatalf("saga stuck: %v", err)
		}
	}
	var total int64
	for a := 0; a < accounts; a++ {
		bal, err := bank.Balance(a)
		if err != nil {
			t.Fatal(err)
		}
		total += bal
	}
	if total != want {
		t.Fatalf("total = %d, want %d (completed=%d compensated=%d)", total, want, completed, compensated)
	}
	if completed == 0 {
		t.Fatal("no transfer completed despite retries")
	}
}

func TestActorBankSurvivesNodeCrash(t *testing.T) {
	env := NewEnv(5, 3)
	bank, err := NewBank(Actors, env)
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	for a := 0; a < 4; a++ {
		bank.Deposit(a, 1000)
	}
	for i := 0; i < 20; i++ {
		if err := bank.Transfer(fmt.Sprintf("pre-%d", i), i%4, (i+1)%4, 3, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Crash one node: actors there migrate; transactional state lives in
	// the persistence store, so nothing is lost.
	nodes := env.Cluster.Nodes()
	env.Cluster.Crash(nodes[0])
	for i := 0; i < 20; i++ {
		if err := bank.Transfer(fmt.Sprintf("post-%d", i), i%4, (i+1)%4, 3, nil); err != nil {
			t.Fatalf("transfer after node crash: %v", err)
		}
	}
	var total int64
	for a := 0; a < 4; a++ {
		bal, _ := bank.Balance(a)
		total += bal
	}
	if total != 4000 {
		t.Fatalf("total = %d, want 4000", total)
	}
}

func TestCoreBankConservesAcrossCrashRecovery(t *testing.T) {
	env := NewEnv(7, 3)
	bank, err := NewBank(Deterministic, env)
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	const accounts = 4
	for a := 0; a < accounts; a++ {
		if err := bank.Deposit(a, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rt := bank.(*bankCell).cell.(*coreCell).Runtime()
	for i := 0; i < 30; i++ {
		bank.Transfer(fmt.Sprintf("t-%d", i), i%accounts, (i+1)%accounts, 2, nil)
		if i == 10 {
			if _, err := rt.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if i == 20 {
			rt.Crash()
			if err := rt.Recover(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := bank.Settle(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for a := 0; a < accounts; a++ {
		bal, _ := bank.Balance(a)
		total += bal
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
}

func TestStatefunBankEventualConsistency(t *testing.T) {
	env := NewEnv(9, 3)
	bank, err := NewBank(StatefulDataflow, env)
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	bank.Deposit(0, 500)
	bank.Deposit(1, 500)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				bank.Transfer(fmt.Sprintf("w%d-%d", w, i), 0, 1, 1, nil)
			}
		}(w)
	}
	wg.Wait()
	if err := bank.Settle(); err != nil {
		t.Fatal(err)
	}
	b0, _ := bank.Balance(0)
	b1, _ := bank.Balance(1)
	if b0+b1 != 1000 {
		t.Fatalf("eventual total = %d, want 1000", b0+b1)
	}
	if b0 != 460 || b1 != 540 {
		t.Fatalf("balances = %d,%d; want 460,540 (40 transfers of 1)", b0, b1)
	}
}

func TestFaasBankConcurrentTransfersNoDeadlock(t *testing.T) {
	env := NewEnv(11, 3)
	bank, err := NewBank(CloudFunctions, env)
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	for a := 0; a < 4; a++ {
		bank.Deposit(a, 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// Opposite-direction transfers on the same pair: sorted
				// lock acquisition must prevent deadlock.
				from, to := w%4, (w+1)%4
				if w%2 == 1 {
					from, to = to, from
				}
				bank.Transfer(fmt.Sprintf("f-%d-%d", w, i), from, to, 1, nil)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for a := 0; a < 4; a++ {
		bal, _ := bank.Balance(a)
		total += bal
	}
	if total != 4000 {
		t.Fatalf("total = %d, want 4000", total)
	}
}

func TestTraceAccumulatesAcrossModels(t *testing.T) {
	// Every synchronous cell must charge simulated latency so the
	// experiments comparing them are meaningful.
	for _, model := range []ProgrammingModel{Microservices, Actors, CloudFunctions, Deterministic} {
		env := NewEnv(13, 3)
		bank, err := NewBank(model, env)
		if err != nil {
			t.Fatal(err)
		}
		bank.Deposit(0, 100)
		bank.Deposit(1, 100)
		tr := fabric.NewTrace()
		if err := bank.Transfer("t", 0, 1, 1, tr); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if tr.Total() <= 0 {
			t.Errorf("%v charged no simulated latency", model)
		}
		bank.Close()
	}
}
