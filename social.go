package tca

import (
	"encoding/json"
	"fmt"

	"tca/internal/workload"
)

// The DeathStarBench-style social network (§5.3, ref [27]) as a
// first-class App: compose-post is the hot path, and its declared key set
// IS the author's follower list — one timeline key per follower, plus the
// author's post log. That makes the workload a direct stress test of the
// wide-transaction machinery in every cell: the statefun choreography
// spends one read send per key (bounded per invocation by the runtime's
// 32-send cap, so celebrity fan-outs approach the cell's honest limit),
// and on the partitioned core a single post spans many partitions — the
// multi-partition scheduling E16 measures, driven by a real workload.
//
// State encoding (all values EncodeInt int64):
//
//	posts/U     posts authored by U
//	timeline/U  posts delivered to U's timeline
//
// Both are commutative Adds, so every cell keeps them exact — the social
// matrix (E19) shows the taxonomy's costs, not its anomalies: the same
// fan-out costs 2 hops on the core and ~2 messages per follower on the
// dataflow cell. read-timeline is declared ReadOnly.

// Social op names (SocialOp carries no kind: the generator only produces
// compose-posts; read-timeline is driven by the benchmarks directly).
const (
	SocialComposePost  = "compose-post"
	SocialReadTimeline = "read-timeline"
)

// socialTimelineArgs is read-timeline's wire argument.
type socialTimelineArgs struct {
	User int `json:"user"`
}

// SocialApp builds the social network as a model-agnostic App.
// compose-post arguments are JSON-encoded workload.SocialOp descriptors —
// the follower list rides in the descriptor, Calvin-style reconnaissance
// done by the workload layer.
func SocialApp() *App {
	app := NewApp("social")
	app.Register(Op{
		Name: SocialComposePost,
		Keys: func(args []byte) []string {
			var op workload.SocialOp
			json.Unmarshal(args, &op)
			return op.Keys()
		},
		Body: socialComposePost,
	})
	app.Register(Op{
		Name:     SocialReadTimeline,
		ReadOnly: true,
		Keys: func(args []byte) []string {
			var a socialTimelineArgs
			json.Unmarshal(args, &a)
			return []string{workload.TimelineKey(a.User)}
		},
		Body: socialReadTimeline,
	})
	return app
}

// socialComposePost appends one post and fans it out to every follower's
// timeline — pure commutative deltas over the declared key set.
func socialComposePost(tx Txn, args []byte) ([]byte, error) {
	var op workload.SocialOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.PostsKey(op.Author), 1); err != nil {
		return nil, err
	}
	for _, f := range op.Followers {
		if err := tx.Add(workload.TimelineKey(f), 1); err != nil {
			return nil, err
		}
	}
	return EncodeInt(int64(len(op.Followers))), nil
}

// socialReadTimeline returns the number of posts on a user's timeline —
// the read-only op every cell answers without write machinery.
func socialReadTimeline(tx Txn, args []byte) ([]byte, error) {
	var a socialTimelineArgs
	if err := json.Unmarshal(args, &a); err != nil {
		return nil, err
	}
	raw, _, err := tx.Get(workload.TimelineKey(a.User))
	if err != nil {
		return nil, err
	}
	return EncodeInt(DecodeInt(raw)), nil
}

// SocialAuditor replays accepted compose-posts on a serial reference and
// verifies a cell's post logs and timelines against it. Fan-out is purely
// commutative, so every cell — even the eventual ones — must match: a
// mismatch here means lost or duplicated delivery, not missing isolation.
type SocialAuditor struct {
	app   *App
	state mapTxn
}

// NewSocialAuditor creates an empty auditor.
func NewSocialAuditor() *SocialAuditor {
	return &SocialAuditor{app: SocialApp(), state: make(mapTxn)}
}

// Record replays one accepted compose-post on the serial reference.
func (a *SocialAuditor) Record(op workload.SocialOp) {
	args, _ := json.Marshal(op)
	registered, _ := a.app.Op(SocialComposePost)
	registered.Body(a.state, args)
}

// Verify settles the cell and returns one description per lost or
// duplicated timeline delivery (empty = exact fan-out everywhere).
func (a *SocialAuditor) Verify(c Cell) ([]string, error) {
	if err := c.Settle(); err != nil {
		return nil, err
	}
	var anomalies []string
	for _, key := range sortedKeys(a.state) {
		raw, _, err := c.Read(key)
		if err != nil {
			return anomalies, err
		}
		if got, want := DecodeInt(raw), DecodeInt(a.state[key]); got != want {
			anomalies = append(anomalies, fmt.Sprintf("%s: %d deliveries, serial reference %d", key, got, want))
		}
	}
	return anomalies, nil
}
