package tca

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"tca/internal/workload"
)

// The DeathStarBench-style social network (§5.3, ref [27]) as a
// first-class App: compose-post is the hot path, and its declared key set
// IS the author's follower list — one timeline key per follower, plus the
// author's post log. That makes the workload a direct stress test of the
// wide-transaction machinery in every cell: the statefun choreography
// spends one read send per key, chunked across continuation rounds past
// the runtime's per-invocation send budget (a 128-follower celebrity post
// is ~5 scatter rounds and ~5 emit rounds, no longer a hard failure), and
// on the partitioned core a single post spans many partitions — the
// multi-partition scheduling E16 measures, driven by a real workload.
//
// State encoding:
//
//	posts/U     EncodeIntList — U's post log, the socialPostLogCap newest post ids
//	timeline/U  EncodeIntList — U's timeline, the socialTimelineCap newest delivered post ids
//	follow/U/F  EncodeInt — 1 while F follows U, 0 after an unfollow
//
// Timelines and post logs are bounded id lists maintained with the
// commutative Txn.PushCap merge, and follow edges are ±1 counters, so
// every cell keeps the whole model exact — the social matrix (E19) shows
// the taxonomy's costs, not its anomalies. read-timeline is declared
// ReadOnly.

// Social op names, matching workload.SocialKind.String() for the
// generated kinds (read-timeline is driven by benchmarks directly).
const (
	SocialComposePost  = "compose-post"
	SocialReadTimeline = "read-timeline"
	SocialFollowOp     = "follow"
	SocialUnfollowOp   = "unfollow"
)

// socialTimelineCap bounds a timeline to the newest post ids — the "last
// K posts" read path of a real timeline service; socialPostLogCap bounds
// the author's own post log.
const (
	socialTimelineCap = 8
	socialPostLogCap  = 16
)

// SocialOpName maps a generated op to its registered op name.
func SocialOpName(op workload.SocialOp) string { return op.Kind.String() }

// socialTimelineArgs is read-timeline's wire argument.
type socialTimelineArgs struct {
	User int `json:"user"`
}

// SocialApp builds the social network as a model-agnostic App.
// Op arguments are JSON-encoded workload.SocialOp descriptors — the
// follower list rides in the compose-post descriptor, Calvin-style
// reconnaissance done by the workload layer, whose generator owns the
// authoritative graph and mutates it through the same follow/unfollow
// stream the cells apply as edge counters.
func SocialApp() *App {
	app := NewApp("social")
	keys := func(args []byte) []string {
		var op workload.SocialOp
		json.Unmarshal(args, &op)
		return op.Keys()
	}
	app.Register(Op{Name: SocialComposePost, Keys: keys, Body: socialComposePost})
	app.Register(Op{Name: SocialFollowOp, Keys: keys, Body: socialFollow})
	app.Register(Op{Name: SocialUnfollowOp, Keys: keys, Body: socialUnfollow})
	app.Register(Op{
		Name:     SocialReadTimeline,
		ReadOnly: true,
		Keys: func(args []byte) []string {
			var a socialTimelineArgs
			json.Unmarshal(args, &a)
			return []string{workload.TimelineKey(a.User)}
		},
		Body: socialReadTimeline,
	})
	return app
}

// socialComposePost appends the post id to the author's log and fans it
// out to every follower's timeline — pure commutative bounded-list merges
// over the declared key set, exact on every cell in any delivery order.
func socialComposePost(tx Txn, args []byte) ([]byte, error) {
	var op workload.SocialOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.PushCap(workload.PostsKey(op.Author), op.PostID, socialPostLogCap); err != nil {
		return nil, err
	}
	for _, f := range op.Followers {
		if err := tx.PushCap(workload.TimelineKey(f), op.PostID, socialTimelineCap); err != nil {
			return nil, err
		}
	}
	return EncodeInt(int64(len(op.Followers))), nil
}

// socialFollow flips the (author, follower) edge counter up — a
// commutative delta, so churn interleaved with posts stays exact on every
// cell.
func socialFollow(tx Txn, args []byte) ([]byte, error) {
	var op workload.SocialOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	return nil, tx.Add(workload.FollowKey(op.Author, op.Follower), 1)
}

// socialUnfollow flips the edge counter back down.
func socialUnfollow(tx Txn, args []byte) ([]byte, error) {
	var op workload.SocialOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	return nil, tx.Add(workload.FollowKey(op.Author, op.Follower), -1)
}

// socialReadTimeline returns the user's timeline — the bounded list of
// newest delivered post ids, canonically encoded — via the read-only fast
// path of every cell.
func socialReadTimeline(tx Txn, args []byte) ([]byte, error) {
	var a socialTimelineArgs
	if err := json.Unmarshal(args, &a); err != nil {
		return nil, err
	}
	raw, _, err := tx.Get(workload.TimelineKey(a.User))
	if err != nil {
		return nil, err
	}
	return EncodeIntList(DecodeIntList(raw)), nil
}

// SocialAuditor audits accepted social ops incrementally on the shared
// engine (audit.go): a cell's post logs, timelines, and follow edges are
// verified against the serial reference with list-exact delivery
// semantics. The whole state model is commutative (bounded-list merges
// and ±1 edge deltas), so every cell — even the eventual ones — must
// match: a mismatch means lost or duplicated delivery, not missing
// isolation, and the order verdict never windows a commutative-only
// commit (social auditing costs O(delta) per post, full stop). On top of
// per-key equality the auditor maintains read-your-writes incrementally:
// every author's own post log must contain their most recent accepted
// post.
type SocialAuditor struct {
	*refAuditor
	mu       sync.Mutex
	lastPost map[int]int64 // author -> most recent accepted post id
}

// NewSocialAuditor creates an empty auditor.
func NewSocialAuditor() *SocialAuditor {
	a := &SocialAuditor{lastPost: make(map[int]int64)}
	a.refAuditor = newRefAuditor(auditorConfig{
		app: SocialApp(),
		compare: func(key string, got, want []byte) string {
			if strings.HasPrefix(key, "follow/") {
				if g, w := DecodeInt(got), DecodeInt(want); g != w {
					return fmt.Sprintf("%s: edge count %d, serial reference %d", key, g, w)
				}
				return ""
			}
			g, w := DecodeIntList(got), DecodeIntList(want)
			if !equalInt64s(g, w) {
				return fmt.Sprintf("%s: delivered %v, serial reference %v", key, g, w)
			}
			return ""
		},
		onObserve: func(opName string, args []byte) {
			if opName != SocialComposePost {
				return
			}
			var op workload.SocialOp
			json.Unmarshal(args, &op)
			a.mu.Lock()
			a.lastPost[op.Author] = op.PostID
			a.mu.Unlock()
		},
		// Read-your-writes: the author's own post log must contain their
		// most recent post (post ids are monotone, so the newest is never
		// the one a bounded log evicts).
		finalize: func(read func(string) ([]byte, error), add func(string)) error {
			a.mu.Lock()
			defer a.mu.Unlock()
			for _, author := range sortedIntKeys(a.lastPost) {
				post := a.lastPost[author]
				raw, err := read(workload.PostsKey(author))
				if err != nil {
					return err
				}
				if !containsInt64(DecodeIntList(raw), post) {
					add(fmt.Sprintf("read-your-writes: %s missing author %d's own post %d", workload.PostsKey(author), author, post))
				}
			}
			return nil
		},
	})
	return a
}

// RecordOp folds one accepted op into the reference in serial order.
func (a *SocialAuditor) RecordOp(op workload.SocialOp) {
	args, _ := json.Marshal(op)
	a.ObserveSerial(SocialOpName(op), args)
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt64(vs []int64, v int64) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func sortedIntKeys(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
