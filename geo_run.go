package tca

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/workload"
)

// E24 — the geo frontier. RunGeoCell deploys the marketplace as a
// replica group and measures the three-way trade ISSUE 10 names: local
// reads are fast but possibly stale (async mode), home reads are fresh
// but pay the WAN round trip, and sequenced commits are anomaly-free but
// every cross-region group pays the sequencer's WAN round trip. The
// latencies reported are modeled (fabric trace) time, so runs are
// machine-independent; the staleness probe mixes real queue wait with
// the modeled WAN leg.

// GeoConfig configures one E24 cell.
type GeoConfig struct {
	// Mode picks the replication protocol: AsyncReplication deploys the
	// eventual (stateful-dataflow) cell per region, SequencedReplication
	// the deterministic core under the global sequencer.
	Mode ReplicationMode
	// Regions is the replica count (>= 1; 1 is the no-WAN baseline).
	Regions int
	// WAN is the modeled cross-region one-way latency.
	WAN time.Duration
	// Read routes queries: ReadLocal answers from the origin replica,
	// ReadHome round-trips to region 0.
	Read ReadMode
	// Clients is the closed-loop submitter count per region (default 4).
	// Ignored when Rate > 0.
	Clients int
	// Ops is the total submission budget across all regions.
	Ops int
	// Rate, when > 0, switches to a paced open loop: submissions arrive
	// at this fixed rate, round-robined across regions — the
	// machine-independent sub-capacity mode the CI grid pins.
	Rate float64
	// Seed varies the op streams deterministically (default 1).
	Seed int64
	// Users / Products size the marketplace (defaults 64 / 16).
	Users, Products int
}

// GeoResult is one cell of the E24 frontier.
type GeoResult struct {
	Mode    ReplicationMode
	Regions int
	WAN     time.Duration
	Read    ReadMode

	// Issued counts submissions, Rejected the business aborts (empty
	// carts); Elapsed spans first submission to full quiescence.
	Issued, Rejected int64
	Elapsed          time.Duration

	// ReadP50/P99 are the modeled latencies of the query path under the
	// chosen read mode; WriteP50/P99 the modeled commit latencies — in
	// sequenced mode these carry the sequencer WAN round trip, the
	// cross-region commit cost the frontier trades against staleness.
	ReadP50, ReadP99   time.Duration
	WriteP50, WriteP99 time.Duration
	// ReadSamples / WriteSamples are bounded reservoir samples of the
	// same modeled distributions, for the CI grid's std-aware gating.
	ReadSamples, WriteSamples []time.Duration

	// Staleness is the replica group's probe: how far behind a local
	// read could be (async mode; zero in sequenced mode and at 1 region).
	Staleness StalenessStats

	// Audited reports the sequenced-mode serializability audit ran;
	// Anomalies are its unexplained divergences (must be empty).
	Audited   bool
	Anomalies []string

	// Converged reports the async post-drain check: every replica
	// byte-identical on the whole key universe. Diverged lists the keys
	// that failed it (must be empty). True trivially in sequenced mode.
	Converged bool
	Diverged  []string
}

// RunGeoCell runs one E24 cell to completion: deploy, drive, drain,
// audit/converge, close.
func RunGeoCell(cfg GeoConfig) (GeoResult, error) {
	if cfg.Regions < 1 {
		return GeoResult{}, fmt.Errorf("tca: E24 needs >= 1 region (got %d)", cfg.Regions)
	}
	if cfg.Clients < 1 {
		cfg.Clients = 4
	}
	if cfg.Ops < 1 {
		cfg.Ops = 400
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Users < 1 {
		cfg.Users = 64
	}
	if cfg.Products < 2 {
		cfg.Products = 16
	}
	mcfg := workload.MarketConfig{
		Users: cfg.Users, Products: cfg.Products,
		CartFrac: 0.40, CheckoutFrac: 0.20, PriceFrac: 0.10, // 30% queries
		ZipfS: 1.3,
	}
	model := StatefulDataflow
	if cfg.Mode == SequencedReplication {
		model = Deterministic
	}
	g, err := DeployReplicated(model, MarketApp(), cfg.Regions, GeoOptions{
		Mode: cfg.Mode,
		WAN:  cfg.WAN,
		Seed: cfg.Seed,
		Cell: Options{Clients: cfg.Clients, Workers: 32, SequenceDelay: 80 * time.Microsecond},
	})
	if err != nil {
		return GeoResult{}, err
	}
	defer g.Close()

	// Sequenced mode audits for real: the sequencer's log order is the
	// serialization, so the precedence-graph verdict must come back
	// empty. Async mode is audited for convergence instead — its local
	// interleavings are exactly the drift E24 prices via the staleness
	// probe, which feeds the auditor's new staleness field either way.
	var aud *MarketAuditor
	if cfg.Mode == SequencedReplication {
		aud = NewMarketAuditor()
		defer aud.Close()
	}

	readHist := metrics.NewHistogram()
	writeHist := metrics.NewHistogram()
	readRes := workload.NewLatencyReservoir(0, cfg.Seed)
	writeRes := workload.NewLatencyReservoir(0, cfg.Seed+1)
	var issued, rejected atomic.Int64
	var auditSeq atomic.Int64
	var inflight sync.WaitGroup

	// submitOne drives a single op at origin, recording modeled latency
	// by path and feeding the audit when one is running.
	submitOne := func(origin int, op workload.MarketOp, reqID string, await bool) {
		args, _ := json.Marshal(op)
		name := marketOpName(op)
		issued.Add(1)
		if op.Kind == workload.MarketQueryProduct {
			run := func() {
				tr := fabric.NewTrace()
				if _, err := g.Query(origin, cfg.Read, reqID, name, args, tr); err != nil {
					rejected.Add(1)
					return
				}
				readHist.RecordDuration(tr.Total())
				readRes.Record(tr.Total())
			}
			if await {
				run()
			} else {
				inflight.Add(1)
				go func() { defer inflight.Done(); run() }()
			}
			return
		}
		var auditID string
		if aud != nil {
			auditID = fmt.Sprintf("a/%d", auditSeq.Add(1))
			aud.Record(auditID, name, args)
		}
		tr := fabric.NewTrace()
		h := g.Submit(origin, reqID, name, args, tr)
		settle := func() {
			_, err := h.Result()
			writeHist.RecordDuration(tr.Total())
			writeRes.Record(tr.Total())
			if err != nil {
				rejected.Add(1)
				if aud != nil {
					aud.Discard(auditID)
				}
				return
			}
			if aud != nil {
				var seq int64
				if sh, ok := h.(interface{ Seq() int64 }); ok {
					seq = sh.Seq()
				}
				aud.Observe(Commit{ReqID: auditID, Op: name, Args: args, Seq: seq})
			}
		}
		if await {
			settle()
		} else {
			inflight.Add(1)
			go func() { defer inflight.Done(); settle() }()
		}
	}

	start := time.Now()
	if cfg.Rate > 0 {
		// Paced open loop: fixed inter-arrival gap, regions round-robin,
		// one stream per region — the deterministic grid mode.
		gens := make([]*workload.MarketGen, cfg.Regions)
		for r := range gens {
			gens[r] = workload.NewMarket(cfg.Seed+int64(r)*1000, mcfg)
		}
		gap := time.Duration(float64(time.Second) / cfg.Rate)
		next := time.Now()
		for i := 0; i < cfg.Ops; i++ {
			next = next.Add(gap)
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
			r := i % cfg.Regions
			submitOne(r, gens[r].Next(), fmt.Sprintf("g/%d/%d", r, i), false)
		}
	} else {
		// Closed loop: Clients submitters per region, each serial over
		// its own seeded stream.
		perClient := cfg.Ops / (cfg.Regions * cfg.Clients)
		if perClient < 1 {
			perClient = 1
		}
		var wg sync.WaitGroup
		for r := 0; r < cfg.Regions; r++ {
			for c := 0; c < cfg.Clients; c++ {
				r, c := r, c
				wg.Add(1)
				go func() {
					defer wg.Done()
					gen := workload.NewMarket(cfg.Seed+int64(r)*1000+int64(c), mcfg)
					for i := 0; i < perClient; i++ {
						submitOne(r, gen.Next(), fmt.Sprintf("g/%d/%d/%d", r, c, i), true)
					}
				}()
			}
		}
		wg.Wait()
	}
	inflight.Wait()
	if err := g.Drain(); err != nil {
		return GeoResult{}, err
	}
	elapsed := time.Since(start)

	out := GeoResult{
		Mode:      cfg.Mode,
		Regions:   cfg.Regions,
		WAN:       cfg.WAN,
		Read:      cfg.Read,
		Issued:    issued.Load(),
		Rejected:  rejected.Load(),
		Elapsed:   elapsed,
		Staleness: g.Staleness(),
		Converged: true,
	}
	rs, ws := readHist.Snapshot(), writeHist.Snapshot()
	out.ReadP50, out.ReadP99 = time.Duration(rs.P50), time.Duration(rs.P99)
	out.WriteP50, out.WriteP99 = time.Duration(ws.P50), time.Duration(ws.P99)
	out.ReadSamples, out.WriteSamples = readRes.Samples(), writeRes.Samples()

	if aud != nil {
		// Fold the probe into the auditor too: AuditStats carries the
		// staleness block alongside the anomaly counters.
		aud.ObserveStaleness(out.Staleness)
		anomalies, err := aud.Verify(g.CellAt(g.Home()))
		if err != nil {
			return GeoResult{}, err
		}
		out.Audited = true
		out.Anomalies = anomalies
	}
	if cfg.Mode == AsyncReplication && cfg.Regions > 1 {
		out.Diverged = g.divergedKeys(marketKeyUniverse(mcfg))
		out.Converged = len(out.Diverged) == 0
	}
	return out, nil
}

// marketKeyUniverse enumerates every key a marketplace of this size can
// touch — the finite universe the convergence check walks.
func marketKeyUniverse(cfg workload.MarketConfig) []string {
	keys := make([]string, 0, 2*cfg.Users+2*cfg.Products)
	for u := 0; u < cfg.Users; u++ {
		keys = append(keys, workload.CartKey(u), workload.OrderKey(u))
	}
	for p := 0; p < cfg.Products; p++ {
		keys = append(keys, workload.PriceKey(p), workload.MarketStockKey(p))
	}
	return keys
}

// divergedKeys returns every key on which any replica disagrees with
// region 0, in "key: region i = x, region 0 = y" form. Empty means the
// group converged exactly.
func (g *ReplicaGroup) divergedKeys(universe []string) []string {
	var diffs []string
	for _, key := range universe {
		base, baseFound, err := g.ReadLocal(0, key)
		if err != nil {
			diffs = append(diffs, fmt.Sprintf("%s: read failed at region 0: %v", key, err))
			continue
		}
		for r := 1; r < g.Regions(); r++ {
			got, found, err := g.ReadLocal(r, key)
			switch {
			case err != nil:
				diffs = append(diffs, fmt.Sprintf("%s: read failed at region %d: %v", key, r, err))
			case found != baseFound || string(got) != string(base):
				diffs = append(diffs, fmt.Sprintf("%s: region %d = %q (found=%v), region 0 = %q (found=%v)",
					key, r, got, found, base, baseFound))
			}
		}
	}
	return diffs
}
