package tca

import (
	"errors"
	"time"

	"tca/internal/core"
	"tca/internal/fabric"
)

// coreCell deploys an App on the deterministic transactional dataflow
// runtime (internal/core): every op becomes a registered deterministic
// transaction, scheduled by its declared key set on the partitioned input
// log. Serializable and exactly-once by construction — the §5 opportunity
// cell.
type coreCell struct {
	app *App
	rt  *core.Runtime
}

func newCoreCell(app *App, env *Env, opts Options) (*coreCell, error) {
	// Admission control: the batcher queue bound defaults to 4× the group
	// size (a queue that can feed four full group appends); Options
	// semantics — negative disables — map onto the runtime's zero = legacy.
	maxPending := opts.MaxPending
	if maxPending == 0 {
		group := opts.MaxGroupAppend
		if group <= 0 {
			group = 128
		}
		maxPending = 4 * group
	} else if maxPending < 0 {
		maxPending = 0
	}
	rt := core.NewRuntime(env.Broker, core.Config{
		Name:           "cell-" + app.Name(),
		Cluster:        env.Cluster,
		Partitions:     opts.Partitions,
		Workers:        opts.Workers,
		SequenceDelay:  opts.SequenceDelay,
		LogDir:         opts.LogDir,
		Fsync:          opts.Fsync,
		MaxGroupAppend: opts.MaxGroupAppend,
		MaxPending:     maxPending,
	})
	for _, name := range app.Ops() {
		op, _ := app.Op(name)
		rt.Register(op.Name, func(tx *core.Tx, args []byte) ([]byte, error) {
			return op.Body(op.guard(coreTxn{tx}), args)
		})
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return &coreCell{app: app, rt: rt}, nil
}

// coreTxn adapts core.Tx to the uniform Txn surface (a direct fit: the
// runtime already exposes a byte-valued key space).
type coreTxn struct{ tx *core.Tx }

func (t coreTxn) Get(key string) ([]byte, bool, error) { return t.tx.Get(key) }
func (t coreTxn) Put(key string, value []byte) error   { return t.tx.Put(key, value) }

func (t coreTxn) Add(key string, delta int64) error {
	raw, _, err := t.tx.Get(key)
	if err != nil {
		return err
	}
	return t.tx.Put(key, EncodeInt(DecodeInt(raw)+delta))
}

// PushCap is a plain read-modify-write here: the conflict-chain schedule
// serializes every access to the key.
func (t coreTxn) PushCap(key string, id int64, cap int) error {
	return pushCapRMW(t, key, id, cap)
}

func (c *coreCell) Model() ProgrammingModel { return Deterministic }
func (c *coreCell) App() *App               { return c.app }

func (c *coreCell) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: true, ExactlyOnce: true,
		Note: "deterministic transactional dataflow (Styx-like): serializable, log-ordered, no 2PC"}
}

// Submit pipelines natively: the runtime acknowledges once the transaction
// is durably appended — concurrent submissions share group log appends,
// amortizing the modeled SequenceDelay — and the handle resolves when the
// scheduled transaction commits. Handles survive Crash/Recover: the
// request is already in the log, so replay resolves them exactly once.
func (c *coreCell) Submit(reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	op, ok := c.app.Op(opName)
	if !ok {
		return resolvedHandle(nil, opError(c.app, opName))
	}
	if op.ReadOnly {
		// Queries execute against a consistent cut of the committed MVCC
		// view: no log append, no write-schedule slot, no conflict chain
		// entry — the write pipeline never sees them. They run off the
		// caller's goroutine so read-heavy clients still pipeline.
		h := newOpHandle()
		go func() {
			h.resolve(c.rt.SubmitReadOnly(reqID, op.Name, c.app.keysOf(op, args), args, tr))
		}()
		return h
	}
	h, err := c.rt.SubmitAsync(reqID, op.Name, c.app.keysOf(op, args), args, tr)
	if err != nil {
		var oe *core.OverloadError
		if errors.As(err, &oe) {
			return shedHandle(Deterministic, oe.Pending, oe.RetryAfter)
		}
		return resolvedHandle(nil, err)
	}
	return h
}

// Invoke is semantically Submit(...).Result() — TestInvokeIsSubmitResult
// pins the equivalence. Read-only ops run inline (SubmitReadOnly is
// already synchronous), skipping the pipelining goroutine a blocking
// caller has no use for.
func (c *coreCell) Invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	if op, ok := c.app.Op(opName); ok && op.ReadOnly {
		return c.rt.SubmitReadOnly(reqID, op.Name, c.app.keysOf(op, args), args, tr)
	}
	return c.Submit(reqID, opName, args, tr).Result()
}

func (c *coreCell) Read(key string) ([]byte, bool, error) {
	raw, ok := c.rt.Read(key)
	return raw, ok, nil
}

func (c *coreCell) Settle() error { return c.rt.Quiesce(10 * time.Second) }
func (c *coreCell) Close()        { c.rt.Stop() }

// Runtime exposes the underlying deterministic runtime for checkpoint and
// crash/recovery control (tests, the recovery experiments).
func (c *coreCell) Runtime() *core.Runtime { return c.rt }

// CoreRuntime returns the deterministic cell's underlying runtime — the
// crash/replay control surface — or nil for any other cell, so demos and
// drivers can exercise recovery without depending on the cell's concrete
// type.
func CoreRuntime(c Cell) *core.Runtime {
	if cc, ok := c.(*coreCell); ok {
		return cc.rt
	}
	return nil
}
