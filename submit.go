package tca

import (
	"sync"
	"time"
)

// This file is the asynchronous half of the invocation surface. Cell.Submit
// starts an op and returns a Handle immediately — acceptance — while the
// Handle resolves when the op has applied. The split makes the messaging
// axis of the taxonomy visible per request: on the synchronous cells accept
// and apply coincide (the op runs on a bounded worker pool and the handle
// resolves when the blocking protocol returns), while on the log-based
// cells they are two genuinely different events — the deterministic core
// acknowledges once the transaction is durably appended (concurrent
// submissions share group log appends) and resolves the handle when the
// scheduled transaction commits, and the dataflow cell acknowledges at the
// ingress and resolves when the choreography's result record lands on the
// egress. Invoke is Submit(...).Result() on every cell.

// Handle is an in-flight op submission.
type Handle interface {
	// Done is closed when the op has completed: committed, applied, or
	// failed. On the dataflow cell completion means the choreography's
	// result record landed — writes are durably in flight exactly-once,
	// but per-key settlement still needs Cell.Settle.
	Done() <-chan struct{}
	// Result blocks until completion and returns the op's result. Calling
	// it more than once returns the same outcome.
	Result() ([]byte, error)
}

// opHandle is the shared Handle implementation. Resolution is idempotent
// (sync.Once) because some completion paths race a watchdog or an
// at-least-once egress delivery.
type opHandle struct {
	done chan struct{}
	once sync.Once
	res  []byte
	err  error
}

func newOpHandle() *opHandle { return &opHandle{done: make(chan struct{})} }

func (h *opHandle) resolve(res []byte, err error) {
	h.once.Do(func() {
		h.res, h.err = res, err
		close(h.done)
	})
}

func (h *opHandle) Done() <-chan struct{} { return h.done }

func (h *opHandle) Result() ([]byte, error) {
	<-h.done
	return h.res, h.err
}

// resolvedHandle returns a Handle that is already complete — the path for
// submissions rejected before they reach the cell's pipeline.
func resolvedHandle(res []byte, err error) Handle {
	h := newOpHandle()
	h.resolve(res, err)
	return h
}

// defaultClients bounds a synchronous cell's concurrently executing
// submissions when Options.Clients is zero.
const defaultClients = 16

// poolRetryAfter is the shed hint for the worker-pool cells: the order of
// one short op's service time, coarse on purpose.
const poolRetryAfter = 500 * time.Microsecond

// submitPool runs submissions for the synchronous cells (microservices,
// actors, cloud functions) on a bounded worker pool: Submit returns a
// Handle immediately, at most Options.Clients ops execute their blocking
// protocol at once, and up to Options.MaxPending accepted submissions
// wait for a slot. Admission is non-blocking: when executing + waiting
// work already fills the bound, submit sheds — the handle resolves at
// once with a *ShedError and the op never runs. The pool is what turns a
// blocking saga / 2PC / critical-section call into a pipelined one
// without changing the cell's guarantees, and the bound is what keeps an
// open-loop arrival process from growing an unbounded backlog (E23).
// MaxPending < 0 restores the legacy unbounded behavior: submit blocks
// for a slot and never sheds.
type submitPool struct {
	model ProgrammingModel
	slots chan struct{}
	// tokens bounds accepted-but-unfinished submissions (executing plus
	// queued): capacity clients+maxPending, nil in legacy unbounded mode.
	tokens chan struct{}
}

func newSubmitPool(model ProgrammingModel, clients, maxPending int) *submitPool {
	if clients <= 0 {
		clients = defaultClients
	}
	p := &submitPool{model: model, slots: make(chan struct{}, clients)}
	if maxPending == 0 {
		maxPending = 4 * clients
	}
	if maxPending > 0 {
		p.tokens = make(chan struct{}, clients+maxPending)
	}
	return p
}

// submit admits one op to the pool and returns its handle. With admission
// control on, acceptance is a token for the bounded pipeline — granted or
// refused immediately, so accept latency is admission, not queueing — and
// the op waits for an executing slot inside its own goroutine. A full
// pipeline sheds instead of queueing. In legacy mode (MaxPending < 0) the
// call blocks until an executing slot frees, which is what keeps a caller
// submitting faster than Options.Clients ops can execute backpressured
// instead of piling up goroutines.
func (p *submitPool) submit(run func() ([]byte, error)) Handle {
	if p.tokens != nil {
		select {
		case p.tokens <- struct{}{}:
		default:
			return shedHandle(p.model, cap(p.tokens), poolRetryAfter)
		}
		h := newOpHandle()
		go func() {
			defer func() { <-p.tokens }()
			p.slots <- struct{}{}
			defer func() { <-p.slots }()
			h.resolve(run())
		}()
		return h
	}
	h := newOpHandle()
	p.slots <- struct{}{}
	go func() {
		defer func() { <-p.slots }()
		h.resolve(run())
	}()
	return h
}

// invoke runs one op on the pool inline — the blocking caller's fast
// path. It blocks for an executing slot and never sheds: a caller that
// waits inline is its own backpressure, so admission control has nothing
// to bound. Observably identical to the legacy submit(run).Result() (same
// cap, same outcome) without the per-op goroutine and handle, which keeps
// the serial benchmarks' real cost where it was before the API went async.
func (p *submitPool) invoke(run func() ([]byte, error)) ([]byte, error) {
	p.slots <- struct{}{}
	defer func() { <-p.slots }()
	return run()
}
