package tca

import (
	"encoding/json"
	"fmt"

	"tca/internal/workload"
)

// The streaming double-entry ledger from examples/streamledger promoted
// to a first-class App (ISSUE 10 satellite): a posting moves an amount
// between two accounts and journals the entry id on both sides, so
// every unit of value is accounted twice — the invariant the example's
// dataflow job checkpointed and recovered. Balance moves are commutative
// Adds and journals are bounded commutative PushCap merges, so every
// cell must audit clean; the audited invariant is conservation
// (Σ balances constant — double-entry by construction) plus per-account
// equality with the serial reference. query-balance is the ReadOnly
// path.
//
// State encoding:
//
//	acct/A     account A's balance (EncodeInt)
//	journal/A  account A's recent entry ids (EncodeIntList, bounded)

// ledgerJournalCap bounds each account's journal to its most recent
// entries — the same capped-merge shape as social timelines.
const ledgerJournalCap = 16

// ledgerQueryResult is query-balance's wire result.
type ledgerQueryResult struct {
	Balance int64 `json:"balance"`
}

// LedgerApp builds the ledger App. Op arguments are JSON-encoded
// workload.LedgerOp descriptors.
func LedgerApp() *App {
	app := NewApp("ledger")
	keys := func(args []byte) []string {
		var op workload.LedgerOp
		json.Unmarshal(args, &op)
		return op.Keys()
	}
	app.Register(Op{Name: workload.LedgerPost.String(), Keys: keys, Body: ledgerPost})
	app.Register(Op{Name: workload.LedgerQuery.String(), Keys: keys, ReadOnly: true, Body: ledgerQueryBalance})
	return app
}

// ledgerOpName maps a generated op to its registered op name.
func ledgerOpName(op workload.LedgerOp) string { return op.Kind.String() }

// ledgerPost applies one double-entry posting: debit, credit, and the
// journal entry on both sides.
func ledgerPost(tx Txn, args []byte) ([]byte, error) {
	var op workload.LedgerOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.AcctKey(op.From), -op.Amount); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.AcctKey(op.To), op.Amount); err != nil {
		return nil, err
	}
	if err := tx.PushCap(workload.JournalKey(op.From), op.Entry, ledgerJournalCap); err != nil {
		return nil, err
	}
	return nil, tx.PushCap(workload.JournalKey(op.To), op.Entry, ledgerJournalCap)
}

// ledgerQueryBalance reads one account's balance.
func ledgerQueryBalance(tx Txn, args []byte) ([]byte, error) {
	var op workload.LedgerOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	raw, _, err := tx.Get(workload.AcctKey(op.From))
	if err != nil {
		return nil, err
	}
	out, _ := json.Marshal(ledgerQueryResult{Balance: DecodeInt(raw)})
	return out, nil
}

// LedgerAuditor audits the ledger on the shared engine: conservation
// (every posting's debit equals its credit, so Σ balances never moves),
// per-account equality with the delta-maintained expectation, and the
// settled-state comparison against the serial reference (which also
// covers the journals' capped merges).
type LedgerAuditor struct {
	*refAuditor
}

// NewLedgerAuditor creates an empty auditor.
func NewLedgerAuditor() *LedgerAuditor {
	cons := NewConstraints().
		SumTotal(SumTotal{
			Name:   "conservation",
			Prefix: "acct/",
			Delta:  func(op string, args []byte) int64 { return 0 },
		}).
		KeyTotal(KeyTotal{
			Name: "account balances",
			Delta: func(op string, args []byte) map[string]int64 {
				if op != workload.LedgerPost.String() {
					return nil
				}
				var l workload.LedgerOp
				if json.Unmarshal(args, &l) != nil {
					return nil
				}
				return map[string]int64{
					workload.AcctKey(l.From): -l.Amount,
					workload.AcctKey(l.To):   l.Amount,
				}
			},
			Describe: func(key string, got, want int64) string {
				return fmt.Sprintf("%s: balance %d, expected %d (lost or doubled posting)", key, got, want)
			},
		})
	return &LedgerAuditor{newRefAuditor(auditorConfig{
		app:  LedgerApp(),
		cons: cons,
	})}
}

// RecordOp folds one accepted op into the reference in serial order.
// Queries are no-ops by construction and skipped.
func (a *LedgerAuditor) RecordOp(op workload.LedgerOp) {
	if op.Kind == workload.LedgerQuery {
		return
	}
	args, _ := json.Marshal(op)
	a.ObserveSerial(ledgerOpName(op), args)
}
