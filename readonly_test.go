package tca

import (
	"encoding/json"
	"fmt"
	"testing"

	"tca/internal/mq"
	"tca/internal/workload"
)

// The read-only contract, cross-cell: a query op must succeed on every
// cell, return the committed values (on the synchronous cells), leave all
// state untouched, and — on the deterministic cell — never enter the
// write schedule.

// marketSeed drives a small deterministic prefix: a price reposition, a
// cart fill, and one checkout, so queries have state to read.
func marketSeed(t *testing.T, cell Cell) {
	t.Helper()
	seed := []workload.MarketOp{
		{Kind: workload.MarketUpdatePrice, Product: 1, Price: 250},
		{Kind: workload.MarketAddToCart, User: 2, Product: 1, Qty: 3},
		{Kind: workload.MarketCheckout, User: 2, Product: 1},
	}
	for i, op := range seed {
		args, _ := json.Marshal(op)
		if _, err := cell.Invoke(fmt.Sprintf("seed-%d", i), marketOpName(op), args, nil); err != nil {
			t.Fatalf("seed op %d: %v", i, err)
		}
		// Serialize the eventual cell so the checkout sees the cart.
		if cell.Model() == StatefulDataflow {
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cell.Settle(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, cell Cell, keys []string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64, len(keys))
	for _, k := range keys {
		raw, _, err := cell.Read(k)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = DecodeInt(raw)
	}
	return out
}

func TestReadOnlyQueriesLeaveStateUntouched(t *testing.T) {
	auditKeys := []string{
		workload.PriceKey(1), workload.MarketStockKey(1),
		workload.CartKey(2), workload.OrderKey(2),
	}
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(21, 3)
			cell, err := Deploy(model, MarketApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			marketSeed(t, cell)
			before := readAll(t, cell, auditKeys)
			if before[workload.OrderKey(2)] != 3*250 {
				t.Fatalf("checkout ledger = %d, want 750", before[workload.OrderKey(2)])
			}
			query := workload.MarketOp{Kind: workload.MarketQueryProduct, Product: 1}
			args, _ := json.Marshal(query)
			for i := 0; i < 8; i++ {
				res, err := cell.Invoke(fmt.Sprintf("q-%d", i), marketOpName(query), args, nil)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				// Synchronous cells return the result; the dataflow cell
				// acknowledges acceptance only.
				if model != StatefulDataflow {
					var got marketQueryResult
					if err := json.Unmarshal(res, &got); err != nil {
						t.Fatalf("query result: %v", err)
					}
					if got.Price != 250 || got.Stock != marketInitialStock-3 {
						t.Fatalf("query = %+v, want price 250 stock %d", got, marketInitialStock-3)
					}
				}
			}
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
			after := readAll(t, cell, auditKeys)
			for _, k := range auditKeys {
				if before[k] != after[k] {
					t.Errorf("%s: %d -> %d after read-only queries", k, before[k], after[k])
				}
			}
		})
	}
}

// TestReadOnlyContractEnforced pins the guard: an op falsely declared
// ReadOnly whose body writes fails on the synchronous cells and mutates
// nothing anywhere.
func TestReadOnlyContractEnforced(t *testing.T) {
	sneakyApp := func() *App {
		return NewApp("sneaky").Register(Op{
			Name:     "sneak-write",
			ReadOnly: true,
			Keys:     func([]byte) []string { return []string{"k"} },
			Body: func(tx Txn, _ []byte) ([]byte, error) {
				if err := tx.Put("k", EncodeInt(42)); err != nil {
					return nil, err
				}
				return nil, nil
			},
		})
	}
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(31, 3)
			cell, err := Deploy(model, sneakyApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			_, err = cell.Invoke("s-1", "sneak-write", nil, nil)
			// Synchronous cells surface the violation; the dataflow cell
			// accepts then drops the op (its honest failure mode).
			if model != StatefulDataflow && err == nil {
				t.Fatal("write from read-only op accepted")
			}
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
			if raw, found, _ := cell.Read("k"); found {
				t.Fatalf("read-only op wrote k=%d", DecodeInt(raw))
			}
		})
	}
}

// TestCoreReadOnlyConsumesNoWriteSchedule pins the deterministic cell's
// query path: reads answer from the committed MVCC view without an
// input-log append, a commit, or a write-schedule slot.
func TestCoreReadOnlyConsumesNoWriteSchedule(t *testing.T) {
	env := NewEnv(41, 3)
	cell, err := Deploy(Deterministic, MarketApp(), env)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	marketSeed(t, cell)
	rt := cell.(*coreCell).Runtime()
	logTP := mq.TopicPartition{Topic: "cell-market-txlog", Partition: 0}
	hwBefore, err := env.Broker.HighWater(logTP)
	if err != nil {
		t.Fatal(err)
	}
	commitsBefore := rt.Metrics().Counter("core.commits").Value()
	query := workload.MarketOp{Kind: workload.MarketQueryProduct, Product: 1}
	args, _ := json.Marshal(query)
	const queries = 100
	for i := 0; i < queries; i++ {
		if _, err := cell.Invoke(fmt.Sprintf("roq-%d", i), marketOpName(query), args, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Metrics().Counter("core.readonly").Value(); got != queries {
		t.Errorf("core.readonly = %d, want %d", got, queries)
	}
	if got := rt.Metrics().Counter("core.commits").Value(); got != commitsBefore {
		t.Errorf("queries consumed write-schedule commits: %d -> %d", commitsBefore, got)
	}
	hwAfter, err := env.Broker.HighWater(logTP)
	if err != nil {
		t.Fatal(err)
	}
	if hwAfter != hwBefore {
		t.Errorf("queries appended to the input log: high water %d -> %d", hwBefore, hwAfter)
	}
}

// TestActorReadOnlySkips2PC pins the actor cell's query path: a read-only
// op must not run the prepare/commit rounds, which shows up as strictly
// fewer simulated hops than the same-shaped write op.
func TestActorReadOnlySkips2PC(t *testing.T) {
	env := NewEnv(51, 3)
	cell, err := Deploy(Actors, MarketApp(), env)
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	marketSeed(t, cell)
	sys := cell.(*actorCell).sys
	roBefore := sys.Metrics().Counter("actor.txn_readonly").Value()
	commitsBefore := sys.Metrics().Counter("actor.txn_commits").Value()
	query := workload.MarketOp{Kind: workload.MarketQueryProduct, Product: 1}
	args, _ := json.Marshal(query)
	if _, err := cell.Invoke("aro-1", marketOpName(query), args, nil); err != nil {
		t.Fatal(err)
	}
	if got := sys.Metrics().Counter("actor.txn_readonly").Value(); got != roBefore+1 {
		t.Errorf("actor.txn_readonly = %d, want %d", got, roBefore+1)
	}
	if got := sys.Metrics().Counter("actor.txn_commits").Value(); got != commitsBefore {
		t.Errorf("read-only op ran the 2PC commit protocol: commits %d -> %d", commitsBefore, got)
	}
}
