// The -grid runner: the pinned statistical gate grid behind
// `make bench-gate`. Each entry pairs a grid.Spec (the declared axes,
// repeat count, and base seed) with the RunFunc that executes one row
// under one seed. The rows are chosen to be machine-independent-ish so
// the CI baseline travels: e10 drives a constructed 10k ops/s spin
// service, e16 runs the deterministic core's partition scaling on the
// modeled append (no real WAL), and e23 offers a fixed rate well below
// capacity so goodput tracks the offered rate, not the host's ceiling.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"tca"
	"tca/internal/core"
	"tca/internal/grid"
	"tca/internal/mq"
	"tca/internal/workload"
)

// gridEntry pairs one experiment's grid spec with its row runner.
type gridEntry struct {
	spec grid.Spec
	run  grid.RunFunc
}

// gateGrid declares the pinned gate rows: E10's three load models, a
// model-mode E16 partition-scaling pair, and one E23 shed-on overload
// point on the microservices cell.
func gateGrid(ops, repeats int, baseSeed int64) []gridEntry {
	return []gridEntry{
		{
			spec: grid.Spec{
				Experiment: "e10",
				Axes: []grid.Axis{
					{Name: "driver", Values: []string{"closed-4", "open-0.5x", "open-2x"}},
				},
				Repeats: repeats, BaseSeed: baseSeed, Ops: ops,
				ThroughputKey: "ops_s", AcceptKey: "p99_us",
			},
			run: runE10GridRow,
		},
		{
			spec: grid.Spec{
				Experiment: "e16",
				Axes: []grid.Axis{
					{Name: "mode", Values: []string{"model"}},
					{Name: "partitions", Values: []string{"1", "4"}},
				},
				Repeats: repeats, BaseSeed: baseSeed, Ops: ops,
				ThroughputKey: "tx_s", AcceptKey: "accept_p99_us",
			},
			run: runE16GridRow,
		},
		{
			// ops/4 arrivals at a fixed 2000/s: an experiment-sized run
			// (~ops/8000 seconds) whose goodput sits at the offered rate on
			// any host fast enough to run the suite at all.
			spec: grid.Spec{
				Experiment: "e23",
				Axes: []grid.Axis{
					{Name: "mix", Values: []string{"tpcc"}},
					{Name: "model", Values: []string{"microservices"}},
					{Name: "shed", Values: []string{"on"}},
					{Name: "rate", Values: []string{"2000"}},
				},
				Repeats: repeats, BaseSeed: baseSeed, Ops: ops / 4,
				ThroughputKey: "goodput_s", AcceptKey: "accept_p99_us", ApplyKey: "apply_p99_us",
			},
			run: runE23GridRow,
		},
		{
			// A 2-region async pass at a fixed sub-capacity rate: the WAN
			// is modeled (fabric trace), so the gated read p99 is the
			// pipeline's modeled latency — machine-independent by
			// construction — and tx/s tracks the offered rate.
			spec: grid.Spec{
				Experiment: "e24",
				Axes: []grid.Axis{
					{Name: "mode", Values: []string{"async"}},
					{Name: "regions", Values: []string{"2"}},
					{Name: "wan", Values: []string{"20ms"}},
					{Name: "read", Values: []string{"local"}},
					{Name: "rate", Values: []string{"500"}},
				},
				Repeats: repeats, BaseSeed: baseSeed, Ops: ops / 8,
				ThroughputKey: "tx_s", AcceptKey: "read_p99_us",
			},
			run: runE24GridRow,
		},
	}
}

// runGrid executes the gate grid and writes the grid.Summary JSON to
// stdout (progress narrates on stderr). Returns the process exit code.
func runGrid(ops, repeats int, baseSeed int64) int {
	sum := grid.Summary{OpsPerCell: ops, Repeats: repeats, BaseSeed: baseSeed}
	for _, e := range gateGrid(ops, repeats, baseSeed) {
		results, err := grid.RunObserved(e.spec, e.run, func(row grid.Row, r int) {
			fmt.Fprintf(os.Stderr, "grid %s %s repeat %d/%d\n",
				e.spec.Experiment, row.Name(), r+1, e.spec.Repeats)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcabench: %v\n", err)
			return 1
		}
		for _, res := range results {
			sum.Rows = append(sum.Rows, res.BenchRow(e.spec))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "tcabench: %v\n", err)
		return 1
	}
	return 0
}

// runE10GridRow measures one load model against the constructed 10k
// ops/s spin service. The closed driver has no arrival randomness (its
// reservoir subsamples under a fixed stream); the open drivers seed
// their Poisson schedules per repeat.
func runE10GridRow(row grid.Row, seed int64, ops int) (grid.Sample, error) {
	service := workload.SpinService(1, 100*time.Microsecond)
	var res workload.DriverResult
	switch d := row.Knob("driver"); d {
	case "closed-4":
		res = workload.ClosedLoop(4, ops/4, 0, service)
	case "open-0.5x":
		res = workload.OpenLoop(seed, ops, 5000, service)
	case "open-2x":
		res = workload.OpenLoop(seed, ops, 20000, service)
	default:
		return grid.Sample{}, fmt.Errorf("unknown e10 driver %q", d)
	}
	return grid.Sample{Throughput: res.Throughput(), Accept: res.LatencySamples}, nil
}

// runE16GridRow measures the deterministic core's partition scaling in
// the requested mode ("model" = modeled append, no real WAL — the
// machine-independent gate configuration; "wal" = real temp-dir log).
func runE16GridRow(row grid.Row, seed int64, ops int) (grid.Sample, error) {
	parts, err := strconv.Atoi(row.Knob("partitions"))
	if err != nil {
		return grid.Sample{}, fmt.Errorf("bad e16 partitions %q", row.Knob("partitions"))
	}
	var model bool
	switch m := row.Knob("mode"); m {
	case "model":
		model = true
	case "wal":
		model = false
	default:
		return grid.Sample{}, fmt.Errorf("unknown e16 mode %q", m)
	}
	rate, accept, err := runE16Cell(parts, ops, model, seed)
	if err != nil {
		return grid.Sample{}, err
	}
	return grid.Sample{Throughput: rate, Accept: accept}, nil
}

// runE16Cell drives one partition-scaling cell: shard-local touch ops
// from 64 clients against `parts` log partitions. In model mode the
// append latency is the modeled 80µs SequenceDelay (no filesystem); off
// it, the cell runs on a real write-ahead log in a throwaway directory
// removed before the function returns — per cell, so repeated calls
// (grid repeats, the E16 table sweep) never accumulate temp dirs.
// Returns the run rate and the per-submit accept samples from a
// reservoir seeded with seed.
func runE16Cell(parts, ops int, model bool, seed int64) (float64, []time.Duration, error) {
	cfg := core.Config{
		Name:       fmt.Sprintf("bench16-%d", parts),
		Workers:    16,
		Partitions: parts,
	}
	if model {
		cfg.SequenceDelay = 80 * time.Microsecond
	} else {
		dir, err := os.MkdirTemp("", "tcabench-e16-")
		if err != nil {
			return 0, nil, err
		}
		defer os.RemoveAll(dir)
		cfg.LogDir = dir
	}
	rt := core.NewRuntime(mq.NewBroker(), cfg)
	rt.Register("touch", func(tx *core.Tx, args []byte) ([]byte, error) {
		key := string(args)
		raw, _, _ := tx.Get(key)
		return nil, tx.Put(key, append(raw[:len(raw):len(raw)], 'x'))
	})
	if err := rt.Start(); err != nil {
		return 0, nil, err
	}
	defer rt.Stop()
	acct := func(a int) string { return fmt.Sprintf("acc/%d", a) }
	const accounts = 256
	// Shard-local only: pair each account with a partition-mate.
	byPart := make(map[int][]int)
	for a := 0; a < accounts; a++ {
		p := rt.PartitionOf(acct(a))
		byPart[p] = append(byPart[p], a)
	}
	var pairs [][2]int
	for _, group := range byPart {
		for i := 0; i+1 < len(group); i += 2 {
			pairs = append(pairs, [2]int{group[i], group[i+1]})
		}
	}
	const clients = 64
	accept := workload.NewLatencyReservoir(0, seed)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < ops; i += clients {
				pair := pairs[i%len(pairs)]
				keys := []string{acct(pair[0]), acct(pair[1])}
				t0 := time.Now()
				rt.Submit(fmt.Sprintf("e16-%d-%d-%d", seed, parts, i), "touch", keys, []byte(keys[0]), nil)
				accept.Record(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(ops) / elapsed.Seconds(), accept.Samples(), nil
}

// runE23GridRow measures one overload-frontier point through the shared
// driver tca.RunOverloadCell, with the arrival schedule, op stream, and
// reservoir sampling all keyed to the repeat seed.
func runE23GridRow(row grid.Row, seed int64, ops int) (grid.Sample, error) {
	model, err := parseModel(row.Knob("model"))
	if err != nil {
		return grid.Sample{}, err
	}
	rate, err := strconv.ParseFloat(row.Knob("rate"), 64)
	if err != nil {
		return grid.Sample{}, fmt.Errorf("bad e23 rate %q", row.Knob("rate"))
	}
	res, err := tca.RunOverloadCell(row.Knob("mix"), model, rate, ops, tca.OverloadOptions{
		Shed:   row.Knob("shed") == "on",
		LogDir: os.TempDir(),
		Seed:   seed,
	})
	if err != nil {
		return grid.Sample{}, err
	}
	return grid.Sample{
		Throughput: res.Goodput(),
		Accept:     res.AcceptSamples,
		Apply:      res.ApplySamples,
		Extra:      map[string]float64{"shed_pct": 100 * res.ShedFraction()},
	}, nil
}

// runE24GridRow measures one geo-frontier point through the shared
// driver tca.RunGeoCell in its paced open-loop mode. Everything the row
// gates is modeled (fabric-trace) time, so the baseline travels across
// hosts; the run must also converge exactly and audit clean, or the row
// errors out.
func runE24GridRow(row grid.Row, seed int64, ops int) (grid.Sample, error) {
	regions, err := strconv.Atoi(row.Knob("regions"))
	if err != nil {
		return grid.Sample{}, fmt.Errorf("bad e24 regions %q", row.Knob("regions"))
	}
	wan, err := time.ParseDuration(row.Knob("wan"))
	if err != nil {
		return grid.Sample{}, fmt.Errorf("bad e24 wan %q", row.Knob("wan"))
	}
	rate, err := strconv.ParseFloat(row.Knob("rate"), 64)
	if err != nil {
		return grid.Sample{}, fmt.Errorf("bad e24 rate %q", row.Knob("rate"))
	}
	var mode tca.ReplicationMode
	switch row.Knob("mode") {
	case "async":
		mode = tca.AsyncReplication
	case "sequenced":
		mode = tca.SequencedReplication
	default:
		return grid.Sample{}, fmt.Errorf("unknown e24 mode %q", row.Knob("mode"))
	}
	var read tca.ReadMode
	switch row.Knob("read") {
	case "local":
		read = tca.ReadLocal
	case "home":
		read = tca.ReadHome
	default:
		return grid.Sample{}, fmt.Errorf("unknown e24 read mode %q", row.Knob("read"))
	}
	res, err := tca.RunGeoCell(tca.GeoConfig{
		Mode: mode, Regions: regions, WAN: wan, Read: read,
		Rate: rate, Ops: ops, Seed: seed,
	})
	if err != nil {
		return grid.Sample{}, err
	}
	if n := len(res.Anomalies); n > 0 {
		return grid.Sample{}, fmt.Errorf("e24 row audited %d anomalies (first: %s)", n, res.Anomalies[0])
	}
	if !res.Converged {
		return grid.Sample{}, fmt.Errorf("e24 replicas diverged on %d keys (first: %s)", len(res.Diverged), res.Diverged[0])
	}
	accepted := res.Issued - res.Rejected
	return grid.Sample{
		Throughput: float64(accepted) / res.Elapsed.Seconds(),
		Accept:     res.ReadSamples,
		Extra: map[string]float64{
			"max_lag_ms":     float64(res.Staleness.MaxLag) / 1e6,
			"shipped_writes": float64(res.Staleness.ShippedWrites),
		},
	}, nil
}

// parseModel resolves a model's String() name back to the model.
func parseModel(name string) (tca.ProgrammingModel, error) {
	for _, m := range allModels {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q", name)
}
