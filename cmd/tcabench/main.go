// Command tcabench runs the repository's headline experiments directly
// (without the testing harness) and prints one table per experiment — the
// rows EXPERIMENTS.md records. Use `go test -bench .` for the full suite
// with statistically settled numbers; tcabench is the quick look.
//
// With -json the tables are replaced by a machine-readable summary on
// stdout (one row object per table row, metrics keyed by name), which
// `make bench-json` writes to BENCH_latest.json so the perf trajectory
// can be tracked across PRs.
//
// With -grid the single-run tables are replaced by the statistical gate
// grid (internal/grid): each pinned row runs -repeats times with the
// seed varied deterministically (-seed + repeat index), and the summary
// carries mean/std/min/max throughput plus pooled-p99 latency per row —
// what `make bench-gate` diffs against ci/bench_baseline.json.
//
// `tcabench -compare old.json new.json` diffs two summaries and flags
// throughput regressions beyond -threshold (default ±20%). When both
// sides carry repeat spreads the gate is std-aware: a delta inside
// 2× the pooled std is reported as noise, not failed. Rows present in
// old but missing from new fail the comparison outright.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"tca"
	"tca/internal/core"
	"tca/internal/faas"
	"tca/internal/fabric"
	"tca/internal/grid"
	"tca/internal/metrics"
	"tca/internal/mq"
	"tca/internal/workload"
)

// allModels is the five-cell sweep order shared by the matrix experiments.
var allModels = []tca.ProgrammingModel{
	tca.Microservices, tca.Actors, tca.CloudFunctions, tca.StatefulDataflow, tca.Deterministic,
}

// reporter accumulates rows for the -json summary alongside the tables.
// The row schema (grid.BenchRow) is shared with the grid runner and the
// comparison, so every emitter and consumer agree on what a row means.
type reporter struct {
	rows []grid.BenchRow
}

func (r *reporter) add(exp, row string, m map[string]float64) {
	r.rows = append(r.rows, grid.BenchRow{Experiment: exp, Row: row, Metrics: m})
}

// auditOn is the -audit escape hatch: off drops the live auditors (and
// the final order verdict) from the concurrency experiments, measuring
// the raw harness.
var auditOn = true

// arrivalMode is the -arrival selection for e23's open-loop stream.
var arrivalMode = "poisson"

func main() {
	ops := flag.Int("ops", 500, "operations per experiment cell")
	experiment := flag.String("experiment", "all",
		"comma-separated experiments to run: f1,e6,e10,e16,e17,e18,e19,e20,e21,e22,e23,e24 (or all)")
	jsonOut := flag.Bool("json", false,
		"emit a machine-readable JSON summary on stdout instead of tables")
	audit := flag.String("audit", "live",
		"concurrency-experiment auditing: live (incremental auditors inside the loop) or off")
	arrival := flag.String("arrival", "poisson",
		"e23 arrival process: poisson (smooth) or bursty (2-state MMPP, same mean rate)")
	compare := flag.Bool("compare", false,
		"compare two -json summaries instead of running: tcabench -compare old.json new.json")
	threshold := flag.Float64("threshold", 20,
		"with -compare, flag throughput deltas beyond this percentage")
	gridRun := flag.Bool("grid", false,
		"run the pinned statistical gate grid instead of the tables; JSON summary on stdout")
	repeats := flag.Int("repeats", 3,
		"with -grid, how many seeded repeats each row runs")
	seed := flag.Int64("seed", 1,
		"with -grid, the base seed (repeat r uses seed base+r)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "tcabench: -compare needs exactly two summary files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}
	if *gridRun {
		os.Exit(runGrid(*ops, *repeats, *seed))
	}
	switch *audit {
	case "live":
		auditOn = true
	case "off":
		auditOn = false
	default:
		fmt.Fprintf(os.Stderr, "tcabench: unknown -audit mode %q (use live or off)\n", *audit)
		os.Exit(2)
	}
	switch *arrival {
	case "poisson", "bursty":
		arrivalMode = *arrival
	default:
		fmt.Fprintf(os.Stderr, "tcabench: unknown -arrival process %q (use poisson or bursty)\n", *arrival)
		os.Exit(2)
	}

	known := []struct {
		name string
		run  func(*tabwriter.Writer, *reporter, int)
	}{
		{"f1", runF1},
		{"e6", runE6},
		{"e10", runE10},
		{"e16", runE16},
		{"e17", runE17},
		{"e18", runE18},
		{"e19", runE19},
		{"e20", runE20},
		{"e21", runE21},
		{"e22", runE22},
		{"e23", runE23},
		{"e24", runE24},
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(strings.ToLower(*experiment), ",") {
		name = strings.TrimSpace(name)
		valid := name == "all"
		for _, exp := range known {
			valid = valid || name == exp.name
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "tcabench: unknown experiment %q (use f1,e6,e10,e16,e17,e18,e19,e20,e21,e22,e23,e24 or all)\n", name)
			os.Exit(2)
		}
		selected[name] = true
	}
	tableOut := io.Writer(os.Stdout)
	if *jsonOut {
		tableOut = io.Discard
	}
	w := tabwriter.NewWriter(tableOut, 2, 4, 2, ' ', 0)
	rep := &reporter{}
	for _, exp := range known {
		if selected["all"] || selected[exp.name] {
			exp.run(w, rep, *ops)
		}
	}
	w.Flush()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(grid.Summary{OpsPerCell: *ops, Rows: rep.rows}); err != nil {
			fmt.Fprintf(os.Stderr, "tcabench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runF1 prints the taxonomy matrix: the same bank workload under every
// programming model, with per-cell guarantees and costs.
func runF1(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "F1: taxonomy matrix — bank transfers under every programming model")
	fmt.Fprintln(w, "model\treal-us/op\tsim-lat-p50\tsim-lat-p99\thops/op\tguarantee")
	for _, model := range allModels {
		env := tca.NewEnv(1, 3)
		bank, err := tca.NewBank(model, env)
		if err != nil {
			fmt.Fprintf(w, "%v\terror: %v\n", model, err)
			continue
		}
		const accounts = 64
		for a := 0; a < accounts; a++ {
			bank.Deposit(a, 1_000_000)
		}
		gen := workload.NewBank(7, accounts, 0)
		simHist := metrics.NewHistogram()
		var hops int64
		start := time.Now()
		for i := 0; i < ops; i++ {
			op := gen.Next()
			tr := fabric.NewTrace()
			bank.Transfer(fmt.Sprintf("f1-%d", i), op.From, op.To, op.Amount, tr)
			simHist.RecordDuration(tr.Total())
			hops += int64(tr.Hops())
		}
		bank.Settle()
		elapsed := time.Since(start)
		snap := simHist.Snapshot()
		fmt.Fprintf(w, "%v\t%.1f\t%v\t%v\t%.1f\t%s\n",
			model,
			float64(elapsed.Microseconds())/float64(ops),
			time.Duration(snap.P50).Round(time.Microsecond),
			time.Duration(snap.P99).Round(time.Microsecond),
			float64(hops)/float64(ops),
			bank.Guarantee())
		rep.add("f1", model.String(), map[string]float64{
			"real_us_op": float64(elapsed.Microseconds()) / float64(ops),
			"sim_p50_us": float64(snap.P50) / 1e3,
			"sim_p99_us": float64(snap.P99) / 1e3,
			"hops_op":    float64(hops) / float64(ops),
		})
		bank.Close()
	}
	fmt.Fprintln(w)
}

// runE6 prints the cold-start experiment.
func runE6(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E6: FaaS cold starts — simulated invocation latency")
	fmt.Fprintln(w, "policy\tsim-p50\tsim-p99\tcold-starts")
	for _, tc := range []struct {
		name       string
		evictEvery int
	}{
		{"always-warm", 0},
		{"evict-every-10", 10},
		{"evict-every-2", 2},
	} {
		p := faas.NewPlatform(fabric.SingleNode(), faas.DefaultConfig())
		p.Register("fn", func(ctx *faas.Ctx, payload []byte) ([]byte, error) { return nil, nil })
		hist := metrics.NewHistogram()
		for i := 0; i < ops; i++ {
			if tc.evictEvery > 0 && i%tc.evictEvery == 0 {
				p.EvictIdle("fn")
			}
			tr := fabric.NewTrace()
			p.Invoke("fn", "k", nil, tr)
			hist.RecordDuration(tr.Total())
		}
		snap := hist.Snapshot()
		cold := p.Metrics().Counter("faas.cold_starts").Value()
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\n",
			tc.name,
			time.Duration(snap.P50).Round(time.Microsecond),
			time.Duration(snap.P99).Round(time.Microsecond),
			cold)
		rep.add("e6", tc.name, map[string]float64{
			"sim_p50_us":  float64(snap.P50) / 1e3,
			"sim_p99_us":  float64(snap.P99) / 1e3,
			"cold_starts": float64(cold),
		})
	}
	fmt.Fprintln(w)
}

// runE16 prints the deterministic core's partition-scaling experiment:
// the same transfer workload against 1/2/4/8 log partitions, all
// shard-local traffic, on the real write-ahead log (a throwaway temp
// directory per cell, removed per cell) — the serial append cost
// sharding overlaps. The cell driver (runE16Cell, in grid.go) is shared
// with the gate grid's model-mode rows.
func runE16(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E16: core partition scaling — shard-local transfers, real WAL per partition")
	fmt.Fprintln(w, "partitions\tthroughput\tspeedup")
	var base float64
	for _, parts := range []int{1, 2, 4, 8} {
		rate, _, err := runE16Cell(parts, ops, false, 11)
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", parts, err)
			continue
		}
		if parts == 1 {
			base = rate
		}
		fmt.Fprintf(w, "%d\t%.0f tx/s\t%.1fx\n", parts, rate, rate/base)
		rep.add("e16", fmt.Sprintf("partitions=%d", parts), map[string]float64{
			"tx_s":    rate,
			"speedup": rate / base,
		})
	}
	fmt.Fprintln(w)
}

// runMatrixCell drives one cell with a seeded op stream and reports the
// shared matrix metrics. next returns the op name, its args and whether
// the op should be recorded against the audit when accepted; record
// replays it on the serial reference; verify returns the anomalies.
func runMatrixCell(cell tca.Cell, ops int,
	next func(i int) (name string, args []byte),
	record func(i int, accepted bool),
	verify func() ([]string, error),
) (rate float64, p50, p99 time.Duration, anomalies int, err error) {
	simHist := metrics.NewHistogram()
	start := time.Now()
	for i := 0; i < ops; i++ {
		name, args := next(i)
		tr := fabric.NewTrace()
		_, invErr := cell.Invoke(fmt.Sprintf("op-%d", i), name, args, tr)
		record(i, invErr == nil)
		simHist.RecordDuration(tr.Total())
		// Bound the eventual cell's in-flight choreography (wide E19
		// posts are hundreds of chunked messages each, so keep the
		// backlog short).
		if cell.Model() == tca.StatefulDataflow && i%64 == 63 {
			cell.Settle()
		}
	}
	if err = cell.Settle(); err != nil {
		return
	}
	elapsed := time.Since(start)
	var anomalyList []string
	anomalyList, err = verify()
	if err != nil {
		return
	}
	snap := simHist.Snapshot()
	return float64(ops) / elapsed.Seconds(),
		time.Duration(snap.P50).Round(time.Microsecond),
		time.Duration(snap.P99).Round(time.Microsecond),
		len(anomalyList), nil
}

// runE17 prints the TPC-C taxonomy matrix: the same seeded
// NewOrder/Payment stream under every programming model through the
// application layer (tca.App), with the integrity-constraint audit per
// cell — swept over the cross-warehouse rate (the app-level counterpart
// of E16's cross-partition ratio) and the query rate (TPCCConfig.
// QueryFrac: the standard's OrderStatus/StockLevel on every cell's
// ReadOnly fast path — the matrix's read-path column).
func runE17(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E17: TPC-C matrix — one tca.App, every programming model, audited invariants")
	fmt.Fprintln(w, "model\twh\tremote\tquery\ttx/s\tsim-p50\tsim-p99\tanomalies")
	for _, sweep := range []struct {
		warehouses int
		remotePct  int
		queryPct   int
	}{
		{1, 0, 0}, {4, 0, 0}, {4, 50, 0}, {4, 0, 30},
	} {
		cfg := workload.DefaultTPCCConfig(sweep.warehouses)
		cfg.RemoteFrac = workload.RemoteFrac(float64(sweep.remotePct) / 100)
		cfg.QueryFrac = float64(sweep.queryPct) / 100
		for _, model := range allModels {
			env := tca.NewEnv(1, 3)
			cell, err := tca.Deploy(model, tca.TPCCApp(), env)
			if err != nil {
				fmt.Fprintf(w, "%v\t%d\t%d%%\t%d%%\terror: %v\n", model, sweep.warehouses, sweep.remotePct, sweep.queryPct, err)
				continue
			}
			gen := workload.NewTPCC(11, cfg)
			audit := tca.NewTPCCAuditor()
			var pending workload.TPCCOp
			rate, p50, p99, anomalies, err := runMatrixCell(cell, ops,
				func(i int) (string, []byte) {
					pending = gen.Next()
					args, _ := json.Marshal(pending)
					return pending.Kind.String(), args
				},
				func(i int, accepted bool) {
					if accepted || cell.Model() == tca.StatefulDataflow {
						audit.RecordOp(pending)
					}
				},
				func() ([]string, error) { return audit.Verify(cell) },
			)
			if err != nil {
				fmt.Fprintf(w, "%v\t%d\t%d%%\t%d%%\terror: %v\n", model, sweep.warehouses, sweep.remotePct, sweep.queryPct, err)
				cell.Close()
				continue
			}
			fmt.Fprintf(w, "%v\t%d\t%d%%\t%d%%\t%.0f\t%v\t%v\t%d\n",
				model, sweep.warehouses, sweep.remotePct, sweep.queryPct, rate, p50, p99, anomalies)
			rep.add("e17", fmt.Sprintf("%s/wh=%d/remote=%d%%/query=%d%%", model, sweep.warehouses, sweep.remotePct, sweep.queryPct),
				map[string]float64{
					"tx_s":       rate,
					"sim_p50_us": float64(p50) / 1e3,
					"sim_p99_us": float64(p99) / 1e3,
					"anomalies":  float64(anomalies),
				})
			cell.Close()
		}
	}
	fmt.Fprintln(w)
}

// runE18 prints the marketplace taxonomy matrix (supersedes E15): one
// MarketApp under every programming model, audited for the
// checkout/price write skew, plus the read-only path A/B on the two
// cells whose query shortcut is largest.
func runE18(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E18: marketplace matrix — carts/checkouts/queries/price updates, write-skew audit")
	fmt.Fprintln(w, "model\tzipf\ttx/s\tsim-p50\tsim-p99\tanomalies")
	for _, zipf := range []float64{1.1, 4.0} {
		cfg := workload.DefaultMarketConfig()
		cfg.ZipfS = zipf
		for _, model := range allModels {
			env := tca.NewEnv(1, 3)
			cell, err := tca.Deploy(model, tca.MarketApp(), env)
			if err != nil {
				fmt.Fprintf(w, "%v\t%.1f\terror: %v\n", model, zipf, err)
				continue
			}
			gen := workload.NewMarket(5, cfg)
			audit := tca.NewMarketAuditor()
			var pending workload.MarketOp
			rate, p50, p99, anomalies, err := runMatrixCell(cell, ops,
				func(i int) (string, []byte) {
					pending = gen.Next()
					args, _ := json.Marshal(pending)
					return pending.Kind.String(), args
				},
				func(i int, accepted bool) {
					if accepted || cell.Model() == tca.StatefulDataflow {
						audit.RecordOp(pending)
					}
				},
				func() ([]string, error) { return audit.Verify(cell) },
			)
			if err != nil {
				fmt.Fprintf(w, "%v\t%.1f\terror: %v\n", model, zipf, err)
				cell.Close()
				continue
			}
			fmt.Fprintf(w, "%v\t%.1f\t%.0f\t%v\t%v\t%d\n", model, zipf, rate, p50, p99, anomalies)
			rep.add("e18", fmt.Sprintf("%s/zipf=%.1f", model, zipf), map[string]float64{
				"tx_s":       rate,
				"sim_p50_us": float64(p50) / 1e3,
				"sim_p99_us": float64(p99) / 1e3,
				"anomalies":  float64(anomalies),
			})
			cell.Close()
		}
	}
	fmt.Fprintln(w, "read-only path A/B — pure query-product stream, hint honored vs stripped")
	fmt.Fprintln(w, "model\tread-only\tquery/s\tsim-p50")
	queryName := workload.MarketQueryProduct.String()
	for _, model := range []tca.ProgrammingModel{tca.Actors, tca.Deterministic} {
		for _, hint := range []bool{true, false} {
			env := tca.NewEnv(1, 3)
			op, _ := tca.MarketApp().Op(queryName)
			op.ReadOnly = hint
			cell, err := tca.Deploy(model, tca.NewApp("market-query").Register(op), env)
			if err != nil {
				fmt.Fprintf(w, "%v\t%v\terror: %v\n", model, hint, err)
				continue
			}
			query := workload.MarketOp{Kind: workload.MarketQueryProduct, Product: 1}
			args, _ := json.Marshal(query)
			simHist := metrics.NewHistogram()
			start := time.Now()
			for i := 0; i < ops; i++ {
				tr := fabric.NewTrace()
				cell.Invoke(fmt.Sprintf("rp-%d", i), queryName, args, tr)
				simHist.RecordDuration(tr.Total())
			}
			elapsed := time.Since(start)
			snap := simHist.Snapshot()
			rate := float64(ops) / elapsed.Seconds()
			fmt.Fprintf(w, "%v\t%v\t%.0f\t%v\n",
				model, hint, rate, time.Duration(snap.P50).Round(time.Microsecond))
			rep.add("e18", fmt.Sprintf("readpath/%s/ro=%v", model, hint), map[string]float64{
				"query_s":    rate,
				"sim_p50_us": float64(snap.P50) / 1e3,
			})
			cell.Close()
		}
	}
	fmt.Fprintln(w)
}

// runE19 prints the social-network matrix: compose-post fan-out whose
// declared key set is the follower-timeline list, under every model, with
// one read-timeline query per five ops and 10% follow/unfollow churn
// mutating the graph between posts. The sweep crosses the statefun
// runtime's 32-send budget: wide posts chunk their choreography across
// continuation rounds instead of failing, so the old cliff is now a cost
// curve. The whole state model commutes, so every cell must audit clean
// (exact delivery + read-your-writes) — cost curves, not anomalies.
func runE19(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E19: social matrix — compose-post fan-out over follower timelines, exact delivery audit")
	fmt.Fprintln(w, "model\tfanout\ttx/s\tsim-p50\tsim-p99\tanomalies")
	for _, fanout := range []int{8, 24, 64, 128} {
		users := 64
		if users < 2*fanout {
			users = 2 * fanout
		}
		for _, model := range allModels {
			env := tca.NewEnv(1, 3)
			// Partitions shards the deterministic cell so wide posts pay
			// the cross-partition path; other models ignore it.
			cell, err := tca.DeployWith(model, tca.SocialApp(), env, tca.Options{Partitions: 4})
			if err != nil {
				fmt.Fprintf(w, "%v\t%d\terror: %v\n", model, fanout, err)
				continue
			}
			gen := workload.NewSocialChurn(9, users, fanout, 0.10)
			audit := tca.NewSocialAuditor()
			var pending workload.SocialOp
			var isQuery bool
			rate, p50, p99, anomalies, err := runMatrixCell(cell, ops,
				func(i int) (string, []byte) {
					if isQuery = i%5 == 4; isQuery {
						args, _ := json.Marshal(struct {
							User int `json:"user"`
						}{i % users})
						return tca.SocialReadTimeline, args
					}
					pending = gen.Next()
					args, _ := json.Marshal(pending)
					return tca.SocialOpName(pending), args
				},
				func(i int, accepted bool) {
					if !isQuery && (accepted || cell.Model() == tca.StatefulDataflow) {
						audit.RecordOp(pending)
					}
				},
				func() ([]string, error) { return audit.Verify(cell) },
			)
			if err != nil {
				fmt.Fprintf(w, "%v\t%d\terror: %v\n", model, fanout, err)
				cell.Close()
				continue
			}
			fmt.Fprintf(w, "%v\t%d\t%.0f\t%v\t%v\t%d\n", model, fanout, rate, p50, p99, anomalies)
			rep.add("e19", fmt.Sprintf("%s/fanout=%d", model, fanout), map[string]float64{
				"tx_s":       rate,
				"sim_p50_us": float64(p50) / 1e3,
				"sim_p99_us": float64(p99) / 1e3,
				"anomalies":  float64(anomalies),
			})
			cell.Close()
		}
	}
	fmt.Fprintln(w)
}

// runE20 prints the concurrency matrix: every cell driven through
// pipelined client Sessions (Cell.Submit) by workload.ClosedLoop at
// rising client counts, on the TPC-C and social mixes, via the shared
// driver tca.RunConcurrencyCell (the same code path as
// BenchmarkE20_ConcurrencyMatrix, so the two surfaces cannot drift),
// with the deterministic cell on a real temp-dir write-ahead log.
// Reports pipelined throughput, the accept-vs-apply latency split
// (acknowledged is not applied on the log-based cells), rejected
// submissions, and the live auditor's verdict: exact anomalies (no
// serializable completion order explains the value), live constraint
// violations, mismatches a legal reorder explains (the false positives a
// completion-order audit would have reported), and precedence-graph
// cycles. -audit=off drops the auditor and the last four columns.
func runE20(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E20: concurrency matrix — pipelined Sessions, accept vs apply latency, audited live")
	fmt.Fprintln(w, "mix\tmodel\tclients\ttx/s\taccept-p50\taccept-p99\tapply-p50\tapply-p99\trejected\tanomalies\tviol\treorder\tcycles")
	for _, mix := range tca.ConcurrencyMixes {
		for _, clients := range []int{1, 4, 16, 64} {
			for _, model := range allModels {
				res, err := tca.RunConcurrencyCellOpts(mix, model, clients, ops,
					tca.ConcurrencyOptions{Audit: auditOn, LogDir: os.TempDir()})
				if err != nil {
					fmt.Fprintf(w, "%s\t%v\t%d\terror: %v\n", mix, model, clients, err)
					continue
				}
				fmt.Fprintf(w, "%s\t%v\t%d\t%.0f\t%v\t%v\t%v\t%v\t%d\t%d\t%d\t%d\t%d\n",
					mix, model, clients, res.Throughput(),
					res.AcceptP50.Round(time.Microsecond), res.AcceptP99.Round(time.Microsecond),
					res.ApplyP50.Round(time.Microsecond), res.ApplyP99.Round(time.Microsecond),
					res.Rejected, len(res.Anomalies), res.Violations, res.Reordered, res.GraphCycles)
				rep.add("e20", fmt.Sprintf("%s/%s/clients=%d", mix, model, clients), map[string]float64{
					"tx_s":          res.Throughput(),
					"accept_p50_us": float64(res.AcceptP50) / 1e3,
					"accept_p99_us": float64(res.AcceptP99) / 1e3,
					"apply_p50_us":  float64(res.ApplyP50) / 1e3,
					"apply_p99_us":  float64(res.ApplyP99) / 1e3,
					"rejected":      float64(res.Rejected),
					"anomalies":     float64(len(res.Anomalies)),
					"violations":    float64(res.Violations),
					"reordered":     float64(res.Reordered),
					"graph_cycles":  float64(res.GraphCycles),
				})
			}
		}
	}
	fmt.Fprintln(w)
}

// e21Models are the two log-based cells E21 sweeps: the isolated
// deterministic core (the audit should confirm exactness) and the
// unisolated dataflow cell (the audit should attribute its drift), the
// two ends of the taxonomy's consistency spectrum.
var e21Models = []tca.ProgrammingModel{tca.Deterministic, tca.StatefulDataflow}

// runE21 prints the live-audit-overhead sweep: all four workload mixes
// under their incremental auditors at rising client counts, each cell run
// twice — auditing on and off — so the overhead of in-loop auditing
// (Record + O(delta) Observe + bounded live sampling) is a measured
// column, not a claim. With -audit=off only the baseline runs.
func runE21(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E21: live-audit overhead — incremental auditors inside the concurrency loop")
	fmt.Fprintln(w, "mix\tmodel\tclients\ttx/s audited\ttx/s off\toverhead\tanomalies\tviol\treorder\tcycles")
	for _, mix := range tca.AuditedMixes {
		for _, clients := range []int{1, 4, 16, 64} {
			for _, model := range e21Models {
				off, err := tca.RunConcurrencyCellOpts(mix, model, clients, ops, tca.ConcurrencyOptions{Audit: false})
				if err != nil {
					fmt.Fprintf(w, "%s\t%v\t%d\terror: %v\n", mix, model, clients, err)
					continue
				}
				if !auditOn {
					fmt.Fprintf(w, "%s\t%v\t%d\t-\t%.0f\t-\t-\t-\t-\t-\n", mix, model, clients, off.Throughput())
					rep.add("e21", fmt.Sprintf("%s/%s/clients=%d", mix, model, clients), map[string]float64{
						"tx_s_off": off.Throughput(),
					})
					continue
				}
				on, err := tca.RunConcurrencyCellOpts(mix, model, clients, ops, tca.ConcurrencyOptions{Audit: true})
				if err != nil {
					fmt.Fprintf(w, "%s\t%v\t%d\terror: %v\n", mix, model, clients, err)
					continue
				}
				overhead := 0.0
				if off.Throughput() > 0 {
					overhead = 100 * (1 - on.Throughput()/off.Throughput())
				}
				fmt.Fprintf(w, "%s\t%v\t%d\t%.0f\t%.0f\t%.1f%%\t%d\t%d\t%d\t%d\n",
					mix, model, clients, on.Throughput(), off.Throughput(), overhead,
					len(on.Anomalies), on.Violations, on.Reordered, on.GraphCycles)
				rep.add("e21", fmt.Sprintf("%s/%s/clients=%d", mix, model, clients), map[string]float64{
					"tx_s_audited":       on.Throughput(),
					"tx_s_off":           off.Throughput(),
					"audit_overhead_pct": overhead,
					"anomalies":          float64(len(on.Anomalies)),
					"violations":         float64(on.Violations),
					"reordered":          float64(on.Reordered),
					"graph_cycles":       float64(on.GraphCycles),
				})
			}
		}
	}
	fmt.Fprintln(w)
}

// runE10 prints the open-vs-closed-loop experiment.
func runE10(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E10: open vs closed load models — service capacity 10k ops/s")
	fmt.Fprintln(w, "driver\tthroughput\tp50\tp99")
	service := workload.SpinService(1, 100*time.Microsecond)
	rows := []struct {
		name string
		run  func() workload.DriverResult
	}{
		{"closed 4 clients", func() workload.DriverResult {
			return workload.ClosedLoop(4, ops/4, 0, service)
		}},
		{"open 0.5x capacity", func() workload.DriverResult {
			return workload.OpenLoop(1, ops, 5000, service)
		}},
		{"open 2x capacity", func() workload.DriverResult {
			return workload.OpenLoop(1, ops, 20000, service)
		}},
	}
	for _, r := range rows {
		res := r.run()
		fmt.Fprintf(w, "%s\t%.0f ops/s\t%v\t%v\n",
			r.name, res.Throughput(),
			time.Duration(res.Latency.P50).Round(time.Microsecond),
			time.Duration(res.Latency.P99).Round(time.Microsecond))
		rep.add("e10", r.name, map[string]float64{
			"ops_s":  res.Throughput(),
			"p50_us": float64(res.Latency.P50) / 1e3,
			"p99_us": float64(res.Latency.P99) / 1e3,
		})
	}
	fmt.Fprintln(w)
}

// e22Policies are the fsync policies the durability frontier sweeps.
var e22Policies = []struct {
	name   string
	policy core.FsyncPolicy
}{
	{"batch", core.FsyncEveryBatch},
	{"1ms", core.FsyncInterval},
	{"none", core.FsyncNone},
}

// runE22 prints the durability frontier: the deterministic core on the
// real write-ahead log, sweeping the group-append cap
// (core.Config.MaxGroupAppend) against the fsync policy. 64 pipelined
// submitters share group appends, so larger caps divide each fsync
// across more transactions; fsync=none is the page-cache ceiling the
// durable rows are judged against. accept-p99 is the 99th-percentile
// SubmitAsync latency — the tail cost of "acknowledged means on disk".
// The statistically settled numbers live in
// BenchmarkE22_DurabilityFrontier; this is the same sweep at -ops scale.
func runE22(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E22: durability frontier — real WAL group appends, batch cap x fsync policy")
	fmt.Fprintln(w, "batch\tfsync\ttx/s\taccept-p99\trecords/append")
	for _, batch := range []int{1, 8, 64, 256} {
		for _, pol := range e22Policies {
			rate, p99, perAppend, err := runE22Cell(batch, pol.policy, ops)
			if err != nil {
				fmt.Fprintf(w, "%d\t%s\terror: %v\n", batch, pol.name, err)
				continue
			}
			fmt.Fprintf(w, "%d\t%s\t%.0f\t%v\t%.1f\n",
				batch, pol.name, rate, p99.Round(time.Microsecond), perAppend)
			rep.add("e22", fmt.Sprintf("batch=%d/fsync=%s", batch, pol.name), map[string]float64{
				"tx_s":           rate,
				"accept_p99_us":  float64(p99) / 1e3,
				"records_append": perAppend,
			})
		}
	}
	fmt.Fprintln(w)
}

// runE22Cell drives one durability-frontier cell on a throwaway log
// directory, removed before it returns.
func runE22Cell(batch int, policy core.FsyncPolicy, ops int) (rate float64, p99 time.Duration, perAppend float64, err error) {
	dir, err := os.MkdirTemp("", "tcabench-e22-")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	rt := core.NewRuntime(mq.NewBroker(), core.Config{
		Name:           fmt.Sprintf("e22-%d-%s", batch, policy),
		Workers:        16,
		LogDir:         dir,
		Fsync:          policy,
		MaxGroupAppend: batch,
	})
	rt.Register("deposit", func(tx *core.Tx, args []byte) ([]byte, error) {
		key := string(args)
		var bal int64
		if raw, _, _ := tx.Get(key); raw != nil {
			json.Unmarshal(raw, &bal)
		}
		raw, _ := json.Marshal(bal + 1)
		return nil, tx.Put(key, raw)
	})
	if err := rt.Start(); err != nil {
		return 0, 0, 0, err
	}
	defer rt.Stop()
	const accounts, clients = 64, 64
	accept := metrics.NewHistogram()
	var wg sync.WaitGroup
	var submitErr error
	var errMu sync.Mutex
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < ops; i += clients {
				key := fmt.Sprintf("acc/%d", i%accounts)
				t0 := time.Now()
				if _, err := rt.SubmitAsync(fmt.Sprintf("e22-%d", i), "deposit",
					[]string{key}, []byte(key), nil); err != nil {
					errMu.Lock()
					submitErr = err
					errMu.Unlock()
					return
				}
				accept.RecordDuration(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	if submitErr != nil {
		return 0, 0, 0, submitErr
	}
	if err := rt.Quiesce(time.Minute); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	perAppend = 0
	if appends := rt.Metrics().Counter("core.wal_group_appends").Value(); appends > 0 {
		perAppend = float64(ops) / float64(appends)
	}
	return float64(ops) / elapsed.Seconds(),
		time.Duration(accept.Snapshot().P99), perAppend, nil
}

// runE23 prints the overload frontier: every cell offered an open-loop
// stream (Poisson by default, bursty MMPP with -arrival=bursty) at
// multiples of its measured closed-loop capacity, with the default
// bounded admission control on and off. With shedding, goodput holds
// near the frontier past saturation and the accept tail stays bounded
// (rejection is ~constant-time); without it, the legacy unbounded queues
// absorb every arrival, the accept tail grows with the backlog, and
// goodput collapses. The driver is tca.RunOverloadCell, shared with
// BenchmarkE23_OverloadFrontier.
func runE23(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintf(w, "E23: overload frontier — open-loop %s arrivals at multiples of measured capacity\n", arrivalMode)
	fmt.Fprintln(w, "mix\tmodel\tshed\toffered\trate/s\tgoodput/s\tshed-%\taccept-p999\tapply-p999")
	for _, mix := range tca.ConcurrencyMixes {
		for _, model := range allModels {
			capacity, err := tca.MeasureCellCapacity(mix, model, ops)
			if err != nil {
				fmt.Fprintf(w, "%s\t%v\terror: %v\n", mix, model, err)
				continue
			}
			for _, shed := range []bool{true, false} {
				for _, mult := range []float64{0.5, 1, 2, 4} {
					res, err := tca.RunOverloadCell(mix, model, capacity*mult, ops, tca.OverloadOptions{
						Arrival: arrivalMode,
						Shed:    shed,
						LogDir:  os.TempDir(),
						Seed:    7,
					})
					if err != nil {
						fmt.Fprintf(w, "%s\t%v\t%v\t%gx\terror: %v\n", mix, model, shed, mult, err)
						continue
					}
					fmt.Fprintf(w, "%s\t%v\t%v\t%gx\t%.0f\t%.0f\t%.1f%%\t%v\t%v\n",
						mix, model, shed, mult, res.Offered, res.Goodput(),
						100*res.ShedFraction(),
						res.AcceptP999.Round(time.Microsecond), res.ApplyP999.Round(time.Microsecond))
					rep.add("e23", fmt.Sprintf("%s/%s/shed=%v/offered=%gx", mix, model, shed, mult), map[string]float64{
						"offered_s":      res.Offered,
						"goodput_s":      res.Goodput(),
						"shed_pct":       100 * res.ShedFraction(),
						"accept_p999_us": float64(res.AcceptP999) / 1e3,
						"apply_p999_us":  float64(res.ApplyP999) / 1e3,
					})
				}
			}
		}
	}
	fmt.Fprintln(w)
}

// runE24 prints the geo frontier: the marketplace deployed as a replica
// group across regions {1,2,3} × WAN {20ms, 80ms} × read mode, async
// (eventual cells, local commit + background shipping) vs sequenced
// (deterministic core behind the global sequencer). Latencies are
// modeled (fabric trace) time: local reads stay near the single-region
// path while the staleness probe prices the divergence they may see;
// home reads and sequenced commits pay the WAN. The driver is
// tca.RunGeoCell, shared with BenchmarkE24_GeoFrontier.
func runE24(w *tabwriter.Writer, rep *reporter, ops int) {
	fmt.Fprintln(w, "E24: geo frontier — local-read staleness vs cross-region commit cost")
	fmt.Fprintln(w, "mode\tregions\twan\tread\ttx/s\tread-p50\tread-p99\twrite-p50\twrite-p99\tmax-lag\tlag-txns\tanomalies\tconverged")
	for _, mode := range []tca.ReplicationMode{tca.AsyncReplication, tca.SequencedReplication} {
		for _, regions := range []int{1, 2, 3} {
			for _, wan := range []time.Duration{20 * time.Millisecond, 80 * time.Millisecond} {
				if regions == 1 && wan != 20*time.Millisecond {
					continue // no WAN at one region; skip the duplicate row
				}
				for _, read := range []tca.ReadMode{tca.ReadLocal, tca.ReadHome} {
					if regions == 1 && read != tca.ReadLocal {
						continue // home == local at one region
					}
					res, err := tca.RunGeoCell(tca.GeoConfig{
						Mode: mode, Regions: regions, WAN: wan, Read: read,
						Ops: ops, Seed: 7,
					})
					if err != nil {
						fmt.Fprintf(w, "%v\t%d\t%v\t%v\terror: %v\n", mode, regions, wan, read, err)
						continue
					}
					accepted := res.Issued - res.Rejected
					rate := float64(accepted) / res.Elapsed.Seconds()
					anoms := len(res.Anomalies)
					fmt.Fprintf(w, "%v\t%d\t%v\t%v\t%.0f\t%v\t%v\t%v\t%v\t%v\t%d\t%d\t%v\n",
						mode, regions, wan, read, rate,
						res.ReadP50.Round(time.Microsecond), res.ReadP99.Round(time.Microsecond),
						res.WriteP50.Round(time.Microsecond), res.WriteP99.Round(time.Microsecond),
						res.Staleness.MaxLag.Round(time.Millisecond), res.Staleness.MaxLagTxns,
						anoms, res.Converged)
					rep.add("e24", fmt.Sprintf("%v/r=%d/wan=%dms/read=%v", mode, regions, wan.Milliseconds(), read), map[string]float64{
						"tx_s":           rate,
						"read_p50_us":    float64(res.ReadP50) / 1e3,
						"read_p99_us":    float64(res.ReadP99) / 1e3,
						"write_p99_us":   float64(res.WriteP99) / 1e3,
						"max_lag_ms":     float64(res.Staleness.MaxLag) / 1e6,
						"lag_txns":       float64(res.Staleness.MaxLagTxns),
						"shipped_writes": float64(res.Staleness.ShippedWrites),
						"anomalies":      float64(anoms),
					})
				}
			}
		}
	}
	fmt.Fprintln(w)
}

// runCompare diffs two -json summaries through grid.Compare and prints
// every flagged delta. Throughput gating is std-aware when both sides
// carry repeat spreads: a delta beyond the percentage threshold but
// inside 2× the pooled std is reported as noise, not failed. Latency
// swings are informational. Returns the process exit code: 1 when any
// throughput metric regressed or any old row is missing from new, 0
// otherwise.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldSum, err := grid.ReadSummary(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcabench: %v\n", err)
		return 2
	}
	newSum, err := grid.ReadSummary(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcabench: %v\n", err)
		return 2
	}
	if oldSum.OpsPerCell != newSum.OpsPerCell {
		fmt.Printf("note: ops_per_cell differs (%d vs %d) — rates are not directly comparable\n",
			oldSum.OpsPerCell, newSum.OpsPerCell)
	}
	res := grid.Compare(oldSum, newSum, grid.CompareOptions{ThresholdPct: threshold})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "row\tmetric\told\tnew\tdelta\tpooled-std\tverdict")
	for _, d := range res.Deltas {
		verdict := map[string]string{
			"regression":  "REGRESSED",
			"improvement": "improved",
			"noise":       "noise (within repeat spread)",
			"latency":     "latency (informational)",
		}[d.Kind]
		std := "-"
		if d.PooledStd > 0 {
			std = fmt.Sprintf("%.1f", d.PooledStd)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%+.1f%%\t%s\t%s\n",
			d.RowKey, d.Metric, d.Old, d.New, d.Pct, std, verdict)
	}
	for _, key := range res.Added {
		fmt.Fprintf(w, "%s\t(new row)\t-\t-\t-\t-\t-\n", key)
	}
	for _, key := range res.Missing {
		fmt.Fprintf(w, "%s\t(MISSING from new)\t-\t-\t-\t-\tFAILED\n", key)
	}
	w.Flush()
	fmt.Printf("%d metrics compared: %d regressed, %d improved, %d noise-suppressed beyond %.0f%%; %d rows missing\n",
		res.Compared, res.Regressions, res.Improvements, res.Suppressed, threshold, len(res.Missing))
	if res.Failed() {
		return 1
	}
	return 0
}
