// Command tcabench runs the repository's headline experiments directly
// (without the testing harness) and prints one table per experiment — the
// rows EXPERIMENTS.md records. Use `go test -bench .` for the full suite
// with statistically settled numbers; tcabench is the quick look.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"tca"
	"tca/internal/core"
	"tca/internal/faas"
	"tca/internal/fabric"
	"tca/internal/metrics"
	"tca/internal/mq"
	"tca/internal/workload"
)

func main() {
	ops := flag.Int("ops", 500, "operations per experiment cell")
	experiment := flag.String("experiment", "all",
		"comma-separated experiments to run: f1,e6,e10,e16,e17 (or all)")
	flag.Parse()

	known := []struct {
		name string
		run  func(*tabwriter.Writer, int)
	}{
		{"f1", runF1},
		{"e6", runE6},
		{"e10", runE10},
		{"e16", runE16},
		{"e17", runE17},
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(strings.ToLower(*experiment), ",") {
		name = strings.TrimSpace(name)
		valid := name == "all"
		for _, exp := range known {
			valid = valid || name == exp.name
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "tcabench: unknown experiment %q (use f1,e6,e10,e16,e17 or all)\n", name)
			os.Exit(2)
		}
		selected[name] = true
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, exp := range known {
		if selected["all"] || selected[exp.name] {
			exp.run(w, *ops)
		}
	}
	w.Flush()
}

// runF1 prints the taxonomy matrix: the same bank workload under every
// programming model, with per-cell guarantees and costs.
func runF1(w *tabwriter.Writer, ops int) {
	fmt.Fprintln(w, "F1: taxonomy matrix — bank transfers under every programming model")
	fmt.Fprintln(w, "model\treal-us/op\tsim-lat-p50\tsim-lat-p99\thops/op\tguarantee")
	models := []tca.ProgrammingModel{
		tca.Microservices, tca.Actors, tca.CloudFunctions, tca.StatefulDataflow, tca.Deterministic,
	}
	for _, model := range models {
		env := tca.NewEnv(1, 3)
		bank, err := tca.NewBank(model, env)
		if err != nil {
			fmt.Fprintf(w, "%v\terror: %v\n", model, err)
			continue
		}
		const accounts = 64
		for a := 0; a < accounts; a++ {
			bank.Deposit(a, 1_000_000)
		}
		gen := workload.NewBank(7, accounts, 0)
		simHist := metrics.NewHistogram()
		var hops int64
		start := time.Now()
		for i := 0; i < ops; i++ {
			op := gen.Next()
			tr := fabric.NewTrace()
			bank.Transfer(fmt.Sprintf("f1-%d", i), op.From, op.To, op.Amount, tr)
			simHist.RecordDuration(tr.Total())
			hops += int64(tr.Hops())
		}
		bank.Settle()
		elapsed := time.Since(start)
		snap := simHist.Snapshot()
		fmt.Fprintf(w, "%v\t%.1f\t%v\t%v\t%.1f\t%s\n",
			model,
			float64(elapsed.Microseconds())/float64(ops),
			time.Duration(snap.P50).Round(time.Microsecond),
			time.Duration(snap.P99).Round(time.Microsecond),
			float64(hops)/float64(ops),
			bank.Guarantee())
		bank.Close()
	}
	fmt.Fprintln(w)
}

// runE6 prints the cold-start experiment.
func runE6(w *tabwriter.Writer, ops int) {
	fmt.Fprintln(w, "E6: FaaS cold starts — simulated invocation latency")
	fmt.Fprintln(w, "policy\tsim-p50\tsim-p99\tcold-starts")
	for _, tc := range []struct {
		name       string
		evictEvery int
	}{
		{"always-warm", 0},
		{"evict-every-10", 10},
		{"evict-every-2", 2},
	} {
		p := faas.NewPlatform(fabric.SingleNode(), faas.DefaultConfig())
		p.Register("fn", func(ctx *faas.Ctx, payload []byte) ([]byte, error) { return nil, nil })
		hist := metrics.NewHistogram()
		for i := 0; i < ops; i++ {
			if tc.evictEvery > 0 && i%tc.evictEvery == 0 {
				p.EvictIdle("fn")
			}
			tr := fabric.NewTrace()
			p.Invoke("fn", "k", nil, tr)
			hist.RecordDuration(tr.Total())
		}
		snap := hist.Snapshot()
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\n",
			tc.name,
			time.Duration(snap.P50).Round(time.Microsecond),
			time.Duration(snap.P99).Round(time.Microsecond),
			p.Metrics().Counter("faas.cold_starts").Value())
	}
	fmt.Fprintln(w)
}

// runE16 prints the deterministic core's partition-scaling experiment:
// the same transfer workload against 1/2/4/8 log partitions, all
// shard-local traffic, with a modeled 80µs per-record append latency —
// the serial cost sharding overlaps.
func runE16(w *tabwriter.Writer, ops int) {
	fmt.Fprintln(w, "E16: core partition scaling — shard-local transfers, modeled 80µs/record log append")
	fmt.Fprintln(w, "partitions\tthroughput\tspeedup")
	acct := func(a int) string { return fmt.Sprintf("acc/%d", a) }
	var base float64
	for _, parts := range []int{1, 2, 4, 8} {
		rt := core.NewRuntime(mq.NewBroker(), core.Config{
			Name:          fmt.Sprintf("bench16-%d", parts),
			Workers:       16,
			Partitions:    parts,
			SequenceDelay: 80 * time.Microsecond,
		})
		rt.Register("touch", func(tx *core.Tx, args []byte) ([]byte, error) {
			key := string(args)
			raw, _, _ := tx.Get(key)
			return nil, tx.Put(key, append(raw[:len(raw):len(raw)], 'x'))
		})
		if err := rt.Start(); err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", parts, err)
			continue
		}
		const accounts = 256
		// Shard-local only: pair each account with a partition-mate.
		byPart := make(map[int][]int)
		for a := 0; a < accounts; a++ {
			p := rt.PartitionOf(acct(a))
			byPart[p] = append(byPart[p], a)
		}
		var pairs [][2]int
		for _, group := range byPart {
			for i := 0; i+1 < len(group); i += 2 {
				pairs = append(pairs, [2]int{group[i], group[i+1]})
			}
		}
		const clients = 64
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < ops; i += clients {
					pair := pairs[i%len(pairs)]
					keys := []string{acct(pair[0]), acct(pair[1])}
					rt.Submit(fmt.Sprintf("e16-%d-%d", parts, i), "touch", keys, []byte(keys[0]), nil)
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		rt.Stop()
		rate := float64(ops) / elapsed.Seconds()
		if parts == 1 {
			base = rate
		}
		fmt.Fprintf(w, "%d\t%.0f tx/s\t%.1fx\n", parts, rate, rate/base)
	}
	fmt.Fprintln(w)
}

// runE17 prints the TPC-C taxonomy matrix: the same seeded
// NewOrder/Payment stream under every programming model through the
// application layer (tca.App), with the integrity-constraint audit per
// cell — the cross-model generalization of F1 beyond the bank.
func runE17(w *tabwriter.Writer, ops int) {
	fmt.Fprintln(w, "E17: TPC-C matrix — one tca.App, every programming model, audited invariants")
	fmt.Fprintln(w, "model\twh\ttx/s\tsim-p50\tsim-p99\tanomalies")
	models := []tca.ProgrammingModel{
		tca.Microservices, tca.Actors, tca.CloudFunctions, tca.StatefulDataflow, tca.Deterministic,
	}
	for _, warehouses := range []int{1, 4} {
		cfg := workload.DefaultTPCCConfig(warehouses)
		for _, model := range models {
			env := tca.NewEnv(1, 3)
			cell, err := tca.Deploy(model, tca.TPCCApp(), env)
			if err != nil {
				fmt.Fprintf(w, "%v\t%d\terror: %v\n", model, warehouses, err)
				continue
			}
			gen := workload.NewTPCC(11, cfg)
			audit := tca.NewTPCCAuditor()
			simHist := metrics.NewHistogram()
			start := time.Now()
			for i := 0; i < ops; i++ {
				op := gen.Next()
				args, _ := json.Marshal(op)
				tr := fabric.NewTrace()
				if _, err := cell.Invoke(fmt.Sprintf("e17-%d", i), op.Kind.String(), args, tr); err == nil {
					audit.Record(op)
				}
				simHist.RecordDuration(tr.Total())
				// Bound the eventual cell's in-flight choreography.
				if model == tca.StatefulDataflow && i%256 == 255 {
					cell.Settle()
				}
			}
			cell.Settle()
			elapsed := time.Since(start)
			anomalies, err := audit.Verify(cell)
			if err != nil {
				fmt.Fprintf(w, "%v\t%d\taudit error: %v\n", model, warehouses, err)
				cell.Close()
				continue
			}
			snap := simHist.Snapshot()
			fmt.Fprintf(w, "%v\t%d\t%.0f\t%v\t%v\t%d\n",
				model, warehouses,
				float64(ops)/elapsed.Seconds(),
				time.Duration(snap.P50).Round(time.Microsecond),
				time.Duration(snap.P99).Round(time.Microsecond),
				len(anomalies))
			cell.Close()
		}
	}
	fmt.Fprintln(w)
}

// runE10 prints the open-vs-closed-loop experiment.
func runE10(w *tabwriter.Writer, ops int) {
	fmt.Fprintln(w, "E10: open vs closed load models — service capacity 10k ops/s")
	fmt.Fprintln(w, "driver\tthroughput\tp50\tp99")
	service := workload.SpinService(1, 100*time.Microsecond)
	rows := []struct {
		name string
		run  func() workload.DriverResult
	}{
		{"closed 4 clients", func() workload.DriverResult {
			return workload.ClosedLoop(4, ops/4, 0, service)
		}},
		{"open 0.5x capacity", func() workload.DriverResult {
			return workload.OpenLoop(1, ops, 5000, service)
		}},
		{"open 2x capacity", func() workload.DriverResult {
			return workload.OpenLoop(1, ops, 20000, service)
		}},
	}
	for _, r := range rows {
		res := r.run()
		fmt.Fprintf(w, "%s\t%.0f ops/s\t%v\t%v\n",
			r.name, res.Throughput(),
			time.Duration(res.Latency.P50).Round(time.Microsecond),
			time.Duration(res.Latency.P99).Round(time.Microsecond))
	}
	fmt.Fprintln(w)
}
