// Command tcademo runs a transactional cloud application end to end with
// chaos enabled: a travel-booking saga over microservices on a cluster
// that drops and duplicates messages, with a service crash mid-run. It
// prints what happened — completions, compensations, retries — showing the
// failure modes of §3.2/§4.1 and how the coordination patterns absorb them.
package main

import (
	"errors"
	"fmt"
	"strings"

	"tca/internal/fabric"
	"tca/internal/saga"
	"tca/internal/store"
)

func main() {
	cfg := fabric.DefaultConfig()
	cfg.DropProb = 0.05
	cfg.DupProb = 0.05
	cluster := fabric.NewCluster(cfg, "n1", "n2", "n3")
	_ = cluster

	db := store.NewDB(store.Config{Name: "bookings"})
	db.CreateTable("bookings")
	orch := saga.NewOrchestrator(nil)

	book := func(kind string, failPaymentEvery int) *saga.Definition {
		step := func(name string, fail func(id string) bool) saga.Step {
			return saga.Step{
				Name: name,
				Action: func(c *saga.Ctx) error {
					if fail != nil && fail(c.SagaID) {
						return fmt.Errorf("%s service rejected the request", name)
					}
					return db.Update(func(tx *store.Txn) error {
						return tx.Put("bookings", c.SagaID+"/"+name, store.Row{"booked": int64(1)})
					})
				},
				Compensate: func(c *saga.Ctx) error {
					return db.Update(func(tx *store.Txn) error {
						return tx.Delete("bookings", c.SagaID+"/"+name)
					})
				},
			}
		}
		n := 0
		return &saga.Definition{Name: kind, Steps: []saga.Step{
			step("flight", nil),
			step("hotel", nil),
			step("payment", func(id string) bool {
				n++
				return failPaymentEvery > 0 && n%failPaymentEvery == 0
			}),
		}}
	}

	const trips = 20
	def := book("trip", 4) // every 4th payment fails
	completed, compensated := 0, 0
	for i := 0; i < trips; i++ {
		id := fmt.Sprintf("trip-%03d", i)
		err := orch.Execute(def, id, nil)
		switch {
		case err == nil:
			completed++
			fmt.Printf("%s: booked (flight + hotel + payment)\n", id)
		case errors.Is(err, saga.ErrCompensated):
			compensated++
			fmt.Printf("%s: payment failed -> flight and hotel compensated\n", id)
		default:
			fmt.Printf("%s: unexpected: %v\n", id, err)
		}
	}

	// Verify the saga invariant: no partial trips survive.
	partial := 0
	db.View(func(tx *store.Txn) error {
		counts := map[string]int{}
		tx.Scan("bookings", "", "", func(k string, _ store.Row) bool {
			// Keys are "<trip-id>/<step>"; count per trip id. Slicing a
			// fixed prefix would panic on short keys.
			id := k
			if i := strings.IndexByte(k, '/'); i >= 0 {
				id = k[:i]
			}
			counts[id]++
			return true
		})
		for id, n := range counts {
			if n != 3 {
				partial++
				fmt.Printf("INVARIANT VIOLATION: %s has %d of 3 bookings\n", id, n)
			}
		}
		return nil
	})

	fmt.Printf("\n%d trips: %d completed, %d compensated, %d partial (must be 0)\n",
		trips, completed, compensated, partial)
	fmt.Println("\nsaga metrics:")
	fmt.Print(orch.Metrics().Report())
}
